// Shared machinery for the TestMap-family benchmarks (paper Section 6.2).
//
// TestMap performs a mixture of operations against ONE shared Map from
// every CPU: 80% lookups, 10% insertions, 10% removals, each surrounded by
// computation.  In the Atomos series the whole (computation + operation)
// body is a single long transaction; in the Java series a mutex is held
// only around the operation itself.
#pragma once

#include <cstdint>
#include <memory>

#include "core/txmap.h"
#include "core/txsortedmap.h"
#include "harness/speedup.h"
#include "jstd/hashmap.h"
#include "jstd/treemap.h"
#include "tm/mutex.h"
#include "tm/runtime.h"

namespace bench {

struct TestMapParams {
  long key_space = 512;
  long prepopulate = 256;
  int total_ops = 3200;            ///< fixed total work, divided over CPUs
  std::uint64_t think_cycles = 4000;  ///< computation surrounding each op
  std::uint64_t seed = 12345;
};

inline std::uint64_t rnd(std::uint64_t& s) {
  s = s * 6364136223846793005ULL + 1442695040888963407ULL;
  return s >> 33;
}

/// One 80/10/10 operation against `map`.
template <class MapT>
void testmap_op(MapT& map, long key_space, std::uint64_t& s) {
  const long key = static_cast<long>(rnd(s) % static_cast<std::uint64_t>(key_space));
  const std::uint64_t roll = rnd(s) % 10;
  if (roll < 8) {
    (void)map.get(key);
  } else if (roll < 9) {
    (void)map.put(key, key);
  } else {
    (void)map.remove(key);
  }
}

/// Fills in the stats fields of a RunResult from a finished simulation.
inline void collect_stats(sim::Engine& eng, harness::RunResult& out) {
  const sim::CpuStats s = eng.stats().summed();
  out.cycles = eng.elapsed_cycles();
  out.violations = s.violations;
  out.semantic = s.semantic_violations;
  out.lost_cycles = s.lost_cycles;
  out.commits = s.commits;
}

inline sim::Config make_cfg(sim::Mode mode, int cpus) {
  sim::Config c;
  c.mode = mode;
  c.num_cpus = cpus;
  return c;
}

/// "Java <Map>": lock-mode run, mutex held only around each operation.
/// `salt` perturbs every worker's RNG seed for `--trials`; salt 0 is the
/// canonical run.
template <class MakeMap>
harness::Series java_series(const std::string& name, const TestMapParams& p, MakeMap make_map) {
  return harness::Series{
      name, sim::Mode::kLock,
      [p, make_map](int cpus, std::uint64_t salt, harness::RunResult& out) {
        sim::Engine eng(make_cfg(sim::Mode::kLock, cpus));
        atomos::Runtime rt(eng);
        auto map = make_map();
        for (long k = 0; k < p.prepopulate; ++k) map->put(k * 2 % p.key_space, k);
        atomos::Mutex mu;
        const int per_cpu = p.total_ops / cpus;
        for (int c = 0; c < cpus; ++c) {
          eng.spawn([&, c, salt] {
            std::uint64_t s = p.seed + salt + static_cast<std::uint64_t>(c) * 7919;
            for (int i = 0; i < per_cpu; ++i) {
              atomos::Runtime::current().work(p.think_cycles / 2);
              {
                atomos::LockGuard g(mu);  // short critical section
                testmap_op(*map, p.key_space, s);
              }
              atomos::Runtime::current().work(p.think_cycles / 2);
            }
          });
        }
        eng.run();
        collect_stats(eng, out);
      }};
}

/// "Atomos <Map>": the whole (compute, op, compute) body is one transaction.
template <class MakeMap>
harness::Series atomos_series(const std::string& name, const TestMapParams& p, MakeMap make_map) {
  return harness::Series{
      name, sim::Mode::kTcc,
      [p, make_map](int cpus, std::uint64_t salt, harness::RunResult& out) {
        sim::Engine eng(make_cfg(sim::Mode::kTcc, cpus));
        atomos::Runtime rt(eng);
        auto map = make_map();
        for (long k = 0; k < p.prepopulate; ++k) map->put(k * 2 % p.key_space, k);
        const int per_cpu = p.total_ops / cpus;
        for (int c = 0; c < cpus; ++c) {
          eng.spawn([&, c, salt] {
            std::uint64_t s = p.seed + salt + static_cast<std::uint64_t>(c) * 7919;
            for (int i = 0; i < per_cpu; ++i) {
              std::uint64_t body_seed = s;  // retries replay the same op
              atomos::atomically([&] {
                std::uint64_t bs = body_seed;
                atomos::work(p.think_cycles / 2);
                testmap_op(*map, p.key_space, bs);
                atomos::work(p.think_cycles / 2);
              });
              // advance the thread RNG past the consumed draws
              rnd(s);
              rnd(s);
            }
          });
        }
        eng.run();
        collect_stats(eng, out);
      }};
}

/// The paper's CPU axis (1..32) extended to 64 and 128 now that the engine
/// scales there; pre-existing points keep their exact simulated cycles, the
/// new points only append rows to each figure CSV.
inline std::vector<int> paper_cpu_counts() { return {1, 2, 4, 8, 16, 32, 64, 128}; }

}  // namespace bench
