// Figure 2 — TestSortedMap (paper Section 6.2).
//
// TestMap variant where lookups become subMap range scans that take the
// median key of a small range.  Expected shape (paper): "Java TreeMap"
// scales linearly; "Atomos TreeMap" fails to scale because red-black
// rebalancing rotations create memory conflicts between semantically
// independent operations; "Atomos TransactionalSortedMap" — the same
// TreeMap wrapped — regains scalability via range/endpoint/key locks.
#include "bench/testmap_common.h"
#include "harness/driver.h"

namespace bench {

/// 80% range-median lookups / 10% puts / 10% removes against a SortedMap.
template <class MapT>
void testsortedmap_op(MapT& map, long key_space, std::uint64_t& s) {
  const long key = static_cast<long>(rnd(s) % static_cast<std::uint64_t>(key_space));
  const std::uint64_t roll = rnd(s) % 10;
  if (roll < 8) {
    // subMap(key, key+8): collect the range, take the median key.
    std::vector<long> keys;
    for (auto it = map.range_iterator(key, key + 8); it->has_next();)
      keys.push_back(it->next().first);
    if (!keys.empty()) (void)keys[keys.size() / 2];
  } else if (roll < 9) {
    (void)map.put(key, key);
  } else {
    (void)map.remove(key);
  }
}

template <class MakeMap>
harness::Series java_sorted(const std::string& name, const TestMapParams& p, MakeMap make_map) {
  return harness::Series{
      name, sim::Mode::kLock,
      [p, make_map](int cpus, std::uint64_t salt, harness::RunResult& out) {
        sim::Engine eng(make_cfg(sim::Mode::kLock, cpus));
        atomos::Runtime rt(eng);
        auto map = make_map();
        for (long k = 0; k < p.prepopulate; ++k) map->put(k * 2 % p.key_space, k);
        atomos::Mutex mu;
        const int per_cpu = p.total_ops / cpus;
        for (int c = 0; c < cpus; ++c) {
          eng.spawn([&, c, salt] {
            std::uint64_t s = p.seed + salt + static_cast<std::uint64_t>(c) * 7919;
            for (int i = 0; i < per_cpu; ++i) {
              atomos::Runtime::current().work(p.think_cycles / 2);
              {
                atomos::LockGuard g(mu);
                testsortedmap_op(*map, p.key_space, s);
              }
              atomos::Runtime::current().work(p.think_cycles / 2);
            }
          });
        }
        eng.run();
        collect_stats(eng, out);
      }};
}

template <class MakeMap>
harness::Series atomos_sorted(const std::string& name, const TestMapParams& p, MakeMap make_map) {
  return harness::Series{
      name, sim::Mode::kTcc,
      [p, make_map](int cpus, std::uint64_t salt, harness::RunResult& out) {
        sim::Engine eng(make_cfg(sim::Mode::kTcc, cpus));
        atomos::Runtime rt(eng);
        auto map = make_map();
        for (long k = 0; k < p.prepopulate; ++k) map->put(k * 2 % p.key_space, k);
        const int per_cpu = p.total_ops / cpus;
        for (int c = 0; c < cpus; ++c) {
          eng.spawn([&, c, salt] {
            std::uint64_t s = p.seed + salt + static_cast<std::uint64_t>(c) * 7919;
            for (int i = 0; i < per_cpu; ++i) {
              const std::uint64_t body_seed = s;
              atomos::atomically([&] {
                std::uint64_t bs = body_seed;
                atomos::work(p.think_cycles / 2);
                testsortedmap_op(*map, p.key_space, bs);
                atomos::work(p.think_cycles / 2);
              });
              rnd(s);
              rnd(s);
            }
          });
        }
        eng.run();
        collect_stats(eng, out);
      }};
}

}  // namespace bench

int main(int argc, char** argv) {
  using namespace bench;
  const harness::Cli cli = harness::Cli::parse(argc, argv, "fig2_testsortedmap");
  TestMapParams p;
  p.total_ops = 2400;       // range scans are heavier than point lookups
  p.think_cycles = 10000;   // keep the compute-to-scan ratio paper-like
  if (cli.ops > 0) p.total_ops = static_cast<int>(cli.ops);

  auto make_tree = [] { return std::make_unique<jstd::TreeMap<long, long>>(); };
  auto make_wrapped = [make_tree]() -> std::unique_ptr<jstd::SortedMap<long, long>> {
    return std::make_unique<tcc::TransactionalSortedMap<long, long>>(make_tree());
  };

  std::vector<harness::Series> series;
  series.push_back(java_sorted("Java TreeMap", p, make_tree));
  series.push_back(atomos_sorted("Atomos TreeMap", p, make_tree));
  series.push_back(atomos_sorted("Atomos TransactionalSortedMap", p, make_wrapped));

  return harness::run_figure_main(
      "Figure 2: TestSortedMap (80% subMap median / 10% put / 10% remove, long transactions)",
      series, paper_cpu_counts(), "fig2_testsortedmap.csv", cli);
}
