// Hot-path microbenchmark: HOST wall-clock throughput of the TM runtime.
//
// The fig* benchmarks measure SIMULATED cycles; this one measures how fast
// the host executes the runtime machinery itself — Shared<T> read/write
// tracking, read-own-writes lookups, commit broadcast, abort/retry — which
// is exactly the constant factor the ROADMAP's "as fast as the hardware
// allows" goal is gated on.  Each scenario also records its simulated cycle
// total as a timing-invariance witness: a host-side optimisation must never
// change it (compare sim_cycles across runs of different builds).
//
// Results are written as JSON (BENCH_hotpath.json) via the harness, with a
// pure-host calibration loop so throughput can be normalized across
// machines (see bench/run_bench.sh and tools/check_hotpath.py).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "harness/speedup.h"
#include "sim/fiber.h"
#include "sim/flat_map.h"
#include "tm/reader_dir.h"
#include "tm/runtime.h"
#include "tm/shared.h"
#include "trace/tracer.h"

namespace {

constexpr int kCpus = 8;
constexpr int kCellsPerCpu = 64;

// The container this runs in shares one CPU with everything else, so single
// runs swing by double-digit percentages.  Every scenario is therefore run
// once untimed (warmup: page-in, branch predictors, the fiber-stack and L1
// pools) and then kReps times, keeping the best wall time.  Simulated cycles
// must agree across every rep — a mismatch means the simulation is not
// deterministic, which is a bug worth aborting a benchmark run over.
constexpr int kReps = 3;

harness::BenchResult best_of(const std::function<harness::BenchResult()>& scenario) {
  harness::BenchResult warm = scenario();  // discarded (except as a witness)
  harness::BenchResult best = scenario();
  for (int rep = 1; rep < kReps; ++rep) {
    harness::BenchResult r = scenario();
    if (r.sim_cycles != best.sim_cycles || warm.sim_cycles != best.sim_cycles) {
      std::fprintf(stderr,
                   "hotpath: %s sim_cycles varied across reps (%llu vs %llu): "
                   "simulation is not deterministic\n",
                   r.name.c_str(), static_cast<unsigned long long>(r.sim_cycles),
                   static_cast<unsigned long long>(best.sim_cycles));
      std::exit(1);
    }
    if (r.wall_seconds < best.wall_seconds) best = std::move(r);
  }
  best.extras.emplace_back("reps", static_cast<double>(kReps));
  return best;
}

// Conflict identity comes from the cells' deterministic *virtual* addresses
// (8 bytes each, assigned in construction order — eight cells per 64-byte
// virtual line), not from host layout, so no host-side padding is needed:
// each CPU's block of kCellsPerCpu consecutively constructed cells spans
// exactly kCellsPerCpu/8 whole virtual lines and never shares a line with
// another CPU's block.  The uncontended scenarios therefore measure pure
// hot-path cost, not violation handling.
struct PaddedCell {
  atomos::Shared<long> v;
};

sim::Config tcc_cfg() {
  sim::Config c;
  c.num_cpus = kCpus;
  c.mode = sim::Mode::kTcc;
  return c;
}

double wall_run(sim::Engine& eng) {
  const auto t0 = std::chrono::steady_clock::now();
  eng.run();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Pure-host calibration: a dependent LCG chain that never touches the
/// simulator or the TM runtime.  Normalizing by this factors out raw CPU
/// speed when comparing JSON outputs across machines.
double calibrate() {
  constexpr std::uint64_t kIters = 100'000'000;
  std::uint64_t s = 0x9e3779b97f4a7c15ULL;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  const auto t1 = std::chrono::steady_clock::now();
  volatile std::uint64_t sink = s;
  (void)sink;
  return static_cast<double>(kIters) / std::chrono::duration<double>(t1 - t0).count();
}

/// Tight read/write + commit loop, disjoint per-CPU cell blocks.
harness::BenchResult bench_rw_commit(int txns_per_cpu) {
  sim::Engine eng(tcc_cfg());
  atomos::Runtime rt(eng);
  std::vector<PaddedCell> cells(kCpus * kCellsPerCpu);
  for (int c = 0; c < kCpus; ++c) {
    eng.spawn([&cells, c, txns_per_cpu] {
      const int base = c * kCellsPerCpu;
      for (int i = 0; i < txns_per_cpu; ++i) {
        atomos::atomically([&cells, base, i] {
          long acc = 0;
          for (int r = 0; r < 8; ++r) acc += cells[base + (i * 3 + r * 5) % kCellsPerCpu].v.get();
          for (int w = 0; w < 4; ++w) {
            cells[base + (i * 7 + w * 11) % kCellsPerCpu].v.set(acc + w);
          }
        });
      }
    });
  }
  harness::BenchResult r;
  r.name = "rw_commit";
  r.ops = static_cast<std::uint64_t>(kCpus) * txns_per_cpu;
  r.wall_seconds = wall_run(eng);
  r.sim_cycles = eng.elapsed_cycles();
  return r;
}

/// Read-only transactions (trivial commits, no broadcast).
harness::BenchResult bench_read_dominated(int txns_per_cpu) {
  sim::Engine eng(tcc_cfg());
  atomos::Runtime rt(eng);
  std::vector<PaddedCell> cells(kCpus * kCellsPerCpu);
  for (int c = 0; c < kCpus; ++c) {
    eng.spawn([&cells, c, txns_per_cpu] {
      const int base = c * kCellsPerCpu;
      for (int i = 0; i < txns_per_cpu; ++i) {
        atomos::atomically([&cells, base, i] {
          long acc = 0;
          for (int r = 0; r < 16; ++r) acc += cells[base + (i + r * 5) % kCellsPerCpu].v.get();
          volatile long sink = acc;
          (void)sink;
        });
      }
    });
  }
  harness::BenchResult r;
  r.name = "read_dominated";
  r.ops = static_cast<std::uint64_t>(kCpus) * txns_per_cpu;
  r.wall_seconds = wall_run(eng);
  r.sim_cycles = eng.elapsed_cycles();
  return r;
}

/// Closed-nested frames inside each transaction (frame push/pop, read-set
/// ownership transfer on frame commit).
harness::BenchResult bench_nested_frames(int txns_per_cpu) {
  sim::Engine eng(tcc_cfg());
  atomos::Runtime rt(eng);
  std::vector<PaddedCell> cells(kCpus * kCellsPerCpu);
  for (int c = 0; c < kCpus; ++c) {
    eng.spawn([&cells, c, txns_per_cpu] {
      const int base = c * kCellsPerCpu;
      for (int i = 0; i < txns_per_cpu; ++i) {
        atomos::atomically([&cells, base, i] {
          for (int f = 0; f < 2; ++f) {
            atomos::atomically([&cells, base, i, f] {
              long acc = 0;
              for (int r = 0; r < 4; ++r) {
                acc += cells[base + (i + f * 13 + r * 5) % kCellsPerCpu].v.get();
              }
              for (int w = 0; w < 2; ++w) {
                cells[base + (i + f * 17 + w * 11) % kCellsPerCpu].v.set(acc);
              }
            });
          }
        });
      }
    });
  }
  harness::BenchResult r;
  r.name = "nested_frames";
  r.ops = static_cast<std::uint64_t>(kCpus) * txns_per_cpu;
  r.wall_seconds = wall_run(eng);
  r.sim_cycles = eng.elapsed_cycles();
  return r;
}

/// Open-nested children (a second Txn begin/commit per parent transaction).
harness::BenchResult bench_open_nested(int txns_per_cpu) {
  sim::Engine eng(tcc_cfg());
  atomos::Runtime rt(eng);
  std::vector<PaddedCell> cells(kCpus * kCellsPerCpu);
  for (int c = 0; c < kCpus; ++c) {
    eng.spawn([&cells, c, txns_per_cpu] {
      const int base = c * kCellsPerCpu;
      for (int i = 0; i < txns_per_cpu; ++i) {
        atomos::atomically([&cells, base, i] {
          long acc = 0;
          for (int r = 0; r < 4; ++r) acc += cells[base + (i + r * 5) % kCellsPerCpu].v.get();
          atomos::open_atomically([&cells, base, i, acc] {
            for (int w = 0; w < 2; ++w) {
              cells[base + 32 + (i + w * 11) % 32].v.set(acc);
            }
          });
          cells[base + (i * 7) % 32].v.set(acc);
        });
      }
    });
  }
  harness::BenchResult r;
  r.name = "open_nested";
  r.ops = static_cast<std::uint64_t>(kCpus) * txns_per_cpu;
  r.wall_seconds = wall_run(eng);
  r.sim_cycles = eng.elapsed_cycles();
  return r;
}

/// All CPUs hammer the same 16 cells: violations, aborts and retries
/// (exercises rollback and transaction-object reuse).
harness::BenchResult bench_contended(int txns_per_cpu) {
  sim::Engine eng(tcc_cfg());
  atomos::Runtime rt(eng);
  std::vector<PaddedCell> cells(16);
  for (int c = 0; c < kCpus; ++c) {
    eng.spawn([&cells, c, txns_per_cpu] {
      for (int i = 0; i < txns_per_cpu; ++i) {
        atomos::atomically([&cells, c, i] {
          long acc = 0;
          for (int r = 0; r < 4; ++r) acc += cells[(c + i + r * 3) % 16].v.get();
          for (int w = 0; w < 2; ++w) cells[(c * 5 + i + w * 7) % 16].v.set(acc);
        });
      }
    });
  }
  harness::BenchResult r;
  r.name = "contended";
  r.ops = static_cast<std::uint64_t>(kCpus) * txns_per_cpu;  // committed txns
  r.wall_seconds = wall_run(eng);
  r.sim_cycles = eng.elapsed_cycles();
  return r;
}

/// Scheduler-decision cost: `cpus` lockstep fibers each ticking one cycle at
/// a time, so essentially every tick crosses the run limit and forces a full
/// scheduling decision plus fiber switch.  No TM runtime, no memory system
/// traffic — this isolates the runnable-index + context-switch cost the
/// engine pays per simulated event, and how it scales with the CPU count
/// (the old linear scan was O(cpus) per decision; the heap is O(log cpus)).
harness::BenchResult bench_sched_scan(int cpus, int ticks_per_cpu) {
  sim::Config c;
  c.num_cpus = cpus;
  c.mode = sim::Mode::kTcc;
  sim::Engine eng(c);
  for (int i = 0; i < cpus; ++i) {
    eng.spawn([ticks_per_cpu] {
      sim::Engine& e = sim::Engine::get();
      for (int t = 0; t < ticks_per_cpu; ++t) e.tick(1);
    });
  }
  harness::BenchResult r;
  r.name = "sched_scan_" + std::to_string(cpus);
  r.ops = static_cast<std::uint64_t>(cpus) * static_cast<std::uint64_t>(ticks_per_cpu);
  r.wall_seconds = wall_run(eng);
  r.sim_cycles = eng.elapsed_cycles();
  return r;
}

/// Engine construction/run/teardown churn: `engines` back-to-back Engines,
/// each spawning `cpus` trivial fibers.  Dominated by fiber stack
/// acquisition and release — i.e. it measures the per-host-thread stack
/// pool (a pool hit skips mmap/guard-page setup entirely).  ops counts
/// fibers created; sim_cycles sums the (identical) runs as the usual
/// invariance witness.
harness::BenchResult bench_fiber_spawn(int cpus, int engines) {
  harness::BenchResult r;
  r.name = "fiber_spawn_" + std::to_string(cpus);
  r.ops = static_cast<std::uint64_t>(cpus) * static_cast<std::uint64_t>(engines);
  const sim::StackPoolStats sp0 = sim::stack_pool_stats();
  const sim::L1PoolStats lp0 = sim::l1_pool_stats();
  const auto t0 = std::chrono::steady_clock::now();
  for (int e = 0; e < engines; ++e) {
    sim::Config c;
    c.num_cpus = cpus;
    c.mode = sim::Mode::kTcc;
    sim::Engine eng(c);
    for (int i = 0; i < cpus; ++i) {
      eng.spawn([] { sim::Engine::get().tick(1); });
    }
    eng.run();
    r.sim_cycles += eng.elapsed_cycles();
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  // Pool effectiveness for this scenario's window (the whole point of the
  // pools is that spawn churn recycles instead of hitting mmap/malloc).
  const sim::StackPoolStats sp1 = sim::stack_pool_stats();
  const sim::L1PoolStats lp1 = sim::l1_pool_stats();
  const auto rate = [](std::uint64_t hits, std::uint64_t misses) {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  };
  r.extras.emplace_back("stack_pool_hit_rate",
                        rate(sp1.hits - sp0.hits, sp1.misses - sp0.misses));
  r.extras.emplace_back("l1_pool_hit_rate",
                        rate(lp1.hits - lp0.hits, lp1.misses - lp0.misses));
  return r;
}

// ---- engine-free kernel microscenarios -------------------------------------
// The three data-path kernels the TM runtime leans on, exercised directly
// (no engine, no fibers) so a change to one of them shows up undiluted by
// scheduler cost.  These have no simulated clock; sim_cycles carries a
// deterministic checksum of the results instead, which the CI cycle-identity
// comparison then uses to witness that e.g. the SSE2 and SWAR FlatMap
// kernels compute identical answers.

/// FlatMap in the TM runtime's dominant pattern: a small table filled by
/// try_emplace (with duplicate hits), probed by find (hits and misses), then
/// generation-cleared — one "transaction" per iteration.
harness::BenchResult bench_flatmap_probe(int iters) {
  sim::FlatMap<std::uint64_t, std::uint64_t> m;
  std::uint64_t sum = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t base = 0x40000000u + static_cast<std::uint64_t>(i % 64) * 8;
    for (int w = 0; w < 12; ++w) {
      auto [v, inserted] = m.try_emplace(base + (w * 5) % 8, static_cast<std::uint64_t>(w));
      sum += *v + (inserted ? 1 : 0);  // (w*5)%8 repeats: read-own-write hits
    }
    for (int p = 0; p < 16; ++p) {
      // Half the probed keys are present, half miss (the post-commit lookup
      // and Bloom-filter-confirm paths respectively).
      if (const std::uint64_t* v = m.find(base + p)) sum += *v;
    }
    m.clear();
  }
  const auto t1 = std::chrono::steady_clock::now();
  harness::BenchResult r;
  r.name = "flatmap_probe";
  r.ops = static_cast<std::uint64_t>(iters) * 28;  // emplaces + probes
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.sim_cycles = sum;  // checksum witness (see header comment)
  return r;
}

/// ReaderDir commit-broadcast kernel at the three CPU widths: sparse reader
/// masks walked with for_each_reader_except, plus the add/remove churn a
/// transaction lifetime causes.
harness::BenchResult bench_reader_flag(int ncpus, int iters) {
  atomos::ReaderDir rd(ncpus);
  constexpr std::uint64_t kLineBase = sim::kVaBase >> sim::Config::kLineShift;
  constexpr int kLines = 64;
  // Sparse population: 3 readers per line, spread across the mask words.
  for (int l = 0; l < kLines; ++l) {
    for (int s = 0; s < 3; ++s) rd.add(kLineBase + l, (l + s * (ncpus / 3 + 1)) % ncpus);
  }
  std::uint64_t sum = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    const sim::LineAddr line = kLineBase + (i % kLines);
    const int committer = i % ncpus;
    rd.for_each_reader_except(line, committer, [&sum](int cpu) { sum += cpu + 1; });
    const int churn = (i * 7) % ncpus;
    rd.add(line, churn);
    rd.remove(line, churn);
  }
  const auto t1 = std::chrono::steady_clock::now();
  harness::BenchResult r;
  r.name = "reader_flag_" + std::to_string(ncpus);
  r.ops = static_cast<std::uint64_t>(iters);
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.sim_cycles = sum;  // checksum witness
  return r;
}

/// Commit-drain dedup kernel: collapsing a positional write log to unique
/// lines, at both the small-set (linear scan) and large-set (sort+unique)
/// shapes broadcast_and_apply switches between.
harness::BenchResult bench_commit_drain(int iters) {
  std::vector<sim::LineAddr> scratch;
  scratch.reserve(128);
  std::uint64_t sum = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    // Alternate between an 8-entry log with duplicates (rw_commit shape) and
    // a 48-entry log (collection-class bulk commit shape).
    const int entries = (i & 1) ? 48 : 8;
    scratch.clear();
    for (int e = 0; e < entries; ++e) {
      const sim::LineAddr line = 0x1000000 + (i + e * 3) % (entries / 2);
      if (entries <= 32) {
        if (scratch.empty() || scratch.back() != line) {
          bool seen = false;
          for (const sim::LineAddr l : scratch) {
            if (l == line) { seen = true; break; }
          }
          if (!seen) scratch.push_back(line);
        }
      } else {
        scratch.push_back(line);
      }
    }
    if (entries > 32) {
      std::sort(scratch.begin(), scratch.end());
      scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    }
    for (const sim::LineAddr l : scratch) sum += l;
  }
  const auto t1 = std::chrono::steady_clock::now();
  harness::BenchResult r;
  r.name = "commit_drain";
  r.ops = static_cast<std::uint64_t>(iters);
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.sim_cycles = sum;  // checksum witness
  return r;
}

/// Re-runs a scenario with an in-memory tracer attached (empty path: events
/// are recorded and audited but never written).  The traced twin's
/// sim_cycles must equal the plain run's — emission is host-side only — and
/// its wall-clock measures the cost of the `if (tracer)` hooks taken.
harness::BenchResult traced_twin(harness::BenchResult (*scenario)(int), int txns_per_cpu) {
  trace::set_request("");
  harness::BenchResult r = scenario(txns_per_cpu);
  trace::clear_request();
  r.name += "_traced";
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_hotpath.json";

  const double calib = calibrate();
  std::vector<harness::BenchResult> results;
  results.push_back(best_of([] { return bench_rw_commit(20000); }));
  results.push_back(best_of([] { return bench_read_dominated(20000); }));
  results.push_back(best_of([] { return bench_nested_frames(10000); }));
  results.push_back(best_of([] { return bench_open_nested(10000); }));
  results.push_back(best_of([] { return bench_contended(4000); }));
  // Engine hot-loop microbenches: scheduler decision cost and fiber
  // construction/teardown, at the paper scale (8), the old CPU-axis top
  // (32) and the new top (128).  Total ticks are held constant across the
  // sched_scan widths so their ops/sec are directly comparable.
  results.push_back(best_of([] { return bench_sched_scan(8, 400000); }));
  results.push_back(best_of([] { return bench_sched_scan(32, 100000); }));
  results.push_back(best_of([] { return bench_sched_scan(128, 25000); }));
  results.push_back(best_of([] { return bench_fiber_spawn(8, 2000); }));
  results.push_back(best_of([] { return bench_fiber_spawn(32, 500); }));
  results.push_back(best_of([] { return bench_fiber_spawn(128, 125); }));
  // Data-path kernels, engine-free (their sim_cycles field is a checksum —
  // build-invariance witness across the SIMD and SWAR kernels).
  results.push_back(best_of([] { return bench_flatmap_probe(300000); }));
  results.push_back(best_of([] { return bench_reader_flag(8, 2000000); }));
  results.push_back(best_of([] { return bench_reader_flag(32, 2000000); }));
  results.push_back(best_of([] { return bench_reader_flag(128, 1000000); }));
  results.push_back(best_of([] { return bench_commit_drain(500000); }));
  // Trace-on twins: same work with an in-memory tracer attached, so the
  // JSON records what turning tracing on costs (and witnesses that it
  // leaves simulated cycles untouched).
  results.push_back(best_of([] { return traced_twin(bench_rw_commit, 20000); }));
  results.push_back(best_of([] { return traced_twin(bench_contended, 4000); }));

  std::printf("%-16s %12s %10s %14s %14s\n", "scenario", "txns", "wall(s)", "txns/sec",
              "sim_cycles");
  for (const auto& r : results) {
    std::printf("%-16s %12llu %10.3f %14.0f %14llu\n", r.name.c_str(),
                static_cast<unsigned long long>(r.ops), r.wall_seconds,
                static_cast<double>(r.ops) / r.wall_seconds,
                static_cast<unsigned long long>(r.sim_cycles));
  }
  std::printf("calibration: %.0f ops/sec\n", calib);

  harness::write_bench_json(out_path, "hotpath", results, calib);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
