// Per-operation overhead table (google-benchmark).
//
// Measures the HOST cost of the building blocks — raw collections outside a
// simulation, the same collections under single-CPU simulation, and the
// transactional wrappers — and reports the SIMULATED cycles per operation
// as a counter.  This quantifies the constant-factor price of semantic
// concurrency control that the figure benchmarks amortize.
#include <benchmark/benchmark.h>

#include "core/txmap.h"
#include "core/txqueue.h"
#include "core/txsortedmap.h"
#include "jstd/hashmap.h"
#include "jstd/linkedqueue.h"
#include "jstd/treemap.h"
#include "tm/runtime.h"

namespace {

sim::Config one_cpu_tcc() {
  sim::Config c;
  c.num_cpus = 1;
  c.mode = sim::Mode::kTcc;
  return c;
}

// ---- raw host-speed collections (no simulation active) ----

void BM_RawHashMapPutGet(benchmark::State& state) {
  jstd::HashMap<long, long> map(1024);
  long k = 0;
  for (auto _ : state) {
    map.put(k % 512, k);
    benchmark::DoNotOptimize(map.get((k * 7) % 512));
    ++k;
  }
}
BENCHMARK(BM_RawHashMapPutGet);

void BM_RawTreeMapPutGet(benchmark::State& state) {
  jstd::TreeMap<long, long> map;
  long k = 0;
  for (auto _ : state) {
    map.put(k % 512, k);
    benchmark::DoNotOptimize(map.get((k * 7) % 512));
    ++k;
  }
}
BENCHMARK(BM_RawTreeMapPutGet);

void BM_RawLinkedQueue(benchmark::State& state) {
  jstd::LinkedQueue<long> q;
  long k = 0;
  for (auto _ : state) {
    q.put(k++);
    benchmark::DoNotOptimize(q.poll());
  }
}
BENCHMARK(BM_RawLinkedQueue);

// ---- simulated, one CPU: raw vs wrapped (simulated cycles as counters) ----

template <class MakeMap>
void run_simulated_map_ops(benchmark::State& state, MakeMap make_map) {
  // One simulation per measurement batch; each "iteration" is one
  // transactional (put+get) pair on virtual CPU 0.
  std::uint64_t total_sim_cycles = 0;
  std::uint64_t total_ops = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine eng(one_cpu_tcc());
    atomos::Runtime rt(eng);
    auto map = make_map();
    for (long k = 0; k < 256; ++k) map->put(k, k);
    constexpr int kOps = 256;
    state.ResumeTiming();
    eng.spawn([&] {
      for (long k = 0; k < kOps; ++k) {
        atomos::atomically([&] {
          map->put(k % 512, k);
          benchmark::DoNotOptimize(map->get((k * 7) % 512));
        });
      }
    });
    eng.run();
    total_sim_cycles += eng.elapsed_cycles();
    total_ops += kOps;
  }
  state.counters["sim_cycles_per_op"] =
      benchmark::Counter(static_cast<double>(total_sim_cycles) /
                         static_cast<double>(total_ops == 0 ? 1 : total_ops));
}

void BM_SimulatedHashMapTxn(benchmark::State& state) {
  run_simulated_map_ops(state, [] {
    return std::unique_ptr<jstd::Map<long, long>>(
        std::make_unique<jstd::HashMap<long, long>>(1024));
  });
}
BENCHMARK(BM_SimulatedHashMapTxn)->Unit(benchmark::kMicrosecond);

void BM_SimulatedTransactionalMapTxn(benchmark::State& state) {
  run_simulated_map_ops(state, [] {
    return std::unique_ptr<jstd::Map<long, long>>(
        std::make_unique<tcc::TransactionalMap<long, long>>(
            std::make_unique<jstd::HashMap<long, long>>(1024)));
  });
}
BENCHMARK(BM_SimulatedTransactionalMapTxn)->Unit(benchmark::kMicrosecond);

void BM_SimulatedTreeMapTxn(benchmark::State& state) {
  run_simulated_map_ops(state, [] {
    return std::unique_ptr<jstd::Map<long, long>>(std::make_unique<jstd::TreeMap<long, long>>());
  });
}
BENCHMARK(BM_SimulatedTreeMapTxn)->Unit(benchmark::kMicrosecond);

void BM_SimulatedTransactionalSortedMapTxn(benchmark::State& state) {
  run_simulated_map_ops(state, [] {
    return std::unique_ptr<jstd::Map<long, long>>(
        std::make_unique<tcc::TransactionalSortedMap<long, long>>(
            std::make_unique<jstd::TreeMap<long, long>>()));
  });
}
BENCHMARK(BM_SimulatedTransactionalSortedMapTxn)->Unit(benchmark::kMicrosecond);

// ---- fiber / engine primitives ----

void BM_FiberRoundTrip(benchmark::State& state) {
  // One resume+yield round trip per iteration (two context switches), with
  // a bounded body so the fiber finishes cleanly.
  const auto n = static_cast<std::size_t>(state.max_iterations) + 1;
  sim::Fiber f([n] {
    for (std::size_t i = 0; i < n; ++i) sim::Fiber::yield();
  });
  for (auto _ : state) f.resume();
  while (!f.finished()) f.resume();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FiberRoundTrip);

}  // namespace

BENCHMARK_MAIN();
