// Figure 4 — high-contention SPECjbb2000 (paper Section 6.3).
//
// Every thread serves TPC-C-style requests against a SINGLE warehouse.
// Series (paper): "Java" — the original fine-grained synchronized version,
// limited by the shared-warehouse locks; "Atomos Baseline" — each of the
// five operations as one coarse transaction, worst (counter + collection
// internals conflicts); "Atomos Open" — open-nested counters recover much
// of the loss; "Atomos Transactional" — + TransactionalMap/SortedMap around
// historyTable / orderTable / newOrderTable, the best transactional result.
#include "bench/testmap_common.h"
#include "harness/driver.h"
#include "jbb/engine.h"

namespace {

harness::Series jbb_series(const std::string& name, jbb::Flavor flavor, int total_ops) {
  const sim::Mode mode = flavor == jbb::Flavor::kJava ? sim::Mode::kLock : sim::Mode::kTcc;
  return harness::Series{
      name, mode,
      [name, flavor, mode, total_ops](int cpus, std::uint64_t salt, harness::RunResult& out) {
        jbb::JbbConfig jc;
        jc.flavor = flavor;
        jc.districts = 10;
        jc.items = 2000;  // TPC-C-like catalogue: stock collisions are rare
        jc.customers_per_district = 60;
        jc.think_cycles = 1200;
        sim::Engine eng(bench::make_cfg(mode, cpus));
        atomos::Runtime rt(eng);
        jbb::Engine engine(jc);
        const int per_cpu = total_ops / cpus;
        std::vector<jbb::OpCounts> counts(static_cast<std::size_t>(cpus));
        for (int c = 0; c < cpus; ++c) {
          eng.spawn([&, c, salt] {
            std::uint64_t rng = 4242 + salt + static_cast<std::uint64_t>(c) * 6151;
            for (int i = 0; i < per_cpu; ++i) {
              const int d = static_cast<int>((rng >> 40) % 10);
              engine.run_mixed_op(d, rng, counts[static_cast<std::size_t>(c)]);
            }
          });
        }
        eng.run();
        std::string why;
        if (!engine.check_consistency(&why)) {
          std::fprintf(stderr, "CONSISTENCY FAILURE [%s cpus=%d]: %s\n", name.c_str(),
                       cpus, why.c_str());
        }
        bench::collect_stats(eng, out);
      }};
}

}  // namespace

int main(int argc, char** argv) {
  // The high-contention Atomos Open 32-CPU point is pathologically slow by
  // design (billions of simulated cycles of violations) — give fig4 a much
  // larger default per-point timeout than the other figures.
  const harness::Cli cli =
      harness::Cli::parse(argc, argv, "fig4_specjbb", /*default_timeout_sec=*/1800.0);
  // 3200 requests against the single warehouse — a step toward the paper's
  // op counts now that the driver shards points across host threads.
  const int total_ops = cli.ops > 0 ? static_cast<int>(cli.ops) : 3200;
  std::vector<harness::Series> series;
  series.push_back(jbb_series("Java", jbb::Flavor::kJava, total_ops));
  series.push_back(jbb_series("Atomos Baseline", jbb::Flavor::kAtomosBaseline, total_ops));
  series.push_back(jbb_series("Atomos Open", jbb::Flavor::kAtomosOpen, total_ops));
  series.push_back(
      jbb_series("Atomos Transactional", jbb::Flavor::kAtomosTransactional, total_ops));

  return harness::run_figure_main(
      "Figure 4: SPECjbb2000, high-contention single-warehouse configuration", series,
      bench::paper_cpu_counts(), "fig4_specjbb.csv", cli);
}
