// Figure 1 — TestMap (paper Section 6.2).
//
// Multi-threaded 80/10/10 access to a single Map inside long transactions.
// Expected shape (paper): "Java HashMap" scales nearly linearly (the lock is
// held briefly relative to the surrounding computation); "Atomos HashMap"
// plateaus because semantically-independent operations conflict on the
// HashMap's internal size field; "Atomos TransactionalMap" — the same
// HashMap wrapped in the transactional collection class — regains the Java
// scalability while keeping whole-body atomicity.
#include "bench/testmap_common.h"
#include "harness/driver.h"

int main(int argc, char** argv) {
  using namespace bench;
  const harness::Cli cli = harness::Cli::parse(argc, argv, "fig1_testmap");
  TestMapParams p;
  if (cli.ops > 0) p.total_ops = static_cast<int>(cli.ops);

  auto make_hash = [&p] {
    return std::make_unique<jstd::HashMap<long, long>>(
        static_cast<std::size_t>(p.key_space) * 2);
  };
  auto make_wrapped = [&p, make_hash]() -> std::unique_ptr<jstd::Map<long, long>> {
    return std::make_unique<tcc::TransactionalMap<long, long>>(make_hash());
  };

  std::vector<harness::Series> series;
  series.push_back(java_series("Java HashMap", p, make_hash));
  series.push_back(atomos_series("Atomos HashMap", p, make_hash));
  series.push_back(atomos_series("Atomos TransactionalMap", p, make_wrapped));

  return harness::run_figure_main(
      "Figure 1: TestMap (80% get / 10% put / 10% remove, long transactions)", series,
      paper_cpu_counts(), "fig1_testmap.csv", cli);
}
