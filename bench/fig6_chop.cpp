// Figure 6 (new experiment): transaction chopping over open nesting.
//
// Both high-contention workloads — the single-warehouse SPECjbb engine
// (closed system) and the open-system request server — run under three
// synchronization shapes:
//
//   Flat    — each operation/handler is ONE coarse transaction
//             (jbb kAtomosBaseline, srv kFlatTm);
//   Open    — the paper's best: open-nested counters + semantic
//             transactional collections (jbb kAtomosTransactional,
//             srv kSemanticTm);
//   Chopped — Open, plus tm::chopped(): NewOrder/Payment and the srv
//             dequeue/handle path commit as rank-ordered pieces, so the
//             conflict window shrinks from the whole operation to one
//             piece (jbb kAtomosChopped, srv kChoppedTm).
//
// Shared extras columns: committed throughput per million cycles,
// p50/p99/p999 latency (jbb: per-operation service latency; srv: sojourn
// time under offered load 1.2), aborts per commit, the fraction of CPU
// cycles wasted in aborted work, and the chop attribution counters
// (committed pieces, forward-dependency breaks) from Runtime::chop_stats().
//
//   ./fig6_chop                   # full sweep, writes fig6_chop.csv
//   ./fig6_chop --only Chopped    # the two chopped series
//   ./fig6_chop --jobs 8          # byte-identical CSV, 8 host threads
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/testmap_common.h"
#include "harness/driver.h"
#include "harness/latency.h"
#include "jbb/engine.h"
#include "srv/workload.h"

namespace {

void common_extras(harness::RunResult& out, double tput,
                   const harness::LatencyHistogram& lat, std::uint64_t cpu_cycles,
                   std::uint64_t chop_pieces, std::uint64_t chop_breaks) {
  const double commits = out.commits != 0 ? static_cast<double>(out.commits) : 1.0;
  const double busy = cpu_cycles != 0 ? static_cast<double>(cpu_cycles) : 1.0;
  out.extras = {
      {"tput_per_mcyc", tput},
      {"p50", static_cast<double>(lat.quantile(0.50))},
      {"p99", static_cast<double>(lat.quantile(0.99))},
      {"p999", static_cast<double>(lat.quantile(0.999))},
      {"aborts_per_commit", static_cast<double>(out.violations) / commits},
      {"wasted_frac", static_cast<double>(out.lost_cycles) / busy},
      {"chop_pieces", static_cast<double>(chop_pieces)},
      {"chop_breaks", static_cast<double>(chop_breaks)},
  };
}

/// High-contention single-warehouse engine (fewer districts than CPUs), with
/// a per-operation service-latency histogram.
harness::Series jbb_series(const std::string& name, jbb::Flavor flavor, int total_ops) {
  const sim::Mode mode = flavor == jbb::Flavor::kJava ? sim::Mode::kLock : sim::Mode::kTcc;
  return harness::Series{
      name, mode,
      [name, flavor, mode, total_ops](int cpus, std::uint64_t salt, harness::RunResult& out) {
        jbb::JbbConfig jc;
        jc.flavor = flavor;
        jc.districts = 4;  // fewer districts than CPUs: guaranteed contention
        jc.items = 256;
        jc.customers_per_district = 16;
        jc.think_cycles = 800;
        sim::Engine eng(bench::make_cfg(mode, cpus));
        atomos::Runtime rt(eng);
        jbb::Engine engine(jc);
        const int per_cpu = total_ops / cpus;
        std::vector<jbb::OpCounts> counts(static_cast<std::size_t>(cpus));
        std::vector<harness::LatencyHistogram> lat(static_cast<std::size_t>(cpus));
        for (int c = 0; c < cpus; ++c) {
          eng.spawn([&, c, salt] {
            std::uint64_t rng = 4242 + salt + static_cast<std::uint64_t>(c) * 6151;
            for (int i = 0; i < per_cpu; ++i) {
              const int d = static_cast<int>((rng >> 40) %
                                             static_cast<std::uint64_t>(jc.districts));
              const std::uint64_t start = eng.now();
              engine.run_mixed_op(d, rng, counts[static_cast<std::size_t>(c)]);
              lat[static_cast<std::size_t>(c)].record(eng.now() - start);
            }
          });
        }
        eng.run();
        std::string why;
        if (!engine.check_consistency(&why)) {
          std::fprintf(stderr, "CONSISTENCY FAILURE [%s cpus=%d]: %s\n", name.c_str(),
                       cpus, why.c_str());
        }
        bench::collect_stats(eng, out);
        harness::LatencyHistogram merged;
        for (const auto& h : lat) merged += h;
        const double tput = out.cycles == 0
                                ? 0.0
                                : 1e6 * static_cast<double>(per_cpu) *
                                      static_cast<double>(cpus) /
                                      static_cast<double>(out.cycles);
        common_extras(out, tput, merged,
                      static_cast<std::uint64_t>(cpus) * out.cycles,
                      rt.chop_stats().pieces, rt.chop_stats().dep_breaks);
      }};
}

/// Open-system server pushed past saturation (offered load 1.2): committed
/// throughput is service-bound, so it measures the synchronization shape
/// rather than the arrival rate.  The latency columns are sojourn time
/// (arrival -> commit).
harness::Series srv_series(const std::string& name, srv::Flavor f, int requests) {
  srv::SrvConfig cfg;
  cfg.load = 1.2;
  cfg.requests = requests;
  return harness::Series{
      name, sim::Mode::kTcc,
      [cfg, f](int cpus, std::uint64_t salt, harness::RunResult& out) {
        srv::SrvReport rep;
        srv::run_server(f, cfg, cpus, salt, rep, &out);
        const double tput = rep.last_commit == 0
                                ? 0.0
                                : 1e6 * static_cast<double>(rep.completed) /
                                      static_cast<double>(rep.last_commit);
        common_extras(out, tput, rep.sojourn,
                      static_cast<std::uint64_t>(cpus) * out.cycles,
                      rep.chop_pieces, rep.chop_dep_breaks);
      }};
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli =
      harness::Cli::parse(argc, argv, "fig6_chop", /*default_timeout_sec=*/1800.0);
  const int jbb_ops = cli.ops > 0 ? static_cast<int>(cli.ops) : 1600;
  const int srv_reqs = cli.ops > 0 ? static_cast<int>(cli.ops) : 900;

  std::vector<harness::Series> series;
  series.push_back(jbb_series("jbb Flat", jbb::Flavor::kAtomosBaseline, jbb_ops));
  series.push_back(jbb_series("jbb Open", jbb::Flavor::kAtomosTransactional, jbb_ops));
  series.push_back(jbb_series("jbb Chopped", jbb::Flavor::kAtomosChopped, jbb_ops));
  series.push_back(srv_series("srv Flat", srv::Flavor::kFlatTm, srv_reqs));
  series.push_back(srv_series("srv Semantic", srv::Flavor::kSemanticTm, srv_reqs));
  series.push_back(srv_series("srv Chopped", srv::Flavor::kChoppedTm, srv_reqs));

  return harness::run_figure_main(
      "Figure 6: transaction chopping over open nesting, high contention", series,
      {8, 32}, "fig6_chop.csv", cli);
}
