// Figure 3 — TestCompound (paper Section 6.2).
//
// Each iteration composes TWO map operations with computation between them
// (plus computation before and after).  The Java version must hold a coarse
// lock across the whole compound region to stay atomic — so it barely
// scales.  Atomos runs the entire loop body as one transaction: with a raw
// HashMap it conflicts on internals (little better than the coarse lock);
// with TransactionalMap it is BOTH composable and scalable — the paper's
// "composability without sacrificing concurrency" result.
#include "bench/testmap_common.h"
#include "harness/driver.h"

namespace bench {

/// The compound operation: read one key, compute, update another key.
template <class MapT>
void compound_op(MapT& map, long key_space, std::uint64_t& s, std::uint64_t inner_think) {
  const long k1 = static_cast<long>(rnd(s) % static_cast<std::uint64_t>(key_space));
  const long k2 = static_cast<long>(rnd(s) % static_cast<std::uint64_t>(key_space));
  auto v = map.get(k1);
  if (sim::Engine::in_worker()) {
    if (atomos::Runtime::active()) {
      atomos::Runtime::current().work(inner_think);
    } else {
      sim::Engine::get().tick(inner_think);
    }
  }
  map.put(k2, v.value_or(0) + 1);
}

template <class MakeMap>
harness::Series java_compound(const std::string& name, const TestMapParams& p, MakeMap make_map) {
  return harness::Series{
      name, sim::Mode::kLock,
      [p, make_map](int cpus, std::uint64_t salt, harness::RunResult& out) {
        sim::Engine eng(make_cfg(sim::Mode::kLock, cpus));
        atomos::Runtime rt(eng);
        auto map = make_map();
        for (long k = 0; k < p.prepopulate; ++k) map->put(k * 2 % p.key_space, k);
        atomos::Mutex mu;
        const int per_cpu = p.total_ops / cpus;
        for (int c = 0; c < cpus; ++c) {
          eng.spawn([&, c, salt] {
            std::uint64_t s = p.seed + salt + static_cast<std::uint64_t>(c) * 7919;
            for (int i = 0; i < per_cpu; ++i) {
              atomos::Runtime::current().work(p.think_cycles / 2);
              {
                // Coarse lock ACROSS the compound region, including the
                // computation between the two operations.
                atomos::LockGuard g(mu);
                compound_op(*map, p.key_space, s, p.think_cycles);
              }
              atomos::Runtime::current().work(p.think_cycles / 2);
            }
          });
        }
        eng.run();
        collect_stats(eng, out);
      }};
}

template <class MakeMap>
harness::Series atomos_compound(const std::string& name, const TestMapParams& p,
                                MakeMap make_map) {
  return harness::Series{
      name, sim::Mode::kTcc,
      [p, make_map](int cpus, std::uint64_t salt, harness::RunResult& out) {
        sim::Engine eng(make_cfg(sim::Mode::kTcc, cpus));
        atomos::Runtime rt(eng);
        auto map = make_map();
        for (long k = 0; k < p.prepopulate; ++k) map->put(k * 2 % p.key_space, k);
        const int per_cpu = p.total_ops / cpus;
        for (int c = 0; c < cpus; ++c) {
          eng.spawn([&, c, salt] {
            std::uint64_t s = p.seed + salt + static_cast<std::uint64_t>(c) * 7919;
            for (int i = 0; i < per_cpu; ++i) {
              const std::uint64_t body_seed = s;
              atomos::atomically([&] {
                std::uint64_t bs = body_seed;
                atomos::work(p.think_cycles / 2);
                compound_op(*map, p.key_space, bs, p.think_cycles);
                atomos::work(p.think_cycles / 2);
              });
              rnd(s);
              rnd(s);
            }
          });
        }
        eng.run();
        collect_stats(eng, out);
      }};
}

}  // namespace bench

int main(int argc, char** argv) {
  using namespace bench;
  const harness::Cli cli = harness::Cli::parse(argc, argv, "fig3_testcompound");
  TestMapParams p;
  p.total_ops = 3200;
  if (cli.ops > 0) p.total_ops = static_cast<int>(cli.ops);

  auto make_hash = [&p] {
    return std::make_unique<jstd::HashMap<long, long>>(
        static_cast<std::size_t>(p.key_space) * 2);
  };
  auto make_wrapped = [make_hash]() -> std::unique_ptr<jstd::Map<long, long>> {
    return std::make_unique<tcc::TransactionalMap<long, long>>(make_hash());
  };

  std::vector<harness::Series> series;
  series.push_back(java_compound("Java HashMap (coarse lock)", p, make_hash));
  series.push_back(atomos_compound("Atomos HashMap", p, make_hash));
  series.push_back(atomos_compound("Atomos TransactionalMap", p, make_wrapped));

  return harness::run_figure_main("Figure 3: TestCompound (two composed ops + computation)",
                                  series, paper_cpu_counts(), "fig3_testcompound.csv", cli);
}
