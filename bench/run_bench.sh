#!/usr/bin/env bash
# Runs the perf benches and writes machine-readable results at the repo
# root, so the perf trajectory (BENCH_*.json) is tracked over time:
#
#   BENCH_op_overhead.json  - google-benchmark JSON for tbl_op_overhead
#   BENCH_hotpath.json      - wall-clock TM hot-path throughput (normalized
#                             by a host calibration loop; see hotpath.cpp)
#   BENCH_figs.json         - per-figure wall-clock of the six figure
#                             sweeps + the ablation tables, each run through
#                             the host-parallel driver with --jobs $JOBS
#
# The figure CSVs (fig1..fig6_*.csv) are regenerated in place; the driver
# guarantees they are byte-identical for any JOBS value, so a non-empty
# `git diff *.csv` after this script means simulated timing really changed.
#
# Usage: [JOBS=n] bench/run_bench.sh [build-dir]   (default: build, JOBS=nproc)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="${JOBS:-$(nproc)}"

if [[ ! -x "$BUILD_DIR/bench/hotpath" ]]; then
  echo "run_bench.sh: $BUILD_DIR/bench/hotpath not built" >&2
  exit 1
fi

"$BUILD_DIR/bench/tbl_op_overhead" \
  --benchmark_out=BENCH_op_overhead.json --benchmark_out_format=json

# hotpath records its trace-on twins itself ("<name>_traced" scenarios with
# an in-memory tracer attached), so the JSON carries the tracing overhead and
# the sim-cycle transparency witness; tools/check_hotpath.py gates both.
"$BUILD_DIR/bench/hotpath" BENCH_hotpath.json

# --- figure sweeps + ablations through the parallel driver ---
FIG_RESULTS=()
run_fig() {
  local name="$1"; shift
  local t0 t1 dt
  t0=$(date +%s.%N)
  "$@" --jobs "$JOBS"
  t1=$(date +%s.%N)
  dt=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')
  FIG_RESULTS+=("{\"name\": \"$name\", \"jobs\": $JOBS, \"wall_seconds\": $dt}")
  echo "run_bench.sh: $name done in ${dt}s (jobs=$JOBS)"
}

run_fig fig1_testmap      "$BUILD_DIR/bench/fig1_testmap"
run_fig fig2_testsortedmap "$BUILD_DIR/bench/fig2_testsortedmap"
run_fig fig3_testcompound "$BUILD_DIR/bench/fig3_testcompound"
run_fig fig4_specjbb      "$BUILD_DIR/bench/fig4_specjbb"
run_fig fig5_srv          "$BUILD_DIR/bench/fig5_srv"
run_fig fig6_chop         "$BUILD_DIR/bench/fig6_chop"
run_fig ablations         "$BUILD_DIR/bench/ablations"

{
  echo "{"
  echo "  \"bench\": \"figs\","
  echo "  \"jobs\": $JOBS,"
  echo "  \"results\": ["
  for i in "${!FIG_RESULTS[@]}"; do
    sep=","
    [[ $i -eq $((${#FIG_RESULTS[@]} - 1)) ]] && sep=""
    echo "    ${FIG_RESULTS[$i]}$sep"
  done
  echo "  ]"
  echo "}"
} > BENCH_figs.json

echo "run_bench.sh: wrote BENCH_op_overhead.json BENCH_hotpath.json BENCH_figs.json"
