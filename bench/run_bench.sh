#!/usr/bin/env bash
# Runs the perf benches and writes machine-readable results at the repo
# root, so the perf trajectory (BENCH_*.json) is tracked over time:
#
#   BENCH_op_overhead.json  - google-benchmark JSON for tbl_op_overhead
#   BENCH_hotpath.json      - wall-clock TM hot-path throughput (normalized
#                             by a host calibration loop; see hotpath.cpp)
#
# Usage: bench/run_bench.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -x "$BUILD_DIR/bench/hotpath" ]]; then
  echo "run_bench.sh: $BUILD_DIR/bench/hotpath not built" >&2
  exit 1
fi

"$BUILD_DIR/bench/tbl_op_overhead" \
  --benchmark_out=BENCH_op_overhead.json --benchmark_out_format=json

"$BUILD_DIR/bench/hotpath" BENCH_hotpath.json

echo "run_bench.sh: wrote BENCH_op_overhead.json BENCH_hotpath.json"
