// Ablation benchmarks for the Section 5.1 design discussion:
//
//  A. isEmpty as primitive vs derived-from-size (the `if (!m.isEmpty())
//     m.put(k)` example),
//  B. blind puts vs value-returning puts on one hot key ("LastModified"),
//  C. segmented ConcurrentHashMap vs TransactionalMap under long
//     transactions (Section 2.4: segmentation only reduces the odds),
//  D. optimistic vs pessimistic semantic conflict detection,
//  E. contention managers (Polite / Aggressive / Karma) on a hot cell.
//
// Each configuration is an independent simulation, so the rows are
// NamedTasks on the harness driver pool: `--jobs N` runs them across host
// threads, `--only <substring>` selects a subset, and the printed tables
// are identical for every N (rows are merged in task order).
#include "bench/testmap_common.h"
#include "harness/driver.h"
#include "jstd/concurrenthashmap.h"

namespace {

using namespace bench;

std::string row(const char* name, sim::Engine& eng) {
  const sim::CpuStats s = eng.stats().summed();
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-44s %12llu %8llu %8llu %8llu", name,
                static_cast<unsigned long long>(eng.elapsed_cycles()),
                static_cast<unsigned long long>(s.violations),
                static_cast<unsigned long long>(s.semantic_violations),
                static_cast<unsigned long long>(s.lost_cycles));
  return buf;
}

// --- A: isEmpty primitive vs size()==0 ---

constexpr const char* kSectionA =
    "Ablation A (S5.1): isEmpty primitive vs size()-derived emptiness check";

std::string run_isempty(bool use_isempty) {
  sim::Engine eng(make_cfg(sim::Mode::kTcc, 8));
  atomos::Runtime rt(eng);
  tcc::TransactionalMap<long, long> map(std::make_unique<jstd::HashMap<long, long>>(1024));
  map.put(0, 0);  // never empty
  for (int c = 0; c < 8; ++c) {
    eng.spawn([&, c] {
      for (int i = 0; i < 40; ++i) {
        atomos::atomically([&] {
          const bool nonempty = use_isempty ? !map.is_empty() : map.size() != 0;
          if (nonempty) map.put(1000 + c * 100 + i, 1);  // unique keys
          atomos::work(600);
        });
      }
    });
  }
  eng.run();
  return row(use_isempty ? "if (!m.isEmpty()) m.put(unique)" : "if (m.size()!=0) m.put(unique)",
             eng);
}

// --- B: blind put vs value-returning put on one hot key ---

constexpr const char* kSectionB =
    "Ablation B (S5.1): put_blind vs put on one hot key (LastModified pattern)";

std::string run_blindput(bool blind) {
  sim::Engine eng(make_cfg(sim::Mode::kTcc, 8));
  atomos::Runtime rt(eng);
  tcc::TransactionalMap<long, long> map(std::make_unique<jstd::HashMap<long, long>>(64));
  for (int c = 0; c < 8; ++c) {
    eng.spawn([&, c] {
      for (int i = 0; i < 40; ++i) {
        atomos::atomically([&] {
          if (blind) {
            map.put_blind(7, c * 1000 + i);  // "LastModified = now"
          } else {
            (void)map.put(7, c * 1000 + i);  // reads the old value too
          }
          atomos::work(600);
        });
      }
    });
  }
  eng.run();
  return row(blind ? "map.put_blind(LastModified, now)" : "map.put(LastModified, now)", eng);
}

// --- C: segmented map vs transactional wrapper under long transactions ---

constexpr const char* kSectionC =
    "Ablation C (S2.4): segmented ConcurrentHashMap vs TransactionalMap, long txns";

enum class MapKind { kPlain, kSegmented, kTransactional };

std::string run_segmented(const char* name, MapKind kind, int cpus = 16) {
  sim::Engine eng(make_cfg(sim::Mode::kTcc, cpus));
  atomos::Runtime rt(eng);
  std::unique_ptr<jstd::Map<long, long>> map;
  switch (kind) {
    case MapKind::kPlain:
      map = std::make_unique<jstd::HashMap<long, long>>(1024);
      break;
    case MapKind::kSegmented:
      map = std::make_unique<jstd::ConcurrentHashMap<long, long>>(16, 64);
      break;
    case MapKind::kTransactional:
      map = std::make_unique<tcc::TransactionalMap<long, long>>(
          std::make_unique<jstd::HashMap<long, long>>(1024));
      break;
  }
  TestMapParams p;
  p.think_cycles = 1500;
  for (long k = 0; k < p.prepopulate; ++k) map->put(k * 2 % p.key_space, k);
  for (int c = 0; c < cpus; ++c) {
    eng.spawn([&, c] {
      std::uint64_t s = 99 + static_cast<std::uint64_t>(c) * 17;
      // Update-heavy: several inserts/removes per transaction, so the
      // chance that two transactions touch the same SEGMENT stays high.
      for (int i = 0; i < 20; ++i) {
        const std::uint64_t body_seed = s;
        atomos::atomically([&] {
          std::uint64_t bs = body_seed;
          for (int j = 0; j < 4; ++j) {
            const long key = static_cast<long>(rnd(bs) % 512);
            if (rnd(bs) % 2 == 0) {
              map->put(key, key);
            } else {
              map->remove(key);
            }
          }
          atomos::work(p.think_cycles);
        });
        for (int j = 0; j < 8; ++j) rnd(s);
      }
    });
  }
  eng.run();
  return row(name, eng);
}

// --- D: optimistic vs pessimistic detection ---

constexpr const char* kSectionD =
    "Ablation D (S5.1): optimistic vs pessimistic semantic detection, hot keys";

std::string run_pessimistic(tcc::Detection det) {
  sim::Engine eng(make_cfg(sim::Mode::kTcc, 8));
  atomos::Runtime rt(eng);
  tcc::TransactionalMap<long, long> map(std::make_unique<jstd::HashMap<long, long>>(256), det);
  for (long k = 0; k < 8; ++k) map.put(k, k);
  for (int c = 0; c < 8; ++c) {
    eng.spawn([&, c] {
      std::uint64_t s = 5 + static_cast<std::uint64_t>(c);
      for (int i = 0; i < 30; ++i) {
        const std::uint64_t body_seed = s;
        atomos::atomically([&] {
          std::uint64_t bs = body_seed;
          const long key = static_cast<long>(rnd(bs) % 8);  // tiny key space
          (void)map.get(key);
          atomos::work(400);
          map.put(key, static_cast<long>(i));
          atomos::work(400);
        });
        rnd(s);
        rnd(s);
      }
    });
  }
  eng.run();
  return row(det == tcc::Detection::kOptimistic ? "optimistic (commit-time detection)"
                                                : "pessimistic (operation-time dooming)",
             eng);
}

// --- E: contention managers ---

constexpr const char* kSectionE =
    "Ablation E (S5.1): contention managers on a contended cell";

enum class Cm { kPolite, kAggressive, kKarma };

std::string run_contention(const char* name, Cm which) {
  std::unique_ptr<atomos::ContentionManager> cm;
  switch (which) {
    case Cm::kPolite: cm = std::make_unique<atomos::PoliteBackoff>(); break;
    case Cm::kAggressive: cm = std::make_unique<atomos::AggressiveRetry>(); break;
    case Cm::kKarma: cm = std::make_unique<atomos::KarmaBackoff>(); break;
  }
  sim::Engine eng(make_cfg(sim::Mode::kTcc, 8));
  atomos::Runtime rt(eng, std::move(cm));
  atomos::Shared<long> hot(0);
  for (int c = 0; c < 8; ++c) {
    eng.spawn([&] {
      for (int i = 0; i < 40; ++i) {
        atomos::atomically([&] {
          hot.set(hot.get() + 1);
          atomos::work(300);
        });
      }
    });
  }
  eng.run();
  return row(name, eng);
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli = harness::Cli::parse(argc, argv, "ablations");

  std::vector<harness::NamedTask> tasks;
  tasks.push_back({kSectionA, "isEmpty primitive", [] { return run_isempty(true); }});
  tasks.push_back({kSectionA, "size()!=0 derived", [] { return run_isempty(false); }});
  tasks.push_back({kSectionB, "put_blind", [] { return run_blindput(true); }});
  tasks.push_back({kSectionB, "put", [] { return run_blindput(false); }});
  tasks.push_back({kSectionC, "plain HashMap", [] {
                     return run_segmented("plain HashMap (1 size field)", MapKind::kPlain);
                   }});
  tasks.push_back({kSectionC, "ConcurrentHashMap", [] {
                     return run_segmented("ConcurrentHashMap (16 segments)",
                                          MapKind::kSegmented);
                   }});
  tasks.push_back({kSectionC, "TransactionalMap", [] {
                     return run_segmented("TransactionalMap (semantic locks)",
                                          MapKind::kTransactional);
                   }});
  // CPU-width sweep of the same contrast: per-CPU work is fixed, so these
  // rows show how segment vs semantic conflict odds scale as the engine's
  // CPU axis widens past the paper's 16/32 (16 segments saturate long
  // before 128 writers do).
  tasks.push_back({kSectionC, "ConcurrentHashMap @64", [] {
                     return run_segmented("ConcurrentHashMap (16 segments) @64cpu",
                                          MapKind::kSegmented, 64);
                   }});
  tasks.push_back({kSectionC, "TransactionalMap @64", [] {
                     return run_segmented("TransactionalMap (semantic locks) @64cpu",
                                          MapKind::kTransactional, 64);
                   }});
  tasks.push_back({kSectionC, "ConcurrentHashMap @128", [] {
                     return run_segmented("ConcurrentHashMap (16 segments) @128cpu",
                                          MapKind::kSegmented, 128);
                   }});
  tasks.push_back({kSectionC, "TransactionalMap @128", [] {
                     return run_segmented("TransactionalMap (semantic locks) @128cpu",
                                          MapKind::kTransactional, 128);
                   }});
  tasks.push_back({kSectionD, "optimistic",
                   [] { return run_pessimistic(tcc::Detection::kOptimistic); }});
  tasks.push_back({kSectionD, "pessimistic",
                   [] { return run_pessimistic(tcc::Detection::kPessimistic); }});
  tasks.push_back({kSectionE, "PoliteBackoff", [] {
                     return run_contention("PoliteBackoff (exponential + jitter)", Cm::kPolite);
                   }});
  tasks.push_back({kSectionE, "AggressiveRetry", [] {
                     return run_contention("AggressiveRetry (no backoff)", Cm::kAggressive);
                   }});
  tasks.push_back({kSectionE, "KarmaBackoff", [] {
                     return run_contention("KarmaBackoff (losers back off less)", Cm::kKarma);
                   }});

  const std::vector<harness::TaskRow> rows = harness::run_tasks(tasks, cli.opts);

  bool any_poisoned = false;
  std::string open_section;
  for (const harness::TaskRow& r : rows) {
    if (r.section != open_section) {
      std::printf("\n=== %s ===\n%-44s %12s %8s %8s %8s\n", r.section.c_str(),
                  "configuration", "cycles", "viol", "sem", "lost");
      open_section = r.section;
    }
    if (r.poisoned) {
      any_poisoned = true;
      std::printf("%-44s POISONED: %s\n", r.name.c_str(), r.error.c_str());
    } else {
      std::printf("%s\n", r.text.c_str());
    }
  }
  std::fflush(stdout);
  return any_poisoned ? 1 : 0;
}
