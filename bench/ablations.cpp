// Ablation benchmarks for the Section 5.1 design discussion:
//
//  A. isEmpty as primitive vs derived-from-size (the `if (!m.isEmpty())
//     m.put(k)` example),
//  B. blind puts vs value-returning puts on one hot key ("LastModified"),
//  C. segmented ConcurrentHashMap vs TransactionalMap under long
//     transactions (Section 2.4: segmentation only reduces the odds),
//  D. optimistic vs pessimistic semantic conflict detection,
//  E. contention managers (Polite / Aggressive / Karma) on a hot cell.
#include "bench/testmap_common.h"
#include "jstd/concurrenthashmap.h"

namespace {

using namespace bench;

void print_row(const char* name, std::uint64_t cycles, std::uint64_t violations,
               std::uint64_t semantic, std::uint64_t lost) {
  std::printf("%-44s %12llu %8llu %8llu %8llu\n", name,
              static_cast<unsigned long long>(cycles),
              static_cast<unsigned long long>(violations),
              static_cast<unsigned long long>(semantic),
              static_cast<unsigned long long>(lost));
}

void header(const char* title) {
  std::printf("\n=== %s ===\n%-44s %12s %8s %8s %8s\n", title, "configuration", "cycles",
              "viol", "sem", "lost");
}

// --- A: isEmpty primitive vs size()==0 ---

void ablation_isempty() {
  header("Ablation A (S5.1): isEmpty primitive vs size()-derived emptiness check");
  for (bool use_isempty : {true, false}) {
    sim::Engine eng(make_cfg(sim::Mode::kTcc, 8));
    atomos::Runtime rt(eng);
    tcc::TransactionalMap<long, long> map(std::make_unique<jstd::HashMap<long, long>>(1024));
    map.put(0, 0);  // never empty
    for (int c = 0; c < 8; ++c) {
      eng.spawn([&, c] {
        for (int i = 0; i < 40; ++i) {
          atomos::atomically([&] {
            const bool nonempty = use_isempty ? !map.is_empty() : map.size() != 0;
            if (nonempty) map.put(1000 + c * 100 + i, 1);  // unique keys
            atomos::work(600);
          });
        }
      });
    }
    eng.run();
    print_row(use_isempty ? "if (!m.isEmpty()) m.put(unique)" : "if (m.size()!=0) m.put(unique)",
              eng.elapsed_cycles(), eng.stats().total(&sim::CpuStats::violations),
              eng.stats().total(&sim::CpuStats::semantic_violations),
              eng.stats().total(&sim::CpuStats::lost_cycles));
  }
}

// --- B: blind put vs value-returning put on one hot key ---

void ablation_blindput() {
  header("Ablation B (S5.1): put_blind vs put on one hot key (LastModified pattern)");
  for (bool blind : {true, false}) {
    sim::Engine eng(make_cfg(sim::Mode::kTcc, 8));
    atomos::Runtime rt(eng);
    tcc::TransactionalMap<long, long> map(std::make_unique<jstd::HashMap<long, long>>(64));
    for (int c = 0; c < 8; ++c) {
      eng.spawn([&, c] {
        for (int i = 0; i < 40; ++i) {
          atomos::atomically([&] {
            if (blind) {
              map.put_blind(7, c * 1000 + i);  // "LastModified = now"
            } else {
              (void)map.put(7, c * 1000 + i);  // reads the old value too
            }
            atomos::work(600);
          });
        }
      });
    }
    eng.run();
    print_row(blind ? "map.put_blind(LastModified, now)" : "map.put(LastModified, now)",
              eng.elapsed_cycles(), eng.stats().total(&sim::CpuStats::violations),
              eng.stats().total(&sim::CpuStats::semantic_violations),
              eng.stats().total(&sim::CpuStats::lost_cycles));
  }
}

// --- C: segmented map vs transactional wrapper under long transactions ---

void ablation_segmented() {
  header("Ablation C (S2.4): segmented ConcurrentHashMap vs TransactionalMap, long txns");
  auto run = [&](const char* name, auto make_map) {
    sim::Engine eng(make_cfg(sim::Mode::kTcc, 16));
    atomos::Runtime rt(eng);
    auto map = make_map();
    TestMapParams p;
    p.think_cycles = 1500;
    for (long k = 0; k < p.prepopulate; ++k) map->put(k * 2 % p.key_space, k);
    for (int c = 0; c < 16; ++c) {
      eng.spawn([&, c] {
        std::uint64_t s = 99 + static_cast<std::uint64_t>(c) * 17;
        // Update-heavy: several inserts/removes per transaction, so the
        // chance that two transactions touch the same SEGMENT stays high.
        for (int i = 0; i < 20; ++i) {
          const std::uint64_t body_seed = s;
          atomos::atomically([&] {
            std::uint64_t bs = body_seed;
            for (int j = 0; j < 4; ++j) {
              const long key = static_cast<long>(rnd(bs) % 512);
              if (rnd(bs) % 2 == 0) {
                map->put(key, key);
              } else {
                map->remove(key);
              }
            }
            atomos::work(p.think_cycles);
          });
          for (int j = 0; j < 8; ++j) rnd(s);
        }
      });
    }
    eng.run();
    print_row(name, eng.elapsed_cycles(), eng.stats().total(&sim::CpuStats::violations),
              eng.stats().total(&sim::CpuStats::semantic_violations),
              eng.stats().total(&sim::CpuStats::lost_cycles));
  };
  run("plain HashMap (1 size field)", [] {
    return std::unique_ptr<jstd::Map<long, long>>(
        std::make_unique<jstd::HashMap<long, long>>(1024));
  });
  run("ConcurrentHashMap (16 segments)", [] {
    return std::unique_ptr<jstd::Map<long, long>>(
        std::make_unique<jstd::ConcurrentHashMap<long, long>>(16, 64));
  });
  run("TransactionalMap (semantic locks)", [] {
    return std::unique_ptr<jstd::Map<long, long>>(
        std::make_unique<tcc::TransactionalMap<long, long>>(
            std::make_unique<jstd::HashMap<long, long>>(1024)));
  });
}

// --- D: optimistic vs pessimistic detection ---

void ablation_pessimistic() {
  header("Ablation D (S5.1): optimistic vs pessimistic semantic detection, hot keys");
  for (auto det : {tcc::Detection::kOptimistic, tcc::Detection::kPessimistic}) {
    sim::Engine eng(make_cfg(sim::Mode::kTcc, 8));
    atomos::Runtime rt(eng);
    tcc::TransactionalMap<long, long> map(
        std::make_unique<jstd::HashMap<long, long>>(256), det);
    for (long k = 0; k < 8; ++k) map.put(k, k);
    for (int c = 0; c < 8; ++c) {
      eng.spawn([&, c] {
        std::uint64_t s = 5 + static_cast<std::uint64_t>(c);
        for (int i = 0; i < 30; ++i) {
          const std::uint64_t body_seed = s;
          atomos::atomically([&] {
            std::uint64_t bs = body_seed;
            const long key = static_cast<long>(rnd(bs) % 8);  // tiny key space
            (void)map.get(key);
            atomos::work(400);
            map.put(key, static_cast<long>(i));
            atomos::work(400);
          });
          rnd(s);
          rnd(s);
        }
      });
    }
    eng.run();
    print_row(det == tcc::Detection::kOptimistic ? "optimistic (commit-time detection)"
                                                 : "pessimistic (operation-time dooming)",
              eng.elapsed_cycles(), eng.stats().total(&sim::CpuStats::violations),
              eng.stats().total(&sim::CpuStats::semantic_violations),
              eng.stats().total(&sim::CpuStats::lost_cycles));
  }
}

// --- E: contention managers ---

void ablation_contention() {
  header("Ablation E (S5.1): contention managers on a contended cell");
  auto run = [&](const char* name, std::unique_ptr<atomos::ContentionManager> cm) {
    sim::Engine eng(make_cfg(sim::Mode::kTcc, 8));
    atomos::Runtime rt(eng, std::move(cm));
    atomos::Shared<long> hot(0);
    for (int c = 0; c < 8; ++c) {
      eng.spawn([&] {
        for (int i = 0; i < 40; ++i) {
          atomos::atomically([&] {
            hot.set(hot.get() + 1);
            atomos::work(300);
          });
        }
      });
    }
    eng.run();
    print_row(name, eng.elapsed_cycles(), eng.stats().total(&sim::CpuStats::violations),
              eng.stats().total(&sim::CpuStats::semantic_violations),
              eng.stats().total(&sim::CpuStats::lost_cycles));
  };
  run("PoliteBackoff (exponential + jitter)", std::make_unique<atomos::PoliteBackoff>());
  run("AggressiveRetry (no backoff)", std::make_unique<atomos::AggressiveRetry>());
  run("KarmaBackoff (losers back off less)", std::make_unique<atomos::KarmaBackoff>());
}

}  // namespace

int main() {
  ablation_isempty();
  ablation_blindput();
  ablation_segmented();
  ablation_pessimistic();
  ablation_contention();
  return 0;
}
