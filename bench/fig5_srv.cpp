// Figure 5 (new experiment): open-system server — throughput and sojourn
// time vs offered load, under lock / flat TM / semantic TM handler loops.
//
// Unlike figures 1-4 (closed systems sweeping CPU count at fixed work),
// this sweeps OFFERED LOAD at three server sizes.  Each series is one
// (synchronization flavor, load) pair; the CPU axis is {8, 32, 128}.  All
// flavors at a given (load, cpus) replay a bit-identical Poisson arrival
// schedule, so differences in the extra CSV columns — throughput and
// p50/p99/p999 sojourn cycles — are purely the synchronization cost.
//
//   ./fig5_srv                      # full sweep, writes fig5_srv.csv
//   ./fig5_srv --only Semantic      # one flavor
//   ./fig5_srv --jobs 8             # byte-identical CSV, 8 host threads
#include <vector>

#include "harness/driver.h"
#include "srv/workload.h"

int main(int argc, char** argv) {
  const harness::Cli cli =
      harness::Cli::parse(argc, argv, "fig5_srv", /*default_timeout_sec=*/1800.0);
  const int requests = cli.ops > 0 ? static_cast<int>(cli.ops) : 1200;

  const std::vector<double> loads = {0.15, 0.3, 0.6, 0.9, 1.2};
  std::vector<harness::Series> series;
  for (srv::Flavor f :
       {srv::Flavor::kLock, srv::Flavor::kFlatTm, srv::Flavor::kSemanticTm}) {
    for (double load : loads) series.push_back(srv::series(f, load, requests));
  }

  return harness::run_figure_main(
      "Figure 5: open-system server, sojourn time vs offered load", series,
      {8, 32, 128}, "fig5_srv.csv", cli);
}
