# Empty compiler generated dependencies file for fig3_testcompound.
# This may be replaced when dependencies are built.
