file(REMOVE_RECURSE
  "CMakeFiles/fig3_testcompound.dir/fig3_testcompound.cpp.o"
  "CMakeFiles/fig3_testcompound.dir/fig3_testcompound.cpp.o.d"
  "fig3_testcompound"
  "fig3_testcompound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_testcompound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
