# Empty dependencies file for fig2_testsortedmap.
# This may be replaced when dependencies are built.
