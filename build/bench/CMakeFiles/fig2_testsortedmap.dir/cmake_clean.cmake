file(REMOVE_RECURSE
  "CMakeFiles/fig2_testsortedmap.dir/fig2_testsortedmap.cpp.o"
  "CMakeFiles/fig2_testsortedmap.dir/fig2_testsortedmap.cpp.o.d"
  "fig2_testsortedmap"
  "fig2_testsortedmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_testsortedmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
