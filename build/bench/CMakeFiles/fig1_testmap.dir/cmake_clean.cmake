file(REMOVE_RECURSE
  "CMakeFiles/fig1_testmap.dir/fig1_testmap.cpp.o"
  "CMakeFiles/fig1_testmap.dir/fig1_testmap.cpp.o.d"
  "fig1_testmap"
  "fig1_testmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_testmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
