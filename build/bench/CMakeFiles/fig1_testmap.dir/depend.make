# Empty dependencies file for fig1_testmap.
# This may be replaced when dependencies are built.
