# Empty compiler generated dependencies file for fig4_specjbb.
# This may be replaced when dependencies are built.
