
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_specjbb.cpp" "bench/CMakeFiles/fig4_specjbb.dir/fig4_specjbb.cpp.o" "gcc" "bench/CMakeFiles/fig4_specjbb.dir/fig4_specjbb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/tcc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/jbb/CMakeFiles/tcc_jbb.dir/DependInfo.cmake"
  "/root/repo/build/src/tm/CMakeFiles/tcc_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
