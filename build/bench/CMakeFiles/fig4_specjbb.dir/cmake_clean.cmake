file(REMOVE_RECURSE
  "CMakeFiles/fig4_specjbb.dir/fig4_specjbb.cpp.o"
  "CMakeFiles/fig4_specjbb.dir/fig4_specjbb.cpp.o.d"
  "fig4_specjbb"
  "fig4_specjbb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_specjbb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
