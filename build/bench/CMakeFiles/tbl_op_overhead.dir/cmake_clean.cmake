file(REMOVE_RECURSE
  "CMakeFiles/tbl_op_overhead.dir/tbl_op_overhead.cpp.o"
  "CMakeFiles/tbl_op_overhead.dir/tbl_op_overhead.cpp.o.d"
  "tbl_op_overhead"
  "tbl_op_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_op_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
