# Empty dependencies file for tbl_op_overhead.
# This may be replaced when dependencies are built.
