file(REMOVE_RECURSE
  "CMakeFiles/tcc_tm.dir/mutex.cpp.o"
  "CMakeFiles/tcc_tm.dir/mutex.cpp.o.d"
  "CMakeFiles/tcc_tm.dir/runtime.cpp.o"
  "CMakeFiles/tcc_tm.dir/runtime.cpp.o.d"
  "libtcc_tm.a"
  "libtcc_tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
