file(REMOVE_RECURSE
  "libtcc_tm.a"
)
