# Empty compiler generated dependencies file for tcc_tm.
# This may be replaced when dependencies are built.
