# Empty compiler generated dependencies file for tcc_harness.
# This may be replaced when dependencies are built.
