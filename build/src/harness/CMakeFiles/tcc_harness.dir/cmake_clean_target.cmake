file(REMOVE_RECURSE
  "libtcc_harness.a"
)
