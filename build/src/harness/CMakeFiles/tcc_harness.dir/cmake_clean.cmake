file(REMOVE_RECURSE
  "CMakeFiles/tcc_harness.dir/speedup.cpp.o"
  "CMakeFiles/tcc_harness.dir/speedup.cpp.o.d"
  "libtcc_harness.a"
  "libtcc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
