# CMake generated Testfile for 
# Source directory: /root/repo/src/jbb
# Build directory: /root/repo/build/src/jbb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
