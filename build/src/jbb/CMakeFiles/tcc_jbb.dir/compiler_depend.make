# Empty compiler generated dependencies file for tcc_jbb.
# This may be replaced when dependencies are built.
