file(REMOVE_RECURSE
  "libtcc_jbb.a"
)
