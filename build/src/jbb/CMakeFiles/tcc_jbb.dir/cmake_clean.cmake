file(REMOVE_RECURSE
  "CMakeFiles/tcc_jbb.dir/engine.cpp.o"
  "CMakeFiles/tcc_jbb.dir/engine.cpp.o.d"
  "libtcc_jbb.a"
  "libtcc_jbb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_jbb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
