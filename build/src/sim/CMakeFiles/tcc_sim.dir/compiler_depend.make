# Empty compiler generated dependencies file for tcc_sim.
# This may be replaced when dependencies are built.
