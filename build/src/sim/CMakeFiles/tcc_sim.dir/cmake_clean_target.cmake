file(REMOVE_RECURSE
  "libtcc_sim.a"
)
