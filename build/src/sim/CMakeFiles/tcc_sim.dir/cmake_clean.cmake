file(REMOVE_RECURSE
  "CMakeFiles/tcc_sim.dir/context.S.o"
  "CMakeFiles/tcc_sim.dir/engine.cpp.o"
  "CMakeFiles/tcc_sim.dir/engine.cpp.o.d"
  "CMakeFiles/tcc_sim.dir/fiber.cpp.o"
  "CMakeFiles/tcc_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/tcc_sim.dir/memsys.cpp.o"
  "CMakeFiles/tcc_sim.dir/memsys.cpp.o.d"
  "libtcc_sim.a"
  "libtcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/tcc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
