# CMake generated Testfile for 
# Source directory: /root/repo/tests/jbb
# Build directory: /root/repo/build/tests/jbb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/jbb/jbb_engine_test[1]_include.cmake")
