# Empty dependencies file for jbb_engine_test.
# This may be replaced when dependencies are built.
