file(REMOVE_RECURSE
  "CMakeFiles/jbb_engine_test.dir/engine_test.cpp.o"
  "CMakeFiles/jbb_engine_test.dir/engine_test.cpp.o.d"
  "jbb_engine_test"
  "jbb_engine_test.pdb"
  "jbb_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbb_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
