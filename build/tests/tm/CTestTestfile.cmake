# CMake generated Testfile for 
# Source directory: /root/repo/tests/tm
# Build directory: /root/repo/build/tests/tm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tm/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/tm/mutex_test[1]_include.cmake")
