# CMake generated Testfile for 
# Source directory: /root/repo/tests/jstd
# Build directory: /root/repo/build/tests/jstd
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/jstd/hashmap_test[1]_include.cmake")
include("/root/repo/build/tests/jstd/treemap_test[1]_include.cmake")
include("/root/repo/build/tests/jstd/linkedqueue_test[1]_include.cmake")
include("/root/repo/build/tests/jstd/concurrenthashmap_test[1]_include.cmake")
include("/root/repo/build/tests/jstd/conflicts_test[1]_include.cmake")
include("/root/repo/build/tests/jstd/skiplistmap_test[1]_include.cmake")
