# Empty compiler generated dependencies file for linkedqueue_test.
# This may be replaced when dependencies are built.
