file(REMOVE_RECURSE
  "CMakeFiles/linkedqueue_test.dir/linkedqueue_test.cpp.o"
  "CMakeFiles/linkedqueue_test.dir/linkedqueue_test.cpp.o.d"
  "linkedqueue_test"
  "linkedqueue_test.pdb"
  "linkedqueue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkedqueue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
