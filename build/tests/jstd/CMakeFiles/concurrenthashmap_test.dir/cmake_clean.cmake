file(REMOVE_RECURSE
  "CMakeFiles/concurrenthashmap_test.dir/concurrenthashmap_test.cpp.o"
  "CMakeFiles/concurrenthashmap_test.dir/concurrenthashmap_test.cpp.o.d"
  "concurrenthashmap_test"
  "concurrenthashmap_test.pdb"
  "concurrenthashmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrenthashmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
