# Empty dependencies file for concurrenthashmap_test.
# This may be replaced when dependencies are built.
