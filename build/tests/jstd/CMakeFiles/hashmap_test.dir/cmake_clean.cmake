file(REMOVE_RECURSE
  "CMakeFiles/hashmap_test.dir/hashmap_test.cpp.o"
  "CMakeFiles/hashmap_test.dir/hashmap_test.cpp.o.d"
  "hashmap_test"
  "hashmap_test.pdb"
  "hashmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
