# Empty compiler generated dependencies file for conflicts_test.
# This may be replaced when dependencies are built.
