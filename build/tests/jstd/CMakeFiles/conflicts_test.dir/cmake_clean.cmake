file(REMOVE_RECURSE
  "CMakeFiles/conflicts_test.dir/conflicts_test.cpp.o"
  "CMakeFiles/conflicts_test.dir/conflicts_test.cpp.o.d"
  "conflicts_test"
  "conflicts_test.pdb"
  "conflicts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflicts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
