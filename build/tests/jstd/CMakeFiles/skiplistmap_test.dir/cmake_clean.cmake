file(REMOVE_RECURSE
  "CMakeFiles/skiplistmap_test.dir/skiplistmap_test.cpp.o"
  "CMakeFiles/skiplistmap_test.dir/skiplistmap_test.cpp.o.d"
  "skiplistmap_test"
  "skiplistmap_test.pdb"
  "skiplistmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skiplistmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
