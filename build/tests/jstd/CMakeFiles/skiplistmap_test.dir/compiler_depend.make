# Empty compiler generated dependencies file for skiplistmap_test.
# This may be replaced when dependencies are built.
