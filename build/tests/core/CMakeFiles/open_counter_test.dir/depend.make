# Empty dependencies file for open_counter_test.
# This may be replaced when dependencies are built.
