file(REMOVE_RECURSE
  "CMakeFiles/open_counter_test.dir/open_counter_test.cpp.o"
  "CMakeFiles/open_counter_test.dir/open_counter_test.cpp.o.d"
  "open_counter_test"
  "open_counter_test.pdb"
  "open_counter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
