# Empty dependencies file for txset_test.
# This may be replaced when dependencies are built.
