file(REMOVE_RECURSE
  "CMakeFiles/txset_test.dir/txset_test.cpp.o"
  "CMakeFiles/txset_test.dir/txset_test.cpp.o.d"
  "txset_test"
  "txset_test.pdb"
  "txset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
