# Empty compiler generated dependencies file for table4_sortedmap_conflicts_test.
# This may be replaced when dependencies are built.
