file(REMOVE_RECURSE
  "CMakeFiles/table4_sortedmap_conflicts_test.dir/table4_sortedmap_conflicts_test.cpp.o"
  "CMakeFiles/table4_sortedmap_conflicts_test.dir/table4_sortedmap_conflicts_test.cpp.o.d"
  "table4_sortedmap_conflicts_test"
  "table4_sortedmap_conflicts_test.pdb"
  "table4_sortedmap_conflicts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_sortedmap_conflicts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
