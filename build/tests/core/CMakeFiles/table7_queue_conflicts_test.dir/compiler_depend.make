# Empty compiler generated dependencies file for table7_queue_conflicts_test.
# This may be replaced when dependencies are built.
