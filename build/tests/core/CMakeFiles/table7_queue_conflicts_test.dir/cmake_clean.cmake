file(REMOVE_RECURSE
  "CMakeFiles/table7_queue_conflicts_test.dir/table7_queue_conflicts_test.cpp.o"
  "CMakeFiles/table7_queue_conflicts_test.dir/table7_queue_conflicts_test.cpp.o.d"
  "table7_queue_conflicts_test"
  "table7_queue_conflicts_test.pdb"
  "table7_queue_conflicts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_queue_conflicts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
