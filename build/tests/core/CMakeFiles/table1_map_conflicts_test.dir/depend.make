# Empty dependencies file for table1_map_conflicts_test.
# This may be replaced when dependencies are built.
