file(REMOVE_RECURSE
  "CMakeFiles/txmap_test.dir/txmap_test.cpp.o"
  "CMakeFiles/txmap_test.dir/txmap_test.cpp.o.d"
  "txmap_test"
  "txmap_test.pdb"
  "txmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
