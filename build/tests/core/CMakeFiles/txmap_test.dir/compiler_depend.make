# Empty compiler generated dependencies file for txmap_test.
# This may be replaced when dependencies are built.
