# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/txmap_test[1]_include.cmake")
include("/root/repo/build/tests/core/table1_map_conflicts_test[1]_include.cmake")
include("/root/repo/build/tests/core/table4_sortedmap_conflicts_test[1]_include.cmake")
include("/root/repo/build/tests/core/table7_queue_conflicts_test[1]_include.cmake")
include("/root/repo/build/tests/core/open_counter_test[1]_include.cmake")
include("/root/repo/build/tests/core/txset_test[1]_include.cmake")
