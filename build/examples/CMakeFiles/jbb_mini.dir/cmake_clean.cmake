file(REMOVE_RECURSE
  "CMakeFiles/jbb_mini.dir/jbb_mini.cpp.o"
  "CMakeFiles/jbb_mini.dir/jbb_mini.cpp.o.d"
  "jbb_mini"
  "jbb_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbb_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
