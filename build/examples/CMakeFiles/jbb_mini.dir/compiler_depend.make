# Empty compiler generated dependencies file for jbb_mini.
# This may be replaced when dependencies are built.
