// Unit tests for the stackful fiber substrate: creation, yielding, resuming,
// interleaving, deep stacks, and exception handling inside fiber bodies.
#include "sim/fiber.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sim {
namespace {

TEST(FiberTest, RunsToCompletionWithoutYield) {
  int x = 0;
  Fiber f([&] { x = 42; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 42);
}

TEST(FiberTest, YieldSuspendsAndResumeContinues) {
  std::vector<int> trace;
  Fiber f([&] {
    trace.push_back(1);
    Fiber::yield();
    trace.push_back(3);
    Fiber::yield();
    trace.push_back(5);
  });
  f.resume();
  trace.push_back(2);
  f.resume();
  trace.push_back(4);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(FiberTest, CurrentIsNullInMainAndSelfInFiber) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f([&] { seen = Fiber::current(); });
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(FiberTest, InterleavesManyFibers) {
  constexpr int kFibers = 16;
  constexpr int kRounds = 50;
  std::vector<std::unique_ptr<Fiber>> fibers;
  int counter = 0;
  std::vector<int> per_fiber(kFibers, 0);
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&, i] {
      for (int r = 0; r < kRounds; ++r) {
        ++counter;
        ++per_fiber[static_cast<std::size_t>(i)];
        Fiber::yield();
      }
    }));
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& f : fibers) {
      if (!f->finished()) {
        f->resume();
        progress = true;
      }
    }
  }
  EXPECT_EQ(counter, kFibers * kRounds);
  for (int i = 0; i < kFibers; ++i) EXPECT_EQ(per_fiber[static_cast<std::size_t>(i)], kRounds);
}

TEST(FiberTest, DeepRecursionOnOwnStack) {
  // ~100 KiB of frames fits comfortably in the default 256 KiB stack.
  struct Rec {
    static int go(int n) {
      char pad[64];
      pad[0] = static_cast<char>(n);
      if (n == 0) return pad[0];
      return go(n - 1) + 1;
    }
  };
  int result = -1;
  Fiber f([&] { result = Rec::go(1000); });
  f.resume();
  EXPECT_EQ(result, 1000);
}

TEST(FiberTest, ExceptionsCaughtInsideFiberWork) {
  std::string caught;
  Fiber f([&] {
    try {
      throw std::runtime_error("boom");
    } catch (const std::exception& e) {
      caught = e.what();
    }
  });
  f.resume();
  EXPECT_EQ(caught, "boom");
}

TEST(FiberTest, ExceptionAcrossYieldBoundaryWithinFiber) {
  // Throw after a yield: the unwind happens entirely on the fiber stack.
  std::string caught;
  Fiber f([&] {
    try {
      Fiber::yield();
      throw std::runtime_error("later");
    } catch (const std::exception& e) {
      caught = e.what();
    }
  });
  f.resume();
  EXPECT_EQ(caught, "");
  f.resume();
  EXPECT_EQ(caught, "later");
}

TEST(FiberTest, ResumeFinishedFiberThrows) {
  Fiber f([] {});
  f.resume();
  EXPECT_THROW(f.resume(), std::logic_error);
}

TEST(FiberTest, YieldOutsideFiberThrows) { EXPECT_THROW(Fiber::yield(), std::logic_error); }

TEST(FiberTest, NestedResumeFromFiberThrows) {
  Fiber inner([] {});
  bool threw = false;
  Fiber outer([&] {
    try {
      inner.resume();
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  outer.resume();
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace sim
