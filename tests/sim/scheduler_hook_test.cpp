// Engine SchedulerHook regression tests.
//
// The hook must be a pure observation point when it defers: a hook that
// returns kUseDefault at every decision yields BIT-IDENTICAL simulated
// cycles to running with no hook at all, pinned here against the fig1
// golden value.  A hook that scripts its own policy produces a different
// but fully deterministic interleaving, and a recorded decision sequence
// replays to the same run.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "bench/testmap_common.h"

namespace {

/// Defers every decision to the engine's own min-clock policy.
class PassThroughHook final : public sim::SchedulerHook {
 public:
  int pick(const std::vector<int>& runnable) override {
    ++decisions_;
    EXPECT_FALSE(runnable.empty());
    return kUseDefault;
  }
  std::uint64_t decisions() const { return decisions_; }

 private:
  std::uint64_t decisions_ = 0;
};

/// Always runs the highest-id runnable cpu — the opposite of min-clock —
/// and records every choice for replay.
class ScriptedHook final : public sim::SchedulerHook {
 public:
  int pick(const std::vector<int>& runnable) override {
    const int c = runnable.back();
    trace_.push_back(c);
    return c;
  }
  const std::vector<int>& trace() const { return trace_; }

 private:
  std::vector<int> trace_;
};

/// Replays a recorded decision sequence verbatim, then defers.
class ReplayHook final : public sim::SchedulerHook {
 public:
  explicit ReplayHook(std::vector<int> trace) : trace_(std::move(trace)) {}
  int pick(const std::vector<int>& runnable) override {
    (void)runnable;
    if (next_ < trace_.size()) return trace_[next_++];
    return kUseDefault;
  }

 private:
  std::vector<int> trace_;
  std::size_t next_ = 0;
};

/// The fig1 "Atomos TransactionalMap" small configuration, inlined so a
/// hook can be installed before the run (the bench Series helpers build
/// their Engine internally).
std::uint64_t run_fig1_small(int cpus, sim::SchedulerHook* hook) {
  bench::TestMapParams p;
  p.total_ops = 640;
  p.think_cycles = 1000;
  p.seed = 12345;

  sim::Engine eng(bench::make_cfg(sim::Mode::kTcc, cpus));
  if (hook != nullptr) eng.set_scheduler_hook(hook);
  atomos::Runtime rt(eng);
  auto map = std::make_unique<tcc::TransactionalMap<long, long>>(
      std::make_unique<jstd::HashMap<long, long>>(static_cast<std::size_t>(p.key_space) * 2));
  for (long k = 0; k < p.prepopulate; ++k) map->put(k * 2 % p.key_space, k);
  const int per_cpu = p.total_ops / cpus;
  for (int c = 0; c < cpus; ++c) {
    eng.spawn([&, c] {
      std::uint64_t s = p.seed + static_cast<std::uint64_t>(c) * 7919;
      for (int i = 0; i < per_cpu; ++i) {
        std::uint64_t body_seed = s;
        atomos::atomically([&] {
          std::uint64_t bs = body_seed;
          atomos::work(p.think_cycles / 2);
          bench::testmap_op(*map, p.key_space, bs);
          atomos::work(p.think_cycles / 2);
        });
        bench::rnd(s);
        bench::rnd(s);
      }
    });
  }
  eng.run();
  return eng.elapsed_cycles();
}

TEST(SchedulerHookTest, PassThroughMatchesFig1Golden) {
  // Golden pin from tests/core/golden_cycles_test.cpp: any drift here means
  // consulting the hook perturbed the engine's own schedule.
  PassThroughHook hook;
  EXPECT_EQ(run_fig1_small(8, &hook), 85448ULL);
  EXPECT_GT(hook.decisions(), 0u);
}

TEST(SchedulerHookTest, PassThroughMatchesNoHookEverywhere) {
  for (int cpus : {1, 2, 4}) {
    const std::uint64_t bare = run_fig1_small(cpus, nullptr);
    PassThroughHook hook;
    EXPECT_EQ(run_fig1_small(cpus, &hook), bare) << "cpus=" << cpus;
  }
}

TEST(SchedulerHookTest, ScriptedHookIsDeterministicAndReplayable) {
  ScriptedHook a;
  const std::uint64_t cycles_a = run_fig1_small(2, &a);
  ScriptedHook b;
  const std::uint64_t cycles_b = run_fig1_small(2, &b);
  EXPECT_EQ(cycles_a, cycles_b);
  EXPECT_EQ(a.trace(), b.trace());
  ASSERT_FALSE(a.trace().empty());

  // The recorded decisions replay to the exact same run.
  ReplayHook replay(a.trace());
  EXPECT_EQ(run_fig1_small(2, &replay), cycles_a);

  // And the max-clock policy genuinely diverges from the default schedule.
  EXPECT_NE(cycles_a, run_fig1_small(2, nullptr));
}

/// Checks the runnable-set contract at every decision — ids in range and
/// strictly ascending — then defers to the engine policy.
class ValidatingHook final : public sim::SchedulerHook {
 public:
  explicit ValidatingHook(int cpus) : cpus_(cpus) {}
  int pick(const std::vector<int>& runnable) override {
    ++decisions_;
    EXPECT_FALSE(runnable.empty());
    for (std::size_t i = 0; i < runnable.size(); ++i) {
      EXPECT_GE(runnable[i], 0);
      EXPECT_LT(runnable[i], cpus_);
      if (i > 0) EXPECT_LT(runnable[i - 1], runnable[i]) << "ids not ascending";
    }
    return kUseDefault;
  }
  std::uint64_t decisions() const { return decisions_; }

 private:
  int cpus_;
  std::uint64_t decisions_ = 0;
};

TEST(SchedulerHookTest, RunnableSetStaysAscendingAndPassThroughAt128Cpus) {
  // The widened CPU axis goes through the same hook contract: the runnable
  // enumeration is ascending and complete, and deferring every decision
  // still reproduces the hookless schedule bit-for-bit.
  const std::uint64_t bare = run_fig1_small(128, nullptr);
  ValidatingHook hook(128);
  EXPECT_EQ(run_fig1_small(128, &hook), bare);
  EXPECT_GT(hook.decisions(), 0u);
}

TEST(SchedulerHookTest, ScriptedHookReplaysAt128Cpus) {
  ScriptedHook a;
  const std::uint64_t cycles_a = run_fig1_small(128, &a);
  ASSERT_FALSE(a.trace().empty());
  ReplayHook replay(a.trace());
  EXPECT_EQ(run_fig1_small(128, &replay), cycles_a);
}

TEST(SchedulerHookTest, HookChangeDuringRunIsRejected) {
  sim::Engine eng(bench::make_cfg(sim::Mode::kTcc, 1));
  atomos::Runtime rt(eng);
  PassThroughHook hook;
  eng.spawn([&] {
    EXPECT_THROW(eng.set_scheduler_hook(&hook), std::logic_error);
  });
  eng.run();
}

}  // namespace
