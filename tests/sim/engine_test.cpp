// Unit tests for the CMP engine: clock ordering, determinism, block/unblock,
// deadlock detection, and tick/advance semantics.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace sim {
namespace {

Config cfg(int cpus, std::uint64_t slack = 0) {
  Config c;
  c.num_cpus = cpus;
  c.slack = slack;
  return c;
}

TEST(EngineTest, SingleWorkerRunsAndAccumulatesTime) {
  Engine eng(cfg(1));
  eng.spawn([&] {
    EXPECT_TRUE(Engine::in_worker());
    EXPECT_EQ(Engine::get().cpu_id(), 0);
    Engine::get().tick(100);
    EXPECT_EQ(Engine::get().now(), 100u);
  });
  eng.run();
  EXPECT_EQ(eng.elapsed_cycles(), 100u);
  EXPECT_FALSE(Engine::in_worker());
}

TEST(EngineTest, EventsAreGloballyTimeOrdered) {
  // Two CPUs record (time, id) at each step; the merged trace must be sorted
  // by time (ties broken by lower CPU id, per the deterministic scheduler).
  Engine eng(cfg(2));
  std::vector<std::pair<std::uint64_t, int>> trace;
  for (int id = 0; id < 2; ++id) {
    eng.spawn([&, id] {
      Engine& e = Engine::get();
      for (int i = 0; i < 20; ++i) {
        trace.emplace_back(e.now(), id);
        e.tick(id == 0 ? 3 : 5);  // different rates force interleaving
      }
    });
  }
  eng.run();
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].first, trace[i].first)
        << "event " << i << " out of order";
  }
}

TEST(EngineTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine eng(cfg(4));
    std::vector<int> order;
    for (int id = 0; id < 4; ++id) {
      eng.spawn([&, id] {
        for (int i = 0; i < 10; ++i) {
          order.push_back(id);
          Engine::get().tick(static_cast<std::uint64_t>(1 + ((id * 7 + i) % 5)));
        }
      });
    }
    eng.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EngineTest, BlockUnblockTransfersTime) {
  Engine eng(cfg(2));
  std::uint64_t woke_at = 0;
  eng.spawn([&] {
    Engine::get().block();  // sleeps until CPU1 wakes us
    woke_at = Engine::get().now();
  });
  eng.spawn([&] {
    Engine& e = Engine::get();
    e.tick(500);
    e.unblock(0, e.now());
  });
  eng.run();
  EXPECT_EQ(woke_at, 500u);
}

TEST(EngineTest, AllBlockedIsDeadlock) {
  Engine eng(cfg(2));
  eng.spawn([] { Engine::get().block(); });
  eng.spawn([] { Engine::get().block(); });
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(EngineTest, ElapsedIsMaxOverCpus) {
  Engine eng(cfg(3));
  eng.spawn([] { Engine::get().tick(10); });
  eng.spawn([] { Engine::get().tick(999); });
  eng.spawn([] { Engine::get().tick(50); });
  eng.run();
  EXPECT_EQ(eng.elapsed_cycles(), 999u);
}

TEST(EngineTest, SpawnMoreThanCpusThrows) {
  Engine eng(cfg(1));
  eng.spawn([] {});
  EXPECT_THROW(eng.spawn([] {}), std::logic_error);
}

TEST(EngineTest, AdvanceToMovesClockForwardOnly) {
  Engine eng(cfg(1));
  eng.spawn([] {
    Engine& e = Engine::get();
    e.tick(100);
    e.advance_to(50);  // must not move backwards
    EXPECT_EQ(e.now(), 100u);
    e.advance_to(200);
    EXPECT_EQ(e.now(), 200u);
  });
  eng.run();
}

TEST(EngineTest, SlackAllowsBatchedProgress) {
  // With large slack both workers still complete and produce the same total
  // time; only the interleaving granularity changes.
  auto total = [](std::uint64_t slack) {
    Engine eng(cfg(2, slack));
    for (int id = 0; id < 2; ++id)
      eng.spawn([] {
        for (int i = 0; i < 100; ++i) Engine::get().tick(7);
      });
    eng.run();
    return eng.elapsed_cycles();
  };
  EXPECT_EQ(total(0), total(1000));
}

TEST(EngineTest, SoleSpinningFiberHonorsHostDeadlineAtConfiguredQuantum) {
  // A single runnable fiber has no "second" clock, so its run limit would be
  // unbounded; with a host deadline armed the configured deadline_quantum
  // caps the budget, forcing the spin back to a scheduling point where the
  // deadline is polled every (deadline_poll_mask + 1) decisions.  The spin
  // below is bounded only as a hang backstop: the deadline must fire first.
  Config c = cfg(1);
  c.deadline_quantum = 1024;
  c.deadline_poll_mask = 7;
  Engine eng(c);
  eng.spawn([] {
    for (std::uint64_t i = 0; i < 2'000'000'000; ++i) Engine::get().tick(1);
  });
  Engine::set_host_deadline(std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(25));
  EXPECT_THROW(eng.run(), SimTimeout);
  Engine::clear_host_deadline();
}

TEST(EngineTest, DeadlineQuantumLeavesSimulatedCyclesUntouched) {
  // Capping run budgets only inserts extra yields; simulated clocks must be
  // bit-identical whether or not a (far-future) deadline armed the cap.
  auto total = [](bool armed) {
    Config c = cfg(2);
    c.deadline_quantum = 64;  // absurdly small: many extra yields
    Engine eng(c);
    for (int id = 0; id < 2; ++id)
      eng.spawn([] {
        for (int i = 0; i < 500; ++i) Engine::get().tick(3);
      });
    if (armed)
      Engine::set_host_deadline(std::chrono::steady_clock::now() +
                                std::chrono::hours(1));
    eng.run();
    Engine::clear_host_deadline();
    return eng.elapsed_cycles();
  };
  const std::uint64_t bare = total(false);
  EXPECT_EQ(total(true), bare);
}

TEST(EngineTest, NonPowerOfTwoDeadlinePollMaskIsRejected) {
  Config c = cfg(1);
  c.deadline_poll_mask = 6;  // not 2^k - 1
  EXPECT_THROW(Engine rejected(c), std::invalid_argument);
}

}  // namespace
}  // namespace sim
