// Arena-segregated virtual addressing (sim/vaddr.h): disjoint ranges,
// line-isolation guarantees, packing behaviour, determinism, overflow.
#include "sim/vaddr.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

namespace {

using sim::Arena;
using sim::Isolation;

constexpr std::uintptr_t kLine = sim::kVaLineBytes;

std::uintptr_t line_of(std::uintptr_t a) { return a / kLine; }

TEST(VaddrTest, ArenaRangesAreDisjointAndOrdered) {
  const Arena all[] = {Arena::kMeta, Arena::kCounter, Arena::kLock, Arena::kData};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LT(sim::arena_base(all[i]), sim::arena_limit(all[i]));
    for (std::size_t j = i + 1; j < 4; ++j) {
      // Later arenas begin at or after the earlier arena's limit.
      EXPECT_GE(sim::arena_base(all[j]), sim::arena_limit(all[i]));
    }
  }
  EXPECT_EQ(sim::arena_base(Arena::kMeta), sim::kVaBase);
}

TEST(VaddrTest, AllocationsLandInTheirArena) {
  sim::va_reset();
  for (Arena a : {Arena::kMeta, Arena::kCounter, Arena::kLock, Arena::kData}) {
    for (Isolation iso : {Isolation::kPacked, Isolation::kLineIsolated}) {
      const std::uintptr_t p = sim::va_alloc(8, a, iso);
      EXPECT_GE(p, sim::arena_base(a));
      EXPECT_LT(p, sim::arena_limit(a));
    }
  }
  sim::va_reset();
}

TEST(VaddrTest, LineIsolatedCellsAreNeverCoResident) {
  sim::va_reset();
  // Interleave isolated and packed allocations of several sizes in every
  // arena; no line of an isolated cell may host any other allocation.
  struct Alloc {
    std::uintptr_t addr;
    std::size_t bytes;
    bool isolated;
  };
  std::vector<Alloc> allocs;
  const std::size_t sizes[] = {1, 8, 8, 64, 8, 128};
  for (int round = 0; round < 50; ++round) {
    for (Arena a : {Arena::kMeta, Arena::kCounter, Arena::kLock, Arena::kData}) {
      const std::size_t bytes = sizes[static_cast<std::size_t>(round) % 6];
      const bool iso = (round % 3) != 0;
      allocs.push_back(Alloc{
          sim::va_alloc(bytes, a, iso ? Isolation::kLineIsolated : Isolation::kPacked),
          bytes, iso});
    }
  }
  auto lines = [](const Alloc& al) {
    std::set<std::uintptr_t> out;
    for (std::uintptr_t l = line_of(al.addr); l <= line_of(al.addr + al.bytes - 1); ++l)
      out.insert(l);
    return out;
  };
  for (std::size_t i = 0; i < allocs.size(); ++i) {
    if (!allocs[i].isolated) continue;
    const auto mine = lines(allocs[i]);
    for (std::size_t j = 0; j < allocs.size(); ++j) {
      if (j == i) continue;
      for (std::uintptr_t l : lines(allocs[j])) {
        EXPECT_EQ(mine.count(l), 0u)
            << "isolated alloc " << i << " shares line " << l << " with alloc " << j;
      }
    }
  }
  sim::va_reset();
}

TEST(VaddrTest, PackedCellsStillShareLinesByAdjacency) {
  sim::va_reset();
  // Eight words to a 64-byte line, in allocation order — the false-sharing
  // model bulk data relies on must survive the arena split.
  std::uintptr_t first = sim::va_alloc(8, Arena::kData, Isolation::kPacked);
  for (int i = 1; i < 8; ++i) {
    const std::uintptr_t p = sim::va_alloc(8, Arena::kData, Isolation::kPacked);
    EXPECT_EQ(p, first + static_cast<std::uintptr_t>(i) * 8);
    EXPECT_EQ(line_of(p), line_of(first));
  }
  EXPECT_NE(line_of(sim::va_alloc(8, Arena::kData, Isolation::kPacked)), line_of(first));
  sim::va_reset();
}

TEST(VaddrTest, LegacyOverloadIsPackedData) {
  sim::va_reset();
  const std::uintptr_t a = sim::va_alloc(8);
  const std::uintptr_t b = sim::va_alloc(8);
  EXPECT_GE(a, sim::arena_base(Arena::kData));
  EXPECT_LT(b, sim::arena_limit(Arena::kData));
  EXPECT_EQ(b, a + 8);
  sim::va_reset();
}

TEST(VaddrTest, DeterministicAcrossResetsAndThreads) {
  auto layout = [] {
    std::vector<std::uintptr_t> out;
    sim::va_reset();
    for (int i = 0; i < 64; ++i) {
      out.push_back(sim::va_alloc(8, Arena::kMeta, Isolation::kLineIsolated));
      out.push_back(sim::va_alloc(8, Arena::kCounter, Isolation::kLineIsolated));
      out.push_back(sim::va_alloc(8, Arena::kLock, Isolation::kLineIsolated));
      out.push_back(sim::va_alloc(16, Arena::kData, Isolation::kPacked));
    }
    sim::va_reset();
    return out;
  };
  const auto on_main = layout();
  EXPECT_EQ(on_main, layout());  // reset rewinds every cursor
  // The cursors are thread_local: a fresh host thread running the same
  // construction sequence must produce the identical layout (this is what
  // makes --jobs N sweeps byte-identical to serial runs).
  std::vector<std::uintptr_t> on_thread;
  std::thread t([&] { on_thread = layout(); });
  t.join();
  EXPECT_EQ(on_main, on_thread);
}

TEST(VaddrTest, ArenaOverflowThrowsDeterministically) {
  sim::va_reset();
  const std::uintptr_t span = sim::arena_limit(Arena::kMeta) - sim::arena_base(Arena::kMeta);
  const std::uintptr_t nlines = span / kLine;
  for (std::uintptr_t i = 0; i < nlines; ++i)
    sim::va_alloc(8, Arena::kMeta, Isolation::kLineIsolated);
  EXPECT_THROW(sim::va_alloc(8, Arena::kMeta, Isolation::kLineIsolated), std::length_error);
  // Other arenas are unaffected by the exhausted one.
  EXPECT_NO_THROW(sim::va_alloc(8, Arena::kCounter, Isolation::kLineIsolated));
  sim::va_reset();
}

}  // namespace
