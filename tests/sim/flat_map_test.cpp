// Unit tests for sim::FlatMap: the open-addressing table behind the TM
// read/write sets and the memory-system line directory.  The properties the
// runtime depends on — generation-stamped O(1) clear, tombstone-free
// backward-shift erase, stable behaviour across growth — are each pinned
// directly, then stressed against std::unordered_map as a reference model.
#include "sim/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

namespace sim {
namespace {

TEST(FlatMapTest, InsertFindAcrossGrowth) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  for (std::uint64_t k = 0; k < 1000; ++k) {
    auto [v, inserted] = m.try_emplace(k * 7 + 1, static_cast<int>(k));
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*v, static_cast<int>(k));
  }
  EXPECT_EQ(m.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    int* v = m.find(k * 7 + 1);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, static_cast<int>(k));
  }
  EXPECT_EQ(m.find(0), nullptr);  // never inserted
}

TEST(FlatMapTest, TryEmplaceReturnsExistingEntry) {
  FlatMap<std::uint64_t, int> m;
  auto [v1, ins1] = m.try_emplace(42, 1);
  EXPECT_TRUE(ins1);
  auto [v2, ins2] = m.try_emplace(42, 99);
  EXPECT_FALSE(ins2);
  EXPECT_EQ(*v2, 1);  // init ignored when the key exists
  *v2 = 5;
  EXPECT_EQ(*m.find(42), 5);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, EraseKeepsProbeChainsDense) {
  // Insert enough keys that probe chains form, then erase half of them and
  // verify every survivor remains findable: backward-shift deletion must
  // close the gaps it creates (a tombstone-style bug would orphan keys).
  FlatMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kN = 512;
  for (std::uint64_t k = 1; k <= kN; ++k) m.try_emplace(k, k * 10);
  for (std::uint64_t k = 1; k <= kN; k += 2) EXPECT_TRUE(m.erase(k));
  EXPECT_FALSE(m.erase(1));  // already gone
  EXPECT_EQ(m.size(), kN / 2);
  for (std::uint64_t k = 1; k <= kN; ++k) {
    std::uint64_t* v = m.find(k);
    if (k % 2 == 1) {
      EXPECT_EQ(v, nullptr) << k;
    } else {
      ASSERT_NE(v, nullptr) << k;
      EXPECT_EQ(*v, k * 10);
    }
  }
}

TEST(FlatMapTest, ClearIsGenerationStamped) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m.try_emplace(k, 1);
  m.clear();
  EXPECT_TRUE(m.empty());
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_EQ(m.find(k), nullptr);
  // Slots stale from the previous generation must not resurrect or block
  // fresh inserts.
  for (std::uint64_t k = 0; k < 100; ++k) {
    auto [v, inserted] = m.try_emplace(k, 2);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*v, 2);
  }
  EXPECT_EQ(m.size(), 100u);
}

TEST(FlatMapTest, ForEachVisitsEveryLiveEntryOnce) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 200; ++k) m.try_emplace(k, 0);
  for (std::uint64_t k = 0; k < 200; k += 4) m.erase(k);
  std::unordered_map<std::uint64_t, int> seen;
  m.for_each([&seen](std::uint64_t k, const int&) { seen[k]++; });
  EXPECT_EQ(seen.size(), m.size());
  for (const auto& [k, n] : seen) {
    EXPECT_EQ(n, 1) << k;
    EXPECT_NE(k % 4, 0u) << k;
  }
}

TEST(FlatMapTest, StressAgainstUnorderedMapReference) {
  // Deterministic op soup: insert / erase / find / occasional clear, checked
  // move-for-move against std::unordered_map.
  FlatMap<std::uint64_t, std::uint32_t> m;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  std::mt19937_64 rng(12345);
  for (int op = 0; op < 200000; ++op) {
    const std::uint64_t key = rng() % 600;  // small space -> plenty of hits
    const int kind = static_cast<int>(rng() % 100);
    if (kind < 45) {
      auto [v, inserted] = m.try_emplace(key, static_cast<std::uint32_t>(op));
      const auto [it, ref_inserted] = ref.try_emplace(key, static_cast<std::uint32_t>(op));
      ASSERT_EQ(inserted, ref_inserted);
      ASSERT_EQ(*v, it->second);
    } else if (kind < 70) {
      ASSERT_EQ(m.erase(key), ref.erase(key) == 1);
    } else if (kind < 99) {
      std::uint32_t* v = m.find(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        ASSERT_EQ(v, nullptr);
      } else {
        ASSERT_NE(v, nullptr);
        ASSERT_EQ(*v, it->second);
      }
    } else {
      m.clear();
      ref.clear();
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  // Final sweep: both directions.
  std::size_t visited = 0;
  m.for_each([&ref, &visited](std::uint64_t k, const std::uint32_t& v) {
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end()) << k;
    ASSERT_EQ(v, it->second);
    ++visited;
  });
  EXPECT_EQ(visited, ref.size());
}

// --- SIMD-layout-specific coverage -----------------------------------------
// The two-array (control byte + slot) layout adds failure modes the scalar
// table never had: 7-bit fragment collisions inside one 16-slot group (the
// vector compare reports several candidates, and the SWAR fallback may add a
// false positive in the lane above a true match), shifts that cross group
// boundaries, and the per-group generation stamp wrapping around.

namespace {
// Mirrors of FlatMap's private placement functions, used to construct
// adversarial key sets.  kFragShift/kMinCap match flat_map.h.
std::size_t home_of(std::uint64_t key, std::size_t cap) {
  return static_cast<std::size_t>(hash_u64(key)) & (cap - 1);
}
std::uint8_t frag_of(std::uint64_t key) {
  return static_cast<std::uint8_t>(hash_u64(key) >> 57);
}

// First `n` keys (scanning upward from 1) whose home slot in a `cap`-slot
// table equals `slot` and that satisfy `pred(key)`.
template <class Pred>
std::vector<std::uint64_t> keys_with_home(std::size_t cap, std::size_t slot,
                                          std::size_t n, Pred pred) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t k = 1; out.size() < n; ++k) {
    if (home_of(k, cap) == slot && pred(k)) out.push_back(k);
  }
  return out;
}
}  // namespace

TEST(FlatMapTest, FragmentCollisionProbeChain) {
  // Keys with the SAME home slot and the SAME 7-bit fragment: every probe
  // sees multiple candidate bits in one group and must disambiguate by full
  // key compare.  (This is also the path where the SWAR fallback's
  // hasvalue-borrow false positive, if mishandled, would return a wrong
  // slot — the differential checks below would catch a wrong value.)
  constexpr std::size_t kCap = 16;  // kMinCap: table starts at one group
  const auto seed = keys_with_home(kCap, 5, 1, [](std::uint64_t) { return true; });
  const std::uint8_t frag = frag_of(seed[0]);
  const auto keys = keys_with_home(kCap, 5, 6, [&](std::uint64_t k) {
    return frag_of(k) == frag;
  });
  FlatMap<std::uint64_t, std::uint64_t> m;
  for (const std::uint64_t k : keys) m.try_emplace(k, k ^ 0xabcdu);
  EXPECT_EQ(m.size(), keys.size());
  for (const std::uint64_t k : keys) {
    auto* v = m.find(k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k ^ 0xabcdu);
  }
  // Erase from the middle of the all-same-fragment chain and re-check.
  EXPECT_TRUE(m.erase(keys[2]));
  EXPECT_EQ(m.find(keys[2]), nullptr);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i == 2) continue;
    auto* v = m.find(keys[i]);
    ASSERT_NE(v, nullptr) << keys[i];
    EXPECT_EQ(*v, keys[i] ^ 0xabcdu);
  }
}

TEST(FlatMapTest, BackwardShiftEraseAcrossGroupBoundary) {
  // Build a probe chain that starts in the last slots of group 0 and spills
  // into group 1 of a 32-slot table, then erase the chain head: the
  // backward shift must move slots (and control bytes) across the group
  // boundary without losing anyone.
  constexpr std::size_t kCap = 32;
  auto chain = keys_with_home(kCap, 14, 3, [](std::uint64_t) { return true; });
  for (const std::uint64_t k : keys_with_home(kCap, 15, 3, [](std::uint64_t) { return true; }))
    chain.push_back(k);  // 6 keys homed at slots 14/15 -> occupy 14..19
  FlatMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t k = 0; m.size() < 13; ++k)
    m.try_emplace(0x1000000 + k, 0);      // force growth to 32 slots
  std::vector<std::uint64_t> fill;        // then restart from a clean 32-slot table
  m.for_each([&fill](std::uint64_t k, const std::uint64_t&) { fill.push_back(k); });
  for (const std::uint64_t k : fill) m.erase(k);
  ASSERT_TRUE(m.empty());
  for (const std::uint64_t k : chain) m.try_emplace(k, k + 7);
  for (const std::uint64_t k : chain) ASSERT_NE(m.find(k), nullptr);
  EXPECT_TRUE(m.erase(chain[0]));  // head at slot 14: shift crosses 15 -> 16
  EXPECT_TRUE(m.erase(chain[3]));  // and again with the 15-homed subchain
  EXPECT_EQ(m.find(chain[0]), nullptr);
  EXPECT_EQ(m.find(chain[3]), nullptr);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i == 0 || i == 3) continue;
    auto* v = m.find(chain[i]);
    ASSERT_NE(v, nullptr) << chain[i];
    EXPECT_EQ(*v, chain[i] + 7);
  }
}

TEST(FlatMapTest, GenerationWraparound) {
  // clear() bumps a uint32 generation; on wraparound to 0 every group stamp
  // is reset so that stale groups (stamped with old generations) cannot read
  // as live again.  set_generation_for_test() fast-forwards to the edge.
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 40; ++k) m.try_emplace(k, static_cast<int>(k));
  m.set_generation_for_test(0xffffffffu);
  for (std::uint64_t k = 0; k < 40; ++k) {
    int* v = m.find(k);
    ASSERT_NE(v, nullptr) << k;  // rebase must preserve liveness
    EXPECT_EQ(*v, static_cast<int>(k));
  }
  m.clear();  // 0xffffffff -> wraps -> full stamp reset, gen back to 1
  EXPECT_TRUE(m.empty());
  for (std::uint64_t k = 0; k < 40; ++k) EXPECT_EQ(m.find(k), nullptr) << k;
  for (std::uint64_t k = 0; k < 40; ++k) {
    auto [v, inserted] = m.try_emplace(k, -1);
    EXPECT_TRUE(inserted) << k;  // a resurrected stale slot would report false
    EXPECT_EQ(*v, -1);
  }
  EXPECT_EQ(m.size(), 40u);
}

TEST(FlatMapTest, ClearHeavyStressAgainstReference) {
  // The TM runtime's dominant usage: short bursts of inserts separated by
  // generation-stamped clears (transaction retry loops), with the generation
  // counter pushed across the wraparound edge repeatedly.
  FlatMap<std::uint64_t, std::uint32_t> m;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  std::mt19937_64 rng(99);
  for (int round = 0; round < 2000; ++round) {
    if (round % 7 == 0) m.set_generation_for_test(0xfffffffdu);  // near the edge
    const int burst = 1 + static_cast<int>(rng() % 24);
    for (int i = 0; i < burst; ++i) {
      const std::uint64_t key = rng() % 128;
      auto [v, inserted] = m.try_emplace(key, static_cast<std::uint32_t>(round));
      const auto [it, ref_inserted] = ref.try_emplace(key, static_cast<std::uint32_t>(round));
      ASSERT_EQ(inserted, ref_inserted);
      ASSERT_EQ(*v, it->second);
    }
    const std::uint64_t probe_key = rng() % 128;
    std::uint32_t* v = m.find(probe_key);
    const auto it = ref.find(probe_key);
    ASSERT_EQ(v == nullptr, it == ref.end());
    if (v != nullptr) ASSERT_EQ(*v, it->second);
    ASSERT_EQ(m.size(), ref.size());
    m.clear();
    ref.clear();
    ASSERT_TRUE(m.empty());
  }
}

}  // namespace
}  // namespace sim
