// Unit tests for sim::FlatMap: the open-addressing table behind the TM
// read/write sets and the memory-system line directory.  The properties the
// runtime depends on — generation-stamped O(1) clear, tombstone-free
// backward-shift erase, stable behaviour across growth — are each pinned
// directly, then stressed against std::unordered_map as a reference model.
#include "sim/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

namespace sim {
namespace {

TEST(FlatMapTest, InsertFindAcrossGrowth) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  for (std::uint64_t k = 0; k < 1000; ++k) {
    auto [v, inserted] = m.try_emplace(k * 7 + 1, static_cast<int>(k));
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*v, static_cast<int>(k));
  }
  EXPECT_EQ(m.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    int* v = m.find(k * 7 + 1);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, static_cast<int>(k));
  }
  EXPECT_EQ(m.find(0), nullptr);  // never inserted
}

TEST(FlatMapTest, TryEmplaceReturnsExistingEntry) {
  FlatMap<std::uint64_t, int> m;
  auto [v1, ins1] = m.try_emplace(42, 1);
  EXPECT_TRUE(ins1);
  auto [v2, ins2] = m.try_emplace(42, 99);
  EXPECT_FALSE(ins2);
  EXPECT_EQ(*v2, 1);  // init ignored when the key exists
  *v2 = 5;
  EXPECT_EQ(*m.find(42), 5);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, EraseKeepsProbeChainsDense) {
  // Insert enough keys that probe chains form, then erase half of them and
  // verify every survivor remains findable: backward-shift deletion must
  // close the gaps it creates (a tombstone-style bug would orphan keys).
  FlatMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kN = 512;
  for (std::uint64_t k = 1; k <= kN; ++k) m.try_emplace(k, k * 10);
  for (std::uint64_t k = 1; k <= kN; k += 2) EXPECT_TRUE(m.erase(k));
  EXPECT_FALSE(m.erase(1));  // already gone
  EXPECT_EQ(m.size(), kN / 2);
  for (std::uint64_t k = 1; k <= kN; ++k) {
    std::uint64_t* v = m.find(k);
    if (k % 2 == 1) {
      EXPECT_EQ(v, nullptr) << k;
    } else {
      ASSERT_NE(v, nullptr) << k;
      EXPECT_EQ(*v, k * 10);
    }
  }
}

TEST(FlatMapTest, ClearIsGenerationStamped) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m.try_emplace(k, 1);
  m.clear();
  EXPECT_TRUE(m.empty());
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_EQ(m.find(k), nullptr);
  // Slots stale from the previous generation must not resurrect or block
  // fresh inserts.
  for (std::uint64_t k = 0; k < 100; ++k) {
    auto [v, inserted] = m.try_emplace(k, 2);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*v, 2);
  }
  EXPECT_EQ(m.size(), 100u);
}

TEST(FlatMapTest, ForEachVisitsEveryLiveEntryOnce) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 200; ++k) m.try_emplace(k, 0);
  for (std::uint64_t k = 0; k < 200; k += 4) m.erase(k);
  std::unordered_map<std::uint64_t, int> seen;
  m.for_each([&seen](std::uint64_t k, const int&) { seen[k]++; });
  EXPECT_EQ(seen.size(), m.size());
  for (const auto& [k, n] : seen) {
    EXPECT_EQ(n, 1) << k;
    EXPECT_NE(k % 4, 0u) << k;
  }
}

TEST(FlatMapTest, StressAgainstUnorderedMapReference) {
  // Deterministic op soup: insert / erase / find / occasional clear, checked
  // move-for-move against std::unordered_map.
  FlatMap<std::uint64_t, std::uint32_t> m;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  std::mt19937_64 rng(12345);
  for (int op = 0; op < 200000; ++op) {
    const std::uint64_t key = rng() % 600;  // small space -> plenty of hits
    const int kind = static_cast<int>(rng() % 100);
    if (kind < 45) {
      auto [v, inserted] = m.try_emplace(key, static_cast<std::uint32_t>(op));
      const auto [it, ref_inserted] = ref.try_emplace(key, static_cast<std::uint32_t>(op));
      ASSERT_EQ(inserted, ref_inserted);
      ASSERT_EQ(*v, it->second);
    } else if (kind < 70) {
      ASSERT_EQ(m.erase(key), ref.erase(key) == 1);
    } else if (kind < 99) {
      std::uint32_t* v = m.find(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        ASSERT_EQ(v, nullptr);
      } else {
        ASSERT_NE(v, nullptr);
        ASSERT_EQ(*v, it->second);
      }
    } else {
      m.clear();
      ref.clear();
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  // Final sweep: both directions.
  std::size_t visited = 0;
  m.for_each([&ref, &visited](std::uint64_t k, const std::uint32_t& v) {
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end()) << k;
    ASSERT_EQ(v, it->second);
    ++visited;
  });
  EXPECT_EQ(visited, ref.size());
}

}  // namespace
}  // namespace sim
