// Unit tests for the timed memory hierarchy: MESI hit/miss/upgrade timing,
// line ping-pong, bus queuing, and TCC speculative store/commit timing.
#include "sim/memsys.h"

#include <gtest/gtest.h>

namespace sim {
namespace {

struct MemFixture : ::testing::Test {
  Config cfg;
  Stats stats{8};
  MemFixture() { cfg.num_cpus = 8; }
  MemSys make() { return MemSys(cfg, stats); }
};

constexpr std::uintptr_t A = 0x10000;   // line 0x400
constexpr std::uintptr_t B = 0x20000;   // distinct line
constexpr std::uintptr_t A2 = 0x10008;  // same line as A

TEST_F(MemFixture, ColdLoadMissesThenHits) {
  MemSys m = make();
  std::uint64_t t = m.plain_load(0, A, 0);
  // miss: arbitration + transfer + L2 latency
  EXPECT_EQ(t, cfg.bus_arb_cycles + cfg.bus_xfer_cycles + cfg.l2_hit_cycles);
  std::uint64_t t2 = m.plain_load(0, A, t);
  EXPECT_EQ(t2, t + cfg.l1_hit_cycles);  // now a hit
  EXPECT_EQ(stats.cpu(0).l1_misses, 1u);
}

TEST_F(MemFixture, SameLineDifferentWordIsHit) {
  MemSys m = make();
  std::uint64_t t = m.plain_load(0, A, 0);
  std::uint64_t t2 = m.plain_load(0, A2, t);
  EXPECT_EQ(t2, t + cfg.l1_hit_cycles);
}

TEST_F(MemFixture, StoreAfterExclusiveLoadIsSilentUpgrade) {
  MemSys m = make();
  std::uint64_t t = m.plain_load(0, A, 0);  // installs E (no sharers)
  std::uint64_t t2 = m.plain_store(0, A, t);
  EXPECT_EQ(t2, t + cfg.l1_hit_cycles);  // E->M without bus traffic
}

TEST_F(MemFixture, StoreToSharedLinePaysUpgradeAndInvalidatesReader) {
  MemSys m = make();
  std::uint64_t t0 = m.plain_load(0, A, 0);
  std::uint64_t t1 = m.plain_load(1, A, 0);  // both now share the line
  (void)t0;
  std::uint64_t tw = m.plain_store(0, A, t1);
  EXPECT_GT(tw, t1 + cfg.l1_hit_cycles);  // upgrade needed the bus
  // CPU1's copy was invalidated: its next load misses again.
  std::uint64_t m1 = stats.cpu(1).l1_misses;
  m.plain_load(1, A, tw);
  EXPECT_EQ(stats.cpu(1).l1_misses, m1 + 1);
}

TEST_F(MemFixture, DirtyInterventionCostsWriteback) {
  MemSys m = make();
  std::uint64_t t = m.plain_load(0, A, 0);
  t = m.plain_store(0, A, t);  // CPU0 holds M
  std::uint64_t before = m.bus().busy_cycles();
  m.plain_load(1, A, t);  // must pull the dirty line
  std::uint64_t occ = m.bus().busy_cycles() - before;
  EXPECT_EQ(occ, cfg.bus_xfer_cycles + cfg.writeback_cycles);
}

TEST_F(MemFixture, PingPongCostsDominateRepeatedSharedStores) {
  // Alternating stores from two CPUs to one line always pay bus latency.
  MemSys m = make();
  std::uint64_t t0 = m.plain_store(0, A, 0);
  std::uint64_t t1 = m.plain_store(1, A, t0);
  std::uint64_t t2 = m.plain_store(0, A, t1);
  EXPECT_GT(t1 - t0, static_cast<std::uint64_t>(cfg.l1_hit_cycles));
  EXPECT_GT(t2 - t1, static_cast<std::uint64_t>(cfg.l1_hit_cycles));
}

TEST_F(MemFixture, BusQueuesOverlappingRequests) {
  // Two cold misses "issued" at the same instant serialize on the bus.
  MemSys m = make();
  std::uint64_t ta = m.plain_load(0, A, 0);
  std::uint64_t tb = m.plain_load(1, B, 0);
  EXPECT_GT(tb, ta - cfg.l2_hit_cycles);  // second transfer started after first
}

TEST_F(MemFixture, TxStoreHitsWithoutBusTraffic) {
  MemSys m = make();
  std::uint64_t t = m.tx_load(0, A, 0);  // allocate line
  std::uint64_t before = m.bus().busy_cycles();
  std::uint64_t t2 = m.tx_store(0, A, t);
  EXPECT_EQ(t2, t + cfg.l1_hit_cycles);
  EXPECT_EQ(m.bus().busy_cycles(), before);  // speculative: no bus
}

TEST_F(MemFixture, CommitCostProportionalToWriteSet) {
  MemSys m = make();
  std::uint64_t before = m.bus().busy_cycles();
  m.tcc_commit(0, 5, 100);
  EXPECT_EQ(m.bus().busy_cycles() - before, 5u * cfg.commit_line_cycles);
}

TEST_F(MemFixture, InvalidateCopiesForcesRefetch) {
  MemSys m = make();
  std::uint64_t t1 = m.tx_load(1, A, 0);
  m.invalidate_copies(0, line_of(A));
  std::uint64_t misses = stats.cpu(1).l1_misses;
  m.tx_load(1, A, t1);
  EXPECT_EQ(stats.cpu(1).l1_misses, misses + 1);
}

TEST_F(MemFixture, AbortClearsSpeculativeLinesOnly) {
  MemSys m = make();
  std::uint64_t t = m.tx_load(0, A, 0);      // clean line
  t = m.tx_store(0, B, t);                   // speculative line
  m.abort_clear_speculative(0);
  std::uint64_t misses = stats.cpu(0).l1_misses;
  m.tx_load(0, A, t);                        // clean copy survives
  EXPECT_EQ(stats.cpu(0).l1_misses, misses);
  m.tx_load(0, B, t);                        // speculative copy dropped
  EXPECT_EQ(stats.cpu(0).l1_misses, misses + 1);
}

TEST_F(MemFixture, EvictionMakesRoomAndLosesLine) {
  // Fill one set beyond associativity; the LRU way must be recycled.
  MemSys m = make();
  const std::uintptr_t set_stride =
      static_cast<std::uintptr_t>(cfg.l1_sets) * Config::kLineBytes;
  std::uint64_t t = 0;
  for (std::uint32_t i = 0; i < cfg.l1_assoc + 1; ++i)
    t = m.plain_load(0, A + i * set_stride, t);
  std::uint64_t misses = stats.cpu(0).l1_misses;
  m.plain_load(0, A, t);  // the original line was LRU-evicted
  EXPECT_EQ(stats.cpu(0).l1_misses, misses + 1);
}

}  // namespace
}  // namespace sim
