// End-to-end attribution tests: a seeded contended run must produce a
// conflict report that names the paper's actual conflict sites — the
// HashMap size field for fig1-shaped Atomos runs, the TreeMap root/rotation
// cells for fig2-shaped runs, and the key2lockers semantic table for the
// transactional wrappers — plus valid Chrome tracing JSON.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "bench/testmap_common.h"
#include "harness/driver.h"
#include "trace/reader.h"

namespace {

using bench::TestMapParams;

// High contention: tiny key space, long transactions, many CPUs.
TestMapParams contended_params() {
  TestMapParams p;
  p.key_space = 32;
  p.prepopulate = 16;
  p.total_ops = 320;
  p.think_cycles = 2000;
  p.seed = 424242;
  return p;
}

struct Traced {
  trace::TraceFile tf;
  trace::Attribution attr;
  std::string report;
};

Traced run_traced(harness::Series series, int cpus) {
  harness::DriverOptions opt;
  opt.trace_path = ::testing::TempDir() + "txreport_";
  std::vector<harness::Series> sv;
  sv.push_back(std::move(series));
  const harness::FigureResult fr =
      harness::run_figure_driver("report fixture", sv, {cpus}, "", opt);
  EXPECT_TRUE(fr.ok());
  const std::string path =
      harness::trace_file_path(opt.trace_path, sv[0].name, cpus);
  Traced out{trace::read_trace_file(path), {}, {}};
  out.attr = trace::attribute(out.tf);
  out.report = trace::format_report(out.tf, out.attr, 10);
  std::remove(path.c_str());
  return out;
}

TEST(TraceReport, AtomosHashMapConflictsResolveToSizeField) {
  const TestMapParams p = contended_params();
  auto make_hash = [p] {
    return std::make_unique<jstd::HashMap<long, long>>(
        static_cast<std::size_t>(p.key_space) * 2);
  };
  const Traced t =
      run_traced(bench::atomos_series("Atomos HashMap", p, make_hash), 8);
  EXPECT_GT(t.attr.aborts, 0u);
  EXPECT_GT(t.attr.wasted_memory, 0u);
  // The paper's fig1 story: the size field serializes every writer pair.
  EXPECT_NE(t.report.find("HashMap.size"), std::string::npos) << t.report;
}

TEST(TraceReport, AtomosTreeMapConflictsResolveToTreeInternals) {
  const TestMapParams p = contended_params();
  auto make_tree = [] { return std::make_unique<jstd::TreeMap<long, long>>(); };
  const Traced t =
      run_traced(bench::atomos_series("Atomos TreeMap", p, make_tree), 8);
  EXPECT_GT(t.attr.aborts, 0u);
  // Rotations/recolourings on the path to the root: conflicts resolve to
  // the root pointer, the size field or a labeled node link cell.
  const bool named = t.report.find("TreeMap.root") != std::string::npos ||
                     t.report.find("TreeMap.size") != std::string::npos ||
                     t.report.find("TreeMap.node") != std::string::npos;
  EXPECT_TRUE(named) << t.report;
}

TEST(TraceReport, TransactionalMapConflictsResolveToSemanticTables) {
  const TestMapParams p = contended_params();
  auto make_hash = [p] {
    return std::make_unique<jstd::HashMap<long, long>>(
        static_cast<std::size_t>(p.key_space) * 2);
  };
  auto make_wrapped = [make_hash] {
    return std::make_unique<tcc::TransactionalMap<long, long>>(make_hash());
  };
  const Traced t = run_traced(
      bench::atomos_series("Atomos TransactionalMap", p, make_wrapped), 8);
  EXPECT_GT(t.attr.open_commits, 0u);
  // Any aborts left are semantic, attributed to the wrapper's named tables.
  if (t.attr.wasted_semantic > 0) {
    EXPECT_NE(t.report.find("TransactionalMap."), std::string::npos) << t.report;
  }
  EXPECT_NE(t.report.find("open-nested:"), std::string::npos);
}

TEST(TraceReport, ChromeJsonIsWellFormedAndBalanced) {
  const TestMapParams p = contended_params();
  auto make_hash = [p] {
    return std::make_unique<jstd::HashMap<long, long>>(
        static_cast<std::size_t>(p.key_space) * 2);
  };
  const Traced t =
      run_traced(bench::atomos_series("Atomos HashMap", p, make_hash), 4);
  const std::string json = trace::chrome_trace_json(t.tf);
  // Structural spot-checks (the CI smoke job runs a real JSON parser).
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  std::size_t begins = 0, ends = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos) {
    ++begins;
    pos += 8;
  }
  pos = 0;
  while ((pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos) {
    ++ends;
    pos += 8;
  }
  EXPECT_EQ(begins, ends);
  EXPECT_GT(begins, 0u);
}

}  // namespace
