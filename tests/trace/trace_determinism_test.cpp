// The two load-bearing properties of txtrace:
//
//  1. DETERMINISM — a traced `--jobs N` sweep writes byte-identical trace
//     files to the serial sweep, because every event is stamped with
//     simulated cycles and merged in canonical (cpu, seq) order, never by
//     host time or completion order.
//  2. TRANSPARENCY — attaching a tracer never changes simulated cycles:
//     every emission sits behind `if (tracer)` off the timing path, so the
//     golden cycle totals of an untraced run are reproduced exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/testmap_common.h"
#include "harness/driver.h"
#include "trace/reader.h"

namespace {

using bench::TestMapParams;

TestMapParams tiny_params() {
  TestMapParams p;
  p.total_ops = 160;
  p.think_cycles = 500;
  p.seed = 12345;
  return p;
}

// Fig1-shaped two-series sweep over a genuinely contended HashMap.
std::vector<harness::Series> tiny_fig1(const TestMapParams& p) {
  auto make_hash = [p] {
    return std::make_unique<jstd::HashMap<long, long>>(
        static_cast<std::size_t>(p.key_space) * 2);
  };
  std::vector<harness::Series> series;
  series.push_back(bench::java_series("Java HashMap", p, make_hash));
  series.push_back(bench::atomos_series("Atomos HashMap", p, make_hash));
  return series;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(TraceDeterminism, TraceFilesAreByteIdenticalAcrossJobs) {
  const TestMapParams p = tiny_params();
  const std::vector<int> cpus = {1, 4, 8};
  harness::DriverOptions serial;
  serial.jobs = 1;
  serial.trace_path = ::testing::TempDir() + "txdet_serial_";
  harness::DriverOptions par = serial;
  par.jobs = 8;
  par.trace_path = ::testing::TempDir() + "txdet_jobs8_";

  const harness::FigureResult a =
      harness::run_figure_driver("serial", tiny_fig1(p), cpus, "", serial);
  const harness::FigureResult b =
      harness::run_figure_driver("jobs8", tiny_fig1(p), cpus, "", par);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  int compared = 0;
  for (const char* series : {"Java HashMap", "Atomos HashMap"}) {
    for (const int c : cpus) {
      const std::string fa =
          harness::trace_file_path(serial.trace_path, series, c);
      const std::string fb = harness::trace_file_path(par.trace_path, series, c);
      const std::string ba = slurp(fa);
      const std::string bb = slurp(fb);
      ASSERT_FALSE(ba.empty()) << fa;
      EXPECT_EQ(ba, bb) << series << " cpus=" << c;
      ++compared;
      std::remove(fa.c_str());
      std::remove(fb.c_str());
    }
  }
  EXPECT_EQ(compared, 6);
}

TEST(TraceDeterminism, TracingDoesNotChangeSimulatedCycles) {
  const TestMapParams p = tiny_params();
  const std::vector<int> cpus = {1, 8};
  harness::DriverOptions plain;
  harness::DriverOptions traced;
  traced.trace_path = ::testing::TempDir() + "txdet_cycles_";

  const harness::FigureResult off =
      harness::run_figure_driver("untraced", tiny_fig1(p), cpus, "", plain);
  const harness::FigureResult on =
      harness::run_figure_driver("traced", tiny_fig1(p), cpus, "", traced);
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(on.ok());
  ASSERT_EQ(off.results.size(), on.results.size());
  for (std::size_t i = 0; i < off.results.size(); ++i) {
    EXPECT_EQ(off.results[i].cycles, on.results[i].cycles)
        << off.results[i].series << " cpus=" << off.results[i].cpus;
    EXPECT_EQ(off.results[i].violations, on.results[i].violations);
    EXPECT_EQ(off.results[i].commits, on.results[i].commits);
    const std::string f = harness::trace_file_path(
        traced.trace_path, on.results[i].series, on.results[i].cpus);
    std::remove(f.c_str());
  }
}

TEST(TraceDeterminism, TraceFileNamesSanitizeSeriesNames) {
  EXPECT_EQ(harness::trace_file_path("/tmp/x_", "Atomos Open (TCC)", 16),
            "/tmp/x_Atomos_Open__TCC__cpus16.trace");
}

}  // namespace
