// Unit tests for the trace recorder and file reader: event layout, the
// drop-newest overflow policy, deterministic serialization (pointer args
// interned to dense first-appearance ids) and label round-tripping.
#include "trace/tracer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/reader.h"

namespace trace {
namespace {

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(EventLayout, PackedTo24Bytes) {
  static_assert(sizeof(Event) == 24);
  EXPECT_EQ(pack_abort_aux(3, false), 3u);
  EXPECT_EQ(pack_abort_aux(3, true), 3u | kAuxSemanticBit);
  // Attempt counts saturate below the semantic bit.
  EXPECT_EQ(pack_abort_aux(1 << 20, false), 0x7FFFu);
  EXPECT_EQ(pack_abort_aux(1 << 20, true), 0x7FFFu | kAuxSemanticBit);
}

TEST(Tracer, RecordsEventsPerCpuInEmissionOrder) {
  Tracer t(2);
  t.on_txn_begin(0, 100, false, 7, 1);
  t.on_txn_begin(1, 90, false, 8, 2);
  t.on_txn_commit(0, 200, false, 5);
  ASSERT_EQ(t.count(0), 2u);
  ASSERT_EQ(t.count(1), 1u);
  const Event* e0 = t.events(0);
  EXPECT_EQ(e0[0].cycle, 100u);
  EXPECT_EQ(static_cast<Kind>(e0[0].kind), Kind::kTxnBegin);
  EXPECT_EQ(e0[0].arg, 7u);
  EXPECT_EQ(e0[0].seq, 0u);
  EXPECT_EQ(e0[1].cycle, 200u);
  EXPECT_EQ(static_cast<Kind>(e0[1].kind), Kind::kTxnCommit);
  EXPECT_EQ(e0[1].arg, 5u);
  EXPECT_EQ(e0[1].seq, 1u);
  EXPECT_EQ(t.events(1)[0].cpu, 1);
}

TEST(Tracer, OverflowDropsNewestButSeqStillAdvances) {
  Tracer t(1, /*capacity_per_cpu=*/2);
  t.on_txn_begin(0, 10, false, 1, 1);
  t.on_txn_commit(0, 20, false, 0);
  t.on_txn_begin(0, 30, false, 2, 1);  // dropped
  t.on_txn_commit(0, 40, false, 0);    // dropped
  EXPECT_EQ(t.count(0), 2u);
  EXPECT_EQ(t.dropped(0), 2u);
  // The retained events are the OLDEST two; the hole is visible as a seq
  // gap to anyone who appends later... which overflow forbids, so the
  // dropped counter is the authoritative signal.
  EXPECT_EQ(t.events(0)[1].cycle, 20u);
}

TEST(TraceFileRoundtrip, PreservesEventsLabelsAndTableNames) {
  const std::string path = tmp_path("roundtrip.trace");
  int a = 0, b = 0;  // two distinct host addresses to intern
  {
    Tracer t(2);
    t.name_table(&a, "mapA.key2lockers");
    // &b deliberately left unnamed: the reader must fall back to table#N.
    t.set_label(0x4000, "HashMap.size");
    t.on_lock_acquire(0, 50, &b);   // first appearance: table id 0
    t.on_lock_acquire(0, 60, &a);   // second appearance: table id 1
    t.on_violation_flag(1, 70, 0x4000, 0);
    t.on_sem_violation(1, 80, &a, 0);
    t.write(path);
  }
  const TraceFile tf = read_trace_file(path);
  EXPECT_EQ(tf.num_cpus, 2);
  ASSERT_EQ(tf.events.size(), 2u);
  ASSERT_EQ(tf.events[0].size(), 2u);
  ASSERT_EQ(tf.events[1].size(), 2u);
  // Pointer args were interned in (cpu, seq) order: &b first, then &a.
  EXPECT_EQ(tf.events[0][0].arg, 0u);
  EXPECT_EQ(tf.events[0][1].arg, 1u);
  EXPECT_EQ(tf.events[1][1].arg, 1u);
  ASSERT_EQ(tf.table_names.size(), 2u);
  EXPECT_EQ(tf.table_names[1], "mapA.key2lockers");
  EXPECT_EQ(table_of(tf, 0), "table#0");  // unnamed fallback
  EXPECT_EQ(label_of(tf, 0x4000), "HashMap.size");
  EXPECT_EQ(tf.dropped[0], 0u);
  std::remove(path.c_str());
}

TEST(TraceFileRoundtrip, SerializationIsDeterministic) {
  // Two tracers fed identical event streams through different host objects
  // (different pointer values) must serialize byte-identically.
  auto feed = [](Tracer& t, const void* table) {
    t.on_txn_begin(0, 10, false, 1, 1);
    t.on_lock_acquire(0, 20, table);
    t.on_txn_commit(0, 30, false, 2);
  };
  const std::string p1 = tmp_path("det1.trace");
  const std::string p2 = tmp_path("det2.trace");
  long x = 0, y = 0;
  {
    Tracer t(1);
    t.name_table(&x, "tbl");
    feed(t, &x);
    t.write(p1);
  }
  {
    Tracer t(1);
    t.name_table(&y, "tbl");
    feed(t, &y);
    t.write(p2);
  }
  auto slurp = [](const std::string& p) {
    std::string out;
    std::FILE* f = std::fopen(p.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    std::fclose(f);
    return out;
  };
  EXPECT_EQ(slurp(p1), slurp(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(TraceFileRoundtrip, DroppedCountsSurviveSerialization) {
  const std::string path = tmp_path("dropped.trace");
  {
    Tracer t(1, 1);
    t.on_txn_begin(0, 10, false, 1, 1);
    t.on_txn_commit(0, 20, false, 0);  // dropped
    t.write(path);
  }
  const TraceFile tf = read_trace_file(path);
  ASSERT_EQ(tf.events[0].size(), 1u);
  EXPECT_EQ(tf.dropped[0], 1u);
  std::remove(path.c_str());
}

TEST(Reader, RejectsGarbageFiles) {
  const std::string path = tmp_path("garbage.trace");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_trace_file(path), std::runtime_error);
  EXPECT_THROW(read_trace_file(tmp_path("missing.trace")), std::runtime_error);
  std::remove(path.c_str());
}

TEST(RequestApi, SetTakeClearRoundtrip) {
  Request req;
  EXPECT_FALSE(take_request(req));
  set_request("/tmp/x.trace", 128);
  ASSERT_TRUE(take_request(req));
  EXPECT_EQ(req.path, "/tmp/x.trace");
  EXPECT_EQ(req.capacity, 128u);
  EXPECT_FALSE(take_request(req));  // consumed
  set_request("/tmp/y.trace");
  clear_request();
  EXPECT_FALSE(take_request(req));
}

}  // namespace
}  // namespace trace
