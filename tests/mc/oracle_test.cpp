// Serializability-oracle unit tests: hand-authored histories driven through
// the public record/flush API, one per anomaly class plus clean histories
// that must be accepted.
#include "mc/oracle.h"

#include <gtest/gtest.h>

namespace mc {
namespace {

atomos::TxnId id(int cpu, std::uint64_t inc = 1) {
  atomos::TxnId t;
  t.cpu = cpu;
  t.incarnation = inc;
  return t;
}

Op map_get(const void* table, long key, bool present, long observed) {
  Op op;
  op.kind = Op::Kind::kGet;
  op.table = table;
  op.key = key;
  op.observed_present = present;
  op.observed = observed;
  return op;
}

Op map_put(const void* table, long key, long value, bool old_present, long old_value) {
  Op op;
  op.kind = Op::Kind::kPut;
  op.table = table;
  op.key = key;
  op.value = value;
  op.observed_present = old_present;
  op.observed = old_value;
  return op;
}

Op q_op(Op::Kind kind, const void* table, long observed = 0) {
  Op op;
  op.kind = kind;
  op.table = table;
  op.value = observed;
  op.observed = observed;
  op.observed_present = true;
  return op;
}

bool has(const std::vector<Violation>& vs, Anomaly kind) {
  for (const Violation& v : vs) {
    if (v.kind == kind) return true;
  }
  return false;
}

int table_a, table_b;  // addresses only; the oracle never dereferences

TEST(OracleTest, CleanWriterHistory) {
  Oracle o;
  o.register_map(&table_a, "map", {{1, 10}});
  o.attempt_begin(0, id(0));
  o.record(0, map_get(&table_a, 1, true, 10));
  o.record(0, map_put(&table_a, 1, 11, true, 10));
  o.flush_commit(0);
  o.set_final_map(&table_a, {{1, 11}});
  EXPECT_TRUE(o.check().empty());
}

TEST(OracleTest, CleanReadOnlyWindow) {
  // The reader observes the OLD value but flushes after the writer: legal,
  // because a token-free read-only commit may serialize anywhere in its
  // [first observation, flush] window.
  Oracle o;
  o.register_map(&table_a, "map", {{1, 10}});
  o.attempt_begin(0, id(0));
  o.record(0, map_get(&table_a, 1, true, 10));
  o.attempt_begin(1, id(1));
  o.record(1, map_put(&table_a, 1, 11, true, 10));
  o.flush_commit(1);
  o.flush_commit(0);
  o.set_final_map(&table_a, {{1, 11}});
  EXPECT_TRUE(o.check().empty());
}

TEST(OracleTest, LostUpdateDetected) {
  // Both writers read version 10 and overwrite; the second never saw the
  // first's committed value.
  Oracle o;
  o.register_map(&table_a, "map", {{1, 10}});
  o.attempt_begin(0, id(0));
  o.attempt_begin(1, id(1));
  o.record(0, map_put(&table_a, 1, 100, true, 10));
  o.record(1, map_put(&table_a, 1, 200, true, 10));
  o.flush_commit(0);
  o.flush_commit(1);
  o.set_final_map(&table_a, {{1, 200}});
  EXPECT_TRUE(has(o.check(), Anomaly::kLostUpdate));
}

TEST(OracleTest, LostSemanticLockDetected) {
  // A writer's protected get went stale: a concurrent committed mutation of
  // the SAME key landed inside its window, but it writes a different key, so
  // the stale read is a failed read lock, not a lost update.
  Oracle o;
  o.register_map(&table_a, "map", {{1, 10}});
  o.attempt_begin(0, id(0));
  o.attempt_begin(1, id(1));
  o.record(0, map_get(&table_a, 1, true, 10));
  o.record(1, map_put(&table_a, 1, 11, true, 10));
  o.flush_commit(1);
  o.record(0, map_put(&table_a, 2, 77, false, 0));
  o.flush_commit(0);
  o.set_final_map(&table_a, {{1, 11}, {2, 77}});
  EXPECT_TRUE(has(o.check(), Anomaly::kLostSemanticLock));
}

TEST(OracleTest, NonCommutingOpenDetected) {
  // A reader observed an open-nested EAGER put whose parent later aborted —
  // pre-commit state leaked through the open child.
  Oracle o;
  o.register_map(&table_a, "map", {});
  o.attempt_begin(1, id(1));
  Op eager = map_put(&table_a, 50, 42, false, 0);
  eager.open_child = true;
  o.record(1, eager);
  o.attempt_begin(0, id(0));
  o.record(0, map_get(&table_a, 50, true, 42));
  o.flush_commit(0);
  o.flush_abort(1);
  o.set_final_map(&table_a, {});
  EXPECT_TRUE(has(o.check(), Anomaly::kNonCommutingOpen));
}

TEST(OracleTest, NotSerializableFallback) {
  // An observation nothing in the history explains, with no concurrent
  // writer and no open-nested effect to pin it on.
  Oracle o;
  o.register_map(&table_a, "map", {});
  o.attempt_begin(0, id(0));
  o.record(0, map_get(&table_a, 1, true, 99));
  o.flush_commit(0);
  const auto vs = o.check();
  EXPECT_TRUE(has(vs, Anomaly::kNotSerializable));
  EXPECT_FALSE(has(vs, Anomaly::kLostUpdate));
}

TEST(OracleTest, FinalStateDivergenceDetected) {
  Oracle o;
  o.register_map(&table_a, "map", {{1, 10}});
  o.attempt_begin(0, id(0));
  o.record(0, map_put(&table_a, 1, 11, true, 10));
  o.flush_commit(0);
  o.set_final_map(&table_a, {{1, 99}});
  EXPECT_TRUE(has(o.check(), Anomaly::kFinalStateDivergence));
}

TEST(OracleTest, CompensationInversionDetected) {
  // An aborted poll must restore its element; the actual final queue lost it.
  Oracle o;
  o.register_queue(&table_b, "queue", {7});
  o.attempt_begin(0, id(0));
  o.record(0, q_op(Op::Kind::kQPollHit, &table_b, 7));
  o.flush_abort(0);
  o.set_final_queue(&table_b, {});
  EXPECT_TRUE(has(o.check(), Anomaly::kCompensationInversion));
}

TEST(OracleTest, CompensationRestoresQueue) {
  // Same history, but the element IS back in the final queue: clean.
  Oracle o;
  o.register_queue(&table_b, "queue", {7});
  o.attempt_begin(0, id(0));
  o.record(0, q_op(Op::Kind::kQPollHit, &table_b, 7));
  o.flush_abort(0);
  o.set_final_queue(&table_b, {7});
  EXPECT_TRUE(o.check().empty());
}

TEST(OracleTest, QueueEmptinessNeedsAnEmptyMoment) {
  // A committed emptiness observation while the queue held an element the
  // whole window: the empty lock failed.
  Oracle o;
  o.register_queue(&table_b, "queue", {7});
  o.attempt_begin(0, id(0));
  o.record(0, q_op(Op::Kind::kQPollMiss, &table_b));
  o.flush_commit(0);
  o.set_final_queue(&table_b, {7});
  EXPECT_TRUE(has(o.check(), Anomaly::kLostSemanticLock));
}

TEST(OracleTest, CancelledPutLeavesNoTrace) {
  // A put consumed by the same transaction's poll is cancelled: the element
  // never reaches the shared queue, so an empty final queue is consistent.
  Oracle o;
  o.register_queue(&table_b, "queue", {});
  o.attempt_begin(0, id(0));
  const std::size_t idx = o.record(0, q_op(Op::Kind::kQPut, &table_b, 5));
  o.cancel(0, idx);
  o.flush_commit(0);
  o.set_final_queue(&table_b, {});
  EXPECT_TRUE(o.check().empty());
}

TEST(OracleTest, LockLeakDetected) {
  Oracle o;
  o.register_name(&table_a, "locks");
  o.lock_acquired(id(0), &table_a);
  EXPECT_TRUE(has(o.check(), Anomaly::kLockLeak));
}

TEST(OracleTest, BalancedLocksAreClean) {
  Oracle o;
  o.register_name(&table_a, "locks");
  o.lock_acquired(id(0), &table_a);
  o.lock_acquired(id(0), &table_a);
  o.lock_released(id(0), &table_a);
  o.locks_released_all(id(0), &table_a);
  EXPECT_TRUE(o.check().empty());
}

TEST(OracleTest, DoubleReleaseOnlyWhenOwnerLive) {
  Oracle o;
  o.register_name(&table_a, "locks");
  o.lock_release_noop(id(0), &table_a, /*owner_live=*/false);  // stale prune
  EXPECT_TRUE(o.check().empty());
  o.lock_release_noop(id(0), &table_a, /*owner_live=*/true);
  EXPECT_TRUE(has(o.check(), Anomaly::kDoubleRelease));
}

TEST(OracleTest, AbortAfterCommitFlushDemotesInPlace) {
  // A commit handler escalated into an abort after the oracle's commit flush
  // already ran: the attempt must count as aborted, so its put never reaches
  // the model and the unchanged final state is clean.
  Oracle o;
  o.register_map(&table_a, "map", {{1, 10}});
  o.attempt_begin(0, id(0));
  o.record(0, map_put(&table_a, 1, 11, true, 10));
  o.flush_commit(0);
  o.flush_abort(0);
  o.set_final_map(&table_a, {{1, 10}});
  EXPECT_TRUE(o.check().empty());
  ASSERT_EQ(o.history().size(), 1u);
  EXPECT_FALSE(o.history()[0].committed);
}

}  // namespace
}  // namespace mc
