// Replay-string encode/decode round trips and rejection of malformed input.
#include "mc/schedule.h"

#include <gtest/gtest.h>

namespace mc {
namespace {

TEST(ScheduleTest, EncodeEmpty) {
  EXPECT_EQ(encode(Schedule{}), "v1:");
}

TEST(ScheduleTest, EncodeBase32Digits) {
  Schedule s;
  s.choices = {0, 9, 10, 31};
  EXPECT_EQ(encode(s), "v1:09av");
}

TEST(ScheduleTest, RoundTripAllDigits) {
  Schedule s;
  for (int i = 0; i < 32; ++i) s.choices.push_back(i);
  Schedule back;
  ASSERT_TRUE(decode(encode(s), back));
  EXPECT_EQ(back, s);
}

TEST(ScheduleTest, DecodeEmptyBody) {
  Schedule out;
  out.choices = {7};  // sentinel: must be replaced
  ASSERT_TRUE(decode("v1:", out));
  EXPECT_TRUE(out.choices.empty());
}

TEST(ScheduleTest, DecodeRejectsMissingPrefix) {
  Schedule out;
  out.choices = {7};
  EXPECT_FALSE(decode("0101", out));
  EXPECT_FALSE(decode("", out));
  EXPECT_FALSE(decode("v3:01", out));
  // A failed decode leaves `out` untouched.
  EXPECT_EQ(out.choices, (std::vector<int>{7}));
}

TEST(ScheduleTest, DecodeRejectsBadDigit) {
  Schedule out;
  EXPECT_FALSE(decode("v1:01w", out));  // 'w' is past base-32
  EXPECT_FALSE(decode("v1:0 1", out));
  EXPECT_FALSE(decode("v1:0A", out));  // upper case is not in the alphabet
}

TEST(ScheduleTest, WideIndicesEncodeAsV2AndRoundTrip) {
  // A 128-CPU runnable list can hand back indices past 31: those schedules
  // render in the two-digit v2 form and round-trip exactly.
  Schedule s;
  s.choices = {0, 31, 32, 127};
  const std::string text = encode(s);
  EXPECT_EQ(text.rfind("v2:", 0), 0u);
  Schedule back;
  ASSERT_TRUE(decode(text, back));
  EXPECT_EQ(back, s);
}

TEST(ScheduleTest, NarrowSchedulesKeepV1Form) {
  // Replay strings recorded before the CPU axis widened must stay
  // byte-identical: v2 is only used when an index needs the second digit.
  Schedule s;
  s.choices = {0, 31};
  EXPECT_EQ(encode(s), "v1:0v");
}

TEST(ScheduleTest, DecodeV2RejectsOddDigitCountAndBadDigits) {
  Schedule out;
  EXPECT_FALSE(decode("v2:010", out));  // dangling half-pair
  EXPECT_FALSE(decode("v2:0w", out));
  ASSERT_TRUE(decode("v2:", out));  // empty body is a valid empty schedule
  EXPECT_TRUE(out.choices.empty());
}

}  // namespace
}  // namespace mc
