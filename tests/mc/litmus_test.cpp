// End-to-end model-checker tests over the litmus corpus: every clean
// program is violation-free across its explored schedules, every seeded
// mutant is caught with its expected anomaly class, counterexamples replay
// to the same violations, and runs are deterministic.
#include "mc/explorer.h"
#include "mc/litmus.h"
#include "mc/schedule.h"

#include <gtest/gtest.h>

#include <set>

namespace mc {
namespace {

TEST(LitmusTest, CorpusShape) {
  int clean = 0, mutants = 0;
  for (const Program& p : programs()) {
    if (p.mutant) {
      ++mutants;
      EXPECT_TRUE(p.expected.has_value()) << p.name;
    } else {
      ++clean;
    }
  }
  EXPECT_GE(clean, 8);
  EXPECT_GE(mutants, 6);
  // The seeded bugs span at least 5 distinct anomaly classes.
  std::set<Anomaly> classes;
  for (const Program& p : programs()) {
    if (p.mutant) classes.insert(*p.expected);
  }
  EXPECT_GE(classes.size(), 5u);
  EXPECT_EQ(find_program("map_rmw")->name, "map_rmw");
  EXPECT_EQ(find_program("no_such_program"), nullptr);
  // The chopping pair: a clean chopped handler and its lossy-dequeue mutant.
  const Program* clean_chop = find_program("chop_transfer");
  ASSERT_NE(clean_chop, nullptr);
  EXPECT_FALSE(clean_chop->mutant);
  const Program* mut_chop = find_program("mut_chop_lossy_dequeue");
  ASSERT_NE(mut_chop, nullptr);
  EXPECT_TRUE(mut_chop->mutant);
  EXPECT_EQ(*mut_chop->expected, Anomaly::kCompensationInversion);
}

TEST(LitmusTest, CleanProgramsHaveNoViolations) {
  ExploreOptions opt;  // defaults mirror the CI budget
  for (const Program& p : programs()) {
    if (p.mutant) continue;
    const ExploreResult res = explore(p, opt);
    EXPECT_GE(res.runs, 1) << p.name;
    EXPECT_TRUE(res.counterexamples.empty())
        << p.name << ": " << res.counterexamples.front().violations.front().detail;
  }
}

TEST(LitmusTest, EveryMutantCaughtWithExpectedClass) {
  ExploreOptions opt;
  for (const Program& p : programs()) {
    if (!p.mutant) continue;
    const ExploreResult res = explore(p, opt);
    EXPECT_TRUE(res.found(*p.expected))
        << p.name << " not caught as " << anomaly_name(*p.expected) << " in "
        << res.runs << " runs";
  }
}

TEST(LitmusTest, CounterexampleReplaysToSameViolation) {
  const Program* p = find_program("mut_double_release");
  ASSERT_NE(p, nullptr);
  const ExploreResult res = explore(*p, ExploreOptions{});
  ASSERT_FALSE(res.counterexamples.empty());
  const Counterexample& cx = res.counterexamples.front();

  // Round-trip the replay string, then re-run under the decoded schedule.
  Schedule decoded;
  ASSERT_TRUE(decode(encode(cx.schedule), decoded));
  EXPECT_EQ(decoded, cx.schedule);

  const RunResult replay = run_program(*p, decoded);
  EXPECT_FALSE(replay.diverged);
  EXPECT_EQ(replay.executed, cx.schedule);
  ASSERT_EQ(replay.violations.size(), cx.violations.size());
  for (std::size_t i = 0; i < replay.violations.size(); ++i) {
    EXPECT_EQ(replay.violations[i].kind, cx.violations[i].kind);
  }
}

TEST(LitmusTest, DefaultScheduleIsDeterministic) {
  const Program* p = find_program("map_rmw");
  ASSERT_NE(p, nullptr);
  const RunResult a = run_program(*p, Schedule{});
  const RunResult b = run_program(*p, Schedule{});
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_TRUE(a.violations.empty());
  EXPECT_FALSE(a.executed.choices.empty());  // two cpus must interleave

  // Forcing the full executed schedule reproduces it exactly.
  const RunResult c = run_program(*p, a.executed);
  EXPECT_FALSE(c.diverged);
  EXPECT_EQ(c.executed, a.executed);
}

TEST(LitmusTest, ForcedAlternateScheduleDiverges) {
  // Flip the first branching decision: a different, still deterministic
  // interleaving results — and the executed schedule starts with the flip.
  const Program* p = find_program("map_rmw");
  ASSERT_NE(p, nullptr);
  const RunResult base = run_program(*p, Schedule{});
  ASSERT_FALSE(base.executed.choices.empty());

  Schedule flipped;
  flipped.choices.push_back(base.executed.choices[0] == 0 ? 1 : 0);
  const RunResult alt1 = run_program(*p, flipped);
  const RunResult alt2 = run_program(*p, flipped);
  EXPECT_FALSE(alt1.diverged);
  EXPECT_EQ(alt1.executed, alt2.executed);
  ASSERT_FALSE(alt1.executed.choices.empty());
  EXPECT_EQ(alt1.executed.choices[0], flipped.choices[0]);
  EXPECT_NE(alt1.executed, base.executed);
  EXPECT_TRUE(alt1.violations.empty());  // clean program: every schedule legal
}

TEST(LitmusTest, ExhaustiveModeCoversReducedFindings) {
  // Reduction is a heuristic; --exhaustive must still catch the mutant.
  const Program* p = find_program("mut_lock_leak");
  ASSERT_NE(p, nullptr);
  ExploreOptions opt;
  opt.reduce = false;
  const ExploreResult res = explore(*p, opt);
  EXPECT_TRUE(res.found(Anomaly::kLockLeak));
}

}  // namespace
}  // namespace mc
