// Tests for the host-parallel experiment driver (harness/driver.h).
//
// The load-bearing property is DETERMINISM: a `--jobs N` sweep must produce
// exactly the results of the serial sweep — same RunResult vectors, same
// CSV bytes — because each simulation point is a pure function of its
// (series, cpus, seed).  These tests drive the real fig1-shaped workload
// (bench/testmap_common.h) at a small op count so the property is checked
// against genuine simulations, not stubs.
#include "harness/driver.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/testmap_common.h"
#include "sim/engine.h"

namespace {

using bench::TestMapParams;

TestMapParams tiny_params() {
  TestMapParams p;
  p.total_ops = 160;
  p.think_cycles = 500;
  p.seed = 12345;
  return p;
}

// Two-series fig1 shape: lock-mode "Java" first (its 1-CPU run is the
// figure baseline), then a transactional series.
std::vector<harness::Series> tiny_fig1(const TestMapParams& p) {
  auto make_hash = [p] {
    return std::make_unique<jstd::HashMap<long, long>>(static_cast<std::size_t>(p.key_space) * 2);
  };
  std::vector<harness::Series> series;
  series.push_back(bench::java_series("Java HashMap", p, make_hash));
  series.push_back(bench::atomos_series("Atomos HashMap", p, make_hash));
  return series;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : line) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

TEST(DriverTest, BaselineIsFirstSeriesOneCpuLockMode) {
  const TestMapParams p = tiny_params();
  harness::DriverOptions opt;
  const harness::FigureResult fr =
      harness::run_figure_driver("baseline test", tiny_fig1(p), {1, 2}, "", opt);
  ASSERT_TRUE(fr.ok());
  ASSERT_EQ(fr.results.size(), 4u);
  // The first point — first series ("Java", lock mode), first CPU count
  // (1) — is the figure's baseline, so its speedup is exactly 1.
  EXPECT_EQ(fr.results[0].series, "Java HashMap");
  EXPECT_EQ(fr.results[0].cpus, 1);
  EXPECT_DOUBLE_EQ(fr.results[0].speedup, 1.0);
  // Every other speedup is measured against that baseline's cycles.
  const double base = static_cast<double>(fr.results[0].cycles);
  for (const harness::RunResult& r : fr.results) {
    EXPECT_DOUBLE_EQ(r.speedup, base / static_cast<double>(r.cycles));
  }
}

TEST(DriverTest, CsvColumnFormat) {
  const TestMapParams p = tiny_params();
  const std::string path = testing::TempDir() + "/driver_test_fmt.csv";
  harness::DriverOptions opt;
  const harness::FigureResult fr =
      harness::run_figure_driver("csv format test", tiny_fig1(p), {1, 2}, path, opt);
  ASSERT_TRUE(fr.ok());

  std::ifstream csv(path);
  ASSERT_TRUE(csv.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(csv, line));
  EXPECT_EQ(line, "series,cpus,cycles,speedup,violations,semantic,lost_cycles,commits");
  std::size_t rows = 0;
  while (std::getline(csv, line)) {
    const std::vector<std::string> f = split_fields(line);
    ASSERT_EQ(f.size(), 8u) << "row: " << line;
    const harness::RunResult& r = fr.results[rows];
    EXPECT_EQ(f[0], r.series);
    EXPECT_EQ(f[1], std::to_string(r.cpus));
    EXPECT_EQ(f[2], std::to_string(r.cycles));
    EXPECT_EQ(f[4], std::to_string(r.violations));
    EXPECT_EQ(f[7], std::to_string(r.commits));
    ++rows;
  }
  EXPECT_EQ(rows, fr.results.size());
}

TEST(DriverTest, DeterminismSerialVsJobs8) {
  const TestMapParams p = tiny_params();
  const std::string serial_csv = testing::TempDir() + "/driver_test_serial.csv";
  const std::string jobs_csv = testing::TempDir() + "/driver_test_jobs8.csv";

  harness::DriverOptions serial;
  const harness::FigureResult a =
      harness::run_figure_driver("determinism serial", tiny_fig1(p), {1, 2, 4}, serial_csv,
                                 serial);

  harness::DriverOptions jobs8;
  jobs8.jobs = 8;
  const harness::FigureResult b =
      harness::run_figure_driver("determinism jobs8", tiny_fig1(p), {1, 2, 4}, jobs_csv, jobs8);

  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same RunResult vectors, field for field (cycles, stats, speedups)...
  EXPECT_EQ(a.results, b.results);
  // ...and byte-identical CSVs.
  const std::string sa = slurp(serial_csv);
  EXPECT_FALSE(sa.empty());
  EXPECT_EQ(sa, slurp(jobs_csv));
}

TEST(DriverTest, OnlyFilterSelectsSeriesAndCpus) {
  const TestMapParams p = tiny_params();
  harness::DriverOptions only_atomos;
  only_atomos.only = "Atomos";
  const harness::FigureResult fa =
      harness::run_figure_driver("only series", tiny_fig1(p), {1, 2}, "", only_atomos);
  ASSERT_EQ(fa.results.size(), 2u);
  for (const harness::RunResult& r : fa.results) EXPECT_EQ(r.series, "Atomos HashMap");

  harness::DriverOptions only_cpus;
  only_cpus.only = "cpus=2";
  const harness::FigureResult fc =
      harness::run_figure_driver("only cpus", tiny_fig1(p), {1, 2}, "", only_cpus);
  ASSERT_EQ(fc.results.size(), 2u);
  for (const harness::RunResult& r : fc.results) EXPECT_EQ(r.cpus, 2);

  harness::DriverOptions only_none;
  only_none.only = "NoSuchSeries";
  EXPECT_THROW(harness::run_figure_driver("only none", tiny_fig1(p), {1, 2}, "", only_none),
               std::invalid_argument);
}

TEST(DriverTest, TimeoutPoisonsHungPointAndSweepCompletes) {
  const TestMapParams p = tiny_params();
  std::vector<harness::Series> series = tiny_fig1(p);
  // A workload that never finishes: the driver's wall-clock deadline must
  // kill it (twice — one retry) and poison the point, not hang the sweep.
  series.push_back(harness::Series{
      "Hung", sim::Mode::kLock, [](int cpus, std::uint64_t, harness::RunResult& out) {
        sim::Config cfg;
        cfg.mode = sim::Mode::kLock;
        cfg.num_cpus = cpus;
        sim::Engine eng(cfg);
        eng.spawn([&] {
          for (;;) eng.tick(100);
        });
        eng.run();
        out.cycles = eng.elapsed_cycles();
      }});
  harness::DriverOptions opt;
  opt.timeout_sec = 0.05;
  const harness::FigureResult fr =
      harness::run_figure_driver("timeout test", series, {1}, "", opt);
  EXPECT_FALSE(fr.ok());
  ASSERT_EQ(fr.poisoned.size(), 1u);
  EXPECT_EQ(fr.poisoned[0].series, "Hung");
  EXPECT_NE(fr.poisoned[0].error.find("timed out"), std::string::npos);
  // The healthy points still completed and were merged in order.
  ASSERT_EQ(fr.results.size(), 2u);
  EXPECT_EQ(fr.results[0].series, "Java HashMap");
  EXPECT_EQ(fr.results[1].series, "Atomos HashMap");
}

TEST(DriverTest, TrialStatsBracketCanonicalRun) {
  const TestMapParams p = tiny_params();
  harness::DriverOptions one;
  const harness::FigureResult single =
      harness::run_figure_driver("trials single", tiny_fig1(p), {2}, "", one);

  harness::DriverOptions trials;
  trials.trials = 3;
  const harness::FigureResult fr =
      harness::run_figure_driver("trials test", tiny_fig1(p), {2}, "", trials);
  ASSERT_TRUE(fr.ok());
  ASSERT_EQ(fr.results.size(), 2u);
  ASSERT_EQ(fr.trial_stats.size(), 2u);
  for (std::size_t i = 0; i < fr.results.size(); ++i) {
    const harness::TrialStats& ts = fr.trial_stats[i];
    EXPECT_EQ(ts.trials, 3);
    EXPECT_LE(static_cast<double>(ts.cycles_min), ts.cycles_mean);
    EXPECT_LE(ts.cycles_mean, static_cast<double>(ts.cycles_max));
    // Trial 0 runs with salt 0, so the canonical columns must match the
    // plain trials=1 sweep exactly.
    EXPECT_EQ(fr.results[i].cycles, single.results[i].cycles);
    EXPECT_LE(ts.cycles_min, fr.results[i].cycles);
    EXPECT_GE(ts.cycles_max, fr.results[i].cycles);
  }
}

}  // namespace
