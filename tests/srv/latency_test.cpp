// LatencyHistogram: bucket layout, quantile error bound, mergeability.
#include "harness/latency.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace {

using harness::LatencyHistogram;

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.count(), 16u);
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(LatencyHistogram::index(v), static_cast<int>(v));
    EXPECT_EQ(LatencyHistogram::lower_bound(static_cast<int>(v)), v);
  }
}

TEST(LatencyHistogram, IndexIsMonotoneAndInRange) {
  int prev = -1;
  for (std::uint64_t v = 0; v < (1u << 20); v += 97) {
    const int i = LatencyHistogram::index(v);
    ASSERT_GE(i, prev);  // non-decreasing in v
    ASSERT_LT(i, LatencyHistogram::kBuckets);
    ASSERT_LE(LatencyHistogram::lower_bound(i), v);
    prev = i;
  }
  // The largest representable value still lands in the table.
  ASSERT_LT(LatencyHistogram::index(~std::uint64_t{0}), LatencyHistogram::kBuckets);
}

TEST(LatencyHistogram, QuantileUndershootsByAtMostOneEighth) {
  // With a single recorded value, any quantile reports that value's bucket
  // lower bound — which must sit within 12.5% below the true value.
  for (std::uint64_t v : {17u, 100u, 1000u, 4097u, 65535u, 1000000u}) {
    LatencyHistogram h;
    h.record(v);
    const std::uint64_t q = h.quantile(0.5);
    EXPECT_LE(q, v);
    EXPECT_GE(8 * q, 7 * v) << "v=" << v;  // q >= v * (1 - 1/8)
  }
}

TEST(LatencyHistogram, TopBucketReportsExactMax) {
  LatencyHistogram h;
  h.record(100);
  h.record(12345);
  EXPECT_EQ(h.max(), 12345u);
  // The last occupied bucket is reported as the tracked maximum, not the
  // bucket's (coarser) lower bound.
  EXPECT_EQ(h.quantile(1.0), 12345u);
  EXPECT_EQ(h.quantile(0.999), 12345u);
}

TEST(LatencyHistogram, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(LatencyHistogram, MergeMatchesSequentialRecording) {
  LatencyHistogram all, odd, even;
  std::uint64_t x = 1;
  for (int i = 0; i < 5000; ++i) {
    x = x * 2862933555777941757ULL + 3037000493ULL;
    const std::uint64_t v = x >> 40;
    all.record(v);
    (i % 2 != 0 ? odd : even).record(v);
  }
  LatencyHistogram merged = even;
  merged += odd;
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_EQ(merged.max(), all.max());
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i)
    ASSERT_EQ(merged.bucket_count(i), all.bucket_count(i)) << "bucket " << i;
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999})
    EXPECT_EQ(merged.quantile(q), all.quantile(q)) << "q=" << q;
}

TEST(LatencyHistogram, MergeIsOrderIndependent) {
  LatencyHistogram a, b;
  for (std::uint64_t v = 0; v < 2000; v += 3) a.record(v * v % 100000);
  for (std::uint64_t v = 1; v < 2000; v += 3) b.record(v * v % 90000);
  LatencyHistogram ab = a, ba = b;
  ab += b;
  ba += a;
  EXPECT_EQ(ab.count(), ba.count());
  for (double q : {0.25, 0.5, 0.75, 0.99}) EXPECT_EQ(ab.quantile(q), ba.quantile(q));
}

TEST(LatencyHistogram, QuantilesOfUniformRampAreOrdered) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 100000; ++v) h.record(v);
  const std::uint64_t p50 = h.quantile(0.5);
  const std::uint64_t p99 = h.quantile(0.99);
  const std::uint64_t p999 = h.quantile(0.999);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  // And each sits within the 12.5% undershoot bound of the true quantile.
  EXPECT_GE(8 * p50, 7 * 50000u);
  EXPECT_LE(p50, 50000u);
  EXPECT_GE(8 * p99, 7 * 99000u);
  EXPECT_LE(p99, 99999u);
}

TEST(LatencyHistogram, SingleBucketMassDoesNotOvershootMidQuantiles) {
  // 100 samples all landing in one coarse bucket: p50 must not be reported
  // as the tracked maximum (the old top-bucket shortcut overshot by up to
  // 12.5% above the true quantile, breaking the one-sided contract).
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(1000);  // one bucket, max_ == 1000
  EXPECT_EQ(h.quantile(0.5), LatencyHistogram::lower_bound(
                                 LatencyHistogram::index(1000)));
  const std::uint64_t p50 = h.quantile(0.5);
  EXPECT_LE(p50, 1000u);
  EXPECT_GE(8 * p50, 7 * 1000u);
  // The final rank still reports the exact maximum.
  EXPECT_EQ(h.quantile(1.0), 1000u);
}

TEST(LatencyHistogram, SingleSampleQuantilesAreExact) {
  LatencyHistogram h;
  h.record(4097);
  // Every rank selects the only sample, so the exact max is reported —
  // never an over- or undershooting bucket bound.
  for (double q : {0.001, 0.5, 0.99, 0.999, 1.0})
    EXPECT_EQ(h.quantile(q), 4097u) << "q=" << q;
  // q == 0 may fall back to the bucket lower bound, but stays in-bound.
  EXPECT_LE(h.quantile(0.0), 4097u);
  EXPECT_GE(8 * h.quantile(0.0), 7 * 4097u);
}

TEST(LatencyHistogram, DisjointRangeMergeKeepsQuantileBound) {
  // fig5's per-CPU shards can have wholly disjoint sojourn ranges (an idle
  // worker vs a saturated one); merging them must keep every quantile within
  // the one-sided 12.5% bound of the true pooled quantile.
  LatencyHistogram low, high;
  for (int i = 0; i < 90; ++i) low.record(10);        // exact linear bucket
  for (int i = 0; i < 10; ++i) high.record(1000000);  // four decades away
  LatencyHistogram merged = low;
  merged += high;
  ASSERT_EQ(merged.count(), 100u);
  // True p50 = 10 (rank 50 of 100).  The old shortcut never fired here, but
  // pin it: no overshoot into the distant top bucket.
  EXPECT_EQ(merged.quantile(0.5), 10u);
  // True p99 = 1000000 (rank 99): must be within 12.5% below, never above.
  const std::uint64_t p99 = merged.quantile(0.99);
  EXPECT_LE(p99, 1000000u);
  EXPECT_GE(8 * p99, 7 * 1000000u);
  // p999 selects the final sample -> exact max.
  EXPECT_EQ(merged.quantile(0.999), 1000000u);
}

}  // namespace
