// src/srv: schedule determinism, --jobs byte-identity, and the figure's
// headline shape (semantic TM sustains more offered load than the coarse
// lock before its latency knee).
#include "srv/workload.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/driver.h"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(SrvSchedule, DeterministicAndFlavorIndependent) {
  srv::SrvConfig cfg;
  cfg.requests = 400;
  cfg.load = 0.6;
  const auto a = srv::make_schedule(cfg, 7, 0);
  const auto b = srv::make_schedule(cfg, 7, 0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].key2, b[i].key2);
    EXPECT_EQ(a[i].delta, b[i].delta);
  }
  // Arrivals are non-decreasing and requests are well-formed.
  std::uint64_t prev = 0;
  for (const auto& r : a) {
    EXPECT_GE(r.arrival, prev);
    prev = r.arrival;
    EXPECT_GE(r.kind, 0);
    EXPECT_LE(r.kind, 2);
    if (r.kind == 2) EXPECT_NE(r.key, r.key2);
  }
  // A different salt (trial) or worker count perturbs the schedule.
  const auto salted = srv::make_schedule(cfg, 7, 1);
  const auto wider = srv::make_schedule(cfg, 31, 0);
  EXPECT_NE(salted[0].arrival, a[0].arrival);
  EXPECT_NE(wider[0].arrival, a[0].arrival);
}

TEST(SrvWorkload, AllFlavorsPassTheConsistencyAudit) {
  // run_server throws on any conservation failure — exact-once completion,
  // hits+misses == lookups, revenue reconciliation, drained queue.
  for (srv::Flavor f :
       {srv::Flavor::kLock, srv::Flavor::kFlatTm, srv::Flavor::kSemanticTm,
        srv::Flavor::kChoppedTm}) {
    srv::SrvConfig cfg;
    cfg.requests = 300;
    cfg.load = 0.9;
    srv::SrvReport rep;
    ASSERT_NO_THROW(srv::run_server(f, cfg, 8, 0, rep)) << srv::flavor_name(f);
    EXPECT_EQ(rep.completed, 300u) << srv::flavor_name(f);
    EXPECT_EQ(rep.sojourn.count(), 300u) << srv::flavor_name(f);
    EXPECT_GT(rep.last_commit, 0u) << srv::flavor_name(f);
    if (f == srv::Flavor::kChoppedTm) {
      // Every handled request commits at least a take piece and a handle
      // piece; empty polls add more take pieces.
      EXPECT_GE(rep.chop_pieces, 2 * rep.completed) << srv::flavor_name(f);
    } else {
      EXPECT_EQ(rep.chop_pieces, 0u) << srv::flavor_name(f);
    }
  }
}

TEST(SrvFigure, SerialAndParallelSweepsAreByteIdentical) {
  // A reduced fig5 sweep — every flavor at one load — run twice: serial and
  // with 8 host threads.  Results (extras included) and CSV bytes must
  // match exactly; this is the property CI relies on to diff-check the
  // committed fig5_srv.csv regardless of --jobs.
  std::vector<harness::Series> series;
  for (srv::Flavor f :
       {srv::Flavor::kLock, srv::Flavor::kFlatTm, srv::Flavor::kSemanticTm})
    series.push_back(srv::series(f, 0.6, 200));

  harness::DriverOptions serial;
  serial.jobs = 1;
  serial.csv_path = "srv_determinism_serial.csv";
  harness::DriverOptions parallel;
  parallel.jobs = 8;
  parallel.csv_path = "srv_determinism_parallel.csv";

  const auto r1 = harness::run_figure_driver("srv determinism (serial)", series,
                                             {8}, "", serial);
  const auto r8 = harness::run_figure_driver("srv determinism (parallel)",
                                             series, {8}, "", parallel);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r8.ok());
  ASSERT_EQ(r1.results.size(), 3u);
  EXPECT_EQ(r1.results, r8.results);  // RunResult::operator== covers extras

  const std::string csv1 = slurp(serial.csv_path);
  const std::string csv8 = slurp(parallel.csv_path);
  ASSERT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv8);
  // The extras columns made it into the header.
  EXPECT_NE(csv1.find("load,offered_per_mcyc,tput_per_mcyc,p50,p99,p999"),
            std::string::npos);
  std::remove(serial.csv_path.c_str());
  std::remove(parallel.csv_path.c_str());
}

TEST(SrvFigure, SemanticSustainsMoreLoadThanLockBeforeTheKnee) {
  // The acceptance shape on an 8-CPU server: at an offered load the lock
  // loop cannot sustain (rho = 0.9), semantic TM still completes requests
  // about as fast as they arrive, with far lower sojourn time.
  srv::SrvConfig cfg;
  cfg.requests = 600;
  cfg.load = 0.9;
  srv::SrvReport lock, sem;
  srv::run_server(srv::Flavor::kLock, cfg, 8, 0, lock);
  srv::run_server(srv::Flavor::kSemanticTm, cfg, 8, 0, sem);

  // Same arrival schedule, so equal spans mean equal throughput; the lock
  // run must take at least 2x longer to drain the same 600 requests...
  EXPECT_GT(lock.last_commit, 2 * sem.last_commit);
  // ...and its median sojourn shows the saturated queue (an order of
  // magnitude is the acceptance bar; in practice it is >50x).
  EXPECT_GT(lock.sojourn.quantile(0.5), 10 * sem.sojourn.quantile(0.5));

  // Below the lock's knee (rho = 0.15) both keep up: medians within the
  // same decade, so the semantic win above is queueing, not service cost.
  srv::SrvConfig light = cfg;
  light.load = 0.15;
  srv::SrvReport lock_lo, sem_lo;
  srv::run_server(srv::Flavor::kLock, light, 8, 0, lock_lo);
  srv::run_server(srv::Flavor::kSemanticTm, light, 8, 0, sem_lo);
  EXPECT_LT(lock_lo.sojourn.quantile(0.5), 10 * sem_lo.sojourn.quantile(0.5));
}

}  // namespace
