// Precision tests for the txlint scanner: each rule must fire exactly where
// the fixture plants a violation, and stay quiet on the idiomatic patterns
// the real tree uses (paired handlers, oracle wrappers, by-ref captures,
// suppression comments).
#include "scanner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace txlint {
namespace {

std::vector<Finding> scan(std::string_view src, const Options& opts = {}) {
  return scan_source("fixture.cpp", src, opts);
}

std::vector<Finding> of_rule(const std::vector<Finding>& fs, std::string_view rule) {
  std::vector<Finding> out;
  for (const auto& f : fs) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

bool fires_at(const std::vector<Finding>& fs, std::string_view rule, int line) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule && f.line == line; });
}

TEST(TxlintRules, ElevenRulesRegistered) {
  const auto& rs = rules();
  ASSERT_EQ(rs.size(), 11u);
  std::vector<std::string_view> names;
  for (const auto& r : rs) names.push_back(r.name);
  for (const char* want : {"shared-field", "raw-peek", "catch-swallow",
                           "unpaired-handler", "shared-value-capture",
                           "trace-hook", "isolation-class", "handler-mutation",
                           "hot-path-container", "handler-closure",
                           "chop-compensation"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end()) << want;
  }
}

// ---- shared-field ----

TEST(SharedFieldRule, FlagsMutablePrimitiveAndPointerMembersInJstd) {
  const std::string src =
      "namespace jstd {\n"                        // 1
      "template <class K>\n"                      // 2
      "class Node {\n"                            // 3
      " public:\n"                                // 4
      "  int count_;\n"                           // 5  <- primitive
      "  Node* next_;\n"                          // 6  <- raw pointer
      "  atomos::Shared<long> ok_;\n"             // 7
      "  const int fixed_ = 3;\n"                 // 8
      "  std::size_t size() const { return 0; }\n"  // 9
      "};\n"                                      // 10
      "}\n";
  const auto fs = scan(src);
  const auto sf = of_rule(fs, "shared-field");
  EXPECT_EQ(sf.size(), 2u);
  EXPECT_TRUE(fires_at(fs, "shared-field", 5));
  EXPECT_TRUE(fires_at(fs, "shared-field", 6));
}

TEST(SharedFieldRule, IgnoresOutsideJstdAndTransactionLocalClasses) {
  const std::string src =
      "namespace jbb {\n"
      "class Model { int plain_; };\n"  // not jstd: fine
      "}\n"
      "namespace jstd {\n"
      "class MapIter { long pos_; };\n"    // *Iter*: transaction-local
      "class LockGuard { bool held_; };\n"  // *Guard*: RAII
      "class Table { Node* const head_; };\n"  // const anywhere: immutable
      "}\n";
  EXPECT_TRUE(of_rule(scan(src), "shared-field").empty());
}

// ---- raw-peek ----

TEST(RawPeekRule, FlagsPeekCallsAndReachThroughOutsideOracles) {
  const std::string src =
      "long workload(const atomos::Shared<long>& x, Cell* c) {\n"  // 1
      "  long a = x.unsafe_peek();\n"                              // 2  <- call
      "  long b = c->v_;\n"                                        // 3  <- reach-through
      "  return a + b;\n"                                          // 4
      "}\n";
  const auto fs = scan(src);
  EXPECT_EQ(of_rule(fs, "raw-peek").size(), 2u);
  EXPECT_TRUE(fires_at(fs, "raw-peek", 2));
  EXPECT_TRUE(fires_at(fs, "raw-peek", 3));
}

TEST(RawPeekRule, ExemptsOracleWrappersDestructorsAndTheDeclarationItself) {
  const std::string src =
      "struct Cell {\n"
      "  long unsafe_peek() const { return v2; }\n"  // the oracle API itself
      "  long v2;\n"
      "};\n"
      "long unsafe_total(const Cell& c) { return c.unsafe_peek(); }\n"  // unsafe_* wrapper
      "struct Owner {\n"
      "  ~Owner() { cleanup(cell.unsafe_peek()); }\n"  // teardown
      "  Cell cell;\n"
      "};\n";
  EXPECT_TRUE(of_rule(scan(src), "raw-peek").empty());
}

// ---- catch-swallow ----

TEST(CatchSwallowRule, FlagsSwallowedUnwinds) {
  const std::string src =
      "void f() {\n"                                     // 1
      "  try { g(); } catch (...) {\n"                   // 2  <- swallows
      "    log();\n"                                     // 3
      "  }\n"                                            // 4
      "  try { g(); } catch (const Violated& v) {\n"     // 5  <- swallows
      "    count++;\n"                                   // 6
      "  }\n"                                            // 7
      "}\n";
  const auto fs = scan(src);
  EXPECT_EQ(of_rule(fs, "catch-swallow").size(), 2u);
  EXPECT_TRUE(fires_at(fs, "catch-swallow", 2));
  EXPECT_TRUE(fires_at(fs, "catch-swallow", 5));
}

TEST(CatchSwallowRule, AllowsEscapingBodiesAndSpecificExceptions) {
  const std::string src =
      "void f() {\n"
      "  try { g(); } catch (...) { cleanup(); throw; }\n"       // rethrows
      "  try { g(); } catch (const Violated&) { std::abort(); }\n"  // dies
      "  try { g(); } catch (const std::exception& e) { log(e); }\n"  // specific
      "}\n";
  EXPECT_TRUE(of_rule(scan(src), "catch-swallow").empty());
}

// ---- unpaired-handler ----

TEST(UnpairedHandlerRule, FlagsCommitWithoutAbortAtBothLevels) {
  const std::string src =
      "void leaky_top() {\n"                                  // 1
      "  rt.on_top_commit([&] { locks.clear(); });\n"         // 2  <- unpaired
      "}\n"                                                   // 3
      "void leaky_nested() {\n"                               // 4
      "  atomos::on_commit([&] { publish(); });\n"            // 5  <- unpaired
      "}\n";
  const auto fs = scan(src);
  EXPECT_EQ(of_rule(fs, "unpaired-handler").size(), 2u);
  EXPECT_TRUE(fires_at(fs, "unpaired-handler", 2));
  EXPECT_TRUE(fires_at(fs, "unpaired-handler", 5));
}

TEST(UnpairedHandlerRule, AllowsPairedAndAbortOnlyRegistration) {
  const std::string src =
      "void disciplined() {\n"
      "  rt.on_top_commit([&] { locks.clear(); });\n"
      "  rt.on_top_abort([&] { locks.clear(); });\n"
      "}\n"
      "void compensating_only() {\n"
      "  rt.on_top_abort([&] { counter.sub(delta); });\n"  // CompensatedCounter shape
      "}\n";
  EXPECT_TRUE(of_rule(scan(src), "unpaired-handler").empty());
}

// ---- shared-value-capture ----

TEST(SharedCaptureRule, FlagsByValueCapturesOfSharedLocals) {
  const std::string src =
      "void f() {\n"                                   // 1
      "  atomos::Shared<int> x(1);\n"                  // 2
      "  auto a = [x] { return 0; };\n"                // 3  <- named by-value
      "  auto b = [y = x] { return 0; };\n"            // 4  <- init-capture copy
      "  auto c = [=] { return x.get(); };\n"          // 5  <- default copy, uses x
      "  (void)a; (void)b; (void)c;\n"                 // 6
      "}\n";
  const auto fs = scan(src);
  EXPECT_EQ(of_rule(fs, "shared-value-capture").size(), 3u);
  EXPECT_TRUE(fires_at(fs, "shared-value-capture", 3));
  EXPECT_TRUE(fires_at(fs, "shared-value-capture", 4));
  EXPECT_TRUE(fires_at(fs, "shared-value-capture", 5));
}

TEST(SharedCaptureRule, AllowsReferenceCaptures) {
  const std::string src =
      "void f() {\n"
      "  atomos::Shared<int> x(1);\n"
      "  auto a = [&x] { return x.get(); };\n"
      "  auto b = [&] { return x.get(); };\n"
      "  auto c = [=] { return 42; };\n"  // [=] but no Shared use in body
      "  (void)a; (void)b; (void)c;\n"
      "}\n";
  EXPECT_TRUE(of_rule(scan(src), "shared-value-capture").empty());
}

// ---- handler-closure ----

TEST(HandlerClosureRule, FlagsStaleSnapshotsCapturedIntoTransactionBodies) {
  const std::string src =
      "void handler(Map& sessions, Queue& q) {\n"            // 1
      "  auto bal = sessions.get(7);\n"                      // 2  snapshot
      "  auto req = q.try_dequeue();\n"                      // 3  snapshot
      "  atomos::atomically([bal] {\n"                       // 4  <- named copy
      "    use(bal);\n"                                      // 5
      "  });\n"                                              // 6
      "  atomos::atomically([r = req] { use(r); });\n"       // 7  <- init-capture
      "  atomos::open_atomically([=] { return bal; });\n"    // 8  <- [=] uses bal
      "}\n";
  const auto fs = scan(src);
  const auto hc = of_rule(fs, "handler-closure");
  EXPECT_EQ(hc.size(), 3u);
  EXPECT_TRUE(fires_at(fs, "handler-closure", 4));
  EXPECT_TRUE(fires_at(fs, "handler-closure", 7));
  EXPECT_TRUE(fires_at(fs, "handler-closure", 8));
}

TEST(HandlerClosureRule, AllowsByRefBodiesAndNonTransactionalLambdas) {
  const std::string src =
      "void handler(Map& sessions, Queue& q) {\n"
      "  auto bal = sessions.get(7);\n"
      "  atomos::atomically([&] { use(sessions.get(7)); });\n"  // re-reads inside
      "  atomos::atomically([&bal] { use(bal); });\n"           // by reference
      "  auto log_it = [bal] { print(bal); };\n"   // plain lambda: snapshot fine
      "  log_it();\n"
      "  int plain = 3;\n"
      "  atomos::atomically([plain] { use(plain); });\n"  // not a collection read
      "}\n";
  EXPECT_TRUE(of_rule(scan(src), "handler-closure").empty());
}

// ---- trace-hook ----

TEST(TraceHookRule, FlagsAllocationAndTmAccessInsideHooks) {
  const std::string src =
      "namespace trace {\n"                                   // 1
      "struct T {\n"                                          // 2
      "  void on_txn_begin(int cpu) {\n"                      // 3
      "    events.push_back(cpu);\n"                          // 4  <- alloc path
      "    auto* p = new int(cpu);\n"                         // 5  <- heap alloc
      "    (void)p;\n"                                        // 6
      "  }\n"                                                 // 7
      "  void on_miss(long x) {\n"                            // 8
      "    (void)atomically([&] { return x; });\n"            // 9  <- TM re-entry
      "  }\n"                                                 // 10
      "};\n"                                                  // 11
      "}\n";
  const auto fs = scan(src);
  EXPECT_EQ(of_rule(fs, "trace-hook").size(), 3u);
  EXPECT_TRUE(fires_at(fs, "trace-hook", 4));
  EXPECT_TRUE(fires_at(fs, "trace-hook", 5));
  EXPECT_TRUE(fires_at(fs, "trace-hook", 9));
}

TEST(TraceHookRule, QuietOutsideTraceNamespaceAndNonHookFunctions) {
  const std::string src =
      "namespace trace {\n"
      "struct T {\n"
      "  void write_file() { names.push_back(1); }\n"  // not on_*: setup/IO path
      "  void on_txn_begin(int cpu) {\n"
      "    if (n >= cap) { ++dropped; ++seq; return; }\n"  // raw stores only
      "    buf[n].cycle = cpu;\n"
      "    ++n; ++seq;\n"
      "  }\n"
      "};\n"
      "}\n"
      "namespace app {\n"
      "struct U { void on_click() { items.push_back(2); } };\n"  // not trace::
      "}\n";
  EXPECT_TRUE(of_rule(scan(src), "trace-hook").empty());
}

// ---- isolation-class ----

TEST(IsolationClassRule, FlagsUnclassifiedMetadataAndCounters) {
  const std::string src =
      "namespace jstd {\n"                                       // 1
      "template <class K>\n"                                     // 2
      "class ListMap {\n"                                        // 3
      " public:\n"                                               // 4
      "  ListMap() : size_(0), head_(nullptr) {}\n"              // 5
      " private:\n"                                              // 6
      "  struct Node { atomos::Shared<K> key; };\n"              // 7  node: exempt
      "  atomos::Shared<long> size_;\n"                          // 8  <- unclassified
      "  atomos::Shared<int*> head_;\n"                          // 9  <- unclassified
      "};\n"                                                     // 10
      "}\n"                                                      // 11
      "namespace tcc {\n"                                        // 12
      "class StatCounter {\n"                                    // 13
      "  explicit StatCounter(long f) : v_(f) {}\n"              // 14
      "  atomos::Shared<long> v_;\n"                             // 15 <- unclassified
      "};\n"                                                     // 16
      "}\n";
  const auto fs = scan(src);
  const auto ic = of_rule(fs, "isolation-class");
  EXPECT_EQ(ic.size(), 3u);
  EXPECT_TRUE(fires_at(fs, "isolation-class", 8));
  EXPECT_TRUE(fires_at(fs, "isolation-class", 9));
  EXPECT_TRUE(fires_at(fs, "isolation-class", 15));
}

TEST(IsolationClassRule, SatisfiedByAnyConstructionSiteNamingAMemoryClass) {
  const std::string src =
      "namespace jstd {\n"
      "class ListMap {\n"
      " public:\n"
      "  ListMap() : size_(0, \"ListMap.size\", sim::kMetaCell) {}\n"
      "  explicit ListMap(long n) : size_(n, nullptr, sim::kMetaCell) {}\n"
      " private:\n"
      "  atomos::Shared<long> size_;\n"
      "};\n"
      "}\n"
      "namespace tcc {\n"
      "class StatCounter {\n"
      "  explicit StatCounter(long f) : v_(f, \"stat\", sim::kCounterCell) {}\n"
      "  atomos::Shared<long> v_;\n"
      "};\n"
      "}\n";
  EXPECT_TRUE(of_rule(scan(src), "isolation-class").empty());
}

TEST(IsolationClassRule, ExemptsNodeTypesOtherNamespacesAndNonSharedMembers) {
  const std::string src =
      "namespace jbb {\n"
      "class Model { atomos::Shared<long> plain_; };\n"  // not jstd/tcc
      "}\n"
      "namespace jstd {\n"
      "struct QueueNode { atomos::Shared<int> item; };\n"   // node type
      "class MapIter { atomos::Shared<int> pos_; };\n"      // iterator
      "class Registry { std::vector<int> rows_; };\n"       // no Shared members
      "}\n"
      "namespace tcc {\n"
      "class TransactionalMap { atomos::Shared<long> gen_; };\n"  // not a counter
      "}\n";
  EXPECT_TRUE(of_rule(scan(src), "isolation-class").empty());
}

// ---- handler-mutation ----

TEST(HandlerMutationRule, FlagsUnregisteredMutationsInAbortAndCommitHandlers) {
  const std::string src =
      "void restore(Bag* bag, long k, long v) {\n"                      // 1
      "  rt.on_top_abort([bag, k, v] {\n"                               // 2
      "    bag->put(k, v);\n"                                           // 3  <- unregistered
      "  });\n"                                                         // 4
      "}\n"                                                             // 5
      "void publish(Bag* bag, long k) {\n"                              // 6
      "  rt.on_top_commit([bag, k] { bag->remove(k); });\n"             // 7  <- unregistered
      "  rt.on_top_abort([] {});\n"                                     // 8
      "}\n";
  const auto fs = scan(src);
  const auto hm = of_rule(fs, "handler-mutation");
  EXPECT_EQ(hm.size(), 2u);
  EXPECT_TRUE(fires_at(fs, "handler-mutation", 3));
  EXPECT_TRUE(fires_at(fs, "handler-mutation", 7));
}

TEST(HandlerMutationRule, AllowsRegisteredMutationsAndNonMutatingHandlers) {
  const std::string src =
      "void restore(Bag* bag, long k, long v) {\n"
      "  rt.on_top_abort([bag, k, v] {\n"
      "    atomos::audit::compensation_run(0, bag);\n"  // site registered
      "    bag->put(k, v);\n"
      "  });\n"
      "}\n"
      "void dispatch(Map* self, int cpu) {\n"
      "  rt.on_top_abort([self, cpu] { self->abort_handler(cpu); });\n"  // dispatch-only
      "}\n"
      "void release(Locks* locks, long k) {\n"
      "  rt.on_top_abort([locks, k] { locks->unlock(k); });\n"  // lock release
      "}\n"
      "void local_use(Bag* bag) {\n"
      "  insert(bag);\n"  // free call, not a method on a collection
      "}\n";
  EXPECT_TRUE(of_rule(scan(src), "handler-mutation").empty());
}

// ---- chop-compensation ----

TEST(ChopCompensationRule, FlagsUncompensatedMutatingNonFinalPiece) {
  const std::string src =
      "void move(Bag* bag, long k, long v) {\n"                    // 1
      "  atomos::chopped()\n"                                      // 2
      "      .piece(\"insert\", [bag, k, v] {\n"                   // 3
      "        bag->put(k, v);\n"                                  // 4  <- no undo
      "      })\n"                                                 // 5
      "      .piece(\"settle\", [bag, k] { bag->remove(k); })\n"   // 6  final: exempt
      "      .run();\n"                                            // 7
      "}\n";
  const auto fs = scan(src);
  const auto cc = of_rule(fs, "chop-compensation");
  EXPECT_EQ(cc.size(), 1u);
  EXPECT_TRUE(fires_at(fs, "chop-compensation", 4));
}

TEST(ChopCompensationRule, AllowsCompensatedRegisteredAndReadOnlyPieces) {
  const std::string src =
      "void compensated(Bag* bag, long k, long v) {\n"
      "  atomos::chopped()\n"
      "      .piece(\"insert\", [bag, k, v] { bag->put(k, v); },\n"
      "             [bag, k] { bag->remove(k); })\n"  // undo lambda present
      "      .piece(\"settle\", [bag] { bag->pop(); })\n"
      "      .run();\n"
      "}\n"
      "void registered(Bag* bag, long k, long v) {\n"
      "  atomos::chopped()\n"
      "      .piece(\"insert\", [bag, k, v] {\n"
      "        atomos::audit::compensation_run(0, bag);\n"  // site in the body
      "        bag->put(k, v);\n"
      "      })\n"
      "      .piece(\"probe\", [bag, k] { (void)bag->get(k); })\n"
      "      .run();\n"
      "}\n"
      "void read_only(Bag* bag, long k) {\n"
      "  atomos::chopped()\n"
      "      .piece(\"probe\", [bag, k] { (void)bag->get(k); })\n"
      "      .piece(\"audit\", [bag, k] { (void)bag->get(k + 1); })\n"
      "      .run();\n"
      "}\n";
  EXPECT_TRUE(of_rule(scan(src), "chop-compensation").empty());
}

TEST(ChopCompensationRule, SuppressionCoversTheMutatingLine) {
  const std::string src =
      "void move(Bag* bag, long k, long v) {\n"
      "  atomos::chopped()\n"
      "      .piece(\"insert\", [bag, k, v] {\n"
      "        // txlint: allow(chop-compensation) - fixture\n"
      "        bag->put(k, v);\n"
      "      })\n"
      "      .piece(\"settle\", [bag, k] { bag->remove(k); })\n"
      "      .run();\n"
      "}\n";
  EXPECT_TRUE(of_rule(scan(src), "chop-compensation").empty());
}

// ---- hot-path-container ----

TEST(HotPathContainerRule, FlagsNodeContainersInHotPathHeaders) {
  const std::string src =
      "namespace sim {\n"                                      // 1
      "class FlatMap {\n"                                      // 2
      "  std::unordered_map<long, long> slots_;\n"             // 3  <- node-based
      "  std::set<long> keys_;\n"                              // 4  <- node-based
      "  std::vector<long> ctrl_;\n"                           // 5  flat: fine
      "};\n"                                                   // 6
      "}\n";
  const auto fs = scan_source("src/sim/flat_map.h", src);
  const auto hp = of_rule(fs, "hot-path-container");
  EXPECT_EQ(hp.size(), 2u);
  EXPECT_TRUE(fires_at(fs, "hot-path-container", 3));
  EXPECT_TRUE(fires_at(fs, "hot-path-container", 4));
}

TEST(HotPathContainerRule, QuietOutsideTheHotPathHeaders) {
  const std::string src =
      "namespace harness {\n"
      "std::unordered_map<long, long> table;\n"  // same tokens, cold path
      "std::set<int> ids;\n"
      "}\n";
  EXPECT_TRUE(of_rule(scan_source("src/harness/driver.h", src),
                      "hot-path-container")
                  .empty());
  EXPECT_TRUE(of_rule(scan(src), "hot-path-container").empty());  // fixture.cpp
}

TEST(HotPathContainerRule, MatchesByBasenameForAllThreeHeaders) {
  const std::string src = "std::unordered_set<int> s;\n";
  for (const char* path : {"src/sim/flat_map.h", "src/tm/reader_dir.h",
                           "src/sim/cpu_mask.h", "cpu_mask.h"}) {
    const auto fs = scan_source(path, src);
    EXPECT_EQ(of_rule(fs, "hot-path-container").size(), 1u) << path;
  }
}

// ---- suppressions and options ----

TEST(Suppressions, LineRegionAndFileForms) {
  const std::string line_form =
      "long f(const atomos::Shared<long>& x) {\n"
      "  // txlint: allow(raw-peek) - fixture\n"
      "  return x.unsafe_peek();\n"  // next line after the comment: suppressed
      "}\n";
  EXPECT_TRUE(scan(line_form).empty());

  const std::string region_form =
      "// txlint: begin-allow(raw-peek)\n"
      "long f(const atomos::Shared<long>& x) { return x.unsafe_peek(); }\n"
      "// txlint: end-allow(raw-peek)\n"
      "long g(const atomos::Shared<long>& x) { return x.unsafe_peek(); }\n";  // outside
  const auto fs = scan(region_form);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 4);

  const std::string file_form =
      "// txlint: allow-file(*)\n"
      "long f(const atomos::Shared<long>& x) { return x.unsafe_peek(); }\n"
      "void g() { try {} catch (...) {} }\n";
  EXPECT_TRUE(scan(file_form).empty());
}

TEST(Options, OnlyRulesFilterRestrictsScan) {
  const std::string src =
      "long f(const atomos::Shared<long>& x) {\n"
      "  try { g(); } catch (...) { log(); }\n"
      "  return x.unsafe_peek();\n"
      "}\n";
  Options only;
  only.only_rules = {"catch-swallow"};
  const auto fs = scan(src, only);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "catch-swallow");
}

// Comments and string literals never trigger rules.
TEST(Cleaning, CommentsAndStringsAreInert) {
  const std::string src =
      "void f() {\n"
      "  // x.unsafe_peek() in a comment\n"
      "  const char* s = \"catch (...) { } x.unsafe_peek()\";\n"
      "  (void)s;\n"
      "}\n";
  EXPECT_TRUE(scan(src).empty());
}

}  // namespace
}  // namespace txlint
