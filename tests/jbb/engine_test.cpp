// SPECjbb2000-style engine tests: every flavour must keep the TPC-C
// consistency invariants under concurrent high-contention execution on one
// warehouse; the Atomos flavours additionally differ (by design) in the
// amount of lost work they exhibit.
#include "jbb/engine.h"

#include <gtest/gtest.h>

#include <string>

namespace jbb {
namespace {

sim::Config cfg_for(Flavor f, int cpus) {
  sim::Config c;
  c.num_cpus = cpus;
  c.mode = (f == Flavor::kJava) ? sim::Mode::kLock : sim::Mode::kTcc;
  return c;
}

/// Runs `ops_per_cpu` mixed operations on each of `cpus` virtual CPUs, all
/// hammering the single warehouse, then checks the consistency invariants.
OpCounts run_jbb(Flavor flavor, int cpus, int ops_per_cpu, std::string* why,
                 bool* consistent, std::uint64_t* violations = nullptr) {
  JbbConfig jc;
  jc.flavor = flavor;
  jc.districts = 4;  // fewer districts than CPUs: guaranteed contention
  jc.items = 64;
  jc.customers_per_district = 8;
  sim::Engine eng(cfg_for(flavor, cpus));
  atomos::Runtime rt(eng);
  Engine jbb(jc);
  OpCounts total;
  std::vector<OpCounts> per_cpu(static_cast<std::size_t>(cpus));
  for (int c = 0; c < cpus; ++c) {
    eng.spawn([&, c] {
      std::uint64_t rng = 7777 + static_cast<std::uint64_t>(c) * 131;
      for (int i = 0; i < ops_per_cpu; ++i) {
        const int d = static_cast<int>((rng >> 40) % static_cast<std::uint64_t>(jc.districts));
        jbb.run_mixed_op(d, rng, per_cpu[static_cast<std::size_t>(c)]);
      }
    });
  }
  eng.run();
  for (const auto& pc : per_cpu) {
    total.new_order += pc.new_order;
    total.payment += pc.payment;
    total.order_status += pc.order_status;
    total.delivery += pc.delivery;
    total.stock_level += pc.stock_level;
  }
  *consistent = jbb.check_consistency(why);
  if (violations != nullptr) *violations = eng.stats().total(&sim::CpuStats::violations);
  // All committed orders = seeded + successful NewOrders.
  EXPECT_EQ(jbb.committed_order_count(),
            jc.districts * jc.initial_orders_per_district + total.new_order);
  return total;
}

class JbbFlavorTest : public ::testing::TestWithParam<Flavor> {};

TEST_P(JbbFlavorTest, ConsistentUnderContention) {
  std::string why;
  bool ok = false;
  OpCounts counts = run_jbb(GetParam(), 8, 15, &why, &ok);
  EXPECT_TRUE(ok) << why;
  EXPECT_EQ(counts.total(), 8 * 15);
  EXPECT_GT(counts.new_order, 0);
  EXPECT_GT(counts.payment, 0);
}

INSTANTIATE_TEST_SUITE_P(AllFlavors, JbbFlavorTest,
                         ::testing::Values(Flavor::kJava, Flavor::kAtomosBaseline,
                                           Flavor::kAtomosOpen,
                                           Flavor::kAtomosTransactional,
                                           Flavor::kAtomosChopped),
                         [](const ::testing::TestParamInfo<Flavor>& info) {
                           switch (info.param) {
                             case Flavor::kJava: return "Java";
                             case Flavor::kAtomosBaseline: return "AtomosBaseline";
                             case Flavor::kAtomosOpen: return "AtomosOpen";
                             case Flavor::kAtomosTransactional: return "AtomosTransactional";
                             case Flavor::kAtomosChopped: return "AtomosChopped";
                           }
                           return "Unknown";
                         });

TEST(JbbTest, SingleCpuDeterministic) {
  auto run_once = [] {
    std::string why;
    bool ok = false;
    JbbConfig jc;
    jc.flavor = Flavor::kAtomosTransactional;
    jc.districts = 2;
    sim::Engine eng(cfg_for(jc.flavor, 1));
    atomos::Runtime rt(eng);
    Engine jbb(jc);
    OpCounts counts;
    eng.spawn([&] {
      std::uint64_t rng = 9;
      for (int i = 0; i < 30; ++i) jbb.run_mixed_op(i % 2, rng, counts);
    });
    eng.run();
    ok = jbb.check_consistency(&why);
    EXPECT_TRUE(ok) << why;
    // Logical outcomes are deterministic; cycle counts may differ slightly
    // across runs in one process because real heap addresses feed the cache
    // model (allocator layout varies between runs).
    return std::pair(eng.elapsed_cycles(), jbb.committed_order_count());
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.second, b.second);
  EXPECT_NEAR(static_cast<double>(a.first), static_cast<double>(b.first),
              0.05 * static_cast<double>(a.first));
}

TEST(JbbTest, TransactionalFlavorLosesLessWorkThanBaseline) {
  // The Figure 4 mechanism in miniature: at equal op counts the Baseline
  // flavour suffers more parent violations than the Transactional flavour.
  std::string why;
  bool ok = false;
  std::uint64_t base_viol = 0, tx_viol = 0;
  run_jbb(Flavor::kAtomosBaseline, 8, 15, &why, &ok, &base_viol);
  EXPECT_TRUE(ok) << why;
  run_jbb(Flavor::kAtomosTransactional, 8, 15, &why, &ok, &tx_viol);
  EXPECT_TRUE(ok) << why;
  EXPECT_GT(base_viol, tx_viol);
}

}  // namespace
}  // namespace jbb
