// Figure 4 shape regression: with arena-segregated virtual addressing
// (sim/vaddr.h) the Atomos Open flavour must beat Atomos Baseline on the
// single-warehouse SPECjbb workload — open-nested counters remove the
// global-statistic and UID conflicts from every parent's read/write set,
// which is the entire point of the paper's Open step.  Before the arena
// split, a construction-adjacency accident put the historyTable dispatch
// pointer on the same virtual line as the warehouse counters and Open
// *collapsed* below Baseline (0.00x at 32 CPUs); this test pins the
// recovery at the bench's 8-CPU configuration so a layout regression can't
// silently reintroduce the storm.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "jbb/engine.h"
#include "tm/runtime.h"

namespace jbb {
namespace {

struct RunOutcome {
  std::uint64_t cycles = 0;
  long ops = 0;
  long txn_count = 0;
  long seeded = 0;
};

/// Mirrors bench/fig4_specjbb.cpp's sweep-point body (same JbbConfig, same
/// seed schedule, salt 0) at a reduced op count.
RunOutcome run_fig4_point(Flavor flavor, int cpus, int total_ops) {
  const sim::Mode mode = flavor == Flavor::kJava ? sim::Mode::kLock : sim::Mode::kTcc;
  JbbConfig jc;
  jc.flavor = flavor;
  jc.districts = 10;
  jc.items = 2000;
  jc.customers_per_district = 60;
  jc.think_cycles = 1200;
  sim::Config cfg;
  cfg.mode = mode;
  cfg.num_cpus = cpus;
  sim::Engine eng(cfg);
  atomos::Runtime rt(eng);
  Engine engine(jc);
  RunOutcome out;
  out.seeded = jc.districts * jc.initial_orders_per_district;
  const int per_cpu = total_ops / cpus;
  std::vector<OpCounts> counts(static_cast<std::size_t>(cpus));
  for (int c = 0; c < cpus; ++c) {
    eng.spawn([&, c] {
      std::uint64_t rng = 4242 + static_cast<std::uint64_t>(c) * 6151;
      for (int i = 0; i < per_cpu; ++i) {
        const int d = static_cast<int>((rng >> 40) % 10);
        engine.run_mixed_op(d, rng, counts[static_cast<std::size_t>(c)]);
      }
    });
  }
  eng.run();
  std::string why;
  EXPECT_TRUE(engine.check_consistency(&why)) << why;
  for (const auto& pc : counts) out.ops += pc.total();
  out.cycles = eng.elapsed_cycles();
  out.txn_count = engine.warehouse().txn_count.unsafe_peek();
  return out;
}

TEST(Fig4ShapeTest, OpenBeatsBaselineAt8Cpus) {
  // Equal op counts, so lower cycles == higher normalized throughput.
  const RunOutcome baseline = run_fig4_point(Flavor::kAtomosBaseline, 8, 800);
  const RunOutcome open = run_fig4_point(Flavor::kAtomosOpen, 8, 800);
  EXPECT_EQ(baseline.ops, 800);
  EXPECT_EQ(open.ops, 800);
  EXPECT_LT(open.cycles, baseline.cycles)
      << "Atomos Open must beat Atomos Baseline (open nesting removes the "
         "warehouse statistic/UID conflicts); open=" << open.cycles
      << " baseline=" << baseline.cycles;
}

TEST(Fig4ShapeTest, WarehouseTxnCountIsExactInEveryFlavor) {
  // The per-warehouse transaction statistic must equal seeded NewOrders +
  // committed operations in every flavour: plain under locks (Java), rolled
  // back with the parent (Baseline), and abort-compensated when open-nested
  // (Open/Transactional) — the CompensatedCounter contract end to end.
  for (Flavor f : {Flavor::kJava, Flavor::kAtomosBaseline, Flavor::kAtomosOpen,
                   Flavor::kAtomosTransactional}) {
    const RunOutcome r = run_fig4_point(f, 8, 160);
    EXPECT_EQ(r.txn_count, r.seeded + r.ops)
        << "flavor=" << static_cast<int>(f);
  }
}

}  // namespace
}  // namespace jbb
