// Executable reproduction of paper Tables 4/5: SortedMap range and endpoint
// conflict semantics, as enforced by TransactionalSortedMap's range lockers
// and first/last lockers — plus functional tests of the sorted wrapper.
#include <gtest/gtest.h>

#include "core/txsortedmap.h"
#include "jstd/treemap.h"
#include "tests/core/schedule_helper.h"

namespace tcc {
namespace {

using testing::run_schedule;
using testing::tcc_cfg;

struct Fixture {
  sim::Engine eng{tcc_cfg(2)};
  atomos::Runtime rt{eng};
  TransactionalSortedMap<long, long> map{std::make_unique<jstd::TreeMap<long, long>>()};

  void preload_evens(long n) {
    for (long k = 0; k < n; ++k) map.put(k * 2, k * 2);  // keys 0,2,4,...
  }
};

// ---- functional behaviour first ----

TEST(TxSortedMap, SortedOpsInsideTransaction) {
  Fixture f;
  f.preload_evens(10);  // 0..18 even
  f.eng.spawn([&] {
    atomos::atomically([&] {
      EXPECT_EQ(f.map.first_key(), 0);
      EXPECT_EQ(f.map.last_key(), 18);
      f.map.put(-5, 1);   // new minimum (buffered)
      f.map.put(99, 1);   // new maximum (buffered)
      f.map.remove(0);
      EXPECT_EQ(f.map.first_key(), -5);  // merged view sees the buffer
      EXPECT_EQ(f.map.last_key(), 99);
      std::vector<long> keys;
      for (auto it = f.map.range_iterator(2L, 9L); it->has_next();)
        keys.push_back(it->next().first);
      EXPECT_EQ(keys, (std::vector<long>{2, 4, 6, 8}));
    });
  });
  f.eng.run();
  EXPECT_EQ(f.map.inner().size(), 11);  // 10 - 1 + 2
  EXPECT_EQ(f.map.range_lock_count(), 0u);
  EXPECT_EQ(f.map.first_locker_count(), 0u);
  EXPECT_EQ(f.map.last_locker_count(), 0u);
}

TEST(TxSortedMap, MergedOrderedIterationWithBuffer) {
  Fixture f;
  f.preload_evens(5);  // 0 2 4 6 8
  f.eng.spawn([&] {
    atomos::atomically([&] {
      f.map.put(3, 30);   // buffered insert mid-range
      f.map.put(4, 40);   // buffered overwrite
      f.map.remove(6);    // buffered remove
      std::vector<std::pair<long, long>> seen;
      for (auto it = f.map.iterator(); it->has_next();) seen.push_back(it->next());
      std::vector<std::pair<long, long>> expect{{0, 0}, {2, 2}, {3, 30}, {4, 40}, {8, 8}};
      EXPECT_EQ(seen, expect);
    });
  });
  f.eng.run();
}

TEST(TxSortedMap, AbortRollsBackEverything) {
  Fixture f;
  f.preload_evens(3);
  f.eng.spawn([&] {
    try {
      atomos::atomically([&] {
        f.map.put(1, 1);
        (void)f.map.first_key();
        auto it = f.map.iterator();
        while (it->has_next()) it->next();
        throw std::runtime_error("abort");
      });
    } catch (const std::runtime_error&) {
    }
  });
  f.eng.run();
  EXPECT_EQ(f.map.inner().size(), 3);
  EXPECT_EQ(f.map.inner().get(1), std::nullopt);
  EXPECT_EQ(f.map.range_lock_count(), 0u);
  EXPECT_EQ(f.map.first_locker_count(), 0u);
  EXPECT_EQ(f.map.last_locker_count(), 0u);
}

// ---- Table 4/5 conflict cells ----

TEST(Table4SortedMap, RangeIterationVsPutInsideRange_Conflicts) {
  // "put adds key in iterated range" row.
  Fixture f;
  f.preload_evens(20);
  auto r = run_schedule(
      f.eng,
      [&] {
        for (auto it = f.map.range_iterator(10L, 20L); it->has_next();) it->next();
      },
      [&] { f.map.put(13, 1); },  // odd key INSIDE the iterated range
      /*writer_delay=*/30000, /*reader_tail=*/60000);
  EXPECT_TRUE(r.conflicted());
}

TEST(Table4SortedMap, RangeIterationVsPutOutsideRange_Commutes) {
  Fixture f;
  f.preload_evens(20);
  auto r = run_schedule(
      f.eng,
      [&] {
        for (auto it = f.map.range_iterator(10L, 20L); it->has_next();) it->next();
      },
      [&] { f.map.put(25, 1); },  // outside [10,20)
      /*writer_delay=*/30000, /*reader_tail=*/60000);
  EXPECT_FALSE(r.conflicted());
}

TEST(Table4SortedMap, RangeIterationVsRemoveInsideRange_Conflicts) {
  Fixture f;
  f.preload_evens(20);
  auto r = run_schedule(
      f.eng,
      [&] {
        for (auto it = f.map.range_iterator(10L, 20L); it->has_next();) it->next();
      },
      [&] { f.map.remove(12); },
      /*writer_delay=*/30000, /*reader_tail=*/60000);
  EXPECT_TRUE(r.conflicted());
}

TEST(Table4SortedMap, FirstKeyVsPutNewMinimum_Conflicts) {
  Fixture f;
  f.preload_evens(5);
  auto r = run_schedule(
      f.eng, [&] { (void)f.map.first_key(); },
      [&] { f.map.put(-10, 1); });
  EXPECT_TRUE(r.conflicted());
}

TEST(Table4SortedMap, FirstKeyVsPutMiddleKey_Commutes) {
  Fixture f;
  f.preload_evens(5);
  auto r = run_schedule(
      f.eng, [&] { EXPECT_EQ(f.map.first_key(), 0); },
      [&] { f.map.put(5, 1); });
  EXPECT_FALSE(r.conflicted());
}

TEST(Table4SortedMap, FirstKeyVsRemoveFirst_Conflicts) {
  Fixture f;
  f.preload_evens(5);
  auto r = run_schedule(
      f.eng, [&] { (void)f.map.first_key(); },
      [&] { f.map.remove(0); });
  EXPECT_TRUE(r.conflicted());
}

TEST(Table4SortedMap, LastKeyVsPutNewMaximum_Conflicts) {
  Fixture f;
  f.preload_evens(5);
  auto r = run_schedule(
      f.eng, [&] { (void)f.map.last_key(); },
      [&] { f.map.put(100, 1); });
  EXPECT_TRUE(r.conflicted());
}

TEST(Table4SortedMap, LastKeyVsRemoveLast_Conflicts) {
  Fixture f;
  f.preload_evens(5);
  auto r = run_schedule(
      f.eng, [&] { (void)f.map.last_key(); },
      [&] { f.map.remove(8); });
  EXPECT_TRUE(r.conflicted());
}

TEST(Table4SortedMap, LastKeyVsRemoveMiddle_Commutes) {
  Fixture f;
  f.preload_evens(5);
  auto r = run_schedule(
      f.eng, [&] { EXPECT_EQ(f.map.last_key(), 8); },
      [&] { f.map.remove(4); });
  EXPECT_FALSE(r.conflicted());
}

TEST(Table4SortedMap, FullIterationExhaustionVsPutNewLast_Conflicts) {
  // "hasNext is false and put adds new lastKey" row: exhausting an
  // unbounded iterator observes the last key.
  Fixture f;
  f.preload_evens(8);
  auto r = run_schedule(
      f.eng,
      [&] {
        for (auto it = f.map.iterator(); it->has_next();) it->next();
      },
      [&] { f.map.put(1000, 1); },
      /*writer_delay=*/30000, /*reader_tail=*/60000);
  EXPECT_TRUE(r.conflicted());
}

TEST(Table4SortedMap, BoundedIterationVsPutBeyondBound_Commutes) {
  // A bounded subMap iterator does NOT observe the last key: inserts past
  // its bound are invisible to it.
  Fixture f;
  f.preload_evens(8);
  auto r = run_schedule(
      f.eng,
      [&] {
        for (auto it = f.map.range_iterator(std::nullopt, 10L); it->has_next();) it->next();
      },
      [&] { f.map.put(1000, 1); },
      /*writer_delay=*/30000, /*reader_tail=*/60000);
  EXPECT_FALSE(r.conflicted());
}

TEST(Table4SortedMap, DisjointRangeIterationsCommute) {
  // Two long transactions iterating DISJOINT ranges while a third inserts
  // into neither: nobody conflicts — the paper's TestSortedMap scenario.
  Fixture f;
  f.preload_evens(30);
  sim::Engine& eng = f.eng;
  for (int c = 0; c < 2; ++c) {
    eng.spawn([&, c] {
      atomos::atomically([&] {
        const long lo = c == 0 ? 0 : 40;
        for (auto it = f.map.range_iterator(lo, lo + 10); it->has_next();) it->next();
        f.map.put(c == 0 ? 1L : 41L, 7);  // insert inside OWN range
        atomos::work(20000);
      });
    });
  }
  eng.run();
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::violations), 0u);
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::semantic_violations), 0u);
}

}  // namespace
}  // namespace tcc
