// Scheduler-structure equivalence goldens.
//
// The engine's scheduling decision was rewritten from an O(N) linear scan
// over every virtual CPU to an indexed runnable heap with a direct
// fiber-to-fiber dispatch fast path (DESIGN.md §12).  These tables pin the
// EXACT per-figure simulated-cycle totals at every CPU width the original
// scan shipped with (1..32) — the rows were emitted by the PRE-CHANGE
// engine, so any drift means the indexed scheduler picked a different fiber
// or handed out a different run limit somewhere.
//
// This deliberately overlaps golden_cycles_test at 1..8 CPUs and extends the
// pin to 16 and 32, where scheduling-order mistakes (tie-breaks, stale heap
// entries, run-limit snapshots) are far more likely to surface.
//
// To re-pin after an intentional cost-model change, run with
// TCC_PRINT_GOLDEN=1 and paste the emitted rows.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/testmap_common.h"

namespace {

using namespace bench;

struct GoldenRow {
  const char* series;
  int cpus;
  std::uint64_t cycles;
};

TestMapParams small_params() {
  TestMapParams p;
  p.total_ops = 640;
  p.think_cycles = 1000;
  p.seed = 12345;
  return p;
}

void check_goldens(const char* tag, const std::vector<harness::Series>& series,
                   const GoldenRow* golden, std::size_t n_golden) {
  const bool print = std::getenv("TCC_PRINT_GOLDEN") != nullptr;
  const std::vector<int> cpu_counts = {1, 2, 4, 8, 16, 32};
  std::size_t idx = 0;
  for (const harness::Series& s : series) {
    for (int cpus : cpu_counts) {
      harness::RunResult r;
      r.series = s.name;
      r.cpus = cpus;
      s.run(cpus, /*seed_salt=*/0, r);
      if (print) {
        std::printf("    {\"%s\", %d, %lluULL},  // %s\n", s.name.c_str(), cpus,
                    static_cast<unsigned long long>(r.cycles), tag);
        continue;
      }
      ASSERT_LT(idx, n_golden) << tag << ": golden table too short";
      SCOPED_TRACE(std::string(tag) + " series=" + s.name + " cpus=" + std::to_string(cpus));
      EXPECT_EQ(golden[idx].series, s.name);
      EXPECT_EQ(golden[idx].cpus, cpus);
      EXPECT_EQ(golden[idx].cycles, r.cycles);
      ++idx;
    }
  }
  if (!print) {
    EXPECT_EQ(idx, n_golden) << tag << ": golden table too long";
  }
}

TEST(SchedEquivCycles, Fig1TestMapAllWidths) {
  TestMapParams p = small_params();
  auto make_hash = [&p] {
    return std::make_unique<jstd::HashMap<long, long>>(static_cast<std::size_t>(p.key_space) * 2);
  };
  auto make_wrapped = [&p, make_hash]() -> std::unique_ptr<jstd::Map<long, long>> {
    return std::make_unique<tcc::TransactionalMap<long, long>>(make_hash());
  };
  const std::vector<harness::Series> series = {
      java_series("Java HashMap", p, make_hash),
      atomos_series("Atomos HashMap", p, make_hash),
      atomos_series("Atomos TransactionalMap", p, make_wrapped),
  };
  static const GoldenRow kFig1Golden[] = {
      {"Java HashMap", 1, 647182ULL},
      {"Java HashMap", 2, 333753ULL},
      {"Java HashMap", 4, 168568ULL},
      {"Java HashMap", 8, 85720ULL},
      {"Java HashMap", 16, 49909ULL},
      {"Java HashMap", 32, 52336ULL},
      {"Atomos HashMap", 1, 647607ULL},
      {"Atomos HashMap", 2, 329155ULL},
      {"Atomos HashMap", 4, 170645ULL},
      {"Atomos HashMap", 8, 89292ULL},
      {"Atomos HashMap", 16, 61662ULL},
      {"Atomos HashMap", 32, 63785ULL},
      {"Atomos TransactionalMap", 1, 666651ULL},
      {"Atomos TransactionalMap", 2, 335469ULL},
      {"Atomos TransactionalMap", 4, 169005ULL},
      {"Atomos TransactionalMap", 8, 85448ULL},
      {"Atomos TransactionalMap", 16, 43279ULL},
      {"Atomos TransactionalMap", 32, 22585ULL},
  };
  check_goldens("fig1", series, kFig1Golden, std::size(kFig1Golden));
}

TEST(SchedEquivCycles, Fig2TestSortedMapAllWidths) {
  TestMapParams p = small_params();
  auto make_tree = [] { return std::make_unique<jstd::TreeMap<long, long>>(); };
  auto make_wrapped = [make_tree]() -> std::unique_ptr<jstd::Map<long, long>> {
    return std::make_unique<tcc::TransactionalSortedMap<long, long>>(make_tree());
  };
  const std::vector<harness::Series> series = {
      java_series("Java TreeMap", p, make_tree),
      atomos_series("Atomos TreeMap", p, make_tree),
      atomos_series("Atomos TransactionalSortedMap", p, make_wrapped),
  };
  static const GoldenRow kFig2Golden[] = {
      {"Java TreeMap", 1, 657765ULL},
      {"Java TreeMap", 2, 341828ULL},
      {"Java TreeMap", 4, 174911ULL},
      {"Java TreeMap", 8, 96235ULL},
      {"Java TreeMap", 16, 89017ULL},
      {"Java TreeMap", 32, 94071ULL},
      {"Atomos TreeMap", 1, 658742ULL},
      {"Atomos TreeMap", 2, 352480ULL},
      {"Atomos TreeMap", 4, 195291ULL},
      {"Atomos TreeMap", 8, 109805ULL},
      {"Atomos TreeMap", 16, 77188ULL},
      {"Atomos TreeMap", 32, 74319ULL},
      {"Atomos TransactionalSortedMap", 1, 736760ULL},
      {"Atomos TransactionalSortedMap", 2, 378132ULL},
      {"Atomos TransactionalSortedMap", 4, 197208ULL},
      {"Atomos TransactionalSortedMap", 8, 103397ULL},
      {"Atomos TransactionalSortedMap", 16, 64922ULL},
      {"Atomos TransactionalSortedMap", 32, 51847ULL},
  };
  check_goldens("fig2", series, kFig2Golden, std::size(kFig2Golden));
}

}  // namespace
