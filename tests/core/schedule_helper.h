// Helper for directed two-transaction conflict schedules, used by the
// Table 1/2 (Map), Table 4/5 (SortedMap) and Table 7/8 (Channel) tests.
//
// Runs READER on CPU0 as a long transaction (observe, then compute) and
// WRITER on CPU1 committing in the middle of the reader's window, then
// reports whether the reader was doomed.  Each paper-table cell asserts
// conflict() or commute() for one (read-op, write-op) pair.
#pragma once

#include <functional>

#include "tm/runtime.h"

namespace tcc::testing {

struct ScheduleResult {
  int reader_attempts = 0;
  std::uint64_t reader_semantic_violations = 0;
  std::uint64_t reader_violations = 0;  // memory-level
  bool conflicted() const {
    return reader_semantic_violations + reader_violations > 0;
  }
};

/// `reader` runs inside CPU0's transaction each attempt; `writer` runs
/// inside CPU1's transaction once, committing while the reader computes.
inline ScheduleResult run_schedule(sim::Engine& eng,
                                   const std::function<void()>& reader,
                                   const std::function<void()>& writer,
                                   std::uint64_t writer_delay = 1000,
                                   std::uint64_t reader_tail = 8000) {
  ScheduleResult r;
  eng.spawn([&] {
    atomos::atomically([&] {
      r.reader_attempts++;
      reader();
      atomos::work(reader_tail);  // long tail: the writer commits inside it
    });
  });
  eng.spawn([&] {
    atomos::work(writer_delay);  // land mid-reader-tail
    atomos::atomically([&] { writer(); });
  });
  eng.run();
  r.reader_semantic_violations = eng.stats().cpu(0).semantic_violations;
  r.reader_violations = eng.stats().cpu(0).violations;
  return r;
}

inline sim::Config tcc_cfg(int cpus) {
  sim::Config c;
  c.num_cpus = cpus;
  c.mode = sim::Mode::kTcc;
  return c;
}

}  // namespace tcc::testing
