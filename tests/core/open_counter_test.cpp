// Open-nested counters and UID generation: reduced isolation removes parent
// conflicts; compensation (when requested) keeps committed totals exact.
#include "core/open_counter.h"

#include <gtest/gtest.h>

#include <set>

namespace tcc {
namespace {

sim::Config tcc_cfg(int cpus) {
  sim::Config c;
  c.num_cpus = cpus;
  c.mode = sim::Mode::kTcc;
  return c;
}

TEST(OpenCounterTest, ConcurrentIncrementsDoNotViolateParents) {
  // The SPECjbb District.nextOrder pattern: long transactions bump a shared
  // counter; open nesting keeps the parents conflict-free.
  constexpr int kCpus = 8;
  sim::Engine eng(tcc_cfg(kCpus));
  atomos::Runtime rt(eng);
  OpenCounter counter(0, "counter");
  for (int c = 0; c < kCpus; ++c) {
    eng.spawn([&] {
      for (int i = 0; i < 10; ++i) {
        atomos::atomically([&] {
          counter.add(1);
          atomos::work(500);  // long transaction around the counter bump
        });
      }
    });
  }
  eng.run();
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::violations), 0u);
  EXPECT_EQ(counter.unsafe_peek(), 80);
}

TEST(OpenCounterTest, PlainSharedCounterWouldViolate) {
  // Contrast: the same workload on a raw Shared<long> inside the parent
  // serializes through violations — demonstrating what open nesting buys.
  constexpr int kCpus = 8;
  sim::Engine eng(tcc_cfg(kCpus));
  atomos::Runtime rt(eng);
  atomos::Shared<long> counter(0);
  for (int c = 0; c < kCpus; ++c) {
    eng.spawn([&] {
      for (int i = 0; i < 10; ++i) {
        atomos::atomically([&] {
          counter.set(counter.get() + 1);
          atomos::work(500);
        });
      }
    });
  }
  eng.run();
  EXPECT_GT(eng.stats().total(&sim::CpuStats::violations), 0u);
  EXPECT_EQ(counter.unsafe_peek(), 80);  // still atomic, just slower
}

TEST(OpenCounterTest, OpenCounterCountsAbortedAttempts) {
  // No compensation: an aborted parent leaves its bump behind.
  sim::Engine eng(tcc_cfg(1));
  atomos::Runtime rt(eng);
  OpenCounter counter;
  eng.spawn([&] {
    try {
      atomos::atomically([&] {
        counter.add(1);
        throw std::runtime_error("abort");
      });
    } catch (const std::runtime_error&) {
    }
  });
  eng.run();
  EXPECT_EQ(counter.unsafe_peek(), 1);  // the bump survived the abort
}

TEST(OpenCounterTest, CompensatedCounterIsExact) {
  sim::Engine eng(tcc_cfg(1));
  atomos::Runtime rt(eng);
  CompensatedCounter counter;
  eng.spawn([&] {
    try {
      atomos::atomically([&] {
        counter.add(5);
        throw std::runtime_error("abort");
      });
    } catch (const std::runtime_error&) {
    }
    atomos::atomically([&] { counter.add(3); });
  });
  eng.run();
  EXPECT_EQ(counter.unsafe_peek(), 3);  // abort compensated, commit kept
}

TEST(OpenCounterTest, CompensatedCounterExactUnderContention) {
  constexpr int kCpus = 6;
  sim::Engine eng(tcc_cfg(kCpus));
  atomos::Runtime rt(eng);
  CompensatedCounter counter;
  atomos::Shared<long> hot(0);  // forces violations in the parents
  for (int c = 0; c < kCpus; ++c) {
    eng.spawn([&] {
      for (int i = 0; i < 10; ++i) {
        atomos::atomically([&] {
          counter.add(1);
          hot.set(hot.get() + 1);  // contended: parents will retry
          atomos::work(300);
        });
      }
    });
  }
  eng.run();
  EXPECT_GT(eng.stats().total(&sim::CpuStats::violations), 0u);
  EXPECT_EQ(counter.unsafe_peek(), 60);  // exact despite retries
}

TEST(OpenCounterTest, UidGeneratorUniqueAndMonotonicWithHoles) {
  constexpr int kCpus = 6;
  sim::Engine eng(tcc_cfg(kCpus));
  atomos::Runtime rt(eng);
  UidGenerator uids(1);
  atomos::Shared<long> hot(0);
  std::vector<std::vector<long>> per_cpu(kCpus);
  for (int c = 0; c < kCpus; ++c) {
    eng.spawn([&, c] {
      for (int i = 0; i < 10; ++i) {
        atomos::atomically([&] {
          const long id = uids.next();
          hot.set(hot.get() + 1);
          atomos::work(200);
          // Only record on commit (the handler runs iff we commit).  The
          // no-op abort handler pairs it for the TXCC_CHECKED auditor: this
          // commit handler observes, it does not publish open-nested state.
          atomos::Runtime::current().on_top_commit(
              [&per_cpu, c, id] { per_cpu[static_cast<std::size_t>(c)].push_back(id); });
          atomos::Runtime::current().on_top_abort([] {});
        });
      }
    });
  }
  eng.run();
  std::set<long> all;
  for (const auto& v : per_cpu) {
    // Monotonic per CPU (each next() is later in its thread's order).
    for (std::size_t i = 1; i < v.size(); ++i) EXPECT_LT(v[i - 1], v[i]);
    for (long id : v) EXPECT_TRUE(all.insert(id).second) << "duplicate id " << id;
  }
  EXPECT_EQ(all.size(), 60u);
  // Holes allowed: the next id is at least 61, more if parents retried.
  EXPECT_GE(uids.unsafe_peek_next(), 61);
}

}  // namespace
}  // namespace tcc
