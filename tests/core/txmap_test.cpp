// tcc::TransactionalMap functional tests: drop-in Map behaviour inside
// transactions, store-buffer read-your-writes, isolation until commit,
// abort compensation, lock lifecycle, and the merged iterator.
#include "core/txmap.h"

#include <gtest/gtest.h>

#include <map>

#include "jstd/hashmap.h"

namespace tcc {
namespace {

sim::Config tcc_cfg(int cpus) {
  sim::Config c;
  c.num_cpus = cpus;
  c.mode = sim::Mode::kTcc;
  return c;
}

std::unique_ptr<TransactionalMap<long, long>> make_map(std::size_t buckets = 256) {
  return std::make_unique<TransactionalMap<long, long>>(
      std::make_unique<jstd::HashMap<long, long>>(buckets));
}

TEST(TxMapTest, BasicOpsInsideOneTransaction) {
  sim::Engine eng(tcc_cfg(1));
  atomos::Runtime rt(eng);
  auto m = make_map();
  eng.spawn([&] {
    atomos::atomically([&] {
      EXPECT_EQ(m->size(), 0);
      EXPECT_TRUE(m->is_empty());
      EXPECT_EQ(m->put(1, 10), std::nullopt);
      EXPECT_EQ(m->get(1), 10);          // read-your-writes via store buffer
      EXPECT_EQ(m->put(1, 11), 10);      // old value from the buffer
      EXPECT_EQ(m->size(), 1);           // underlying + delta
      EXPECT_FALSE(m->is_empty());
      EXPECT_EQ(m->remove(1), 11);
      EXPECT_EQ(m->get(1), std::nullopt);
      EXPECT_EQ(m->size(), 0);
      m->put(2, 20);
    });
    // After commit the effects are in the underlying map.
    EXPECT_EQ(m->inner().size(), 1);
  });
  eng.run();
  EXPECT_EQ(m->inner().get(2), 20);
  EXPECT_EQ(m->locked_key_count(), 0u);  // all locks released
  EXPECT_EQ(m->size_locker_count(), 0u);
}

TEST(TxMapTest, WritesInvisibleUntilCommitThenApplied) {
  sim::Engine eng(tcc_cfg(2));
  atomos::Runtime rt(eng);
  auto m = make_map();
  std::optional<long> observed_mid = 99;
  eng.spawn([&] {
    atomos::atomically([&] {
      m->put(5, 50);
      atomos::work(4000);  // hold the transaction open
    });
  });
  eng.spawn([&] {
    atomos::work(500);
    observed_mid = atomos::atomically([&] { return m->get(5); });
  });
  eng.run();
  EXPECT_EQ(observed_mid, std::nullopt);  // isolation: buffered put invisible
  EXPECT_EQ(m->inner().get(5), 50);       // committed afterwards
}

TEST(TxMapTest, AbortCompensatesLocksAndBuffers) {
  sim::Engine eng(tcc_cfg(1));
  atomos::Runtime rt(eng);
  auto m = make_map();
  eng.spawn([&] {
    atomos::atomically([&] { m->put(7, 70); });
    try {
      atomos::atomically([&] {
        m->put(8, 80);
        EXPECT_GT(m->locked_key_count(), 0u);
        throw std::runtime_error("user abort");
      });
    } catch (const std::runtime_error&) {
    }
  });
  eng.run();
  EXPECT_EQ(m->inner().get(8), std::nullopt);  // buffered write discarded
  EXPECT_EQ(m->inner().get(7), 70);
  EXPECT_EQ(m->locked_key_count(), 0u);  // abort handler released the locks
}

TEST(TxMapTest, SingleOpsOutsideTransactionAreAtomic) {
  sim::Engine eng(tcc_cfg(2));
  atomos::Runtime rt(eng);
  auto m = make_map();
  for (int c = 0; c < 2; ++c) {
    eng.spawn([&, c] {
      for (long i = 0; i < 20; ++i) m->put(c * 100 + i, i);  // no explicit txn
    });
  }
  eng.run();
  EXPECT_EQ(m->inner().size(), 40);
  EXPECT_EQ(m->locked_key_count(), 0u);
}

TEST(TxMapTest, IteratorMergesBufferAndUnderlying) {
  sim::Engine eng(tcc_cfg(1));
  atomos::Runtime rt(eng);
  auto m = make_map();
  for (long k = 0; k < 10; ++k) m->put(k, k);  // setup, untimed
  std::map<long, long> seen;
  eng.spawn([&] {
    atomos::atomically([&] {
      m->put(3, 333);    // overwrite
      m->remove(4);      // delete
      m->put(100, 100);  // brand new key
      for (auto it = m->iterator(); it->has_next();) {
        auto [k, v] = it->next();
        EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate " << k;
      }
    });
  });
  eng.run();
  EXPECT_EQ(seen.size(), 10u);  // 10 - removed + new
  EXPECT_EQ(seen.at(3), 333);
  EXPECT_EQ(seen.count(4), 0u);
  EXPECT_EQ(seen.at(100), 100);
  EXPECT_EQ(seen.at(0), 0);
}

TEST(TxMapTest, IteratorExhaustionTakesSizeLock) {
  sim::Engine eng(tcc_cfg(1));
  atomos::Runtime rt(eng);
  auto m = make_map();
  m->put(1, 1);
  eng.spawn([&] {
    atomos::atomically([&] {
      auto it = m->iterator();
      while (it->has_next()) it->next();
      EXPECT_FALSE(it->has_next());
      EXPECT_EQ(m->size_locker_count(), 1u);  // exhaustion observed the size
    });
  });
  eng.run();
  EXPECT_EQ(m->size_locker_count(), 0u);  // released at commit
}

TEST(TxMapTest, CommittedOpsSurviveRetries) {
  // Heavy same-key contention: every committed increment must land exactly
  // once despite violations (atomicity of the wrapper's semantics).
  constexpr int kCpus = 8;
  constexpr int kIncs = 20;
  sim::Engine eng(tcc_cfg(kCpus));
  atomos::Runtime rt(eng);
  auto m = make_map();
  m->put(0, 0);
  for (int c = 0; c < kCpus; ++c) {
    eng.spawn([&] {
      for (int i = 0; i < kIncs; ++i) {
        atomos::atomically([&] {
          const long v = *m->get(0);
          atomos::work(50);
          m->put(0, v + 1);
        });
      }
    });
  }
  eng.run();
  EXPECT_EQ(m->inner().get(0), static_cast<long>(kCpus) * kIncs);
  EXPECT_EQ(m->locked_key_count(), 0u);
}

TEST(TxMapTest, MultipleMapsComposeInOneTransaction) {
  sim::Engine eng(tcc_cfg(1));
  atomos::Runtime rt(eng);
  auto a = make_map();
  auto b = make_map();
  eng.spawn([&] {
    atomos::atomically([&] {
      a->put(1, 1);
      b->put(2, 2);
    });
    try {
      atomos::atomically([&] {
        a->put(3, 3);
        b->put(4, 4);
        throw std::runtime_error("abort both");
      });
    } catch (const std::runtime_error&) {
    }
  });
  eng.run();
  EXPECT_EQ(a->inner().get(1), 1);
  EXPECT_EQ(b->inner().get(2), 2);
  EXPECT_EQ(a->inner().get(3), std::nullopt);
  EXPECT_EQ(b->inner().get(4), std::nullopt);
}

TEST(TxMapTest, LongTransactionsOnDisjointKeysDoNotConflict) {
  // THE point of the paper: disjoint-key inserts in long transactions no
  // longer collide on the size field (contrast ConflictsTest in tests/jstd).
  sim::Engine eng(tcc_cfg(2));
  atomos::Runtime rt(eng);
  auto m = make_map(1024);
  for (int c = 0; c < 2; ++c) {
    eng.spawn([&, c] {
      atomos::atomically([&] {
        m->put(1000 + c, c);
        atomos::work(3000);
      });
    });
  }
  eng.run();
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::violations), 0u);
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::semantic_violations), 0u);
  EXPECT_EQ(m->inner().size(), 2);
}

TEST(TxMapTest, SerializabilityUnderRandomWorkload) {
  // Replay check: commits are token-serialized; record each committed
  // transaction's observations in commit order and replay them against an
  // oracle — every observed read must match the oracle state at its commit
  // point (sound because key/size locks pin observations until commit).
  struct Op {
    char kind;  // 'g'et, 'p'ut, 'r'emove, 's'ize
    long key, arg;
    std::optional<long> result;
    long size_result;
  };
  struct Record {
    std::vector<Op> ops;
  };
  constexpr int kCpus = 6;
  sim::Engine eng(tcc_cfg(kCpus));
  atomos::Runtime rt(eng);
  auto m = make_map(64);
  std::vector<Record> committed;
  for (int c = 0; c < kCpus; ++c) {
    eng.spawn([&, c] {
      std::uint64_t s = 31 + static_cast<std::uint64_t>(c) * 977;
      auto rnd = [&] {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return s >> 33;
      };
      for (int i = 0; i < 25; ++i) {
        Record rec;
        atomos::atomically([&] {
          rec.ops.clear();  // retries rebuild the record
          const int nops = 1 + static_cast<int>(rnd() % 3);
          for (int j = 0; j < nops; ++j) {
            const long key = static_cast<long>(rnd() % 16);
            switch (rnd() % 4) {
              case 0: {
                Op op{'g', key, 0, m->get(key), 0};
                rec.ops.push_back(op);
                break;
              }
              case 1: {
                const long v = static_cast<long>(rnd() % 1000);
                Op op{'p', key, v, m->put(key, v), 0};
                rec.ops.push_back(op);
                break;
              }
              case 2: {
                Op op{'r', key, 0, m->remove(key), 0};
                rec.ops.push_back(op);
                break;
              }
              case 3: {
                Op op{'s', 0, 0, std::nullopt, m->size()};
                rec.ops.push_back(op);
                break;
              }
            }
            atomos::work(40);
          }
          // Commit-order observation only; the no-op abort handler pairs it
          // for the TXCC_CHECKED auditor.
          atomos::Runtime::current().on_top_commit(
              [&committed, &rec] { committed.push_back(rec); });
          atomos::Runtime::current().on_top_abort([] {});
        });
      }
    });
  }
  eng.run();

  // Replay in commit order.
  std::map<long, long> oracle;
  for (std::size_t i = 0; i < committed.size(); ++i) {
    for (const Op& op : committed[i].ops) {
      auto it = oracle.find(op.key);
      auto cur = it == oracle.end() ? std::nullopt : std::optional<long>(it->second);
      switch (op.kind) {
        case 'g':
          ASSERT_EQ(op.result, cur) << "txn " << i << " get(" << op.key << ")";
          break;
        case 'p':
          ASSERT_EQ(op.result, cur) << "txn " << i << " put(" << op.key << ")";
          oracle[op.key] = op.arg;
          break;
        case 'r':
          ASSERT_EQ(op.result, cur) << "txn " << i << " remove(" << op.key << ")";
          oracle.erase(op.key);
          break;
        case 's':
          ASSERT_EQ(op.size_result, static_cast<long>(oracle.size())) << "txn " << i;
          break;
        default:
          FAIL();
      }
    }
  }
  // Final state agrees too.
  EXPECT_EQ(m->inner().size(), static_cast<long>(oracle.size()));
  for (const auto& [k, v] : oracle) EXPECT_EQ(m->inner().get(k), v);
}

}  // namespace
}  // namespace tcc
