// Golden simulated-cycle regression tests.
//
// Pins the EXACT simulated-cycle totals of small fig1/fig2 configurations
// (fixed seeds, fixed op counts) so host-side data-structure changes in the
// runtime can never silently perturb the cost model: the simulator is
// deterministic, so any drift here means simulated *timing* changed, which
// is only allowed when the cost model itself is deliberately revised.
//
// To re-pin after an intentional cost-model change, run with
// TCC_PRINT_GOLDEN=1 and paste the emitted rows over kFig1Golden/kFig2Golden.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/testmap_common.h"

namespace {

using namespace bench;

struct GoldenRow {
  const char* series;
  int cpus;
  std::uint64_t cycles;
};

TestMapParams small_params() {
  TestMapParams p;
  p.total_ops = 640;
  p.think_cycles = 1000;
  p.seed = 12345;
  return p;
}

void check_goldens(const char* tag, const std::vector<harness::Series>& series,
                   const GoldenRow* golden, std::size_t n_golden) {
  const bool print = std::getenv("TCC_PRINT_GOLDEN") != nullptr;
  const std::vector<int> cpu_counts = {1, 2, 4, 8};
  std::size_t idx = 0;
  for (const harness::Series& s : series) {
    for (int cpus : cpu_counts) {
      harness::RunResult r;
      r.series = s.name;
      r.cpus = cpus;
      s.run(cpus, /*seed_salt=*/0, r);
      if (print) {
        std::printf("    {\"%s\", %d, %lluULL},  // %s\n", s.name.c_str(), cpus,
                    static_cast<unsigned long long>(r.cycles), tag);
        continue;
      }
      ASSERT_LT(idx, n_golden) << tag << ": golden table too short";
      SCOPED_TRACE(std::string(tag) + " series=" + s.name + " cpus=" + std::to_string(cpus));
      EXPECT_EQ(golden[idx].series, s.name);
      EXPECT_EQ(golden[idx].cpus, cpus);
      EXPECT_EQ(golden[idx].cycles, r.cycles);
      ++idx;
    }
  }
  if (!print) {
    EXPECT_EQ(idx, n_golden) << tag << ": golden table too long";
  }
}

TEST(GoldenCycles, Fig1TestMapSmall) {
  TestMapParams p = small_params();
  auto make_hash = [&p] {
    return std::make_unique<jstd::HashMap<long, long>>(static_cast<std::size_t>(p.key_space) * 2);
  };
  auto make_wrapped = [&p, make_hash]() -> std::unique_ptr<jstd::Map<long, long>> {
    return std::make_unique<tcc::TransactionalMap<long, long>>(make_hash());
  };
  const std::vector<harness::Series> series = {
      java_series("Java HashMap", p, make_hash),
      atomos_series("Atomos HashMap", p, make_hash),
      atomos_series("Atomos TransactionalMap", p, make_wrapped),
  };
  static const GoldenRow kFig1Golden[] = {
      {"Java HashMap", 1, 647182ULL},
      {"Java HashMap", 2, 333753ULL},
      {"Java HashMap", 4, 168568ULL},
      {"Java HashMap", 8, 85720ULL},
      {"Atomos HashMap", 1, 647607ULL},
      {"Atomos HashMap", 2, 329155ULL},
      {"Atomos HashMap", 4, 170645ULL},
      {"Atomos HashMap", 8, 89292ULL},
      {"Atomos TransactionalMap", 1, 666651ULL},
      {"Atomos TransactionalMap", 2, 335469ULL},
      {"Atomos TransactionalMap", 4, 169005ULL},
      {"Atomos TransactionalMap", 8, 85448ULL},
  };
  check_goldens("fig1", series, kFig1Golden, std::size(kFig1Golden));
}

TEST(GoldenCycles, Fig2TestSortedMapSmall) {
  TestMapParams p = small_params();
  auto make_tree = [] { return std::make_unique<jstd::TreeMap<long, long>>(); };
  auto make_wrapped = [make_tree]() -> std::unique_ptr<jstd::Map<long, long>> {
    return std::make_unique<tcc::TransactionalSortedMap<long, long>>(make_tree());
  };
  const std::vector<harness::Series> series = {
      java_series("Java TreeMap", p, make_tree),
      atomos_series("Atomos TreeMap", p, make_tree),
      atomos_series("Atomos TransactionalSortedMap", p, make_wrapped),
  };
  static const GoldenRow kFig2Golden[] = {
      {"Java TreeMap", 1, 657765ULL},
      {"Java TreeMap", 2, 341828ULL},
      {"Java TreeMap", 4, 174911ULL},
      {"Java TreeMap", 8, 96235ULL},
      {"Atomos TreeMap", 1, 658742ULL},
      {"Atomos TreeMap", 2, 352480ULL},
      {"Atomos TreeMap", 4, 195291ULL},
      {"Atomos TreeMap", 8, 109805ULL},
      {"Atomos TransactionalSortedMap", 1, 736760ULL},
      {"Atomos TransactionalSortedMap", 2, 378132ULL},
      {"Atomos TransactionalSortedMap", 4, 197208ULL},
      {"Atomos TransactionalSortedMap", 8, 103397ULL},
  };
  check_goldens("fig2", series, kFig2Golden, std::size(kFig2Golden));
}

}  // namespace
