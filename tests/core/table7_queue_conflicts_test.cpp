// Executable reproduction of paper Tables 7/8/9: the reduced-isolation
// TransactionalQueue.  put/take never conflict; only observed emptiness
// (null peek/poll) conflicts with a committing put; take's eager removal is
// compensated on abort.
#include <gtest/gtest.h>

#include "core/txqueue.h"
#include "jstd/linkedqueue.h"
#include "tests/core/schedule_helper.h"

namespace tcc {
namespace {

using testing::run_schedule;
using testing::tcc_cfg;

struct Fixture {
  sim::Engine eng{tcc_cfg(2)};
  atomos::Runtime rt{eng};
  TransactionalQueue<long> q{std::make_unique<jstd::LinkedQueue<long>>()};

  void preload(long n) {
    for (long i = 1; i <= n; ++i) q.put(i);
  }
};

// ---- functional behaviour ----

TEST(TxQueue, PutBufferedUntilCommitTakeEager) {
  Fixture f;
  f.preload(2);
  f.eng.spawn([&] {
    atomos::atomically([&] {
      EXPECT_EQ(f.q.take(), 1);            // removed from shared queue NOW
      EXPECT_EQ(f.q.inner().size(), 1);    // reduced isolation: visible
      f.q.put(50);
      EXPECT_EQ(f.q.inner().size(), 1);    // put still buffered
      atomos::work(100);
    });
    EXPECT_EQ(f.q.inner().size(), 2);      // addBuffer applied at commit
  });
  f.eng.run();
}

TEST(TxQueue, AbortReturnsTakenElementsAndDropsPuts) {
  Fixture f;
  f.preload(3);
  f.eng.spawn([&] {
    try {
      atomos::atomically([&] {
        EXPECT_EQ(f.q.take(), 1);
        EXPECT_EQ(f.q.take(), 2);
        f.q.put(99);
        throw std::runtime_error("abort");
      });
    } catch (const std::runtime_error&) {
    }
  });
  f.eng.run();
  // The two taken elements are back (order unspecified), the put is gone.
  EXPECT_EQ(f.q.inner().size(), 3);
  std::vector<long> drained;
  while (auto v = f.q.poll()) drained.push_back(*v);
  std::sort(drained.begin(), drained.end());
  EXPECT_EQ(drained, (std::vector<long>{1, 2, 3}));
}

TEST(TxQueue, ReadYourOwnPuts) {
  Fixture f;
  f.eng.spawn([&] {
    atomos::atomically([&] {
      f.q.put(7);
      EXPECT_EQ(f.q.peek(), 7);   // own buffered element visible to self
      EXPECT_EQ(f.q.poll(), 7);   // consumed from own addBuffer
      EXPECT_EQ(f.q.take(), std::nullopt);
    });
  });
  f.eng.run();
  EXPECT_EQ(f.q.inner().size(), 0);  // consumed before commit: never applied
}

// ---- Table 7 conflict matrix ----

TEST(Table7Queue, PutVsTakeNeverConflict) {
  // Both transactions long; producer's put and consumer's take overlap
  // arbitrarily: no violations of any kind.
  Fixture f;
  f.preload(4);
  sim::Engine& eng = f.eng;
  eng.spawn([&] {
    atomos::atomically([&] {
      (void)f.q.take();
      atomos::work(8000);
    });
  });
  eng.spawn([&] {
    atomos::work(500);
    atomos::atomically([&] {
      f.q.put(100);
      atomos::work(8000);
    });
  });
  eng.run();
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::violations), 0u);
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::semantic_violations), 0u);
  EXPECT_EQ(f.q.inner().size(), 4);  // 4 - 1 + 1
}

TEST(Table7Queue, TakeVsTakeNoConflict) {
  Fixture f;
  f.preload(8);
  sim::Engine& eng = f.eng;
  for (int c = 0; c < 2; ++c) {
    eng.spawn([&] {
      atomos::atomically([&] {
        (void)f.q.take();
        (void)f.q.take();
        atomos::work(8000);
      });
    });
  }
  eng.run();
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::semantic_violations), 0u);
  EXPECT_EQ(f.q.inner().size(), 4);
}

TEST(Table7Queue, PeekEmptyVsPut_Conflicts) {
  // "peek: if peek returned null" vs put.
  Fixture f;  // queue empty
  auto r = run_schedule(
      f.eng, [&] { (void)f.q.peek(); },
      [&] { f.q.put(1); });
  EXPECT_TRUE(r.conflicted());
}

TEST(Table7Queue, PollEmptyVsPut_Conflicts) {
  // "poll: if poll returned null" vs put.
  Fixture f;
  auto r = run_schedule(
      f.eng, [&] { (void)f.q.poll(); },
      [&] { f.q.put(1); });
  EXPECT_TRUE(r.conflicted());
}

TEST(Table7Queue, PeekNonEmptyVsPut_Commutes) {
  Fixture f;
  f.preload(1);
  auto r = run_schedule(
      f.eng, [&] { EXPECT_EQ(f.q.peek(), 1); },
      [&] { f.q.put(2); });
  EXPECT_FALSE(r.conflicted());
}

TEST(Table7Queue, TakeOnEmptyVsPut_NoConflictByDesign) {
  // take() deliberately does NOT observe emptiness (reduced isolation):
  // no conflict even though it found nothing.
  Fixture f;
  auto r = run_schedule(
      f.eng, [&] { EXPECT_EQ(f.q.take(), std::nullopt); },
      [&] { f.q.put(1); });
  EXPECT_FALSE(r.conflicted());
}

// ---- size() / try_dequeue(): the worker-loop probe API ----

TEST(TxQueueSize, ReadYourWritesAndPassthrough) {
  Fixture f;
  f.preload(2);
  EXPECT_EQ(f.q.size(), 2);  // non-transactional passthrough
  f.eng.spawn([&] {
    atomos::atomically([&] {
      f.q.put(10);
      f.q.put(11);
      EXPECT_EQ(f.q.size(), 4);  // 2 shared + 2 own buffered puts
      EXPECT_EQ(f.q.take(), 1);
      EXPECT_EQ(f.q.size(), 3);  // eager removal already visible
    });
  });
  f.eng.run();
  EXPECT_EQ(f.q.size(), 3);
}

TEST(TxQueueSize, SizeVsCommittedPut_Conflicts) {
  // A committed put changes the count: size observers must be violated
  // (the sizeLockers rule of Table 3, applied to the queue).
  Fixture f;
  f.preload(2);  // non-empty, so no emptiness lock is involved
  auto r = run_schedule(
      f.eng, [&] { EXPECT_GE(f.q.size(), 2); },
      [&] { f.q.put(3); });
  EXPECT_TRUE(r.conflicted());
}

TEST(TxQueueSize, SizeVsOthersEagerTake_Conflicts) {
  // Another transaction's take() removes eagerly — the observed count is
  // stale the moment the removal happens, not at the taker's commit.
  Fixture f;
  f.preload(4);
  auto r = run_schedule(
      f.eng, [&] { EXPECT_GE(f.q.size(), 3); },
      [&] { (void)f.q.take(); });
  EXPECT_TRUE(r.conflicted());
}

TEST(TxQueueSize, SizeVsSize_Commutes) {
  // Two observers of the same count never invalidate each other.
  Fixture f;
  f.preload(2);
  auto r = run_schedule(
      f.eng, [&] { EXPECT_EQ(f.q.size(), 2); },
      [&] { EXPECT_EQ(f.q.size(), 2); });
  EXPECT_FALSE(r.conflicted());
}

TEST(TxQueueSize, TryDequeueVsPut_Commutes) {
  // try_dequeue() is take(): a worker probing for work observes nothing,
  // so producers never violate it (the srv handler-loop fast path).
  Fixture f;
  auto r = run_schedule(
      f.eng, [&] { EXPECT_EQ(f.q.try_dequeue(), std::nullopt); },
      [&] { f.q.put(1); });
  EXPECT_FALSE(r.conflicted());
}

TEST(TxQueueSize, AbortPutBackViolatesSizeObservers) {
  // CPU0 takes an element then aborts; the compensation put-back changes
  // the count again and must doom a concurrent size observer whose read
  // landed between the eager removal and the abort.
  Fixture f;
  f.preload(3);
  sim::Engine& eng = f.eng;
  eng.spawn([&] {
    try {
      atomos::atomically([&] {
        (void)f.q.take();        // count 3 -> 2, eagerly
        atomos::work(4000);
        throw std::runtime_error("abort");  // put-back: count 2 -> 3
      });
    } catch (const std::runtime_error&) {
    }
  });
  eng.spawn([&] {
    atomos::work(1000);  // start after the take, finish after the put-back
    atomos::atomically([&] {
      (void)f.q.size();
      atomos::work(8000);
    });
  });
  eng.run();
  EXPECT_GE(eng.stats().total(&sim::CpuStats::semantic_violations), 1u);
  EXPECT_EQ(f.q.size(), 3);  // compensation restored every element
}

TEST(TxQueueSize, SizeLockReleasedAfterCommit) {
  Fixture f;
  f.preload(1);
  f.eng.spawn([&] {
    atomos::atomically([&] { (void)f.q.size(); });
    EXPECT_EQ(f.q.size_locker_count(), 0u);  // dropped at commit
  });
  f.eng.run();
}

TEST(Table7Queue, DelaunayWorkQueuePattern) {
  // The motivating use: workers drain a queue, each item may spawn new
  // items; some transactions abort (simulated via a poisoned item value) —
  // and their taken items must reappear for other workers.  At the end all
  // original work is accounted for exactly once in the committed results.
  constexpr int kCpus = 4;
  sim::Engine eng(tcc_cfg(kCpus));
  atomos::Runtime rt(eng);
  TransactionalQueue<long> q(std::make_unique<jstd::LinkedQueue<long>>());
  for (long i = 1; i <= 40; ++i) q.put(i);
  atomos::Shared<long> processed_sum(0);
  for (int c = 0; c < kCpus; ++c) {
    eng.spawn([&, c] {
      int poison_budget = (c == 0) ? 3 : 0;  // CPU0 aborts its first 3 items
      for (;;) {
        bool drained = false;
        try {
          atomos::atomically([&] {
            auto item = q.take();
            if (!item.has_value()) {
              drained = true;
              return;
            }
            atomos::work(200);
            if (poison_budget > 0) throw std::runtime_error("abort this work");
            processed_sum.set(processed_sum.get() + *item);
          });
        } catch (const std::runtime_error&) {
          --poison_budget;  // item went back to the queue; retry others
          continue;
        }
        if (drained) break;
      }
    });
  }
  eng.run();
  EXPECT_EQ(processed_sum.unsafe_peek(), 40 * 41 / 2);  // every item once
  EXPECT_EQ(q.inner().size(), 0);
}

}  // namespace
}  // namespace tcc
