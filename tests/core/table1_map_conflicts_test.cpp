// Executable reproduction of paper Table 1 / Table 2: the conditions under
// which Map operations conflict, as enforced by TransactionalMap's semantic
// locks.  Each test is one cell of the matrix: a long reader transaction
// observes abstract state, a writer commits mid-flight, and we assert
// whether the reader was doomed (conflict) or unharmed (commutes).
//
// Detection follows Table 2 (the implementable lock rules): a committing
// put/remove dooms every holder of the written key's lock, and size-lockers
// when the size changes.
#include <gtest/gtest.h>

#include "core/txmap.h"
#include "jstd/hashmap.h"
#include "tests/core/schedule_helper.h"

namespace tcc {
namespace {

using testing::run_schedule;
using testing::tcc_cfg;

struct Fixture {
  sim::Engine eng{tcc_cfg(2)};
  atomos::Runtime rt{eng};
  TransactionalMap<long, long> map{std::make_unique<jstd::HashMap<long, long>>(1024)};

  void preload(std::initializer_list<long> keys) {
    for (long k : keys) map.put(k, k * 10);
  }
};

// ---- row: containsKey ----

TEST(Table1Map, ContainsKeyVsPutSameNewKey_Conflicts) {
  // containsKey(k) == false is invalidated by a committed put(k).
  Fixture f;
  auto r = run_schedule(
      f.eng, [&] { (void)f.map.contains_key(42); },
      [&] { f.map.put(42, 1); });
  EXPECT_TRUE(r.conflicted());
  EXPECT_GE(r.reader_attempts, 2);
}

TEST(Table1Map, ContainsKeyVsPutDifferentKey_Commutes) {
  Fixture f;
  auto r = run_schedule(
      f.eng, [&] { EXPECT_FALSE(f.map.contains_key(42)); },
      [&] { f.map.put(43, 1); });
  EXPECT_FALSE(r.conflicted());
  EXPECT_EQ(r.reader_attempts, 1);
}

TEST(Table1Map, ContainsKeyVsRemoveSameKey_Conflicts) {
  Fixture f;
  f.preload({42});
  auto r = run_schedule(
      f.eng, [&] { (void)f.map.contains_key(42); },
      [&] { f.map.remove(42); });
  EXPECT_TRUE(r.conflicted());
}

TEST(Table1Map, ContainsKeyVsRemoveDifferentKey_Commutes) {
  Fixture f;
  f.preload({42, 43});
  auto r = run_schedule(
      f.eng, [&] { EXPECT_TRUE(f.map.contains_key(42)); },
      [&] { f.map.remove(43); });
  EXPECT_FALSE(r.conflicted());
}

// ---- row: get ----

TEST(Table1Map, GetVsPutSameKey_Conflicts) {
  Fixture f;
  f.preload({7});
  auto r = run_schedule(
      f.eng, [&] { (void)f.map.get(7); },
      [&] { f.map.put(7, 700); });
  EXPECT_TRUE(r.conflicted());
}

TEST(Table1Map, GetVsPutDifferentKey_Commutes) {
  Fixture f;
  f.preload({7});
  auto r = run_schedule(
      f.eng, [&] { EXPECT_EQ(f.map.get(7), 70); },
      [&] { f.map.put(8, 800); });
  EXPECT_FALSE(r.conflicted());
}

TEST(Table1Map, GetVsRemoveSameKey_Conflicts) {
  Fixture f;
  f.preload({7});
  auto r = run_schedule(
      f.eng, [&] { (void)f.map.get(7); },
      [&] { f.map.remove(7); });
  EXPECT_TRUE(r.conflicted());
}

// ---- row: size ----

TEST(Table1Map, SizeVsPutNewKey_Conflicts) {
  Fixture f;
  f.preload({1, 2, 3});
  auto r = run_schedule(
      f.eng, [&] { (void)f.map.size(); },
      [&] { f.map.put(4, 40); });
  EXPECT_TRUE(r.conflicted());
}

TEST(Table1Map, SizeVsPutOverwrite_Commutes) {
  // Overwriting an existing key does NOT change the size: size readers are
  // not disturbed (Table 1 "if put adds a new entry").
  Fixture f;
  f.preload({1, 2, 3});
  auto r = run_schedule(
      f.eng, [&] { EXPECT_EQ(f.map.size(), 3); },
      [&] { f.map.put(2, 999); });
  EXPECT_FALSE(r.conflicted());
}

TEST(Table1Map, SizeVsRemovePresentKey_Conflicts) {
  Fixture f;
  f.preload({1, 2, 3});
  auto r = run_schedule(
      f.eng, [&] { (void)f.map.size(); },
      [&] { f.map.remove(2); });
  EXPECT_TRUE(r.conflicted());
}

TEST(Table1Map, SizeVsRemoveAbsentKey_Commutes) {
  Fixture f;
  f.preload({1, 2, 3});
  auto r = run_schedule(
      f.eng, [&] { EXPECT_EQ(f.map.size(), 3); },
      [&] { f.map.remove(99); });
  EXPECT_FALSE(r.conflicted());
}

// ---- row: entrySet.iterator ----

TEST(Table1Map, IteratorExhaustionVsPutNewKey_Conflicts) {
  // hasNext()==false reveals the size (the reader counted every entry).
  Fixture f;
  f.preload({1, 2});
  auto r = run_schedule(
      f.eng,
      [&] {
        for (auto it = f.map.iterator(); it->has_next();) it->next();
      },
      [&] { f.map.put(3, 30); }, /*writer_delay=*/60000, /*reader_tail=*/120000);
  EXPECT_TRUE(r.conflicted());
}

TEST(Table1Map, IteratorVisitedKeyVsRemove_Conflicts) {
  // next() locked the visited keys; removing one dooms the iterator's txn.
  Fixture f;
  f.preload({1, 2, 3});
  auto r = run_schedule(
      f.eng,
      [&] {
        auto it = f.map.iterator();
        while (it->has_next()) it->next();
      },
      [&] { f.map.remove(2); }, /*writer_delay=*/60000, /*reader_tail=*/120000);
  EXPECT_TRUE(r.conflicted());
}

// ---- row: put (write vs write) ----

TEST(Table1Map, PutVsPutSameKey_Conflicts) {
  // put reads (returns) the old value, so racing puts of one key must
  // serialize: the in-flight one is doomed.
  Fixture f;
  f.preload({5});
  auto r = run_schedule(
      f.eng, [&] { f.map.put(5, 1); },
      [&] { f.map.put(5, 2); });
  EXPECT_TRUE(r.conflicted());
  EXPECT_EQ(f.map.inner().get(5), 1);  // reader retried and committed last
}

TEST(Table1Map, PutVsPutDifferentKeysBothPresent_Commutes) {
  // Both puts overwrite existing keys: no size change, different key locks.
  Fixture f;
  f.preload({5, 6});
  auto r = run_schedule(
      f.eng, [&] { f.map.put(5, 1); },
      [&] { f.map.put(6, 2); });
  EXPECT_FALSE(r.conflicted());
  EXPECT_EQ(f.map.inner().get(5), 1);
  EXPECT_EQ(f.map.inner().get(6), 2);
}

TEST(Table1Map, InsertsOfDifferentNewKeys_CommuteForNonSizeReaders) {
  // The headline behaviour: two long transactions inserting DIFFERENT new
  // keys both commit untouched (no size reader involved).
  Fixture f;
  sim::Engine& eng = f.eng;
  for (int c = 0; c < 2; ++c) {
    eng.spawn([&, c] {
      atomos::atomically([&] {
        f.map.put(100 + c, c);
        atomos::work(5000);
      });
    });
  }
  eng.run();
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::violations), 0u);
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::semantic_violations), 0u);
  EXPECT_EQ(f.map.inner().size(), 2);
}

TEST(Table1Map, RemoveVsRemoveSameKey_Conflicts) {
  Fixture f;
  f.preload({5});
  auto r = run_schedule(
      f.eng, [&] { f.map.remove(5); },
      [&] { f.map.remove(5); });
  EXPECT_TRUE(r.conflicted());
  EXPECT_EQ(f.map.inner().get(5), std::nullopt);
}

// ---- Section 5.1 extensions ----

TEST(Table1Map, IsEmptyVsPutIntoNonEmptyMap_Commutes) {
  // The paper's `if (!map.isEmpty()) map.put(...)` example: with isEmpty as
  // a primitive (zero-crossing lock), inserts that keep the map non-empty
  // do not disturb isEmpty readers...
  Fixture f;
  f.preload({1});
  auto r = run_schedule(
      f.eng, [&] { EXPECT_FALSE(f.map.is_empty()); },
      [&] { f.map.put(2, 20); });
  EXPECT_FALSE(r.conflicted());
}

TEST(Table1Map, IsEmptyVsFirstInsert_Conflicts) {
  // ...but the zero-crossing insert DOES conflict (the `if (map.isEmpty())
  // map.put(...)` case must not commute).
  Fixture f;
  auto r = run_schedule(
      f.eng, [&] { (void)f.map.is_empty(); },
      [&] { f.map.put(1, 10); });
  EXPECT_TRUE(r.conflicted());
}

TEST(Table1Map, SizeReaderStillConflictsWhereIsEmptyWouldNot) {
  // Contrast: a size() reader IS disturbed by the same non-zero-crossing
  // insert — using size()==0 instead of isEmpty costs concurrency (S5.1).
  Fixture f;
  f.preload({1});
  auto r = run_schedule(
      f.eng, [&] { (void)f.map.size(); },
      [&] { f.map.put(2, 20); });
  EXPECT_TRUE(r.conflicted());
}

TEST(Table1Map, BlindPutsOfSameKey_Commute) {
  // put_blind takes no key READ lock: concurrent blind writers of the same
  // key both commit (the map.put("LastModified", now) example).
  Fixture f;
  auto r = run_schedule(
      f.eng, [&] { f.map.put_blind(9, 1); },
      [&] { f.map.put_blind(9, 2); });
  EXPECT_FALSE(r.conflicted());
  // The reader committed last (its window is longer), so its value wins.
  EXPECT_EQ(f.map.inner().get(9), 1);
}

TEST(Table1Map, BlindPutStillDoomsReadersOfThatKey) {
  Fixture f;
  f.preload({9});
  auto r = run_schedule(
      f.eng, [&] { (void)f.map.get(9); },
      [&] { f.map.put_blind(9, 2); });
  EXPECT_TRUE(r.conflicted());
}

TEST(Table1Map, PessimisticModeDoomsReaderAtOperationTime) {
  // S5.1 ablation: with eager detection the reader dies as soon as the
  // writer executes its put, before the writer even commits.
  sim::Engine eng(tcc_cfg(2));
  atomos::Runtime rt(eng);
  TransactionalMap<long, long> map(
      std::make_unique<jstd::HashMap<long, long>>(1024), Detection::kPessimistic);
  map.put(7, 70);
  std::uint64_t reader_doomed_at = 0;
  std::uint64_t writer_op_at = 0;
  int attempt = 0;
  eng.spawn([&] {
    atomos::atomically([&] {
      ++attempt;
      (void)map.get(7);
      if (attempt == 1) {
        try {
          for (int i = 0; i < 50; ++i) atomos::work(1000);  // poll often
        } catch (...) {
          reader_doomed_at = sim::Engine::get().now();
          throw;
        }
        ADD_FAILURE() << "reader should have been doomed";
      }
    });
  });
  eng.spawn([&] {
    atomos::work(1000);
    atomos::atomically([&] {
      map.put(7, 700);
      writer_op_at = sim::Engine::get().now();
      atomos::work(30000);  // long tail BEFORE commit
    });
  });
  eng.run();
  EXPECT_GT(reader_doomed_at, 0u);
  EXPECT_LT(reader_doomed_at, writer_op_at + 30000);  // died before commit
}

}  // namespace
}  // namespace tcc
