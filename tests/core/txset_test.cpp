// TransactionalSet / TransactionalSortedSet (paper Section 5.1: thin
// wrappers over the transactional maps).
#include "core/txset.h"

#include <gtest/gtest.h>

#include "jstd/hashmap.h"
#include "jstd/treemap.h"

namespace tcc {
namespace {

sim::Config tcc_cfg(int cpus) {
  sim::Config c;
  c.num_cpus = cpus;
  c.mode = sim::Mode::kTcc;
  return c;
}

TEST(TxSetTest, BasicMembershipInsideTransaction) {
  sim::Engine eng(tcc_cfg(1));
  atomos::Runtime rt(eng);
  TransactionalSet<long> set(std::make_unique<jstd::HashMap<long, char>>(64));
  eng.spawn([&] {
    atomos::atomically([&] {
      EXPECT_TRUE(set.is_empty());
      EXPECT_TRUE(set.add(5));
      EXPECT_FALSE(set.add(5));  // already present (buffered)
      EXPECT_TRUE(set.contains(5));
      EXPECT_EQ(set.size(), 1);
      EXPECT_TRUE(set.remove(5));
      EXPECT_FALSE(set.remove(5));
      set.add(7);
    });
  });
  eng.run();
  EXPECT_EQ(set.size(), 1);
  EXPECT_TRUE(set.contains(7));
}

TEST(TxSetTest, DisjointAddsInLongTransactionsCommute) {
  sim::Engine eng(tcc_cfg(4));
  atomos::Runtime rt(eng);
  TransactionalSet<long> set(std::make_unique<jstd::HashMap<long, char>>(256));
  for (int c = 0; c < 4; ++c) {
    eng.spawn([&, c] {
      for (int i = 0; i < 10; ++i) {
        atomos::atomically([&] {
          set.add(c * 100 + i);
          atomos::work(800);
        });
      }
    });
  }
  eng.run();
  EXPECT_EQ(set.size(), 40);
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::violations), 0u);
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::semantic_violations), 0u);
}

TEST(TxSetTest, AbortRollsBackMembership) {
  sim::Engine eng(tcc_cfg(1));
  atomos::Runtime rt(eng);
  TransactionalSet<long> set(std::make_unique<jstd::HashMap<long, char>>(64));
  set.add(1);
  eng.spawn([&] {
    try {
      atomos::atomically([&] {
        set.add(2);
        set.remove(1);
        throw std::runtime_error("abort");
      });
    } catch (const std::runtime_error&) {
    }
  });
  eng.run();
  EXPECT_TRUE(set.contains(1));
  EXPECT_FALSE(set.contains(2));
}

TEST(TxSetTest, ForEachEnumeratesMergedView) {
  sim::Engine eng(tcc_cfg(1));
  atomos::Runtime rt(eng);
  TransactionalSet<long> set(std::make_unique<jstd::HashMap<long, char>>(64));
  for (long k = 0; k < 5; ++k) set.add(k);
  std::set<long> seen;
  eng.spawn([&] {
    atomos::atomically([&] {
      set.add(100);
      set.remove(3);
      set.for_each([&](long k) { seen.insert(k); });
    });
  });
  eng.run();
  EXPECT_EQ(seen, (std::set<long>{0, 1, 2, 4, 100}));
}

TEST(TxSortedSetTest, OrderedOperations) {
  sim::Engine eng(tcc_cfg(1));
  atomos::Runtime rt(eng);
  TransactionalSortedSet<long> set(std::make_unique<jstd::TreeMap<long, char>>());
  for (long k : {9L, 3L, 7L, 1L}) set.add(k);
  std::vector<long> in_range;
  eng.spawn([&] {
    atomos::atomically([&] {
      EXPECT_EQ(set.first(), 1);
      EXPECT_EQ(set.last(), 9);
      set.add(5);
      set.remove(9);
      EXPECT_EQ(set.last(), 7);  // merged endpoint view
      set.for_each_range(3L, 8L, [&](long k) { in_range.push_back(k); });
    });
  });
  eng.run();
  EXPECT_EQ(in_range, (std::vector<long>{3, 5, 7}));
  EXPECT_EQ(set.size(), 4);
}

TEST(TxSortedSetTest, EndpointConflictSemantics) {
  // A first() reader is doomed by a committed new minimum (Table 4 via the
  // set facade).
  sim::Engine eng(tcc_cfg(2));
  atomos::Runtime rt(eng);
  TransactionalSortedSet<long> set(std::make_unique<jstd::TreeMap<long, char>>());
  for (long k = 10; k < 20; ++k) set.add(k);
  eng.spawn([&] {
    atomos::atomically([&] {
      (void)set.first();
      atomos::work(8000);
    });
  });
  eng.spawn([&] {
    atomos::work(1000);
    atomos::atomically([&] { set.add(1); });  // new minimum
  });
  eng.run();
  EXPECT_GE(eng.stats().cpu(0).semantic_violations, 1u);
}

}  // namespace
}  // namespace tcc
