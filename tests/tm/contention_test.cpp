// Contention-manager unit tests (tm/contention.h), centred on the
// KarmaBackoff lockstep bug: the original formula `16 << max(0, 6-attempt)`
// ignored `cpu`, so equally-aborted CPUs computed identical backoffs,
// restarted at the same simulated cycle, and re-collided on every retry.
#include "tm/contention.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "tm/runtime.h"
#include "tm/shared.h"

namespace atomos {
namespace {

/// The pre-fix KarmaBackoff, kept verbatim as the regression baseline.
class LockstepKarma final : public ContentionManager {
 public:
  std::uint64_t backoff_cycles(int, int attempt) override {
    const int shift = std::max(0, 6 - attempt);
    return 16ULL << shift;
  }
};

sim::Config tcc_cfg(int cpus) {
  sim::Config c;
  c.num_cpus = cpus;
  c.mode = sim::Mode::kTcc;
  return c;
}

/// Symmetric hot-cell workload: every CPU increments the same cell with the
/// same think time, so all losers of a commit race abort at the same cycle
/// with the same attempt count — the adversarial input for a cpu-blind
/// backoff policy.  Returns total top-level violations.
std::uint64_t run_symmetric(std::unique_ptr<ContentionManager> cm, int cpus, int iters) {
  sim::Engine eng(tcc_cfg(cpus));
  Runtime rt(eng, std::move(cm));
  Shared<long> hot(0);
  for (int c = 0; c < cpus; ++c) {
    eng.spawn([&] {
      for (int i = 0; i < iters; ++i) {
        atomically([&] {
          hot.set(hot.get() + 1);
          work(10);
        });
      }
    });
  }
  eng.run();
  EXPECT_EQ(hot.unsafe_peek(), static_cast<long>(cpus) * iters);
  return eng.stats().total(&sim::CpuStats::violations);
}

TEST(ContentionTest, OldKarmaFormulaWasCpuBlind) {
  // The pre-fix policy hands every CPU the identical backoff for a given
  // attempt — the lockstep precondition.
  LockstepKarma old_policy;
  for (int attempt = 0; attempt < 10; ++attempt) {
    const std::uint64_t b0 = old_policy.backoff_cycles(0, attempt);
    for (int cpu = 1; cpu < 8; ++cpu)
      EXPECT_EQ(old_policy.backoff_cycles(cpu, attempt), b0);
  }
  // The fixed policy desynchronizes: across 8 CPUs at the same attempt the
  // backoffs are not all equal.
  KarmaBackoff fixed;
  std::set<std::uint64_t> distinct;
  for (int cpu = 0; cpu < 8; ++cpu) distinct.insert(fixed.backoff_cycles(cpu, 0));
  EXPECT_GT(distinct.size(), 1u);
}

TEST(ContentionTest, FixedKarmaKeepsTheKarmaShape) {
  // Losers still back off less with each defeat: the jittered window is
  // [w, 2w] with w = 16 << max(0, 6-attempt), so it shrinks as attempts
  // grow and never collapses to zero.
  KarmaBackoff fixed;
  for (int cpu = 0; cpu < 4; ++cpu) {
    for (int attempt = 0; attempt < 12; ++attempt) {
      const std::uint64_t w = 16ULL << std::max(0, 6 - attempt);
      const std::uint64_t b = fixed.backoff_cycles(cpu, attempt);
      EXPECT_GE(b, w);
      EXPECT_LE(b, 2 * w);
    }
  }
}

TEST(ContentionTest, KarmaLockstepCollides) {
  // The livelock demonstration: on the symmetric hot-cell workload the
  // cpu-blind policy re-collides on retry after retry (committer-wins
  // guarantees eventual progress, so the pathology shows up as violation
  // count, not a hang), while the jittered fix spreads the retries out.
  const std::uint64_t lockstep =
      run_symmetric(std::make_unique<LockstepKarma>(), 4, 50);
  const std::uint64_t jittered =
      run_symmetric(std::make_unique<KarmaBackoff>(), 4, 50);
  EXPECT_GT(lockstep, 2 * jittered)
      << "lockstep=" << lockstep << " jittered=" << jittered;
}

}  // namespace
}  // namespace atomos
