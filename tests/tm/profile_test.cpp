// Per-cell TAPE label tests (tm/profile.h): the label map must report every
// labelled cell resident on a line, not just the last writer — the original
// last-writer-wins per-line map mislabelled the fig4 culprit line as
// "Warehouse.nextHistory" when the hot cell was historyTable's table
// pointer (see EXPERIMENTS.md).
#include "tm/profile.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace atomos {
namespace {

constexpr std::uintptr_t kBase = 0x200000;  // arbitrary line-aligned address

TEST(ProfileTest, SingleCellKeepsItsExactName) {
  Profile p;
  p.enable(true);
  p.note_range(kBase, 8, "District.nextOrder");
  const char* got = p.find(sim::line_of(kBase));
  ASSERT_NE(got, nullptr);
  EXPECT_STREQ(got, "District.nextOrder");
  EXPECT_EQ(p.find(sim::line_of(kBase) + 1), nullptr);
}

TEST(ProfileTest, CoResidentCellsAreAllReported) {
  Profile p;
  p.enable(true);
  // Three labelled cells on one 64-byte line — the fig4 accident in
  // miniature.  Every name must appear, in construction order, regardless
  // of which cell was labelled last.
  p.note_range(kBase + 0, 8, "historyTable.table");
  p.note_range(kBase + 8, 8, "Warehouse.ytd");
  p.note_range(kBase + 16, 8, "Warehouse.nextHistory");
  const char* got = p.find(sim::line_of(kBase));
  ASSERT_NE(got, nullptr);
  EXPECT_STREQ(got, "historyTable.table+Warehouse.ytd+Warehouse.nextHistory");
  // The joined pointer is stable across further lookups.
  EXPECT_EQ(got, p.find(sim::line_of(kBase)));
}

TEST(ProfileTest, DuplicateNamesAreDeduplicated) {
  Profile p;
  p.enable(true);
  // Eight packed node cells sharing one label and one line must not yield
  // "TreeMap.node+TreeMap.node+...".
  for (int i = 0; i < 8; ++i) p.note_range(kBase + 8 * static_cast<unsigned>(i), 8, "TreeMap.node");
  p.note_range(kBase + 32, 8, "orderTable.size");
  EXPECT_STREQ(p.find(sim::line_of(kBase)), "TreeMap.node+orderTable.size");
}

TEST(ProfileTest, LateLabelInvalidatesCachedJoin) {
  Profile p;
  p.enable(true);
  p.note_range(kBase, 8, "a");
  p.note_range(kBase + 8, 8, "b");
  EXPECT_STREQ(p.find(sim::line_of(kBase)), "a+b");  // builds the cached join
  p.note_range(kBase + 16, 8, "c");
  EXPECT_STREQ(p.find(sim::line_of(kBase)), "a+b+c");
}

TEST(ProfileTest, MultiLineRangeCoversEveryLine) {
  Profile p;
  p.enable(true);
  p.note_range(kBase + 56, 16, "straddler");  // crosses a line boundary
  EXPECT_STREQ(p.find(sim::line_of(kBase)), "straddler");
  EXPECT_STREQ(p.find(sim::line_of(kBase) + 1), "straddler");
}

TEST(ProfileTest, DisabledRecordsNothingAndForEachSeesJoins) {
  Profile p;
  p.note_range(kBase, 8, "ignored");  // disabled: silently dropped
  EXPECT_EQ(p.find(sim::line_of(kBase)), nullptr);
  p.enable(true);
  p.note_range(kBase, 8, "x");
  p.note_range(kBase + 8, 8, "y");
  int lines = 0;
  std::string seen;
  p.for_each([&](sim::LineAddr, const char* name) {
    ++lines;
    seen = name;
  });
  EXPECT_EQ(lines, 1);
  EXPECT_EQ(seen, "x+y");
  p.clear();
  EXPECT_EQ(p.find(sim::line_of(kBase)), nullptr);
}

}  // namespace
}  // namespace atomos
