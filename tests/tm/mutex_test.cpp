// Tests for the lock-mode mutex: mutual exclusion in virtual time, FIFO
// handoff, contention accounting, and error paths.
#include "tm/mutex.h"

#include <gtest/gtest.h>

#include "tm/runtime.h"
#include "tm/shared.h"

namespace atomos {
namespace {

sim::Config lock_cfg(int cpus) {
  sim::Config c;
  c.num_cpus = cpus;
  c.mode = sim::Mode::kLock;
  return c;
}

TEST(MutexTest, ProvidesMutualExclusion) {
  constexpr int kCpus = 8;
  constexpr int kIncs = 50;
  sim::Engine eng(lock_cfg(kCpus));
  Runtime rt(eng);
  Mutex mu;
  Shared<long> counter(0);
  for (int c = 0; c < kCpus; ++c) {
    eng.spawn([&] {
      for (int i = 0; i < kIncs; ++i) {
        LockGuard g(mu);
        counter.set(counter.get() + 1);
      }
    });
  }
  eng.run();
  EXPECT_EQ(counter.unsafe_peek(), static_cast<long>(kCpus) * kIncs);
}

TEST(MutexTest, CriticalSectionsSerializeInVirtualTime) {
  sim::Engine eng(lock_cfg(2));
  Runtime rt(eng);
  Mutex mu;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sections;  // [enter, exit)
  for (int c = 0; c < 2; ++c) {
    eng.spawn([&] {
      sim::Engine& e = sim::Engine::get();
      for (int i = 0; i < 5; ++i) {
        mu.lock();
        const std::uint64_t enter = e.now();
        e.tick(100);
        sections.emplace_back(enter, e.now());
        mu.unlock();
        e.tick(37);
      }
    });
  }
  eng.run();
  std::sort(sections.begin(), sections.end());
  for (std::size_t i = 1; i < sections.size(); ++i) {
    EXPECT_LE(sections[i - 1].second, sections[i].first) << "critical sections overlapped";
  }
}

TEST(MutexTest, ContendedLockAccumulatesSpinOrParkTime) {
  sim::Engine eng(lock_cfg(4));
  Runtime rt(eng);
  Mutex mu;
  for (int c = 0; c < 4; ++c) {
    eng.spawn([&] {
      for (int i = 0; i < 10; ++i) {
        LockGuard g(mu);
        sim::Engine::get().tick(500);  // long hold forces contention
      }
    });
  }
  eng.run();
  // With 40 x 500-cycle serialized holds, elapsed must be at least 20000.
  EXPECT_GE(eng.elapsed_cycles(), 20000u);
}

TEST(MutexTest, RecursiveLockThrows) {
  sim::Engine eng(lock_cfg(1));
  Runtime rt(eng);
  Mutex mu;
  bool threw = false;
  eng.spawn([&] {
    mu.lock();
    try {
      mu.lock();
    } catch (const std::logic_error&) {
      threw = true;
    }
    mu.unlock();
  });
  eng.run();
  EXPECT_TRUE(threw);
}

TEST(MutexTest, UnlockByNonOwnerThrows) {
  sim::Engine eng(lock_cfg(2));
  Runtime rt(eng);
  Mutex mu;
  bool threw = false;
  eng.spawn([&] {
    mu.lock();
    sim::Engine::get().tick(1000);
    mu.unlock();
  });
  eng.spawn([&] {
    sim::Engine::get().tick(100);
    try {
      mu.unlock();
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  eng.run();
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace atomos
