// Tests for the TXCC_CHECKED runtime invariant auditor (txcheck layer 2).
//
// Only built when the tree is configured with -DTXCC_CHECKED=ON (see
// tests/tm/CMakeLists.txt).  Each negative test deliberately breaks one
// piece of transactional discipline and asserts the auditor reports it;
// the positive tests assert the auditor stays silent on correct code.
#include "tm/audit.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/lockers.h"
#include "core/txmap.h"
#include "jstd/hashmap.h"
#include "tm/runtime.h"
#include "tm/shared.h"
#include "trace/tracer.h"

namespace atomos {
namespace {

static_assert(audit::kEnabled, "checked_runtime_test requires -DTXCC_CHECKED=ON");

sim::Config tcc_cfg(int cpus) {
  sim::Config c;
  c.num_cpus = cpus;
  c.mode = sim::Mode::kTcc;
  return c;
}

class CheckedRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override { audit::reset(); }
  void TearDown() override { audit::reset(); }
};

// A transaction that takes a semantic key lock and registers no cleanup
// handler leaks the lock past its own commit: nobody will ever release it.
TEST_F(CheckedRuntimeTest, ReportsSemanticLockLeakedPastCommit) {
  tcc::KeyLockTable<long> locks;
  {
    sim::Engine eng(tcc_cfg(1));
    Runtime rt(eng);
    eng.spawn([&] {
      atomically([&] {
        locks.lock(7, self_id());  // read intent... and no release handler
      });
    });
    eng.run();
  }
  EXPECT_EQ(audit::count(audit::Check::kLockLeak), 1u);
  ASSERT_FALSE(audit::reports().empty());
  EXPECT_NE(audit::reports()[0].find("semantic lock"), std::string::npos);
  // The stale entry must not keep reporting once the owner is settled: a
  // later writer pruning the dead owner is a no-op for the auditor.
  {
    sim::Engine eng(tcc_cfg(1));
    Runtime rt(eng);
    eng.spawn([&] {
      atomically([&] { locks.violate_holders(7, self_id()); });
    });
    eng.run();
  }
  EXPECT_EQ(audit::count(audit::Check::kLockLeak), 1u);
}

TEST_F(CheckedRuntimeTest, ReportsSemanticLockLeakedPastAbort) {
  sim::Engine eng(tcc_cfg(2));
  Runtime rt(eng);
  tcc::KeyLockTable<long> locks;
  Shared<int> hot(0);
  int attempts = 0;
  eng.spawn([&] {
    atomically([&] {
      ++attempts;
      // Lock under a fresh incarnation each attempt; never unlock.  On the
      // first (violated) attempt the lock leaks past the abort.
      locks.lock(1, self_id());
      hot.set(hot.get() + 1);
      Runtime::current().work(2000);  // stay speculative long enough to lose
    });
  });
  eng.spawn([&] {
    Runtime::current().work(100);
    atomically([&] { hot.set(hot.get() + 10); });
  });
  eng.run();
  ASSERT_GT(attempts, 1) << "test needs at least one violation to exercise abort";
  // Every finished incarnation (aborted attempts + the final commit) leaked.
  EXPECT_EQ(audit::count(audit::Check::kLockLeak), static_cast<std::uint64_t>(attempts));
}

// Correct discipline: release the lock in paired commit/abort handlers, the
// way the transactional collections do.  The auditor must stay silent.
TEST_F(CheckedRuntimeTest, PairedHandlersReleaseCleanly) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  tcc::KeyLockTable<long> locks;
  eng.spawn([&] {
    atomically([&] {
      const TxnId me = self_id();
      locks.lock(7, me);
      Runtime::current().on_top_commit([&locks, me] { locks.unlock(7, me); });
      Runtime::current().on_top_abort([&locks, me] { locks.unlock(7, me); });
    });
  });
  eng.run();
  EXPECT_EQ(audit::total(), 0u) << (audit::reports().empty() ? "" : audit::reports()[0]);
  EXPECT_EQ(locks.locked_key_count(), 0u);
}

TEST_F(CheckedRuntimeTest, ReportsTopCommitHandlerWithoutAbortHandler) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  eng.spawn([&] {
    atomically([&] {
      Runtime::current().on_top_commit([] {});  // no paired on_top_abort
    });
  });
  eng.run();
  EXPECT_EQ(audit::count(audit::Check::kUnpairedHandler), 1u);
  ASSERT_FALSE(audit::reports().empty());
  EXPECT_NE(audit::reports()[0].find("no abort handler"), std::string::npos);
}

// Abort-only registration is the legal CompensatedCounter shape: never flag.
TEST_F(CheckedRuntimeTest, AbortOnlyHandlerIsLegal) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  eng.spawn([&] {
    atomically([&] { Runtime::current().on_top_abort([] {}); });
  });
  eng.run();
  EXPECT_EQ(audit::count(audit::Check::kUnpairedHandler), 0u);
}

// A commit handler that releases the same semantic lock twice: the second
// request finds nothing to release while its owner is still live — under
// optimistic read intents it could strip ANOTHER reader's protection.
TEST_F(CheckedRuntimeTest, ReportsSemanticLockDoubleRelease) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  tcc::KeyLockTable<long> locks;
  eng.spawn([&] {
    atomically([&] {
      const TxnId me = self_id();
      locks.lock(7, me);
      Runtime::current().on_top_commit([&locks, me] {
        locks.unlock(7, me);
        locks.unlock(7, me);  // second release: nothing left to release
      });
      Runtime::current().on_top_abort([&locks, me] { locks.unlock(7, me); });
    });
  });
  eng.run();
  EXPECT_EQ(audit::count(audit::Check::kDoubleRelease), 1u);
  EXPECT_EQ(audit::count(audit::Check::kLockLeak), 0u);
  ASSERT_FALSE(audit::reports().empty());
  EXPECT_NE(audit::reports().back().find("release"), std::string::npos);
}

// Pruning a SETTLED owner's stale entry is the legal counterpart: the
// release request finds nothing, but its owner is long gone.
TEST_F(CheckedRuntimeTest, StaleUnlockOfSettledOwnerIsNotDoubleRelease) {
  tcc::KeyLockTable<long> locks;
  TxnId leaker{};
  {
    sim::Engine eng(tcc_cfg(1));
    Runtime rt(eng);
    eng.spawn([&] {
      atomically([&] {
        leaker = self_id();
        locks.lock(7, leaker);  // leaks (reported as kLockLeak, not here)
      });
    });
    eng.run();
  }
  audit::reset();  // drop the leak report; only the unlock below matters
  {
    sim::Engine eng(tcc_cfg(1));
    Runtime rt(eng);
    eng.spawn([&] {
      atomically([&] { locks.unlock(7, leaker); });  // stale: owner settled
    });
    eng.run();
  }
  EXPECT_EQ(audit::count(audit::Check::kDoubleRelease), 0u);
}

// The same compensation site running twice within one abort: compensations
// are not idempotent, so a double registration corrupts the collection.
TEST_F(CheckedRuntimeTest, ReportsCompensationRunTwiceInOneAbort) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  int site;  // a compensation is identified by a stable site address
  eng.spawn([&] {
    try {
      atomically([&] {
        Runtime::current().on_top_abort([&] { audit::compensation_run(0, &site); });
        Runtime::current().on_top_abort([&] { audit::compensation_run(0, &site); });
        throw std::runtime_error("force abort");
      });
    } catch (const std::runtime_error&) {
    }
  });
  eng.run();
  EXPECT_EQ(audit::count(audit::Check::kDoubleCompensation), 1u);
  ASSERT_FALSE(audit::reports().empty());
  EXPECT_NE(audit::reports().back().find("compensation"), std::string::npos);
}

// A compensation that unwinds (a user exception escaping its detached open
// transaction) must not drop its siblings: every other registered
// compensation still has to run, or its eager open-nested effect leaks.
// Handlers run newest-first, so the first-run handler throwing used to
// abandon both earlier-registered siblings.
TEST_F(CheckedRuntimeTest, ThrowingCompensationDoesNotDropSiblings) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  int site_a, site_b, site_c;
  bool ran_a = false, ran_b = false;
  bool saw_failure = false;
  eng.spawn([&] {
    try {
      atomically([&] {
        Runtime::current().on_top_abort([&] {
          audit::compensation_run(0, &site_a);
          ran_a = true;
        });
        Runtime::current().on_top_abort([&] {
          audit::compensation_run(0, &site_b);
          ran_b = true;
        });
        Runtime::current().on_top_abort([&] {
          audit::compensation_run(0, &site_c);
          throw std::logic_error("compensation failed");  // runs first
        });
        throw std::runtime_error("force abort");
      });
    } catch (const std::logic_error&) {
      saw_failure = true;  // the failure still surfaces to the caller
    }
  });
  eng.run();
  EXPECT_TRUE(ran_a) << "first-registered sibling compensation was dropped";
  EXPECT_TRUE(ran_b) << "second-registered sibling compensation was dropped";
  EXPECT_TRUE(saw_failure);
  // Each sibling ran exactly once within the abort scope.
  EXPECT_EQ(audit::count(audit::Check::kDoubleCompensation), 0u);
}

// Distinct sites in one abort — and the same site across DIFFERENT aborts
// (a retried transaction re-registers each attempt) — are both legal.
TEST_F(CheckedRuntimeTest, DistinctAndReattemptedCompensationsAreLegal) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  int site_a, site_b;
  eng.spawn([&] {
    for (int round = 0; round < 2; ++round) {
      try {
        atomically([&] {
          Runtime::current().on_top_abort([&] { audit::compensation_run(0, &site_a); });
          Runtime::current().on_top_abort([&] { audit::compensation_run(0, &site_b); });
          throw std::runtime_error("force abort");
        });
      } catch (const std::runtime_error&) {
      }
    }
  });
  eng.run();
  EXPECT_EQ(audit::count(audit::Check::kDoubleCompensation), 0u);
}

// A worker-fiber store to a registered Shared cell outside any transaction
// bypasses commit arbitration: the auditor must call it out.
TEST_F(CheckedRuntimeTest, ReportsNakedStoreFromWorker) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  Shared<int> x(0);
  eng.spawn([&] {
    x.set(42);  // naked: no enclosing atomically
  });
  eng.run();
  EXPECT_EQ(x.unsafe_peek(), 42);  // the store itself still works
  EXPECT_EQ(audit::count(audit::Check::kNakedStore), 1u);
  ASSERT_FALSE(audit::reports().empty());
  EXPECT_NE(audit::reports()[0].find("naked"), std::string::npos);
}

TEST_F(CheckedRuntimeTest, TransactionalStoresAreNotNaked) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  Shared<int> x(0);
  eng.spawn([&] {
    atomically([&] { x.set(42); });
    open_atomically([&] { x.set(43); });
  });
  eng.run();
  EXPECT_EQ(x.unsafe_peek(), 43);
  EXPECT_EQ(audit::count(audit::Check::kNakedStore), 0u);
}

// A destroyed Shared cell must be forgotten: a worker store to a *different*
// object reusing the address is that object's business, and setup/teardown
// stores never report at all (not in a worker fiber).
TEST_F(CheckedRuntimeTest, SetupStoresAndDeadCellsDoNotReport) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  auto cell = std::make_unique<Shared<int>>(1);
  cell->set(2);  // setup-thread store: raw access, no report
  cell.reset();  // unregisters
  eng.spawn([&] {
    atomically([] {});
  });
  eng.run();
  EXPECT_EQ(audit::count(audit::Check::kNakedStore), 0u);
}

// End-to-end clean path: a TransactionalMap workload under contention —
// semantic locks taken and released by the collection's own paired handlers,
// open-nested commits, retries — must leave the auditor with nothing to say.
TEST_F(CheckedRuntimeTest, TransactionalMapWorkloadIsClean) {
  constexpr int kCpus = 4;
  sim::Engine eng(tcc_cfg(kCpus));
  Runtime rt(eng);
  tcc::TransactionalMap<long, long> map(std::make_unique<jstd::HashMap<long, long>>(64));
  for (int c = 0; c < kCpus; ++c) {
    eng.spawn([&, c] {
      std::uint64_t s = static_cast<std::uint64_t>(c) + 1;
      for (int i = 0; i < 20; ++i) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        const long key = static_cast<long>((s >> 33) % 8);
        atomically([&] {
          if (map.get(key).has_value()) {
            map.put(key, key * 10 + c);
          } else {
            map.put(key, c);
          }
          work(50);
        });
      }
    });
  }
  eng.run();
  EXPECT_GT(eng.stats().total(&sim::CpuStats::commits), 0u);
  EXPECT_EQ(audit::total(), 0u) << (audit::reports().empty() ? "" : audit::reports()[0]);
}

// The Profile ordering contract (tm/profile.h): labels belong in setup,
// after Runtime::profile().enable(true) and before Engine::run().  A label
// attached from inside the running simulation is host state that a violated
// transaction cannot roll back, so the auditor flags it; the same label
// attached during setup is silent.
TEST_F(CheckedRuntimeTest, FlagsProfileLabelAttachedMidSimulation) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  rt.profile().enable(true);
  Shared<long> setup_cell(1, "setup-cell");  // contract order: silent
  EXPECT_EQ(audit::count(audit::Check::kLateProfileLabel), 0u);
  eng.spawn([&] {
    atomically([&] {
      Shared<long> mid_run_cell(5, "mid-run-cell");  // inside the simulation
      (void)mid_run_cell.get();
    });
  });
  eng.run();
  EXPECT_EQ(audit::count(audit::Check::kLateProfileLabel), 1u);
  ASSERT_FALSE(audit::reports().empty());
  EXPECT_NE(audit::reports().back().find("mid-run-cell"), std::string::npos);
}

// A trace stream whose begin/commit events do not nest means an emission
// point was lost (a torn stream).  Drive a Tracer by hand to plant the tear.
TEST_F(CheckedRuntimeTest, FlagsTornTraceStreams) {
  {
    trace::Tracer t(1);
    t.on_txn_begin(0, 100, /*open=*/false, 1, 1);  // ... and never exits
    audit::check_trace_nesting(t);
  }
  EXPECT_EQ(audit::count(audit::Check::kTornTrace), 1u);
  ASSERT_FALSE(audit::reports().empty());
  EXPECT_NE(audit::reports().back().find("never terminated"), std::string::npos);

  {
    trace::Tracer t(1);
    t.on_txn_begin(0, 100, /*open=*/false, 1, 1);
    t.on_txn_begin(0, 110, /*open=*/true, 2, 1);     // open-nested child...
    t.on_txn_commit(0, 120, /*open=*/false, 3);      // ...crossed by top exit
    audit::check_trace_nesting(t);
  }
  EXPECT_EQ(audit::count(audit::Check::kTornTrace), 2u);
  EXPECT_NE(audit::reports().back().find("open-nested child is active"),
            std::string::npos);

  {
    trace::Tracer t(1);
    t.on_txn_commit(0, 50, /*open=*/true, 0);  // open exit with no begin
    audit::check_trace_nesting(t);
  }
  EXPECT_EQ(audit::count(audit::Check::kTornTrace), 3u);

  // Overflowed streams are skipped (pairing is unjudgeable across a hole),
  // and well-nested streams stay silent.
  {
    trace::Tracer overflowed(1, /*capacity_per_cpu=*/1);
    overflowed.on_txn_begin(0, 10, false, 1, 1);
    overflowed.on_txn_begin(0, 20, false, 2, 1);  // dropped: buffer full
    audit::check_trace_nesting(overflowed);

    trace::Tracer clean(1);
    clean.on_txn_begin(0, 10, false, 1, 1);
    clean.on_txn_begin(0, 20, true, 2, 1);
    clean.on_txn_commit(0, 30, true, 0);
    clean.on_txn_commit(0, 40, false, 1);
    audit::check_trace_nesting(clean);
  }
  EXPECT_EQ(audit::count(audit::Check::kTornTrace), 3u);
}

// Positive integration: a real traced run (in-memory tracer via an empty
// request path) must produce well-nested streams on every CPU — ~Runtime
// audits them automatically.
TEST_F(CheckedRuntimeTest, RealTracedRunIsWellNested) {
  trace::set_request("");  // in-memory tracer, audited at Runtime teardown
  {
    sim::Engine eng(tcc_cfg(2));
    Runtime rt(eng);
    ASSERT_NE(rt.tracer(), nullptr);
    Shared<long> cell(0);
    for (int c = 0; c < 2; ++c) {
      eng.spawn([&] {
        for (int i = 0; i < 20; ++i) {
          atomically([&] {
            cell.set(cell.get() + 1);
            open_atomically([&] { work(5); });
          });
        }
      });
    }
    eng.run();
  }
  trace::clear_request();
  EXPECT_EQ(audit::count(audit::Check::kTornTrace), 0u)
      << (audit::reports().empty() ? "" : audit::reports().back());
}

// Cross-thread construction audit (sim/vaddr.h): building a simulated cell
// on a host thread whose va cursors are not owned by a live Engine draws
// from a stale (or never-reset) cursor and can alias another simulation's
// addresses.  The audit is scoped so engine-less unit-test construction
// stays legal: it fires only while an Engine is live *somewhere else*.
TEST_F(CheckedRuntimeTest, ReportsForeignVaAlloc) {
  std::atomic<int> stage{0};
  std::thread holder([&] {
    sim::Engine eng(tcc_cfg(1));  // owns *its* thread's cursors
    stage.store(1);
    while (stage.load() < 2) std::this_thread::yield();
  });
  while (stage.load() < 1) std::this_thread::yield();
  EXPECT_EQ(audit::count(audit::Check::kForeignVaAlloc), 0u);
  // This thread's cursors are not owned by the live Engine over there.
  { Shared<int> foreign(7); }
  EXPECT_EQ(audit::count(audit::Check::kForeignVaAlloc), 1u);
  stage.store(2);
  holder.join();
}

TEST_F(CheckedRuntimeTest, ReportsReaderCountOverflowPastOpenNestingDepth255) {
  // A CPU stacking more than 255 live transactions that all read the same
  // line saturates the per-(line, cpu) reader-directory count at its 8-bit
  // ceiling.  The add that hits the ceiling must be reported — and the
  // count held sticky (bit stays set, so violations can only be spurious,
  // never missed) — instead of silently wrapping to zero.  Unwinding the
  // stack afterwards must not report underflow: removes on a saturated
  // count are no-ops by design.
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  Shared<int> x(1);
  std::function<void(int)> deep = [&](int depth) {
    (void)x.get();  // one reader-dir ref per open-nesting level
    if (depth == 0) return;
    open_atomically([&] { deep(depth - 1); });
  };
  eng.spawn([&] { atomically([&] { deep(256); }); });
  eng.run();
  EXPECT_GE(audit::count(audit::Check::kReaderOverflow), 1u);
  EXPECT_EQ(audit::count(audit::Check::kSetCorruption), 0u);
}

TEST_F(CheckedRuntimeTest, OpenNestingBelowDepth255StaysSilent) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  Shared<int> x(1);
  std::function<void(int)> deep = [&](int depth) {
    (void)x.get();
    if (depth == 0) return;
    open_atomically([&] { deep(depth - 1); });
  };
  eng.spawn([&] { atomically([&] { deep(100); }); });
  eng.run();
  EXPECT_EQ(audit::count(audit::Check::kReaderOverflow), 0u);
  EXPECT_EQ(audit::total(), 0u);
}

TEST_F(CheckedRuntimeTest, OwnThreadAndEngineLessVaAllocsAreSilent) {
  // No Engine alive anywhere: bare-cell construction is legitimate setup.
  { Shared<int> bare(1); }
  EXPECT_EQ(audit::count(audit::Check::kForeignVaAlloc), 0u);
  // Cells built on the Engine's own thread, after the Engine: legitimate.
  {
    sim::Engine eng(tcc_cfg(1));
    Runtime rt(eng);
    Shared<int> owned(2);
    eng.spawn([&] { atomically([&] { owned.set(3); }); });
    eng.run();
  }
  EXPECT_EQ(audit::count(audit::Check::kForeignVaAlloc), 0u);
}

}  // namespace
}  // namespace atomos
