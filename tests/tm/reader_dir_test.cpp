// Unit and integration tests for the line reader directory (tm/reader_dir.h).
//
// The direct tests pin the refcounted mask bookkeeping.  The integration
// tests drive the full runtime and check the three lifecycle rules the
// directory's correctness rests on:
//   * a committed write flags CPUs that hold the line in a live read set
//     (flag-on-commit),
//   * closed-frame rollback that truncates a prev<0 read-log entry removes
//     the line, so later commits no longer target the CPU
//     (unflag-on-truncation), and
//   * an open-nested child's commit never flags its own CPU's stack, so a
//     parent that read a line its child then wrote survives (the open-nesting
//     exemption the transactional collection classes rely on).
#include "tm/reader_dir.h"

#include <gtest/gtest.h>

#include "tm/runtime.h"
#include "tm/shared.h"

namespace atomos {
namespace {

sim::Config tcc_cfg(int cpus) {
  sim::Config c;
  c.num_cpus = cpus;
  c.mode = sim::Mode::kTcc;
  return c;
}

// Lines handed to ReaderDir must sit in the virtual heap.
constexpr sim::LineAddr kLine0 = sim::kVaBase >> sim::Config::kLineShift;

TEST(ReaderDirTest, AddRemoveMaskAndCounts) {
  ReaderDir dir(4);
  EXPECT_FALSE(dir.is_reader(kLine0, 1));

  dir.add(kLine0, 1);
  dir.add(kLine0, 3);
  dir.add(kLine0, 3);  // same line in two stacked read sets on CPU 3
  EXPECT_TRUE(dir.is_reader(kLine0, 1));
  EXPECT_TRUE(dir.is_reader(kLine0, 3));
  EXPECT_FALSE(dir.is_reader(kLine0, 0));
  EXPECT_EQ(dir.count(kLine0, 1), 1u);
  EXPECT_EQ(dir.count(kLine0, 3), 2u);

  dir.remove(kLine0, 3);
  EXPECT_TRUE(dir.is_reader(kLine0, 3));  // one ref left
  dir.remove(kLine0, 3);
  EXPECT_FALSE(dir.is_reader(kLine0, 3));  // last ref clears the bit
  EXPECT_TRUE(dir.is_reader(kLine0, 1));
  dir.remove(kLine0, 1);
  EXPECT_FALSE(dir.is_reader(kLine0, 1));
  EXPECT_EQ(dir.count(kLine0, 1), 0u);
}

TEST(ReaderDirTest, LinesAreIndependent) {
  ReaderDir dir(2);
  dir.add(kLine0, 0);
  dir.add(kLine0 + 5, 1);
  EXPECT_TRUE(dir.is_reader(kLine0, 0));
  EXPECT_TRUE(dir.is_reader(kLine0 + 5, 1));
  EXPECT_FALSE(dir.is_reader(kLine0 + 1, 0));  // untouched line in between
  EXPECT_FALSE(dir.is_reader(kLine0 + 1, 1));
  dir.remove(kLine0, 0);
  EXPECT_TRUE(dir.is_reader(kLine0 + 5, 1));
}

TEST(ReaderDirTest, MultiWordMasksAbove64Cpus) {
  // CPUs 64..127 live in the second mask word; the word-granular view the
  // commit path walks (mask_words) must place and clear their bits there.
  ReaderDir dir(128);
  EXPECT_EQ(dir.mask_stride(), 2u);
  dir.add(kLine0, 5);
  dir.add(kLine0, 64);
  dir.add(kLine0, 127);
  const std::uint64_t* w = dir.mask_words(kLine0);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w[0], std::uint64_t{1} << 5);
  EXPECT_EQ(w[1], (std::uint64_t{1} << 0) | (std::uint64_t{1} << 63));
  dir.remove(kLine0, 64);
  EXPECT_EQ(dir.mask_words(kLine0)[1], std::uint64_t{1} << 63);
  EXPECT_TRUE(dir.is_reader(kLine0, 127));
  EXPECT_FALSE(dir.is_reader(kLine0, 64));
  EXPECT_TRUE(dir.is_reader(kLine0, 5));
}

TEST(ReaderDirTest, SmallSimStaysSingleWord) {
  // The stride is sized from the sim's actual CPU count, so a paper-scale
  // run does not pay kMaxCpus-width masks per line.
  EXPECT_EQ(ReaderDir(8).mask_stride(), 1u);
  EXPECT_EQ(ReaderDir(64).mask_stride(), 1u);
  EXPECT_EQ(ReaderDir(65).mask_stride(), 2u);
}

TEST(ReaderDirIntegration, CommitFlagsLiveReader) {
  sim::Engine eng(tcc_cfg(2));
  Runtime rt(eng);
  Shared<int> x(0);
  int attempts = 0;
  int final_read = -1;
  eng.spawn([&] {
    atomically([&] {
      ++attempts;
      final_read = x.get();
      Runtime::current().work(5000);
    });
  });
  eng.spawn([&] {
    Runtime::current().work(500);
    atomically([&] { x.set(7); });
  });
  eng.run();
  EXPECT_EQ(attempts, 2);  // directory routed the commit to the reader
  EXPECT_EQ(final_read, 7);
  EXPECT_GE(eng.stats().cpu(0).violations, 1u);
}

TEST(ReaderDirIntegration, FrameRollbackUnflagsTruncatedRead) {
  // CPU 0 reads x only inside attempt 0 of a closed-nested frame.  The frame
  // is violated and retried; the rollback truncates the prev<0 read-log
  // entry for x, which must also drop CPU 0 from x's reader list: CPU 1's
  // second commit of x then has no reader to flag, so the frame runs
  // exactly twice, not three times.
  sim::Engine eng(tcc_cfg(2));
  Runtime rt(eng);
  Shared<int> x(0);
  Shared<int> y(0);
  int frame_runs = 0;
  int outer_runs = 0;
  eng.spawn([&] {
    atomically([&] {
      ++outer_runs;
      atomically([&] {
        ++frame_runs;
        if (frame_runs == 1) {
          (void)x.get();
        } else {
          (void)y.get();
        }
        Runtime::current().work(4000);
      });
    });
  });
  eng.spawn([&] {
    Runtime::current().work(500);
    atomically([&] { x.set(1); });  // violates CPU 0's frame
    Runtime::current().work(2000);
    atomically([&] { x.set(2); });  // lands mid-retry: must NOT violate
  });
  eng.run();
  EXPECT_EQ(outer_runs, 1);  // partial rollback: only the frame retried
  EXPECT_EQ(frame_runs, 2);
  EXPECT_EQ(x.unsafe_peek(), 2);
}

TEST(ReaderDirIntegration, OpenNestedChildDoesNotFlagOwnParent) {
  // The parent reads x, then an open-nested child writes and commits x.
  // The child's commit broadcast must skip its own CPU's stack: the parent
  // keeps running and commits on the first attempt, and its later read of x
  // sees the child's committed value.
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  Shared<int> x(0);
  int attempts = 0;
  int before = -1;
  int after = -1;
  eng.spawn([&] {
    atomically([&] {
      ++attempts;
      before = x.get();
      open_atomically([&] { x.set(3); });
      Runtime::current().work(50);
      after = x.get();
    });
  });
  eng.run();
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(before, 0);
  EXPECT_EQ(after, 3);  // open child's commit is visible to the parent
  EXPECT_EQ(eng.stats().cpu(0).violations, 0u);
}

TEST(ReaderDirIntegration, OpenNestedChildCommitFlagsOtherCpuReader) {
  // Same shape, but the reader is on another CPU: the child's commit must
  // flag it even though the child's parent is still speculative.
  sim::Engine eng(tcc_cfg(2));
  Runtime rt(eng);
  Shared<int> x(0);
  int attempts = 0;
  int final_read = -1;
  eng.spawn([&] {
    atomically([&] {
      ++attempts;
      final_read = x.get();
      Runtime::current().work(6000);
    });
  });
  eng.spawn([&] {
    Runtime::current().work(500);
    atomically([&] {
      open_atomically([&] { x.set(9); });
      Runtime::current().work(3000);  // parent still running after the child
    });
  });
  eng.run();
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(final_read, 9);
}

}  // namespace
}  // namespace atomos
