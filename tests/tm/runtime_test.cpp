// Unit tests for the Atomos/TCC-style TM runtime: atomicity, isolation,
// read-own-writes, conflict detection and retry, nesting semantics, commit
// and abort handlers, and program-directed abort.
#include "tm/runtime.h"

#include <gtest/gtest.h>

#include <vector>

#include "tm/shared.h"

namespace atomos {
namespace {

sim::Config tcc_cfg(int cpus) {
  sim::Config c;
  c.num_cpus = cpus;
  c.mode = sim::Mode::kTcc;
  return c;
}

TEST(RuntimeTest, CommitPublishesWrites) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  Shared<int> x(1);
  eng.spawn([&] {
    atomically([&] {
      x.set(5);
      EXPECT_EQ(x.get(), 5);  // read-own-write
    });
    EXPECT_EQ(x.get(), 5);  // committed
  });
  eng.run();
  EXPECT_EQ(x.unsafe_peek(), 5);
  EXPECT_EQ(eng.stats().cpu(0).commits, 1u);
}

TEST(RuntimeTest, SpeculativeWritesInvisibleToOthers) {
  sim::Engine eng(tcc_cfg(2));
  Runtime rt(eng);
  Shared<int> x(0);
  Shared<int> flag(0);
  int seen_by_1 = -1;
  eng.spawn([&] {
    atomically([&] {
      x.set(99);
      // Run long enough that CPU1 reads while we are still speculative.
      Runtime::current().work(1000);
    });
  });
  eng.spawn([&] {
    Runtime::current().work(100);  // land mid-transaction of CPU0
    seen_by_1 = atomically([&] { return x.get(); });
    (void)flag;
  });
  eng.run();
  EXPECT_EQ(seen_by_1, 0);  // isolation: buffered write was not visible
  EXPECT_EQ(x.unsafe_peek(), 99);
}

TEST(RuntimeTest, ConflictingReaderIsViolatedAndRetries) {
  sim::Engine eng(tcc_cfg(2));
  Runtime rt(eng);
  Shared<int> x(0);
  int attempts = 0;
  int final_read = -1;
  // CPU0: long transaction that reads x early, then works; CPU1 commits a
  // write to x in the middle -> CPU0 must be violated and re-execute.
  eng.spawn([&] {
    atomically([&] {
      ++attempts;
      final_read = x.get();
      Runtime::current().work(5000);
    });
  });
  eng.spawn([&] {
    Runtime::current().work(500);
    atomically([&] { x.set(7); });
  });
  eng.run();
  EXPECT_GE(attempts, 2);
  EXPECT_EQ(final_read, 7);  // the retry saw the committed value
  EXPECT_GE(eng.stats().cpu(0).violations, 1u);
  EXPECT_GT(eng.stats().cpu(0).lost_cycles, 0u);
}

TEST(RuntimeTest, DisjointWritesDoNotConflict) {
  sim::Engine eng(tcc_cfg(2));
  Runtime rt(eng);
  // Separate heap allocations land on distinct cache lines.
  auto a = std::make_unique<Shared<int>>(0);
  auto pad = std::make_unique<std::array<char, 256>>();
  auto b = std::make_unique<Shared<int>>(0);
  (void)pad;
  eng.spawn([&] {
    atomically([&] {
      a->set(1);
      Runtime::current().work(1000);
    });
  });
  eng.spawn([&] {
    atomically([&] {
      b->set(2);
      Runtime::current().work(1000);
    });
  });
  eng.run();
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::violations), 0u);
  EXPECT_EQ(a->unsafe_peek(), 1);
  EXPECT_EQ(b->unsafe_peek(), 2);
}

TEST(RuntimeTest, AtomicityUnderContention) {
  // Classic counter test: N CPUs x K increments inside transactions must
  // total exactly N*K despite violations.
  constexpr int kCpus = 8;
  constexpr int kIncs = 25;
  sim::Engine eng(tcc_cfg(kCpus));
  Runtime rt(eng);
  Shared<long> counter(0);
  for (int c = 0; c < kCpus; ++c) {
    eng.spawn([&] {
      for (int i = 0; i < kIncs; ++i) {
        atomically([&] { counter.set(counter.get() + 1); });
      }
    });
  }
  eng.run();
  EXPECT_EQ(counter.unsafe_peek(), static_cast<long>(kCpus) * kIncs);
}

TEST(RuntimeTest, ClosedNestingPartialRollback) {
  // A nested frame reads y (written by the other CPU); only the frame
  // retries, the parent's earlier side effect (recorded attempts) shows the
  // parent body ran once.
  sim::Engine eng(tcc_cfg(2));
  Runtime rt(eng);
  Shared<int> y(0);
  int parent_runs = 0;
  int frame_runs = 0;
  int seen = -1;
  eng.spawn([&] {
    atomically([&] {
      ++parent_runs;
      Runtime::current().work(100);
      atomically([&] {  // closed-nested frame
        ++frame_runs;
        seen = y.get();
        Runtime::current().work(4000);
      });
    });
  });
  eng.spawn([&] {
    Runtime::current().work(600);  // inside the nested frame's window
    atomically([&] { y.set(3); });
  });
  eng.run();
  EXPECT_EQ(parent_runs, 1);   // parent never re-ran
  EXPECT_GE(frame_runs, 2);    // the frame did
  EXPECT_EQ(seen, 3);
  EXPECT_GE(eng.stats().cpu(0).nested_violations, 1u);
}

TEST(RuntimeTest, ParentReadConflictRestartsWholeTransaction) {
  // The parent itself read y before entering the frame: a conflicting commit
  // must restart the parent, not just the frame.
  sim::Engine eng(tcc_cfg(2));
  Runtime rt(eng);
  Shared<int> y(0);
  int parent_runs = 0;
  eng.spawn([&] {
    atomically([&] {
      ++parent_runs;
      (void)y.get();
      Runtime::current().work(100);
      atomically([&] { Runtime::current().work(4000); });
    });
  });
  eng.spawn([&] {
    Runtime::current().work(600);
    atomically([&] { y.set(3); });
  });
  eng.run();
  EXPECT_GE(parent_runs, 2);
}

TEST(RuntimeTest, NestedFrameWritesRollBackWithFrame) {
  // A user exception aborts the frame; its buffered writes must vanish while
  // the parent's survive.
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  Shared<int> x(0);
  Shared<int> z(0);
  eng.spawn([&] {
    atomically([&] {
      x.set(1);
      try {
        atomically([&] {
          z.set(42);
          x.set(100);
          throw std::runtime_error("frame fails");
        });
      } catch (const std::runtime_error&) {
      }
      EXPECT_EQ(z.get(), 0);  // frame write rolled back
      EXPECT_EQ(x.get(), 1);  // parent's shadowed value restored
    });
  });
  eng.run();
  EXPECT_EQ(x.unsafe_peek(), 1);
  EXPECT_EQ(z.unsafe_peek(), 0);
}

TEST(RuntimeTest, OpenNestedCommitsImmediatelyAndDropsDependencies) {
  sim::Engine eng(tcc_cfg(2));
  Runtime rt(eng);
  Shared<int> counter(0);
  Shared<int> data(0);
  int observed = -1;
  eng.spawn([&] {
    atomically([&] {
      open_atomically([&] { counter.set(counter.get() + 1); });
      Runtime::current().work(5000);  // long tail: CPU1 acts meanwhile
      data.set(1);
    });
  });
  eng.spawn([&] {
    Runtime::current().work(800);
    observed = atomically([&] { return counter.get(); });
    // Committing a write to `counter` must NOT violate CPU0: its open child
    // already committed and its read/write dependencies were discarded.
    atomically([&] { counter.set(counter.get() + 10); });
  });
  eng.run();
  EXPECT_EQ(observed, 1);  // open-nested result visible pre-parent-commit
  EXPECT_EQ(counter.unsafe_peek(), 11);
  EXPECT_EQ(eng.stats().cpu(0).violations, 0u);
  EXPECT_EQ(data.unsafe_peek(), 1);
  EXPECT_GE(eng.stats().cpu(0).open_commits, 1u);
}

TEST(RuntimeTest, OpenChildSeesParentBufferedWrites) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  Shared<int> x(0);
  int seen = -1;
  eng.spawn([&] {
    atomically([&] {
      x.set(9);
      open_atomically([&] { seen = x.get(); });
    });
  });
  eng.run();
  EXPECT_EQ(seen, 9);
}

TEST(RuntimeTest, CommitHandlerRunsOnCommitOnly) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  Shared<int> x(0);
  int commits = 0, aborts = 0;
  eng.spawn([&] {
    atomically([&] {
      x.set(1);
      on_commit([&] { ++commits; });
      on_abort([&] { ++aborts; });
    });
  });
  eng.run();
  EXPECT_EQ(commits, 1);
  EXPECT_EQ(aborts, 0);
}

TEST(RuntimeTest, AbortHandlerRunsOnEachAbort) {
  sim::Engine eng(tcc_cfg(2));
  Runtime rt(eng);
  Shared<int> x(0);
  int aborts = 0;
  int attempts = 0;
  eng.spawn([&] {
    atomically([&] {
      ++attempts;
      on_abort([&] { ++aborts; });
      (void)x.get();
      Runtime::current().work(5000);
    });
  });
  eng.spawn([&] {
    Runtime::current().work(500);
    atomically([&] { x.set(1); });
  });
  eng.run();
  EXPECT_GE(attempts, 2);
  EXPECT_EQ(aborts, attempts - 1);  // every aborted attempt compensated once
}

TEST(RuntimeTest, HandlersOfAbortedNestedFrameAreDiscarded) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  int commit_runs = 0, abort_runs = 0;
  eng.spawn([&] {
    atomically([&] {
      try {
        atomically([&] {
          on_commit([&] { ++commit_runs; });
          on_abort([&] { ++abort_runs; });
          throw std::runtime_error("abort the frame");
        });
      } catch (const std::runtime_error&) {
      }
    });
  });
  eng.run();
  EXPECT_EQ(commit_runs, 0);  // discarded with the frame, not run at commit
  EXPECT_EQ(abort_runs, 0);   // "discarded without executing" (paper S4)
}

TEST(RuntimeTest, OpenChildHandlersTransferToParent) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  std::vector<int> order;
  eng.spawn([&] {
    atomically([&] {
      open_atomically([&] { on_commit([&] { order.push_back(1); }); });
      on_commit([&] { order.push_back(2); });
    });
  });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // ran at PARENT commit, in order
}

TEST(RuntimeTest, ProgramDirectedAbort) {
  sim::Engine eng(tcc_cfg(2));
  Runtime rt(eng);
  TxnId victim_id;
  bool id_captured = false;
  int victim_attempts = 0;
  bool killed_ok = false;
  eng.spawn([&] {
    atomically([&] {
      ++victim_attempts;
      victim_id = self_id();
      id_captured = true;
      Runtime::current().work(5000);
    });
  });
  eng.spawn([&] {
    Runtime::current().work(500);
    EXPECT_TRUE(id_captured);
    killed_ok = violate(victim_id);
  });
  eng.run();
  EXPECT_TRUE(killed_ok);
  EXPECT_GE(victim_attempts, 2);
  EXPECT_GE(eng.stats().cpu(0).semantic_violations, 1u);
}

TEST(RuntimeTest, ViolateStaleIncarnationFails) {
  sim::Engine eng(tcc_cfg(2));
  Runtime rt(eng);
  TxnId old_id;
  bool captured = false;
  bool result = true;
  eng.spawn([&] {
    atomically([&] { old_id = self_id(); captured = true; });
    Runtime::current().work(4000);  // stay alive while CPU1 tries the kill
  });
  eng.spawn([&] {
    Runtime::current().work(1000);  // after CPU0's transaction committed
    EXPECT_TRUE(captured);
    result = violate(old_id);
  });
  eng.run();
  EXPECT_FALSE(result);  // incarnation retired: kill must not land
}

TEST(RuntimeTest, TxNewRolledBackOnAbortTxDeleteDeferred) {
  static int live = 0;
  struct Obj {
    Obj() { ++live; }
    ~Obj() { --live; }
  };
  sim::Engine eng(tcc_cfg(1));
  {
    Runtime rt(eng);
    eng.spawn([&] {
    // Aborted allocation: destroyed.
    try {
      atomically([&] {
        (void)tx_new<Obj>();
        throw std::runtime_error("abort");
      });
    } catch (const std::runtime_error&) {
    }
    EXPECT_EQ(live, 0);
    // Committed allocation + committed delete: gone after quiescence.
    Obj* o = nullptr;
    atomically([&] { o = tx_new<Obj>(); });
      EXPECT_EQ(live, 1);
      atomically([&] { tx_delete(o); });
    });
    eng.run();
  }
  EXPECT_EQ(live, 0);

  // Aborted delete: object survives.
  sim::Engine eng2(tcc_cfg(1));
  {
    Runtime rt2(eng2);
    Obj* o2 = new Obj();
    eng2.spawn([&] {
      try {
        atomically([&] {
          tx_delete(o2);
          throw std::runtime_error("abort");
        });
      } catch (const std::runtime_error&) {
      }
      EXPECT_EQ(live, 1);
      atomically([&] { tx_delete(o2); });
    });
    eng2.run();
  }
  EXPECT_EQ(live, 0);
}

TEST(RuntimeTest, LockModeIsPassthrough) {
  sim::Config cfg = tcc_cfg(1);
  cfg.mode = sim::Mode::kLock;
  sim::Engine eng(cfg);
  Runtime rt(eng);
  Shared<int> x(0);
  int commit_runs = 0;
  eng.spawn([&] {
    atomically([&] {
      x.set(4);
      on_commit([&] { ++commit_runs; });
      EXPECT_EQ(x.get(), 4);
    });
  });
  eng.run();
  EXPECT_EQ(x.unsafe_peek(), 4);
  EXPECT_EQ(commit_runs, 1);
}

TEST(RuntimeTest, UserExceptionAbortsAndPropagates) {
  sim::Engine eng(tcc_cfg(1));
  Runtime rt(eng);
  Shared<int> x(0);
  bool caught = false;
  eng.spawn([&] {
    try {
      atomically([&] {
        x.set(123);
        throw std::runtime_error("user error");
      });
    } catch (const std::runtime_error&) {
      caught = true;
    }
  });
  eng.run();
  EXPECT_TRUE(caught);
  EXPECT_EQ(x.unsafe_peek(), 0);  // aborted: nothing published
}

TEST(RuntimeTest, SerializedCommitsAreTotalOrder) {
  // Two read-modify-write transactions racing on the same cell: exactly one
  // violates, none is lost (x ends at 2).
  sim::Engine eng(tcc_cfg(2));
  Runtime rt(eng);
  Shared<int> x(0);
  for (int c = 0; c < 2; ++c) {
    eng.spawn([&] {
      atomically([&] {
        int v = x.get();
        Runtime::current().work(200);
        x.set(v + 1);
      });
    });
  }
  eng.run();
  EXPECT_EQ(x.unsafe_peek(), 2);
}

TEST(RuntimeTest, DeterministicViolationCounts) {
  auto run_once = [] {
    sim::Engine eng(tcc_cfg(4));
    Runtime rt(eng);
    Shared<long> c(0);
    for (int i = 0; i < 4; ++i) {
      eng.spawn([&] {
        for (int k = 0; k < 10; ++k)
          atomically([&] {
            c.set(c.get() + 1);
            Runtime::current().work(97);
          });
      });
    }
    eng.run();
    return std::pair(eng.elapsed_cycles(), eng.stats().total(&sim::CpuStats::violations));
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace atomos
