// Transaction chopping (tm/chop.h): piece execution, forward-dependency
// tracking, compensation-and-restart, and the degraded in-transaction /
// lock-mode paths.
#include "tm/chop.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "tm/runtime.h"
#include "tm/shared.h"

namespace atomos {
namespace {

sim::Config cfg(int cpus, sim::Mode mode = sim::Mode::kTcc) {
  sim::Config c;
  c.num_cpus = cpus;
  c.mode = mode;
  return c;
}

TEST(Chop, RunsPiecesInRankOrderAndCommitsEach) {
  sim::Engine eng(cfg(1));
  Runtime rt(eng);
  Shared<int> a(0), b(0);
  std::vector<int> order;
  eng.spawn([&] {
    chopped()
        .piece("first",
               [&] {
                 order.push_back(1);
                 a.set(a.get() + 1);
               })
        .piece("second",
               [&] {
                 order.push_back(2);
                 b.set(a.get() + 10);  // reads the first piece's commit
               })
        .run();
  });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(a.unsafe_peek(), 1);
  EXPECT_EQ(b.unsafe_peek(), 11);
  // Each piece committed as its own top-level transaction.
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::commits), 2u);
  EXPECT_EQ(rt.chop_stats().chops, 1u);
  EXPECT_EQ(rt.chop_stats().pieces, 2u);
  EXPECT_EQ(rt.chop_stats().dep_breaks, 0u);
  EXPECT_EQ(rt.chop_stats().restarts, 0u);
}

TEST(Chop, ExplicitRanksMustIncrease) {
  Chop c;
  c.piece(10, "a", [] {});
  EXPECT_THROW(c.piece(10, "b", [] {}), std::logic_error);
  EXPECT_THROW(c.piece(3, "c", [] {}), std::logic_error);
  c.piece(20, "d", [] {});  // strictly increasing: fine
}

// A foreign commit touching an earlier piece's footprint between pieces is
// a forward-dependency break.  Under kRanked it is counted and the chop
// completes; the final state reflects the interleaving.
TEST(Chop, RankedPolicyCountsForwardDependencyBreaks) {
  sim::Engine eng(cfg(2));
  Runtime rt(eng);
  Shared<long> x(0);   // read by piece 0, written by the intruder
  Shared<long> y(-1);  // written by piece 1
  eng.spawn([&] {
    chopped(ChopPolicy::kRanked)
        .piece("read-x",
               [&] {
                 (void)x.get();
                 work(50);
               })
        .piece("gap", [&] { work(3000); })  // intruder commits in here
        .piece("write-y", [&] { y.set(x.get()); })
        .run();
  });
  eng.spawn([&] {
    Runtime::current().work(500);
    atomically([&] { x.set(7); });  // lands between chop pieces
  });
  eng.run();
  EXPECT_EQ(rt.chop_stats().chops, 1u);
  EXPECT_GE(rt.chop_stats().dep_breaks, 1u);
  EXPECT_EQ(rt.chop_stats().restarts, 0u);
  EXPECT_EQ(y.unsafe_peek(), 7);  // ranked chop read the intruder's commit
}

// Under kValidated the same interleaving compensates the committed prefix
// (in reverse) and restarts the chop from its first piece.
TEST(Chop, ValidatedPolicyCompensatesAndRestarts) {
  sim::Engine eng(cfg(2));
  Runtime rt(eng);
  Shared<long> x(0);
  Shared<long> ledger(0);  // piece 0 "charges" 5; compensation refunds it
  std::vector<std::string> events;
  eng.spawn([&] {
    chopped(ChopPolicy::kValidated)
        .piece("charge",
               [&] {
                 (void)x.get();
                 ledger.set(ledger.get() + 5);
                 events.push_back("charge");
               },
               /*compensate=*/
               [&] {
                 ledger.set(ledger.get() - 5);
                 events.push_back("refund");
               })
        .piece("gap", [&] { work(3000); })
        .piece("finish", [&] { events.push_back("finish"); })
        .run();
  });
  eng.spawn([&] {
    Runtime::current().work(500);
    atomically([&] { x.set(7); });
  });
  eng.run();
  EXPECT_EQ(rt.chop_stats().restarts, 1u);
  EXPECT_EQ(rt.chop_stats().compensations, 1u);
  EXPECT_GE(rt.chop_stats().dep_breaks, 1u);
  EXPECT_EQ(rt.chop_stats().chops, 1u);
  // charge -> refund (compensated restart) -> charge -> finish.
  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events[0], "charge");
  EXPECT_EQ(events[1], "refund");
  EXPECT_EQ(events.back(), "finish");
  EXPECT_EQ(ledger.unsafe_peek(), 5);  // exactly one net charge survived
}

// A piece body throwing undoes the committed prefix before propagating:
// the chop is all-or-nothing at the semantic level.
TEST(Chop, ThrowingPieceCompensatesCommittedPrefix) {
  sim::Engine eng(cfg(1));
  Runtime rt(eng);
  Shared<long> ledger(0);
  bool compensated = false, threw = false;
  eng.spawn([&] {
    try {
      chopped()
          .piece("charge", [&] { ledger.set(ledger.get() + 5); },
                 /*compensate=*/
                 [&] {
                   ledger.set(ledger.get() - 5);
                   compensated = true;
                 })
          .piece("boom", [&] { throw std::runtime_error("piece failed"); })
          .run();
    } catch (const std::runtime_error&) {
      threw = true;
    }
  });
  eng.run();
  EXPECT_TRUE(threw);
  EXPECT_TRUE(compensated);
  EXPECT_EQ(ledger.unsafe_peek(), 0);
  EXPECT_EQ(rt.chop_stats().chops, 0u);  // never completed
  EXPECT_EQ(rt.chop_stats().compensations, 1u);
}

// Inside an enclosing transaction a chop degrades to closed-nested frames:
// nothing commits early, so an enclosing abort rolls everything back and
// compensations never run.
TEST(Chop, DegradesToFramesInsideEnclosingTransaction) {
  sim::Engine eng(cfg(1));
  Runtime rt(eng);
  Shared<long> v(0);
  bool compensated = false;
  eng.spawn([&] {
    try {
      atomically([&] {
        chopped()
            .piece("inner", [&] { v.set(41); },
                   [&] { compensated = true; })
            .piece("inner2", [&] { v.set(v.get() + 1); })
            .run();
        throw std::runtime_error("abort enclosing");
      });
    } catch (const std::runtime_error&) {
    }
  });
  eng.run();
  EXPECT_EQ(v.unsafe_peek(), 0);  // enclosing rollback covered the pieces
  EXPECT_FALSE(compensated);
  EXPECT_EQ(rt.chop_stats().pieces, 0u);  // no top-level piece commits
}

// Lock mode: plain calls, no transactions, still correct.
TEST(Chop, LockModeRunsPlainly) {
  sim::Engine eng(cfg(1, sim::Mode::kLock));
  Runtime rt(eng);
  Shared<long> v(0);
  eng.spawn([&] {
    chopped().piece("a", [&] { v.set(1); }).piece("b", [&] { v.set(v.get() + 1); }).run();
  });
  eng.run();
  EXPECT_EQ(v.unsafe_peek(), 2);
}

// The broadcast probe must not flag the chop's own CPU (its own pieces and
// compensations commit there), and an unrelated commit must not break it.
TEST(Chop, UnrelatedCommitsDoNotBreakTheChop) {
  sim::Engine eng(cfg(2));
  Runtime rt(eng);
  Shared<long> mine(0);
  Shared<long> pad[16]{};  // keep `other` off the chop's cache line
  Shared<long> other(0);
  (void)pad;
  eng.spawn([&] {
    chopped()
        .piece("p0", [&] { mine.set(mine.get() + 1); })
        .piece("gap", [&] { work(2000); })
        .piece("p1", [&] { mine.set(mine.get() + 1); })
        .run();
  });
  eng.spawn([&] {
    Runtime::current().work(300);
    atomically([&] { other.set(9); });  // disjoint footprint
  });
  eng.run();
  EXPECT_EQ(rt.chop_stats().dep_breaks, 0u);
  EXPECT_EQ(mine.unsafe_peek(), 2);
}

}  // namespace
}  // namespace atomos
