// jstd::TreeMap: functional tests, ordered iteration / range views,
// endpoints, and property-based red-black invariant checking against
// std::map under randomized operation sequences.
#include "jstd/treemap.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

namespace jstd {
namespace {

TEST(TreeMapTest, PutGetRemoveBasics) {
  TreeMap<long, long> m;
  EXPECT_EQ(m.size(), 0);
  EXPECT_EQ(m.put(5, 50), std::nullopt);
  EXPECT_EQ(m.put(3, 30), std::nullopt);
  EXPECT_EQ(m.put(8, 80), std::nullopt);
  EXPECT_EQ(m.size(), 3);
  EXPECT_EQ(m.get(3), 30);
  EXPECT_EQ(m.put(3, 31), 30);
  EXPECT_EQ(m.remove(5), 50);
  EXPECT_EQ(m.get(5), std::nullopt);
  EXPECT_EQ(m.size(), 2);
  EXPECT_TRUE(m.check_invariants());
}

TEST(TreeMapTest, FirstAndLastKey) {
  TreeMap<long, long> m;
  EXPECT_EQ(m.first_key(), std::nullopt);
  EXPECT_EQ(m.last_key(), std::nullopt);
  for (long k : {42L, 7L, 99L, 1L, 65L}) m.put(k, k);
  EXPECT_EQ(m.first_key(), 1);
  EXPECT_EQ(m.last_key(), 99);
  m.remove(1);
  m.remove(99);
  EXPECT_EQ(m.first_key(), 7);
  EXPECT_EQ(m.last_key(), 65);
}

TEST(TreeMapTest, IterationIsInOrder) {
  TreeMap<long, long> m;
  std::mt19937 rng(11);
  for (int i = 0; i < 300; ++i) m.put(static_cast<long>(rng() % 1000), i);
  long prev = -1;
  long count = 0;
  for (auto it = m.iterator(); it->has_next();) {
    auto [k, v] = it->next();
    EXPECT_GT(k, prev);
    prev = k;
    ++count;
  }
  EXPECT_EQ(count, m.size());
}

TEST(TreeMapTest, RangeIteratorRespectsHalfOpenBounds) {
  TreeMap<long, long> m;
  for (long k = 0; k < 100; k += 2) m.put(k, k);  // evens 0..98
  std::vector<long> keys;
  for (auto it = m.range_iterator(10L, 20L); it->has_next();) keys.push_back(it->next().first);
  EXPECT_EQ(keys, (std::vector<long>{10, 12, 14, 16, 18}));
  // Bounds between keys.
  keys.clear();
  for (auto it = m.range_iterator(11L, 17L); it->has_next();) keys.push_back(it->next().first);
  EXPECT_EQ(keys, (std::vector<long>{12, 14, 16}));
  // Open bounds.
  keys.clear();
  for (auto it = m.range_iterator(std::nullopt, 6L); it->has_next();) keys.push_back(it->next().first);
  EXPECT_EQ(keys, (std::vector<long>{0, 2, 4}));
  keys.clear();
  for (auto it = m.range_iterator(94L, std::nullopt); it->has_next();) keys.push_back(it->next().first);
  EXPECT_EQ(keys, (std::vector<long>{94, 96, 98}));
  // Empty range.
  EXPECT_FALSE(m.range_iterator(50L, 50L)->has_next());
  EXPECT_FALSE(m.range_iterator(1000L, std::nullopt)->has_next());
}

TEST(TreeMapTest, AscendingInsertStaysBalanced) {
  // The classic degenerate input for an unbalanced BST.
  TreeMap<long, long> m;
  for (long k = 0; k < 2048; ++k) {
    m.put(k, k);
    if (k % 256 == 0) ASSERT_TRUE(m.check_invariants()) << "at k=" << k;
  }
  EXPECT_TRUE(m.check_invariants());
  EXPECT_EQ(m.size(), 2048);
}

TEST(TreeMapTest, DescendingRemovalKeepsInvariants) {
  TreeMap<long, long> m;
  for (long k = 0; k < 512; ++k) m.put(k, k);
  for (long k = 511; k >= 0; --k) {
    EXPECT_EQ(m.remove(k), k);
    if (k % 64 == 0) ASSERT_TRUE(m.check_invariants()) << "at k=" << k;
  }
  EXPECT_EQ(m.size(), 0);
}

TEST(TreeMapTest, CustomComparator) {
  TreeMap<long, long, std::greater<long>> m;
  for (long k : {1L, 5L, 3L}) m.put(k, k);
  EXPECT_EQ(m.first_key(), 5);  // "first" under the reversed order
  EXPECT_EQ(m.last_key(), 1);
  std::vector<long> keys;
  for (auto it = m.iterator(); it->has_next();) keys.push_back(it->next().first);
  EXPECT_EQ(keys, (std::vector<long>{5, 3, 1}));
}

class TreeMapModelTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(TreeMapModelTest, MatchesStdMapAndKeepsRedBlackInvariants) {
  std::mt19937 rng(GetParam());
  TreeMap<long, long> m;
  std::map<long, long> oracle;
  for (int step = 0; step < 2500; ++step) {
    const long key = static_cast<long>(rng() % 300);
    switch (rng() % 5) {
      case 0:
      case 1: {
        const long v = static_cast<long>(rng());
        auto prev = oracle.find(key);
        auto expect = prev == oracle.end() ? std::nullopt : std::optional<long>(prev->second);
        EXPECT_EQ(m.put(key, v), expect);
        oracle[key] = v;
        break;
      }
      case 2: {
        auto prev = oracle.find(key);
        auto expect = prev == oracle.end() ? std::nullopt : std::optional<long>(prev->second);
        EXPECT_EQ(m.remove(key), expect);
        oracle.erase(key);
        break;
      }
      case 3: {
        auto prev = oracle.find(key);
        auto expect = prev == oracle.end() ? std::nullopt : std::optional<long>(prev->second);
        EXPECT_EQ(m.get(key), expect);
        break;
      }
      case 4: {
        auto first = oracle.empty() ? std::nullopt : std::optional<long>(oracle.begin()->first);
        auto last = oracle.empty() ? std::nullopt : std::optional<long>(oracle.rbegin()->first);
        EXPECT_EQ(m.first_key(), first);
        EXPECT_EQ(m.last_key(), last);
        break;
      }
    }
    if (step % 100 == 0) ASSERT_TRUE(m.check_invariants()) << "step " << step;
  }
  ASSERT_TRUE(m.check_invariants());
  EXPECT_EQ(m.size(), static_cast<long>(oracle.size()));
  auto it = m.iterator();
  for (const auto& [k, v] : oracle) {
    ASSERT_TRUE(it->has_next());
    auto [mk, mv] = it->next();
    EXPECT_EQ(mk, k);
    EXPECT_EQ(mv, v);
  }
  EXPECT_FALSE(it->has_next());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeMapModelTest, ::testing::Range(1u, 13u));

}  // namespace
}  // namespace jstd
