// jstd::HashMap: functional tests plus randomized model-checking against
// std::unordered_map, and resize behaviour.
#include "jstd/hashmap.h"

#include <gtest/gtest.h>

#include <random>
#include <unordered_map>

namespace jstd {
namespace {

TEST(HashMapTest, PutGetRemoveBasics) {
  HashMap<long, long> m;
  EXPECT_EQ(m.size(), 0);
  EXPECT_TRUE(m.is_empty());
  EXPECT_EQ(m.get(1), std::nullopt);
  EXPECT_EQ(m.put(1, 10), std::nullopt);
  EXPECT_EQ(m.put(2, 20), std::nullopt);
  EXPECT_EQ(m.size(), 2);
  EXPECT_FALSE(m.is_empty());
  EXPECT_EQ(m.get(1), 10);
  EXPECT_EQ(m.put(1, 11), 10);  // old value returned
  EXPECT_EQ(m.get(1), 11);
  EXPECT_EQ(m.size(), 2);
  EXPECT_TRUE(m.contains_key(2));
  EXPECT_EQ(m.remove(2), 20);
  EXPECT_FALSE(m.contains_key(2));
  EXPECT_EQ(m.remove(2), std::nullopt);
  EXPECT_EQ(m.size(), 1);
}

TEST(HashMapTest, CollidingKeysChainCorrectly) {
  struct BadHash {
    std::size_t operator()(long) const { return 42; }  // everything collides
  };
  HashMap<long, long, BadHash> m(4);
  for (long k = 0; k < 50; ++k) EXPECT_EQ(m.put(k, k * 2), std::nullopt);
  EXPECT_EQ(m.size(), 50);
  for (long k = 0; k < 50; ++k) EXPECT_EQ(m.get(k), k * 2);
  for (long k = 0; k < 50; k += 2) EXPECT_EQ(m.remove(k), k * 2);
  EXPECT_EQ(m.size(), 25);
  for (long k = 0; k < 50; ++k) {
    EXPECT_EQ(m.get(k), (k % 2 == 0) ? std::nullopt : std::optional<long>(k * 2));
  }
}

TEST(HashMapTest, ResizeGrowsTableAndPreservesEntries) {
  HashMap<long, long> m(4, 0.75F);
  const std::size_t before = m.bucket_count();
  for (long k = 0; k < 100; ++k) m.put(k, k);
  EXPECT_GT(m.bucket_count(), before);
  EXPECT_EQ(m.size(), 100);
  for (long k = 0; k < 100; ++k) EXPECT_EQ(m.get(k), k);
}

TEST(HashMapTest, IteratorVisitsEveryEntryExactlyOnce) {
  HashMap<long, long> m;
  for (long k = 0; k < 64; ++k) m.put(k, k + 1000);
  std::unordered_map<long, long> seen;
  for (auto it = m.iterator(); it->has_next();) {
    auto [k, v] = it->next();
    EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate key " << k;
  }
  EXPECT_EQ(seen.size(), 64u);
  for (long k = 0; k < 64; ++k) EXPECT_EQ(seen[k], k + 1000);
}

TEST(HashMapTest, IteratorOnEmptyMap) {
  HashMap<long, long> m;
  EXPECT_FALSE(m.iterator()->has_next());
}

class HashMapModelTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(HashMapModelTest, MatchesStdUnorderedMap) {
  std::mt19937 rng(GetParam());
  HashMap<long, long> m(4);  // small: exercises chains and resize
  std::unordered_map<long, long> oracle;
  for (int step = 0; step < 3000; ++step) {
    const long key = static_cast<long>(rng() % 200);
    switch (rng() % 4) {
      case 0:
      case 1: {  // put
        const long v = static_cast<long>(rng());
        auto prev = oracle.find(key);
        auto expect = prev == oracle.end() ? std::nullopt : std::optional<long>(prev->second);
        EXPECT_EQ(m.put(key, v), expect);
        oracle[key] = v;
        break;
      }
      case 2: {  // remove
        auto prev = oracle.find(key);
        auto expect = prev == oracle.end() ? std::nullopt : std::optional<long>(prev->second);
        EXPECT_EQ(m.remove(key), expect);
        oracle.erase(key);
        break;
      }
      case 3: {  // get + size
        auto prev = oracle.find(key);
        auto expect = prev == oracle.end() ? std::nullopt : std::optional<long>(prev->second);
        EXPECT_EQ(m.get(key), expect);
        EXPECT_EQ(m.size(), static_cast<long>(oracle.size()));
        break;
      }
    }
  }
  EXPECT_EQ(m.size(), static_cast<long>(oracle.size()));
  for (const auto& [k, v] : oracle) EXPECT_EQ(m.get(k), v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashMapModelTest, ::testing::Range(1u, 9u));

}  // namespace
}  // namespace jstd
