// Demonstrates (as executable documentation) the paper's Section 2.4
// pathology: semantically independent operations on java.util-shaped
// structures conflict at the *memory* level inside long transactions —
// on the HashMap size field, and on TreeMap rebalancing writes — while the
// structures stay perfectly linearizable.
#include <gtest/gtest.h>

#include "jstd/concurrenthashmap.h"
#include "jstd/hashmap.h"
#include "jstd/treemap.h"
#include "tm/runtime.h"

namespace jstd {
namespace {

sim::Config tcc_cfg(int cpus) {
  sim::Config c;
  c.num_cpus = cpus;
  c.mode = sim::Mode::kTcc;
  return c;
}

TEST(ConflictsTest, HashMapInsertsOfDifferentKeysConflictOnSizeField) {
  // Two long transactions insert DIFFERENT keys: semantically commutative,
  // yet at least one must be violated because both increment `size`.
  sim::Engine eng(tcc_cfg(2));
  atomos::Runtime rt(eng);
  HashMap<long, long> map(1024);  // big table: no bucket collision, only size
  for (int c = 0; c < 2; ++c) {
    eng.spawn([&, c] {
      atomos::atomically([&] {
        map.put(1000 + c, c);           // disjoint keys
        atomos::Runtime::current().work(3000);  // long transaction tail
      });
    });
  }
  eng.run();
  EXPECT_GE(eng.stats().total(&sim::CpuStats::violations), 1u);
  EXPECT_EQ(map.size(), 2);  // still atomic and correct
}

TEST(ConflictsTest, HashMapReadOnlyTransactionsDoNotConflict) {
  sim::Engine eng(tcc_cfg(4));
  atomos::Runtime rt(eng);
  HashMap<long, long> map(1024);
  for (long k = 0; k < 100; ++k) map.put(k, k);
  for (int c = 0; c < 4; ++c) {
    eng.spawn([&, c] {
      atomos::atomically([&] {
        for (long i = 0; i < 20; ++i) EXPECT_EQ(map.get((c * 17 + i) % 100), (c * 17 + i) % 100);
        atomos::Runtime::current().work(2000);
      });
    });
  }
  eng.run();
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::violations), 0u);
}

TEST(ConflictsTest, TreeMapDisjointInsertsConflictViaRebalancing) {
  // Keys land in different subtrees, but insert fix-up recolours/rotates on
  // shared ancestors, so long transactions still collide (paper Figure 2).
  sim::Engine eng(tcc_cfg(2));
  atomos::Runtime rt(eng);
  TreeMap<long, long> map;
  for (long k = 0; k < 64; ++k) map.put(k * 10, k);  // prepopulated tree
  for (int c = 0; c < 2; ++c) {
    eng.spawn([&, c] {
      atomos::atomically([&] {
        // Far-apart keys: one low, one high.
        map.put(c == 0 ? 5L : 635L, 1);
        atomos::Runtime::current().work(3000);
      });
    });
  }
  eng.run();
  EXPECT_GE(eng.stats().total(&sim::CpuStats::violations), 1u);
  EXPECT_TRUE(map.check_invariants());
}

TEST(ConflictsTest, SegmentedMapReducesButKeepsSizeConflictsWithinSegments) {
  // Section 2.4: segmentation reduces the *chance* of conflict; two inserts
  // that land in the same segment still collide on that segment's size.
  sim::Engine eng(tcc_cfg(2));
  atomos::Runtime rt(eng);
  ConcurrentHashMap<long, long> map(4, 64);
  // Probe for two distinct keys that share a segment: with 4 segments,
  // keys k and k+4... segment selection uses the spread hash, so probe.
  // Writing the same key from both CPUs guarantees a same-segment conflict.
  for (int c = 0; c < 2; ++c) {
    eng.spawn([&, c] {
      atomos::atomically([&] {
        map.put(777, c);
        atomos::Runtime::current().work(3000);
      });
    });
  }
  eng.run();
  EXPECT_GE(eng.stats().total(&sim::CpuStats::violations), 1u);
}

TEST(ConflictsTest, MapsRemainLinearizableUnderHeavyContention) {
  // Correctness backstop: randomized concurrent puts/removes over a small
  // key space; afterwards the map must equal a sequential replay oracle?
  // Replay is not deterministic, so assert internal consistency instead:
  // every surviving key maps to a value some transaction wrote, and size()
  // equals the number of iterable entries.
  sim::Engine eng(tcc_cfg(8));
  atomos::Runtime rt(eng);
  HashMap<long, long> map(64);
  for (int c = 0; c < 8; ++c) {
    eng.spawn([&, c] {
      std::uint64_t s = 12345 + static_cast<std::uint64_t>(c);
      for (int i = 0; i < 40; ++i) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        const long key = static_cast<long>((s >> 33) % 32);
        atomos::atomically([&] {
          if (s % 3 == 0) {
            map.remove(key);
          } else {
            map.put(key, key * 100);
          }
        });
      }
    });
  }
  eng.run();
  long iterated = 0;
  for (auto it = map.iterator(); it->has_next();) {
    auto [k, v] = it->next();
    EXPECT_EQ(v, k * 100);
    ++iterated;
  }
  EXPECT_EQ(iterated, map.size());
}

TEST(ConflictsTest, TreeMapLinearizableUnderContention) {
  sim::Engine eng(tcc_cfg(8));
  atomos::Runtime rt(eng);
  TreeMap<long, long> map;
  for (int c = 0; c < 8; ++c) {
    eng.spawn([&, c] {
      std::uint64_t s = 999 + static_cast<std::uint64_t>(c);
      for (int i = 0; i < 30; ++i) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        const long key = static_cast<long>((s >> 33) % 48);
        atomos::atomically([&] {
          if (s % 3 == 0) {
            map.remove(key);
          } else {
            map.put(key, key);
          }
        });
      }
    });
  }
  eng.run();
  EXPECT_TRUE(map.check_invariants());
}

}  // namespace
}  // namespace jstd
