// jstd::LinkedQueue: FIFO behaviour, peek/poll semantics, and a randomized
// model test against std::deque.
#include "jstd/linkedqueue.h"

#include <gtest/gtest.h>

#include <deque>
#include <random>

namespace jstd {
namespace {

TEST(LinkedQueueTest, FifoOrder) {
  LinkedQueue<long> q;
  EXPECT_TRUE(q.is_empty());
  EXPECT_EQ(q.poll(), std::nullopt);
  EXPECT_EQ(q.peek(), std::nullopt);
  for (long i = 0; i < 10; ++i) q.put(i);
  EXPECT_EQ(q.size(), 10);
  for (long i = 0; i < 10; ++i) {
    EXPECT_EQ(q.peek(), i);
    EXPECT_EQ(q.poll(), i);
  }
  EXPECT_TRUE(q.is_empty());
}

TEST(LinkedQueueTest, InterleavedPutPoll) {
  LinkedQueue<long> q;
  q.put(1);
  q.put(2);
  EXPECT_EQ(q.poll(), 1);
  q.put(3);
  EXPECT_EQ(q.poll(), 2);
  EXPECT_EQ(q.poll(), 3);
  EXPECT_EQ(q.poll(), std::nullopt);
  q.put(4);  // reusable after drain
  EXPECT_EQ(q.poll(), 4);
}

class LinkedQueueModelTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LinkedQueueModelTest, MatchesStdDeque) {
  std::mt19937 rng(GetParam());
  LinkedQueue<long> q;
  std::deque<long> oracle;
  for (int step = 0; step < 5000; ++step) {
    if (rng() % 2 == 0) {
      const long v = static_cast<long>(rng());
      q.put(v);
      oracle.push_back(v);
    } else {
      auto expect = oracle.empty() ? std::nullopt : std::optional<long>(oracle.front());
      EXPECT_EQ(q.peek(), expect);
      EXPECT_EQ(q.poll(), expect);
      if (!oracle.empty()) oracle.pop_front();
    }
    EXPECT_EQ(q.size(), static_cast<long>(oracle.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkedQueueModelTest, ::testing::Range(1u, 6u));

}  // namespace
}  // namespace jstd
