// jstd::SkipListMap: SortedMap contract tests, randomized model checking
// against std::map, and interchangeability with TreeMap under the
// TransactionalSortedMap wrapper.
#include "jstd/skiplistmap.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "core/txsortedmap.h"

namespace jstd {
namespace {

TEST(SkipListMapTest, BasicSortedMapContract) {
  SkipListMap<long, long> m;
  EXPECT_EQ(m.size(), 0);
  EXPECT_EQ(m.first_key(), std::nullopt);
  EXPECT_EQ(m.last_key(), std::nullopt);
  for (long k : {5L, 1L, 9L, 3L, 7L}) EXPECT_EQ(m.put(k, k * 10), std::nullopt);
  EXPECT_EQ(m.size(), 5);
  EXPECT_EQ(m.first_key(), 1);
  EXPECT_EQ(m.last_key(), 9);
  EXPECT_EQ(m.get(3), 30);
  EXPECT_EQ(m.put(3, 31), 30);
  EXPECT_EQ(m.remove(9), 90);
  EXPECT_EQ(m.last_key(), 7);
  EXPECT_EQ(m.last_key_before(7), 5);
  EXPECT_EQ(m.last_key_before(1), std::nullopt);
  std::vector<long> keys;
  for (auto it = m.iterator(); it->has_next();) keys.push_back(it->next().first);
  EXPECT_EQ(keys, (std::vector<long>{1, 3, 5, 7}));
}

TEST(SkipListMapTest, RangeIteratorHalfOpen) {
  SkipListMap<long, long> m;
  for (long k = 0; k < 50; k += 5) m.put(k, k);
  std::vector<long> keys;
  for (auto it = m.range_iterator(10L, 30L); it->has_next();) keys.push_back(it->next().first);
  EXPECT_EQ(keys, (std::vector<long>{10, 15, 20, 25}));
}

class SkipListModelTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SkipListModelTest, MatchesStdMap) {
  std::mt19937 rng(GetParam());
  SkipListMap<long, long> m;
  std::map<long, long> oracle;
  for (int step = 0; step < 2500; ++step) {
    const long key = static_cast<long>(rng() % 250);
    switch (rng() % 5) {
      case 0:
      case 1: {
        const long v = static_cast<long>(rng());
        auto prev = oracle.find(key);
        auto expect = prev == oracle.end() ? std::nullopt : std::optional<long>(prev->second);
        EXPECT_EQ(m.put(key, v), expect);
        oracle[key] = v;
        break;
      }
      case 2: {
        auto prev = oracle.find(key);
        auto expect = prev == oracle.end() ? std::nullopt : std::optional<long>(prev->second);
        EXPECT_EQ(m.remove(key), expect);
        oracle.erase(key);
        break;
      }
      case 3: {
        auto prev = oracle.find(key);
        auto expect = prev == oracle.end() ? std::nullopt : std::optional<long>(prev->second);
        EXPECT_EQ(m.get(key), expect);
        break;
      }
      case 4: {
        auto first = oracle.empty() ? std::nullopt : std::optional<long>(oracle.begin()->first);
        auto last = oracle.empty() ? std::nullopt : std::optional<long>(oracle.rbegin()->first);
        EXPECT_EQ(m.first_key(), first);
        EXPECT_EQ(m.last_key(), last);
        break;
      }
    }
  }
  EXPECT_EQ(m.size(), static_cast<long>(oracle.size()));
  auto it = m.iterator();
  for (const auto& [k, v] : oracle) {
    ASSERT_TRUE(it->has_next());
    auto [mk, mv] = it->next();
    EXPECT_EQ(mk, k);
    EXPECT_EQ(mv, v);
  }
  EXPECT_FALSE(it->has_next());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListModelTest, ::testing::Range(1u, 9u));

TEST(SkipListMapTest, WorksUnderTransactionalSortedMapWrapper) {
  // The wrapper is implementation-agnostic: the same Table 4/5 semantics
  // over a skip list instead of a red-black tree.
  sim::Config cfg;
  cfg.num_cpus = 4;
  cfg.mode = sim::Mode::kTcc;
  sim::Engine eng(cfg);
  atomos::Runtime rt(eng);
  tcc::TransactionalSortedMap<long, long> map(std::make_unique<SkipListMap<long, long>>());
  for (long k = 0; k < 40; k += 2) map.put(k, k);
  for (int c = 0; c < 4; ++c) {
    eng.spawn([&, c] {
      for (int i = 0; i < 10; ++i) {
        atomos::atomically([&] {
          map.put(100 + c * 20 + i, 1);  // disjoint new keys
          long count = 0;
          const long lo = c * 10;
          for (auto it = map.range_iterator(lo, lo + 10); it->has_next();) {
            it->next();
            ++count;
          }
          atomos::work(300);
        });
      }
    });
  }
  eng.run();
  EXPECT_EQ(map.inner().size(), 20 + 40);
  EXPECT_EQ(map.range_lock_count(), 0u);
  // Disjoint ranges and disjoint keys: no semantic conflicts.
  EXPECT_EQ(eng.stats().total(&sim::CpuStats::semantic_violations), 0u);
}

TEST(SkipListMapTest, TransactionalInsertsOnSkipListDoNotConflictWhenWrapped) {
  // The Figure 1 pathology and its fix, on the skip-list substrate.
  sim::Config cfg;
  cfg.num_cpus = 2;
  cfg.mode = sim::Mode::kTcc;
  // raw: conflicts on SkipListMap.size
  sim::Engine eng1(cfg);
  {
    atomos::Runtime rt(eng1);
    SkipListMap<long, long> raw;
    for (int c = 0; c < 2; ++c) {
      eng1.spawn([&, c] {
        atomos::atomically([&] {
          raw.put(1000 + c, c);
          atomos::work(3000);
        });
      });
    }
    eng1.run();
  }
  EXPECT_GE(eng1.stats().total(&sim::CpuStats::violations), 1u);
  // wrapped: no conflicts
  sim::Engine eng2(cfg);
  {
    atomos::Runtime rt(eng2);
    tcc::TransactionalSortedMap<long, long> wrapped(
        std::make_unique<SkipListMap<long, long>>());
    for (int c = 0; c < 2; ++c) {
      eng2.spawn([&, c] {
        atomos::atomically([&] {
          wrapped.put(1000 + c, c);
          atomos::work(3000);
        });
      });
    }
    eng2.run();
  }
  EXPECT_EQ(eng2.stats().total(&sim::CpuStats::violations), 0u);
  EXPECT_EQ(eng2.stats().total(&sim::CpuStats::semantic_violations), 0u);
}

}  // namespace
}  // namespace jstd
