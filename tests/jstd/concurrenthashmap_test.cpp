// jstd::ConcurrentHashMap: functional behaviour, cross-segment iteration,
// and lock-striped correctness inside a lock-mode simulation.
#include "jstd/concurrenthashmap.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "tm/runtime.h"

namespace jstd {
namespace {

TEST(ConcurrentHashMapTest, BasicOperations) {
  ConcurrentHashMap<long, long> m(8);
  EXPECT_EQ(m.size(), 0);
  for (long k = 0; k < 200; ++k) EXPECT_EQ(m.put(k, k * 3), std::nullopt);
  EXPECT_EQ(m.size(), 200);
  for (long k = 0; k < 200; ++k) EXPECT_EQ(m.get(k), k * 3);
  EXPECT_EQ(m.put(7, 1), 21);
  EXPECT_EQ(m.remove(7), 1);
  EXPECT_FALSE(m.contains_key(7));
  EXPECT_EQ(m.size(), 199);
}

TEST(ConcurrentHashMapTest, IteratorCoversAllSegments) {
  ConcurrentHashMap<long, long> m(8);
  for (long k = 0; k < 100; ++k) m.put(k, k);
  std::unordered_map<long, long> seen;
  for (auto it = m.iterator(); it->has_next();) {
    auto [k, v] = it->next();
    EXPECT_TRUE(seen.emplace(k, v).second);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(ConcurrentHashMapTest, LockStripedOpsAreAtomicInLockMode) {
  sim::Config cfg;
  cfg.num_cpus = 8;
  cfg.mode = sim::Mode::kLock;
  sim::Engine eng(cfg);
  atomos::Runtime rt(eng);
  ConcurrentHashMap<long, long> m(16);
  constexpr long kPerCpu = 50;
  for (int c = 0; c < 8; ++c) {
    eng.spawn([&, c] {
      for (long i = 0; i < kPerCpu; ++i) {
        const long key = c * kPerCpu + i;
        m.put(key, key);
        // read-modify-write on own key under the segment lock
        m.put(key, *m.get(key) + 1);
      }
    });
  }
  eng.run();
  EXPECT_EQ(m.size(), 8 * kPerCpu);
  for (long k = 0; k < 8 * kPerCpu; ++k) EXPECT_EQ(m.get(k), k + 1);
}

}  // namespace
}  // namespace jstd
