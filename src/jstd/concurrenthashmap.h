// jstd::ConcurrentHashMap — the util.concurrent-style segmented hash map
// the paper discusses in Sections 2.2/2.4: the table is partitioned into
// independent segments, each with its own size field (and, in lock mode, its
// own lock), which *statistically reduces* but does not eliminate conflicts.
//
//  * Mode::kLock: per-segment mutexes guard each operation — the classic
//    lock-striped ConcurrentHashMap baseline.
//  * Mode::kTcc: the mutexes are bypassed (the enclosing transaction
//    provides atomicity) and the segmented layout is exactly the
//    "alternative data structure" approach of Adl-Tabatabai et al. that the
//    paper argues still conflicts once transactions grow long — reproduced
//    by the ablation_segmented benchmark.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "jstd/hashmap.h"
#include "jstd/interfaces.h"
#include "tm/mutex.h"

namespace jstd {

template <class K, class V, class Hash = std::hash<K>, class Eq = std::equal_to<K>>
class ConcurrentHashMap final : public Map<K, V> {
 public:
  explicit ConcurrentHashMap(std::size_t segments = 16,
                             std::size_t initial_buckets_per_segment = 16)
      : nsegments_(round_up_pow2(segments)) {
    segs_.reserve(nsegments_);
    for (std::size_t i = 0; i < nsegments_; ++i) {
      segs_.push_back(std::make_unique<Segment>(initial_buckets_per_segment));
    }
  }

  std::optional<V> get(const K& key) const override {
    Segment& s = segment(key);
    SegGuard g(s);
    return s.map.get(key);
  }

  bool contains_key(const K& key) const override {
    Segment& s = segment(key);
    SegGuard g(s);
    return s.map.contains_key(key);
  }

  std::optional<V> put(const K& key, const V& value) override {
    Segment& s = segment(key);
    SegGuard g(s);
    return s.map.put(key, value);
  }

  std::optional<V> remove(const K& key) override {
    Segment& s = segment(key);
    SegGuard g(s);
    return s.map.remove(key);
  }

  /// Sums per-segment sizes (locking segment by segment, as Java does; the
  /// result is a moving estimate under concurrency).
  long size() const override {
    long total = 0;
    for (auto& s : segs_) {
      SegGuard g(*s);
      total += s->map.size();
    }
    return total;
  }

  std::unique_ptr<MapIterator<K, V>> iterator() const override {
    return std::make_unique<Iter>(this);
  }

 private:
  struct Segment {
    explicit Segment(std::size_t buckets) : map(buckets) {}
    atomos::Mutex mu;
    HashMap<K, V, Hash, Eq> map;  // per-segment size field lives in here
  };

  /// Locks the segment in lock mode; no-op under transactional execution.
  class SegGuard {
   public:
    explicit SegGuard(Segment& s) : s_(s), locked_(use_lock()) {
      if (locked_) s_.mu.lock();
    }
    ~SegGuard() {
      if (locked_) s_.mu.unlock();
    }
    SegGuard(const SegGuard&) = delete;
    SegGuard& operator=(const SegGuard&) = delete;

   private:
    static bool use_lock() {
      return sim::Engine::in_worker() &&
             sim::Engine::get().config().mode == sim::Mode::kLock;
    }
    Segment& s_;
    bool locked_;
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  Segment& segment(const K& key) const {
    // Spread the high bits so segment and in-segment bucket indices differ.
    const std::size_t h = hash_(key);
    const std::size_t spread = h ^ (h >> 16);
    return *segs_[(spread >> 4) & (nsegments_ - 1)];
  }

  class Iter final : public MapIterator<K, V> {
   public:
    explicit Iter(const ConcurrentHashMap* m) : m_(m) { advance(); }

    bool has_next() override { return cur_ != nullptr && cur_->has_next(); }

    std::pair<K, V> next() override {
      auto out = cur_->next();
      if (!cur_->has_next()) advance();
      return out;
    }

   private:
    void advance() {
      cur_.reset();
      while (seg_ < m_->nsegments_) {
        cur_ = m_->segs_[seg_++]->map.iterator();
        if (cur_->has_next()) return;
      }
      cur_.reset();
    }
    const ConcurrentHashMap* m_;
    std::size_t seg_ = 0;
    std::unique_ptr<MapIterator<K, V>> cur_;
  };

  Hash hash_;
  const std::size_t nsegments_;
  std::vector<std::unique_ptr<Segment>> segs_;
};

}  // namespace jstd
