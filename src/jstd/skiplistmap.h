// jstd::SkipListMap — a skip-list SortedMap over transactional cells,
// shaped like the ConcurrentSkipListMap the paper's Section 2.2 discusses
// (JDK 6's NavigableMap implementation).
//
// Offers the same SortedMap interface as jstd::TreeMap with a different
// internal conflict profile: no rotations, but tower-link updates on insert
// and a shared `size` field — under long transactions it conflicts less
// than a red-black tree on structural changes yet still needs the
// TransactionalSortedMap wrapper for full semantic concurrency.  Height is
// drawn from a deterministic per-map PRNG so simulations stay reproducible.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>

#include "jstd/interfaces.h"
#include "tm/runtime.h"
#include "tm/shared.h"

namespace jstd {

template <class K, class V, class Compare = std::less<K>>
class SkipListMap final : public SortedMap<K, V> {
 public:
  static constexpr int kMaxLevel = 16;

  explicit SkipListMap(Compare cmp = Compare(), std::uint64_t seed = 0x9e3779b9)
      : cmp_(cmp), rng_(seed), size_(0, "SkipListMap.size", sim::kMetaCell),
        head_(new Node(K{}, V{}, kMaxLevel)) {}  // sentinel; key unused

  ~SkipListMap() override {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0].unsafe_peek();
      delete n;
      n = next;
    }
  }

  SkipListMap(const SkipListMap&) = delete;
  SkipListMap& operator=(const SkipListMap&) = delete;

  std::optional<V> get(const K& key) const override {
    Node* n = find_geq(key, nullptr);
    if (n != nullptr && equal(n->key.get(), key)) return n->val.get();
    return std::nullopt;
  }

  bool contains_key(const K& key) const override { return get(key).has_value(); }

  long size() const override { return size_.get(); }

  std::optional<V> put(const K& key, const V& value) override {
    Node* preds[kMaxLevel];
    Node* n = find_geq(key, preds);
    if (n != nullptr && equal(n->key.get(), key)) {
      V old = n->val.get();
      n->val.set(value);
      return old;
    }
    const int height = random_height();
    Node* fresh = atomos::tx_new<Node>(key, value, height);
    for (int lvl = 0; lvl < height; ++lvl) {
      fresh->next[lvl].set(preds[lvl]->next[lvl].get());
      preds[lvl]->next[lvl].set(fresh);
    }
    size_.set(size_.get() + 1);
    return std::nullopt;
  }

  std::optional<V> remove(const K& key) override {
    Node* preds[kMaxLevel];
    Node* n = find_geq(key, preds);
    if (n == nullptr || !equal(n->key.get(), key)) return std::nullopt;
    V old = n->val.get();
    for (int lvl = 0; lvl < n->height; ++lvl) {
      if (preds[lvl]->next[lvl].get() == n) preds[lvl]->next[lvl].set(n->next[lvl].get());
    }
    atomos::tx_delete(n);
    size_.set(size_.get() - 1);
    return old;
  }

  std::optional<K> first_key() const override {
    Node* n = head_->next[0].get();
    if (n == nullptr) return std::nullopt;
    return n->key.get();
  }

  std::optional<K> last_key() const override {
    Node* n = head_;
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
      for (Node* nx = n->next[lvl].get(); nx != nullptr; nx = n->next[lvl].get()) n = nx;
    }
    if (n == head_) return std::nullopt;
    return n->key.get();
  }

  std::optional<K> last_key_before(const K& key) const override {
    Node* n = head_;
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
      for (Node* nx = n->next[lvl].get(); nx != nullptr && cmp_(nx->key.get(), key);
           nx = n->next[lvl].get()) {
        n = nx;
      }
    }
    if (n == head_) return std::nullopt;
    return n->key.get();
  }

  std::unique_ptr<MapIterator<K, V>> iterator() const override {
    return range_iterator(std::nullopt, std::nullopt);
  }

  std::unique_ptr<MapIterator<K, V>> range_iterator(
      const std::optional<K>& from, const std::optional<K>& to) const override {
    Node* start = from.has_value() ? find_geq(*from, nullptr) : head_->next[0].get();
    return std::make_unique<Iter>(this, start, to);
  }

 private:
  struct Node {
    Node(const K& k, const V& v, int h)
        : key(k), val(v), height(h),
          next(std::make_unique<atomos::Shared<Node*>[]>(static_cast<std::size_t>(h))) {}
    atomos::Shared<K> key;  // immutable after construction
    atomos::Shared<V> val;
    const int height;
    std::unique_ptr<atomos::Shared<Node*>[]> next;
  };

  bool equal(const K& a, const K& b) const { return !cmp_(a, b) && !cmp_(b, a); }

  /// Smallest node with node.key >= key; optionally records the predecessor
  /// at every level (for insert/remove splicing).
  Node* find_geq(const K& key, Node** preds) const {
    Node* n = head_;
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
      for (Node* nx = n->next[lvl].get(); nx != nullptr && cmp_(nx->key.get(), key);
           nx = n->next[lvl].get()) {
        n = nx;
      }
      if (preds != nullptr) preds[lvl] = n;
    }
    return n->next[0].get();
  }

  int random_height() {
    rng_ = rng_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t bits = rng_ >> 33;
    int h = 1;
    while (h < kMaxLevel && (bits & (1ULL << h)) != 0) ++h;
    return h;
  }

  class Iter final : public MapIterator<K, V> {
   public:
    Iter(const SkipListMap* m, Node* start, std::optional<K> to)
        : m_(m), n_(start), to_(std::move(to)) {
      clamp();
    }

    bool has_next() override { return n_ != nullptr; }

    std::pair<K, V> next() override {
      std::pair<K, V> out{n_->key.get(), n_->val.get()};
      n_ = n_->next[0].get();
      clamp();
      return out;
    }

   private:
    void clamp() {
      if (n_ != nullptr && to_.has_value() && !m_->cmp_(n_->key.get(), *to_)) n_ = nullptr;
    }
    const SkipListMap* m_;
    Node* n_;
    std::optional<K> to_;
  };

  Compare cmp_;
  // Deliberately NOT Shared: random_height() advances this on every insert
  // attempt (aborted ones included).  Wrapping it would put the RNG line in
  // every inserter's write set and serialize all puts on it; the only effect
  // of racing is the height distribution, which is benign nondeterminism.
  // txlint: allow(shared-field) - benign racy RNG state, see comment above
  std::uint64_t rng_;
  atomos::Shared<long> size_;
  Node* const head_;  // sentinel, never reclaimed until destruction
};

}  // namespace jstd
