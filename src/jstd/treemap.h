// jstd::TreeMap — a java.util.TreeMap-shaped red-black tree over
// transactional cells.
//
// Like its Java counterpart it keeps parent pointers (so iteration is a
// successor walk) and rebalances with rotations and recolourings on the path
// to the root.  Those internal writes are precisely the memory-level
// dependencies that stop a plain TreeMap scaling inside long transactions
// (paper Figure 2); TransactionalSortedMap wraps this class to remove them.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>

#include "jstd/interfaces.h"
#include "tm/runtime.h"
#include "tm/shared.h"

namespace jstd {

template <class K, class V, class Compare = std::less<K>>
class TreeMap final : public SortedMap<K, V> {
 public:
  /// `size_label`/`root_label` name the tree's contended fields in TAPE
  /// profiles and txtrace conflict reports (e.g. "orderTable.size").  Both
  /// metadata cells are line-isolated (sim::kMetaCell): every operation
  /// reads root_, so it must never false-share with counters or node cells.
  explicit TreeMap(Compare cmp = Compare(),
                   const char* size_label = "TreeMap.size",
                   const char* root_label = "TreeMap.root")
      : cmp_(cmp), size_(0, size_label, sim::kMetaCell),
        root_(nullptr, root_label, sim::kMetaCell),
        node_label_("TreeMap.node") {}

  ~TreeMap() override { destroy(root_.unsafe_peek()); }

  TreeMap(const TreeMap&) = delete;
  TreeMap& operator=(const TreeMap&) = delete;

  std::optional<V> get(const K& key) const override {
    Node* n = find(key);
    if (n == nullptr) return std::nullopt;
    return n->val.get();
  }

  bool contains_key(const K& key) const override { return find(key) != nullptr; }

  long size() const override { return size_.get(); }

  std::optional<V> put(const K& key, const V& value) override {
    Node* parent = nullptr;
    Node* n = root_.get();
    bool went_left = false;
    while (n != nullptr) {
      const K nk = n->key.get();
      if (cmp_(key, nk)) {
        parent = n;
        went_left = true;
        n = n->left.get();
      } else if (cmp_(nk, key)) {
        parent = n;
        went_left = false;
        n = n->right.get();
      } else {
        V old = n->val.get();
        n->val.set(value);
        return old;
      }
    }
    // Label node link cells only during setup population (host side): labels
    // attached from a running worker fiber are host state that an abort
    // cannot roll back (see audit::late_profile_label).
    Node* fresh = atomos::tx_new<Node>(
        key, value, parent, sim::Engine::in_worker() ? nullptr : node_label_);
    if (parent == nullptr) {
      root_.set(fresh);
    } else if (went_left) {
      parent->left.set(fresh);
    } else {
      parent->right.set(fresh);
    }
    insert_fixup(fresh);
    size_.set(size_.get() + 1);
    return std::nullopt;
  }

  std::optional<V> remove(const K& key) override {
    Node* z = find(key);
    if (z == nullptr) return std::nullopt;
    V old = z->val.get();
    remove_node(z);
    size_.set(size_.get() - 1);
    return old;
  }

  std::optional<K> first_key() const override {
    Node* n = minimum(root_.get());
    if (n == nullptr) return std::nullopt;
    return n->key.get();
  }

  std::optional<K> last_key() const override {
    Node* n = root_.get();
    if (n == nullptr) return std::nullopt;
    while (n->right.get() != nullptr) n = n->right.get();
    return n->key.get();
  }

  std::optional<K> last_key_before(const K& key) const override {
    Node* n = root_.get();
    Node* best = nullptr;
    while (n != nullptr) {
      if (cmp_(n->key.get(), key)) {  // n.key < key: candidate, go right
        best = n;
        n = n->right.get();
      } else {
        n = n->left.get();
      }
    }
    if (best == nullptr) return std::nullopt;
    return best->key.get();
  }

  std::unique_ptr<MapIterator<K, V>> iterator() const override {
    return range_iterator(std::nullopt, std::nullopt);
  }

  std::unique_ptr<MapIterator<K, V>> range_iterator(
      const std::optional<K>& from, const std::optional<K>& to) const override {
    Node* start = from.has_value() ? lower_bound(*from) : minimum(root_.get());
    return std::make_unique<Iter>(this, start, to);
  }

  // ---- white-box invariant checks (tests only; untimed raw access) ----
  // txlint: begin-allow(raw-peek)

  /// Verifies every red-black + BST invariant; returns false on corruption.
  bool check_invariants() const {
    if (root_.unsafe_peek() != nullptr && root_.unsafe_peek()->red.unsafe_peek()) return false;
    long count = 0;
    int bh = -1;
    const bool ok = check_node(root_.unsafe_peek(), nullptr, nullptr, nullptr, 0, bh, count);
    return ok && count == size_.unsafe_peek();
  }
  // txlint: end-allow(raw-peek)

 private:
  struct Node {
    Node(const K& k, const V& v, Node* p, const char* label = nullptr)
        : key(k), val(v), parent(p, label), left(nullptr, label),
          right(nullptr, label), red(true, label) {}
    atomos::Shared<K> key;  // immutable after construction
    atomos::Shared<V> val;
    atomos::Shared<Node*> parent;
    atomos::Shared<Node*> left;
    atomos::Shared<Node*> right;
    atomos::Shared<bool> red;
  };

  // -- helpers reading through the transactional cells --

  Node* find(const K& key) const {
    Node* n = root_.get();
    while (n != nullptr) {
      const K nk = n->key.get();
      if (cmp_(key, nk)) {
        n = n->left.get();
      } else if (cmp_(nk, key)) {
        n = n->right.get();
      } else {
        return n;
      }
    }
    return nullptr;
  }

  Node* lower_bound(const K& key) const {  // smallest node with node.key >= key
    Node* n = root_.get();
    Node* best = nullptr;
    while (n != nullptr) {
      if (cmp_(n->key.get(), key)) {
        n = n->right.get();
      } else {
        best = n;
        n = n->left.get();
      }
    }
    return best;
  }

  static Node* minimum(Node* n) {
    if (n == nullptr) return nullptr;
    while (n->left.get() != nullptr) n = n->left.get();
    return n;
  }

  static Node* successor(Node* n) {
    Node* r = n->right.get();
    if (r != nullptr) return minimum(r);
    Node* p = n->parent.get();
    while (p != nullptr && p->right.get() == n) {
      n = p;
      p = p->parent.get();
    }
    return p;
  }

  static bool is_red(Node* n) { return n != nullptr && n->red.get(); }

  void rotate_left(Node* x) {
    Node* y = x->right.get();
    Node* yl = y->left.get();
    x->right.set(yl);
    if (yl != nullptr) yl->parent.set(x);
    Node* xp = x->parent.get();
    y->parent.set(xp);
    if (xp == nullptr) {
      root_.set(y);
    } else if (xp->left.get() == x) {
      xp->left.set(y);
    } else {
      xp->right.set(y);
    }
    y->left.set(x);
    x->parent.set(y);
  }

  void rotate_right(Node* x) {
    Node* y = x->left.get();
    Node* yr = y->right.get();
    x->left.set(yr);
    if (yr != nullptr) yr->parent.set(x);
    Node* xp = x->parent.get();
    y->parent.set(xp);
    if (xp == nullptr) {
      root_.set(y);
    } else if (xp->right.get() == x) {
      xp->right.set(y);
    } else {
      xp->left.set(y);
    }
    y->right.set(x);
    x->parent.set(y);
  }

  void insert_fixup(Node* z) {
    while (is_red(z->parent.get())) {
      Node* p = z->parent.get();
      Node* g = p->parent.get();  // exists: p is red, so p is not the root
      if (g->left.get() == p) {
        Node* uncle = g->right.get();
        if (is_red(uncle)) {
          p->red.set(false);
          uncle->red.set(false);
          g->red.set(true);
          z = g;
        } else {
          if (p->right.get() == z) {
            z = p;
            rotate_left(z);
            p = z->parent.get();
            g = p->parent.get();
          }
          p->red.set(false);
          g->red.set(true);
          rotate_right(g);
        }
      } else {
        Node* uncle = g->left.get();
        if (is_red(uncle)) {
          p->red.set(false);
          uncle->red.set(false);
          g->red.set(true);
          z = g;
        } else {
          if (p->left.get() == z) {
            z = p;
            rotate_right(z);
            p = z->parent.get();
            g = p->parent.get();
          }
          p->red.set(false);
          g->red.set(true);
          rotate_left(g);
        }
      }
    }
    root_.get()->red.set(false);
  }

  /// Replaces u (child of u.parent) by v, updating v's parent link.
  void transplant(Node* u, Node* v) {
    Node* up = u->parent.get();
    if (up == nullptr) {
      root_.set(v);
    } else if (up->left.get() == u) {
      up->left.set(v);
    } else {
      up->right.set(v);
    }
    if (v != nullptr) v->parent.set(up);
  }

  void remove_node(Node* z) {
    // java.util.TreeMap style: a two-child node adopts its successor's
    // key/value, then the successor (<= 1 child) is spliced out.
    if (z->left.get() != nullptr && z->right.get() != nullptr) {
      Node* s = minimum(z->right.get());
      z->key.set(s->key.get());
      z->val.set(s->val.get());
      z = s;
    }
    Node* child = z->left.get() != nullptr ? z->left.get() : z->right.get();
    Node* parent = z->parent.get();
    const bool was_black = !z->red.get();
    transplant(z, child);
    if (was_black) remove_fixup(child, parent);
    atomos::tx_delete(z);
  }

  /// CLRS delete-fixup, null-leaf variant: x may be null, so its parent is
  /// threaded explicitly.
  void remove_fixup(Node* x, Node* parent) {
    while (x != root_.get() && !is_red(x)) {
      if (parent == nullptr) break;  // x is the root
      if (parent->left.get() == x) {
        Node* w = parent->right.get();
        if (is_red(w)) {
          w->red.set(false);
          parent->red.set(true);
          rotate_left(parent);
          w = parent->right.get();
        }
        if (!is_red(w->left.get()) && !is_red(w->right.get())) {
          w->red.set(true);
          x = parent;
          parent = x->parent.get();
        } else {
          if (!is_red(w->right.get())) {
            w->left.get()->red.set(false);
            w->red.set(true);
            rotate_right(w);
            w = parent->right.get();
          }
          w->red.set(parent->red.get());
          parent->red.set(false);
          w->right.get()->red.set(false);
          rotate_left(parent);
          x = root_.get();
          parent = nullptr;
        }
      } else {
        Node* w = parent->left.get();
        if (is_red(w)) {
          w->red.set(false);
          parent->red.set(true);
          rotate_right(parent);
          w = parent->left.get();
        }
        if (!is_red(w->right.get()) && !is_red(w->left.get())) {
          w->red.set(true);
          x = parent;
          parent = x->parent.get();
        } else {
          if (!is_red(w->left.get())) {
            w->right.get()->red.set(false);
            w->red.set(true);
            rotate_left(w);
            w = parent->left.get();
          }
          w->red.set(parent->red.get());
          parent->red.set(false);
          w->left.get()->red.set(false);
          rotate_right(parent);
          x = root_.get();
          parent = nullptr;
        }
      }
    }
    if (x != nullptr) x->red.set(false);
  }

  // -- iterator --

  class Iter final : public MapIterator<K, V> {
   public:
    Iter(const TreeMap* m, Node* start, std::optional<K> to)
        : m_(m), n_(start), to_(std::move(to)) {
      clamp();
    }

    bool has_next() override { return n_ != nullptr; }

    std::pair<K, V> next() override {
      std::pair<K, V> out{n_->key.get(), n_->val.get()};
      n_ = successor(n_);
      clamp();
      return out;
    }

   private:
    void clamp() {
      if (n_ != nullptr && to_.has_value() && !m_->cmp_(n_->key.get(), *to_)) n_ = nullptr;
    }
    const TreeMap* m_;
    Node* n_;
    std::optional<K> to_;
  };

  // -- teardown / invariant helpers (raw access) --
  // txlint: begin-allow(raw-peek)

  void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left.unsafe_peek());
    destroy(n->right.unsafe_peek());
    delete n;
  }

  bool check_node(Node* n, Node* parent, const K* lo, const K* hi, int black_depth,
                  int& leaf_black_depth, long& count) const {
    if (n == nullptr) {
      if (leaf_black_depth < 0) leaf_black_depth = black_depth;
      return leaf_black_depth == black_depth;
    }
    if (n->parent.unsafe_peek() != parent) return false;
    const K k = n->key.unsafe_peek();
    if (lo != nullptr && !cmp_(*lo, k)) return false;
    if (hi != nullptr && !cmp_(k, *hi)) return false;
    const bool red = n->red.unsafe_peek();
    if (red && parent != nullptr && parent->red.unsafe_peek()) return false;  // red-red
    ++count;
    const int bd = black_depth + (red ? 0 : 1);
    return check_node(n->left.unsafe_peek(), n, lo, &k, bd, leaf_black_depth, count) &&
           check_node(n->right.unsafe_peek(), n, &k, hi, bd, leaf_black_depth, count);
  }
  // txlint: end-allow(raw-peek)

  Compare cmp_;
  atomos::Shared<long> size_;
  atomos::Shared<Node*> root_;
  const char* node_label_;  // applied to link cells of setup-created nodes
};

}  // namespace jstd
