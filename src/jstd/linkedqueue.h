// jstd::LinkedQueue — a linked FIFO queue over transactional cells, shaped
// like the Michael-Scott queue underlying ConcurrentLinkedQueue (a dummy
// head node, head/tail pointers).  Atomicity comes from the enclosing
// transaction, not from CAS loops.  TransactionalQueue wraps this class.
#pragma once

#include <optional>

#include "jstd/interfaces.h"
#include "tm/runtime.h"
#include "tm/shared.h"

namespace jstd {

template <class T>
class LinkedQueue final : public Queue<T> {
 public:
  LinkedQueue()
      : head_(nullptr, "LinkedQueue.head", sim::kMetaCell),
        tail_(nullptr, "LinkedQueue.tail", sim::kMetaCell),
        size_(0, "LinkedQueue.size", sim::kMetaCell) {
    Node* dummy = new Node(T{});
    head_ = dummy;
    tail_ = dummy;
  }

  ~LinkedQueue() override {
    Node* n = head_.unsafe_peek();
    while (n != nullptr) {
      Node* next = n->next.unsafe_peek();
      delete n;
      n = next;
    }
  }

  LinkedQueue(const LinkedQueue&) = delete;
  LinkedQueue& operator=(const LinkedQueue&) = delete;

  void put(const T& item) override {
    Node* fresh = atomos::tx_new<Node>(item);
    Node* t = tail_.get();
    t->next.set(fresh);
    tail_.set(fresh);
    size_.set(size_.get() + 1);
  }

  std::optional<T> poll() override {
    Node* h = head_.get();
    Node* first = h->next.get();
    if (first == nullptr) return std::nullopt;
    T item = first->item.get();
    head_.set(first);  // `first` becomes the new dummy
    atomos::tx_delete(h);
    size_.set(size_.get() - 1);
    return item;
  }

  std::optional<T> peek() const override {
    Node* first = head_.get()->next.get();
    if (first == nullptr) return std::nullopt;
    return first->item.get();
  }

  long size() const override { return size_.get(); }

 private:
  struct Node {
    explicit Node(const T& v) : item(v), next(nullptr) {}
    atomos::Shared<T> item;
    atomos::Shared<Node*> next;
  };

  // Queue metadata: every put/poll reads head_ or tail_, so all three cells
  // are line-isolated in the metadata arena.
  atomos::Shared<Node*> head_;  // dummy node
  atomos::Shared<Node*> tail_;
  atomos::Shared<long> size_;
};

}  // namespace jstd
