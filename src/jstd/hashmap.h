// jstd::HashMap — a java.util.HashMap-shaped chained hash table over
// transactional cells.
//
// The layout is deliberately faithful to the classic implementation the
// paper analyses: one bucket array, singly linked collision chains, and a
// single `size` field maintained for the load factor.  Under Atomos-style
// execution this is exactly the structure whose `size` field and bucket
// chains create the unnecessary memory-level dependencies of Figure 1; the
// TransactionalMap wrapper exists to eliminate them.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>

#include "jstd/interfaces.h"
#include "tm/runtime.h"
#include "tm/shared.h"

namespace jstd {

template <class K, class V, class Hash = std::hash<K>, class Eq = std::equal_to<K>>
class HashMap final : public Map<K, V> {
 public:
  /// `initial_buckets` should exceed the expected population / load factor
  /// when resize-under-transaction is not part of the experiment.
  /// `size_label` / `table_label` name the contended metadata cells in TAPE
  /// profiles and txtrace conflict reports (e.g. "historyTable.size" /
  /// "historyTable.table" for the fig4 map).  Both cells are read by every
  /// operation, so they live line-isolated in the metadata arena
  /// (sim::kMetaCell) — never co-resident with counters or element cells.
  explicit HashMap(std::size_t initial_buckets = 16, float load_factor = 0.75F,
                   const char* size_label = "HashMap.size",
                   const char* table_label = "HashMap.table")
      : load_factor_(load_factor),
        size_(0, size_label, sim::kMetaCell),
        table_(new Table(round_up_pow2(initial_buckets)), table_label, sim::kMetaCell) {}

  ~HashMap() override {
    Table* t = table_.unsafe_peek();
    for (std::size_t i = 0; i < t->nbuckets; ++i) {
      Node* n = t->buckets[i].unsafe_peek();
      while (n != nullptr) {
        Node* next = n->next.unsafe_peek();
        delete n;
        n = next;
      }
    }
    delete t;
  }

  HashMap(const HashMap&) = delete;
  HashMap& operator=(const HashMap&) = delete;

  std::optional<V> get(const K& key) const override {
    const std::size_t h = hash_(key);
    Table* t = table_.get();
    for (Node* n = t->bucket(h).get(); n != nullptr; n = n->next.get()) {
      if (n->hash == h && eq_(n->key.get(), key)) return n->val.get();
    }
    return std::nullopt;
  }

  bool contains_key(const K& key) const override { return get(key).has_value(); }

  std::optional<V> put(const K& key, const V& value) override {
    const std::size_t h = hash_(key);
    Table* t = table_.get();
    atomos::Shared<Node*>& head = t->bucket(h);
    for (Node* n = head.get(); n != nullptr; n = n->next.get()) {
      if (n->hash == h && eq_(n->key.get(), key)) {
        V old = n->val.get();
        n->val.set(value);
        return old;
      }
    }
    Node* fresh = atomos::tx_new<Node>(h, key, value, head.get());
    head.set(fresh);
    const long new_size = size_.get() + 1;  // the paper's contended field
    size_.set(new_size);
    if (static_cast<float>(new_size) >
        load_factor_ * static_cast<float>(t->nbuckets)) {
      resize(t);
    }
    return std::nullopt;
  }

  std::optional<V> remove(const K& key) override {
    const std::size_t h = hash_(key);
    Table* t = table_.get();
    atomos::Shared<Node*>& head = t->bucket(h);
    Node* prev = nullptr;
    for (Node* n = head.get(); n != nullptr; prev = n, n = n->next.get()) {
      if (n->hash == h && eq_(n->key.get(), key)) {
        V old = n->val.get();
        if (prev == nullptr) {
          head.set(n->next.get());
        } else {
          prev->next.set(n->next.get());
        }
        atomos::tx_delete(n);
        size_.set(size_.get() - 1);
        return old;
      }
    }
    return std::nullopt;
  }

  long size() const override { return size_.get(); }

  std::unique_ptr<MapIterator<K, V>> iterator() const override {
    return std::make_unique<Iter>(table_.get());
  }

  /// Current bucket-array capacity (for tests of resize behaviour).
  // txlint: allow(raw-peek) - test oracle: capacity probe outside the workload
  std::size_t bucket_count() const { return table_.unsafe_peek()->nbuckets; }

 private:
  struct Node {
    Node(std::size_t h, const K& k, const V& v, Node* nxt)
        : hash(h), key(k), val(v), next(nxt) {}
    const std::size_t hash;     // immutable: cached full hash
    atomos::Shared<K> key;      // immutable after construction
    atomos::Shared<V> val;
    atomos::Shared<Node*> next;
  };

  struct Table {
    explicit Table(std::size_t n)
        : nbuckets(n), buckets(std::make_unique<atomos::Shared<Node*>[]>(n)) {}
    atomos::Shared<Node*>& bucket(std::size_t hash) const {
      return buckets[hash & (nbuckets - 1)];
    }
    const std::size_t nbuckets;
    std::unique_ptr<atomos::Shared<Node*>[]> buckets;
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  void resize(Table* old) {
    Table* bigger = atomos::tx_new<Table>(old->nbuckets * 2);
    for (std::size_t i = 0; i < old->nbuckets; ++i) {
      for (Node* n = old->buckets[i].get(); n != nullptr;) {
        Node* next = n->next.get();
        atomos::Shared<Node*>& head = bigger->bucket(n->hash);
        n->next.set(head.get());
        head.set(n);
        n = next;
      }
    }
    table_.set(bigger);
    atomos::tx_delete(old);
  }

  class Iter final : public MapIterator<K, V> {
   public:
    explicit Iter(Table* t) : t_(t) { advance(); }

    bool has_next() override { return n_ != nullptr; }

    std::pair<K, V> next() override {
      std::pair<K, V> out{n_->key.get(), n_->val.get()};
      n_ = n_->next.get();
      advance();
      return out;
    }

   private:
    void advance() {
      while (n_ == nullptr && bucket_ < t_->nbuckets) {
        n_ = t_->buckets[bucket_++].get();
      }
    }
    Table* t_;
    std::size_t bucket_ = 0;
    Node* n_ = nullptr;
  };

  Hash hash_;
  Eq eq_;
  const float load_factor_;
  atomos::Shared<long> size_;
  atomos::Shared<Table*> table_;
};

}  // namespace jstd
