// java.util-style collection interfaces.
//
// The paper's transactional collection classes are *wrappers* around
// existing Map / SortedMap / Queue implementations; these interfaces define
// the contract both the plain implementations (jstd::HashMap, jstd::TreeMap,
// jstd::LinkedQueue) and the wrappers (tcc::TransactionalMap, ...) satisfy,
// so a wrapper is a drop-in replacement.
//
// Key/value types must be trivially copyable machine words (ints, ids,
// pointers to entity objects); absent values are conveyed via std::optional,
// standing in for Java's null returns.
#pragma once

#include <memory>
#include <optional>
#include <utility>

namespace jstd {

/// entrySet().iterator() equivalent: enumerates (key, value) pairs.
template <class K, class V>
class MapIterator {
 public:
  virtual ~MapIterator() = default;
  /// True if another entry exists.  NOTE (paper Table 1): observing `false`
  /// reveals the map's size — transactional wrappers take a size lock here.
  virtual bool has_next() = 0;
  /// The next entry.  Calling past the end is undefined.
  virtual std::pair<K, V> next() = 0;
};

/// java.util.Map's primitive operations (paper Section 3.1's reduction:
/// isEmpty, putAll, etc. are derivatives of these).
template <class K, class V>
class Map {
 public:
  virtual ~Map() = default;

  /// Value bound to `key`, if any.
  virtual std::optional<V> get(const K& key) const = 0;
  /// Binds `key` to `value`; returns the previous binding, if any.
  virtual std::optional<V> put(const K& key, const V& value) = 0;
  /// Unbinds `key`; returns the removed value, if any.
  virtual std::optional<V> remove(const K& key) = 0;
  /// True if `key` is bound.
  virtual bool contains_key(const K& key) const = 0;
  /// Number of bindings.
  virtual long size() const = 0;
  /// Derivative of size() by default — precisely the concurrency-limiting
  /// choice Section 5.1 discusses; wrappers may override with a dedicated
  /// empty-transition lock.
  virtual bool is_empty() const { return size() == 0; }
  /// Enumerates all entries (unspecified order for hash maps).
  virtual std::unique_ptr<MapIterator<K, V>> iterator() const = 0;
};

/// java.util.SortedMap: ordered iteration, endpoints, range views.
template <class K, class V>
class SortedMap : public Map<K, V> {
 public:
  /// Smallest key, if any.
  virtual std::optional<K> first_key() const = 0;
  /// Largest key, if any.
  virtual std::optional<K> last_key() const = 0;
  /// In-order enumeration of keys in [from, to); std::nullopt bounds are
  /// open (headMap/tailMap/subMap views collapse to this single primitive).
  virtual std::unique_ptr<MapIterator<K, V>> range_iterator(
      const std::optional<K>& from, const std::optional<K>& to) const = 0;
  /// Largest key strictly smaller than `key`, if any (the predecessor; used
  /// by wrappers to merge endpoint views with buffered removals).
  virtual std::optional<K> last_key_before(const K& key) const = 0;
};

/// util.concurrent's Channel: the narrow enqueue/dequeue interface the paper
/// wraps with TransactionalQueue (random access deliberately absent).
template <class T>
class Channel {
 public:
  virtual ~Channel() = default;
  /// Enqueues an element.
  virtual void put(const T& item) = 0;
  /// Dequeues an element, if any (non-blocking poll).
  virtual std::optional<T> poll() = 0;
  /// The element poll() would return, without removing it.
  virtual std::optional<T> peek() const = 0;
};

/// A plain queue (the implementation TransactionalQueue wraps).
template <class T>
class Queue : public Channel<T> {
 public:
  virtual long size() const = 0;
  virtual bool is_empty() const { return size() == 0; }
};

}  // namespace jstd
