// Contention management policies (paper Section 5.1): how long an aborted
// transaction backs off before retrying.  The TM is committer-wins (TCC), so
// the contention manager only shapes retry pacing; it cannot deadlock.
#pragma once

#include <algorithm>
#include <cstdint>

namespace atomos {

/// Strategy interface: cycles of backoff before retry `attempt` on `cpu`.
class ContentionManager {
 public:
  virtual ~ContentionManager() = default;
  virtual std::uint64_t backoff_cycles(int cpu, int attempt) = 0;
};

/// Exponential backoff with deterministic per-CPU jitter (the default).
class PoliteBackoff final : public ContentionManager {
 public:
  explicit PoliteBackoff(std::uint64_t base = 32, int max_shift = 8)
      : base_(base), max_shift_(max_shift) {}

  std::uint64_t backoff_cycles(int cpu, int attempt) override {
    const int shift = std::min(attempt, max_shift_);
    // xorshift-style deterministic jitter so CPUs desynchronize.
    std::uint64_t x = state_ * 6364136223846793005ULL + 1442695040888963407ULL +
                      static_cast<std::uint64_t>(cpu);
    state_ = x;
    const std::uint64_t window = base_ << shift;
    return window + (x >> 33) % (window + 1);
  }

 private:
  std::uint64_t base_;
  int max_shift_;
  std::uint64_t state_ = 0x9e3779b97f4a7c15ULL;
};

/// Retry immediately (useful to demonstrate livelock-prone configurations).
class AggressiveRetry final : public ContentionManager {
 public:
  std::uint64_t backoff_cycles(int, int) override { return 0; }
};

/// Karma-flavoured: repeatedly aborted transactions back off *less* so they
/// eventually win against shorter transactions (priority via persistence).
///
/// The window is jittered per CPU like PoliteBackoff: the pure
/// `16 << max(0, 6-attempt)` formula ignored `cpu`, so equally-aborted CPUs
/// computed identical backoffs, restarted in deterministic lockstep, and
/// re-collided on every retry (see ContentionTest.KarmaLockstepCollides).
class KarmaBackoff final : public ContentionManager {
 public:
  std::uint64_t backoff_cycles(int cpu, int attempt) override {
    const int shift = std::max(0, 6 - attempt);  // shrink with each defeat
    const std::uint64_t window = 16ULL << shift;
    std::uint64_t x = state_ * 6364136223846793005ULL + 1442695040888963407ULL +
                      static_cast<std::uint64_t>(cpu);
    state_ = x;
    return window + (x >> 33) % (window + 1);
  }

 private:
  std::uint64_t state_ = 0x9e3779b97f4a7c15ULL;
};

}  // namespace atomos
