// sim-timed mutual exclusion for lock-mode ("Java") runs.
//
// Models a test-and-test-and-set spinlock with a bounded spin phase followed
// by FIFO parking — the flavour of adaptive monitor a JVM provides.  The
// lock word has a simulated (virtual) address, so acquiring a contended lock
// pays MESI line ping-pong on the simulated bus, and the holder's critical
// section serializes waiters in virtual time.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/engine.h"
#include "sim/vaddr.h"

namespace atomos {

class Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Acquires the lock, spinning then parking.  Outside a simulation this
  /// is a no-op (setup code is single-threaded).
  void lock();

  /// Releases the lock, handing off to the oldest parked waiter if any.
  void unlock();

  /// True if the calling virtual CPU holds the lock.
  bool held_by_me() const;

 private:
  static constexpr int kSpinsBeforePark = 16;

  int owner_ = -1;                 // virtual CPU holding the lock
  std::deque<int> waiters_;        // parked CPUs, FIFO
  // Timed address of the lock word: lock-arena, line-isolated, so lock
  // ping-pong never false-shares with data or with another lock.
  std::uintptr_t vaddr_ = sim::va_alloc(8, sim::kLockWord);
};

/// RAII guard (CP.20: use RAII, never plain lock()/unlock()).
class LockGuard {
 public:
  explicit LockGuard(Mutex& m) : m_(m) { m_.lock(); }
  ~LockGuard() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

}  // namespace atomos
