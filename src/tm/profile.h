// TAPE-style conflict profiling (paper Section 6.3, citing Chafi et al.'s
// Transactional Application Profiling Environment).
//
// Data structures may label their hot cells (via the optional name argument
// of atomos::Shared); when profiling is enabled, every violation a committer
// inflicts is attributed to the labelled cell(s) on the line that caused it,
// producing the "which object is the source of lost work" report the
// paper's authors used to find District.nextOrder and friends.
//
// Labels are recorded PER CELL, not per line.  The original per-line map was
// last-writer-wins: when two labelled cells were co-resident on one virtual
// line, only the later label survived — which is exactly how the fig4
// feedback storm got misattributed to "Warehouse.nextHistory" when the hot
// cell was historyTable's table pointer.  find() now reports every labelled
// cell resident on the line, joined with '+', so txtrace/profile reports
// can't hide a co-resident culprit.  (With arena-segregated placement —
// sim/vaddr.h — labelled metadata cells get private lines and multi-label
// lines should no longer occur; if one shows up in a report, that is itself
// a layout bug worth seeing.)
//
// One Profile per atomos::Runtime (accessed as Runtime::profile()), so
// concurrent simulations on different host threads — the harness driver runs
// one figure point per worker thread — keep fully independent label maps.
// There is deliberately no process-global instance: profiling state was the
// last global mutable singleton in the TM layer, and de-globalizing it is
// what makes host-parallel sweeps bit-identical to serial ones.
//
// ORDERING CONTRACT (labels are recorded only while profiling is enabled):
//   1. construct the sim::Engine, then the atomos::Runtime;
//   2. call Runtime::profile().enable(true) BEFORE constructing the labelled
//      objects — a note_range() issued while profiling is disabled silently
//      records nothing, so enabling profiling only after object setup yields
//      an empty label map and every violation attributes to "<unnamed>";
//   3. construct the labelled Shared cells (object setup);
//   4. Engine::run().
// Labelling from inside a running simulation (a worker fiber constructing a
// named Shared cell while profiling is enabled) is flagged by the
// TXCC_CHECKED auditor (late-profile-label): the label map is host-side
// state that is not rolled back if the labelling transaction aborts, and a
// label attached mid-run attributes only the remainder of the run.
#pragma once

#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/memsys.h"

namespace atomos {

class Profile {
 public:
  Profile() = default;
  Profile(const Profile&) = delete;
  Profile& operator=(const Profile&) = delete;

  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Records one labelled cell at [addr, addr+len) — call from object setup,
  /// after enable(true) and before Engine::run() (see the ordering contract
  /// above; when profiling is disabled this records nothing).
  void note_range(std::uintptr_t addr, std::size_t len, const char* name) {
    if (!enabled_) return;
    const std::size_t idx = cells_.size();
    cells_.push_back(Cell{addr, len, name});
    const sim::LineAddr first = sim::line_of(addr);
    const sim::LineAddr last = sim::line_of(addr + (len == 0 ? 0 : len - 1));
    for (sim::LineAddr l = first; l <= last; ++l) {
      lines_[l].push_back(idx);
      joined_.erase(l);    // invalidate any cached join for this line
      id_cache_.erase(l);  // and any cached label id (may even be -1)
    }
  }

  /// The label covering `line`, or nullptr if no labelled cell is resident.
  /// When several distinctly-named cells share the line, the result is every
  /// name in construction order joined with '+' (e.g.
  /// "historyTable.table+Warehouse.nextHistory").  The returned pointer
  /// stays valid for the Profile's lifetime.
  const char* find(sim::LineAddr line) const {
    auto it = lines_.find(line);
    if (it == lines_.end()) return nullptr;
    // Fast path: one resident labelled cell (the norm under arena layout).
    if (it->second.size() == 1) return cells_[it->second.front()].name;
    auto jt = joined_.find(line);
    if (jt == joined_.end()) jt = joined_.emplace(line, join(it->second)).first;
    return jt->second.c_str();
  }

  /// Stable dense integer id for the line's label (the same string find()
  /// returns), or -1 when no labelled cell is resident.  Hot paths bump
  /// per-id counters with this and resolve strings via label_name() only at
  /// report time, so a violation on a labelled line costs a hash lookup
  /// instead of a std::string construction.  The id→line mapping is cached;
  /// note_range() invalidates affected lines.
  int find_id(sim::LineAddr line) const {
    auto it = id_cache_.find(line);
    if (it != id_cache_.end()) return it->second;
    const char* name = find(line);
    int id = -1;
    if (name != nullptr) {
      for (std::size_t k = 0; k < label_names_.size(); ++k) {
        if (label_names_[k] == name) {
          id = static_cast<int>(k);
          break;
        }
      }
      if (id < 0) {
        id = static_cast<int>(label_names_.size());
        label_names_.emplace_back(name);
      }
    }
    id_cache_.emplace(line, id);
    return id;
  }

  /// The label string interned under `id` by find_id (0 <= id < the number
  /// of distinct labels handed out).  Valid until clear().
  const std::string& label_name(int id) const {
    return label_names_[static_cast<std::size_t>(id)];
  }

  void clear() {
    cells_.clear();
    lines_.clear();
    joined_.clear();
    id_cache_.clear();
    label_names_.clear();  // outstanding ids die too: flush counters first
  }

  /// Visits every (line, label) pair — used to dump the label map into a
  /// trace at teardown.  Iteration order is unspecified; sort downstream.
  template <class F>
  void for_each(F f) const {
    for (const auto& [line, idxs] : lines_) f(line, find(line));
  }

 private:
  struct Cell {
    std::uintptr_t addr;
    std::size_t len;
    const char* name;
  };

  /// Joins the distinct names of the cells in `idxs` (construction order,
  /// first occurrence wins) with '+'.
  std::string join(const std::vector<std::size_t>& idxs) const {
    std::string out;
    for (std::size_t i : idxs) {
      const char* name = cells_[i].name;
      bool seen = false;
      for (std::size_t j : idxs) {
        if (j >= i) break;
        if (std::strcmp(cells_[j].name, name) == 0) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      if (!out.empty()) out += '+';
      out += name;
    }
    return out;
  }

  bool enabled_ = false;
  std::vector<Cell> cells_;  // every labelled cell, in construction order
  std::unordered_map<sim::LineAddr, std::vector<std::size_t>> lines_;
  mutable std::unordered_map<sim::LineAddr, std::string> joined_;  // lazy join cache
  // Label interning (find_id): line -> id cache (-1 = unlabelled) and the
  // id -> name table.  Mutable for the same reason joined_ is: lazy caches
  // behind a logically-const lookup.
  mutable std::unordered_map<sim::LineAddr, int> id_cache_;
  mutable std::vector<std::string> label_names_;
};

}  // namespace atomos
