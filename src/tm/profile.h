// TAPE-style conflict profiling (paper Section 6.3, citing Chafi et al.'s
// Transactional Application Profiling Environment).
//
// Data structures may label the cache lines of their hot fields (via the
// optional name argument of atomos::Shared); when profiling is enabled, every
// violation a committer inflicts is attributed to the labelled line that
// caused it, producing the "which object is the source of lost work" report
// the paper's authors used to find District.nextOrder and friends.
//
// One Profile per atomos::Runtime (accessed as Runtime::profile()), so
// concurrent simulations on different host threads — the harness driver runs
// one figure point per worker thread — keep fully independent label maps.
// There is deliberately no process-global instance: profiling state was the
// last global mutable singleton in the TM layer, and de-globalizing it is
// what makes host-parallel sweeps bit-identical to serial ones.
//
// ORDERING CONTRACT (labels are recorded only while profiling is enabled):
//   1. construct the sim::Engine, then the atomos::Runtime;
//   2. call Runtime::profile().enable(true) BEFORE constructing the labelled
//      objects — a note_range() issued while profiling is disabled silently
//      records nothing, so enabling profiling only after object setup yields
//      an empty label map and every violation attributes to "<unnamed>";
//   3. construct the labelled Shared cells (object setup);
//   4. Engine::run().
// Labelling from inside a running simulation (a worker fiber constructing a
// named Shared cell while profiling is enabled) is flagged by the
// TXCC_CHECKED auditor (late-profile-label): the label map is host-side
// state that is not rolled back if the labelling transaction aborts, and a
// label attached mid-run attributes only the remainder of the run.
#pragma once

#include <unordered_map>

#include "sim/memsys.h"

namespace atomos {

class Profile {
 public:
  Profile() = default;
  Profile(const Profile&) = delete;
  Profile& operator=(const Profile&) = delete;

  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Labels the lines covering [addr, addr+len) — call from object setup,
  /// after enable(true) and before Engine::run() (see the ordering contract
  /// above; when profiling is disabled this records nothing).
  void note_range(std::uintptr_t addr, std::size_t len, const char* name) {
    if (!enabled_) return;
    const sim::LineAddr first = sim::line_of(addr);
    const sim::LineAddr last = sim::line_of(addr + (len == 0 ? 0 : len - 1));
    for (sim::LineAddr l = first; l <= last; ++l) lines_[l] = name;
  }

  /// The label covering `line`, or nullptr.
  const char* find(sim::LineAddr line) const {
    auto it = lines_.find(line);
    return it == lines_.end() ? nullptr : it->second;
  }

  void clear() { lines_.clear(); }

  /// Visits every (line, label) pair — used to dump the label map into a
  /// trace at teardown.  Iteration order is unspecified; sort downstream.
  template <class F>
  void for_each(F f) const {
    for (const auto& [line, name] : lines_) f(line, name);
  }

 private:
  bool enabled_ = false;
  std::unordered_map<sim::LineAddr, const char*> lines_;
};

}  // namespace atomos
