// TAPE-style conflict profiling (paper Section 6.3, citing Chafi et al.'s
// Transactional Application Profiling Environment).
//
// Data structures may label the cache lines of their hot fields (via the
// optional name argument of atomos::Shared); when profiling is enabled, every
// violation a committer inflicts is attributed to the labelled line that
// caused it, producing the "which object is the source of lost work" report
// the paper's authors used to find District.nextOrder and friends.
#pragma once

#include <string>
#include <unordered_map>

#include "sim/memsys.h"

namespace atomos {

class Profile {
 public:
  static Profile& instance() {
    static Profile p;
    return p;
  }

  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Labels the lines covering [addr, addr+len) — call from object setup.
  void note_range(std::uintptr_t addr, std::size_t len, const char* name) {
    if (!enabled_) return;
    const sim::LineAddr first = sim::line_of(addr);
    const sim::LineAddr last = sim::line_of(addr + (len == 0 ? 0 : len - 1));
    for (sim::LineAddr l = first; l <= last; ++l) lines_[l] = name;
  }

  /// The label covering `line`, or nullptr.
  const char* find(sim::LineAddr line) const {
    auto it = lines_.find(line);
    return it == lines_.end() ? nullptr : it->second;
  }

  void clear() { lines_.clear(); }

 private:
  bool enabled_ = false;
  std::unordered_map<sim::LineAddr, const char*> lines_;
};

}  // namespace atomos
