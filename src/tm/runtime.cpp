#include "tm/runtime.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <exception>

#include "tm/audit.h"

namespace atomos {

using detail::Txn;

Runtime::Runtime(sim::Engine& eng, std::unique_ptr<ContentionManager> cm)
    : eng_(eng),
      cm_(cm != nullptr ? std::move(cm) : std::make_unique<PoliteBackoff>()),
      ctx_(static_cast<std::size_t>(eng.config().num_cpus)),
      reader_dir_(eng.config().num_cpus) {
  if (tls_runtime_ != nullptr)
    throw std::logic_error("atomos::Runtime: another runtime is already active on this thread");
  tls_runtime_ = this;
  active_chops_.assign(static_cast<std::size_t>(eng.config().num_cpus), nullptr);
  // Consume a pending thread-local trace request (set by the harness driver
  // before it invokes a series body, or directly by tests/benches).  Enable
  // profiling too: the labelled Shared cells are constructed after the
  // Runtime (see profile.h's ordering contract), and the label map is what
  // lets the trace attribute conflicts to named fields.
  trace::Request req;
  if (trace::take_request(req)) {
    tracer_ = std::make_unique<trace::Tracer>(eng.config().num_cpus, req.capacity);
    trace_path_ = std::move(req.path);
    profile_.enable(true);
    eng_.set_tracer(tracer_.get());
  }
}

Runtime::~Runtime() {
  flush_violation_counters();
  if (tracer_ != nullptr) {
    eng_.set_tracer(nullptr);
    // The per-CPU streams must be well-nested (begin/commit/abort pairing,
    // open enter/exit balance) — a torn stream means a lost emission point.
    audit::check_trace_nesting(*tracer_);
    profile_.for_each([this](sim::LineAddr line, const char* name) {
      tracer_->set_label(line, name);
    });
    if (!trace_path_.empty()) {
      try {
        tracer_->write(trace_path_);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "atomos: trace write failed: %s\n", e.what());
      }
    }
  }
  // Free anything still parked in purgatory (simulation is over).
  for (auto& p : purgatory_) p.del(p.ptr);
  for (CpuCtx& c : ctx_) {
    for (detail::Txn* t : c.pool) delete t;
  }
  tls_runtime_ = nullptr;
}

void Runtime::throw_no_runtime() {
  throw std::logic_error("atomos::Runtime: none active");
}

Txn* Runtime::bottom_of(int cpu) {
  Txn* t = ctx(cpu).cur;
  if (t == nullptr) return nullptr;
  while (t->parent != nullptr) t = t->parent;
  return t;
}

bool Runtime::in_txn() {
  return sim::Engine::in_worker() && ctx(eng_.cpu_id()).cur != nullptr;
}

TxnId Runtime::self_id() {
  Txn* b = bottom_of(eng_.cpu_id());
  if (b == nullptr) throw std::logic_error("atomos::self_id: not inside a transaction");
  return TxnId{b->cpu, b->incarnation};
}

bool Runtime::txn_live(const TxnId& id) {
  if (id.cpu < 0 || id.cpu >= eng_.config().num_cpus) return false;
  Txn* b = bottom_of(id.cpu);
  return b != nullptr && b->incarnation == id.incarnation;
}

bool Runtime::violate(const TxnId& victim) {
  if (victim.cpu < 0) return false;
  Txn* b = bottom_of(victim.cpu);
  if (b == nullptr || b->incarnation != victim.incarnation) return false;
  if (eng_.cpu_id() == victim.cpu) return false;  // never self-violate
  b->kill_frame = 0;
  b->kill_semantic = true;
  return true;
}

Txn* Runtime::begin_txn(int cpu, bool open, int attempt) {
  CpuCtx& c = ctx(cpu);
  check_kill(cpu);  // do not start children under a doomed ancestor
  Txn* t;
  if (!c.pool.empty()) {
    t = c.pool.back();
    c.pool.pop_back();
  } else {
    t = new Txn();
  }
  assert(open || c.cur == nullptr);  // closed nesting uses frames
  t->reset(cpu, c.next_incarnation++, next_epoch_++, open, c.cur, eng_.now(), attempt);
  c.cur = t;
  if (tracer_ != nullptr)
    tracer_->on_txn_begin(cpu, eng_.now(), open, t->incarnation, attempt);
  eng_.tick(eng_.config().txn_begin_cycles);
  return t;
}

void Runtime::release_txn(Txn* t) {
  // The lines still in the read set hold reader-directory references; drop
  // them before the Txn identity disappears into the pool.  Every such line
  // entered the read set as exactly one surviving prev<0 read_log entry
  // (frame rollback removes the log entry and the read_frame entry
  // together), so draining the log visits each live line exactly once —
  // O(reads taken), not O(read-table capacity).
  const int cpu = t->cpu;
  for (const auto& [line, prev] : t->read_log) {
    if (prev < 0) reader_dir_.remove(line, cpu);
  }
  // Destroy captured state promptly (handlers can pin user objects); the
  // plain-data logs keep their capacity for the next incarnation.
  t->commit_handlers.clear();
  t->abort_handlers.clear();
  t->top_commit_handlers.clear();
  t->top_abort_handlers.clear();
  ctx(cpu).pool.push_back(t);
}

void Runtime::report_violation(int cpu, Txn* flagged) {
  // Note: abort-handler (compensation) transactions are NOT exempt — they
  // run detached (their doomed ancestors are unreachable from ctx.cur), and
  // their own memory conflicts must retry like any other transaction's.
  // check_kill passed the outermost flagged transaction: it dominates
  // everything nested inside it.
  auto& st = eng_.stats().cpu(cpu);
  if (flagged->kill_semantic) st.semantic_violations++;
  if (!flagged->open && flagged->parent == nullptr && flagged->kill_frame == 0) {
    st.violations++;
  } else {
    st.nested_violations++;
  }
  throw Violated{flagged, flagged->kill_frame};
}

void Runtime::clear_kill(Txn& t) {
  t.kill_frame = -1;
  t.kill_semantic = false;
}

// ---- frames (closed nesting) ----

void Runtime::push_frame(Txn& t) {
  detail::FrameMark m;
  m.read_log = t.read_log.size();
  m.writes = t.writes.size();
  m.write_undo = t.write_undo.size();
  m.commit_handlers = t.commit_handlers.size();
  m.abort_handlers = t.abort_handlers.size();
  m.allocs = t.allocs.size();
  m.deletes = t.deletes.size();
  t.marks.push_back(m);
  t.depth++;
}

void Runtime::pop_frame_commit(Txn& t) {
  // Reads taken by this frame now belong to the parent frame: a later
  // conflict on them must restart the parent, not the (gone) child.
  const detail::FrameMark& m = t.marks.back();
  const int parent_depth = t.depth - 1;
  for (std::size_t i = m.read_log; i < t.read_log.size(); ++i) {
    std::int32_t* f = t.read_frame.find(t.read_log[i].first);
    if (f != nullptr && *f > parent_depth) *f = parent_depth;
  }
  // Writes, handlers, allocs and deletes transfer positionally: they simply
  // stay in the logs, now below the parent's high-water mark.
  t.marks.pop_back();
  t.depth--;
}

void Runtime::pop_frame_abort(Txn& t) {
  const detail::FrameMark m = t.marks.back();
  t.marks.pop_back();
  t.depth--;

  // Reverse-apply in-place write updates, then drop writes appended by the
  // frame (order matters only for undo entries; see Txn docs).
  for (std::size_t i = t.write_undo.size(); i > m.write_undo; --i) {
    const auto& u = t.write_undo[i - 1];
    t.writes[u.idx].val = u.prev_val;
    t.writes[u.idx].size = u.prev_size;
  }
  t.write_undo.resize(m.write_undo);
  for (std::size_t i = t.writes.size(); i > m.writes; --i) {
    t.write_idx.erase(t.writes[i - 1].addr);
  }
  t.writes.resize(m.writes);

  // Roll back read-set ownership changes (reverse order).  Undoing a
  // first-read (prev < 0) also drops the line's reader-directory reference:
  // the aborted frame's reads must not attract violations any more.
  for (std::size_t i = t.read_log.size(); i > m.read_log; --i) {
    const auto& [line, prev] = t.read_log[i - 1];
    if (prev < 0) {
      t.read_frame.erase(line);
      reader_dir_.remove(line, t.cpu);
    } else {
      *t.read_frame.find(line) = prev;
    }
  }
  t.read_log.resize(m.read_log);

  // Handlers registered by the aborted frame are discarded (paper S4).
  t.commit_handlers.resize(m.commit_handlers);
  t.abort_handlers.resize(m.abort_handlers);

  // Objects the frame allocated were never published: destroy them (LIFO).
  for (std::size_t i = t.allocs.size(); i > m.allocs; --i) {
    t.allocs[i - 1].del(t.allocs[i - 1].ptr);
  }
  t.allocs.resize(m.allocs);
  t.deletes.resize(m.deletes);  // deferred deletes cancelled
}

// ---- handlers ----

void Runtime::on_commit(std::function<void()> h) {
  if (mode() == sim::Mode::kLock || !sim::Engine::in_worker()) {
    h();  // no speculation: "commit" is immediate
    return;
  }
  Txn* t = ctx(eng_.cpu_id()).cur;
  if (t == nullptr) {
    h();
    return;
  }
  t->commit_handlers.push_back(std::move(h));
}

void Runtime::on_abort(std::function<void()> h) {
  if (mode() == sim::Mode::kLock || !sim::Engine::in_worker()) return;  // cannot abort
  Txn* t = ctx(eng_.cpu_id()).cur;
  if (t == nullptr) return;
  t->abort_handlers.push_back(std::move(h));
}

void Runtime::on_top_commit(std::function<void()> h, std::function<bool()> needs_token) {
  if (mode() == sim::Mode::kLock || !sim::Engine::in_worker()) {
    h();
    return;
  }
  Txn* b = bottom_of(eng_.cpu_id());
  if (b == nullptr) {
    h();
    return;
  }
  b->top_commit_handlers.push_back(
      detail::Txn::TopCommitHandler{std::move(h), std::move(needs_token)});
}

void Runtime::on_top_abort(std::function<void()> h) {
  if (mode() == sim::Mode::kLock || !sim::Engine::in_worker()) return;
  Txn* b = bottom_of(eng_.cpu_id());
  if (b == nullptr) return;
  b->top_abort_handlers.push_back(std::move(h));
}

// ---- commit / abort ----

void Runtime::acquire_token(int cpu) {
  if (token_owner_ == cpu) {
    token_depth_++;
    return;
  }
  if (token_owner_ != -1 && tracer_ != nullptr)
    tracer_->on_lock_block(cpu, eng_.now(), token_owner_);
  while (token_owner_ != -1) {
    token_queue_.push_back(cpu);
    eng_.block();
    if (token_owner_ == cpu) {
      token_depth_ = 1;
      return;
    }
  }
  token_owner_ = cpu;
  token_depth_ = 1;
}

void Runtime::release_token(int cpu) {
  assert(token_owner_ == cpu);
  if (--token_depth_ > 0) return;
  token_owner_ = -1;
  if (!token_queue_.empty()) {
    const int next = token_queue_.front();
    token_queue_.pop_front();
    token_owner_ = next;
    token_depth_ = 0;  // the waiter sets its own depth on wake
    eng_.unblock(next, eng_.now());
  }
}

/// Flags every transaction (other than the committer's CPU's own stack) that
/// has `line` in a live read set.  Shared by the commit broadcast and the
/// naked-store path; also charges the TAPE-style `violations@<cell>` counter
/// when profiling is on.  The reader directory narrows the scan to CPUs that
/// actually read the line, so a commit costs O(write lines x real readers).
void Runtime::flag_readers(sim::LineAddr line, int committer) {
  const bool profiling = profile_.enabled();
  reader_dir_.for_each_reader_except(line, committer, [&](int c) {
    for (Txn* v = ctx(c).cur; v != nullptr; v = v->parent) {
      // Ancestors of the committer are exempt by construction (they are on
      // another CPU here, so no exemption needed).
      const std::int32_t* f = v->read_frame.find(line);
      if (f == nullptr) continue;
      const int frame = *f;
      if (v->kill_frame < 0 || frame < v->kill_frame) v->kill_frame = frame;
      if (tracer_ != nullptr) tracer_->on_violation_flag(committer, eng_.now(), line, c);
      if (profiling) {
        // Interned id, not string: the "violations@<label>" stats entries
        // are materialized once at teardown (flush_violation_counters).
        const std::size_t slot = static_cast<std::size_t>(profile_.find_id(line) + 1);
        if (slot >= viol_counts_.size()) viol_counts_.resize(slot + 1, 0);
        ++viol_counts_[slot];
      }
    }
  });
}

void Runtime::flush_violation_counters() {
  if (viol_counts_.empty()) return;
  if (viol_counts_[0] != 0)
    eng_.stats().bump("violations@<unnamed>", viol_counts_[0]);
  for (std::size_t k = 1; k < viol_counts_.size(); ++k) {
    if (viol_counts_[k] != 0)
      eng_.stats().bump("violations@" + profile_.label_name(static_cast<int>(k) - 1),
                        viol_counts_[k]);
  }
  viol_counts_.clear();  // bump() accumulates; never double-flush
}

void Runtime::broadcast_and_apply(Txn& t) {
  // Drain the write set as line runs with no hash probes on the commit
  // path, so each distinct directory line is broadcast (invalidate + flag)
  // exactly once.  Typical write sets are a handful of entries whose
  // neighbours share a line, so the small-set path dedups with a scan of
  // the (cache-resident) gathered lines; past that the cost flips and a
  // sort + unique run wins.  Line order within a broadcast is
  // timing-irrelevant: the commit is charged up front as one bus
  // occupancy, and reader flagging only min-updates kill_frame, which is
  // order-independent.
  constexpr std::size_t kSortedDrainThreshold = 32;
  scratch_lines_.clear();
  if (t.writes.size() <= kSortedDrainThreshold) {
    for (const auto& w : t.writes) {
      const sim::LineAddr line = sim::line_of(w.addr);
      if (!scratch_lines_.empty() && scratch_lines_.back() == line) continue;
      bool seen = false;
      for (const sim::LineAddr l : scratch_lines_) {
        if (l == line) {
          seen = true;
          break;
        }
      }
      if (!seen) scratch_lines_.push_back(line);
    }
  } else {
    for (const auto& w : t.writes) scratch_lines_.push_back(sim::line_of(w.addr));
    std::sort(scratch_lines_.begin(), scratch_lines_.end());
    scratch_lines_.erase(std::unique(scratch_lines_.begin(), scratch_lines_.end()),
                         scratch_lines_.end());
  }

  eng_.advance_to(eng_.memsys().tcc_commit(t.cpu, scratch_lines_.size(), eng_.now()));

  for (const sim::LineAddr line : scratch_lines_) {
    eng_.memsys().invalidate_copies(t.cpu, line);
    flag_readers(line, t.cpu);
    if (active_chop_count_ != 0) flag_chops(line, t.cpu);
  }
  // Value apply stays in log (program) order: entries are unique per
  // address, so only the line walk above needed sorting.
  for (const auto& w : t.writes) {
    std::memcpy(w.host, &w.val, w.size);
  }
}

void Runtime::commit_txn(Txn* t) {
  CpuCtx& c = ctx(t->cpu);
  assert(c.cur == t && t->depth == 0);

  check_kill(t->cpu);  // flagged while working: abort instead of committing

  // An open child with a parent does not run handlers at its own commit:
  // they transfer to the parent below (paper S4).
  bool handlers_need_token = (t->parent == nullptr) && !t->commit_handlers.empty();
  bool has_top_handlers = (t->parent == nullptr) && !t->top_commit_handlers.empty();
  if (has_top_handlers && !handlers_need_token) {
    for (const auto& th : t->top_commit_handlers) {
      if (!th.needs_token || th.needs_token()) {
        handlers_need_token = true;
        break;
      }
    }
  }
  const bool runs_handlers = handlers_need_token;
  const bool trivial = t->writes.empty() && !runs_handlers && t->deletes.empty();
  if (trivial && t->open && token_owner_ != -1 && token_owner_ != t->cpu) {
    // A read-only open child must not slip past an in-progress commit: its
    // semantic lock acquisitions have to be ordered either before that
    // committer's conflict detection or after its broadcast.  Waiting for
    // the token gives exactly that: if the commit wrote what we read, the
    // broadcast flags us while we wait and check_kill unwinds us.
    acquire_token(t->cpu);
    try {
      check_kill(t->cpu);
    } catch (...) {
      release_token(t->cpu);
      throw;
    }
    release_token(t->cpu);
  }
  if (!trivial) {
    acquire_token(t->cpu);
    try {
      check_kill(t->cpu);  // last chance: flagged while queueing for the token
      // With the token held and the logs final, the read/write sets must be
      // internally consistent before anything is broadcast (txcheck).
      audit::check_txn_sets(*t);
      audit::check_reader_dir(*t, reader_dir_);
      // Run commit handlers inside the token, each as a closed-nested
      // frame; they may register further commit handlers (run too).
      if (runs_handlers) {
        if (tracer_ != nullptr)
          tracer_->on_handler_run(
              t->cpu, eng_.now(), /*abort_path=*/false,
              t->commit_handlers.size() + t->top_commit_handlers.size());
        for (std::size_t i = 0; i < t->commit_handlers.size(); ++i) {
          auto h = std::move(t->commit_handlers[i]);
          run_closed_frame(*t, [&h] { h(); });
        }
        for (std::size_t i = 0; i < t->top_commit_handlers.size(); ++i) {
          auto h = std::move(t->top_commit_handlers[i].fn);
          run_closed_frame(*t, [&h] { h(); });
        }
      }
      broadcast_and_apply(*t);
    } catch (...) {
      release_token(t->cpu);
      throw;
    }
    // Deferred deletes take effect now; reclaim once concurrent transactions
    // that may still hold host pointers have drained.
    for (const auto& d : t->deletes) {
      purgatory_.push_back(Purgatory{next_epoch_++, d.ptr, d.del});
    }
    release_token(t->cpu);
  }

  // Token-free cleanup path: every top handler declared itself pure
  // cleanup and there is nothing to broadcast.
  if (trivial && has_top_handlers) {
    for (std::size_t i = 0; i < t->top_commit_handlers.size(); ++i) {
      auto h = std::move(t->top_commit_handlers[i].fn);
      h();
    }
  }

  // A chop piece's footprint joins the chop's forward-dependency lines
  // before anything else can run on this CPU (we are past the last possible
  // unwind; the broadcast, if any, is done).
  if (active_chop_count_ != 0) chop_note_committed_piece(*t);

  if (!t->open) {
    eng_.stats().cpu(t->cpu).commits++;
  }
  if (t->open) {
    eng_.stats().cpu(t->cpu).open_commits++;
    if (t->parent != nullptr) {
      // Open semantics: the child's handlers move to the parent; its read
      // and write dependencies are already globally committed / discarded.
      for (auto& h : t->commit_handlers) t->parent->commit_handlers.push_back(std::move(h));
      for (auto& h : t->abort_handlers) t->parent->abort_handlers.push_back(std::move(h));
    }
  }
  if (t->parent == nullptr) {
    // Bottom of the open-nesting stack: the incarnation is over.  Commit
    // handlers have run, so every semantic lock it took must be gone.
    const TxnId id{t->cpu, t->incarnation};
    audit::handler_pairing(id, t->top_commit_handlers.size(), t->top_abort_handlers.size());
    audit::txn_finished(id, /*committed=*/true);
  }
  if (tracer_ != nullptr)
    tracer_->on_txn_commit(t->cpu, eng_.now(), t->open, t->writes.size());
  notify_txn_sets(t, /*committed=*/true);
  c.cur = t->parent;
  release_txn(t);
  if (!purgatory_.empty()) collect_garbage();
}

void Runtime::abort_txn(Txn* t) {
  CpuCtx& c = ctx(t->cpu);
  // A detached handler transaction doomed mid-compensation (the aborting
  // owner's reader-directory refs are still live, so a concurrent commit can
  // flag it): its effects rolled back and run_txn retries it, so the audit
  // must forget this attempt's compensation notes.
  if (c.in_abort_handlers && t->parent == nullptr && t->open)
    audit::compensation_handler_aborted(t->cpu);
  // Unwind any frames the exception path has not popped (it pops all of its
  // own; this is belt-and-braces for user exceptions thrown mid-frame).
  while (t->depth > 0) pop_frame_abort(*t);
  notify_txn_sets(t, /*committed=*/false);

  eng_.memsys().abort_clear_speculative(t->cpu);
  auto& st = eng_.stats().cpu(t->cpu);
  st.lost_cycles += eng_.now() - t->start_clock;
  // Emit the abort before compensation runs: the abort handlers' detached
  // open transactions then appear after this event, keeping the per-CPU
  // stream well-nested even if a handler itself unwinds.
  if (tracer_ != nullptr)
    tracer_->on_txn_abort(t->cpu, eng_.now(), t->open,
                          eng_.now() - t->start_clock, t->attempt,
                          t->kill_semantic);

  // Destroy unpublished allocations (LIFO); cancel deferred deletes.
  for (std::size_t i = t->allocs.size(); i > 0; --i) t->allocs[i - 1].del(t->allocs[i - 1].ptr);
  t->allocs.clear();
  t->deletes.clear();

  // Pop before running compensation: abort handlers run as *detached* open
  // transactions so a doomed enclosing transaction cannot re-kill them.
  c.cur = t->parent;
  for (auto& h : t->top_abort_handlers) t->abort_handlers.push_back(std::move(h));
  if (!t->abort_handlers.empty()) {
    std::exception_ptr first_failure = run_compensation_handlers(
        t->cpu, TxnId{t->cpu, t->incarnation}, t->abort_handlers);
    if (first_failure) {
      release_txn(t);
      std::rethrow_exception(first_failure);
    }
  }

  if (t->parent == nullptr) {
    // Compensation has run; any semantic lock still on the books is leaked.
    const TxnId id{t->cpu, t->incarnation};
    audit::handler_pairing(id, t->top_commit_handlers.size(), t->top_abort_handlers.size());
    audit::txn_finished(id, /*committed=*/false);
  }
  const std::uint64_t penalty = eng_.config().violation_cycles +
                                cm_->backoff_cycles(t->cpu, t->attempt);
  release_txn(t);
  eng_.tick(penalty);
}

std::exception_ptr Runtime::run_compensation_handlers(
    int cpu, const TxnId& scope, std::vector<std::function<void()>>& handlers) {
  CpuCtx& c = ctx(cpu);
  if (tracer_ != nullptr)
    tracer_->on_handler_run(cpu, eng_.now(), /*abort_path=*/true, handlers.size());
  // Handlers run as *detached* open transactions: the current stack (a
  // doomed transaction being unwound, or a chop between pieces) must not be
  // able to re-kill or capture them.
  Txn* saved = c.cur;
  c.cur = nullptr;
  const bool saved_flag = c.in_abort_handlers;
  c.in_abort_handlers = true;
  // Scope the compensation run for the auditor: a collection compensation
  // that executes twice for the same aborted incarnation (e.g. a handler
  // registered twice) is detectable only within this bracket, because the
  // handler itself resets its collection-local state on first run.
  audit::abort_scope_begin(scope);
  // A compensation that unwinds (a user exception escaping its detached
  // open transaction) must not drop its *siblings*: each registered
  // compensation undoes an independent committed effect, so the rest still
  // have to run or their semantic locks and eager mutations leak.  Run
  // every handler newest-first, remember the first escape for the caller.
  std::exception_ptr first_failure;
  for (std::size_t i = handlers.size(); i > 0; --i) {
    auto h = std::move(handlers[i - 1]);
    try {
      run_txn(cpu, /*open=*/true, [&h] { h(); });
      audit::compensation_handler_committed(cpu);
    } catch (...) {  // txlint: allow(catch-swallow) rethrown by the caller
      if (!first_failure) first_failure = std::current_exception();
    }
  }
  audit::abort_scope_end(cpu);
  c.in_abort_handlers = saved_flag;
  c.cur = saved;
  return first_failure;
}

// ---- chopping (tm/chop.h) ----

void Runtime::chop_begin(int cpu, detail::ChopState* s) {
  assert(active_chops_[static_cast<std::size_t>(cpu)] == nullptr);
  active_chops_[static_cast<std::size_t>(cpu)] = s;
  ++active_chop_count_;
}

void Runtime::chop_end(int cpu) {
  assert(active_chops_[static_cast<std::size_t>(cpu)] != nullptr);
  active_chops_[static_cast<std::size_t>(cpu)] = nullptr;
  --active_chop_count_;
}

void Runtime::flag_chops(sim::LineAddr line, int committer) {
  for (std::size_t c = 0; c < active_chops_.size(); ++c) {
    detail::ChopState* s = active_chops_[c];
    if (s == nullptr || static_cast<int>(c) == committer) continue;
    if (s->dep_lines.find(line) != nullptr) {
      s->broken = true;
      ++s->breaks;
      if (tracer_ != nullptr)
        tracer_->on_violation_flag(committer, eng_.now(), line, static_cast<int>(c));
    }
  }
}

void Runtime::chop_note_committed_piece(Txn& t) {
  detail::ChopState* s = active_chops_[static_cast<std::size_t>(t.cpu)];
  if (s == nullptr || t.parent != nullptr || t.open) return;
  // Live read lines are the surviving prev<0 read_log entries (same idiom
  // as release_txn); write lines may repeat per entry, try_emplace dedups.
  for (const auto& [line, prev] : t.read_log) {
    if (prev < 0) s->dep_lines.try_emplace(line, 1);
  }
  for (const auto& w : t.writes) {
    s->dep_lines.try_emplace(sim::line_of(w.addr), 1);
  }
  ++chop_stats_.pieces;
}

void Runtime::notify_txn_sets(Txn* t, bool committed) {
  if (mc_observer_ == nullptr) return;
  // Same batched idioms as the commit path: live read lines come from the
  // surviving prev<0 read_log entries (see release_txn), write lines from a
  // sort+unique run.  The observer treats both as sets.
  mc_reads_scratch_.clear();
  mc_writes_scratch_.clear();
  for (const auto& [line, prev] : t->read_log) {
    if (prev < 0) mc_reads_scratch_.push_back(line);
  }
  for (const auto& w : t->writes) mc_writes_scratch_.push_back(sim::line_of(w.addr));
  std::sort(mc_writes_scratch_.begin(), mc_writes_scratch_.end());
  mc_writes_scratch_.erase(
      std::unique(mc_writes_scratch_.begin(), mc_writes_scratch_.end()),
      mc_writes_scratch_.end());
  mc_observer_->on_txn_sets(t->cpu, committed, t->open, mc_reads_scratch_, mc_writes_scratch_);
}

void Runtime::collect_garbage() {
  std::uint64_t min_active = next_epoch_;
  for (int c = 0; c < eng_.config().num_cpus; ++c) {
    Txn* b = bottom_of(c);
    if (b != nullptr && b->epoch < min_active) min_active = b->epoch;
  }
  while (!purgatory_.empty() && purgatory_.front().epoch < min_active) {
    purgatory_.front().del(purgatory_.front().ptr);
    purgatory_.pop_front();
  }
}

// ---- memory access ----

void Runtime::tm_read(std::uintptr_t addr, void* out, std::uint32_t size,
                      const void* committed) {
  const int cpu = eng_.cpu_id();
  check_kill(cpu);
  eng_.advance_to(eng_.memsys().tx_load(cpu, addr, eng_.now()));
  if (mc_observer_ != nullptr) mc_observer_->on_access(cpu, sim::line_of(addr), false);
  Txn* t = ctx(cpu).cur;
  if (t == nullptr) {  // non-transactional read in Tcc mode: committed value
    std::memcpy(out, committed, size);
    return;
  }
  // Track the read line in the innermost transaction at the current frame.
  // A first read (insertion) also registers this CPU in the line's reader
  // directory, which is how committers find us.
  const sim::LineAddr line = sim::line_of(addr);
  auto [frame, inserted] = t->read_frame.try_emplace(line, t->depth);
  if (inserted) {
    t->read_log.emplace_back(line, -1);
    reader_dir_.add(line, cpu);
  } else if (*frame > t->depth) {
    t->read_log.emplace_back(line, *frame);
    *frame = t->depth;
  }
  // Read-own-writes: innermost buffered value wins, walking out through
  // enclosing (open-nesting) ancestors.  The per-transaction write summary
  // short-circuits the walk for addresses no level ever wrote.
  for (Txn* s = t; s != nullptr; s = s->parent) {
    if (!s->may_have_write(addr)) continue;
    const std::uint32_t* w = s->write_idx.find(addr);
    if (w != nullptr) {
      std::memcpy(out, &s->writes[*w].val, size);
      return;
    }
  }
  std::memcpy(out, committed, size);
}

void Runtime::tm_write(std::uintptr_t addr, const void* in, std::uint32_t size,
                       void* committed) {
  const int cpu = eng_.cpu_id();
  check_kill(cpu);
  eng_.advance_to(eng_.memsys().tx_store(cpu, addr, eng_.now()));
  if (mc_observer_ != nullptr) mc_observer_->on_access(cpu, sim::line_of(addr), true);
  Txn* t = ctx(cpu).cur;
  if (t == nullptr) {
    // Non-transactional store in Tcc mode: commits instantly; flag any
    // in-flight reader of the line (mini TCC commit).  The audit registry is
    // keyed by host storage, not the simulated address.
    audit::naked_store(reinterpret_cast<std::uintptr_t>(committed));
    std::memcpy(committed, in, size);
    const sim::LineAddr line = sim::line_of(addr);
    eng_.memsys().invalidate_copies(cpu, line);
    flag_readers(line, cpu);
    if (active_chop_count_ != 0) flag_chops(line, cpu);
    return;
  }
  std::uint64_t val = 0;
  std::memcpy(&val, in, size);
  auto [idx, inserted] = t->write_idx.try_emplace(addr, static_cast<std::uint32_t>(t->writes.size()));
  if (inserted) {
    t->writes.push_back(detail::WriteEntry{addr, committed, val, size});
    t->note_write(addr);
  } else {
    detail::WriteEntry& e = t->writes[*idx];
    t->write_undo.push_back(detail::Txn::WriteUndo{*idx, e.val, e.size});
    e.val = val;
    e.size = size;
  }
}

// ---- transactional allocation ----

void Runtime::track_alloc(void* p, void (*del)(void*)) {
  Txn* t = ctx(eng_.cpu_id()).cur;
  assert(t != nullptr);
  t->allocs.push_back(Txn::Resource{p, del});
}

void Runtime::track_delete(void* p, void (*del)(void*)) {
  Txn* t = ctx(eng_.cpu_id()).cur;
  assert(t != nullptr);
  t->deletes.push_back(Txn::Resource{p, del});
}

}  // namespace atomos
