// Line reader directory: which CPUs currently have a line in a read set.
//
// TCC conflict detection happens at commit: the committer walks its write
// set and must flag every other transaction that read one of the written
// lines.  Scanning every CPU's whole open-nesting stack for every line made
// that O(write-set x CPUs x depth) even when nobody read anything.  This
// directory inverts the read sets: per line, a bitmask of reader CPUs plus a
// per-(line, cpu) count (one CPU can hold a line in several stacked
// transactions' read sets at once — a parent and its open-nested child).
//
// Maintenance piggybacks on the read-log discipline the runtime already
// has: a transaction's read_log entry with prev < 0 marks the moment a line
// *entered* that transaction's read set, so
//   add()    on every prev<0 read-log append,
//   remove() when frame rollback undoes a prev<0 entry, and
//   remove() for each line left in read_frame when the transaction ends.
// The invariant (checked under TXCC_CHECKED) is count(line, cpu) ==
// number of transactions on cpu whose read_frame contains line.
//
// Reader masks are multi-word (Config::kMaxCpus = 128 bits): one uint64
// stride per 64 CPUs, sized from the simulation's actual num_cpus so an
// 8-CPU run still pays one word per line.  Consumers walk set bits with
// countr_zero word-skipping (see Runtime::flag_readers), keeping sparse
// reader sets O(set bits), not O(num_cpus).
//
// Bounds and counter-overflow conditions are routed through the
// TXCC_CHECKED audit (they were assert-only before, i.e. unchecked in
// Release): a per-(line, cpu) count that hits 255 SATURATES STICKILY — the
// count stops moving and the reader bit stays set for the rest of the run —
// which can only cause spurious violations, never missed ones.  Each
// saturated add is reported as Check::kReaderOverflow; underflow and
// out-of-range lines are reported as set corruption.
//
// Virtual addresses (sim/vaddr.h) are dense, so this is flat-array
// indexing, not hashing: idx = line - (kVaBase >> kLineShift).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/memsys.h"
#include "sim/vaddr.h"

namespace atomos::audit {
// Reader-directory audit hooks (defined in audit.cpp; empty when
// TXCC_CHECKED is off).  Declared here rather than in audit.h because
// audit.h includes runtime.h, which includes this header.
#if defined(TXCC_CHECKED) && TXCC_CHECKED
void reader_count_overflow(sim::LineAddr line, int cpu);
void reader_dir_corrupt(sim::LineAddr line, int cpu, const char* what);
#else
inline void reader_count_overflow(sim::LineAddr, int) {}
inline void reader_dir_corrupt(sim::LineAddr, int, const char*) {}
#endif
}  // namespace atomos::audit

namespace atomos {

class ReaderDir {
 public:
  explicit ReaderDir(int num_cpus)
      : ncpu_(static_cast<std::size_t>(num_cpus)),
        words_(static_cast<std::size_t>((num_cpus + 63) / 64)) {}

  void add(sim::LineAddr line, int cpu) {
    if (line < kLineBase) {
      audit::reader_dir_corrupt(line, cpu, "add below virtual heap");
      return;
    }
    const std::size_t i = index(line);
    if (i >= nlines_) {
      nlines_ = i + 1;
      mask_.resize(nlines_ * words_, 0);
      cnt_.resize(nlines_ * ncpu_, 0);
    }
    std::uint8_t& c = cnt_[i * ncpu_ + static_cast<std::size_t>(cpu)];
    if (c == 0xff) {  // saturate stickily: spurious flags beat missed ones
      audit::reader_count_overflow(line, cpu);
      return;
    }
    ++c;
    mask_[i * words_ + (static_cast<std::size_t>(cpu) >> 6)] |=
        std::uint64_t{1} << (cpu & 63);
  }

  void remove(sim::LineAddr line, int cpu) {
    if (line < kLineBase) {
      audit::reader_dir_corrupt(line, cpu, "remove below virtual heap");
      return;
    }
    const std::size_t i = index(line);
    if (i >= nlines_) {
      audit::reader_dir_corrupt(line, cpu, "remove of untracked line");
      return;
    }
    std::uint8_t& c = cnt_[i * ncpu_ + static_cast<std::size_t>(cpu)];
    if (c == 0) {
      audit::reader_dir_corrupt(line, cpu, "reader count underflow");
      return;
    }
    if (c == 0xff) return;  // saturated: count unknown, bit stays set
    if (--c == 0)
      mask_[i * words_ + (static_cast<std::size_t>(cpu) >> 6)] &=
          ~(std::uint64_t{1} << (cpu & 63));
  }

  /// Pointer to the line's reader-mask words (mask_stride() of them), or
  /// nullptr when no CPU has the line in a read set.  Valid until the next
  /// add() (which may grow the table).
  const std::uint64_t* mask_words(sim::LineAddr line) const {
    const std::size_t i = index(line);
    return i < nlines_ ? &mask_[i * words_] : nullptr;
  }
  std::size_t mask_stride() const { return words_; }

  /// Calls f(cpu) for every reader of `line` except `except` (the committer
  /// flagging its own write lines must not flag itself).  The word-parallel
  /// kernel of the commit broadcast: the excluded bit is masked out of its
  /// word up front and members are found with countr_zero over whole words,
  /// so a sparse reader set costs O(set bits) with no per-bit branches.
  template <class F>
  void for_each_reader_except(sim::LineAddr line, int except, F f) const {
    const std::size_t i = index(line);
    if (i >= nlines_) return;
    const std::uint64_t* words = &mask_[i * words_];
    const std::size_t xw = static_cast<std::size_t>(except) >> 6;
    const std::uint64_t xbit = std::uint64_t{1} << (except & 63);
    for (std::size_t wi = 0; wi < words_; ++wi) {
      std::uint64_t m = words[wi];
      if (wi == xw) m &= ~xbit;
      while (m != 0) {
        f(static_cast<int>(wi * 64) + std::countr_zero(m));
        m &= m - 1;
      }
    }
  }

  /// True if `cpu` has `line` in at least one live read set.
  bool is_reader(sim::LineAddr line, int cpu) const {
    const std::size_t i = index(line);
    if (i >= nlines_) return false;
    return ((mask_[i * words_ + (static_cast<std::size_t>(cpu) >> 6)] >>
             (cpu & 63)) &
            1u) != 0;
  }

  std::uint32_t count(sim::LineAddr line, int cpu) const {
    const std::size_t i = index(line);
    return i < nlines_ ? cnt_[i * ncpu_ + static_cast<std::size_t>(cpu)] : 0;
  }

 private:
  static constexpr sim::LineAddr kLineBase = sim::kVaBase >> sim::Config::kLineShift;

  static std::size_t index(sim::LineAddr line) {
    return static_cast<std::size_t>(line - kLineBase);
  }

  std::size_t ncpu_;
  std::size_t words_;   // mask words per line: ceil(ncpu / 64)
  std::size_t nlines_ = 0;
  std::vector<std::uint64_t> mask_;  // [line * words_ + w]: reader-CPU bits
  std::vector<std::uint8_t> cnt_;    // [line * ncpu + cpu]: live read-set refs
};

}  // namespace atomos
