// Line reader directory: which CPUs currently have a line in a read set.
//
// TCC conflict detection happens at commit: the committer walks its write
// set and must flag every other transaction that read one of the written
// lines.  Scanning every CPU's whole open-nesting stack for every line made
// that O(write-set x CPUs x depth) even when nobody read anything.  This
// directory inverts the read sets: per line, a bitmask of reader CPUs plus a
// per-(line, cpu) count (one CPU can hold a line in several stacked
// transactions' read sets at once — a parent and its open-nested child).
//
// Maintenance piggybacks on the read-log discipline the runtime already
// has: a transaction's read_log entry with prev < 0 marks the moment a line
// *entered* that transaction's read set, so
//   add()    on every prev<0 read-log append,
//   remove() when frame rollback undoes a prev<0 entry, and
//   remove() for each line left in read_frame when the transaction ends.
// The invariant (checked under TXCC_CHECKED) is count(line, cpu) ==
// number of transactions on cpu whose read_frame contains line.
//
// Virtual addresses (sim/vaddr.h) are dense, so this is flat-array
// indexing, not hashing: idx = line - (kVaBase >> kLineShift).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/memsys.h"
#include "sim/vaddr.h"

namespace atomos {

class ReaderDir {
 public:
  explicit ReaderDir(int num_cpus) : ncpu_(static_cast<std::size_t>(num_cpus)) {}

  void add(sim::LineAddr line, int cpu) {
    const std::size_t i = index(line);
    if (i >= mask_.size()) {
      mask_.resize(i + 1, 0);
      cnt_.resize((i + 1) * ncpu_, 0);
    }
    std::uint8_t& c = cnt_[i * ncpu_ + static_cast<std::size_t>(cpu)];
    assert(c < 0xff && "reader count overflow (open-nesting depth > 255?)");
    ++c;
    mask_[i] |= (1u << cpu);
  }

  void remove(sim::LineAddr line, int cpu) {
    const std::size_t i = index(line);
    assert(i < mask_.size());
    std::uint8_t& c = cnt_[i * ncpu_ + static_cast<std::size_t>(cpu)];
    assert(c > 0 && "reader directory underflow");
    if (--c == 0) mask_[i] &= ~(1u << cpu);
  }

  /// Bitmask of CPUs with `line` in at least one live read set.
  std::uint32_t mask(sim::LineAddr line) const {
    const std::size_t i = index(line);
    return i < mask_.size() ? mask_[i] : 0;
  }

  std::uint32_t count(sim::LineAddr line, int cpu) const {
    const std::size_t i = index(line);
    return i < mask_.size() ? cnt_[i * ncpu_ + static_cast<std::size_t>(cpu)] : 0;
  }

 private:
  static constexpr sim::LineAddr kLineBase = sim::kVaBase >> sim::Config::kLineShift;

  static std::size_t index(sim::LineAddr line) {
    assert(line >= kLineBase && "reader directory line below the virtual heap");
    return static_cast<std::size_t>(line - kLineBase);
  }

  std::size_t ncpu_;
  std::vector<std::uint32_t> mask_;  // [line]: reader-CPU bitmask
  std::vector<std::uint8_t> cnt_;    // [line * ncpu + cpu]: live read-set refs
};

}  // namespace atomos
