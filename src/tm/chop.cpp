#include "tm/chop.h"

#include <exception>

namespace atomos {

void Chop::run() {
  if (pieces_.empty()) return;
  Runtime& rt = Runtime::current();
  if (rt.mode() == sim::Mode::kLock || !sim::Engine::in_worker()) {
    for (auto& p : pieces_) p.body();
    return;
  }
  if (rt.in_txn()) {
    // Inside an enclosing transaction the pieces cannot commit early; they
    // degrade to closed-nested frames and the enclosing commit/abort covers
    // them (compensations are unnecessary: nothing committed yet).
    for (auto& p : pieces_) rt.atomically(p.body);
    return;
  }
  const int cpu = rt.engine().cpu_id();
  detail::ChopState st;
  // Compensations of pieces committed in this round, in commit order; the
  // shared handler machinery runs them newest-first.
  std::vector<std::function<void()>> committed_comps;
  for (;;) {
    st.reset();
    committed_comps.clear();
    rt.chop_begin(cpu, &st);
    bool restart = false;
    try {
      for (std::size_t i = 0; i < pieces_.size(); ++i) {
        // Piece boundary: a foreign commit has touched an earlier piece's
        // footprint.  kRanked trusts the declared rank order and only
        // counts it; kValidated undoes the chop and starts over.
        if (st.broken) {
          st.broken = false;
          if (policy_ == ChopPolicy::kValidated) {
            restart = true;
            break;
          }
        }
        rt.atomically(pieces_[i].body);
        if (pieces_[i].compensate) committed_comps.push_back(pieces_[i].compensate);
      }
    } catch (...) {
      // A piece body escaped (user exception / engine teardown): the chop
      // is semantically all-or-nothing, so undo the committed prefix in
      // reverse before propagating.  A compensation failure must not mask
      // the original exception.
      rt.chop_end(cpu);
      rt.chop_stats_.dep_breaks += st.breaks;
      rt.chop_stats_.compensations += committed_comps.size();
      (void)rt.run_compensation_handlers(cpu, rt.make_scope_id(cpu), committed_comps);
      throw;
    }
    rt.chop_end(cpu);
    rt.chop_stats_.dep_breaks += st.breaks;
    if (!restart) break;
    ++rt.chop_stats_.restarts;
    rt.chop_stats_.compensations += committed_comps.size();
    std::exception_ptr fail =
        rt.run_compensation_handlers(cpu, rt.make_scope_id(cpu), committed_comps);
    if (fail) std::rethrow_exception(fail);
    // Pay the violation penalty before re-running: a restart is the chop
    // analogue of an abort, and a zero-cost retry loop would both distort
    // the figures and let an unlucky chop spin without yielding the CPU.
    rt.engine().tick(rt.engine().config().violation_cycles);
  }
  ++rt.chop_stats_.chops;
}

}  // namespace atomos
