// Atomos/TCC-style transactional memory runtime on top of the CMP simulator.
//
// Provides the transactional semantics the paper enumerates in Section 4 as
// prerequisites for transactional collection classes:
//
//  * closed-nested transactions with partial rollback (frames),
//  * open-nested transactions (child commits before the parent; its read and
//    write dependencies are NOT merged into the parent),
//  * commit and abort handlers registered at the current nesting level
//    (moved to the parent on nested commit, discarded on nested abort;
//    commit handlers run inside the commit, abort handlers after rollback),
//  * program-directed transaction abort: a transaction can obtain a stable
//    TxnId for its top-level transaction, store it in a semantic lock, and a
//    later committer can violate() that id.
//
// Conflict detection is lazy (TCC): speculative writes are buffered; at
// commit the writer acquires the global commit token, broadcasts its write
// set, and flags every other in-flight transaction that has read one of the
// written cache lines.  Flagged transactions unwind at their next
// transactional operation and retry (the whole transaction, or just the
// nested frame / open-nested child whose read caused the conflict).
// Because every commit holds the token, commit handlers can never be
// violated while they run — the TCC property the paper relies on.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/engine.h"
#include "sim/flat_map.h"
#include "tm/contention.h"
#include "tm/profile.h"
#include "tm/reader_dir.h"
#include "trace/tracer.h"

namespace atomos {

/// Identifies one *incarnation* of a top-level transaction, for
/// program-directed abort (semantic locks store TxnIds as owners).
struct TxnId {
  int cpu = -1;
  std::uint64_t incarnation = 0;

  friend bool operator==(const TxnId&, const TxnId&) = default;
};

/// Unwinds a violated transaction (or one of its frames) to its retry point.
/// Internal control flow; user code must never swallow it.
struct Violated {
  const void* txn;  // which transaction must retry
  int frame;        // which of its frames must retry (0 = whole transaction)
};

namespace detail {

struct WriteEntry {
  std::uintptr_t addr;  // virtual address (conflict identity / timing)
  void* host;           // committed host storage, written at commit apply
  std::uint64_t val;
  std::uint32_t size;
};

struct FrameMark {
  std::size_t read_log = 0;
  std::size_t writes = 0;
  std::size_t write_undo = 0;
  std::size_t commit_handlers = 0;
  std::size_t abort_handlers = 0;
  std::size_t allocs = 0;
  std::size_t deletes = 0;
};

/// One transaction: a top-level transaction or an open-nested child.
/// Closed nesting is represented as frames *within* one Txn; all frame
/// rollback is positional (log truncation to the frame's FrameMark).
///
/// Txn objects are pooled per CPU: reset() rearms one for a fresh
/// incarnation in O(live entries) — the flat maps clear by generation bump
/// and the log vectors keep their capacity, so a retry loop stops paying
/// allocator and rehash costs after its first attempt.
struct Txn {
  int cpu = -1;
  std::uint64_t incarnation = 0;
  std::uint64_t epoch = 0;        // global begin order, for safe reclamation
  bool open = false;              // an open-nested child
  Txn* parent = nullptr;          // enclosing transaction (open-nesting link)
  int depth = 0;                  // current closed-nesting frame depth
  std::uint64_t start_clock = 0;  // for lost-cycle accounting
  int attempt = 0;

  // Pending violation: frame that must restart (-1 = none).
  int kill_frame = -1;
  bool kill_semantic = false;

  // Read set: line -> shallowest frame that read it, with an undo log.
  sim::FlatMap<sim::LineAddr, std::int32_t> read_frame;
  std::vector<std::pair<sim::LineAddr, int>> read_log;  // (line, prev frame or -1)

  // Redo-log write set.  Entries are unique per address (repeat writes are
  // in-place updates recorded in write_undo), so frame rollback is
  // "reverse-apply write_undo, then truncate writes".
  sim::FlatMap<std::uintptr_t, std::uint32_t> write_idx;
  std::vector<WriteEntry> writes;

  // 256-bit Bloom-style summary of written addresses.  tm_read consults it
  // before probing write_idx on each open-nesting ancestor, so read-mostly
  // transactions skip the read-own-writes walk entirely.  Bits are never
  // cleared by frame rollback (stale bits only cost a wasted probe).
  std::uint64_t write_filter[4] = {0, 0, 0, 0};

  void note_write(std::uintptr_t addr) {
    const std::uint64_t h = sim::hash_u64(addr);
    write_filter[(h >> 6) & 3u] |= std::uint64_t{1} << (h & 63u);
  }
  bool may_have_write(std::uintptr_t addr) const {
    const std::uint64_t h = sim::hash_u64(addr);
    return (write_filter[(h >> 6) & 3u] >> (h & 63u)) & 1u;
  }
  struct WriteUndo {
    std::size_t idx;
    std::uint64_t prev_val;
    std::uint32_t prev_size;
  };
  std::vector<WriteUndo> write_undo;

  std::vector<std::function<void()>> commit_handlers;
  std::vector<std::function<void()>> abort_handlers;

  // Handlers pinned to the whole (top-level) transaction: immune to
  // closed-frame truncation.  This is where the collection classes register
  // their single commit/abort handler pair (paper S5's "only one handler,
  // registered on first use"): the open-nested operations they compensate
  // are themselves immune to frame rollback, so the handlers must be too.
  //
  // A top commit handler may carry a needs_token predicate: when every
  // registered handler reports false (e.g. a read-only collection commit
  // whose handler only RELEASES semantic locks) the commit skips the token
  // entirely — releasing read intents is monotone-safe, and this keeps
  // read-dominated workloads from serializing on commit arbitration.
  struct TopCommitHandler {
    std::function<void()> fn;
    std::function<bool()> needs_token;  // null => always needs the token
  };
  std::vector<TopCommitHandler> top_commit_handlers;
  std::vector<std::function<void()>> top_abort_handlers;

  // Transactional allocation: news are deleted on abort, deletes deferred
  // to commit.
  struct Resource {
    void* ptr;
    void (*del)(void*);
  };
  std::vector<Resource> allocs;
  std::vector<Resource> deletes;

  std::vector<FrameMark> marks;  // one per open closed-nested frame

  /// Rearms a pooled Txn for a new incarnation.  The vectors keep their
  /// capacity; the flat maps clear in O(1) by generation bump.
  void reset(int cpu_, std::uint64_t incarnation_, std::uint64_t epoch_, bool open_,
             Txn* parent_, std::uint64_t start_clock_, int attempt_) {
    cpu = cpu_;
    incarnation = incarnation_;
    epoch = epoch_;
    open = open_;
    parent = parent_;
    depth = 0;
    start_clock = start_clock_;
    attempt = attempt_;
    kill_frame = -1;
    kill_semantic = false;
    read_frame.clear();
    read_log.clear();
    write_idx.clear();
    writes.clear();
    write_undo.clear();
    write_filter[0] = write_filter[1] = write_filter[2] = write_filter[3] = 0;
    commit_handlers.clear();
    abort_handlers.clear();
    top_commit_handlers.clear();
    top_abort_handlers.clear();
    allocs.clear();
    deletes.clear();
    marks.clear();
  }
};

/// Book-keeping for one in-flight *chop* (tm/chop.h): a long transaction
/// declared as rank-ordered pieces, each committing as its own top-level
/// transaction.  Between pieces the chop holds no speculative state — only
/// this record of the cache lines its already-committed pieces read or
/// wrote.  A concurrent commit that touches one of those lines *breaks the
/// forward dependency*: the next piece would read state inconsistent with
/// what the earlier pieces observed.  The runtime flags it here; the Chop
/// driver decides at the next piece boundary (count it under kRanked,
/// compensate-and-restart under kValidated).
struct ChopState {
  sim::FlatMap<sim::LineAddr, std::int32_t> dep_lines;  // committed pieces' footprint
  bool broken = false;       // a foreign commit hit a dep line
  std::uint64_t breaks = 0;  // break events observed by this chop

  void reset() {
    dep_lines.clear();
    broken = false;
  }
};

}  // namespace detail

class Chop;  // tm/chop.h: rank-ordered piece builder over this runtime

/// Per-simulation TM runtime.  Construct one around an Engine before
/// spawning workers; workers then use the free functions at the bottom of
/// this header (or the members) for all transactional work.
class Runtime {
 public:
  explicit Runtime(sim::Engine& eng,
                   std::unique_ptr<ContentionManager> cm = nullptr);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// The runtime attached to the engine currently running on this thread.
  static Runtime& current() {
    if (tls_runtime_ == nullptr) throw_no_runtime();
    return *tls_runtime_;
  }
  static bool active() { return tls_runtime_ != nullptr; }
  /// The active runtime, or nullptr (single thread-local load for hot paths).
  static Runtime* current_or_null() { return tls_runtime_; }

  sim::Engine& engine() { return eng_; }
  sim::Mode mode() const { return eng_.config().mode; }

  /// This runtime's TAPE-style conflict profile (tm/profile.h).  Per-Runtime
  /// (not process-global) so concurrent simulations on different host
  /// threads never share profiling state; see profile.h for the enable /
  /// label / run ordering contract.
  Profile& profile() { return profile_; }
  const Profile& profile() const { return profile_; }

  /// The txtrace event tracer, or nullptr when tracing is off.  A tracer is
  /// attached when this Runtime is constructed with a pending
  /// trace::set_request() on the current host thread (how the harness
  /// driver's `--trace` reaches a Runtime built deep inside a series body);
  /// the trace file is written in ~Runtime.  Observation only: attaching a
  /// tracer never changes simulated cycles.
  trace::Tracer* tracer() { return tracer_.get(); }

  // Semantic-lock trace hooks, called by the lock tables (core/lockers.h).
  // Cheap single-branch no-ops when tracing is off.
  void trace_sem_acquire(const void* table) {
    if (tracer_ != nullptr && sim::Engine::in_worker())
      tracer_->on_lock_acquire(eng_.cpu_id(), eng_.now(), table);
  }
  void trace_sem_release(const void* table) {
    if (tracer_ != nullptr && sim::Engine::in_worker())
      tracer_->on_lock_release(eng_.cpu_id(), eng_.now(), table);
  }
  void trace_sem_violation(const void* table, int victim_cpu) {
    if (tracer_ != nullptr && sim::Engine::in_worker())
      tracer_->on_sem_violation(eng_.cpu_id(), eng_.now(), table, victim_cpu);
  }
  /// Registers a human name for a semantic lock table (setup-time; the
  /// collection-class wrappers name their tables at construction).
  void trace_name_table(const void* table, const char* name) {
    if (tracer_ != nullptr && name != nullptr) tracer_->name_table(table, name);
  }

  /// txmc instrumentation: observes transactional memory accesses as they
  /// happen and each transaction's final read/write line sets (the FlatMap
  /// sets the Txn maintains, delivered at commit/abort).  The model checker
  /// feeds these to its DPOR-style dependency reduction.  Null by default;
  /// when unset the access path pays one predictable branch.
  class McObserver {
   public:
    virtual ~McObserver() = default;
    /// A transactional (or naked, in Tcc mode) load/store of `line` by `cpu`.
    virtual void on_access(int cpu, sim::LineAddr line, bool is_write) = 0;
    /// A transaction finished: its read-set lines and de-duplicated
    /// write-set lines.  `open` marks open-nested children.
    virtual void on_txn_sets(int cpu, bool committed, bool open,
                             const std::vector<sim::LineAddr>& reads,
                             const std::vector<sim::LineAddr>& writes) = 0;
  };
  /// Installs (or clears, with nullptr) the model-checker observer.
  void set_mc_observer(McObserver* o) { mc_observer_ = o; }
  McObserver* mc_observer() const { return mc_observer_; }

  // ---- transactional region API ----

  /// Runs `fn` as a transaction: top-level if none is active on this CPU,
  /// otherwise a closed-nested frame with partial rollback.  Retries on
  /// violation.  In Mode::kLock this is a plain call.
  template <class F>
  auto atomically(F&& fn) {
    if (mode() == sim::Mode::kLock || !sim::Engine::in_worker()) return fn();
    const int cpu = eng_.cpu_id();
    detail::Txn* t = ctx(cpu).cur;
    if (t == nullptr) return run_txn(cpu, /*open=*/false, std::forward<F>(fn));
    return run_closed_frame(*t, std::forward<F>(fn));
  }

  /// Runs `fn` as an open-nested child transaction: it commits (and becomes
  /// visible to everyone) when `fn` returns, even though the parent is still
  /// speculative; the parent keeps no memory dependency on what `fn` read.
  /// Outside any transaction this is simply a small top-level transaction.
  template <class F>
  auto open_atomically(F&& fn) {
    if (mode() == sim::Mode::kLock || !sim::Engine::in_worker()) return fn();
    return run_txn(eng_.cpu_id(), /*open=*/true, std::forward<F>(fn));
  }

  /// Registers a handler to run if the current transaction commits (at
  /// commit, holding the commit token, as a closed-nested frame).
  void on_commit(std::function<void()> h);
  /// Registers a handler to run if the current transaction aborts (after
  /// rollback, as an independent open transaction).
  void on_abort(std::function<void()> h);

  /// Like on_commit/on_abort, but pinned to the *top-level* transaction of
  /// the calling CPU: the registration survives closed-frame and open-child
  /// rollback (matching the open-nested state those handlers compensate).
  /// `needs_token` (optional): evaluated at commit; when every top handler
  /// reports false and the transaction wrote nothing, the handler runs
  /// outside the commit token (safe only for pure cleanup such as releasing
  /// semantic read locks; the handler must not write Shared memory).
  void on_top_commit(std::function<void()> h, std::function<bool()> needs_token = nullptr);
  void on_top_abort(std::function<void()> h);

  /// Stable id of the current *top-level* transaction incarnation (for use
  /// as a semantic-lock owner).  Must be called inside a transaction.
  TxnId self_id();

  /// Program-directed abort of another transaction.  Returns true if the
  /// victim incarnation was still running and is now doomed.
  bool violate(const TxnId& victim);

  /// True if the calling CPU is inside any transaction.
  bool in_txn();

  /// True if `id` names the currently running top-level incarnation on its
  /// CPU (same liveness test violate() applies).  Observation only — used by
  /// the txmc oracle to tell a stale lock prune from a live double release.
  bool txn_live(const TxnId& id);

  // ---- memory access (used by Shared<T>; Tcc mode only) ----
  void tm_read(std::uintptr_t addr, void* out, std::uint32_t size, const void* committed);
  void tm_write(std::uintptr_t addr, const void* in, std::uint32_t size, void* committed);

  // ---- transactional allocation (used by tx_new / tx_delete) ----
  void track_alloc(void* p, void (*del)(void*));
  void track_delete(void* p, void (*del)(void*));

  /// Charges `cycles` of CPI-1.0 compute to the current CPU.  Also polls
  /// for a pending violation, so a doomed transaction stops wasting work.
  void work(std::uint64_t cycles) {
    eng_.tick(cycles);
    if (mode() == sim::Mode::kTcc && ctx(eng_.cpu_id()).cur != nullptr) check_kill(eng_.cpu_id());
  }

  /// Aggregate chopping counters (tm/chop.h), for figure extras and tests.
  /// Purely observational — never feeds back into simulated timing.
  struct ChopStats {
    std::uint64_t chops = 0;           ///< completed Chop::run calls
    std::uint64_t pieces = 0;          ///< pieces committed (incl. re-runs)
    std::uint64_t dep_breaks = 0;      ///< forward-dependency break events
    std::uint64_t restarts = 0;        ///< kValidated compensate-and-restart rounds
    std::uint64_t compensations = 0;   ///< committed-piece compensations run
  };
  const ChopStats& chop_stats() const { return chop_stats_; }

 private:
  friend class Chop;  // piece execution + compensation entry points below
  struct CpuCtx {
    detail::Txn* cur = nullptr;  // innermost txn (open-nesting stack tip)
    std::uint64_t next_incarnation = 1;  // outlives pooled Txns: ids stay unique
    bool in_abort_handlers = false;  // this CPU is running compensation
    std::vector<detail::Txn*> pool;  // retired Txns awaiting reuse
  };

  CpuCtx& ctx(int cpu) { return ctx_[static_cast<std::size_t>(cpu)]; }
  detail::Txn* bottom_of(int cpu);  // outermost active txn on cpu (or null)

  // Non-template machinery (runtime.cpp).
  detail::Txn* begin_txn(int cpu, bool open, int attempt);
  void commit_txn(detail::Txn* t);  // may throw Violated (flag seen at commit)
  void abort_txn(detail::Txn* t);   // rollback + abort handlers + backoff
  void release_txn(detail::Txn* t);  // drop read-set dir refs, park in pool
  void push_frame(detail::Txn& t);
  void pop_frame_commit(detail::Txn& t);
  void pop_frame_abort(detail::Txn& t);
  void clear_kill(detail::Txn& t);
  /// Throws Violated if any transaction on `cpu` is flagged.  The scan is
  /// inline (almost always finds nothing); the throw path is out-of-line.
  void check_kill(int cpu) {
    detail::Txn* flagged = nullptr;
    for (detail::Txn* t = ctx(cpu).cur; t != nullptr; t = t->parent) {
      if (t->kill_frame >= 0) flagged = t;
    }
    if (flagged != nullptr) report_violation(cpu, flagged);
  }
  [[noreturn]] void report_violation(int cpu, detail::Txn* flagged);
  void notify_txn_sets(detail::Txn* t, bool committed);  // mc observer fan-out
  void acquire_token(int cpu);
  void release_token(int cpu);
  void flag_readers(sim::LineAddr line, int committer);
  void flush_violation_counters();  // viol_counts_ -> stats() "violations@"
  void broadcast_and_apply(detail::Txn& t);
  void collect_garbage();

  // ---- chopping support (tm/chop.h drives these through friendship) ----
  /// Registers `s` as the chop in flight on `cpu`; commits by other CPUs
  /// start probing its dep_lines.  One chop per CPU at a time.
  void chop_begin(int cpu, detail::ChopState* s);
  void chop_end(int cpu);
  /// Marks foreign chops whose dep_lines contain `line` as broken.  Called
  /// under the commit broadcast and the naked-store path; a single counter
  /// test keeps it off every hot path while no chop is active.
  void flag_chops(sim::LineAddr line, int committer);
  /// Folds a just-committed piece's read/write lines into its chop's
  /// forward-dependency footprint (called from commit_txn, still inside the
  /// commit's token scope so no foreign commit can slip in unprobed).
  void chop_note_committed_piece(detail::Txn& t);
  /// Runs `handlers` newest-first as detached open transactions inside one
  /// TXCC_CHECKED abort/compensation scope — the shared machinery behind
  /// both abort compensation (abort_txn) and chop compensate-and-restart
  /// (Chop::run).  A handler that unwinds does not drop its siblings; the
  /// first escaped exception is returned for the caller to rethrow.
  std::exception_ptr run_compensation_handlers(int cpu, const TxnId& scope,
                                               std::vector<std::function<void()>>& handlers);
  /// A fresh incarnation id for a non-Txn audit scope (chop restarts).
  TxnId make_scope_id(int cpu) { return TxnId{cpu, ctx(cpu).next_incarnation++}; }

  template <class F>
  auto run_txn(int cpu, bool open, F&& fn) {
    for (int attempt = 0;; ++attempt) {
      detail::Txn* t = begin_txn(cpu, open, attempt);
      try {
        if constexpr (std::is_void_v<decltype(fn())>) {
          fn();
          commit_txn(t);
          return;
        } else {
          auto result = fn();
          commit_txn(t);
          return result;
        }
      } catch (const Violated& v) {
        const bool mine = (v.txn == t);
        abort_txn(t);
        if (!mine) throw;  // an enclosing transaction is doomed
      } catch (...) {
        abort_txn(t);  // user exception: abort, then propagate
        throw;
      }
    }
  }

  template <class F>
  auto run_closed_frame(detail::Txn& t, F&& fn) {
    for (;;) {
      push_frame(t);
      const int my_depth = t.depth;
      try {
        if constexpr (std::is_void_v<decltype(fn())>) {
          fn();
          pop_frame_commit(t);
          return;
        } else {
          auto result = fn();
          pop_frame_commit(t);
          return result;
        }
      } catch (const Violated& v) {
        pop_frame_abort(t);
        if (v.txn == &t && v.frame == my_depth) {
          clear_kill(t);
          continue;  // retry just this frame
        }
        throw;
      } catch (...) {
        pop_frame_abort(t);
        throw;
      }
    }
  }

  [[noreturn]] static void throw_no_runtime();

  inline static thread_local Runtime* tls_runtime_ = nullptr;

  sim::Engine& eng_;
  std::unique_ptr<ContentionManager> cm_;
  std::vector<CpuCtx> ctx_;
  Profile profile_;

  // txtrace: owned event buffers (null when tracing is off) and the file to
  // write at destruction ("" = in-memory only, e.g. overhead benches).
  std::unique_ptr<trace::Tracer> tracer_;
  std::string trace_path_;

  // Line -> reader-CPU bitmask, maintained at read-log append/rollback time,
  // so commits flag conflicting readers without scanning every CPU's stack.
  ReaderDir reader_dir_;

  // Commit-broadcast scratch (write-set lines, sorted + uniqued per
  // commit), reused across commits.
  std::vector<sim::LineAddr> scratch_lines_;

  // TAPE violation counters, indexed by interned label id + 1 (slot 0 =
  // unlabelled).  flag_readers bumps these; flush_violation_counters
  // materializes them as stats() "violations@<label>" entries at teardown,
  // keeping std::string construction out of the violation hot path.
  std::vector<std::uint64_t> viol_counts_;

  // Active chops, one slot per CPU (null = none).  The count gates the
  // broadcast-side probing so non-chopped workloads never pay for it.
  std::vector<detail::ChopState*> active_chops_;
  int active_chop_count_ = 0;
  ChopStats chop_stats_;

  // txmc observer (null outside model-checking runs).
  McObserver* mc_observer_ = nullptr;
  std::vector<sim::LineAddr> mc_reads_scratch_;
  std::vector<sim::LineAddr> mc_writes_scratch_;

  // Global commit token (TCC commit arbitration): serializes commits and
  // makes commit handlers immune to violation while they run.
  int token_owner_ = -1;
  int token_depth_ = 0;
  std::deque<int> token_queue_;

  // Deferred reclamation: objects deleted at commit are freed only once
  // every transaction that might still hold a host pointer has finished.
  struct Purgatory {
    std::uint64_t epoch;
    void* ptr;
    void (*del)(void*);
  };
  std::deque<Purgatory> purgatory_;
  std::uint64_t next_epoch_ = 1;
};

// ---- Free-function convenience wrappers (the public face of the API) ----

/// See Runtime::atomically.
template <class F>
auto atomically(F&& fn) {
  return Runtime::current().atomically(std::forward<F>(fn));
}

/// See Runtime::open_atomically.
template <class F>
auto open_atomically(F&& fn) {
  return Runtime::current().open_atomically(std::forward<F>(fn));
}

inline void on_commit(std::function<void()> h) { Runtime::current().on_commit(std::move(h)); }
inline void on_abort(std::function<void()> h) { Runtime::current().on_abort(std::move(h)); }
inline TxnId self_id() { return Runtime::current().self_id(); }
inline bool violate(const TxnId& victim) { return Runtime::current().violate(victim); }
inline bool in_txn() { return Runtime::active() && Runtime::current().in_txn(); }
inline void work(std::uint64_t cycles) { Runtime::current().work(cycles); }

/// Allocates a T inside (or outside) a transaction.  If the allocating
/// transaction aborts, the object is destroyed; nothing else ever saw it,
/// because speculative writes that would have published it are discarded.
template <class T, class... Args>
T* tx_new(Args&&... args) {
  T* p = new T(std::forward<Args>(args)...);
  if (Runtime::active() && Runtime::current().in_txn()) {
    Runtime::current().track_alloc(p, [](void* q) { delete static_cast<T*>(q); });
  }
  return p;
}

/// Deletes a T transactionally: the delete takes effect only if the
/// transaction commits, and actual reclamation is deferred until every
/// transaction that might still traverse the object has finished.
template <class T>
void tx_delete(T* p) {
  if (p == nullptr) return;
  if (Runtime::active() && Runtime::current().in_txn()) {
    Runtime::current().track_delete(p, [](void* q) { delete static_cast<T*>(q); });
  } else {
    delete p;
  }
}

}  // namespace atomos
