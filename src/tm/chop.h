// Transaction chopping over the Atomos runtime (tm/runtime.h).
//
// A long transaction is declared as rank-ordered *pieces*; each piece
// commits as its own top-level transaction, so the conflict window of the
// whole operation shrinks from "the entire transaction, including think
// time" to "one piece at a time".  This is the ChoppedTransaction idiom:
// open nesting (paper S4) removes a *collection operation* from the
// parent's footprint, chopping removes the *parent itself* — the two
// compose, and fig6 measures the difference under high contention.
//
//   chopped()
//       .piece("district", [&] { ...first piece... },
//              /*compensate=*/[&] { ...undo its committed effects... })
//       .piece("stock", [&] { ...second piece... })
//       .run();
//
// Ranks are the declaration order (an explicit strictly-increasing rank
// overload exists for clarity at call sites).  Correctness contract, as in
// the chopping literature: the programmer asserts the chopping is valid —
// every schedule of pieces from concurrent chops is equivalent to some
// serial schedule of the original transactions (no SC-cycle).  The runtime
// *checks the cheap dynamic part*: after each piece commits, its read/write
// lines become the chop's forward-dependency footprint, and any foreign
// commit touching that footprint before the chop finishes marks the chop
// broken.  What happens then is the policy:
//
//  * kRanked     — the break is counted (Runtime::chop_stats) and execution
//                  continues: the declared rank order vouches for
//                  serializability, the counter tells you how often you
//                  relied on it.  This is the throughput mode.
//  * kValidated  — the already-committed pieces are *compensated* in
//                  reverse order (each compensation runs as a detached open
//                  transaction inside one TXCC_CHECKED abort/compensation
//                  scope — the same machinery abort handlers use, so
//                  kDoubleCompensation auditing applies) and the chop
//                  restarts from its first piece.
//
// A piece body that throws a user exception triggers the same reverse
// compensation sweep before the exception propagates: the chop as a whole
// is all-or-nothing at the semantic level, even though its pieces commit
// physically one at a time.
//
// Every piece except the last should register a compensation — a piece
// that mutates a collection without one cannot be undone if a later piece
// (or policy) needs it; txlint's chop-compensation rule flags that shape.
#pragma once

#include <functional>
#include <vector>

#include "tm/runtime.h"

namespace atomos {

enum class ChopPolicy {
  kRanked,     ///< count forward-dependency breaks, never re-run
  kValidated,  ///< compensate committed pieces and restart on a break
};

class Chop {
 public:
  explicit Chop(ChopPolicy policy = ChopPolicy::kRanked) : policy_(policy) {}

  /// Appends a piece at the next rank.  `compensate` (optional, but
  /// required by the lint rule for mutating non-final pieces) must undo the
  /// piece's committed effects when run as its own transaction later.
  Chop& piece(const char* name, std::function<void()> body,
              std::function<void()> compensate = nullptr) {
    const int rank = pieces_.empty() ? 0 : pieces_.back().rank + 1;
    pieces_.push_back(Piece{name, rank, std::move(body), std::move(compensate)});
    return *this;
  }

  /// Same, with an explicit rank; ranks must be strictly increasing.
  Chop& piece(int rank, const char* name, std::function<void()> body,
              std::function<void()> compensate = nullptr) {
    if (!pieces_.empty() && rank <= pieces_.back().rank)
      throw std::logic_error("Chop: piece ranks must be strictly increasing");
    pieces_.push_back(Piece{name, rank, std::move(body), std::move(compensate)});
    return *this;
  }

  /// Executes the pieces in rank order.  Outside a simulation worker (or in
  /// Mode::kLock) the bodies run plainly; inside an enclosing transaction
  /// the pieces degrade to closed-nested frames of it (the chop loses its
  /// early commits but keeps its semantics).
  void run();

 private:
  struct Piece {
    const char* name;
    int rank;
    std::function<void()> body;
    std::function<void()> compensate;
  };

  ChopPolicy policy_;
  std::vector<Piece> pieces_;
};

/// Entry point mirroring atomically()/open_atomically(): builds a Chop.
inline Chop chopped(ChopPolicy policy = ChopPolicy::kRanked) {
  return Chop(policy);
}

}  // namespace atomos
