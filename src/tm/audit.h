// txcheck layer 2: the TXCC_CHECKED runtime invariant auditor.
//
// Compiled in with -DTXCC_CHECKED=1 (CMake option TXCC_CHECKED).  A
// per-transaction audit ledger cross-checks, at runtime, the discipline the
// static lint (tools/txlint) can only approximate from source text:
//
//  * semantic-lock acquire/release pairing — every lock a top-level
//    transaction takes in a LockerSet / KeyLockTable / RangeLockTable must
//    be released by the time that transaction finishes (commit handler on
//    commit, abort handler on abort).  A lock still held when the
//    transaction is gone is a LEAK: no one will ever release it, and every
//    later writer of that key is violated or serialized forever;
//  * handler pairing — a top-level transaction that registered commit
//    handlers but no abort handler cannot compensate its open-nested
//    effects and is reported;
//  * read/write-set consistency — while the commit token is held the
//    transaction's redo log and read set must be internally consistent
//    (index maps and logs agree) before the write set is broadcast;
//  * naked stores — a non-transactional store from a worker fiber in Tcc
//    mode to a registered Shared cell bypasses commit arbitration and is
//    reported (legal at the memory level, but almost always a missing
//    `atomically`).
//
// Findings are counted and recorded (query with count()/reports()); the
// first few are echoed to stderr.  The auditor never throws or aborts: the
// negative tests in tests/tm/checked_runtime_test.cpp assert on the
// counters, and production code pays nothing when TXCC_CHECKED is off (all
// hooks collapse to empty inlines).
//
// Thread model: state is thread_local, matching the runtime's "one Runtime
// per host thread, all fibers of an engine on that thread" design.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tm/runtime.h"

namespace trace {
class Tracer;
}

namespace atomos::audit {

enum class Check {
  kLockLeak = 0,
  kUnpairedHandler,
  kSetCorruption,
  kNakedStore,
  kLateProfileLabel,
  kTornTrace,
  /// A simulated cell was constructed on a host thread whose va arena
  /// cursors are not owned by a live Engine (while Engines are live
  /// elsewhere): the cell draws from a stale thread_local cursor and can
  /// alias another simulation's addresses.  Detected in sim::va_alloc
  /// (sim/vaddr.h); the count lives there and is surfaced here.
  kForeignVaAlloc,
  /// A semantic lock released twice by a live transaction: the release
  /// request found nothing to release and the owner has not settled yet, so
  /// this is not a stale prune — it is a second release (or a release
  /// without acquire), which under optimistic read intents can strip
  /// ANOTHER reader's protection from the key.
  kDoubleRelease,
  /// The same collection compensation (abort handler) ran twice within one
  /// abort: compensations are not idempotent (a second run re-applies the
  /// inverse op to already-restored state), so a double registration
  /// corrupts the committed collection.
  kDoubleCompensation,
  /// A per-(line, cpu) reader-directory count hit its 255 ceiling (one CPU
  /// holding the same line in >255 stacked open-nested read sets).  The
  /// count saturates stickily — the reader bit stays set for the rest of
  /// the run — so conflict detection errs toward spurious violations, never
  /// missed ones.  Reported by ReaderDir::add (tm/reader_dir.h); the hook
  /// itself is declared there to avoid a header cycle.
  kReaderOverflow,
  kChecks  // count sentinel
};

#if defined(TXCC_CHECKED) && TXCC_CHECKED

inline constexpr bool kEnabled = true;

/// Clears counters, reports and the lock ledger (not the Shared-cell
/// registry, which tracks object lifetime, not transactions).
void reset();

std::uint64_t count(Check c);
std::uint64_t total();
const std::vector<std::string>& reports();

// ---- hooks: semantic-lock ledger (called by core/lockers.h) ----
void lock_acquired(const TxnId& owner, const void* table);
void lock_released(const TxnId& owner, const void* table);   // missing entry: no-op
void locks_released_all(const TxnId& owner, const void* table);
/// A release request that found nothing to release in the lock table.  A
/// stale prune of a settled (finished) incarnation is benign; anything else
/// is a double release by a live transaction (kDoubleRelease).
void lock_release_noop(const TxnId& owner, const void* table);

// ---- hooks: compensation scoping (called by tm/runtime.cpp + collections) --
/// Brackets one transaction's abort-handler run; collections report each
/// compensation body via compensation_run(site).  The same site running
/// twice inside one scope is kDoubleCompensation.
/// Scopes are tracked PER CPU: handler transactions tick and yield, so
/// abort scopes of different cpus interleave arbitrarily under the fiber
/// scheduler and a global stack would misattribute compensations.
void abort_scope_begin(const TxnId& id);
void abort_scope_end(int cpu);
void compensation_run(int cpu, const void* site);
/// Brackets one handler transaction's outcome inside the cpu's abort scope.
/// The runtime runs each abort handler as a detached open transaction that
/// can itself be doomed (the aborting transaction's reader-directory refs
/// are still live) and retried; an aborted attempt rolled its effects back,
/// so its compensation notes must be forgotten before the retry re-runs the
/// body — only attempts that COMMIT count toward double-run detection.
void compensation_handler_committed(int cpu);
void compensation_handler_aborted(int cpu);

// ---- hooks: transaction lifecycle (called by tm/runtime.cpp) ----
void handler_pairing(const TxnId& id, std::size_t top_commit_handlers,
                     std::size_t top_abort_handlers);
void txn_finished(const TxnId& id, bool committed);
void check_txn_sets(const detail::Txn& t);
/// Cross-checks the reader directory against a transaction's read set:
/// every line a live transaction has read must hold at least one
/// reader-directory reference for its CPU (else a committer would miss it).
void check_reader_dir(const detail::Txn& t, const ReaderDir& dir);

// ---- hooks: Shared-cell registry (called by tm/shared.h) ----
void note_shared(std::uintptr_t addr, std::uint32_t size);
void forget_shared(std::uintptr_t addr);
void naked_store(std::uintptr_t addr);
/// A TAPE profile label attached from a worker fiber while profiling is
/// already enabled and the simulation is already running: the label map is
/// host state (not rolled back on abort) and covers only the rest of the
/// run.  Labels belong in object setup — see the ordering contract in
/// tm/profile.h.
void late_profile_label(std::uintptr_t va, const char* name);
/// Audits a trace stream for well-nestedness per CPU: every kTxnBegin must
/// pair with a kTxnCommit/kTxnAbort, every kOpenBegin with a matching open
/// exit, in stack order.  CPUs whose buffer overflowed (dropped events) are
/// skipped — pairing cannot be judged across a hole.  Called from ~Runtime
/// when a tracer was attached; a torn stream means a lost emission point.
void check_trace_nesting(const trace::Tracer& tracer);

#else  // !TXCC_CHECKED — every hook is a free empty inline

inline constexpr bool kEnabled = false;

inline void reset() {}
inline std::uint64_t count(Check) { return 0; }
inline std::uint64_t total() { return 0; }
inline const std::vector<std::string>& reports() {
  static const std::vector<std::string> kNone;
  return kNone;
}
inline void lock_acquired(const TxnId&, const void*) {}
inline void lock_released(const TxnId&, const void*) {}
inline void locks_released_all(const TxnId&, const void*) {}
inline void lock_release_noop(const TxnId&, const void*) {}
inline void abort_scope_begin(const TxnId&) {}
inline void abort_scope_end(int) {}
inline void compensation_run(int, const void*) {}
inline void compensation_handler_committed(int) {}
inline void compensation_handler_aborted(int) {}
inline void handler_pairing(const TxnId&, std::size_t, std::size_t) {}
inline void txn_finished(const TxnId&, bool) {}
inline void check_txn_sets(const detail::Txn&) {}
inline void check_reader_dir(const detail::Txn&, const ReaderDir&) {}
inline void note_shared(std::uintptr_t, std::uint32_t) {}
inline void forget_shared(std::uintptr_t) {}
inline void naked_store(std::uintptr_t) {}
inline void late_profile_label(std::uintptr_t, const char*) {}
inline void check_trace_nesting(const trace::Tracer&) {}

#endif

}  // namespace atomos::audit
