#include "tm/audit.h"

#if defined(TXCC_CHECKED) && TXCC_CHECKED

#include <algorithm>
#include <array>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "sim/vaddr.h"
#include "trace/tracer.h"

namespace atomos::audit {
namespace {

// Cap what we echo/retain so a pathological workload cannot drown the run;
// counters keep exact totals regardless.
constexpr std::size_t kMaxStderrReports = 16;
constexpr std::size_t kMaxKeptReports = 4096;

struct TxnIdHash {
  std::size_t operator()(const TxnId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.incarnation * 1000003u +
                                      static_cast<std::uint64_t>(id.cpu));
  }
};

struct State {
  // Semantic-lock ledger: owner -> (lock table -> live acquire count).
  std::unordered_map<TxnId, std::unordered_map<const void*, long>, TxnIdHash> held;
  // Highest finished top-level incarnation per CPU.  Lock owners are always
  // top-level TxnIds, and top-level transactions on one CPU finish in
  // incarnation order, so `incarnation <= settled_upto[cpu]` is an exact
  // settled test in O(1) memory: a release no-op for a settled owner is a
  // stale prune, for a live one a double release.
  std::unordered_map<int, std::uint64_t> settled_upto;
  // In-progress abort-handler runs, tracked PER CPU (handler transactions
  // tick and yield, so scopes of different cpus interleave; on one cpu they
  // still nest when a compensation itself aborts): the sites whose
  // compensation already ran in that scope, and which of them were already
  // reported as duplicates.
  struct AbortScope {
    TxnId id;
    std::unordered_set<const void*> ran;       // committed handler attempts
    std::vector<const void*> attempt;          // in-flight handler attempt
    std::unordered_set<const void*> reported;
  };
  std::unordered_map<int, std::vector<AbortScope>> abort_scopes;
  // Registered Shared<T> cells: address -> payload size.
  std::unordered_map<std::uintptr_t, std::uint32_t> cells;
  std::array<std::uint64_t, static_cast<std::size_t>(Check::kChecks)> counts{};
  std::vector<std::string> findings;
};

// thread_local, matching the one-Runtime-per-thread rule (all fibers of an
// engine share the host thread, so they share this ledger).
State& st() {
  thread_local State s;
  return s;
}

void report(Check c, std::string msg) {
  State& s = st();
  s.counts[static_cast<std::size_t>(c)]++;
  if (s.findings.size() < kMaxStderrReports) {
    std::fprintf(stderr, "[txcheck] %s\n", msg.c_str());
  }
  if (s.findings.size() < kMaxKeptReports) s.findings.push_back(std::move(msg));
}

std::string id_str(const TxnId& id) {
  return "txn(cpu=" + std::to_string(id.cpu) +
         ", inc=" + std::to_string(id.incarnation) + ")";
}

std::string ptr_str(const void* p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%p", p);
  return buf;
}

}  // namespace

void reset() {
  State& s = st();
  s.held.clear();
  s.settled_upto.clear();
  s.abort_scopes.clear();
  s.counts.fill(0);
  s.findings.clear();
  sim::va_foreign_alloc_reset();
  // s.cells deliberately kept: it tracks Shared object lifetime, not
  // transactions, and the objects are still alive across a reset().
}

std::uint64_t count(Check c) {
  // Detected at the sim layer (sim/vaddr.h) so the allocator need not link
  // against the TM auditor; surfaced through the common Check interface.
  if (c == Check::kForeignVaAlloc) return sim::va_foreign_alloc_count();
  return st().counts[static_cast<std::size_t>(c)];
}

std::uint64_t total() {
  std::uint64_t n = sim::va_foreign_alloc_count();
  for (const auto c : st().counts) n += c;
  return n;
}

const std::vector<std::string>& reports() { return st().findings; }

// ---- semantic-lock ledger ----

void lock_acquired(const TxnId& owner, const void* table) {
  if (owner.cpu < 0) return;  // not a live transaction id
  st().held[owner][table]++;
}

void lock_released(const TxnId& owner, const void* table) {
  State& s = st();
  auto it = s.held.find(owner);
  if (it == s.held.end()) return;  // stale prune after txn end: already settled
  auto jt = it->second.find(table);
  if (jt == it->second.end()) return;
  if (--jt->second <= 0) it->second.erase(jt);
  if (it->second.empty()) s.held.erase(it);
}

void locks_released_all(const TxnId& owner, const void* table) {
  State& s = st();
  auto it = s.held.find(owner);
  if (it == s.held.end()) return;
  it->second.erase(table);
  if (it->second.empty()) s.held.erase(it);
}

void lock_release_noop(const TxnId& owner, const void* table) {
  if (owner.cpu < 0) return;  // not a live transaction id
  State& s = st();
  auto it = s.settled_upto.find(owner.cpu);
  if (it != s.settled_upto.end() && owner.incarnation <= it->second) {
    return;  // stale prune of a finished incarnation: benign by design
  }
  report(Check::kDoubleRelease,
         id_str(owner) + " released a semantic lock it does not hold in table " +
             ptr_str(table) + " (double release, or release without acquire)");
}

// ---- compensation scoping ----

void abort_scope_begin(const TxnId& id) {
  st().abort_scopes[id.cpu].push_back(State::AbortScope{id, {}, {}, {}});
}

void abort_scope_end(int cpu) {
  State& s = st();
  auto it = s.abort_scopes.find(cpu);
  if (it == s.abort_scopes.end() || it->second.empty()) return;
  it->second.pop_back();
  if (it->second.empty()) s.abort_scopes.erase(it);
}

void compensation_run(int cpu, const void* site) {
  State& s = st();
  auto it = s.abort_scopes.find(cpu);
  if (it == s.abort_scopes.end() || it->second.empty()) return;  // not audited
  State::AbortScope& scope = it->second.back();
  const bool seen =
      scope.ran.count(site) != 0 ||
      std::find(scope.attempt.begin(), scope.attempt.end(), site) != scope.attempt.end();
  if (!seen) {
    scope.attempt.push_back(site);  // counted only if this attempt commits
    return;
  }
  if (scope.reported.insert(site).second) {
    report(Check::kDoubleCompensation,
           id_str(scope.id) + " ran the compensation for collection " +
               ptr_str(site) +
               " more than once in a single abort: compensations are not "
               "idempotent, the second run corrupts committed state");
  }
}

void compensation_handler_committed(int cpu) {
  State& s = st();
  auto it = s.abort_scopes.find(cpu);
  if (it == s.abort_scopes.end() || it->second.empty()) return;
  State::AbortScope& scope = it->second.back();
  for (const void* site : scope.attempt) scope.ran.insert(site);
  scope.attempt.clear();
}

void compensation_handler_aborted(int cpu) {
  // The handler transaction rolled back: its compensation never happened.
  State& s = st();
  auto it = s.abort_scopes.find(cpu);
  if (it != s.abort_scopes.end() && !it->second.empty()) it->second.back().attempt.clear();
}

// ---- transaction lifecycle ----

void handler_pairing(const TxnId& id, std::size_t top_commit_handlers,
                     std::size_t top_abort_handlers) {
  // Abort-only registration is legal (compensation for an already-committed
  // open-nested action, e.g. CompensatedCounter).  Commit-only is not: the
  // open-nested state the commit handler publishes/releases has no
  // compensation path on abort.
  if (top_commit_handlers > 0 && top_abort_handlers == 0) {
    report(Check::kUnpairedHandler,
           id_str(id) + " registered " + std::to_string(top_commit_handlers) +
               " top-level commit handler(s) but no abort handler");
  }
}

void txn_finished(const TxnId& id, bool committed) {
  State& s = st();
  std::uint64_t& upto = s.settled_upto[id.cpu];
  if (id.incarnation > upto) upto = id.incarnation;
  auto it = s.held.find(id);
  if (it == s.held.end()) return;
  long locks = 0;
  for (const auto& [table, n] : it->second) locks += n;
  report(Check::kLockLeak,
         id_str(id) + (committed ? " committed" : " aborted") + " still holding " +
             std::to_string(locks) + " semantic lock(s) across " +
             std::to_string(it->second.size()) + " table(s), e.g. table " +
             ptr_str(it->second.begin()->first));
  s.held.erase(it);  // settle: later stale prunes for this owner are no-ops
}

void check_txn_sets(const detail::Txn& t) {
  const TxnId id{t.cpu, t.incarnation};
  if (t.write_idx.size() != t.writes.size()) {
    report(Check::kSetCorruption,
           id_str(id) + " write-set index has " + std::to_string(t.write_idx.size()) +
               " entries but redo log has " + std::to_string(t.writes.size()));
  }
  bool idx_reported = false;
  t.write_idx.for_each([&](std::uintptr_t addr, const std::uint32_t& idx) {
    if (idx_reported) return;
    if (idx >= t.writes.size() || t.writes[idx].addr != addr) {
      report(Check::kSetCorruption,
             id_str(id) + " write-set index entry for " +
                 ptr_str(reinterpret_cast<const void*>(addr)) +
                 " does not match its redo-log slot");
      idx_reported = true;  // one detailed report per commit is enough
    }
  });
  for (const auto& u : t.write_undo) {
    if (u.idx >= t.writes.size()) {
      report(Check::kSetCorruption,
             id_str(id) + " write-undo entry points past the redo log");
      break;
    }
  }
  if (static_cast<std::size_t>(t.depth) != t.marks.size()) {
    report(Check::kSetCorruption,
           id_str(id) + " frame depth " + std::to_string(t.depth) + " != " +
               std::to_string(t.marks.size()) + " frame marks");
  }
  bool frame_reported = false;
  t.read_frame.for_each([&](sim::LineAddr, const std::int32_t& frame) {
    if (frame_reported) return;
    if (frame < 0 || frame > t.depth) {
      report(Check::kSetCorruption,
             id_str(id) + " read-set entry owned by frame " + std::to_string(frame) +
                 " outside [0, " + std::to_string(t.depth) + "]");
      frame_reported = true;
    }
  });
  // Read-log / read-set agreement: every live first-read entry (prev < 0)
  // corresponds to exactly one read-set line.  This is also the invariant
  // the runtime's reader directory maintenance is keyed to.
  std::size_t first_reads = 0;
  for (const auto& [line, prev] : t.read_log) {
    if (prev < 0) ++first_reads;
  }
  if (first_reads != t.read_frame.size()) {
    report(Check::kSetCorruption,
           id_str(id) + " read log records " + std::to_string(first_reads) +
               " first-reads but the read set has " + std::to_string(t.read_frame.size()) +
               " lines");
  }
}

void check_reader_dir(const detail::Txn& t, const ReaderDir& dir) {
  const TxnId id{t.cpu, t.incarnation};
  bool reported = false;
  t.read_frame.for_each([&](sim::LineAddr line, const std::int32_t&) {
    if (reported) return;
    if (dir.count(line, t.cpu) == 0) {
      report(Check::kSetCorruption,
             id_str(id) + " read-set line " + std::to_string(line) +
                 " holds no reader-directory reference: a committer of that "
                 "line would not flag this transaction");
      reported = true;
    }
  });
}

// ---- reader directory (hooks declared in tm/reader_dir.h) ----

void reader_count_overflow(sim::LineAddr line, int cpu) {
  report(Check::kReaderOverflow,
         "reader-directory count for line " + std::to_string(line) + " on cpu " +
             std::to_string(cpu) +
             " saturated at 255 (open-nesting depth > 255 on one line); the "
             "reader bit is now sticky, so the CPU may see spurious "
             "violations on this line for the rest of the run");
}

void reader_dir_corrupt(sim::LineAddr line, int cpu, const char* what) {
  report(Check::kSetCorruption,
         "reader directory: " + std::string(what) + " (line " +
             std::to_string(line) + ", cpu " + std::to_string(cpu) + ")");
}

void check_trace_nesting(const trace::Tracer& tracer) {
  using trace::Kind;
  for (int cpu = 0; cpu < tracer.num_cpus(); ++cpu) {
    if (tracer.dropped(cpu) != 0) continue;  // hole: pairing is unjudgeable
    const trace::Event* ev = tracer.events(cpu);
    const std::size_t n = tracer.count(cpu);
    std::vector<Kind> stack;
    std::string why;
    for (std::size_t i = 0; i < n && why.empty(); ++i) {
      const Kind k = static_cast<Kind>(ev[i].kind);
      switch (k) {
        case Kind::kTxnBegin:
        case Kind::kOpenBegin:
          stack.push_back(k);
          break;
        case Kind::kTxnCommit:
        case Kind::kTxnAbort:
          if (stack.empty() || stack.back() != Kind::kTxnBegin) {
            why = "top-level exit at cycle " + std::to_string(ev[i].cycle) +
                  (stack.empty() ? " with no open transaction"
                                 : " while an open-nested child is active");
          } else {
            stack.pop_back();
          }
          break;
        case Kind::kOpenCommit:
        case Kind::kOpenAbort:
          if (stack.empty() || stack.back() != Kind::kOpenBegin) {
            why = "open-nested exit at cycle " + std::to_string(ev[i].cycle) +
                  " without a matching open-nested begin";
          } else {
            stack.pop_back();
          }
          break;
        default:
          break;
      }
    }
    if (why.empty() && !stack.empty()) {
      why = std::to_string(stack.size()) + " transaction(s) never terminated";
    }
    if (!why.empty()) {
      report(Check::kTornTrace, "cpu " + std::to_string(cpu) +
                                    " trace stream is torn: " + why);
    }
  }
}

// ---- Shared-cell registry ----

void note_shared(std::uintptr_t addr, std::uint32_t size) { st().cells[addr] = size; }

void forget_shared(std::uintptr_t addr) { st().cells.erase(addr); }

void naked_store(std::uintptr_t addr) {
  State& s = st();
  auto it = s.cells.find(addr);
  if (it == s.cells.end()) return;
  report(Check::kNakedStore,
         "naked (non-transactional) store from a worker to registered Shared cell " +
             ptr_str(reinterpret_cast<const void*>(addr)) + " (" +
             std::to_string(it->second) + " bytes) bypasses commit arbitration");
}

void late_profile_label(std::uintptr_t va, const char* name) {
  report(Check::kLateProfileLabel,
         "profile label '" + std::string(name != nullptr ? name : "<null>") +
             "' attached to simulated address " +
             ptr_str(reinterpret_cast<const void*>(va)) +
             " from inside a running simulation: the label map is host state "
             "(not rolled back on abort) and only covers the rest of the run; "
             "label objects during setup (see the ordering contract in "
             "tm/profile.h)");
}

}  // namespace atomos::audit

#endif  // TXCC_CHECKED
