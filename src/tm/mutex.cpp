#include "tm/mutex.h"

#include <stdexcept>

namespace atomos {

void Mutex::lock() {
  if (!sim::Engine::in_worker()) return;
  sim::Engine& e = sim::Engine::get();
  const int me = e.cpu_id();
  const std::uintptr_t addr = vaddr_;
  if (owner_ == me) throw std::logic_error("atomos::Mutex: recursive lock");

  int spins = 0;
  for (;;) {
    // Test: read the lock word (timed; hits while the line stays shared).
    e.advance_to(e.memsys().plain_load(me, addr, e.now()));
    if (owner_ == -1) {
      // Test-and-set: the RFO store is the atomic acquire point.
      e.advance_to(e.memsys().plain_store(me, addr, e.now()));
      if (owner_ == -1) {  // may have been taken while we paid the store
        owner_ = me;
        return;
      }
    }
    if (++spins >= kSpinsBeforePark) {
      waiters_.push_back(me);
      e.block();
      // Handoff: unlock() made us the owner before waking us.
      if (owner_ == me) return;
      spins = 0;  // spurious (should not happen); spin again
    } else {
      const std::uint64_t pause = 8u << (spins < 4 ? spins : 4);
      e.stats().cpu(me).lock_spin_cycles += pause;
      e.tick(pause);
    }
  }
}

void Mutex::unlock() {
  if (!sim::Engine::in_worker()) return;
  sim::Engine& e = sim::Engine::get();
  const int me = e.cpu_id();
  if (owner_ != me) throw std::logic_error("atomos::Mutex: unlock by non-owner");
  e.advance_to(e.memsys().plain_store(me, vaddr_, e.now()));
  if (!waiters_.empty()) {
    const int next = waiters_.front();
    waiters_.pop_front();
    owner_ = next;  // direct handoff: FIFO fairness
    e.unblock(next, e.now());
  } else {
    owner_ = -1;
  }
}

bool Mutex::held_by_me() const {
  if (!sim::Engine::in_worker()) return true;  // setup code: uncontended
  return owner_ == sim::Engine::get().cpu_id();
}

}  // namespace atomos
