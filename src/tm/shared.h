// atomos::Shared<T> — a transactional memory cell.
//
// Every piece of state that is shared between virtual CPUs must live in a
// Shared<T>.  Accesses are routed by execution mode:
//
//  * outside a simulation (setup/teardown code): raw, untimed access;
//  * Mode::kLock: direct access with MESI-timed loads/stores (this is what
//    the paper's lock-based "Java" runs see);
//  * Mode::kTcc inside a transaction: the read joins the transaction's
//    read set and the write is buffered until commit — exactly how a field
//    access of a plain java.util collection behaves under Atomos.
//
// T must be trivially copyable and at most 8 bytes (words): pointers,
// integers, bools, small enums.  Aggregate state is built from nodes that
// contain Shared fields (see src/jstd).  The cell's *simulated address* —
// a deterministic virtual address assigned at construction (sim/vaddr.h) —
// is its identity for conflict detection and timing, so Shared is neither
// copyable nor movable; false sharing between cells constructed adjacently
// (eight words per virtual cache line) is deliberately modelled, as on the
// paper's HTM.  Using virtual rather than host addresses makes simulated
// cycle counts independent of the binary's memory layout.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "sim/engine.h"
#include "sim/vaddr.h"
#include "tm/audit.h"
#include "tm/profile.h"
#include "tm/runtime.h"

namespace atomos {

template <class T>
class Shared {
  static_assert(std::is_trivially_copyable_v<T>, "Shared<T> requires trivially copyable T");
  static_assert(sizeof(T) <= 8, "Shared<T> holds at most a machine word");

 public:
  /// `mc` selects the cell's memory class (sim/vaddr.h): which arena the
  /// cell's virtual address comes from and whether it gets a private cache
  /// line.  Bulk element cells keep the packed data-arena default; hot
  /// metadata and counter cells declare sim::kMetaCell / sim::kCounterCell.
  explicit Shared(sim::MemClass mc) : v_{}, va_(sim::va_alloc(sizeof(T), mc)) {
    audit::note_shared(reinterpret_cast<std::uintptr_t>(&v_), sizeof(T));
  }

  Shared() : Shared(sim::kDataCell) {}

  /// `name` (optional) labels this cell for TAPE-style conflict profiling in
  /// the active Runtime's profile; pass a string with static storage
  /// duration.  The label is recorded only when a Runtime exists and its
  /// profile is already enabled — enable profiling before constructing
  /// labelled cells (ordering contract in tm/profile.h).
  explicit Shared(T v, const char* name = nullptr, sim::MemClass mc = sim::kDataCell)
      : v_(v), va_(sim::va_alloc(sizeof(T), mc)) {
    if (name != nullptr) {
      if (Runtime* rt = Runtime::current_or_null()) {
        if (rt->profile().enabled() && sim::Engine::in_worker()) {
          audit::late_profile_label(va_, name);
        }
        rt->profile().note_range(va_, sizeof(T), name);
      }
    }
    audit::note_shared(reinterpret_cast<std::uintptr_t>(&v_), sizeof(T));
  }

#if defined(TXCC_CHECKED) && TXCC_CHECKED
  // Only under TXCC_CHECKED: keeps Shared trivially destructible otherwise.
  ~Shared() { audit::forget_shared(reinterpret_cast<std::uintptr_t>(&v_)); }
#endif

  Shared(const Shared&) = delete;
  Shared& operator=(const Shared&) = delete;

  /// Transactionally reads the cell.
  T get() const {
    sim::Engine* ep = sim::Engine::current_or_null();  // one TLS load
    if (ep == nullptr || !ep->on_worker_fiber()) return v_;
    sim::Engine& e = *ep;
    if (e.config().mode == sim::Mode::kLock) {
      e.advance_to(e.memsys().plain_load(e.cpu_id(), va_, e.now()));
      return v_;
    }
    T out;
    Runtime::current().tm_read(va_, &out, sizeof(T), &v_);
    return out;
  }

  /// Transactionally writes the cell.
  void set(const T& v) {
    sim::Engine* ep = sim::Engine::current_or_null();  // one TLS load
    if (ep == nullptr || !ep->on_worker_fiber()) {
      v_ = v;
      return;
    }
    sim::Engine& e = *ep;
    if (e.config().mode == sim::Mode::kLock) {
      e.advance_to(e.memsys().plain_store(e.cpu_id(), va_, e.now()));
      v_ = v;
      return;
    }
    Runtime::current().tm_write(va_, &v, sizeof(T), &v_);
  }

  /// Raw access to the committed value — only for assertions/test oracles
  /// and setup code; never call from workload code during a simulation.
  const T& unsafe_peek() const { return v_; }

  // Sugar so Shared fields read naturally in data-structure code.
  operator T() const { return get(); }         // NOLINT(google-explicit-constructor)
  Shared& operator=(const T& v) {
    set(v);
    return *this;
  }

 private:
  T v_;                     // committed host storage
  std::uintptr_t va_;       // simulated address (conflict/timing identity)
};

}  // namespace atomos
