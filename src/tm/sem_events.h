// Semantic-event observation points for txmc (src/mc).
//
// The lock tables (core/lockers.h) and collection handlers already call the
// TXCC_CHECKED auditor at every semantic event; txmc's serializability
// oracle needs the same stream in *unchecked* builds, at run time, scoped to
// one simulation.  This header provides that channel: a thread_local
// Observer slot the model checker installs around a run.  When the slot is
// empty (the default, and always in production workloads) every hook is a
// single predictable branch.
//
// Thread model matches the auditor's: one Runtime per host thread, all
// fibers of an engine on that thread, so a thread_local slot observes
// exactly one simulation.
#pragma once

namespace atomos {

struct TxnId;

namespace sem {

/// Receives semantic events.  Default implementations ignore everything, so
/// an observer overrides only what it needs.
class Observer {
 public:
  virtual ~Observer() = default;
  /// `owner` took a read-intent lock in `table` (LockerSet identity; per-key
  /// sets inside a KeyLockTable keep per-key identity here).
  virtual void on_lock_acquired(const TxnId& /*owner*/, const void* /*table*/) {}
  /// `owner` released a lock it held in `table`.
  virtual void on_lock_released(const TxnId& /*owner*/, const void* /*table*/) {}
  /// Every range lock `owner` held in `table` was released at once.
  virtual void on_locks_released_all(const TxnId& /*owner*/, const void* /*table*/) {}
  /// A release request found nothing to release: either a stale prune of a
  /// finished incarnation (benign) or a double release by a live one (the
  /// observer decides, e.g. by tracking which incarnations have settled).
  virtual void on_lock_release_noop(const TxnId& /*owner*/, const void* /*table*/) {}
  /// A settled (finished-incarnation) owner was pruned from a locker set
  /// during commit-time conflict detection.
  virtual void on_lock_pruned(const TxnId& /*owner*/, const void* /*table*/) {}
  /// A collection compensation (abort-handler body) started running at
  /// `site` (the collection instance).
  virtual void on_compensation_run(const void* /*site*/) {}
};

inline Observer*& observer_slot() {
  thread_local Observer* slot = nullptr;
  return slot;
}

inline void lock_acquired(const TxnId& owner, const void* table) {
  if (Observer* o = observer_slot()) o->on_lock_acquired(owner, table);
}
inline void lock_released(const TxnId& owner, const void* table) {
  if (Observer* o = observer_slot()) o->on_lock_released(owner, table);
}
inline void locks_released_all(const TxnId& owner, const void* table) {
  if (Observer* o = observer_slot()) o->on_locks_released_all(owner, table);
}
inline void lock_release_noop(const TxnId& owner, const void* table) {
  if (Observer* o = observer_slot()) o->on_lock_release_noop(owner, table);
}
inline void lock_pruned(const TxnId& owner, const void* table) {
  if (Observer* o = observer_slot()) o->on_lock_pruned(owner, table);
}
inline void compensation_run(const void* site) {
  if (Observer* o = observer_slot()) o->on_compensation_run(site);
}

/// RAII installation for the duration of one simulated run.
class ScopedObserver {
 public:
  explicit ScopedObserver(Observer* o) : prev_(observer_slot()) { observer_slot() = o; }
  ~ScopedObserver() { observer_slot() = prev_; }
  ScopedObserver(const ScopedObserver&) = delete;
  ScopedObserver& operator=(const ScopedObserver&) = delete;

 private:
  Observer* prev_;
};

}  // namespace sem
}  // namespace atomos
