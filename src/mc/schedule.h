// txmc replay strings: a schedule as one short line of text.
//
// The controller (mc/controller.h) makes a scheduling decision every time
// the engine asks it to pick among >= 2 runnable CPUs ("branching"
// decisions; a forced pick of the only runnable CPU carries no information
// and is not recorded).  A schedule is the sequence of indices into the
// (ascending) runnable list chosen at those branching decisions; everything
// else about a run is deterministic, so the string replays the exact
// interleaving — txmc's one-line reproduce.
//
// Encoding "v1": the literal prefix "v1:" followed by one base-32 digit
// (0-9, a-v) per decision.  With the engine's CPU axis now reaching 128, a
// runnable-list index can exceed 31: schedules containing such an index
// render as "v2:" with two base-32 digits per decision instead.  encode()
// always emits v1 when every index fits one digit, so replay strings
// recorded before the axis widened stay byte-identical; decode() accepts
// both forms.  A run whose branching decisions outnumber the string's
// digits continues under the controller's default policy (min clock,
// lowest id), which is exactly how explorer prefixes work.
#pragma once

#include <string>
#include <vector>

namespace mc {

struct Schedule {
  std::vector<int> choices;  // runnable-list index per branching decision

  friend bool operator==(const Schedule&, const Schedule&) = default;
};

/// Renders `s` as a "v1:..." replay string.
std::string encode(const Schedule& s);

/// Parses a replay string.  Returns false (leaving `out` untouched) on a
/// malformed string: missing "v1:" prefix or a non-base-32 digit.
bool decode(const std::string& text, Schedule& out);

}  // namespace mc
