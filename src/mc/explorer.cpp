#include "mc/explorer.h"

#include <algorithm>

namespace mc {
namespace {

constexpr std::size_t kMaxCounterexamples = 32;

/// Would running `alt` instead of the executed choice at `b` be visible?
/// Heuristic: the alternative cpu's next footprint-carrying quantum in the
/// executed run must share a memory line or a semantic table with what ran
/// between the branch and that quantum.
bool dependent(const RunCapture& cap, const RunCapture::Branch& b, int alt_cpu) {
  std::size_t alt_q = cap.quanta.size();
  for (std::size_t q = b.quantum; q < cap.quanta.size(); ++q) {
    const RunCapture::Quantum& quantum = cap.quanta[q];
    if (quantum.cpu == alt_cpu &&
        (!quantum.lines.empty() || !quantum.tables.empty() || quantum.boundary)) {
      alt_q = q;
      break;
    }
  }
  if (alt_q == cap.quanta.size()) return false;  // alternative never acts again

  const RunCapture::Quantum& target = cap.quanta[alt_q];
  // Transaction boundaries delimit the oracle's serialization windows:
  // moving one across anything is observable, so never prune it.
  if (target.boundary) return true;
  for (std::size_t q = b.quantum; q < alt_q; ++q) {
    const RunCapture::Quantum& between = cap.quanta[q];
    if (between.cpu == alt_cpu) continue;
    if (between.boundary) return true;
    for (const sim::LineAddr line : between.lines) {
      if (std::find(target.lines.begin(), target.lines.end(), line) !=
          target.lines.end()) {
        return true;
      }
    }
    for (const void* table : between.tables) {
      if (std::find(target.tables.begin(), target.tables.end(), table) !=
          target.tables.end()) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

ExploreResult explore(const Program& prog, const ExploreOptions& opt) {
  ExploreResult res;
  std::vector<Schedule> stack;
  stack.push_back(Schedule{});  // the default min-clock schedule

  while (!stack.empty()) {
    if (res.runs >= opt.max_runs) {
      res.budget_exhausted = true;
      break;
    }
    const Schedule prefix = std::move(stack.back());
    stack.pop_back();

    const RunResult run = run_program(prog, prefix);
    ++res.runs;

    if (!run.violations.empty() && res.counterexamples.size() < kMaxCounterexamples) {
      res.counterexamples.push_back(Counterexample{run.executed, run.violations});
    }
    if (run.diverged) continue;  // stale prefix: the tree changed (defensive)

    // Expand only decisions introduced by THIS run (ord >= prefix length):
    // earlier decisions were expanded when their introducing run executed.
    for (const RunCapture::Branch& b : run.capture.branches) {
      if (b.ord < prefix.choices.size()) continue;
      if (b.ord >= static_cast<std::size_t>(opt.max_depth)) break;
      for (std::size_t alt = 0; alt < b.runnable.size(); ++alt) {
        if (static_cast<int>(alt) == b.chosen_index) continue;
        if (opt.reduce && !dependent(run.capture, b, b.runnable[alt])) continue;
        Schedule next;
        next.choices.assign(run.executed.choices.begin(),
                            run.executed.choices.begin() +
                                static_cast<std::ptrdiff_t>(b.ord));
        next.choices.push_back(static_cast<int>(alt));
        stack.push_back(std::move(next));
      }
    }
  }
  return res;
}

}  // namespace mc
