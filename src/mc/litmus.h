// txmc litmus corpus: small concurrent programs over the transactional
// collections, each run deterministically under a Controller-driven
// schedule.
//
// The corpus has two halves:
//  * CLEAN programs exercise the real collections (maps, sorted maps,
//    queues, compound transactions, forced memory-conflict aborts); the
//    oracle must accept EVERY schedule of these;
//  * MUTANT programs instantiate a seeded-bug collection (mc/mutants.h);
//    the explorer must find at least one schedule whose history the oracle
//    rejects with the mutant's expected anomaly class.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mc/controller.h"
#include "mc/oracle.h"
#include "mc/schedule.h"

namespace mc {

struct Program {
  std::string name;
  std::string description;
  int num_cpus = 2;
  bool mutant = false;
  /// The anomaly class the seeded bug must be caught as (mutants only).
  std::optional<Anomaly> expected;
};

/// One deterministic execution of a program under a forced schedule prefix.
struct RunResult {
  std::vector<Violation> violations;
  Schedule executed;       ///< full replayable schedule of this run
  bool diverged = false;   ///< forced prefix referenced a vanished branch
  RunCapture capture;      ///< footprints/branches for the explorer
};

/// The full corpus, clean programs first.
const std::vector<Program>& programs();

/// nullptr if `name` is not in the corpus.
const Program* find_program(const std::string& name);

/// Builds a fresh engine/runtime/collection world for `prog` and runs it
/// once under `forced` (empty = the default min-clock schedule).
RunResult run_program(const Program& prog, const Schedule& forced);

}  // namespace mc
