#include "mc/litmus.h"

#include <functional>
#include <memory>
#include <utility>

#include "core/txmap.h"
#include "core/txqueue.h"
#include "core/txsortedmap.h"
#include "jstd/hashmap.h"
#include "jstd/linkedqueue.h"
#include "jstd/treemap.h"
#include "mc/mutants.h"
#include "mc/recorded.h"
#include "tm/chop.h"
#include "tm/sem_events.h"
#include "tm/shared.h"

namespace mc {
namespace {

/// Registers the oracle's lifecycle handlers on the CURRENT top-level
/// transaction, FIRST: the commit flush stamps before any collection
/// handler applies its buffers (and needs no token — read-only transactions
/// stay token-free), while the abort flush, running LAST in the reverse
/// abort order, stamps after every compensation has run.  Chop piece bodies
/// call this directly (Chop::run owns the atomically() wrapper).
void mc_attach(Oracle& o) {
  auto& rt = atomos::Runtime::current();
  const atomos::TxnId id = rt.self_id();
  o.attempt_begin(id.cpu, id);
  Oracle* op = &o;
  const int cpu = id.cpu;
  rt.on_top_commit([op, cpu] { op->flush_commit(cpu); }, [] { return false; });
  rt.on_top_abort([op, cpu] { op->flush_abort(cpu); });
}

/// Runs `body` as one top-level transaction under the oracle.
template <class F>
void mc_txn(Oracle& o, F&& body) {
  auto& rt = atomos::Runtime::current();
  rt.atomically([&] {
    mc_attach(o);
    body();
  });
}

std::vector<std::pair<long, long>> map_entries(const jstd::Map<long, long>& m) {
  std::vector<std::pair<long, long>> out;
  for (auto it = m.iterator(); it->has_next();) out.push_back(it->next());
  return out;
}

std::vector<long> drain_queue(jstd::Channel<long>& q) {
  std::vector<long> out;
  while (auto v = q.poll()) out.push_back(*v);
  return out;
}

/// Owns every per-run object a program needs, so body/finish lambdas have
/// stable addresses for the whole run.
struct World {
  std::unique_ptr<tcc::TransactionalMap<long, long>> map;
  std::unique_ptr<tcc::TransactionalSortedMap<long, long>> sorted;
  std::unique_ptr<tcc::TransactionalQueue<long>> queue;
  std::optional<RecordedMap> rmap;
  std::optional<RecordedSortedMap> rsorted;
  std::optional<RecordedQueue> rqueue;
  std::optional<atomos::Shared<long>> cell;

  std::vector<std::function<void()>> bodies;
  std::function<void()> finish;
};

using Builder = std::function<std::unique_ptr<World>(Oracle&)>;

struct Entry {
  Program prog;
  Builder build;
};

std::unique_ptr<World> with_map(Oracle& o,
                                std::unique_ptr<tcc::TransactionalMap<long, long>> map,
                                std::vector<std::pair<long, long>> initial,
                                bool open_eager = false) {
  auto w = std::make_unique<World>();
  w->map = std::move(map);
  for (const auto& [k, v] : initial) w->map->put(k, v);  // pre-run: passthrough
  o.register_map(w->map.get(), "map", std::move(initial));
  w->rmap.emplace(&o, w->map.get(), open_eager);
  World* wp = w.get();
  Oracle* op = &o;
  w->finish = [op, wp] { op->set_final_map(wp->map.get(), map_entries(*wp->map)); };
  return w;
}

std::unique_ptr<World> with_queue(Oracle& o,
                                  std::unique_ptr<tcc::TransactionalQueue<long>> queue,
                                  std::vector<long> initial) {
  auto w = std::make_unique<World>();
  w->queue = std::move(queue);
  for (const long v : initial) w->queue->put(v);
  o.register_queue(w->queue.get(), "queue", std::move(initial));
  w->rqueue.emplace(&o, w->queue.get());
  World* wp = w.get();
  Oracle* op = &o;
  w->finish = [op, wp] { op->set_final_queue(wp->queue.get(), drain_queue(*wp->queue)); };
  return w;
}

std::unique_ptr<tcc::TransactionalMap<long, long>> plain_map() {
  return std::make_unique<tcc::TransactionalMap<long, long>>(
      std::make_unique<jstd::HashMap<long, long>>(16));
}

std::unique_ptr<tcc::TransactionalQueue<long>> plain_queue() {
  return std::make_unique<tcc::TransactionalQueue<long>>(
      std::make_unique<jstd::LinkedQueue<long>>());
}

// ---- clean corpus ----

std::unique_ptr<World> build_map_rmw(Oracle& o) {
  auto w = with_map(o, plain_map(), {{1, 10}});
  World* wp = w.get();
  Oracle* op = &o;
  w->bodies = {
      [op, wp] {
        mc_txn(*op, [&] {
          const long v = wp->rmap->get(1).value_or(0);
          atomos::work(300);
          wp->rmap->put(1, v + 1);
        });
      },
      [op, wp] {
        mc_txn(*op, [&] {
          const long v = wp->rmap->get(1).value_or(0);
          atomos::work(300);
          wp->rmap->put(1, v + 2);
        });
      },
  };
  return w;
}

std::unique_ptr<World> build_map_blind(Oracle& o) {
  auto w = with_map(o, plain_map(), {{1, 10}});
  World* wp = w.get();
  Oracle* op = &o;
  w->bodies = {
      [op, wp] {
        mc_txn(*op, [&] {
          wp->rmap->put_blind(1, 100);
          atomos::work(200);
          (void)wp->rmap->get(2);
        });
      },
      [op, wp] {
        mc_txn(*op, [&] {
          wp->rmap->put_blind(1, 200);
          atomos::work(100);
          (void)wp->rmap->get(3);
        });
      },
  };
  return w;
}

std::unique_ptr<World> build_map_size_empty(Oracle& o) {
  auto w = with_map(o, plain_map(), {{1, 10}, {2, 20}});
  World* wp = w.get();
  Oracle* op = &o;
  w->bodies = {
      [op, wp] {
        mc_txn(*op, [&] {
          const long s = wp->rmap->size();
          atomos::work(250);
          if (s < 3) wp->rmap->put(100, s);
        });
      },
      [op, wp] {
        mc_txn(*op, [&] {
          const bool e = wp->rmap->is_empty();
          atomos::work(120);
          if (!e) wp->rmap->put(200, 5);
        });
      },
  };
  return w;
}

std::unique_ptr<World> build_sorted_endpoints(Oracle& o) {
  auto w = std::make_unique<World>();
  w->sorted = std::make_unique<tcc::TransactionalSortedMap<long, long>>(
      std::make_unique<jstd::TreeMap<long, long>>());
  w->sorted->put(5, 50);
  w->sorted->put(9, 90);
  o.register_map(w->sorted.get(), "sorted", {{5, 50}, {9, 90}}, /*sorted=*/true);
  w->rsorted.emplace(&o, w->sorted.get());
  World* wp = w.get();
  Oracle* op = &o;
  w->finish = [op, wp] { op->set_final_map(wp->sorted.get(), map_entries(*wp->sorted)); };
  w->bodies = {
      [op, wp] {
        mc_txn(*op, [&] {
          const long f = wp->rsorted->first_key().value_or(-1);
          atomos::work(250);
          wp->rsorted->put(f + 100, 1);  // 105 or 101: distinct from corpus keys
        });
      },
      [op, wp] {
        mc_txn(*op, [&] {
          (void)wp->rsorted->last_key();
          atomos::work(80);
          wp->rsorted->put(1, 11);  // new minimum: violates first-key observers
        });
      },
  };
  return w;
}

std::unique_ptr<World> build_queue_pc(Oracle& o) {
  auto w = with_queue(o, plain_queue(), {101});
  World* wp = w.get();
  Oracle* op = &o;
  w->bodies = {
      [op, wp] {
        mc_txn(*op, [&] {
          wp->rqueue->put(102);
          atomos::work(150);
        });
        mc_txn(*op, [&] { wp->rqueue->put(103); });
      },
      [op, wp] {
        mc_txn(*op, [&] {
          (void)wp->rqueue->poll();
          atomos::work(120);
          (void)wp->rqueue->poll();
        });
      },
  };
  return w;
}

std::unique_ptr<World> build_queue_worklist(Oracle& o) {
  auto w = with_queue(o, plain_queue(), {201, 202});
  World* wp = w.get();
  Oracle* op = &o;
  auto worker = [op, wp] {
    mc_txn(*op, [&] {
      const auto v = wp->rqueue->take();
      atomos::work(140);
      if (v.has_value()) wp->rqueue->put(*v + 10);  // 211/212: globally unique
    });
  };
  w->bodies = {worker, worker};
  return w;
}

std::unique_ptr<World> build_compound(Oracle& o) {
  auto w = with_map(o, plain_map(), {});
  w->queue = plain_queue();
  w->queue->put(301);
  o.register_queue(w->queue.get(), "queue", {301});
  w->rqueue.emplace(&o, w->queue.get());
  World* wp = w.get();
  Oracle* op = &o;
  auto base_finish = std::move(w->finish);
  w->finish = [op, wp, base_finish] {
    base_finish();
    op->set_final_queue(wp->queue.get(), drain_queue(*wp->queue));
  };
  w->bodies = {
      [op, wp] {
        mc_txn(*op, [&] {
          const auto v = wp->rqueue->poll();
          atomos::work(100);
          if (v.has_value()) wp->rmap->put(*v, 1);
        });
      },
      [op, wp] {
        mc_txn(*op, [&] {
          wp->rmap->put(302, 2);
          atomos::work(90);
          wp->rqueue->put(303);
        });
      },
  };
  return w;
}

std::unique_ptr<World> build_map_conflict(Oracle& o) {
  auto w = with_map(o, plain_map(), {{1, 10}});
  w->cell.emplace(0L);
  World* wp = w.get();
  Oracle* op = &o;
  w->bodies = {
      [op, wp] {
        mc_txn(*op, [&] {
          (void)wp->rmap->get(1);
          (void)wp->cell->get();  // memory-level read: cpu1's commit dooms us
          atomos::work(280);
          wp->rmap->put(2, 22);
          wp->cell->set(1);
        });
      },
      [op, wp] {
        mc_txn(*op, [&] {
          atomos::work(60);
          wp->cell->set(2);
          wp->rmap->put(1, 11);
        });
      },
  };
  return w;
}

// ---- mutant corpus ----

std::unique_ptr<World> build_mut_lost_lock(Oracle& o) {
  auto w = with_map(o, std::make_unique<LockDroppingMap>(
                           std::make_unique<jstd::HashMap<long, long>>(16)),
                    {{1, 10}});
  World* wp = w.get();
  Oracle* op = &o;
  w->bodies = {
      [op, wp] {
        mc_txn(*op, [&] {
          const long v = wp->rmap->get(1).value_or(0);
          atomos::work(400);
          wp->rmap->put(2, v * 100);
        });
      },
      [op, wp] {
        mc_txn(*op, [&] {
          atomos::work(50);
          wp->rmap->put(1, 11);
        });
      },
  };
  return w;
}

std::unique_ptr<World> build_mut_open_leak(Oracle& o) {
  auto w = with_map(o, std::make_unique<EagerOpenMap>(
                           std::make_unique<jstd::HashMap<long, long>>(16)),
                    {}, /*open_eager=*/true);
  World* wp = w.get();
  Oracle* op = &o;
  w->bodies = {
      [op, wp] { mc_txn(*op, [&] { (void)wp->rmap->get(50); }); },
      [op, wp] {
        mc_txn(*op, [&] {
          wp->rmap->put(50, 42);  // applied eagerly by the mutant
          atomos::work(400);
        });
      },
  };
  return w;
}

std::unique_ptr<World> build_mut_lost_update(Oracle& o) {
  auto w = with_map(o, std::make_unique<NoLockPutMap>(
                           std::make_unique<jstd::HashMap<long, long>>(16)),
                    {{1, 10}});
  World* wp = w.get();
  Oracle* op = &o;
  w->bodies = {
      [op, wp] {
        mc_txn(*op, [&] {
          wp->rmap->put(1, 100);
          atomos::work(300);
        });
      },
      [op, wp] {
        mc_txn(*op, [&] {
          wp->rmap->put(1, 200);
          atomos::work(120);
        });
      },
  };
  return w;
}

std::unique_ptr<World> build_mut_lossy_queue(Oracle& o) {
  auto w = with_queue(o, std::make_unique<LossyQueue>(
                             std::make_unique<jstd::LinkedQueue<long>>()),
                      {401, 402});
  w->cell.emplace(0L);
  World* wp = w.get();
  Oracle* op = &o;
  w->bodies = {
      [op, wp] {
        mc_txn(*op, [&] {
          (void)wp->rqueue->poll();
          (void)wp->cell->get();  // cpu1's committed write aborts us mid-flight
          atomos::work(250);
        });
      },
      [op, wp] {
        mc_txn(*op, [&] {
          atomos::work(60);
          wp->cell->set(2);
        });
      },
  };
  return w;
}

// ---- srv programs: the server handler-loop shape (see src/srv) ----
// One transaction = take a request from the work queue, then a session RMW.

/// Grafts a queue onto a map world (the build_compound wiring).
void add_queue(World& w, Oracle& o,
               std::unique_ptr<tcc::TransactionalQueue<long>> queue,
               std::vector<long> initial) {
  w.queue = std::move(queue);
  for (const long v : initial) w.queue->put(v);
  o.register_queue(w.queue.get(), "queue", std::move(initial));
  w.rqueue.emplace(&o, w.queue.get());
  World* wp = &w;
  Oracle* op = &o;
  auto base_finish = std::move(w.finish);
  w.finish = [op, wp, base_finish] {
    base_finish();
    op->set_final_queue(wp->queue.get(), drain_queue(*wp->queue));
  };
}

std::unique_ptr<World> build_srv_handler(Oracle& o) {
  // Two workers drain a two-request queue and apply each request's delta to
  // the SAME session: take (no emptiness observation) + keyed RMW.  Every
  // interleaving must serialize — the session ends at 10 + 501 + 502 with
  // both requests consumed exactly once.
  auto w = with_map(o, plain_map(), {{1, 10}});
  add_queue(*w, o, plain_queue(), {501, 502});
  World* wp = w.get();
  Oracle* op = &o;
  auto worker = [op, wp] {
    mc_txn(*op, [&] {
      const auto req = wp->rqueue->take();
      atomos::work(140);
      if (req.has_value()) {
        const long bal = wp->rmap->get(1).value_or(0);
        wp->rmap->put(1, bal + *req);
      }
    });
  };
  w->bodies = {worker, worker};
  return w;
}

std::unique_ptr<World> build_chop_transfer(Oracle& o) {
  // The srv handler shape as a tm::chopped() transaction: the take and the
  // session deposit commit as separate rank-ordered pieces.  Within the take
  // piece TransactionalQueue's eager open-nested remove must put the element
  // back if the piece aborts (try_dequeue abort put-back), so in EVERY
  // schedule the two requests are consumed exactly once and the FIFO bag is
  // conserved: the session ends at 10 + 501 + 502 with the queue drained.
  auto w = with_map(o, plain_map(), {{1, 10}});
  add_queue(*w, o, plain_queue(), {501, 502});
  World* wp = w.get();
  Oracle* op = &o;
  auto worker = [op, wp] {
    std::optional<long> req;
    atomos::chopped()
        .piece("take",
               [&] {
                 mc_attach(*op);
                 req = wp->rqueue->take();
                 atomos::work(140);
               },
               /*compensate=*/
               [&] {
                 if (req.has_value()) wp->rqueue->put(*req);
               })
        .piece("apply",
               [&] {
                 mc_attach(*op);
                 if (req.has_value()) {
                   const long bal = wp->rmap->get(1).value_or(0);
                   wp->rmap->put(1, bal + *req);
                 }
               })
        .run();
  };
  w->bodies = {worker, worker};
  return w;
}

std::unique_ptr<World> build_mut_chop_lossy_dequeue(Oracle& o) {
  // The chopped handler over a LossyQueue: a memory conflict (the cell)
  // aborts the take piece mid-flight, and the mutant's broken abort
  // compensation drops the eagerly-removed request instead of putting it
  // back — the retry dequeues the NEXT request and the first one vanishes,
  // which the oracle reports as a compensation inversion.
  auto w = with_map(o, plain_map(), {});
  add_queue(*w, o,
            std::make_unique<LossyQueue>(
                std::make_unique<jstd::LinkedQueue<long>>()),
            {601, 602});
  w->cell.emplace(0L);
  World* wp = w.get();
  Oracle* op = &o;
  w->bodies = {
      [op, wp] {
        std::optional<long> req;
        atomos::chopped()
            .piece("take",
                   [&] {
                     mc_attach(*op);
                     req = wp->rqueue->poll();
                     (void)wp->cell->get();  // cpu1's commit aborts this piece
                     atomos::work(250);
                   },
                   /*compensate=*/
                   [&] {
                     if (req.has_value()) wp->rqueue->put(*req);
                   })
            .piece("apply",
                   [&] {
                     mc_attach(*op);
                     if (req.has_value()) wp->rmap->put(*req, 1);
                   })
            .run();
      },
      [op, wp] {
        mc_txn(*op, [&] {
          atomos::work(60);
          wp->cell->set(9);
        });
      },
  };
  return w;
}

std::unique_ptr<World> build_mut_srv_lost_update(Oracle& o) {
  // The same handler shape over a map whose put skips the key read-lock:
  // two concurrent handlers read the same balance and one deposit is lost.
  auto w = with_map(o, std::make_unique<NoLockPutMap>(
                           std::make_unique<jstd::HashMap<long, long>>(16)),
                    {{1, 10}});
  add_queue(*w, o, plain_queue(), {501, 502});
  World* wp = w.get();
  Oracle* op = &o;
  auto worker = [op, wp](std::uint64_t think) {
    return [op, wp, think] {
      mc_txn(*op, [&] {
        const auto req = wp->rqueue->take();
        // Deposit first, then post-process: the un-committed RMW is exposed
        // for the whole think time, so handlers overlap on the session.
        if (req.has_value()) wp->rmap->put(1, 1000 + *req);
        atomos::work(think);
      });
    };
  };
  w->bodies = {worker(300), worker(120)};
  return w;
}

std::unique_ptr<World> build_mut_srv_lossy_handler(Oracle& o) {
  // A handler aborted mid-flight (memory conflict on the cell) must hand
  // its request back to the queue; the LossyQueue's broken compensation
  // drops it instead, violating request conservation.
  auto w = with_map(o, plain_map(), {});
  add_queue(*w, o,
            std::make_unique<LossyQueue>(
                std::make_unique<jstd::LinkedQueue<long>>()),
            {601, 602});
  w->cell.emplace(0L);
  World* wp = w.get();
  Oracle* op = &o;
  w->bodies = {
      [op, wp] {
        mc_txn(*op, [&] {
          const auto req = wp->rqueue->poll();
          (void)wp->cell->get();  // cpu1's committed write aborts us mid-handler
          atomos::work(250);
          if (req.has_value()) wp->rmap->put(*req, 1);
        });
      },
      [op, wp] {
        mc_txn(*op, [&] {
          atomos::work(60);
          wp->cell->set(9);
        });
      },
  };
  return w;
}

std::unique_ptr<World> build_mut_double_release(Oracle& o) {
  auto w = with_map(o, std::make_unique<DoubleReleaseMap>(
                           std::make_unique<jstd::HashMap<long, long>>(16)),
                    {{1, 10}});
  World* wp = w.get();
  Oracle* op = &o;
  w->bodies = {
      [op, wp] {
        mc_txn(*op, [&] {
          (void)wp->rmap->get(1);
          wp->rmap->put(1, 11);
        });
      },
      [op, wp] { mc_txn(*op, [&] { wp->rmap->put(2, 22); }); },
  };
  return w;
}

std::unique_ptr<World> build_mut_lock_leak(Oracle& o) {
  auto w = with_map(o, std::make_unique<LeakyAbortMap>(
                           std::make_unique<jstd::HashMap<long, long>>(16)),
                    {{1, 10}});
  w->cell.emplace(0L);
  World* wp = w.get();
  Oracle* op = &o;
  w->bodies = {
      [op, wp] {
        mc_txn(*op, [&] {
          (void)wp->cell->get();
          (void)wp->rmap->get(1);
          atomos::work(300);
        });
      },
      [op, wp] {
        mc_txn(*op, [&] {
          atomos::work(50);
          wp->cell->set(5);
        });
      },
  };
  return w;
}

const std::vector<Entry>& registry() {
  static const std::vector<Entry> entries = [] {
    std::vector<Entry> e;
    auto clean = [&](const char* name, const char* desc, Builder b) {
      e.push_back(Entry{Program{name, desc, 2, false, std::nullopt}, std::move(b)});
    };
    auto mutant = [&](const char* name, const char* desc, Anomaly a, Builder b) {
      e.push_back(Entry{Program{name, desc, 2, true, a}, std::move(b)});
    };
    clean("map_rmw", "two read-modify-write transactions on one key", build_map_rmw);
    clean("map_blind", "blind puts of the same key commute", build_map_blind);
    clean("map_size_empty", "size/isEmpty observers vs a concurrent writer",
          build_map_size_empty);
    clean("sorted_endpoints", "firstKey/lastKey observers vs endpoint inserts",
          build_sorted_endpoints);
    clean("queue_pc", "producer/consumer with emptiness observations", build_queue_pc);
    clean("queue_worklist", "two take-then-put workers (Table 7 commute)",
          build_queue_worklist);
    clean("compound", "one transaction spanning a map and a queue", build_compound);
    clean("map_conflict", "memory conflict forces an abort + compensation",
          build_map_conflict);
    clean("srv_handler", "server handlers: take a request, session RMW",
          build_srv_handler);
    clean("chop_transfer", "chopped handler: take piece + deposit piece",
          build_chop_transfer);
    mutant("mut_lost_lock", "get() without the key lock",
           Anomaly::kLostSemanticLock, build_mut_lost_lock);
    mutant("mut_open_leak", "open-nested eager put leaks pre-commit state",
           Anomaly::kNonCommutingOpen, build_mut_open_leak);
    mutant("mut_lost_update", "RMW put without the key read-lock",
           Anomaly::kLostUpdate, build_mut_lost_update);
    mutant("mut_lossy_queue", "abort compensation drops polled elements",
           Anomaly::kCompensationInversion, build_mut_lossy_queue);
    mutant("mut_double_release", "commit handler releases key locks twice",
           Anomaly::kDoubleRelease, build_mut_double_release);
    mutant("mut_lock_leak", "abort handler forgets to release locks",
           Anomaly::kLockLeak, build_mut_lock_leak);
    mutant("mut_srv_lost_update", "handler session RMW without the key lock",
           Anomaly::kLostUpdate, build_mut_srv_lost_update);
    mutant("mut_srv_lossy_handler", "aborted handler loses its taken request",
           Anomaly::kCompensationInversion, build_mut_srv_lossy_handler);
    mutant("mut_chop_lossy_dequeue", "aborted chop take piece drops its request",
           Anomaly::kCompensationInversion, build_mut_chop_lossy_dequeue);
    return e;
  }();
  return entries;
}

}  // namespace

const std::vector<Program>& programs() {
  static const std::vector<Program> progs = [] {
    std::vector<Program> p;
    for (const Entry& e : registry()) p.push_back(e.prog);
    return p;
  }();
  return progs;
}

const Program* find_program(const std::string& name) {
  for (const Program& p : programs()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

RunResult run_program(const Program& prog, const Schedule& forced) {
  const Entry* entry = nullptr;
  for (const Entry& e : registry()) {
    if (e.prog.name == prog.name) entry = &e;
  }
  RunResult res;
  if (entry == nullptr) {
    res.violations.push_back(
        Violation{Anomaly::kNotSerializable, "unknown program: " + prog.name});
    return res;
  }

  sim::Config cfg;
  cfg.num_cpus = entry->prog.num_cpus;
  cfg.mode = sim::Mode::kTcc;
  cfg.slack = 0;  // exact interleaving: the hook owns every decision
  sim::Engine eng(cfg);  // resets the va arenas: runs are bit-reproducible
  atomos::Runtime rt(eng);
  Oracle oracle;
  Controller ctl(eng, rt, &oracle, forced);
  eng.set_scheduler_hook(&ctl);
  rt.set_mc_observer(&ctl);
  atomos::sem::ScopedObserver sem_guard(&ctl);

  std::unique_ptr<World> world = entry->build(oracle);
  for (auto& body : world->bodies) eng.spawn(body);
  eng.run();
  if (world->finish) world->finish();

  res.violations = oracle.check();
  res.executed = ctl.executed();
  res.diverged = ctl.diverged();
  res.capture = ctl.capture();
  return res;
}

}  // namespace mc
