// txmc schedule explorer.
//
// Bounded-exhaustive DFS over the scheduling-decision tree of one litmus
// program: every run is executed under a forced prefix of branch choices;
// each branching decision AT OR BEYOND the prefix spawns sibling prefixes
// for the alternatives not taken (never for decisions inside the prefix,
// so no schedule is executed twice).
//
// With `reduce` on (the default) an alternative is only queued when it is
// DEPENDENT on the executed choice: the alternative cpu's next visible
// quantum (memory-line or semantic-table footprint, or a top-level
// transaction boundary — commits delimit the oracle's serialization
// windows, so reordering them is always observable) intersects what
// actually ran in between.  The footprints come from the read/write sets
// tm::Txn already maintains plus the semantic-lock events — a DPOR-style
// heuristic, not a proof of optimality; --exhaustive disables it.
#pragma once

#include <cstddef>
#include <vector>

#include "mc/litmus.h"

namespace mc {

struct ExploreOptions {
  int max_runs = 500;      ///< budget: total schedules executed
  int max_depth = 64;      ///< branching decisions considered for expansion
  bool reduce = true;      ///< dependence-based pruning of alternatives
};

struct Counterexample {
  Schedule schedule;  ///< replay string reproduces the violations exactly
  std::vector<Violation> violations;
};

struct ExploreResult {
  int runs = 0;
  bool budget_exhausted = false;
  std::vector<Counterexample> counterexamples;

  bool found(Anomaly kind) const {
    for (const Counterexample& c : counterexamples) {
      for (const Violation& v : c.violations) {
        if (v.kind == kind) return true;
      }
    }
    return false;
  }
};

ExploreResult explore(const Program& prog, const ExploreOptions& opt);

}  // namespace mc
