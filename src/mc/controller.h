// txmc schedule controller.
//
// A Controller is the bridge between one simulated run and the model
// checker: it is simultaneously
//
//  * the engine's SchedulerHook — at every scheduling decision it picks the
//    next runnable cpu itself (never deferring to the engine), replaying a
//    forced prefix of choices and continuing with the default min-clock
//    policy past it.  Every BRANCHING decision (>= 2 runnable cpus) is
//    appended to the executed Schedule, so any run is replayable from its
//    encoded string alone;
//  * the runtime's McObserver — per-quantum line footprints (reads/writes)
//    feed the explorer's dependence-based reduction;
//  * the semantic-event Observer — lock acquire/release traffic is
//    forwarded to the Oracle, with liveness of the releasing owner sampled
//    AT EVENT TIME via Runtime::txn_live (a commit handler that
//    double-releases still looks live; a stale prune of a settled owner
//    does not).
//
// The controller is single-run: construct, install, run the engine, then
// harvest capture()/executed().
#pragma once

#include <cstddef>
#include <vector>

#include "mc/oracle.h"
#include "mc/schedule.h"
#include "sim/engine.h"
#include "tm/runtime.h"
#include "tm/sem_events.h"

namespace mc {

/// Everything the explorer needs to know about one executed run.
struct RunCapture {
  /// One scheduling quantum: the chosen cpu plus the memory lines and
  /// collection tables it touched before the next decision.
  struct Quantum {
    int cpu = -1;
    std::vector<sim::LineAddr> lines;
    std::vector<const void*> tables;
    /// A TOP-LEVEL transaction finished (committed or aborted) here.  Such
    /// boundaries reorder observably even with an empty memory footprint —
    /// the serialization windows the oracle checks are delimited by them —
    /// so the explorer treats them as dependent with everything.
    bool boundary = false;
  };
  /// One branching decision (>= 2 runnable cpus).
  struct Branch {
    std::size_t ord = 0;      ///< index within the executed Schedule
    std::size_t quantum = 0;  ///< index of the quantum this pick started
    std::vector<int> runnable;
    int chosen_index = 0;
  };
  std::vector<Quantum> quanta;
  std::vector<Branch> branches;
  Schedule executed;      ///< one choice per branching decision
  bool diverged = false;  ///< forced prefix referenced a vanished branch
};

class Controller final : public sim::SchedulerHook,
                         public atomos::Runtime::McObserver,
                         public atomos::sem::Observer {
 public:
  Controller(sim::Engine& eng, atomos::Runtime& rt, Oracle* oracle, Schedule forced)
      : eng_(eng), rt_(rt), oracle_(oracle), forced_(std::move(forced)) {}

  // ---- sim::SchedulerHook ----
  int pick(const std::vector<int>& runnable) override;

  // ---- atomos::Runtime::McObserver ----
  void on_access(int cpu, sim::LineAddr line, bool is_write) override;
  void on_txn_sets(int cpu, bool committed, bool open,
                   const std::vector<sim::LineAddr>& reads,
                   const std::vector<sim::LineAddr>& writes) override;

  // ---- atomos::sem::Observer ----
  void on_lock_acquired(const atomos::TxnId& owner, const void* table) override;
  void on_lock_released(const atomos::TxnId& owner, const void* table) override;
  void on_locks_released_all(const atomos::TxnId& owner, const void* table) override;
  void on_lock_release_noop(const atomos::TxnId& owner, const void* table) override;
  void on_lock_pruned(const atomos::TxnId& owner, const void* table) override;
  void on_compensation_run(const void* site) override;

  const RunCapture& capture() const { return capture_; }
  const Schedule& executed() const { return capture_.executed; }
  bool diverged() const { return capture_.diverged; }

 private:
  void note_table(const void* table);

  sim::Engine& eng_;
  atomos::Runtime& rt_;
  Oracle* oracle_;
  Schedule forced_;
  RunCapture capture_;
};

}  // namespace mc
