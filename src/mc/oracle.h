// txmc serializability oracle.
//
// Records each transaction attempt's SEMANTIC operations — collection ops
// with their observed results, open-nested eager effects, semantic-lock
// acquire/release traffic — and, after the run, checks the committed
// history against the collections' sequential specifications:
//
//  * map tables: committed writers are replayed strictly in commit (flush)
//    order against a model map; every observation a writer made (old values
//    returned by put/remove, get results, size/emptiness, sorted-map
//    endpoints) must match the model at its serialization point.  Committed
//    READ-ONLY transactions commit token-free and may legally serialize
//    anywhere between their first observation and their flush, so they pass
//    if ANY single point in that window explains every observation.
//  * queue tables: the paper's queue deliberately relaxes isolation
//    (take/poll remove eagerly; order is not preserved), so commit-order
//    replay would reject legal histories.  Instead the oracle keeps a
//    timestamped BAG model — committed puts appear at their flush, removals
//    at their operation, aborted removals restored at the abort — and
//    checks conservation (final bag == actual final queue), membership of
//    every polled element, and that every committed emptiness observation
//    has a moment in its [observation, flush] window where the bag was
//    truly empty.
//  * semantic locks: a per-owner balance ledger; leftover balances after
//    the run are leaks, and a release that found nothing to release while
//    its owner is still live is a double release.
//
// Violations carry an anomaly class (mirrors the seeded-mutant corpus) and
// a human-readable detail line.  The oracle itself is schedule-agnostic:
// the explorer attaches the replay string of the run that produced them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "tm/runtime.h"

namespace mc {

enum class Anomaly {
  kNotSerializable = 0,    ///< no serialization point explains the observations
  kLostUpdate,             ///< a RMW overwrote a concurrent committed update it never saw
  kLostSemanticLock,       ///< a protected observation went stale without a violation
  kNonCommutingOpen,       ///< an open-nested eager effect leaked pre-commit state
  kCompensationInversion,  ///< an abort's compensation did not restore the collection
  kFinalStateDivergence,   ///< final collection state differs from the committed history
  kLockLeak,               ///< a finished transaction still holds semantic locks
  kDoubleRelease,          ///< a live transaction released a lock it no longer held
};

const char* anomaly_name(Anomaly a);

struct Violation {
  Anomaly kind;
  std::string detail;
};

/// One recorded semantic operation.  Keys and values are `long` — the whole
/// litmus corpus works over Map<long,long> / Queue<long>, which keeps the
/// oracle concrete without templates.
struct Op {
  enum class Kind {
    kGet,       // key; observed (present/value)
    kPut,       // key, value; observed = old value unless blind
    kRemove,    // key; observed = old value unless blind
    kSize,      // observed = size
    kIsEmpty,   // observed = 0/1
    kFirstKey,  // sorted map; observed (present/value = key)
    kLastKey,   // sorted map; observed
    kQPut,      // value (element)
    kQPollHit,  // observed = element removed
    kQPollMiss, // emptiness observation (takes the empty lock)
    kQTakeHit,  // observed = element removed (no emptiness semantics on miss)
    kQPeekHit,  // observed = element seen, not removed
    kQPeekMiss, // emptiness observation
  };
  Kind kind;
  const void* table = nullptr;
  long key = 0;
  long value = 0;                // put value / queue element
  bool observed_present = false; // get/put/remove/peek/first/last observation
  long observed = 0;             // observed value / size / emptiness(0,1)
  bool blind = false;            // blind put/remove: no old-value observation
  bool open_child = false;       // applied eagerly through an open-nested child
  bool cancelled = false;        // queue put consumed by the same txn's poll
  std::uint64_t event = 0;       // global order stamp (assigned by record())
};

/// One transaction attempt (committed or aborted), in program order.
struct TxnRec {
  int cpu = -1;
  atomos::TxnId id{};
  bool committed = false;
  std::uint64_t begin_event = 0;
  std::uint64_t end_event = 0;  // commit-flush or abort stamp
  std::vector<Op> ops;
};

class Oracle {
 public:
  // ---- table registry + initial state (litmus setup) ----
  void register_map(const void* table, std::string name,
                    std::vector<std::pair<long, long>> initial, bool sorted = false);
  void register_queue(const void* table, std::string name, std::vector<long> initial);
  /// Names an auxiliary structure (a semantic-lock table) for reporting;
  /// it takes part in the lock ledger but not in history replay.
  void register_name(const void* table, std::string name);

  // ---- attempt lifecycle (called from worker fibers) ----
  void attempt_begin(int cpu, const atomos::TxnId& id);
  /// Records `op` for the cpu's pending attempt, stamping op.event.
  /// Returns the op's index within the attempt (for cancel()).
  std::size_t record(int cpu, Op op);
  /// Draws a fresh event stamp.  Wrappers pre-stamp observations whose
  /// semantic lock is only taken AFTER the observation itself (queue
  /// emptiness): the real observation happened before the stamp that
  /// record() would assign, and the window check must not start late.
  std::uint64_t stamp();
  void cancel(int cpu, std::size_t op_index);
  void flush_commit(int cpu);
  void flush_abort(int cpu);

  // ---- semantic-lock events (forwarded by the controller) ----
  void lock_acquired(const atomos::TxnId& owner, const void* table);
  void lock_released(const atomos::TxnId& owner, const void* table);
  /// Release that removed owner's every lock in `table` at once.
  void locks_released_all(const atomos::TxnId& owner, const void* table);
  /// Release that found nothing; `owner_live` decides prune vs double release.
  void lock_release_noop(const atomos::TxnId& owner, const void* table, bool owner_live);

  // ---- final states (litmus finish, outside the run) ----
  void set_final_map(const void* table, std::vector<std::pair<long, long>> entries);
  void set_final_queue(const void* table, std::vector<long> elems);

  /// Checks the recorded history.  Stable: may be called repeatedly.
  std::vector<Violation> check() const;

  const std::vector<TxnRec>& history() const { return history_; }
  std::string table_name(const void* table) const;

 private:
  struct TableInfo {
    enum class Kind { kMap, kSortedMap, kQueue } kind;
    std::string name;
    std::vector<std::pair<long, long>> initial_map;
    std::vector<long> initial_queue;
    std::vector<std::pair<long, long>> final_map;
    std::vector<long> final_queue;
    bool final_set = false;
  };

  struct Pending {
    bool active = false;
    TxnRec rec;
  };

  std::uint64_t next_event() { return ++event_counter_; }

  void check_maps(std::vector<Violation>& out) const;
  void check_queues(std::vector<Violation>& out) const;
  void check_locks(std::vector<Violation>& out) const;

  std::uint64_t event_counter_ = 0;
  std::unordered_map<const void*, TableInfo> tables_;
  std::unordered_map<const void*, std::string> names_;  // auxiliary structures
  std::vector<Pending> pending_;  // indexed by cpu (grown on demand)
  std::vector<TxnRec> history_;   // finished attempts, in finish order
  // Committed recs' positions in history_, one slot per cpu: flush_commit
  // fills it, a subsequent flush_abort of the SAME attempt (commit handler
  // escalated into an abort after the oracle's flush already ran) demotes
  // the rec to aborted in place.
  std::vector<std::optional<std::size_t>> last_commit_;
  // Lock ledger: packed owner id -> (table -> balance).
  std::unordered_map<std::uint64_t, std::unordered_map<const void*, long>> lock_balance_;
  std::vector<Violation> eager_violations_;  // double releases, found mid-run
};

}  // namespace mc
