#include "mc/oracle.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace mc {
namespace {

std::uint64_t pack(const atomos::TxnId& id) {
  return (id.incarnation << 6) | static_cast<std::uint64_t>(id.cpu & 63);
}

std::string id_str(std::uint64_t packed) {
  return "txn(cpu=" + std::to_string(packed & 63) +
         ", inc=" + std::to_string(packed >> 6) + ")";
}

std::string id_str(const atomos::TxnId& id) { return id_str(pack(id)); }

bool is_map_mutation(const Op& op) {
  return !op.cancelled && (op.kind == Op::Kind::kPut || op.kind == Op::Kind::kRemove);
}

bool is_map_op(const Op& op) {
  switch (op.kind) {
    case Op::Kind::kGet:
    case Op::Kind::kPut:
    case Op::Kind::kRemove:
    case Op::Kind::kSize:
    case Op::Kind::kIsEmpty:
    case Op::Kind::kFirstKey:
    case Op::Kind::kLastKey:
      return !op.cancelled;
    default:
      return false;
  }
}

const char* op_name(Op::Kind k) {
  switch (k) {
    case Op::Kind::kGet: return "get";
    case Op::Kind::kPut: return "put";
    case Op::Kind::kRemove: return "remove";
    case Op::Kind::kSize: return "size";
    case Op::Kind::kIsEmpty: return "isEmpty";
    case Op::Kind::kFirstKey: return "firstKey";
    case Op::Kind::kLastKey: return "lastKey";
    case Op::Kind::kQPut: return "queue.put";
    case Op::Kind::kQPollHit: return "queue.poll";
    case Op::Kind::kQPollMiss: return "queue.poll(empty)";
    case Op::Kind::kQTakeHit: return "queue.take";
    case Op::Kind::kQPeekHit: return "queue.peek";
    case Op::Kind::kQPeekMiss: return "queue.peek(empty)";
  }
  return "?";
}

using MapState = std::map<long, long>;  // ordered: first/last keys are cheap

std::string obs_str(bool present, long v) {
  return present ? std::to_string(v) : std::string("<absent>");
}

/// Validates one map op against `m`, applying mutations.  Returns a
/// non-empty description on mismatch.
std::string validate_map_op(MapState& m, const Op& op) {
  auto expect = [&](bool present, long value, bool check_value) -> std::string {
    const bool ok = (op.observed_present == present) &&
                    (!check_value || !present || op.observed == value);
    if (ok) return {};
    return std::string(op_name(op.kind)) + "(" + std::to_string(op.key) +
           ") observed " + obs_str(op.observed_present, op.observed) +
           " but the serialized history has " + obs_str(present, value);
  };
  switch (op.kind) {
    case Op::Kind::kGet: {
      auto it = m.find(op.key);
      return expect(it != m.end(), it != m.end() ? it->second : 0, true);
    }
    case Op::Kind::kPut: {
      std::string err;
      if (!op.blind) {
        auto it = m.find(op.key);
        err = expect(it != m.end(), it != m.end() ? it->second : 0, true);
      }
      m[op.key] = op.value;
      return err;
    }
    case Op::Kind::kRemove: {
      std::string err;
      auto it = m.find(op.key);
      if (!op.blind) err = expect(it != m.end(), it != m.end() ? it->second : 0, true);
      if (it != m.end()) m.erase(it);
      return err;
    }
    case Op::Kind::kSize:
      if (static_cast<long>(m.size()) != op.observed) {
        return "size() observed " + std::to_string(op.observed) +
               " but the serialized history has " + std::to_string(m.size());
      }
      return {};
    case Op::Kind::kIsEmpty:
      if ((op.observed != 0) != m.empty()) {
        return std::string("isEmpty() observed ") + (op.observed != 0 ? "true" : "false") +
               " but the serialized history disagrees";
      }
      return {};
    case Op::Kind::kFirstKey: {
      const bool present = !m.empty();
      return expect(present, present ? m.begin()->first : 0, true);
    }
    case Op::Kind::kLastKey: {
      const bool present = !m.empty();
      return expect(present, present ? m.rbegin()->first : 0, true);
    }
    default:
      return {};
  }
}

}  // namespace

const char* anomaly_name(Anomaly a) {
  switch (a) {
    case Anomaly::kNotSerializable: return "not-serializable";
    case Anomaly::kLostUpdate: return "lost-update";
    case Anomaly::kLostSemanticLock: return "lost-semantic-lock";
    case Anomaly::kNonCommutingOpen: return "non-commuting-open-nesting";
    case Anomaly::kCompensationInversion: return "compensation-inversion";
    case Anomaly::kFinalStateDivergence: return "final-state-divergence";
    case Anomaly::kLockLeak: return "lock-leak";
    case Anomaly::kDoubleRelease: return "double-release";
  }
  return "?";
}

// ---- registry / lifecycle ----

void Oracle::register_map(const void* table, std::string name,
                          std::vector<std::pair<long, long>> initial, bool sorted) {
  TableInfo info;
  info.kind = sorted ? TableInfo::Kind::kSortedMap : TableInfo::Kind::kMap;
  info.name = std::move(name);
  info.initial_map = std::move(initial);
  tables_[table] = std::move(info);
}

void Oracle::register_queue(const void* table, std::string name, std::vector<long> initial) {
  TableInfo info;
  info.kind = TableInfo::Kind::kQueue;
  info.name = std::move(name);
  info.initial_queue = std::move(initial);
  tables_[table] = std::move(info);
}

void Oracle::register_name(const void* table, std::string name) {
  names_[table] = std::move(name);
}

std::string Oracle::table_name(const void* table) const {
  auto it = tables_.find(table);
  if (it != tables_.end()) return it->second.name;
  auto jt = names_.find(table);
  if (jt != names_.end()) return jt->second;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%p", table);
  return buf;
}

void Oracle::attempt_begin(int cpu, const atomos::TxnId& id) {
  const auto c = static_cast<std::size_t>(cpu);
  if (pending_.size() <= c) pending_.resize(c + 1);
  if (last_commit_.size() <= c) last_commit_.resize(c + 1);
  last_commit_[c].reset();  // previous attempt's outcome is final now
  Pending& p = pending_[c];
  if (p.active) {  // defensive: an attempt that never flushed counts aborted
    p.rec.committed = false;
    p.rec.end_event = next_event();
    history_.push_back(std::move(p.rec));
  }
  p.active = true;
  p.rec = TxnRec{};
  p.rec.cpu = cpu;
  p.rec.id = id;
  p.rec.begin_event = next_event();
}

std::size_t Oracle::record(int cpu, Op op) {
  const auto c = static_cast<std::size_t>(cpu);
  if (pending_.size() <= c) pending_.resize(c + 1);
  Pending& p = pending_[c];
  if (!p.active) {  // op outside a tracked attempt: track it so check() sees it
    p.active = true;
    p.rec = TxnRec{};
    p.rec.cpu = cpu;
    p.rec.begin_event = next_event();
  }
  if (op.event == 0) op.event = next_event();
  p.rec.ops.push_back(op);
  return p.rec.ops.size() - 1;
}

std::uint64_t Oracle::stamp() { return next_event(); }

void Oracle::cancel(int cpu, std::size_t op_index) {
  const auto c = static_cast<std::size_t>(cpu);
  if (c >= pending_.size() || !pending_[c].active) return;
  auto& ops = pending_[c].rec.ops;
  if (op_index < ops.size()) ops[op_index].cancelled = true;
}

void Oracle::flush_commit(int cpu) {
  const auto c = static_cast<std::size_t>(cpu);
  if (c >= pending_.size() || !pending_[c].active) return;
  if (last_commit_.size() <= c) last_commit_.resize(c + 1);
  Pending& p = pending_[c];
  p.rec.committed = true;
  p.rec.end_event = next_event();
  history_.push_back(std::move(p.rec));
  last_commit_[c] = history_.size() - 1;
  p.active = false;
  p.rec = TxnRec{};
}

void Oracle::flush_abort(int cpu) {
  const auto c = static_cast<std::size_t>(cpu);
  if (c < pending_.size() && pending_[c].active) {
    Pending& p = pending_[c];
    p.rec.committed = false;
    p.rec.end_event = next_event();
    history_.push_back(std::move(p.rec));
    p.active = false;
    p.rec = TxnRec{};
    return;
  }
  // The oracle's commit flush already ran, then a later commit handler
  // escalated into an abort: demote the rec in place.
  if (c < last_commit_.size() && last_commit_[c].has_value()) {
    TxnRec& rec = history_[*last_commit_[c]];
    rec.committed = false;
    rec.end_event = next_event();
    last_commit_[c].reset();
  }
}

// ---- lock ledger ----

void Oracle::lock_acquired(const atomos::TxnId& owner, const void* table) {
  if (owner.cpu < 0) return;
  lock_balance_[pack(owner)][table]++;
}

void Oracle::lock_released(const atomos::TxnId& owner, const void* table) {
  auto it = lock_balance_.find(pack(owner));
  if (it == lock_balance_.end()) return;
  auto jt = it->second.find(table);
  if (jt == it->second.end()) return;
  if (--jt->second <= 0) it->second.erase(jt);
  if (it->second.empty()) lock_balance_.erase(it);
}

void Oracle::locks_released_all(const atomos::TxnId& owner, const void* table) {
  auto it = lock_balance_.find(pack(owner));
  if (it == lock_balance_.end()) return;
  it->second.erase(table);
  if (it->second.empty()) lock_balance_.erase(it);
}

void Oracle::lock_release_noop(const atomos::TxnId& owner, const void* table,
                               bool owner_live) {
  if (owner.cpu < 0 || !owner_live) return;  // stale prune of a settled owner
  eager_violations_.push_back(Violation{
      Anomaly::kDoubleRelease,
      id_str(owner) + " released a semantic lock it does not hold in " +
          table_name(table) + " while still live (double release)"});
}

void Oracle::set_final_map(const void* table, std::vector<std::pair<long, long>> entries) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return;
  it->second.final_map = std::move(entries);
  it->second.final_set = true;
}

void Oracle::set_final_queue(const void* table, std::vector<long> elems) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return;
  it->second.final_queue = std::move(elems);
  it->second.final_set = true;
}

// ---- checking: maps ----

namespace {

struct CommittedView {
  std::vector<const TxnRec*> recs;              // committed, in flush order
  std::vector<const TxnRec*> writers;           // subset with map mutations
  std::vector<std::uint64_t> writer_ends;       // flush stamps of writers
};

bool rec_mutates(const TxnRec& r, const void* table, long key, bool any_key) {
  for (const Op& op : r.ops) {
    if (!is_map_mutation(op) || op.table != table) continue;
    if (any_key || op.key == key) return true;
  }
  return false;
}

}  // namespace

void Oracle::check_maps(std::vector<Violation>& out) const {
  // Committed recs in flush order (history order restricted to committed).
  CommittedView view;
  for (const TxnRec& r : history_) {
    if (r.committed) view.recs.push_back(&r);
  }
  for (const TxnRec* r : view.recs) {
    bool mutates = false;
    for (const Op& op : r->ops) {
      if (is_map_mutation(op) && tables_.count(op.table) != 0) mutates = true;
    }
    if (mutates) {
      view.writers.push_back(r);
      view.writer_ends.push_back(r->end_event);
    }
  }

  // Model per map table; snapshots after each writer for the read-only pass.
  std::unordered_map<const void*, MapState> model;
  for (const auto& [table, info] : tables_) {
    if (info.kind == TableInfo::Kind::kQueue) continue;
    MapState m;
    for (const auto& [k, v] : info.initial_map) m[k] = v;
    model[table] = std::move(m);
  }
  std::vector<std::unordered_map<const void*, MapState>> snapshots;
  snapshots.push_back(model);

  auto classify_mismatch = [&](const TxnRec& rec, const Op& op,
                               std::uint64_t window_lo) -> Anomaly {
    // Dirty read: the stale observation matches an open-nested EAGER effect
    // of a transaction that does not serialize before this one.
    for (const TxnRec& r : history_) {
      if (&r == &rec) continue;
      const bool later_or_aborted = !r.committed || r.end_event > rec.end_event;
      if (!later_or_aborted) continue;
      for (const Op& q : r.ops) {
        if (!q.open_child || q.table != op.table || q.key != op.key) continue;
        if (q.kind == Op::Kind::kPut && op.observed_present && q.value == op.observed)
          return Anomaly::kNonCommutingOpen;
        if (q.kind == Op::Kind::kRemove && !op.observed_present)
          return Anomaly::kNonCommutingOpen;
      }
    }
    // A committed mutation that slipped into the observation window.
    const bool key_specific = op.kind == Op::Kind::kGet || op.kind == Op::Kind::kPut ||
                              op.kind == Op::Kind::kRemove;
    bool concurrent = false;
    for (const TxnRec* q : view.recs) {
      if (q == &rec) continue;
      if (q->end_event <= window_lo || q->end_event >= rec.end_event) continue;
      if (rec_mutates(*q, op.table, op.key, /*any_key=*/!key_specific)) {
        concurrent = true;
        break;
      }
    }
    if (concurrent) {
      const bool own_write = key_specific && rec_mutates(rec, op.table, op.key, false);
      return own_write ? Anomaly::kLostUpdate : Anomaly::kLostSemanticLock;
    }
    return Anomaly::kNotSerializable;
  };

  auto report = [&](const TxnRec& rec, const Op& op, Anomaly kind, const std::string& err) {
    out.push_back(Violation{
        kind, id_str(rec.id) + " on " + table_name(op.table) + ": " + err +
                  " [" + anomaly_name(kind) + "]"});
  };

  // Pass 1: writers replay strictly at their commit position.
  std::vector<const TxnRec*> read_only;
  for (const TxnRec* rec : view.recs) {
    bool is_writer = false;
    for (const Op& op : rec->ops) {
      if (is_map_mutation(op) && model.count(op.table) != 0) is_writer = true;
    }
    if (!is_writer) {
      for (const Op& op : rec->ops) {
        if (is_map_op(op) && model.count(op.table) != 0) {
          read_only.push_back(rec);
          break;
        }
      }
      continue;
    }
    for (const Op& op : rec->ops) {
      if (!is_map_op(op)) continue;
      auto mit = model.find(op.table);
      if (mit == model.end()) continue;
      const std::string err = validate_map_op(mit->second, op);
      if (!err.empty()) report(*rec, op, classify_mismatch(*rec, op, op.event), err);
    }
    snapshots.push_back(model);
  }

  // Pass 2: committed read-only transactions flush token-free and may
  // serialize at any writer boundary inside their observation window.
  for (const TxnRec* rec : read_only) {
    std::uint64_t first_obs = rec->end_event;
    for (const Op& op : rec->ops) {
      if (is_map_op(op) && op.event < first_obs) first_obs = op.event;
    }
    std::size_t g_lo = 0, g_hi = 0;
    for (std::size_t w = 0; w < view.writer_ends.size(); ++w) {
      if (view.writer_ends[w] < first_obs) g_lo = w + 1;
      if (view.writer_ends[w] < rec->end_event) g_hi = w + 1;
    }
    bool ok = false;
    for (std::size_t g = g_lo; g <= g_hi && !ok; ++g) {
      bool all = true;
      for (const Op& op : rec->ops) {
        if (!is_map_op(op)) continue;
        auto mit = snapshots[g].find(op.table);
        if (mit == snapshots[g].end()) continue;
        MapState scratch = mit->second;  // reads only; copy is cheap here
        if (!validate_map_op(scratch, op).empty()) {
          all = false;
          break;
        }
      }
      ok = all;
    }
    if (ok) continue;
    // Report against the latest candidate point, with the window in mind.
    for (const Op& op : rec->ops) {
      if (!is_map_op(op)) continue;
      auto mit = snapshots[g_hi].find(op.table);
      if (mit == snapshots[g_hi].end()) continue;
      MapState scratch = mit->second;
      const std::string err = validate_map_op(scratch, op);
      if (!err.empty()) {
        report(*rec, op, classify_mismatch(*rec, op, first_obs),
               err + " (no single serialization point in its window works)");
        break;
      }
    }
  }

  // Final-state conservation per map table.
  for (const auto& [table, info] : tables_) {
    if (info.kind == TableInfo::Kind::kQueue || !info.final_set) continue;
    const MapState& m = model[table];
    MapState actual;
    for (const auto& [k, v] : info.final_map) actual[k] = v;
    if (m == actual) continue;
    bool aborted_touched = false;
    for (const TxnRec& r : history_) {
      if (!r.committed && rec_mutates(r, table, 0, /*any_key=*/true)) aborted_touched = true;
    }
    const Anomaly kind = aborted_touched ? Anomaly::kCompensationInversion
                                         : Anomaly::kFinalStateDivergence;
    out.push_back(Violation{
        kind, info.name + ": final state diverges from the committed history (" +
                  std::to_string(actual.size()) + " actual vs " +
                  std::to_string(m.size()) + " modeled entries) [" +
                  std::string(anomaly_name(kind)) + "]"});
  }
}

// ---- checking: queues ----

void Oracle::check_queues(std::vector<Violation>& out) const {
  for (const auto& [table, info] : tables_) {
    if (info.kind != TableInfo::Kind::kQueue) continue;

    struct Ev {
      std::uint64_t stamp;
      int delta;
      long value;
    };
    std::vector<Ev> events;
    std::unordered_map<long, long> committed_put_stamp;  // value -> flush stamp
    bool aborted_removals = false;
    for (const TxnRec& r : history_) {
      for (const Op& op : r.ops) {
        if (op.table != table || op.cancelled) continue;
        switch (op.kind) {
          case Op::Kind::kQPut:
            if (r.committed) {
              events.push_back(Ev{r.end_event, +1, op.value});
              committed_put_stamp[op.value] = static_cast<long>(r.end_event);
            }
            break;
          case Op::Kind::kQPollHit:
          case Op::Kind::kQTakeHit:
            events.push_back(Ev{op.event, -1, op.observed});
            if (!r.committed) {
              // Compensation restores the element at the abort.
              events.push_back(Ev{r.end_event, +1, op.observed});
              aborted_removals = true;
            }
            break;
          default:
            break;
        }
      }
    }
    std::sort(events.begin(), events.end(),
              [](const Ev& a, const Ev& b) { return a.stamp < b.stamp; });

    // Bag contents strictly before / at a stamp.
    auto bag_at = [&](std::uint64_t t, bool inclusive) {
      std::unordered_map<long, int> bag;
      for (const long v : info.initial_queue) bag[v]++;
      for (const Ev& e : events) {
        if (e.stamp > t || (!inclusive && e.stamp == t)) continue;
        bag[e.value] += e.delta;
      }
      return bag;
    };
    auto bag_empty = [](const std::unordered_map<long, int>& bag) {
      for (const auto& [v, n] : bag) {
        if (n > 0) return false;
      }
      return true;
    };

    for (const TxnRec& r : history_) {
      for (const Op& op : r.ops) {
        if (op.table != table || op.cancelled) continue;
        const bool hit = op.kind == Op::Kind::kQPollHit ||
                         op.kind == Op::Kind::kQTakeHit ||
                         op.kind == Op::Kind::kQPeekHit;
        if (hit && r.committed) {
          // The element must exist: initial, or a put that committed first.
          const bool from_initial =
              std::find(info.initial_queue.begin(), info.initial_queue.end(),
                        op.observed) != info.initial_queue.end();
          auto pit = committed_put_stamp.find(op.observed);
          const bool from_commit =
              pit != committed_put_stamp.end() &&
              static_cast<std::uint64_t>(pit->second) < op.event;
          if (!from_initial && !from_commit) {
            out.push_back(Violation{
                Anomaly::kNotSerializable,
                id_str(r.id) + " on " + info.name + ": " + op_name(op.kind) +
                    " returned element " + std::to_string(op.observed) +
                    " that no committed put explains [not-serializable]"});
          }
        }
        const bool miss =
            op.kind == Op::Kind::kQPollMiss || op.kind == Op::Kind::kQPeekMiss;
        if (miss && r.committed) {
          // Some moment in [observation, flush] must have an empty bag.
          bool ever_empty = bag_empty(bag_at(op.event, /*inclusive=*/true));
          for (const Ev& e : events) {
            if (ever_empty) break;
            if (e.stamp > op.event && e.stamp <= r.end_event) {
              ever_empty = bag_empty(bag_at(e.stamp, /*inclusive=*/true));
            }
          }
          if (!ever_empty) {
            out.push_back(Violation{
                Anomaly::kLostSemanticLock,
                id_str(r.id) + " on " + info.name + ": committed an emptiness " +
                    "observation although the queue was never empty in its " +
                    "window — the empty lock failed [lost-semantic-lock]"});
          }
        }
      }
    }

    // Conservation: the final bag must match the actual final queue.
    if (info.final_set) {
      auto fin = bag_at(~std::uint64_t{0}, true);
      std::unordered_map<long, int> actual;
      for (const long v : info.final_queue) actual[v]++;
      bool same = true;
      for (const auto& [v, n] : fin) {
        if (n != 0 && actual[v] != n) same = false;
      }
      for (const auto& [v, n] : actual) {
        auto it = fin.find(v);
        if (n != 0 && (it == fin.end() || it->second != n)) same = false;
      }
      if (!same) {
        const Anomaly kind = aborted_removals ? Anomaly::kCompensationInversion
                                              : Anomaly::kFinalStateDivergence;
        out.push_back(Violation{
            kind, info.name + ": final queue contents diverge from the committed "
                      "history (elements lost or duplicated" +
                      std::string(aborted_removals ? "; aborted removals were in play"
                                                   : "") +
                      ") [" + anomaly_name(kind) + "]"});
      }
    }
  }
}

// ---- checking: locks ----

void Oracle::check_locks(std::vector<Violation>& out) const {
  for (const auto& [owner, tables] : lock_balance_) {
    long total = 0;
    const void* example = nullptr;
    for (const auto& [table, n] : tables) {
      if (n > 0) {
        total += n;
        if (example == nullptr) example = table;
      }
    }
    if (total > 0) {
      out.push_back(Violation{
          Anomaly::kLockLeak,
          id_str(owner) + " finished still holding " + std::to_string(total) +
              " semantic lock(s), e.g. in " + table_name(example) + " [lock-leak]"});
    }
  }
}

std::vector<Violation> Oracle::check() const {
  std::vector<Violation> out = eager_violations_;
  // Attempts that never flushed (defensive) are visible in history_ already;
  // pending ones are ignored — a litmus run always drains its workers.
  check_maps(out);
  check_queues(out);
  check_locks(out);
  return out;
}

}  // namespace mc
