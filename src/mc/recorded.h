// Recording facades over the transactional collections.
//
// Litmus program bodies talk to these instead of the raw collections; every
// operation is executed against the real collection and then recorded in
// the Oracle with its observed result.  The wrappers are deliberately NOT
// jstd interfaces — they are test instruments, concrete over long keys and
// values (the whole corpus uses globally unique long elements, which is
// what makes own-put detection in the queue wrapper exact).
//
// Stamp discipline (who observes when):
//  * map operations take their semantic lock INSIDE the same open-nested
//    child as the observation, and control returns to the wrapper with no
//    intervening scheduling point — recording after the call is exact;
//  * queue EMPTINESS observations take the empty lock in a SECOND open
//    child after the miss was observed, so the wrapper draws a stamp
//    BEFORE calling into the queue: the serialization window must start at
//    (or before) the real observation, never after a producer that slipped
//    into the gap.
#pragma once

#include <optional>

#include "core/txmap.h"
#include "core/txqueue.h"
#include "core/txsortedmap.h"
#include "mc/oracle.h"
#include "tm/runtime.h"

namespace mc {

class RecordedMap {
 public:
  /// `open_eager_puts` marks recorded puts as open-nested eager effects —
  /// set by litmus programs that instantiate the EagerOpenMap mutant, so
  /// the oracle can attribute dirty reads to open-nesting misuse.
  RecordedMap(Oracle* o, tcc::TransactionalMap<long, long>* m,
              bool open_eager_puts = false)
      : o_(o), m_(m), table_(m), plain_(m), open_eager_(open_eager_puts) {}

  /// For maps that are not the default TransactionalMap instantiation
  /// (e.g. the sorted wrapper): ops dispatch through the jstd interface and
  /// are recorded against `table` (no blind variants available).
  RecordedMap(Oracle* o, jstd::Map<long, long>* m, const void* table)
      : o_(o), m_(m), table_(table), plain_(nullptr), open_eager_(false) {}

  std::optional<long> get(long key) {
    auto got = m_->get(key);
    Op op;
    op.kind = Op::Kind::kGet;
    op.table = table_;
    op.key = key;
    op.observed_present = got.has_value();
    op.observed = got.value_or(0);
    o_->record(cpu(), op);
    return got;
  }

  std::optional<long> put(long key, long value) {
    auto old = m_->put(key, value);
    Op op;
    op.kind = Op::Kind::kPut;
    op.table = table_;
    op.key = key;
    op.value = value;
    op.observed_present = old.has_value();
    op.observed = old.value_or(0);
    op.open_child = open_eager_;
    o_->record(cpu(), op);
    return old;
  }

  std::optional<long> remove(long key) {
    auto old = m_->remove(key);
    Op op;
    op.kind = Op::Kind::kRemove;
    op.table = table_;
    op.key = key;
    op.observed_present = old.has_value();
    op.observed = old.value_or(0);
    op.open_child = open_eager_;
    o_->record(cpu(), op);
    return old;
  }

  void put_blind(long key, long value) {
    plain_->put_blind(key, value);
    Op op;
    op.kind = Op::Kind::kPut;
    op.table = table_;
    op.key = key;
    op.value = value;
    op.blind = true;
    o_->record(cpu(), op);
  }

  void remove_blind(long key) {
    plain_->remove_blind(key);
    Op op;
    op.kind = Op::Kind::kRemove;
    op.table = table_;
    op.key = key;
    op.blind = true;
    o_->record(cpu(), op);
  }

  long size() {
    const long n = m_->size();
    Op op;
    op.kind = Op::Kind::kSize;
    op.table = table_;
    op.observed = n;
    o_->record(cpu(), op);
    return n;
  }

  bool is_empty() {
    const bool e = m_->is_empty();
    Op op;
    op.kind = Op::Kind::kIsEmpty;
    op.table = table_;
    op.observed = e ? 1 : 0;
    o_->record(cpu(), op);
    return e;
  }

  const void* table() const { return table_; }

 private:
  static int cpu() { return atomos::self_id().cpu; }

  Oracle* o_;
  jstd::Map<long, long>* m_;
  const void* table_;
  tcc::TransactionalMap<long, long>* plain_;  // blind variants only
  bool open_eager_;
};

class RecordedSortedMap {
 public:
  RecordedSortedMap(Oracle* o, tcc::TransactionalSortedMap<long, long>* m)
      : o_(o), m_(m), base_(o, static_cast<jstd::Map<long, long>*>(m), m) {}

  std::optional<long> get(long key) { return base_.get(key); }
  std::optional<long> put(long key, long value) { return base_.put(key, value); }
  std::optional<long> remove(long key) { return base_.remove(key); }
  long size() { return base_.size(); }

  std::optional<long> first_key() {
    auto k = m_->first_key();
    Op op;
    op.kind = Op::Kind::kFirstKey;
    op.table = m_;
    op.observed_present = k.has_value();
    op.observed = k.value_or(0);
    o_->record(atomos::self_id().cpu, op);
    return k;
  }

  std::optional<long> last_key() {
    auto k = m_->last_key();
    Op op;
    op.kind = Op::Kind::kLastKey;
    op.table = m_;
    op.observed_present = k.has_value();
    op.observed = k.value_or(0);
    o_->record(atomos::self_id().cpu, op);
    return k;
  }

  const void* table() const { return m_; }

 private:
  Oracle* o_;
  tcc::TransactionalSortedMap<long, long>* m_;
  RecordedMap base_;
};

class RecordedQueue {
 public:
  RecordedQueue(Oracle* o, tcc::TransactionalQueue<long>* q) : o_(o), q_(q) {}

  void put(long item) {
    q_->put(item);
    Op op;
    op.kind = Op::Kind::kQPut;
    op.table = q_;
    op.value = item;
    Attempt& a = attempt();
    a.puts.push_back(PendingPut{item, o_->record(a.id.cpu, op)});
  }

  std::optional<long> poll() {
    const std::uint64_t pre = o_->stamp();  // before the real observation
    auto got = q_->poll();
    if (got.has_value()) {
      if (!consume_own_put(*got)) {
        Op op;
        op.kind = Op::Kind::kQPollHit;
        op.table = q_;
        op.observed = *got;
        o_->record(attempt().id.cpu, op);
      }
      return got;
    }
    Op op;
    op.kind = Op::Kind::kQPollMiss;
    op.table = q_;
    op.event = pre;
    o_->record(attempt().id.cpu, op);
    return std::nullopt;
  }

  std::optional<long> take() {
    auto got = q_->take();
    if (got.has_value() && !consume_own_put(*got)) {
      Op op;
      op.kind = Op::Kind::kQTakeHit;
      op.table = q_;
      op.observed = *got;
      o_->record(attempt().id.cpu, op);
    }
    return got;  // a miss carries no emptiness semantics (Table 7)
  }

  std::optional<long> peek() {
    const std::uint64_t pre = o_->stamp();
    auto got = q_->peek();
    if (got.has_value()) {
      if (!is_own_put(*got)) {  // peeking an own buffered put: pure RYW
        Op op;
        op.kind = Op::Kind::kQPeekHit;
        op.table = q_;
        op.observed = *got;
        o_->record(attempt().id.cpu, op);
      }
      return got;
    }
    Op op;
    op.kind = Op::Kind::kQPeekMiss;
    op.table = q_;
    op.event = pre;
    o_->record(attempt().id.cpu, op);
    return std::nullopt;
  }

  const void* table() const { return q_; }

 private:
  struct PendingPut {
    long value;
    std::size_t op_index;
  };
  struct Attempt {
    atomos::TxnId id{};
    std::vector<PendingPut> puts;
  };

  /// Per-cpu pending-put ledger, reset whenever a new attempt (fresh
  /// incarnation, e.g. after a violation retry) shows up on the cpu.
  Attempt& attempt() {
    const atomos::TxnId cur = atomos::self_id();
    const auto c = static_cast<std::size_t>(cur.cpu);
    if (attempts_.size() <= c) attempts_.resize(c + 1);
    Attempt& a = attempts_[c];
    if (!(a.id == cur)) {
      a.puts.clear();
      a.id = cur;
    }
    return a;
  }

  /// Elements are globally unique in the corpus, so a polled value that
  /// matches one of this attempt's pending puts can ONLY be the queue's
  /// read-your-writes path: the put never reaches the shared queue, so its
  /// recorded op is cancelled and the poll records nothing.
  bool consume_own_put(long value) {
    Attempt& a = attempt();
    for (std::size_t i = 0; i < a.puts.size(); ++i) {
      if (a.puts[i].value == value) {
        o_->cancel(a.id.cpu, a.puts[i].op_index);
        a.puts.erase(a.puts.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  bool is_own_put(long value) {
    Attempt& a = attempt();
    for (const PendingPut& p : a.puts) {
      if (p.value == value) return true;
    }
    return false;
  }

  Oracle* o_;
  tcc::TransactionalQueue<long>* q_;
  std::vector<Attempt> attempts_;
};

}  // namespace mc
