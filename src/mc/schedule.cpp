#include "mc/schedule.h"

namespace mc {
namespace {

constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuv";

int digit_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'v') return 10 + (c - 'a');
  return -1;
}

}  // namespace

std::string encode(const Schedule& s) {
  // Runnable-list indices are bounded by the engine's CPU cap (128), well
  // inside the two-digit v2 range; anything outside it is a logic error.
  bool wide = false;
  for (const int c : s.choices) {
    if (c < 0 || c >= 32 * 32) return "v1:<invalid>";
    if (c >= 32) wide = true;
  }
  if (!wide) {
    // All indices fit one base-32 digit: keep the v1 form so replay strings
    // recorded before the CPU axis widened stay byte-identical.
    std::string out = "v1:";
    out.reserve(out.size() + s.choices.size());
    for (const int c : s.choices) out.push_back(kDigits[c]);
    return out;
  }
  std::string out = "v2:";
  out.reserve(out.size() + 2 * s.choices.size());
  for (const int c : s.choices) {
    out.push_back(kDigits[c >> 5]);
    out.push_back(kDigits[c & 31]);
  }
  return out;
}

bool decode(const std::string& text, Schedule& out) {
  Schedule s;
  if (text.rfind("v1:", 0) == 0) {
    for (std::size_t i = 3; i < text.size(); ++i) {
      const int v = digit_value(text[i]);
      if (v < 0) return false;
      s.choices.push_back(v);
    }
  } else if (text.rfind("v2:", 0) == 0) {
    if ((text.size() - 3) % 2 != 0) return false;
    for (std::size_t i = 3; i < text.size(); i += 2) {
      const int hi = digit_value(text[i]);
      const int lo = digit_value(text[i + 1]);
      if (hi < 0 || lo < 0) return false;
      s.choices.push_back((hi << 5) | lo);
    }
  } else {
    return false;
  }
  out = std::move(s);
  return true;
}

}  // namespace mc
