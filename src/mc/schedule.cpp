#include "mc/schedule.h"

namespace mc {
namespace {

constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuv";

int digit_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'v') return 10 + (c - 'a');
  return -1;
}

}  // namespace

std::string encode(const Schedule& s) {
  std::string out = "v1:";
  out.reserve(out.size() + s.choices.size());
  for (const int c : s.choices) {
    if (c < 0 || c >= 32) return "v1:<invalid>";
    out.push_back(kDigits[c]);
  }
  return out;
}

bool decode(const std::string& text, Schedule& out) {
  if (text.rfind("v1:", 0) != 0) return false;
  Schedule s;
  for (std::size_t i = 3; i < text.size(); ++i) {
    const int v = digit_value(text[i]);
    if (v < 0) return false;
    s.choices.push_back(v);
  }
  out = std::move(s);
  return true;
}

}  // namespace mc
