// Seeded-mutant collection classes for the txmc litmus corpus.
//
// Each mutant subclasses a real transactional collection and breaks exactly
// ONE rule of the paper's protocol; the litmus corpus pairs each with the
// anomaly class the oracle must report for it:
//
//   LockDroppingMap   reads without the key lock        -> lost-semantic-lock
//   EagerOpenMap      applies puts eagerly, open-nested -> non-commuting-open-nesting
//   NoLockPutMap      RMW put without the key read-lock -> lost-update
//   LossyQueue        abort drops the removeBuffer      -> compensation-inversion
//   DoubleReleaseMap  commit releases key locks twice   -> double-release
//   LeakyAbortMap     abort forgets to release locks    -> lock-leak
//
// They live in the mc library (not tests/) so both the txmc CLI and the
// test suite exercise the identical corpus.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/txmap.h"
#include "core/txqueue.h"
#include "tm/runtime.h"

namespace mc {

using LongMap = tcc::TransactionalMap<long, long>;

/// get() that observes the committed map WITHOUT taking the key read-lock:
/// a later committed writer of the key no longer violates this reader.
class LockDroppingMap final : public LongMap {
 public:
  using LongMap::LongMap;

  std::optional<long> get(const long& key) const override {
    if (!transactional() || !in_txn()) return LongMap::get(key);
    LocalState& ls = local();
    ensure_registered(ls);
    if (auto hit = buffered_lookup(ls, key)) return *hit;
    return atomos::open_atomically([&] {
      tcc::charge_sem_op();
      return inner_->get(key);  // BUG: no lock_key(ls, key)
    });
  }
};

/// put() applied EAGERLY through an open-nested child: the write is visible
/// to everyone before the parent commits, and the parent's commit handler
/// (empty store buffer) violates nobody.
class EagerOpenMap final : public LongMap {
 public:
  using LongMap::LongMap;

  std::optional<long> put(const long& key, const long& value) override {
    if (!transactional() || !in_txn()) return LongMap::put(key, value);
    LocalState& ls = local();
    ensure_registered(ls);
    return atomos::open_atomically([&] {
      tcc::charge_sem_op();
      return inner_->put(key, value);  // BUG: pre-commit state leaks
    });
  }
};

/// put() that reads the old value WITHOUT the key read-lock: two concurrent
/// read-modify-write puts of the same key both commit, the second silently
/// overwriting an update it never observed.
class NoLockPutMap final : public LongMap {
 public:
  using LongMap::LongMap;

  std::optional<long> put(const long& key, const long& value) override {
    if (!transactional() || !in_txn()) return LongMap::put(key, value);
    LocalState& ls = local();
    ensure_registered(ls);
    std::optional<long> old;
    if (auto hit = buffered_lookup(ls, key)) {
      old = *hit;
    } else {
      old = atomos::open_atomically([&] {
        tcc::charge_sem_op();
        return inner_->get(key);  // BUG: unlocked observation
      });
    }
    Entry& e = ls.store[key];
    if (!e.touched) e.present_before = old.has_value();
    e.touched = true;
    e.kind = Entry::kPut;
    e.value = value;
    return old;
  }
};

/// Abort compensation that DROPS eagerly removed elements instead of
/// pushing them back: an aborted consumer loses work items forever.
class LossyQueue final : public tcc::TransactionalQueue<long> {
 public:
  using TransactionalQueue::TransactionalQueue;

 protected:
  void abort_handler(int cpu) override {
    atomos::audit::compensation_run(cpu, this);
    atomos::sem::compensation_run(this);
    LocalState& ls = locals_[static_cast<std::size_t>(cpu)];
    tcc::charge_sem_op();
    ls.remove_buffer.clear();  // BUG: elements vanish instead of returning
    release_and_clear(ls);
  }
};

/// Commit handler that releases the transaction's key locks a second time
/// after the base handler already released everything.
class DoubleReleaseMap final : public LongMap {
 public:
  using LongMap::LongMap;

 protected:
  void commit_handler(int cpu) override {
    LocalState& ls = locals_[static_cast<std::size_t>(cpu)];
    const std::vector<long> keys = ls.key_locks;  // base clears these
    const atomos::TxnId id = ls.id;
    LongMap::commit_handler(cpu);
    for (const long& k : keys) key_lockers_.unlock(k, id);  // BUG: again
  }
};

/// Abort handler that clears the local state WITHOUT releasing semantic
/// locks: the dead incarnation's locks linger in the tables forever.
class LeakyAbortMap final : public LongMap {
 public:
  using LongMap::LongMap;

 protected:
  void abort_handler(int cpu) override {
    atomos::audit::compensation_run(cpu, this);
    atomos::sem::compensation_run(this);
    LocalState& ls = locals_[static_cast<std::size_t>(cpu)];
    tcc::charge_sem_op();
    ls.clear();  // BUG: key/size/empty locks never released
  }
};

}  // namespace mc
