#include "mc/controller.h"

#include <algorithm>

namespace mc {

int Controller::pick(const std::vector<int>& runnable) {
  // Default policy, reproduced scheduler-side: smallest virtual clock,
  // lowest cpu id on ties.  With no forced prefix this makes the decision
  // tree identical to the engine's own min-clock schedule.
  std::size_t def = 0;
  for (std::size_t i = 1; i < runnable.size(); ++i) {
    const std::uint64_t ci = eng_.cpu_clock(runnable[i]);
    const std::uint64_t cd = eng_.cpu_clock(runnable[def]);
    if (ci < cd) def = i;
  }

  std::size_t chosen = def;
  if (runnable.size() >= 2) {
    const std::size_t ord = capture_.executed.choices.size();
    if (ord < forced_.choices.size()) {
      const int want = forced_.choices[ord];
      if (want >= 0 && static_cast<std::size_t>(want) < runnable.size()) {
        chosen = static_cast<std::size_t>(want);
      } else {
        capture_.diverged = true;  // the tree changed under this prefix
      }
    }
    capture_.executed.choices.push_back(static_cast<int>(chosen));
    RunCapture::Branch b;
    b.ord = ord;
    b.quantum = capture_.quanta.size();
    b.runnable = runnable;
    b.chosen_index = static_cast<int>(chosen);
    capture_.branches.push_back(std::move(b));
  }

  RunCapture::Quantum q;
  q.cpu = runnable[chosen];
  capture_.quanta.push_back(std::move(q));
  return runnable[chosen];
}

void Controller::on_access(int cpu, sim::LineAddr line, bool /*is_write*/) {
  if (capture_.quanta.empty()) return;
  RunCapture::Quantum& q = capture_.quanta.back();
  (void)cpu;
  if (std::find(q.lines.begin(), q.lines.end(), line) == q.lines.end()) {
    q.lines.push_back(line);
  }
}

void Controller::on_txn_sets(int /*cpu*/, bool committed, bool open,
                             const std::vector<sim::LineAddr>& /*reads*/,
                             const std::vector<sim::LineAddr>& writes) {
  if (capture_.quanta.empty()) return;
  RunCapture::Quantum& q = capture_.quanta.back();
  if (!open) q.boundary = true;
  // A commit's write broadcast is what other cpus can conflict with; fold
  // the full write set into the committing quantum's footprint.
  if (!committed) return;
  for (const sim::LineAddr line : writes) {
    if (std::find(q.lines.begin(), q.lines.end(), line) == q.lines.end()) {
      q.lines.push_back(line);
    }
  }
}

void Controller::note_table(const void* table) {
  if (capture_.quanta.empty()) return;
  RunCapture::Quantum& q = capture_.quanta.back();
  if (std::find(q.tables.begin(), q.tables.end(), table) == q.tables.end()) {
    q.tables.push_back(table);
  }
}

void Controller::on_lock_acquired(const atomos::TxnId& owner, const void* table) {
  note_table(table);
  if (oracle_ != nullptr) oracle_->lock_acquired(owner, table);
}

void Controller::on_lock_released(const atomos::TxnId& owner, const void* table) {
  note_table(table);
  if (oracle_ != nullptr) oracle_->lock_released(owner, table);
}

void Controller::on_locks_released_all(const atomos::TxnId& owner, const void* table) {
  note_table(table);
  if (oracle_ != nullptr) oracle_->locks_released_all(owner, table);
}

void Controller::on_lock_release_noop(const atomos::TxnId& owner, const void* table) {
  note_table(table);
  if (oracle_ != nullptr) {
    // Liveness must be sampled NOW: during commit handlers the transaction
    // is still the cpu's bottom txn, so a double release inside them is
    // caught, while a prune of a long-settled owner is not.
    oracle_->lock_release_noop(owner, table, rt_.txn_live(owner));
  }
}

void Controller::on_lock_pruned(const atomos::TxnId& /*owner*/, const void* table) {
  // A prune removes a SETTLED owner's stale entry; its balance was already
  // cleared by its own release path, so the ledger stays untouched.
  note_table(table);
}

void Controller::on_compensation_run(const void* /*site*/) {}

}  // namespace mc
