// Benchmark harness: runs a workload across CPU counts on the simulator and
// prints paper-style speedup series (baseline = the 1-CPU lock-mode run),
// plus the simulator statistics (violations, lost cycles) used for analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.h"
#include "sim/stats.h"

namespace harness {

/// One simulation measurement.
struct RunResult {
  std::string series;
  int cpus = 0;
  std::uint64_t cycles = 0;          ///< simulated elapsed cycles
  std::uint64_t violations = 0;      ///< top-level (parent) violations
  std::uint64_t semantic = 0;        ///< program-directed aborts
  std::uint64_t lost_cycles = 0;     ///< cycles discarded by rollbacks
  std::uint64_t commits = 0;
  double speedup = 0.0;              ///< vs the figure's 1-CPU baseline

  /// Optional figure-specific columns appended to the CSV (open-system
  /// workloads report offered load, throughput and latency percentiles this
  /// way).  Every result of a figure must carry the same names in the same
  /// order; figures that leave this empty emit the classic 8-column CSV
  /// byte-for-byte, so the existing goldens are unaffected.
  std::vector<std::pair<std::string, double>> extras;

  /// Field-for-field equality — the harness determinism tests assert that a
  /// serial sweep and a `--jobs N` sweep produce identical vectors.
  friend bool operator==(const RunResult&, const RunResult&) = default;
};

/// A named series: given a Config (mode/cpu count pre-filled), run the
/// workload to completion and report (cycles, stats) via the returned
/// RunResult fields other than series/cpus/speedup (filled by the harness).
struct Series {
  std::string name;
  sim::Mode mode;
  /// Runs the workload on `cpus` virtual CPUs; returns simulated cycles and
  /// fills the stats fields of the result.  `seed_salt` perturbs the
  /// workload's RNG seeds for `--trials` reruns; salt 0 (trial 0) MUST
  /// reproduce the canonical unperturbed run bit-for-bit.
  std::function<void(int cpus, std::uint64_t seed_salt, RunResult& out)> run;
};

/// Runs every series at each CPU count on the calling thread; the FIRST
/// series' 1-CPU run is the speedup baseline (paper: "the single-processor
/// Java version is used as the baseline").  Prints the figure as rows of
/// speedups plus a stats appendix, and returns all results (also emitted as
/// CSV when `csv_path` is non-empty).  This is the serial convenience
/// wrapper over the host-parallel driver in harness/driver.h.
std::vector<RunResult> run_figure(const std::string& figure_title,
                                  const std::vector<Series>& series,
                                  const std::vector<int>& cpu_counts,
                                  const std::string& csv_path = "");

// ---- machine-readable (JSON) benchmark output ----

/// One wall-clock microbenchmark measurement (see bench/hotpath.cpp).
struct BenchResult {
  std::string name;
  std::uint64_t ops = 0;         ///< operations (e.g. committed transactions)
  double wall_seconds = 0.0;     ///< host wall-clock time for those ops
  std::uint64_t sim_cycles = 0;  ///< simulated cycles — MUST be invariant
                                 ///< across host-side optimisations.  Engine-
                                 ///< free kernel scenarios store a
                                 ///< deterministic result checksum here; it
                                 ///< plays the same role (build-invariance
                                 ///< witness, e.g. SIMD vs SWAR).
  /// Optional scenario-specific numeric facts (pool hit rates, rep counts).
  /// Emitted verbatim as extra JSON fields; not compared by the CI gate.
  std::vector<std::pair<std::string, double>> extras;
};

/// Writes benchmark results as JSON so the perf trajectory can be recorded
/// and CI-guarded (BENCH_*.json at the repo root).  Each result gains a
/// derived `ops_per_sec`, and — when `calibration_ops_per_sec` > 0 — a
/// `normalized` throughput (ops_per_sec / calibration) that factors out the
/// host machine's raw speed, making runs comparable across machines.
void write_bench_json(const std::string& path, const std::string& bench,
                      const std::vector<BenchResult>& results,
                      double calibration_ops_per_sec = 0.0);

/// Emits `run_figure` results as JSON (same schema idea as the CSV, for
/// tooling that prefers structured output).
void write_figure_json(const std::string& path, const std::string& figure_title,
                       const std::vector<RunResult>& results);

}  // namespace harness
