// Benchmark harness: runs a workload across CPU counts on the simulator and
// prints paper-style speedup series (baseline = the 1-CPU lock-mode run),
// plus the simulator statistics (violations, lost cycles) used for analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/stats.h"

namespace harness {

/// One simulation measurement.
struct RunResult {
  std::string series;
  int cpus = 0;
  std::uint64_t cycles = 0;          ///< simulated elapsed cycles
  std::uint64_t violations = 0;      ///< top-level (parent) violations
  std::uint64_t semantic = 0;        ///< program-directed aborts
  std::uint64_t lost_cycles = 0;     ///< cycles discarded by rollbacks
  std::uint64_t commits = 0;
  double speedup = 0.0;              ///< vs the figure's 1-CPU baseline
};

/// A named series: given a Config (mode/cpu count pre-filled), run the
/// workload to completion and report (cycles, stats) via the returned
/// RunResult fields other than series/cpus/speedup (filled by the harness).
struct Series {
  std::string name;
  sim::Mode mode;
  /// Runs the workload on `cpus` virtual CPUs; returns simulated cycles and
  /// fills the stats fields of the result.
  std::function<void(int cpus, RunResult& out)> run;
};

/// Runs every series at each CPU count; the FIRST series' 1-CPU run is the
/// speedup baseline (paper: "the single-processor Java version is used as
/// the baseline").  Prints the figure as rows of speedups plus a stats
/// appendix, and returns all results (also emitted as CSV when `csv_path`
/// is non-empty).
std::vector<RunResult> run_figure(const std::string& figure_title,
                                  const std::vector<Series>& series,
                                  const std::vector<int>& cpu_counts,
                                  const std::string& csv_path = "");

}  // namespace harness
