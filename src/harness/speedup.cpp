#include "harness/speedup.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "harness/driver.h"

namespace harness {

std::vector<RunResult> run_figure(const std::string& figure_title,
                                  const std::vector<Series>& series,
                                  const std::vector<int>& cpu_counts,
                                  const std::string& csv_path) {
  DriverOptions opt;  // jobs=1, trials=1, no timeout: the plain serial sweep
  FigureResult fr = run_figure_driver(figure_title, series, cpu_counts, csv_path, opt);
  return std::move(fr.results);
}

namespace {

// Minimal JSON string escaping (names here are ASCII identifiers, but be
// correct anyway).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void write_bench_json(const std::string& path, const std::string& bench,
                      const std::vector<BenchResult>& results,
                      double calibration_ops_per_sec) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_bench_json: cannot open " + path);
  out << "{\n  \"bench\": \"" << json_escape(bench) << "\",\n";
  if (calibration_ops_per_sec > 0.0) {
    out << "  \"calibration_ops_per_sec\": " << json_double(calibration_ops_per_sec) << ",\n";
  }
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    const double ops_per_sec =
        r.wall_seconds > 0.0 ? static_cast<double>(r.ops) / r.wall_seconds : 0.0;
    out << "    {\"name\": \"" << json_escape(r.name) << "\", \"ops\": " << r.ops
        << ", \"wall_seconds\": " << json_double(r.wall_seconds)
        << ", \"ops_per_sec\": " << json_double(ops_per_sec)
        << ", \"sim_cycles\": " << r.sim_cycles;
    if (calibration_ops_per_sec > 0.0) {
      out << ", \"normalized\": " << json_double(ops_per_sec / calibration_ops_per_sec);
    }
    for (const auto& [key, value] : r.extras) {
      out << ", \"" << json_escape(key) << "\": " << json_double(value);
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void write_figure_json(const std::string& path, const std::string& figure_title,
                       const std::vector<RunResult>& results) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_figure_json: cannot open " + path);
  out << "{\n  \"figure\": \"" << json_escape(figure_title) << "\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    out << "    {\"series\": \"" << json_escape(r.series) << "\", \"cpus\": " << r.cpus
        << ", \"cycles\": " << r.cycles << ", \"speedup\": " << json_double(r.speedup)
        << ", \"violations\": " << r.violations << ", \"semantic\": " << r.semantic
        << ", \"lost_cycles\": " << r.lost_cycles << ", \"commits\": " << r.commits << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace harness
