#include "harness/speedup.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace harness {

std::vector<RunResult> run_figure(const std::string& figure_title,
                                  const std::vector<Series>& series,
                                  const std::vector<int>& cpu_counts,
                                  const std::string& csv_path) {
  if (series.empty() || cpu_counts.empty())
    throw std::invalid_argument("run_figure: nothing to run");

  std::vector<RunResult> results;
  double baseline_cycles = 0.0;

  for (const Series& s : series) {
    for (int cpus : cpu_counts) {
      RunResult r;
      r.series = s.name;
      r.cpus = cpus;
      s.run(cpus, r);
      if (baseline_cycles == 0.0) {
        // First series, first CPU count: the figure's baseline.
        baseline_cycles = static_cast<double>(r.cycles);
      }
      r.speedup = baseline_cycles / static_cast<double>(r.cycles);
      results.push_back(r);
      std::fprintf(stderr, "  [%s] cpus=%d done (%llu cycles)\n", s.name.c_str(), cpus,
                   static_cast<unsigned long long>(r.cycles));
    }
  }

  // --- paper-style speedup table ---
  std::printf("\n=== %s ===\n", figure_title.c_str());
  std::printf("%-28s", "Series \\ CPUs");
  for (int c : cpu_counts) std::printf("%10d", c);
  std::printf("\n");
  for (const Series& s : series) {
    std::printf("%-28s", s.name.c_str());
    for (int c : cpu_counts) {
      for (const RunResult& r : results) {
        if (r.series == s.name && r.cpus == c) {
          std::printf("%10.2f", r.speedup);
          break;
        }
      }
    }
    std::printf("\n");
  }

  // --- stats appendix (the TAPE-flavoured analysis view) ---
  std::printf("--- violations / semantic / lost-cycle%% ---\n");
  for (const Series& s : series) {
    std::printf("%-28s", s.name.c_str());
    for (int c : cpu_counts) {
      for (const RunResult& r : results) {
        if (r.series == s.name && r.cpus == c) {
          const double lost_pct =
              r.cycles == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(r.lost_cycles) /
                        (static_cast<double>(r.cycles) * c);
          std::printf("  %4llu/%3llu/%2.0f%%",
                      static_cast<unsigned long long>(r.violations),
                      static_cast<unsigned long long>(r.semantic), lost_pct);
          break;
        }
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    csv << "series,cpus,cycles,speedup,violations,semantic,lost_cycles,commits\n";
    for (const RunResult& r : results) {
      csv << r.series << ',' << r.cpus << ',' << r.cycles << ',' << r.speedup << ','
          << r.violations << ',' << r.semantic << ',' << r.lost_cycles << ','
          << r.commits << '\n';
    }
  }
  return results;
}

namespace {

// Minimal JSON string escaping (names here are ASCII identifiers, but be
// correct anyway).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void write_bench_json(const std::string& path, const std::string& bench,
                      const std::vector<BenchResult>& results,
                      double calibration_ops_per_sec) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_bench_json: cannot open " + path);
  out << "{\n  \"bench\": \"" << json_escape(bench) << "\",\n";
  if (calibration_ops_per_sec > 0.0) {
    out << "  \"calibration_ops_per_sec\": " << json_double(calibration_ops_per_sec) << ",\n";
  }
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    const double ops_per_sec =
        r.wall_seconds > 0.0 ? static_cast<double>(r.ops) / r.wall_seconds : 0.0;
    out << "    {\"name\": \"" << json_escape(r.name) << "\", \"ops\": " << r.ops
        << ", \"wall_seconds\": " << json_double(r.wall_seconds)
        << ", \"ops_per_sec\": " << json_double(ops_per_sec)
        << ", \"sim_cycles\": " << r.sim_cycles;
    if (calibration_ops_per_sec > 0.0) {
      out << ", \"normalized\": " << json_double(ops_per_sec / calibration_ops_per_sec);
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void write_figure_json(const std::string& path, const std::string& figure_title,
                       const std::vector<RunResult>& results) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_figure_json: cannot open " + path);
  out << "{\n  \"figure\": \"" << json_escape(figure_title) << "\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    out << "    {\"series\": \"" << json_escape(r.series) << "\", \"cpus\": " << r.cpus
        << ", \"cycles\": " << r.cycles << ", \"speedup\": " << json_double(r.speedup)
        << ", \"violations\": " << r.violations << ", \"semantic\": " << r.semantic
        << ", \"lost_cycles\": " << r.lost_cycles << ", \"commits\": " << r.commits << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace harness
