#include "harness/speedup.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace harness {

std::vector<RunResult> run_figure(const std::string& figure_title,
                                  const std::vector<Series>& series,
                                  const std::vector<int>& cpu_counts,
                                  const std::string& csv_path) {
  if (series.empty() || cpu_counts.empty())
    throw std::invalid_argument("run_figure: nothing to run");

  std::vector<RunResult> results;
  double baseline_cycles = 0.0;

  for (const Series& s : series) {
    for (int cpus : cpu_counts) {
      RunResult r;
      r.series = s.name;
      r.cpus = cpus;
      s.run(cpus, r);
      if (baseline_cycles == 0.0) {
        // First series, first CPU count: the figure's baseline.
        baseline_cycles = static_cast<double>(r.cycles);
      }
      r.speedup = baseline_cycles / static_cast<double>(r.cycles);
      results.push_back(r);
      std::fprintf(stderr, "  [%s] cpus=%d done (%llu cycles)\n", s.name.c_str(), cpus,
                   static_cast<unsigned long long>(r.cycles));
    }
  }

  // --- paper-style speedup table ---
  std::printf("\n=== %s ===\n", figure_title.c_str());
  std::printf("%-28s", "Series \\ CPUs");
  for (int c : cpu_counts) std::printf("%10d", c);
  std::printf("\n");
  for (const Series& s : series) {
    std::printf("%-28s", s.name.c_str());
    for (int c : cpu_counts) {
      for (const RunResult& r : results) {
        if (r.series == s.name && r.cpus == c) {
          std::printf("%10.2f", r.speedup);
          break;
        }
      }
    }
    std::printf("\n");
  }

  // --- stats appendix (the TAPE-flavoured analysis view) ---
  std::printf("--- violations / semantic / lost-cycle%% ---\n");
  for (const Series& s : series) {
    std::printf("%-28s", s.name.c_str());
    for (int c : cpu_counts) {
      for (const RunResult& r : results) {
        if (r.series == s.name && r.cpus == c) {
          const double lost_pct =
              r.cycles == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(r.lost_cycles) /
                        (static_cast<double>(r.cycles) * c);
          std::printf("  %4llu/%3llu/%2.0f%%",
                      static_cast<unsigned long long>(r.violations),
                      static_cast<unsigned long long>(r.semantic), lost_pct);
          break;
        }
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    csv << "series,cpus,cycles,speedup,violations,semantic,lost_cycles,commits\n";
    for (const RunResult& r : results) {
      csv << r.series << ',' << r.cpus << ',' << r.cycles << ',' << r.speedup << ','
          << r.violations << ',' << r.semantic << ',' << r.lost_cycles << ','
          << r.commits << '\n';
    }
  }
  return results;
}

}  // namespace harness
