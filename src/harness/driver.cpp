#include "harness/driver.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "sim/engine.h"
#include "trace/tracer.h"

namespace harness {
namespace {

// Golden-ratio odd multiplier: distinct trials get well-separated seed
// perturbations while trial 0 stays exactly the canonical (salt-free) run.
std::uint64_t salt_for_trial(int trial) {
  return static_cast<std::uint64_t>(trial) * 0x9E3779B97F4A7C15ULL;
}

// --only accepts either a series-name substring ("Atomos") or a CPU-count
// list ("cpus=1,8" or just "1,8" — digits and commas only).
struct OnlyFilter {
  bool all = true;
  bool by_cpus = false;
  std::set<int> cpus;
  std::string needle;

  static OnlyFilter parse(const std::string& only) {
    OnlyFilter f;
    if (only.empty()) return f;
    f.all = false;
    std::string body = only;
    if (body.rfind("cpus=", 0) == 0) body = body.substr(5);
    const bool numeric = !body.empty() &&
                         body.find_first_not_of("0123456789,") == std::string::npos;
    if (numeric && (only != body || body.find_first_of("0123456789") != std::string::npos)) {
      f.by_cpus = true;
      std::size_t pos = 0;
      while (pos < body.size()) {
        const std::size_t comma = body.find(',', pos);
        const std::string tok = body.substr(pos, comma - pos);
        if (!tok.empty()) f.cpus.insert(std::atoi(tok.c_str()));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      f.needle = only;
    }
    return f;
  }

  bool keep_series(const std::string& name) const {
    if (all || by_cpus) return true;
    return name.find(needle) != std::string::npos;
  }
  bool keep_cpus(int c) const {
    if (all || !by_cpus) return true;
    return cpus.count(c) != 0;
  }
  bool keep_task(const std::string& section, const std::string& name) const {
    if (all) return true;
    if (by_cpus) return true;  // CPU filters don't apply to named tasks
    return section.find(needle) != std::string::npos ||
           name.find(needle) != std::string::npos;
  }
};

struct Attempt {
  bool poisoned = false;
  std::string error;
};

// Runs `body` under the per-point wall-clock deadline.  A SimTimeout gets
// one retry (the body must be restartable: it builds a fresh Engine/Runtime
// each call, so a half-finished first attempt leaves nothing behind); any
// other workload exception poisons the point immediately.  Typed catches
// only — the txlint catch-swallow rule (and good taste) forbid `catch (...)`.
Attempt run_guarded(const std::function<void()>& body, double timeout_sec) {
  Attempt a;
  const int attempts = timeout_sec > 0.0 ? 2 : 1;
  for (int k = 0; k < attempts; ++k) {
    try {
      if (timeout_sec > 0.0) {
        sim::Engine::set_host_deadline(
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(timeout_sec)));
      }
      body();
      sim::Engine::clear_host_deadline();
      a.poisoned = false;
      a.error.clear();
      return a;
    } catch (const sim::SimTimeout&) {
      sim::Engine::clear_host_deadline();
      a.poisoned = true;
      char buf[96];
      std::snprintf(buf, sizeof(buf), "timed out (%d attempt(s) of %.1fs each)",
                    k + 1, timeout_sec);
      a.error = buf;
    } catch (const std::exception& e) {
      sim::Engine::clear_host_deadline();
      a.poisoned = true;
      a.error = e.what();
      return a;  // non-timeout failures are deterministic: no retry
    }
  }
  return a;
}

// Deterministic pool: runs body(i) for i in [0, n) on up to `jobs` host
// threads, and releases emit(i) strictly in index order as a contiguous
// prefix of results completes — so progress output is identical for any
// jobs value.  jobs <= 1 runs everything inline on the calling thread.
void run_pool(std::size_t n, int jobs, const std::function<void(std::size_t)>& body,
              const std::function<void(std::size_t)>& emit) {
  const int workers =
      static_cast<int>(std::min<std::size_t>(std::max(jobs, 1), std::max<std::size_t>(n, 1)));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      body(i);
      emit(i);
    }
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<char> done(n, 0);
  std::mutex mu;
  std::size_t cursor = 0;
  auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      body(i);
      std::lock_guard<std::mutex> g(mu);
      done[i] = 1;
      while (cursor < n && done[cursor] != 0) {
        emit(cursor);
        ++cursor;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(work);
  for (std::thread& th : pool) th.join();
}

// Integral extras (latency percentiles in cycles, counts) print as plain
// integers; genuine fractions use the stream's default 6-significant-digit
// form, same as the speedup column.  Both are deterministic functions of the
// value, which the byte-identity guarantee needs.
void put_extra(std::ofstream& csv, double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 9.0e15 && v > -9.0e15) {
    csv << static_cast<long long>(v);
  } else {
    csv << v;
  }
}

void write_figure_csv(const std::string& path, const FigureResult& fr, int trials) {
  std::ofstream csv(path);
  if (!csv) throw std::runtime_error("run_figure_driver: cannot open " + path);
  // Figures with per-point extras gain those columns after `commits`; the
  // names come from the first surviving result and every row must agree
  // (otherwise the figure binary has a bug worth failing loudly on).
  const std::vector<std::pair<std::string, double>>* extras_shape =
      !fr.results.empty() && !fr.results.front().extras.empty()
          ? &fr.results.front().extras
          : nullptr;
  csv << "series,cpus,cycles,speedup,violations,semantic,lost_cycles,commits";
  if (extras_shape != nullptr) {
    for (const auto& [name, value] : *extras_shape) csv << ',' << name;
  }
  if (trials > 1) csv << ",cycles_mean,cycles_min,cycles_max";
  csv << '\n';
  for (std::size_t i = 0; i < fr.results.size(); ++i) {
    const RunResult& r = fr.results[i];
    csv << r.series << ',' << r.cpus << ',' << r.cycles << ',' << r.speedup << ','
        << r.violations << ',' << r.semantic << ',' << r.lost_cycles << ','
        << r.commits;
    if (extras_shape != nullptr) {
      if (r.extras.size() != extras_shape->size())
        throw std::runtime_error("run_figure_driver: inconsistent extras columns in '" +
                                 r.series + "'");
      for (std::size_t e = 0; e < r.extras.size(); ++e) {
        if (r.extras[e].first != (*extras_shape)[e].first)
          throw std::runtime_error("run_figure_driver: inconsistent extras columns in '" +
                                   r.series + "'");
        csv << ',';
        put_extra(csv, r.extras[e].second);
      }
    }
    if (trials > 1) {
      const TrialStats& ts = fr.trial_stats[i];
      csv << ',' << ts.cycles_mean << ',' << ts.cycles_min << ',' << ts.cycles_max;
    }
    csv << '\n';
  }
}

}  // namespace

std::string trace_file_path(const std::string& prefix, const std::string& series,
                            int cpus) {
  std::string name = series;
  for (char& ch : name) {
    if (std::isalnum(static_cast<unsigned char>(ch)) == 0) ch = '_';
  }
  return prefix + name + "_cpus" + std::to_string(cpus) + ".trace";
}

FigureResult run_figure_driver(const std::string& figure_title,
                               const std::vector<Series>& series,
                               const std::vector<int>& cpu_counts,
                               const std::string& default_csv,
                               const DriverOptions& opt) {
  if (series.empty() || cpu_counts.empty())
    throw std::invalid_argument("run_figure: nothing to run");
  const OnlyFilter filter = OnlyFilter::parse(opt.only);
  const int trials = std::max(opt.trials, 1);

  // Canonical point order: series-major, then CPU count, then trial.  The
  // merge below walks this same order, so results never depend on which
  // host thread finished first.
  struct Point {
    std::size_t s;
    std::size_t c;
    int trial;
  };
  std::vector<Point> points;
  for (std::size_t s = 0; s < series.size(); ++s) {
    if (!filter.keep_series(series[s].name)) continue;
    for (std::size_t c = 0; c < cpu_counts.size(); ++c) {
      if (!filter.keep_cpus(cpu_counts[c])) continue;
      for (int t = 0; t < trials; ++t) points.push_back({s, c, t});
    }
  }
  if (points.empty())
    throw std::invalid_argument("run_figure: --only '" + opt.only +
                                "' matches no (series, cpus) point");

  struct Slot {
    RunResult r;
    Attempt a;
  };
  std::vector<Slot> slots(points.size());

  const auto t0 = std::chrono::steady_clock::now();
  run_pool(
      points.size(), opt.jobs,
      [&](std::size_t i) {
        const Point& pt = points[i];
        Slot& sl = slots[i];
        sl.r.series = series[pt.s].name;
        sl.r.cpus = cpu_counts[pt.c];
        // Only the canonical (trial-0) run of a point is traced: perturbed
        // trials would race to the same file name, and the canonical run is
        // the one every table/CSV number comes from.
        const bool traced = !opt.trace_path.empty() && pt.trial == 0;
        sl.a = run_guarded(
            [&] {
              RunResult r;  // fresh per attempt: a timed-out try leaves no residue
              r.series = sl.r.series;
              r.cpus = sl.r.cpus;
              if (traced) {
                // Re-arm per attempt: the Runtime the workload builds consumes
                // the request, and a timed-out first try must re-set it.
                trace::set_request(
                    trace_file_path(opt.trace_path, r.series, r.cpus),
                    opt.trace_cap);
              }
              series[pt.s].run(r.cpus, salt_for_trial(pt.trial), r);
              trace::clear_request();
              sl.r = std::move(r);
            },
            opt.timeout_sec);
        if (traced) trace::clear_request();  // timed-out/poisoned leftovers
      },
      [&](std::size_t i) {
        const Point& pt = points[i];
        const Slot& sl = slots[i];
        if (sl.a.poisoned) {
          std::fprintf(stderr, "  [%s] cpus=%d%s POISONED: %s\n", sl.r.series.c_str(),
                       sl.r.cpus,
                       trials > 1 ? (" trial=" + std::to_string(pt.trial)).c_str() : "",
                       sl.a.error.c_str());
        } else if (trials > 1) {
          std::fprintf(stderr, "  [%s] cpus=%d trial=%d done (%llu cycles)\n",
                       sl.r.series.c_str(), sl.r.cpus, pt.trial,
                       static_cast<unsigned long long>(sl.r.cycles));
        } else {
          std::fprintf(stderr, "  [%s] cpus=%d done (%llu cycles)\n", sl.r.series.c_str(),
                       sl.r.cpus, static_cast<unsigned long long>(sl.r.cycles));
        }
      });

  FigureResult fr;
  fr.jobs = static_cast<int>(
      std::min<std::size_t>(std::max(opt.jobs, 1), points.size()));
  fr.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Merge in canonical order.  The canonical RunResult of a point is its
  // trial-0 run; the trial statistics aggregate all surviving trials.  The
  // speedup baseline is the FIRST surviving point — first series, first CPU
  // count — exactly as in the serial harness.
  double baseline_cycles = 0.0;
  for (std::size_t i = 0; i < points.size(); i += static_cast<std::size_t>(trials)) {
    TrialStats ts;
    ts.trials = 0;
    std::uint64_t sum = 0;
    for (int t = 0; t < trials; ++t) {
      const Slot& sl = slots[i + static_cast<std::size_t>(t)];
      if (sl.a.poisoned) {
        fr.poisoned.push_back({sl.r.series, sl.r.cpus, points[i + t].trial, sl.a.error});
        continue;
      }
      if (ts.trials == 0) {
        ts.cycles_min = ts.cycles_max = sl.r.cycles;
      } else {
        ts.cycles_min = std::min(ts.cycles_min, sl.r.cycles);
        ts.cycles_max = std::max(ts.cycles_max, sl.r.cycles);
      }
      sum += sl.r.cycles;
      ts.trials++;
    }
    const Slot& canon = slots[i];
    if (canon.a.poisoned) continue;  // no canonical run — the point is a hole
    if (ts.trials > 0) ts.cycles_mean = static_cast<double>(sum) / ts.trials;
    RunResult r = canon.r;
    if (baseline_cycles == 0.0) {
      // First series, first CPU count: the figure's baseline.
      baseline_cycles = static_cast<double>(r.cycles);
    }
    r.speedup = baseline_cycles / static_cast<double>(r.cycles);
    fr.results.push_back(std::move(r));
    fr.trial_stats.push_back(ts);
  }

  // --- paper-style speedup table ---
  std::printf("\n=== %s ===\n", figure_title.c_str());
  std::printf("%-28s", "Series \\ CPUs");
  for (int c : cpu_counts) std::printf("%10d", c);
  std::printf("\n");
  for (const Series& s : series) {
    if (!filter.keep_series(s.name)) continue;
    std::printf("%-28s", s.name.c_str());
    for (int c : cpu_counts) {
      for (const RunResult& r : fr.results) {
        if (r.series == s.name && r.cpus == c) {
          std::printf("%10.2f", r.speedup);
          break;
        }
      }
    }
    std::printf("\n");
  }

  // --- stats appendix (the TAPE-flavoured analysis view) ---
  std::printf("--- violations / semantic / lost-cycle%% ---\n");
  for (const Series& s : series) {
    if (!filter.keep_series(s.name)) continue;
    std::printf("%-28s", s.name.c_str());
    for (int c : cpu_counts) {
      for (const RunResult& r : fr.results) {
        if (r.series == s.name && r.cpus == c) {
          const double lost_pct =
              r.cycles == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(r.lost_cycles) /
                        (static_cast<double>(r.cycles) * c);
          std::printf("  %4llu/%3llu/%2.0f%%",
                      static_cast<unsigned long long>(r.violations),
                      static_cast<unsigned long long>(r.semantic), lost_pct);
          break;
        }
      }
    }
    std::printf("\n");
  }

  if (trials > 1) {
    std::printf("--- cycles mean [min, max] over %d trials ---\n", trials);
    for (std::size_t i = 0; i < fr.results.size(); ++i) {
      const RunResult& r = fr.results[i];
      const TrialStats& ts = fr.trial_stats[i];
      std::printf("%-28s cpus=%-3d %14.0f [%llu, %llu] (%d trial(s))\n", r.series.c_str(),
                  r.cpus, ts.cycles_mean, static_cast<unsigned long long>(ts.cycles_min),
                  static_cast<unsigned long long>(ts.cycles_max), ts.trials);
    }
  }

  if (!fr.poisoned.empty()) {
    std::printf("--- POISONED points (excluded from table and CSV) ---\n");
    for (const PoisonedPoint& p : fr.poisoned) {
      std::printf("%-28s cpus=%-3d trial=%d: %s\n", p.series.c_str(), p.cpus, p.trial,
                  p.error.c_str());
    }
  }
  std::fflush(stdout);

  const std::string csv_path = opt.csv_path.empty() ? default_csv : opt.csv_path;
  if (!csv_path.empty()) write_figure_csv(csv_path, fr, trials);
  return fr;
}

// ---- shared bench CLI ----

namespace {

[[noreturn]] void usage(const char* bench, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(
      out,
      "usage: %s [--jobs N] [--trials N] [--ops N] [--csv PATH] [--only F] [--timeout S]\n"
      "          [--trace PREFIX] [--trace-cap N]\n"
      "  --jobs N, -j N  shard sweep points across N host worker threads\n"
      "                  (default 1); the table, CSV and simulated cycles are\n"
      "                  bit-identical for every N\n"
      "  --trials N      run each point N times with perturbed seeds; the CSV\n"
      "                  gains cycles_mean/cycles_min/cycles_max columns and the\n"
      "                  canonical (trial-0) columns are unchanged (default 1)\n"
      "  --ops N         override the workload's total operation count\n"
      "  --csv PATH      write the figure CSV to PATH instead of the default\n"
      "  --only F        restrict the sweep: a series-name substring (e.g.\n"
      "                  'Atomos') or a CPU list ('cpus=1,8' or '1,8')\n"
      "  --timeout S     per-point wall-clock timeout in seconds (default 120,\n"
      "                  0 disables); a timed-out point is retried once, then\n"
      "                  reported as POISONED instead of hanging the sweep\n"
      "  --trace PREFIX  write a deterministic txtrace event file per sweep\n"
      "                  point (trial 0) to PREFIX<series>_cpus<N>.trace;\n"
      "                  inspect with tools/txtrace.  Traced runs spend extra\n"
      "                  host time but simulated cycles are unchanged\n"
      "  --trace-cap N   per-CPU trace buffer capacity in events (default 65536;\n"
      "                  overflow drops newest events, reported by txtrace)\n"
      "  --help, -h      this message\n",
      bench);
  std::exit(code);
}

long parse_long(const char* bench, const char* flag, const std::string& v, long min_value) {
  char* end = nullptr;
  const long n = std::strtol(v.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v.empty() || n < min_value) {
    std::fprintf(stderr, "%s: bad value '%s' for %s\n", bench, v.c_str(), flag);
    usage(bench, 2);
  }
  return n;
}

double parse_seconds(const char* bench, const char* flag, const std::string& v) {
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (end == nullptr || *end != '\0' || v.empty() || d < 0.0) {
    std::fprintf(stderr, "%s: bad value '%s' for %s\n", bench, v.c_str(), flag);
    usage(bench, 2);
  }
  return d;
}

}  // namespace

Cli Cli::parse(int argc, char** argv, const char* bench, double default_timeout_sec) {
  Cli cli;
  cli.opts.timeout_sec = default_timeout_sec;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", bench, flag);
        usage(bench, 2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(bench, 0);
    } else if (a == "--jobs" || a == "-j") {
      cli.opts.jobs = static_cast<int>(parse_long(bench, "--jobs", value("--jobs"), 1));
    } else if (a == "--trials") {
      cli.opts.trials = static_cast<int>(parse_long(bench, "--trials", value("--trials"), 1));
    } else if (a == "--ops") {
      cli.ops = parse_long(bench, "--ops", value("--ops"), 1);
    } else if (a == "--csv") {
      cli.opts.csv_path = value("--csv");
    } else if (a == "--only") {
      cli.opts.only = value("--only");
    } else if (a == "--timeout") {
      cli.opts.timeout_sec = parse_seconds(bench, "--timeout", value("--timeout"));
    } else if (a == "--trace") {
      cli.opts.trace_path = value("--trace");
    } else if (a == "--trace-cap") {
      cli.opts.trace_cap = static_cast<std::size_t>(
          parse_long(bench, "--trace-cap", value("--trace-cap"), 1));
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", bench, a.c_str());
      usage(bench, 2);
    }
  }
  return cli;
}

int run_figure_main(const std::string& figure_title, const std::vector<Series>& series,
                    const std::vector<int>& cpu_counts, const std::string& default_csv,
                    const Cli& cli) {
  try {
    const FigureResult fr =
        run_figure_driver(figure_title, series, cpu_counts, default_csv, cli.opts);
    std::fprintf(stderr, "%s: %zu point(s), jobs=%d, %.2fs wall%s\n", figure_title.c_str(),
                 fr.results.size(), fr.jobs, fr.wall_seconds,
                 fr.ok() ? "" : " [POISONED POINTS — see report above]");
    return fr.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

// ---- generic named-task pool ----

std::vector<TaskRow> run_tasks(const std::vector<NamedTask>& tasks,
                               const DriverOptions& opt) {
  const OnlyFilter filter = OnlyFilter::parse(opt.only);
  std::vector<std::size_t> picked;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (filter.keep_task(tasks[i].section, tasks[i].name)) picked.push_back(i);
  }
  std::vector<TaskRow> rows(picked.size());
  run_pool(
      picked.size(), opt.jobs,
      [&](std::size_t i) {
        const NamedTask& t = tasks[picked[i]];
        TaskRow& row = rows[i];
        row.section = t.section;
        row.name = t.name;
        row.poisoned = false;
        const Attempt a = run_guarded([&] { row.text = t.fn(); }, opt.timeout_sec);
        if (a.poisoned) {
          row.poisoned = true;
          row.error = a.error;
          row.text.clear();
        }
      },
      [&](std::size_t i) {
        const TaskRow& row = rows[i];
        if (row.poisoned) {
          std::fprintf(stderr, "  [%s] %s POISONED: %s\n", row.section.c_str(),
                       row.name.c_str(), row.error.c_str());
        } else {
          std::fprintf(stderr, "  [%s] %s done\n", row.section.c_str(), row.name.c_str());
        }
      });
  return rows;
}

}  // namespace harness
