// Host-parallel experiment driver.
//
// Every figure in the paper's evaluation is a sweep of independent
// simulation points — (series × cpu-count × trial), each a self-contained
// deterministic Engine run.  The driver shards those points across a pool
// of host worker threads and merges the RunResults deterministically, so a
// serial run and a `--jobs N` run produce bit-identical tables, CSVs and
// simulated-cycle totals.
//
// Why this is safe: after the Profile de-globalization (tm/profile.h) the
// simulator and TM layer hold no process-global mutable state — engines,
// runtimes, virtual-address allocators and audit ledgers are all
// per-Engine/per-Runtime or thread_local — so concurrent points share
// nothing, and each point's simulated cycle count is a pure function of its
// (series, cpus, seed) regardless of which host thread runs it or when.
// Merging is by canonical point order (series-major, then CPU count, then
// trial), never by completion order; progress lines are released in that
// same order.
//
// Hung points: each point may be guarded by a wall-clock deadline
// (sim::Engine::set_host_deadline) enforced inside the simulation scheduler.
// A timed-out point is retried once; a second timeout (or any workload
// exception) marks the point POISONED and the sweep completes without it,
// reporting the poisoned points instead of hanging.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/speedup.h"

namespace harness {

/// Execution options for one figure sweep (see Cli for the flag spelling).
struct DriverOptions {
  int jobs = 1;             ///< host worker threads (clamped to [1, points])
  int trials = 1;           ///< runs per point; trial 0 is the unperturbed seed
  double timeout_sec = 0.0; ///< per-point wall-clock timeout; 0 = none
  std::string only;         ///< "" = all; series-name substring, or a CPU
                            ///< list like "cpus=1,8" / "1,8"
  std::string csv_path;     ///< overrides the figure's default CSV path
  std::string trace_path;   ///< "" = no tracing; else a file prefix — trial 0
                            ///< of every point writes
                            ///< `<prefix><series>_cpus<N>.trace`
  std::size_t trace_cap = 0; ///< per-CPU trace buffer capacity; 0 = default
};

/// The trace file a traced sweep writes for one (series, cpus) point:
/// `<prefix><series>_cpus<N>.trace`, with non-alphanumeric series characters
/// mapped to '_' so every series name is a portable filename.
std::string trace_file_path(const std::string& prefix, const std::string& series,
                            int cpus);

/// Cross-trial cycle statistics for one (series, cpus) point
/// (`--trials N`; trial 0 is the canonical run reported in RunResult).
struct TrialStats {
  int trials = 1;                 ///< surviving (non-poisoned) trials
  std::uint64_t cycles_min = 0;
  std::uint64_t cycles_max = 0;
  double cycles_mean = 0.0;
};

/// A point (or one of its trials) that failed both attempts.
struct PoisonedPoint {
  std::string series;
  int cpus = 0;
  int trial = 0;
  std::string error;
};

struct FigureResult {
  /// Canonical (trial-0) results in point order, poisoned points omitted.
  std::vector<RunResult> results;
  /// Parallel to `results`; all-default when trials == 1.
  std::vector<TrialStats> trial_stats;
  std::vector<PoisonedPoint> poisoned;
  double wall_seconds = 0.0;
  int jobs = 1;  ///< worker threads actually used
  bool ok() const { return poisoned.empty(); }
};

/// Runs the figure's points under `opt`, prints the paper-style speedup
/// table + stats appendix (and the trials appendix when opt.trials > 1),
/// and writes the CSV to opt.csv_path (or `default_csv` when empty; "" for
/// neither).  The FIRST surviving point — first series, first CPU count —
/// is the speedup baseline, exactly as in the serial harness.
FigureResult run_figure_driver(const std::string& figure_title,
                               const std::vector<Series>& series,
                               const std::vector<int>& cpu_counts,
                               const std::string& default_csv,
                               const DriverOptions& opt);

// ---- shared bench CLI (all five figure/ablation binaries) ----

struct Cli {
  DriverOptions opts;  ///< --jobs / --trials / --timeout / --only / --csv
  long ops = -1;       ///< --ops override; -1 = the bench's default

  /// Parses argv.  `--help` prints usage for `bench` and exits 0; an
  /// unknown flag or bad value prints usage and exits 2.
  /// `default_timeout_sec` is the per-point timeout used when the user
  /// passes no --timeout — benches with known slow points (fig4's
  /// high-contention 32-CPU runs) pass a larger default.
  static Cli parse(int argc, char** argv, const char* bench,
                   double default_timeout_sec = 120.0);
};

/// Bench-main convenience: run_figure_driver under cli.opts, then report
/// (points, jobs, wall seconds) on stderr.  Returns the process exit
/// status: 0 on success, 1 if any point was poisoned, 2 on setup errors.
int run_figure_main(const std::string& figure_title,
                    const std::vector<Series>& series,
                    const std::vector<int>& cpu_counts,
                    const std::string& default_csv, const Cli& cli);

// ---- generic named-task pool (bench/ablations) ----

/// An independent simulation task producing one printable row.
struct NamedTask {
  std::string section;  ///< table this row belongs to (printed once, in order)
  std::string name;     ///< row label; `--only` filters on section + name
  std::function<std::string()> fn;  ///< returns the formatted row
};

struct TaskRow {
  std::string section;
  std::string name;
  std::string text;     ///< fn's result ("" when poisoned)
  bool poisoned = false;
  std::string error;
};

/// Runs the tasks on the same pool machinery (jobs / timeout+retry / only
/// filter); returns rows in task order regardless of completion order.
std::vector<TaskRow> run_tasks(const std::vector<NamedTask>& tasks,
                               const DriverOptions& opt);

}  // namespace harness
