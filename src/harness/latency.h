// Fixed-bucket log-scale latency histogram for open-system workloads.
//
// Sojourn times (arrival -> commit, in simulated cycles) span four-plus
// decades once a series saturates, so the buckets are log2-spaced with 8
// sub-buckets per octave (HdrHistogram's layout): values below 16 are exact,
// larger values land in a bucket whose width is 1/8 of its base octave, so a
// reported quantile is at most 12.5% below the true value.  Everything is
// integer arithmetic — recording, merging and quantile extraction are
// bit-deterministic across hosts, which the figure CSVs require.
//
// Histograms are plain mergeable value types: the driver runs every sweep
// point in a shard-local histogram and merges per-CPU (and, for trials,
// per-shard) histograms with operator+= — merge order does not matter.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

namespace harness {

class LatencyHistogram {
 public:
  static constexpr int kLinear = 16;      // values 0..15 recorded exactly
  static constexpr int kSubBuckets = 8;   // per-octave resolution above that
  static constexpr int kBuckets = kLinear + (63 - 4 + 1) * kSubBuckets;  // 496

  void record(std::uint64_t v) {
    ++counts_[index(v)];
    ++total_;
    if (v > max_) max_ = v;
  }

  /// Elementwise merge; order-independent by construction.
  LatencyHistogram& operator+=(const LatencyHistogram& other) {
    for (int i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    if (other.max_ > max_) max_ = other.max_;
    return *this;
  }

  std::uint64_t count() const { return total_; }
  std::uint64_t max() const { return max_; }

  /// The value at quantile `q` in [0, 1]: the lower bound of the first
  /// bucket whose cumulative count reaches q * count().  Returns the exact
  /// maximum for q past the last recorded sample, 0 for an empty histogram.
  std::uint64_t quantile(double q) const {
    if (total_ == 0) return 0;
    const double target = q * static_cast<double>(total_);
    std::uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      cum += counts_[i];
      if (counts_[i] != 0 && static_cast<double>(cum) >= target) {
        // When the quantile selects the final recorded sample (target past
        // total-1), the top bucket's lower bound may undershoot the true
        // maximum; the exact max is tracked, so report it instead.  For any
        // earlier rank the lower bound is the only value that keeps the
        // one-sided "at most 12.5% below" contract — the bucket's upper
        // bound (or max_) can sit above the true quantile.
        const bool selects_last = cum == total_ && i == top_bucket() &&
                                  target > static_cast<double>(total_) - 1.0;
        return selects_last ? std::min(max_, upper_bound(i)) : lower_bound(i);
      }
    }
    return max_;
  }

  std::uint64_t bucket_count(int i) const { return counts_[static_cast<std::size_t>(i)]; }

  static int index(std::uint64_t v) {
    if (v < kLinear) return static_cast<int>(v);
    const int n = std::bit_width(v) - 1;  // position of the MSB, >= 4
    const int sub = static_cast<int>((v >> (n - 3)) & (kSubBuckets - 1));
    return kLinear + (n - 4) * kSubBuckets + sub;
  }

  static std::uint64_t lower_bound(int i) {
    if (i < kLinear) return static_cast<std::uint64_t>(i);
    const int n = 4 + (i - kLinear) / kSubBuckets;
    const int sub = (i - kLinear) % kSubBuckets;
    return (std::uint64_t{1} << n) |
           (static_cast<std::uint64_t>(sub) << (n - 3));
  }

 private:
  static std::uint64_t upper_bound(int i) {
    if (i < kLinear) return static_cast<std::uint64_t>(i);
    const int n = 4 + (i - kLinear) / kSubBuckets;
    return lower_bound(i) + (std::uint64_t{1} << (n - 3)) - 1;
  }

  int top_bucket() const {
    for (int i = kBuckets - 1; i >= 0; --i) {
      if (counts_[i] != 0) return i;
    }
    return -1;
  }

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace harness
