#include "sim/memsys.h"

#include <cassert>
#include <stdexcept>

#include "trace/tracer.h"

namespace sim {

namespace {
thread_local std::uint64_t g_l1_pool_hits = 0;
thread_local std::uint64_t g_l1_pool_misses = 0;
// Engines created/destroyed in sequence on one thread (figure sweeps, the
// spawn benches) reuse one buffer; a small cap covers nested lifetimes.
constexpr std::size_t kL1PoolCap = 4;
}  // namespace

L1PoolStats l1_pool_stats() { return {g_l1_pool_hits, g_l1_pool_misses}; }

std::vector<std::vector<MemSys::Way>>& MemSys::l1_pool() {
  thread_local std::vector<std::vector<Way>> pool;
  return pool;
}

MemSys::MemSys(const Config& cfg, Stats& stats) : cfg_(cfg), stats_(stats) {
  if (cfg.l1_sets == 0 || (cfg.l1_sets & (cfg.l1_sets - 1)) != 0)
    throw std::invalid_argument("MemSys: l1_sets must be a power of two");
  set_mask_ = cfg.l1_sets - 1;
  cpu_stride_ = static_cast<std::size_t>(cfg.l1_sets) * cfg.l1_assoc;
  const std::size_t need = static_cast<std::size_t>(cfg.num_cpus) * cpu_stride_;
  // Recycle a pooled backing buffer when one is big enough: assign() memsets
  // it back to the all-invalid state without any allocator round trip.
  auto& pool = l1_pool();
  for (std::size_t i = pool.size(); i-- > 0;) {
    if (pool[i].capacity() >= need) {
      l1_ = std::move(pool[i]);
      pool[i] = std::move(pool.back());
      pool.pop_back();
      ++g_l1_pool_hits;
      break;
    }
  }
  if (l1_.capacity() < need) ++g_l1_pool_misses;
  l1_.assign(need, Way{});
  spec_ways_.resize(static_cast<std::size_t>(cfg.num_cpus));
}

MemSys::~MemSys() {
  auto& pool = l1_pool();
  if (pool.size() < kL1PoolCap && l1_.capacity() > 0)
    pool.push_back(std::move(l1_));
}

MemSys::Way* MemSys::find(int cpu, LineAddr line) {
  Way* c = l1_of(cpu);
  const std::size_t set = static_cast<std::size_t>(line & set_mask_) * cfg_.l1_assoc;
  for (std::size_t i = 0; i < cfg_.l1_assoc; ++i) {
    Way& w = c[set + i];
    if (w.state != St::I && w.line == line) return &w;
  }
  return nullptr;
}

MemSys::Way& MemSys::victim(int cpu, LineAddr line) {
  Way* c = l1_of(cpu);
  const std::size_t set = static_cast<std::size_t>(line & set_mask_) * cfg_.l1_assoc;
  Way* best = &c[set];
  for (std::size_t i = 0; i < cfg_.l1_assoc; ++i) {
    Way& w = c[set + i];
    if (w.state == St::I) return w;
    if (w.lru < best->lru) best = &w;
  }
  evict(cpu, *best);
  return *best;
}

void MemSys::dir_remove_cpu(LineAddr line, int cpu) {
  Dir* d = dir_.find(line);
  if (d == nullptr) return;
  d->sharers.clear(cpu);
  if (d->owner == cpu) d->owner = -1;
  if (d->sharers.none() && d->owner < 0) dir_.erase(line);
}

void MemSys::evict(int cpu, Way& w) {
  if (w.state == St::I) return;
  // Note: a TCC L1 must not evict speculatively written lines; real hardware
  // would stall or overflow-serialize.  We evict silently and rely on the TM
  // layer's write buffer for values; only timing fidelity is lost, and the
  // benchmarks' write sets fit in L1 anyway.
  dir_remove_cpu(w.line, cpu);
  w.state = St::I;
  w.spec_dirty = false;
}

void MemSys::drop_from(int cpu, LineAddr line) {
  if (Way* w = find(cpu, line)) {
    w->state = St::I;
    w->spec_dirty = false;
  }
  dir_remove_cpu(line, cpu);
}

std::uint64_t MemSys::plain_load(int cpu, std::uintptr_t addr, std::uint64_t t) {
  stats_.cpu(cpu).loads++;
  const LineAddr line = line_of(addr);
  if (Way* w = find(cpu, line)) {
    w->lru = ++lru_tick_;
    return t + cfg_.l1_hit_cycles;
  }
  stats_.cpu(cpu).l1_misses++;
  if (tracer_ != nullptr)
    tracer_->on_miss(cpu, t, line, trace::MissClass::kPlainLoad);
  // Work on a copy: victim() below may evict other lines, which mutates the
  // directory table and would invalidate a live Dir pointer.
  Dir d = *dir_.try_emplace(line, Dir{}).first;
  std::uint32_t occ = cfg_.bus_xfer_cycles;
  if (d.owner >= 0 && d.owner != cpu) {
    // Another CPU holds the line exclusively (E or M): downgrade it to S,
    // paying a writeback only if the copy was dirty.
    if (Way* ow = find(d.owner, line)) {
      if (ow->state == St::M) occ += cfg_.writeback_cycles;
      ow->state = St::S;
    }
    d.sharers.set(d.owner);
    d.owner = -1;
  }
  const std::uint64_t done = bus_.transact(t, cfg_.bus_arb_cycles, occ) + cfg_.l2_hit_cycles;
  Way& w = victim(cpu, line);
  w.line = line;
  w.lru = ++lru_tick_;
  w.spec_dirty = false;
  w.state = d.sharers.none() ? St::E : St::S;
  if (w.state == St::E) d.owner = cpu;
  d.sharers.set(cpu);
  *dir_.try_emplace(line, Dir{}).first = d;
  return done;
}

std::uint64_t MemSys::plain_store(int cpu, std::uintptr_t addr, std::uint64_t t) {
  stats_.cpu(cpu).stores++;
  const LineAddr line = line_of(addr);
  Way* w = find(cpu, line);
  if (w != nullptr && w->state == St::M) {
    w->lru = ++lru_tick_;
    return t + cfg_.l1_hit_cycles;
  }
  if (w != nullptr && w->state == St::E) {
    w->state = St::M;
    w->lru = ++lru_tick_;
    dir_.try_emplace(line, Dir{}).first->owner = cpu;
    return t + cfg_.l1_hit_cycles;
  }
  // Upgrade (S) or read-for-ownership (miss): invalidate all other copies.
  // Batched like invalidate_copies: the entry is overwritten wholesale at
  // the end, so the per-sharer directory bookkeeping drop_from would do is
  // dead work — only the L1 ways need dropping.  An exclusive owner is
  // always in the sharer mask (plain_load/plain_store maintain that), so
  // the walk below covers it; its writeback charge is read off first.
  Dir d{};
  if (const Dir* p = dir_.find(line)) d = *p;
  std::uint32_t occ = (w != nullptr) ? 0 : cfg_.bus_xfer_cycles;
  if (d.owner >= 0 && d.owner != cpu) {
    if (Way* ow = find(d.owner, line); ow != nullptr && ow->state == St::M)
      occ += cfg_.writeback_cycles;
  }
  d.sharers.for_each_except(cpu, [&](int c) {
    if (Way* ow = find(c, line)) {
      ow->state = St::I;
      ow->spec_dirty = false;
    }
  });
  const bool was_miss = (w == nullptr);
  if (was_miss) {
    stats_.cpu(cpu).l1_misses++;
    if (tracer_ != nullptr)
      tracer_->on_miss(cpu, t, line, trace::MissClass::kPlainStore);
  }
  const std::uint64_t done =
      bus_.transact(t, cfg_.bus_arb_cycles, occ) + (was_miss ? cfg_.l2_hit_cycles : 0);
  if (w == nullptr) {
    w = &victim(cpu, line);
    w->line = line;
  }
  w->state = St::M;
  w->spec_dirty = false;
  w->lru = ++lru_tick_;
  *dir_.try_emplace(line, Dir{}).first = Dir{CpuMask::one(cpu), cpu};
  return done;
}

std::uint64_t MemSys::tx_load(int cpu, std::uintptr_t addr, std::uint64_t t) {
  stats_.cpu(cpu).loads++;
  const LineAddr line = line_of(addr);
  if (Way* w = find(cpu, line)) {
    w->lru = ++lru_tick_;
    return t + cfg_.l1_hit_cycles;
  }
  stats_.cpu(cpu).l1_misses++;
  if (tracer_ != nullptr)
    tracer_->on_miss(cpu, t, line, trace::MissClass::kTxLoad);
  const std::uint64_t done =
      bus_.transact(t, cfg_.bus_arb_cycles, cfg_.bus_xfer_cycles) + cfg_.l2_hit_cycles;
  Way& w = victim(cpu, line);
  w.line = line;
  w.state = St::S;  // "valid" in TCC mode
  w.spec_dirty = false;
  w.lru = ++lru_tick_;
  dir_.try_emplace(line, Dir{}).first->sharers.set(cpu);
  return done;
}

std::uint64_t MemSys::tx_store(int cpu, std::uintptr_t addr, std::uint64_t t) {
  stats_.cpu(cpu).stores++;
  const LineAddr line = line_of(addr);
  Way* w = find(cpu, line);
  std::uint64_t done = t + cfg_.l1_hit_cycles;
  if (w == nullptr) {
    // Write-allocate: fetch the line so commit can merge into it.
    stats_.cpu(cpu).l1_misses++;
    if (tracer_ != nullptr)
      tracer_->on_miss(cpu, t, line, trace::MissClass::kTxStore);
    done = bus_.transact(t, cfg_.bus_arb_cycles, cfg_.bus_xfer_cycles) + cfg_.l2_hit_cycles;
    w = &victim(cpu, line);
    w->line = line;
    w->state = St::S;
    dir_.try_emplace(line, Dir{}).first->sharers.set(cpu);
  }
  if (!w->spec_dirty) {
    w->spec_dirty = true;  // buffered in cache, no bus traffic until commit
    spec_ways_[static_cast<std::size_t>(cpu)].push_back(
        static_cast<std::uint32_t>(w - l1_of(cpu)));
  }
  w->lru = ++lru_tick_;
  return done;
}

std::uint64_t MemSys::tcc_commit(int cpu, std::size_t write_lines, std::uint64_t t) {
  const std::uint32_t occ =
      static_cast<std::uint32_t>(write_lines) * cfg_.commit_line_cycles;
  std::uint64_t done = bus_.transact(t, cfg_.commit_arb_cycles, occ);
  // Mark own written lines as committed (no longer speculative).
  Way* c = l1_of(cpu);
  auto& sw = spec_ways_[static_cast<std::size_t>(cpu)];
  for (const std::uint32_t i : sw) c[i].spec_dirty = false;
  sw.clear();
  return done;
}

void MemSys::invalidate_copies(int committer, LineAddr line) {
  Dir* d = dir_.find(line);
  if (d == nullptr) return;
  // Batched drop: one directory probe for the whole broadcast.  The L1 way
  // invalidations never touch dir_, so holding d across them is safe; the
  // final sharer state is written back (or the entry erased) exactly once,
  // instead of a find+erase round trip per sharer (drop_from).
  d->sharers.for_each_except(committer, [&](int c) {
    if (Way* w = find(c, line)) {
      w->state = St::I;
      w->spec_dirty = false;
    }
  });
  const bool keep = d->sharers.test(committer);
  d->sharers.reset();
  if (keep) d->sharers.set(committer);
  if (d->owner != committer) d->owner = -1;
  if (!keep && d->owner < 0) dir_.erase(line);
}

void MemSys::abort_clear_speculative(int cpu) {
  Way* c = l1_of(cpu);
  auto& sw = spec_ways_[static_cast<std::size_t>(cpu)];
  for (const std::uint32_t i : sw) {
    Way& w = c[i];
    if (w.state != St::I && w.spec_dirty) {
      dir_remove_cpu(w.line, cpu);
      w.state = St::I;
      w.spec_dirty = false;
    }
  }
  sw.clear();
}

}  // namespace sim
