// sim::FlatMap — the open-addressing hash table behind every TM hot path.
//
// Replaces std::unordered_map in the per-access structures (transaction
// read/write sets, the memory-system line directory): a SwissTable-style
// two-array layout probed a 16-slot group at a time.  A byte array of 7-bit
// hash fragments (control bytes) runs ahead of the slot array, so a probe
// compares 16 candidate fragments in one SSE2 cmpeq/movemask (or a
// two-word SWAR fallback, see TXCC_NO_SIMD below) and touches the wide slot
// array only for fragment hits.  Misses usually terminate without loading a
// single slot, and collision chains cost one group scan instead of a
// slot-by-slot walk.
//
// The probe SEQUENCE is still plain linear probing over slot indices —
// insertion goes to the first empty slot at or after home(key), exactly as
// the pre-SIMD implementation placed it — so the physical layout, the
// for_each visit order, and the backward-shift erase are all bit-identical
// to the scalar table.  The control bytes are a pure acceleration structure.
//
// Two properties are load-bearing for the TM runtime:
//
//  * O(1) generation-stamped clear() — pooled transactions reset their logs
//    between attempts by bumping a generation counter, never by touching
//    the (possibly large) slot array.  Occupancy lives in the control
//    bytes, so the generation is per GROUP: a group whose stamp is stale is
//    logically all-empty and its control bytes are re-materialized lazily
//    on the first insert that probes it.
//  * tombstone-free erase() (backward-shift deletion) — closed-nested frame
//    rollback erases exactly the keys its positional logs name, and probe
//    sequences stay dense afterwards, so a table that aborts frames all day
//    never degrades.  The shift moves control bytes in lockstep with slots
//    and crosses group boundaries freely (groups are alignment, not probe
//    windows' limits).
//
// K and V must be trivially copyable; K is compared with ==.  Iteration
// (for_each) visits live slots in ascending slot order — callers must not
// let that order affect simulated timing.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

// TXCC_NO_SIMD (CMake option) forces the portable SWAR fallback; otherwise
// SSE2 group probes are used whenever the target has them (any x86-64).
// Both paths compute identical bitmasks, so the choice is invisible to
// callers and to simulated timing.
#if !defined(TXCC_NO_SIMD) && defined(__SSE2__)
#define TXCC_FLATMAP_SSE2 1
#include <emmintrin.h>
#endif

namespace sim {

/// 64-bit finalizer-style mixer (splitmix64 tail): the hash behind FlatMap
/// probing and the TM write-set Bloom summary.
inline std::uint64_t hash_u64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

namespace detail {

/// Control-byte group kernel: 16 bytes -> two 16-bit masks.  A control byte
/// is either kCtrlEmpty (0x80, high bit set) or the occupant's 7-bit hash
/// fragment (high bit clear), so "empty" is exactly the byte's sign bit.
inline constexpr std::uint8_t kCtrlEmpty = 0x80;
inline constexpr std::size_t kGroupSlots = 16;

struct GroupBits {
  std::uint32_t match;  // bit o: ctrl[o] == fragment (may hold rare SWAR
                        // false positives next to true matches; callers
                        // confirm with a key compare anyway)
  std::uint32_t empty;  // bit o: ctrl[o] is empty (exact in both paths)
};

#if defined(TXCC_FLATMAP_SSE2)

inline GroupBits group_probe(const std::uint8_t* ctrl, std::uint8_t frag) {
  const __m128i g = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl));
  const __m128i eq = _mm_cmpeq_epi8(g, _mm_set1_epi8(static_cast<char>(frag)));
  return {static_cast<std::uint32_t>(_mm_movemask_epi8(eq)),
          static_cast<std::uint32_t>(_mm_movemask_epi8(g))};
}

inline std::uint32_t group_empty_bits(const std::uint8_t* ctrl) {
  const __m128i g = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl));
  return static_cast<std::uint32_t>(_mm_movemask_epi8(g));
}

#else  // SWAR fallback: two uint64 words per group, no vector ISA needed.

/// Gathers the high bit of each byte of `w` into the low 8 bits of the
/// result (the classic movemask emulation: isolate the sign bits, then one
/// multiply accumulates bit 8i+7 into bit 56+i).
inline std::uint32_t swar_high_bits(std::uint64_t w) {
  const std::uint64_t hi = (w >> 7) & 0x0101010101010101ULL;
  return static_cast<std::uint32_t>((hi * 0x0102040810204080ULL) >> 56);
}

/// Per-byte w == frag, reported in the bytes' high bits (hasvalue via
/// haszero).  A borrow out of a true-match byte can set the bit of the byte
/// directly above it (false positive); the key compare filters those, and a
/// true match is never missed.
inline std::uint64_t swar_match_word(std::uint64_t w, std::uint8_t frag) {
  const std::uint64_t x = w ^ (0x0101010101010101ULL * frag);
  return (x - 0x0101010101010101ULL) & ~x & 0x8080808080808080ULL;
}

inline GroupBits group_probe(const std::uint8_t* ctrl, std::uint8_t frag) {
  std::uint64_t lo, hi;
  std::memcpy(&lo, ctrl, 8);
  std::memcpy(&hi, ctrl + 8, 8);
  const std::uint32_t match = swar_high_bits(swar_match_word(lo, frag)) |
                              (swar_high_bits(swar_match_word(hi, frag)) << 8);
  const std::uint32_t empty = swar_high_bits(lo) | (swar_high_bits(hi) << 8);
  return {match, empty};
}

inline std::uint32_t group_empty_bits(const std::uint8_t* ctrl) {
  std::uint64_t lo, hi;
  std::memcpy(&lo, ctrl, 8);
  std::memcpy(&hi, ctrl + 8, 8);
  return swar_high_bits(lo) | (swar_high_bits(hi) << 8);
}

#endif  // TXCC_FLATMAP_SSE2

}  // namespace detail

template <class K, class V>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<K>, "FlatMap requires trivially copyable keys");
  static_assert(std::is_trivially_copyable_v<V>, "FlatMap requires trivially copyable values");

 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Forgets every entry in O(1) by bumping the generation stamp: every
  /// group's stamp goes stale at once, and stale groups read as all-empty.
  void clear() {
    size_ = 0;
    if (++gen_ == 0) {  // wraparound: lazily-stale groups would look live
      std::fill(ggen_.begin(), ggen_.end(), 0u);
      gen_ = 1;
    }
  }

  /// Pointer to the value for `key`, or nullptr.
  V* find(K key) {
    if (size_ == 0) return nullptr;
    const std::size_t i = probe(key);
    return i == kNpos ? nullptr : &slots_[i].val;
  }
  const V* find(K key) const { return const_cast<FlatMap*>(this)->find(key); }

  /// Inserts (key, init) if absent.  Returns (value slot, inserted?).
  /// The returned pointer is valid until the next insert/erase/clear.
  std::pair<V*, bool> try_emplace(K key, V init) {
    if (size_ + 1 > cap_threshold()) grow();
    const std::uint64_t h = hash_u64(static_cast<std::uint64_t>(key));
    const std::uint8_t frag = frag_of(h);
    const std::size_t start = static_cast<std::size_t>(h) & mask_;
    const std::size_t ngroups = group_count();
    std::size_t g = start / detail::kGroupSlots;
    // Home-slot fast path: at the TM runtime's load factors the home slot
    // is almost always the answer (a hit on the key, or empty = insert
    // here), and three scalar loads beat the vector-kernel setup.  Probe
    // chains fall through to the group loop.
    if (ggen_[g] == gen_) {
      const std::uint8_t c0 = ctrl_[start];
      if (c0 == frag && slots_[start].key == key) return {&slots_[start].val, false};
      if (c0 == detail::kCtrlEmpty) {
        ctrl_[start] = frag;
        slots_[start].key = key;
        slots_[start].val = init;
        ++size_;
        return {&slots_[start].val, true};
      }
    }
    std::uint32_t valid = (0xffffu << (start & (detail::kGroupSlots - 1))) & 0xffffu;
    for (;;) {
      std::size_t at;
      if (ggen_[g] == gen_) {
        const detail::GroupBits gb =
            detail::group_probe(&ctrl_[g * detail::kGroupSlots], frag);
        std::uint32_t m = gb.match & valid;
        const std::uint32_t e = gb.empty & valid;
        if (e != 0) m &= (e & (0u - e)) - 1;  // candidates before first empty
        while (m != 0) {
          Slot& s = slots_[g * detail::kGroupSlots +
                           static_cast<std::size_t>(std::countr_zero(m))];
          if (s.key == key) return {&s.val, false};
          m &= m - 1;
        }
        if (e == 0) {  // probe chain continues into the next group
          g = (g + 1 == ngroups) ? 0 : g + 1;
          valid = 0xffffu;
          continue;
        }
        at = g * detail::kGroupSlots + static_cast<std::size_t>(std::countr_zero(e));
      } else {
        // Stale group: logically all-empty.  Materialize its control bytes
        // for the current generation, then insert at the first probed slot.
        std::memset(&ctrl_[g * detail::kGroupSlots], detail::kCtrlEmpty,
                    detail::kGroupSlots);
        ggen_[g] = gen_;
        at = g * detail::kGroupSlots + static_cast<std::size_t>(std::countr_zero(valid));
      }
      ctrl_[at] = frag;
      slots_[at].key = key;
      slots_[at].val = init;
      ++size_;
      return {&slots_[at].val, true};
    }
  }

  /// Removes `key` with backward-shift deletion (no tombstones).  Control
  /// bytes shift in lockstep with slots, across group boundaries.
  bool erase(K key) {
    if (size_ == 0) return false;
    std::size_t i = probe(key);
    if (i == kNpos) return false;
    // Shift later probe-chain members back over the gap.
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!occupied(j)) break;
      const std::size_t h = home(slots_[j].key);
      const std::size_t dist = (j - h) & mask_;  // occupant's probe distance
      const std::size_t gap = (j - i) & mask_;   // distance back to the gap
      if (dist >= gap) {
        slots_[i] = slots_[j];
        ctrl_[i] = ctrl_[j];
        i = j;
      }
    }
    ctrl_[i] = detail::kCtrlEmpty;
    --size_;
    return true;
  }

  /// Visits every live (key, value) pair in ascending slot order;
  /// `fn(K, const V&)`.  Stale groups are skipped 16 slots at a time.
  template <class F>
  void for_each(F&& fn) const {
    if (size_ == 0) return;
    const std::size_t ngroups = group_count();
    for (std::size_t g = 0; g < ngroups; ++g) {
      if (ggen_[g] != gen_) continue;
      std::uint32_t live =
          ~detail::group_empty_bits(&ctrl_[g * detail::kGroupSlots]) & 0xffffu;
      while (live != 0) {
        const Slot& s = slots_[g * detail::kGroupSlots +
                               static_cast<std::size_t>(std::countr_zero(live))];
        fn(s.key, s.val);
        live &= live - 1;
      }
    }
  }

  /// Test hook: rebases the generation counter (preserving every entry's
  /// liveness) so the uint32 wraparound path of clear() can be reached
  /// without four billion clears.  Not for production callers.
  void set_generation_for_test(std::uint32_t g) {
    if (g == 0) g = 1;  // 0 is reserved for "never stamped"
    for (std::uint32_t& s : ggen_) s = (s == gen_) ? g : g - 1;
    gen_ = g;
  }

 private:
  struct Slot {
    K key;
    V val;
  };

  static constexpr std::size_t kMinCap = 16;
  static constexpr std::size_t kNpos = ~std::size_t{0};

  /// 7-bit control fragment: the hash's top bits, independent of the low
  /// bits that pick the home slot, so same-slot colliders usually differ.
  static std::uint8_t frag_of(std::uint64_t h) {
    return static_cast<std::uint8_t>(h >> 57);
  }

  std::size_t home(K key) const {
    return static_cast<std::size_t>(hash_u64(static_cast<std::uint64_t>(key))) & mask_;
  }
  bool occupied(std::size_t i) const {
    return ggen_[i / detail::kGroupSlots] == gen_ && ctrl_[i] < detail::kCtrlEmpty;
  }
  std::size_t group_count() const { return slots_.size() / detail::kGroupSlots; }
  std::size_t cap_threshold() const { return slots_.size() - slots_.size() / 4; }  // 75%

  /// Slot index of `key`, or kNpos.  One group kernel per 16 candidate
  /// slots; a stale group or an empty byte terminates the chain.
  std::size_t probe(K key) const {
    const std::uint64_t h = hash_u64(static_cast<std::uint64_t>(key));
    const std::uint8_t frag = frag_of(h);
    const std::size_t start = static_cast<std::size_t>(h) & mask_;
    const std::size_t ngroups = group_count();
    std::size_t g = start / detail::kGroupSlots;
    // Home-slot fast path (see try_emplace): hit or definite miss without
    // touching the vector kernel.
    if (ggen_[g] != gen_) return kNpos;
    {
      const std::uint8_t c0 = ctrl_[start];
      if (c0 == frag && slots_[start].key == key) return start;
      if (c0 == detail::kCtrlEmpty) return kNpos;
    }
    std::uint32_t valid = (0xffffu << (start & (detail::kGroupSlots - 1))) & 0xffffu;
    for (;;) {
      if (ggen_[g] != gen_) return kNpos;  // stale group: chain ends
      const detail::GroupBits gb =
          detail::group_probe(&ctrl_[g * detail::kGroupSlots], frag);
      std::uint32_t m = gb.match & valid;
      const std::uint32_t e = gb.empty & valid;
      if (e != 0) m &= (e & (0u - e)) - 1;  // candidates before first empty
      while (m != 0) {
        const std::size_t i =
            g * detail::kGroupSlots + static_cast<std::size_t>(std::countr_zero(m));
        if (slots_[i].key == key) return i;
        m &= m - 1;
      }
      if (e != 0) return kNpos;  // an empty slot before any match: absent
      g = (g + 1 == ngroups) ? 0 : g + 1;
      valid = 0xffffu;
    }
  }

  void grow() {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<std::uint32_t> old_ggen = std::move(ggen_);
    const std::uint32_t old_gen = gen_;
    const std::size_t new_cap = old_slots.empty() ? kMinCap : old_slots.size() * 2;
    slots_.assign(new_cap, Slot{});
    ctrl_.assign(new_cap, detail::kCtrlEmpty);
    ggen_.assign(new_cap / detail::kGroupSlots, 1u);
    mask_ = new_cap - 1;
    gen_ = 1;
    size_ = 0;
    // Reinsert in ascending old-slot order: reproduces exactly the layout a
    // scalar first-empty-at-or-after-home rebuild would produce.
    for (std::size_t g = 0; g * detail::kGroupSlots < old_slots.size(); ++g) {
      if (old_ggen[g] != old_gen) continue;
      std::uint32_t live =
          ~detail::group_empty_bits(&old_ctrl[g * detail::kGroupSlots]) & 0xffffu;
      while (live != 0) {
        const std::size_t oi = g * detail::kGroupSlots +
                               static_cast<std::size_t>(std::countr_zero(live));
        live &= live - 1;
        const Slot& s = old_slots[oi];
        const std::uint64_t h = hash_u64(static_cast<std::uint64_t>(s.key));
        std::size_t i = static_cast<std::size_t>(h) & mask_;
        while (ctrl_[i] < detail::kCtrlEmpty) i = (i + 1) & mask_;
        ctrl_[i] = frag_of(h);
        slots_[i] = s;
        ++size_;
      }
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> ctrl_;   // 7-bit fragments / kCtrlEmpty, per slot
  std::vector<std::uint32_t> ggen_;  // per 16-slot group: live iff == gen_
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint32_t gen_ = 1;
};

}  // namespace sim
