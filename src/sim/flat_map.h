// sim::FlatMap — the open-addressing hash table behind every TM hot path.
//
// Replaces std::unordered_map in the per-access structures (transaction
// read/write sets, the memory-system line directory): one flat slot array,
// power-of-two capacity, linear probing, so a lookup is one multiply plus a
// short scan of contiguous memory instead of a pointer chase through
// heap-allocated nodes.
//
// Two properties are load-bearing for the TM runtime:
//
//  * O(1) generation-stamped clear() — pooled transactions reset their logs
//    between attempts by bumping a generation counter, never by touching
//    the (possibly large) slot array;
//  * tombstone-free erase() (backward-shift deletion) — closed-nested frame
//    rollback erases exactly the keys its positional logs name, and probe
//    sequences stay dense afterwards, so a table that aborts frames all day
//    never degrades.
//
// K and V must be trivially copyable; K is compared with ==.  Iteration
// (for_each) visits live slots in unspecified order — callers must not let
// that order affect simulated timing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace sim {

/// 64-bit finalizer-style mixer (splitmix64 tail): the hash behind FlatMap
/// probing and the TM write-set Bloom summary.
inline std::uint64_t hash_u64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

template <class K, class V>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<K>, "FlatMap requires trivially copyable keys");
  static_assert(std::is_trivially_copyable_v<V>, "FlatMap requires trivially copyable values");

 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Forgets every entry in O(1) by bumping the generation stamp.
  void clear() {
    size_ = 0;
    if (++gen_ == 0) {  // wraparound: lazily-stale slots would look live
      for (Slot& s : slots_) s.gen = 0;
      gen_ = 1;
    }
  }

  /// Pointer to the value for `key`, or nullptr.
  V* find(K key) {
    if (size_ == 0) return nullptr;
    std::size_t i = home(key);
    while (occupied(i)) {
      if (slots_[i].key == key) return &slots_[i].val;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const V* find(K key) const { return const_cast<FlatMap*>(this)->find(key); }

  /// Inserts (key, init) if absent.  Returns (value slot, inserted?).
  /// The returned pointer is valid until the next insert/erase/clear.
  std::pair<V*, bool> try_emplace(K key, V init) {
    if (size_ + 1 > cap_threshold()) grow();
    std::size_t i = home(key);
    while (occupied(i)) {
      if (slots_[i].key == key) return {&slots_[i].val, false};
      i = (i + 1) & mask_;
    }
    slots_[i].key = key;
    slots_[i].val = init;
    slots_[i].gen = gen_;
    ++size_;
    return {&slots_[i].val, true};
  }

  /// Removes `key` with backward-shift deletion (no tombstones).
  bool erase(K key) {
    if (size_ == 0) return false;
    std::size_t i = home(key);
    for (;;) {
      if (!occupied(i)) return false;
      if (slots_[i].key == key) break;
      i = (i + 1) & mask_;
    }
    // Shift later probe-chain members back over the gap.
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!occupied(j)) break;
      const std::size_t h = home(slots_[j].key);
      const std::size_t dist = (j - h) & mask_;  // occupant's probe distance
      const std::size_t gap = (j - i) & mask_;   // distance back to the gap
      if (dist >= gap) {
        slots_[i] = slots_[j];
        i = j;
      }
    }
    slots_[i].gen = 0;  // gen_ is always >= 1, so 0 means empty
    --size_;
    return true;
  }

  /// Visits every live (key, value) pair; `fn(K, const V&)`.
  template <class F>
  void for_each(F&& fn) const {
    if (size_ == 0) return;
    for (const Slot& s : slots_) {
      if (s.gen == gen_) fn(s.key, s.val);
    }
  }

 private:
  struct Slot {
    K key;
    V val;
    std::uint32_t gen = 0;  // live iff == table generation
  };

  static constexpr std::size_t kMinCap = 16;

  std::size_t home(K key) const {
    return static_cast<std::size_t>(hash_u64(static_cast<std::uint64_t>(key))) & mask_;
  }
  bool occupied(std::size_t i) const { return slots_[i].gen == gen_; }
  std::size_t cap_threshold() const { return slots_.size() - slots_.size() / 4; }  // 75%

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::uint32_t old_gen = gen_;
    const std::size_t new_cap = old.empty() ? kMinCap : old.size() * 2;
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    gen_ = 1;
    size_ = 0;
    for (const Slot& s : old) {
      if (s.gen != old_gen) continue;
      std::size_t i = home(s.key);
      while (occupied(i)) i = (i + 1) & mask_;
      slots_[i].key = s.key;
      slots_[i].val = s.val;
      slots_[i].gen = gen_;
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint32_t gen_ = 1;
};

}  // namespace sim
