// Simulator configuration: CPU count and cycle-level timing parameters.
//
// The defaults follow the flavour of CMP the paper simulated (TCC on an
// execution-driven CMP): CPI 1.0 for non-memory instructions, timed L1,
// a shared L2 behind a snooping bus, and commit bandwidth proportional to
// write-set size.  Every knob is overridable per benchmark.
#pragma once

#include <cstdint>

namespace sim {

/// Global execution mode of a simulation run.
enum class Mode : std::uint8_t {
  kLock,  ///< MESI coherence; synchronization via sim::Mutex ("Java" runs)
  kTcc,   ///< TCC-style lazy transactional execution ("Atomos" runs)
};

/// All timing/topology parameters of one simulation.
struct Config {
  /// Hard upper bound on num_cpus: the single source of truth every
  /// CPU-indexed bitmask in the simulator (reader directory, MESI sharer
  /// sets) is sized from.  Raising it only costs wider mask walks, which
  /// stay O(set bits) via countr_zero word-skipping.
  static constexpr int kMaxCpus = 128;

  int num_cpus = 8;
  Mode mode = Mode::kTcc;

  /// Scheduler slack: a virtual CPU may run ahead of the globally minimal
  /// clock by this many cycles before yielding.  0 = exact interleaving.
  std::uint64_t slack = 0;

  // --- memory hierarchy timing (cycles) ---
  std::uint32_t l1_hit_cycles = 1;
  std::uint32_t l2_hit_cycles = 12;      ///< latency of an L1 miss served by L2
  std::uint32_t bus_arb_cycles = 3;      ///< bus arbitration before any transaction
  std::uint32_t bus_xfer_cycles = 4;     ///< bus occupancy per 64B line transfer
  std::uint32_t writeback_cycles = 4;    ///< extra occupancy when a dirty copy intervenes

  // --- L1 geometry ---
  std::uint32_t l1_sets = 128;           ///< 128 sets * 4 ways * 64B = 32 KiB
  std::uint32_t l1_assoc = 4;

  // --- TCC commit/violation timing ---
  std::uint32_t txn_begin_cycles = 2;    ///< register-checkpoint cost
  std::uint32_t commit_arb_cycles = 5;   ///< commit-token arbitration
  std::uint32_t commit_line_cycles = 4;  ///< broadcast occupancy per written line
  std::uint32_t violation_cycles = 40;   ///< flush/restart penalty on violation

  // --- semantic-layer cost model (host-side lock tables / store buffers) ---
  std::uint32_t sem_op_cycles = 12;      ///< one semantic-lock / store-buffer op

  // --- host-deadline supervision (wall-clock, never affects simulated time) -
  /// The host deadline (Engine::set_host_deadline) is polled once every
  /// (deadline_poll_mask + 1) scheduling decisions; must be 2^k - 1.
  std::uint32_t deadline_poll_mask = 511;
  /// With a deadline armed, no fiber is handed a run budget of more than
  /// this many cycles past its own clock, so even a sole runnable fiber
  /// spinning in tick() re-enters the scheduler (where the deadline is
  /// polled).  Capping only inserts extra yields; simulated clocks are
  /// unaffected.
  std::uint64_t deadline_quantum = 65536;

  std::uint64_t seed = 1;                ///< workload RNG seed (determinism)

  static constexpr std::uint32_t kLineBytes = 64;
  static constexpr std::uint32_t kLineShift = 6;
};

}  // namespace sim
