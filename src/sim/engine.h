// Execution-driven CMP simulation engine.
//
// One worker (fiber) per virtual CPU.  The scheduler always advances the
// runnable CPU with the smallest virtual clock; because only one fiber runs
// at a time on the host, the other CPUs' clocks are frozen while it runs, so
// a CPU can safely execute until its clock passes the snapshot of the
// minimum other clock (plus configurable slack).  The interleaving of
// shared-memory events is therefore globally time-ordered and fully
// deterministic given (Config, seed).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/config.h"
#include "sim/fiber.h"
#include "sim/memsys.h"
#include "sim/stats.h"

namespace sim {

/// Thrown out of Engine::run() when the host wall-clock deadline armed via
/// Engine::set_host_deadline expires.  All worker fibers have been unwound
/// (their RAII state released) before this escapes, so the caller may simply
/// destroy the Engine and retry with a fresh one — the harness driver uses
/// this for its per-point timeout instead of abandoning host threads.
struct SimTimeout : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Pluggable scheduling-decision hook (txmc's entry point into the engine).
///
/// When installed via Engine::set_scheduler_hook, pick() is consulted at
/// every scheduling decision with the runnable CPU ids in ascending order
/// (never empty).  Returning a CPU id runs that fiber for ONE quantum: its
/// run limit is pinned to its current clock, so it yields back at its next
/// timed event — the granularity a model checker needs to interleave at
/// every step.  Returning kUseDefault applies the engine's own min-clock
/// policy and run-limit computation for this decision, bit-identical to
/// running with no hook at all (the golden-cycle property regression tests
/// pin).
///
/// The hook runs on the scheduler (host) side, never on a worker fiber; it
/// must not call back into the engine's worker API.
class SchedulerHook {
 public:
  static constexpr int kUseDefault = -1;

  virtual ~SchedulerHook() = default;

  /// Chooses the next CPU to run, or kUseDefault for the engine policy.
  /// Returning an id that is not in `runnable` is a logic error.
  virtual int pick(const std::vector<int>& runnable) = 0;
};

/// One virtual CPU: clock, scheduling state, worker fiber.
class Cpu {
 public:
  enum class State : std::uint8_t { kIdle, kRunnable, kBlocked, kDone };

  int id() const { return id_; }
  std::uint64_t clock() const { return clock_; }
  State state() const { return state_; }

 private:
  friend class Engine;
  int id_ = -1;
  std::uint64_t clock_ = 0;
  State state_ = State::kIdle;
  std::unique_ptr<Fiber> fiber_;
};

/// The simulation engine.  Typical use:
///
///   sim::Config cfg;   cfg.num_cpus = 8;  cfg.mode = sim::Mode::kTcc;
///   sim::Engine eng(cfg);
///   for (int i = 0; i < 8; ++i) eng.spawn([&]{ worker(i); });
///   eng.run();
///   // eng.elapsed_cycles(), eng.stats() ...
class Engine {
 public:
  explicit Engine(const Config& cfg);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a worker on the next free virtual CPU (at most one per CPU,
  /// mirroring the paper's thread-per-CPU experiments).
  void spawn(std::function<void()> work);

  /// Runs all workers to completion.  Throws on virtual deadlock, or
  /// SimTimeout if this thread's host deadline (set_host_deadline) expires.
  void run();

  /// Arms a host wall-clock deadline for simulations run()ing on the calling
  /// host thread.  When it expires, run() unwinds every worker fiber and
  /// throws SimTimeout.  The deadline is thread-local (each harness worker
  /// thread guards its own point) and sticky across Engines until cleared.
  static void set_host_deadline(std::chrono::steady_clock::time_point t) {
    host_deadline_ = t;
    host_deadline_armed_ = true;
  }
  static void clear_host_deadline() { host_deadline_armed_ = false; }

  /// Simulated duration: max CPU clock at completion.
  std::uint64_t elapsed_cycles() const;

  const Config& config() const { return cfg_; }
  Stats& stats() { return stats_; }
  MemSys& memsys() { return mem_; }

  /// Attaches/detaches the txtrace event tracer (owned by the TM runtime).
  /// Pure observation: attaching a tracer never changes simulated cycles.
  void set_tracer(trace::Tracer* t) {
    tracer_ = t;
    mem_.set_tracer(t);
  }
  trace::Tracer* tracer() const { return tracer_; }

  /// Installs (or clears, with nullptr) the scheduling-decision hook.  Not
  /// owned; must outlive the run.  May only change while no run is active.
  void set_scheduler_hook(SchedulerHook* h) {
    if (running_) throw std::logic_error("Engine::set_scheduler_hook during run()");
    hook_ = h;
  }
  SchedulerHook* scheduler_hook() const { return hook_; }

  /// Virtual clock of `cpu` (scheduler-side observation, e.g. a hook
  /// implementing its own clock-aware policy).
  std::uint64_t cpu_clock(int cpu) const {
    return cpus_[static_cast<std::size_t>(cpu)].clock_;
  }

  // ---- API usable from inside worker fibers ----

  /// The engine whose run() is active on this thread (never null inside a
  /// worker; throws otherwise).
  static Engine& get() {
    if (tls_engine_ == nullptr) throw_no_engine();
    return *tls_engine_;
  }
  /// True if a simulation is running on this thread *and* we are inside a
  /// worker fiber (as opposed to e.g. benchmark setup code).
  static bool in_worker() {
    return tls_engine_ != nullptr && tls_engine_->current_cpu_ >= 0;
  }
  /// The active engine, or nullptr outside run().  Lets hot callers (e.g.
  /// Shared<T>) pay one thread-local load instead of three.
  static Engine* current_or_null() { return tls_engine_; }
  /// True if the calling code is on a worker fiber of *this* engine.
  bool on_worker_fiber() const { return current_cpu_ >= 0; }

  /// The virtual CPU executing the calling fiber.
  int cpu_id() const { return current_cpu_; }
  std::uint64_t now() const { return cpus_[static_cast<std::size_t>(current_cpu_)].clock_; }

  /// Advances the current CPU by `cycles` of CPI-1.0 work, yielding to the
  /// scheduler if it runs past the other CPUs' progress.
  void tick(std::uint64_t cycles) {
    Cpu& c = cpus_[static_cast<std::size_t>(current_cpu_)];
    c.clock_ += cycles;
    if (c.clock_ > run_limit_) yield_now();
  }

  /// Sets the current CPU's clock to `t` (used by the TM/memory layers after
  /// a timed memory operation) and yields if ordering requires.
  void advance_to(std::uint64_t t) {
    Cpu& c = cpus_[static_cast<std::size_t>(current_cpu_)];
    if (t > c.clock_) c.clock_ = t;
    if (c.clock_ > run_limit_) yield_now();
  }

  /// Blocks the current CPU until some other CPU calls unblock() on it.
  void block();

  /// Makes `cpu` runnable again; its clock is advanced to at least `at`
  /// (typically the waker's current time).
  void unblock(int cpu, std::uint64_t at);

  /// Per-CPU opaque slot for higher layers (the TM runtime).
  void*& user(int cpu) { return user_[static_cast<std::size_t>(cpu)]; }

 private:
  // One entry per runnable-but-not-running CPU, min-heap ordered by
  // (clock, id) — the same total order the original linear scan's
  // first-minimum-wins tie-break induced.  The running CPU's entry is
  // popped while it runs and re-inserted when it yields, so entries are
  // never stale and the heap top after a pop IS the second-smallest
  // runnable clock (the run limit).
  struct RunqEntry {
    std::uint64_t clock;
    int id;
  };

  void worker_main(int cpu);
  void yield_now();  // out-of-line: scheduling decision + fiber switch
  void kill_all_suspended();
  [[noreturn]] static void throw_no_engine();

  static bool runq_before(const RunqEntry& a, const RunqEntry& b) {
    return a.clock < b.clock || (a.clock == b.clock && a.id < b.id);
  }
  void runq_push(RunqEntry e);
  RunqEntry runq_pop();  // precondition: runq_ non-empty
  /// Run budget for a fiber at `clock` given the next runnable clock
  /// `second` (kNever if none): second + slack, quantum-capped when a host
  /// deadline is armed so spinning fibers keep returning to the scheduler.
  void set_run_limit(std::uint64_t clock, std::uint64_t second) {
    run_limit_ =
        (second == ~std::uint64_t{0}) ? second : second + cfg_.slack;
    if (host_deadline_armed_) {
      const std::uint64_t quantum = clock + cfg_.deadline_quantum;
      if (quantum < run_limit_) run_limit_ = quantum;
    }
  }

  inline static thread_local Engine* tls_engine_ = nullptr;
  inline static thread_local bool host_deadline_armed_ = false;
  inline static thread_local std::chrono::steady_clock::time_point host_deadline_{};

  Config cfg_;
  Stats stats_;
  MemSys mem_;
  trace::Tracer* tracer_ = nullptr;
  SchedulerHook* hook_ = nullptr;
  std::vector<int> runnable_scratch_;  // reused per decision when hook_ set
  std::vector<Cpu> cpus_;
  std::vector<RunqEntry> runq_;  // unused while a hook is installed
  std::vector<std::function<void()>> work_;
  std::vector<void*> user_;
  int current_cpu_ = -1;
  std::uint64_t run_limit_ = 0;  // current fiber may run until clock > limit
  std::uint32_t deadline_poll_ = 0;
  bool running_ = false;
  bool poisoned_ = false;      // force every suspended fiber to unwind
  bool deadline_hit_ = false;  // fiber-side poll tripped; run() must unwind
};

}  // namespace sim
