// Simulation statistics: fixed per-CPU counters plus a named-counter map
// that doubles as the TAPE-style conflict-profiling facility the paper used
// to locate contended fields (Section 6.3 cites [3], TAPE).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sim {

/// Counters kept for each virtual CPU.
struct CpuStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t commits = 0;            ///< top-level transaction commits
  std::uint64_t open_commits = 0;       ///< open-nested child commits
  std::uint64_t violations = 0;         ///< top-level (parent) violations
  std::uint64_t nested_violations = 0;  ///< violations confined to a nested frame
  std::uint64_t semantic_violations = 0;///< program-directed aborts received
  std::uint64_t lost_cycles = 0;        ///< cycles discarded by rollbacks
  std::uint64_t lock_spin_cycles = 0;   ///< cycles spent spinning on sim::Mutex
};

/// Whole-simulation statistics.
class Stats {
 public:
  explicit Stats(int num_cpus) : per_cpu_(static_cast<std::size_t>(num_cpus)) {}

  CpuStats& cpu(int id) { return per_cpu_[static_cast<std::size_t>(id)]; }
  const std::vector<CpuStats>& per_cpu() const { return per_cpu_; }

  /// Aggregates a field over all CPUs, e.g. total(&CpuStats::violations).
  template <class T>
  std::uint64_t total(T CpuStats::* field) const {
    std::uint64_t sum = 0;
    for (const auto& c : per_cpu_) sum += static_cast<std::uint64_t>(c.*field);
    return sum;
  }

  /// Every counter summed over all CPUs in one pass (the harness driver
  /// collects a whole RunResult from this instead of one total() per field).
  CpuStats summed() const {
    CpuStats s;
    for (const auto& c : per_cpu_) {
      s.loads += c.loads;
      s.stores += c.stores;
      s.l1_misses += c.l1_misses;
      s.commits += c.commits;
      s.open_commits += c.open_commits;
      s.violations += c.violations;
      s.nested_violations += c.nested_violations;
      s.semantic_violations += c.semantic_violations;
      s.lost_cycles += c.lost_cycles;
      s.lock_spin_cycles += c.lock_spin_cycles;
    }
    return s;
  }

  /// Free-form named counters (TAPE-style profiling: e.g. the per-object
  /// violation sites that identified District.nextOrder in the paper).
  void bump(const std::string& name, std::uint64_t by = 1) { named_[name] += by; }
  const std::map<std::string, std::uint64_t>& named() const { return named_; }

 private:
  std::vector<CpuStats> per_cpu_;
  std::map<std::string, std::uint64_t> named_;
};

}  // namespace sim
