// Deterministic virtual addresses for simulated shared memory, segregated
// into named arenas with per-cell line-isolation classes.
//
// The simulator's cost model is address-driven: line_of(addr) decides cache
// sets, false sharing, and conflict granularity.  Using *host* heap addresses
// for that made simulated cycle counts depend on the binary's data-segment
// layout — recompiling (or even linking in an unrelated object) shifted every
// malloc and with it every cycle total.  Instead, each simulated memory word
// (a Shared<T> cell or a Mutex lock word) is assigned a virtual address from
// a bump allocator in construction order.
//
// WHY ARENAS (the fig4 lesson).  A single bump counter packs cells onto
// 64-byte lines by raw construction adjacency, so a collection's dispatch
// pointer could land on the same virtual line as an open-nested counter
// constructed just after it.  In the SPECjbb harness that put the
// historyTable table pointer — read by every Payment parent — on the line of
// the warehouse open-nested counters, so every counter child's commit killed
// every parent mid-flight: a feedback storm that collapsed Atomos Open to
// 0.00x at 32 CPUs (see EXPERIMENTS.md, fig4 case study).  Conflict
// detection must follow the abstraction's sharing structure, not accidental
// layout.  Cells are therefore placed by *memory class*:
//
//  * Arena::kMeta    — collection metadata (dispatch pointers, size fields);
//  * Arena::kCounter — open-nested / semantic counters;
//  * Arena::kLock    — sim::Mutex lock words;
//  * Arena::kData    — bulk element cells (nodes, buckets, entity fields).
//
// Each arena owns a disjoint, construction-order-deterministic address
// range.  Within an arena a cell is either Isolation::kPacked (eight words
// per line, false sharing modelled by adjacency — the default, so capacity
// and miss modelling of bulk data is unchanged) or Isolation::kLineIsolated
// (the cell gets a private 64-byte line; nothing else is ever co-resident).
//
// Consequences, all deliberate:
//  * cycle totals are a pure function of the workload (binary- and
//    machine-independent), so golden-cycle tests and the CI perf gate can
//    pin them exactly — arena layout is itself a pure function of the
//    workload's construction order, byte-identical for any --jobs N;
//  * false sharing between *packed* cells is modelled by construction
//    adjacency, as before;
//  * virtual addresses stay dense and small: isolated arenas sit at low
//    addresses with fixed spans and the data arena comes last, so the TM
//    layer's flat reader directory (indexed by line - base) grows only with
//    real data-arena allocation.
//
// The cursors are reset by each Engine's constructor.  Invariant: simulated
// cells must be constructed on the Engine's own host thread, after the
// Engine that simulates them, and never reused under a later Engine.  The
// cursors are thread_local (host-parallel sweeps run one Engine per worker
// thread), so a cell constructed on a *different* thread than its Engine
// would silently draw from a stale cursor and alias addresses — TXCC_CHECKED
// audits exactly that (foreign-va-alloc), and debug builds assert it.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <stdexcept>

namespace sim {

/// Base of the simulated shared heap.  Non-zero so a virtual address can
/// never be confused with a null pointer.
inline constexpr std::uintptr_t kVaBase = std::uintptr_t{1} << 20;

/// Bytes per virtual cache line.  Must agree with Config::kLineShift (the
/// cross-check static_assert lives in sim/memsys.h, which sees both).
inline constexpr std::uintptr_t kVaLineBytes = 64;

/// Named address-space arenas, in ascending base-address order.  kData is
/// last so the flat reader directory's high-water mark tracks real data
/// allocation instead of the fixed spans of the small arenas.
enum class Arena : std::uint8_t {
  kMeta = 0,     ///< collection metadata: dispatch pointers, size fields
  kCounter = 1,  ///< open-nested / semantic counters
  kLock = 2,     ///< sim::Mutex lock words
  kData = 3,     ///< bulk element cells (default)
};
inline constexpr std::size_t kArenaCount = 4;

/// Line-placement class within an arena.
enum class Isolation : std::uint8_t {
  kPacked,        ///< bump-packed, eight words per line (models false sharing)
  kLineIsolated,  ///< private 64-byte line; nothing else ever co-resident
};

/// An (arena, isolation) pair — the "memory class" a cell declares.
struct MemClass {
  Arena arena = Arena::kData;
  Isolation iso = Isolation::kPacked;
};

// Named memory classes used throughout jstd/core/jbb.  Hot single-cell
// state is line-isolated; bulk data stays packed.
inline constexpr MemClass kDataCell{Arena::kData, Isolation::kPacked};
inline constexpr MemClass kMetaCell{Arena::kMeta, Isolation::kLineIsolated};
inline constexpr MemClass kCounterCell{Arena::kCounter, Isolation::kLineIsolated};
inline constexpr MemClass kLockWord{Arena::kLock, Isolation::kLineIsolated};

/// Fixed span of each arena.  The isolated arenas hold 16Ki private lines
/// each — about 6x the hungriest workload in the repo (SPECjbb Java mode:
/// ~2700 per-object lock words) — and overflow is a hard, deterministic
/// error (never a silent collision).  kData is effectively unbounded.  The
/// spans are kept small on purpose: the TM reader directory is a flat array
/// indexed from kVaBase, so every byte of fixed span ahead of the data
/// arena is index offset it pays for.
inline constexpr std::uintptr_t kArenaSpan[kArenaCount] = {
    std::uintptr_t{1} << 20,  // kMeta:    1 MiB = 16384 isolated lines
    std::uintptr_t{1} << 20,  // kCounter: 1 MiB
    std::uintptr_t{1} << 20,  // kLock:    1 MiB
    std::uintptr_t{1} << 32,  // kData:    4 GiB
};

/// First address of `arena` (arenas are laid out back-to-back from kVaBase).
constexpr std::uintptr_t arena_base(Arena arena) {
  std::uintptr_t b = kVaBase;
  for (std::size_t i = 0; i < static_cast<std::size_t>(arena); ++i) b += kArenaSpan[i];
  return b;
}

/// One-past-the-last address of `arena`.
constexpr std::uintptr_t arena_limit(Arena arena) {
  return arena_base(arena) + kArenaSpan[static_cast<std::size_t>(arena)];
}

static_assert(arena_base(Arena::kMeta) == kVaBase,
              "reader-directory line base assumes the first arena starts at kVaBase");
static_assert(arena_base(Arena::kMeta) % kVaLineBytes == 0);
static_assert(arena_base(Arena::kCounter) % kVaLineBytes == 0);
static_assert(arena_base(Arena::kLock) % kVaLineBytes == 0);
static_assert(arena_base(Arena::kData) % kVaLineBytes == 0);

namespace detail {

/// Per-host-thread allocator state: one bump cursor per arena plus the
/// owning Engine (for the cross-thread construction audit).  thread_local
/// so concurrent sweep points on different host threads stay independent.
struct VaState {
  std::uintptr_t next[kArenaCount] = {arena_base(Arena::kMeta), arena_base(Arena::kCounter),
                                      arena_base(Arena::kLock), arena_base(Arena::kData)};
  const void* owner = nullptr;  ///< Engine that last reset this thread's cursors
  bool owner_live = false;      ///< false once that Engine is destroyed
};
inline thread_local VaState va_state;

/// Number of live Engines process-wide; maintained by Engine's ctor/dtor.
/// Used only to scope the cross-thread audit: allocating with no Engine
/// alive anywhere (unit tests constructing bare cells) is legitimate.
inline std::atomic<long> va_live_engines{0};

inline std::uint64_t& va_foreign_allocs_ref() {
  thread_local std::uint64_t n = 0;
  return n;
}

/// True when allocating on this thread cannot alias another simulation's
/// addresses: either this thread's cursors are owned by a live Engine, or
/// no Engine is live anywhere (engine-less setup/unit-test code).
inline bool va_owner_ok() {
  return va_state.owner_live || va_live_engines.load(std::memory_order_relaxed) == 0;
}

inline void va_audit_alloc() {
#if defined(TXCC_CHECKED) && TXCC_CHECKED
  if (!va_owner_ok()) {
    if (++va_foreign_allocs_ref() <= 8) {
      std::fprintf(stderr,
                   "[txcc-audit] foreign-va-alloc: simulated cell constructed on a host "
                   "thread whose va cursors are not owned by a live Engine (stale owner "
                   "%p); addresses may alias another simulation's\n",
                   va_state.owner);
    }
  }
#endif
}

}  // namespace detail

/// Count of foreign (cross-thread) allocations observed on the calling host
/// thread.  Only ever non-zero under TXCC_CHECKED; surfaced through
/// atomos::audit as Check::kForeignVaAlloc.
inline std::uint64_t va_foreign_alloc_count() { return detail::va_foreign_allocs_ref(); }
inline void va_foreign_alloc_reset() { detail::va_foreign_allocs_ref() = 0; }

/// Allocates `bytes` of simulated address space from `arena`.
///
///  * kPacked: word-rounded bump allocation — adjacent cells share lines.
///  * kLineIsolated: the cell starts on a fresh 64-byte line and the cursor
///    skips to the next line boundary afterwards, so no other cell is ever
///    resident on the cell's line(s).
///
/// Overflowing an arena throws (deterministically) rather than bleeding
/// into the neighbouring arena.
inline std::uintptr_t va_alloc(std::size_t bytes, Arena arena, Isolation iso) {
#if !(defined(TXCC_CHECKED) && TXCC_CHECKED)
  // Checked builds count-and-report instead (va_audit_alloc), so negative
  // tests can observe the violation; plain debug builds hard-stop.
  assert(detail::va_owner_ok() &&
         "simulated cell constructed on a different host thread than its Engine");
#endif
  detail::va_audit_alloc();
  const auto ai = static_cast<std::size_t>(arena);
  std::uintptr_t& next = detail::va_state.next[ai];
  std::uintptr_t a = next;
  std::uintptr_t end;
  if (iso == Isolation::kLineIsolated) {
    a = (a + kVaLineBytes - 1) & ~(kVaLineBytes - 1);
    end = (a + bytes + kVaLineBytes - 1) & ~(kVaLineBytes - 1);
  } else {
    end = a + ((bytes + 7u) & ~static_cast<std::uintptr_t>(7u));
  }
  if (end > arena_limit(arena)) throw std::length_error("va_alloc: arena span exhausted");
  next = end;
  return a;
}

inline std::uintptr_t va_alloc(std::size_t bytes, MemClass mc) {
  return va_alloc(bytes, mc.arena, mc.iso);
}

/// Legacy form: packed allocation from the bulk-data arena.
inline std::uintptr_t va_alloc(std::size_t bytes) {
  return va_alloc(bytes, Arena::kData, Isolation::kPacked);
}

/// Rewinds every arena cursor on the calling thread; called by Engine's
/// constructor (passing itself as `owner`) so each simulation lays out its
/// cells from the same bases.
inline void va_reset(const void* owner = nullptr) {
  detail::VaState& st = detail::va_state;
  st.next[0] = arena_base(Arena::kMeta);
  st.next[1] = arena_base(Arena::kCounter);
  st.next[2] = arena_base(Arena::kLock);
  st.next[3] = arena_base(Arena::kData);
  st.owner = owner;
  st.owner_live = owner != nullptr;
}

/// Called by Engine's destructor: if this thread's cursors are owned by the
/// dying Engine, mark them stale so later allocations (which would silently
/// reuse addresses) are auditable.
inline void va_owner_destroyed(const void* owner) {
  if (detail::va_state.owner == owner) detail::va_state.owner_live = false;
}

}  // namespace sim
