// Deterministic virtual addresses for simulated shared memory.
//
// The simulator's cost model is address-driven: line_of(addr) decides cache
// sets, false sharing, and conflict granularity.  Using *host* heap addresses
// for that made simulated cycle counts depend on the binary's data-segment
// layout — recompiling (or even linking in an unrelated object) shifted every
// malloc and with it every cycle total.  Instead, each simulated memory word
// (a Shared<T> cell or a Mutex lock word) is assigned a virtual address from
// this bump allocator in construction order.
//
// Consequences, all deliberate:
//  * cycle totals are a pure function of the workload (binary- and
//    machine-independent), so golden-cycle tests and the CI perf gate can
//    pin them exactly;
//  * false sharing is modelled by construction adjacency: eight words per
//    64-byte virtual line, in allocation order;
//  * virtual addresses are dense and small, so the TM layer can index a
//    flat reader directory by (line - base) instead of hashing.
//
// The counter is reset by each Engine's constructor.  Invariant: simulated
// cells must be constructed after the Engine that simulates them (every
// harness and test already does Engine -> Runtime -> data), and never reused
// under a later Engine.  Addresses are never handed out twice within one
// simulation, so there is no ABA on line identity.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sim {

/// Base of the simulated shared heap.  Non-zero so a virtual address can
/// never be confused with a null pointer.
inline constexpr std::uintptr_t kVaBase = std::uintptr_t{1} << 20;

namespace detail {
inline thread_local std::uintptr_t va_next = kVaBase;
}  // namespace detail

/// Allocates `bytes` (rounded up to a word) of simulated address space.
inline std::uintptr_t va_alloc(std::size_t bytes) {
  const std::uintptr_t a = detail::va_next;
  detail::va_next += (bytes + 7u) & ~static_cast<std::uintptr_t>(7u);
  return a;
}

/// Rewinds the allocator; called by Engine's constructor so each simulation
/// lays out its cells from the same base.
inline void va_reset() { detail::va_next = kVaBase; }

}  // namespace sim
