#include "sim/engine.h"

#include <limits>
#include <stdexcept>
#include <utility>

#include "sim/vaddr.h"

namespace sim {

namespace {
constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
}

Engine::Engine(const Config& cfg)
    : cfg_(cfg),
      stats_(cfg.num_cpus),
      mem_(cfg_, stats_),
      cpus_(static_cast<std::size_t>(cfg.num_cpus)),
      user_(static_cast<std::size_t>(cfg.num_cpus), nullptr) {
  if (cfg.num_cpus < 1 || cfg.num_cpus > Config::kMaxCpus)
    throw std::invalid_argument("Engine: num_cpus must be in [1,128]");
  if ((cfg.deadline_poll_mask & (cfg.deadline_poll_mask + 1)) != 0)
    throw std::invalid_argument("Engine: deadline_poll_mask must be 2^k - 1");
  for (int i = 0; i < cfg.num_cpus; ++i) cpus_[static_cast<std::size_t>(i)].id_ = i;
  runq_.reserve(static_cast<std::size_t>(cfg.num_cpus));
  // Each simulation lays out its Shared cells / lock words from the same
  // arena bases, making cycle totals independent of host memory layout.
  // Passing `this` stamps the calling thread's cursors with their owner so
  // cross-thread construction (which would alias addresses) is detectable.
  va_reset(this);
  detail::va_live_engines.fetch_add(1, std::memory_order_relaxed);
}

Engine::~Engine() {
  // If run() was abandoned with live fibers (e.g. an exception inside the
  // scheduler), unwind them so their RAII state is released.
  kill_all_suspended();
  detail::va_live_engines.fetch_sub(1, std::memory_order_relaxed);
  va_owner_destroyed(this);
}

void Engine::kill_all_suspended() {
  // Keep resuming until every fiber has unwound: a fiber may yield again
  // while unwinding (e.g. an abort path charging backoff cycles crosses the
  // run limit), in which case one resume is not enough.
  poisoned_ = true;
  bool any_live;
  do {
    any_live = false;
    for (Cpu& c : cpus_) {
      if (c.fiber_ != nullptr && !c.fiber_->finished()) {
        any_live = true;
        current_cpu_ = c.id_;
        c.fiber_->resume();  // wakes in yield_now()/block(), throws FiberKilled
        current_cpu_ = -1;
        if (c.fiber_->finished()) c.state_ = Cpu::State::kDone;
      }
    }
  } while (any_live);
  poisoned_ = false;
}

void Engine::spawn(std::function<void()> work) {
  if (running_) throw std::logic_error("Engine::spawn during run()");
  if (work_.size() >= cpus_.size())
    throw std::logic_error("Engine::spawn: more workers than virtual CPUs");
  work_.push_back(std::move(work));
}

// Min-heap over (clock, id): exactly the total order the original linear
// scan's strict `<` comparisons induced (first minimum wins = lowest id
// among clock ties).  Keys are unique — at most one entry per CPU.
void Engine::runq_push(RunqEntry e) {
  std::size_t i = runq_.size();
  runq_.push_back(e);
  while (i > 0) {
    const std::size_t p = (i - 1) / 2;
    const RunqEntry pe = runq_[p];
    if (runq_before(pe, e)) break;
    runq_[i] = pe;
    i = p;
  }
  runq_[i] = e;
}

Engine::RunqEntry Engine::runq_pop() {
  const RunqEntry top = runq_[0];
  const RunqEntry last = runq_.back();
  runq_.pop_back();
  const std::size_t n = runq_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t l = 2 * i + 1;
      if (l >= n) break;
      std::size_t m = l;
      const std::size_t r = l + 1;
      if (r < n && runq_before(runq_[r], runq_[l])) m = r;
      const RunqEntry me = runq_[m];
      if (runq_before(last, me)) break;
      runq_[i] = me;
      i = m;
    }
    runq_[i] = last;
  }
  return top;
}

void Engine::run() {
  if (running_) throw std::logic_error("Engine::run re-entered");
  if (work_.empty()) return;
  running_ = true;
  Engine* prev = tls_engine_;
  tls_engine_ = this;
  deadline_hit_ = false;
  deadline_poll_ = 0;
  runq_.clear();

  for (std::size_t i = 0; i < work_.size(); ++i) {
    Cpu& c = cpus_[i];
    const int id = static_cast<int>(i);
    c.state_ = Cpu::State::kRunnable;
    c.fiber_ = std::make_unique<Fiber>([this, id] { worker_main(id); });
    if (hook_ == nullptr) runq_push(RunqEntry{c.clock_, id});
  }

  // With no hook installed, almost all scheduling decisions happen on the
  // fibers themselves (yield_now/block pop the runq and transfer directly);
  // control only returns here when a fiber finishes, when nothing is
  // runnable, or when the host deadline tripped.  With a hook installed,
  // every decision is made here so the hook sees the full runnable set.
  for (;;) {
    if (deadline_hit_ ||
        (host_deadline_armed_ &&
         (++deadline_poll_ & cfg_.deadline_poll_mask) == 0 &&
         std::chrono::steady_clock::now() > host_deadline_)) {
      kill_all_suspended();
      tls_engine_ = prev;
      running_ = false;
      throw SimTimeout("Engine: host wall-clock deadline exceeded");
    }
    int next = -1;
    std::uint64_t second = kNever;
    if (hook_ == nullptr) {
      // Indexed path: the runq holds every runnable CPU (fibers re-insert
      // themselves before yielding to main), so pop = min and the new top
      // is the second-smallest runnable clock.
      if (!runq_.empty()) {
        const RunqEntry e = runq_pop();
        next = e.id;
        if (!runq_.empty()) second = runq_[0].clock;
      }
    } else {
      // Hook mode: one pass finds both the min-clock runnable CPU (runs
      // next) and the second-smallest runnable clock (its run limit).
      std::uint64_t best = kNever;
      for (const Cpu& c : cpus_) {
        if (c.state_ != Cpu::State::kRunnable) continue;
        if (c.clock_ < best) {
          second = best;
          best = c.clock_;
          next = c.id_;
        } else if (c.clock_ < second) {
          second = c.clock_;
        }
      }
    }
    if (next < 0) {
      bool any_blocked = false;
      bool all_done = true;
      for (const Cpu& c : cpus_) {
        if (c.state_ == Cpu::State::kBlocked) any_blocked = true;
        if (c.state_ != Cpu::State::kDone && c.state_ != Cpu::State::kIdle) all_done = false;
      }
      if (all_done) break;
      if (any_blocked) {
        kill_all_suspended();
        tls_engine_ = prev;
        running_ = false;
        throw std::runtime_error("Engine: virtual deadlock (all CPUs blocked)");
      }
      break;
    }
    Cpu* chosen = &cpus_[static_cast<std::size_t>(next)];
    run_limit_ = (second == kNever) ? second : second + cfg_.slack;
    if (hook_ != nullptr) {
      // Present the runnable set (ascending ids) and let the hook override
      // both the choice and the quantum.  kUseDefault keeps the min-clock
      // choice and limit computed above — bit-identical to no hook.
      runnable_scratch_.clear();
      for (const Cpu& c : cpus_) {
        if (c.state_ == Cpu::State::kRunnable) runnable_scratch_.push_back(c.id_);
      }
      const int picked = hook_->pick(runnable_scratch_);
      if (picked != SchedulerHook::kUseDefault) {
        if (picked < 0 || picked >= static_cast<int>(cpus_.size()) ||
            cpus_[static_cast<std::size_t>(picked)].state_ != Cpu::State::kRunnable) {
          kill_all_suspended();
          tls_engine_ = prev;
          running_ = false;
          throw std::logic_error("Engine: scheduler hook picked a non-runnable CPU");
        }
        chosen = &cpus_[static_cast<std::size_t>(picked)];
        next = picked;
        // One-quantum budget: the fiber yields at its next clock advance,
        // handing the next interleaving decision back to the hook.
        run_limit_ = chosen->clock_;
      }
    }
    Cpu& c = *chosen;
    // With a host deadline armed, never hand a fiber an unbounded budget: a
    // sole runnable fiber spinning in tick() would otherwise never reach a
    // scheduling point where the deadline is polled.  Capping the limit
    // only inserts extra yields — simulated clocks are unaffected.
    if (host_deadline_armed_) {
      const std::uint64_t quantum = c.clock_ + cfg_.deadline_quantum;
      if (quantum < run_limit_) run_limit_ = quantum;
    }
    current_cpu_ = next;
    c.fiber_->resume();
    // With direct fiber->fiber transfers, the fiber that comes back to main
    // need not be the one resumed: current_cpu_ names whoever ran last.
    Cpu& ran = cpus_[static_cast<std::size_t>(current_cpu_)];
    current_cpu_ = -1;
    if (ran.fiber_->finished()) ran.state_ = Cpu::State::kDone;
  }

  tls_engine_ = prev;
  running_ = false;
}

void Engine::worker_main(int cpu) { work_[static_cast<std::size_t>(cpu)](); }

std::uint64_t Engine::elapsed_cycles() const {
  std::uint64_t m = 0;
  for (const Cpu& c : cpus_)
    if (c.clock_ > m) m = c.clock_;
  return m;
}

void Engine::yield_now() {
  if (poisoned_) throw FiberKilled{};
  if (hook_ != nullptr) {
    // Hook mode: hand every decision to run()'s loop.
    Fiber::yield();
    if (poisoned_) throw FiberKilled{};
    return;
  }
  // Host-deadline poll, amortized over scheduling decisions.  On expiry,
  // run() unwinds every fiber and throws SimTimeout; re-insert ourselves so
  // the runq invariant holds regardless.
  if (host_deadline_armed_ &&
      (++deadline_poll_ & cfg_.deadline_poll_mask) == 0 &&
      std::chrono::steady_clock::now() > host_deadline_) {
    Cpu& self = cpus_[static_cast<std::size_t>(current_cpu_)];
    deadline_hit_ = true;
    runq_push(RunqEntry{self.clock_, self.id_});
    Fiber::yield();
    if (poisoned_) throw FiberKilled{};
    return;
  }
  // The scheduling fast path: re-insert self, take the (clock, id)-minimum
  // runnable CPU, and hand the host thread straight to its fiber — one
  // context switch per decision, no trip through the main context.
  Cpu& self = cpus_[static_cast<std::size_t>(current_cpu_)];
  runq_push(RunqEntry{self.clock_, self.id_});
  const RunqEntry e = runq_pop();
  const std::uint64_t second = runq_.empty() ? kNever : runq_[0].clock;
  set_run_limit(e.clock, second);
  if (e.id == current_cpu_) return;  // still the minimum: keep running
  current_cpu_ = e.id;
  Fiber::transfer_to(*cpus_[static_cast<std::size_t>(e.id)].fiber_);
  if (poisoned_) throw FiberKilled{};
}

void Engine::throw_no_engine() {
  throw std::logic_error("Engine::get: no active simulation");
}

void Engine::block() {
  if (poisoned_) throw FiberKilled{};
  Cpu& self = cpus_[static_cast<std::size_t>(current_cpu_)];
  self.state_ = Cpu::State::kBlocked;
  if (hook_ == nullptr && !runq_.empty()) {
    // Someone else is runnable: dispatch them directly (we hold no runq
    // entry — ours was popped when we were scheduled).
    const RunqEntry e = runq_pop();
    const std::uint64_t second = runq_.empty() ? kNever : runq_[0].clock;
    set_run_limit(e.clock, second);
    current_cpu_ = e.id;
    Fiber::transfer_to(*cpus_[static_cast<std::size_t>(e.id)].fiber_);
  } else {
    Fiber::yield();  // run() decides: hook consult, completion, or deadlock
  }
  if (poisoned_) throw FiberKilled{};
  // Rescheduled: unblock() made us runnable and set our clock.
}

void Engine::unblock(int cpu, std::uint64_t at) {
  Cpu& c = cpus_[static_cast<std::size_t>(cpu)];
  if (c.state_ != Cpu::State::kBlocked)
    throw std::logic_error("Engine::unblock: target CPU is not blocked");
  c.state_ = Cpu::State::kRunnable;
  if (at > c.clock_) c.clock_ = at;
  if (hook_ == nullptr) runq_push(RunqEntry{c.clock_, c.id_});
  // The woken CPU may now be the global minimum: tighten our run limit so the
  // current fiber yields promptly and ordering stays exact.
  if (c.clock_ < run_limit_) run_limit_ = c.clock_ + cfg_.slack;
}

}  // namespace sim
