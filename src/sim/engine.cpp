#include "sim/engine.h"

#include <limits>
#include <stdexcept>
#include <utility>

#include "sim/vaddr.h"

namespace sim {

Engine::Engine(const Config& cfg)
    : cfg_(cfg),
      stats_(cfg.num_cpus),
      mem_(cfg_, stats_),
      cpus_(static_cast<std::size_t>(cfg.num_cpus)),
      user_(static_cast<std::size_t>(cfg.num_cpus), nullptr) {
  if (cfg.num_cpus < 1 || cfg.num_cpus > 32)
    throw std::invalid_argument("Engine: num_cpus must be in [1,32]");
  for (int i = 0; i < cfg.num_cpus; ++i) cpus_[static_cast<std::size_t>(i)].id_ = i;
  // Each simulation lays out its Shared cells / lock words from the same
  // arena bases, making cycle totals independent of host memory layout.
  // Passing `this` stamps the calling thread's cursors with their owner so
  // cross-thread construction (which would alias addresses) is detectable.
  va_reset(this);
  detail::va_live_engines.fetch_add(1, std::memory_order_relaxed);
}

Engine::~Engine() {
  // If run() was abandoned with live fibers (e.g. an exception inside the
  // scheduler), unwind them so their RAII state is released.
  kill_all_suspended();
  detail::va_live_engines.fetch_sub(1, std::memory_order_relaxed);
  va_owner_destroyed(this);
}

void Engine::kill_all_suspended() {
  // Keep resuming until every fiber has unwound: a fiber may yield again
  // while unwinding (e.g. an abort path charging backoff cycles crosses the
  // run limit), in which case one resume is not enough.
  poisoned_ = true;
  bool any_live;
  do {
    any_live = false;
    for (Cpu& c : cpus_) {
      if (c.fiber_ != nullptr && !c.fiber_->finished()) {
        any_live = true;
        current_cpu_ = c.id_;
        c.fiber_->resume();  // wakes in block()/yield_now(), throws FiberKilled
        current_cpu_ = -1;
        if (c.fiber_->finished()) c.state_ = Cpu::State::kDone;
      }
    }
  } while (any_live);
  poisoned_ = false;
}

void Engine::spawn(std::function<void()> work) {
  if (running_) throw std::logic_error("Engine::spawn during run()");
  if (work_.size() >= cpus_.size())
    throw std::logic_error("Engine::spawn: more workers than virtual CPUs");
  work_.push_back(std::move(work));
}

void Engine::run() {
  if (running_) throw std::logic_error("Engine::run re-entered");
  if (work_.empty()) return;
  running_ = true;
  Engine* prev = tls_engine_;
  tls_engine_ = this;

  for (std::size_t i = 0; i < work_.size(); ++i) {
    Cpu& c = cpus_[i];
    const int id = static_cast<int>(i);
    c.state_ = Cpu::State::kRunnable;
    c.fiber_ = std::make_unique<Fiber>([this, id] { worker_main(id); });
  }

  constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
  std::uint32_t deadline_poll = 0;
  for (;;) {
    // Host-deadline poll, amortized: one clock read every 512 fiber switches.
    if (host_deadline_armed_ && (++deadline_poll & 511u) == 0 &&
        std::chrono::steady_clock::now() > host_deadline_) {
      kill_all_suspended();
      tls_engine_ = prev;
      running_ = false;
      throw SimTimeout("Engine: host wall-clock deadline exceeded");
    }
    // One pass finds both the min-clock runnable CPU (runs next) and the
    // second-smallest runnable clock (its run limit): the fiber may run
    // until it passes that snapshot + slack.  Other clocks are frozen while
    // it runs, so the snapshot stays exact unless it unblocks someone
    // (which tightens the limit via unblock()).
    int next = -1;
    std::uint64_t best = kNever;
    std::uint64_t second = kNever;
    for (const Cpu& c : cpus_) {
      if (c.state_ != Cpu::State::kRunnable) continue;
      if (c.clock_ < best) {
        second = best;
        best = c.clock_;
        next = c.id_;
      } else if (c.clock_ < second) {
        second = c.clock_;
      }
    }
    if (next < 0) {
      bool any_blocked = false;
      bool all_done = true;
      for (const Cpu& c : cpus_) {
        if (c.state_ == Cpu::State::kBlocked) any_blocked = true;
        if (c.state_ != Cpu::State::kDone && c.state_ != Cpu::State::kIdle) all_done = false;
      }
      if (all_done) break;
      if (any_blocked) {
        kill_all_suspended();
        tls_engine_ = prev;
        running_ = false;
        throw std::runtime_error("Engine: virtual deadlock (all CPUs blocked)");
      }
      break;
    }
    Cpu* chosen = &cpus_[static_cast<std::size_t>(next)];
    run_limit_ = (second == kNever) ? second : second + cfg_.slack;
    if (hook_ != nullptr) {
      // Present the runnable set (ascending ids) and let the hook override
      // both the choice and the quantum.  kUseDefault keeps the min-clock
      // choice and limit computed above — bit-identical to no hook.
      runnable_scratch_.clear();
      for (const Cpu& c : cpus_) {
        if (c.state_ == Cpu::State::kRunnable) runnable_scratch_.push_back(c.id_);
      }
      const int picked = hook_->pick(runnable_scratch_);
      if (picked != SchedulerHook::kUseDefault) {
        if (picked < 0 || picked >= static_cast<int>(cpus_.size()) ||
            cpus_[static_cast<std::size_t>(picked)].state_ != Cpu::State::kRunnable) {
          kill_all_suspended();
          tls_engine_ = prev;
          running_ = false;
          throw std::logic_error("Engine: scheduler hook picked a non-runnable CPU");
        }
        chosen = &cpus_[static_cast<std::size_t>(picked)];
        next = picked;
        // One-quantum budget: the fiber yields at its next clock advance,
        // handing the next interleaving decision back to the hook.
        run_limit_ = chosen->clock_;
      }
    }
    Cpu& c = *chosen;
    // With a host deadline armed, never hand a fiber an unbounded budget: a
    // sole runnable fiber spinning in tick() would otherwise never return
    // here, where the deadline is polled.  Capping the limit only inserts
    // extra yields — simulated clocks are unaffected.
    if (host_deadline_armed_) {
      const std::uint64_t quantum = c.clock_ + 65536;
      if (quantum < run_limit_) run_limit_ = quantum;
    }
    current_cpu_ = next;
    c.fiber_->resume();
    current_cpu_ = -1;
    if (c.fiber_->finished()) c.state_ = Cpu::State::kDone;
  }

  tls_engine_ = prev;
  running_ = false;
}

void Engine::worker_main(int cpu) { work_[static_cast<std::size_t>(cpu)](); }

std::uint64_t Engine::elapsed_cycles() const {
  std::uint64_t m = 0;
  for (const Cpu& c : cpus_)
    if (c.clock_ > m) m = c.clock_;
  return m;
}

void Engine::yield_now() {
  Fiber::yield();
  if (poisoned_) throw FiberKilled{};
}

void Engine::throw_no_engine() {
  throw std::logic_error("Engine::get: no active simulation");
}

void Engine::block() {
  Cpu& c = cpus_[static_cast<std::size_t>(current_cpu_)];
  c.state_ = Cpu::State::kBlocked;
  Fiber::yield();
  if (poisoned_) throw FiberKilled{};
  // Rescheduled: unblock() made us runnable and set our clock.
}

void Engine::unblock(int cpu, std::uint64_t at) {
  Cpu& c = cpus_[static_cast<std::size_t>(cpu)];
  if (c.state_ != Cpu::State::kBlocked)
    throw std::logic_error("Engine::unblock: target CPU is not blocked");
  c.state_ = Cpu::State::kRunnable;
  if (at > c.clock_) c.clock_ = at;
  // The woken CPU may now be the global minimum: tighten our run limit so the
  // current fiber yields promptly and ordering stays exact.
  if (c.clock_ < run_limit_) run_limit_ = c.clock_ + cfg_.slack;
}

}  // namespace sim
