// Stackful fibers for the execution-driven CMP simulator.
//
// Every virtual CPU runs its workload on a fiber so that the simulator can
// suspend it at *any* call depth (e.g. deep inside a red-black tree rotation)
// whenever virtual-time ordering requires another CPU to advance first.
//
// The implementation is a hand-rolled x86-64 System V context switch
// (see context.S); a switch costs a handful of nanoseconds of host time,
// which matters because benchmarks perform millions of switches.
//
// Two switch shapes are provided:
//
//  * resume()/yield()   — the classic main<->fiber pair.  There is exactly
//    one "main" (scheduler) context per host thread, held in thread-local
//    state, so a yielding fiber always returns to the thread's scheduler
//    regardless of which context entered it.
//  * transfer_to(next)  — fiber->fiber handoff in ONE context switch.  The
//    engine's scheduling fast path uses this to dispatch the next virtual
//    CPU without bouncing through the main context, halving the switches
//    per scheduling decision.
//
// Stacks are pooled per host thread: figure sweeps construct thousands of
// Engines, and re-using an mmap'd stack (guard page already in place, hot
// pages already faulted in) makes Engine construction O(fibers), not
// O(fibers x mmap+page-fault).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>

namespace sim {

/// Thrown *into* a fiber (by the scheduler, after poisoning) to force it to
/// unwind its stack and terminate.  Fiber bodies must let it propagate; the
/// fiber machinery treats it as normal termination.
struct FiberKilled {};

/// Hit/miss counters for the calling thread's fiber stack free-list
/// (cumulative).  A hit is a Fiber construction served from a pooled stack;
/// a miss paid mmap+mprotect.  bench/hotpath surfaces the spawn scenarios'
/// hit rate in BENCH_hotpath.json so pool-defeating regressions (wrong
/// sizes, cap thrash) are visible, not inferred from wall time.
struct StackPoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
StackPoolStats stack_pool_stats();

/// A cooperatively scheduled stackful coroutine.
///
/// Usage:
///   Fiber f([]{ ...; });   // does not start running yet
///   f.resume();            // runs until f yields or finishes
///   f.finished();          // true once the body returned
///
/// The body may call Fiber::yield() (static; applies to the currently
/// running fiber) to suspend back to the thread's main context, or
/// Fiber::transfer_to() to hand the host thread directly to another
/// suspended fiber.  C++ exceptions may be thrown and caught freely *within*
/// the fiber body, but must never propagate out of it; the fiber traps that
/// case and terminates the process with a diagnostic, because unwinding
/// across a context switch is undefined.
class Fiber {
 public:
  /// Creates a fiber that will run `body` on its own `stack_bytes`-sized
  /// stack (rounded up to the page size, with an inaccessible guard page
  /// below it to turn stack overflow into a clean fault).  The stack is
  /// drawn from the calling thread's free-list when one of the right size
  /// is available, and returned to it on destruction.
  explicit Fiber(std::function<void()> body, std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Transfers control into the fiber from the main context.  Returns when
  /// some fiber yields to main or finishes (with fiber->fiber transfers in
  /// between, the fiber that comes back to main need not be this one).
  /// Must not be called on a finished fiber, nor from within any fiber.
  void resume();

  /// Suspends the currently running fiber, returning control to the
  /// thread's main context.  Must be called from within a fiber body.
  static void yield();

  /// Suspends the currently running fiber and resumes `next` in a single
  /// context switch (never touching the main context).  `next` must be a
  /// distinct, unfinished fiber on the same host thread; it may be one that
  /// has never run (its first activation happens exactly as under resume()).
  static void transfer_to(Fiber& next);

  /// True once the fiber body has returned.
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// The fiber currently executing on this thread, or nullptr if we are in
  /// the main (scheduler) context.
  static Fiber* current() noexcept;

  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  /// \internal Entry point invoked on the fiber's own stack (from context.S);
  /// not part of the public API.
  void run_body() noexcept;

 private:
  friend struct FiberCtx;

  // Per-fiber copy of the Itanium-ABI exception-handling globals
  // (__cxa_eh_globals): the caught-exception stack is thread-local, so a
  // fiber that yields inside a catch block would otherwise interleave its
  // exception state with other fibers'.  Saved/restored at every switch.
  struct EhGlobals {
    void* caught_exceptions = nullptr;
    unsigned int uncaught_exceptions = 0;
  };

  std::function<void()> body_;
  void* stack_mem_ = nullptr;   // mmap'd region (guard page + stack)
  std::size_t map_bytes_ = 0;
  void* fiber_sp_ = nullptr;    // suspended fiber's stack pointer
  EhGlobals eh_state_{};        // the fiber's exception globals while suspended
  // Sanitizer bookkeeping (see fiber.cpp).  Neither TSan nor ASan can see
  // the raw stack switch in context.S: every switch is announced with
  // __tsan_switch_to_fiber / __sanitizer_start_switch_fiber and completed
  // with __sanitizer_finish_switch_fiber on arrival.  All null/zero when
  // not built with the corresponding sanitizer.
  void* tsan_fiber_ = nullptr;        // this fiber's TSan context
  void* asan_fake_stack_ = nullptr;   // fiber's ASan fake stack, suspended
  const void* stack_bottom_ = nullptr;  // usable stack (above the guard page)
  std::size_t stack_size_ = 0;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace sim
