// Stackful fibers for the execution-driven CMP simulator.
//
// Every virtual CPU runs its workload on a fiber so that the simulator can
// suspend it at *any* call depth (e.g. deep inside a red-black tree rotation)
// whenever virtual-time ordering requires another CPU to advance first.
//
// The implementation is a hand-rolled x86-64 System V context switch
// (see context.S); a switch costs a handful of nanoseconds of host time,
// which matters because benchmarks perform millions of switches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>

namespace sim {

/// Thrown *into* a fiber (by the scheduler, after poisoning) to force it to
/// unwind its stack and terminate.  Fiber bodies must let it propagate; the
/// fiber machinery treats it as normal termination.
struct FiberKilled {};

/// A cooperatively scheduled stackful coroutine.
///
/// Usage:
///   Fiber f([]{ ...; });   // does not start running yet
///   f.resume();            // runs until f yields or finishes
///   f.finished();          // true once the body returned
///
/// The body may call Fiber::yield() (static; applies to the currently
/// running fiber) to suspend back to whoever resumed it.  C++ exceptions may
/// be thrown and caught freely *within* the fiber body, but must never
/// propagate out of it; the fiber traps that case and terminates the process
/// with a diagnostic, because unwinding across a context switch is undefined.
class Fiber {
 public:
  /// Creates a fiber that will run `body` on its own `stack_bytes`-sized
  /// stack (rounded up to the page size, with an inaccessible guard page
  /// below it to turn stack overflow into a clean fault).
  explicit Fiber(std::function<void()> body, std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Transfers control into the fiber.  Returns when the fiber yields or
  /// its body returns.  Must not be called on a finished fiber, nor from
  /// within any fiber (only the scheduler/main context resumes fibers).
  void resume();

  /// Suspends the currently running fiber, returning control to the context
  /// that resumed it.  Must be called from within a fiber body.
  static void yield();

  /// True once the fiber body has returned.
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// The fiber currently executing on this thread, or nullptr if we are in
  /// the main (scheduler) context.
  static Fiber* current() noexcept;

  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  /// \internal Entry point invoked on the fiber's own stack (from context.S);
  /// not part of the public API.
  void run_body() noexcept;

 private:
  // Per-fiber copy of the Itanium-ABI exception-handling globals
  // (__cxa_eh_globals): the caught-exception stack is thread-local, so a
  // fiber that yields inside a catch block would otherwise interleave its
  // exception state with other fibers'.  Saved/restored at every switch.
  struct EhGlobals {
    void* caught_exceptions = nullptr;
    unsigned int uncaught_exceptions = 0;
  };

  std::function<void()> body_;
  void* stack_mem_ = nullptr;   // mmap'd region (guard page + stack)
  std::size_t map_bytes_ = 0;
  void* fiber_sp_ = nullptr;    // suspended fiber's stack pointer
  void* return_sp_ = nullptr;   // where to go back to on yield/finish
  EhGlobals eh_state_{};        // the fiber's exception globals while suspended
  EhGlobals eh_return_state_{}; // the resumer's globals while the fiber runs
  // Sanitizer bookkeeping (see fiber.cpp).  Neither TSan nor ASan can see
  // the raw stack switch in context.S: every switch is announced with
  // __tsan_switch_to_fiber / __sanitizer_start_switch_fiber and completed
  // with __sanitizer_finish_switch_fiber on arrival.  All null/zero when
  // not built with the corresponding sanitizer.
  void* tsan_fiber_ = nullptr;         // this fiber's TSan context
  void* tsan_return_fiber_ = nullptr;  // the resumer's TSan context
  void* asan_fake_stack_ = nullptr;    // fiber's ASan fake stack, suspended
  void* asan_return_fake_ = nullptr;   // resumer's fake stack, fiber running
  const void* asan_return_bottom_ = nullptr;  // resumer's real stack bounds
  std::size_t asan_return_size_ = 0;
  const void* stack_bottom_ = nullptr;  // usable stack (above the guard page)
  std::size_t stack_size_ = 0;
  bool started_ = false;
  bool finished_ = false;
  bool running_ = false;
};

}  // namespace sim
