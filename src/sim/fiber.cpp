#include "sim/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <utility>
#include <vector>

extern "C" {
// Defined in context.S.
void tcc_ctx_swap(void** save_sp, void* restore_sp);
void tcc_fiber_entry_thunk();

// Called (via the thunk) on the fiber's own stack at first activation.
void tcc_fiber_entry(sim::Fiber* f);
}

// Sanitizer interop.  The hand-rolled switch in context.S moves %rsp
// between mmap'd stacks behind the sanitizers' backs.  Without annotations
// TSan sees one thread's shadow stack teleport and reports wild races (or
// crashes), and ASan's fake-stack / stack-bounds bookkeeping desyncs, which
// surfaces as bogus stack-buffer-overflow reports from interceptors once a
// fiber recurses deeply.  Both runtimes ship a fiber API for exactly this:
// TSan's __tsan_{create,destroy,switch_to}_fiber registers each stack as a
// distinct context, and ASan's __sanitizer_{start,finish}_switch_fiber
// hands over the fake stack and real stack bounds across every switch.
// Detection covers GCC (__SANITIZE_*) and Clang (__has_feature).
#if defined(__SANITIZE_THREAD__)
#define TCC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TCC_TSAN 1
#endif
#endif

#if defined(__SANITIZE_ADDRESS__)
#define TCC_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TCC_ASAN 1
#endif
#endif

#if defined(TCC_TSAN)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

#if defined(TCC_ASAN)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     size_t* size_old);
void __asan_unpoison_memory_region(void const volatile* addr, size_t size);
}
#endif

namespace {
inline void* tsan_this_fiber() {
#if defined(TCC_TSAN)
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}
inline void* tsan_new_fiber() {
#if defined(TCC_TSAN)
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}
inline void tsan_free_fiber(void* f) {
#if defined(TCC_TSAN)
  if (f != nullptr) __tsan_destroy_fiber(f);
#else
  (void)f;
#endif
}
inline void tsan_switch(void* f) {
#if defined(TCC_TSAN)
  if (f != nullptr) __tsan_switch_to_fiber(f, 0);
#else
  (void)f;
#endif
}
// Announce a switch to the stack [bottom, bottom+size).  `save` receives the
// departing context's fake stack; pass nullptr when that context is exiting
// for good (its fake stack is then torn down).
inline void asan_start_switch(void** save, const void* bottom,
                              std::size_t size) {
#if defined(TCC_ASAN)
  __sanitizer_start_switch_fiber(save, bottom, size);
#else
  (void)save;
  (void)bottom;
  (void)size;
#endif
}
// Complete a switch on arrival: reinstall this context's fake stack and
// optionally learn the bounds of the stack we came from.
inline void asan_finish_switch(void* save, const void** bottom_old,
                               std::size_t* size_old) {
#if defined(TCC_ASAN)
  __sanitizer_finish_switch_fiber(save, bottom_old, size_old);
#else
  (void)save;
  (void)bottom_old;
  (void)size_old;
#endif
}
}  // namespace

// Itanium C++ ABI exception-handling globals (one per host thread).  We swap
// their contents per fiber so exceptions thrown/caught on different fiber
// stacks never interleave.  Layout per the ABI; __cxa_get_globals is
// provided by libstdc++/libsupc++.
namespace __cxxabiv1 {
struct __cxa_eh_globals {
  void* caughtExceptions;
  unsigned int uncaughtExceptions;
};
extern "C" __cxa_eh_globals* __cxa_get_globals() noexcept;
}  // namespace __cxxabiv1

namespace sim {

// Thread-local switch plumbing.  Everything a fiber needs to leave for (or
// arrive from) the main context lives here, so a fiber that was entered by
// one context can exit toward another: with direct fiber->fiber transfers,
// the fiber that finally yields to main is usually NOT the one main resumed.
struct FiberCtx {
  // --- the main (scheduler) context, parked while a fiber runs ---
  void* main_sp = nullptr;
  Fiber::EhGlobals main_eh{};
  void* main_tsan = nullptr;               // captured at first resume()
  void* main_asan_fake = nullptr;
  const void* main_asan_bottom = nullptr;  // learned at the first arrival
  std::size_t main_asan_size = 0;          //   ...from main (ASan only)
  bool switch_from_main = false;           // who initiated the last switch

  Fiber* current = nullptr;

  // --- per-thread stack free list ---
  struct StackBlock {
    void* mem;
    std::size_t map_bytes;
  };
  std::vector<StackBlock> stack_pool;

  ~FiberCtx() {
    for (const StackBlock& b : stack_pool) ::munmap(b.mem, b.map_bytes);
  }
};

namespace {

thread_local FiberCtx g_ctx;

// Keep idle pooled stacks bounded: enough for one full-width Engine plus
// headroom; beyond that, stacks are really unmapped.
constexpr std::size_t kStackPoolCap = 192;

thread_local std::uint64_t g_stack_pool_hits = 0;
thread_local std::uint64_t g_stack_pool_misses = 0;

// __cxa_get_globals returns a fixed per-thread address; cache it so the two
// EH-globals swaps per switch don't each pay an external libsupc++ call.
inline void* eh_globals_addr() {
  thread_local void* p = __cxxabiv1::__cxa_get_globals();
  return p;
}

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

// Completes a switch on arrival in a fiber (first activation or re-entry):
// reinstalls its ASan fake stack, and — exactly once per host thread — learns
// the main stack's bounds if the switch originated there (a fiber entered by
// transfer_to learns nothing: the initiator's bounds are already known).
inline void finish_arrival_in_fiber(Fiber* self, void* fake_save) {
#if defined(TCC_ASAN)
  const void* from_bottom = nullptr;
  std::size_t from_size = 0;
  asan_finish_switch(fake_save, &from_bottom, &from_size);
  if (g_ctx.switch_from_main && g_ctx.main_asan_bottom == nullptr) {
    g_ctx.main_asan_bottom = from_bottom;
    g_ctx.main_asan_size = from_size;
  }
#else
  (void)self;
  (void)fake_save;
#endif
}

}  // namespace

StackPoolStats stack_pool_stats() { return {g_stack_pool_hits, g_stack_pool_misses}; }

Fiber* Fiber::current() noexcept { return g_ctx.current; }

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)) {
  const std::size_t ps = page_size();
  const std::size_t usable = round_up(stack_bytes, ps);
  map_bytes_ = usable + ps;  // one guard page below the stack

  // Reuse a pooled stack of the right size when one is free: its guard page
  // is already protected and its hot pages already faulted in.
  void* mem = nullptr;
  auto& pool = g_ctx.stack_pool;
  for (std::size_t i = pool.size(); i-- > 0;) {
    if (pool[i].map_bytes == map_bytes_) {
      mem = pool[i].mem;
      pool[i] = pool.back();
      pool.pop_back();
#if defined(TCC_ASAN)
      // A finished fiber's deepest frames never return, so their redzones
      // stay poisoned in shadow memory.  A fresh mmap has clean shadow; a
      // recycled stack must be scrubbed or the next fiber's first frames
      // land on stale poison.
      __asan_unpoison_memory_region(static_cast<char*>(mem) + ps,
                                    map_bytes_ - ps);
#endif
      ++g_stack_pool_hits;
      break;
    }
  }
  if (mem == nullptr) {
    ++g_stack_pool_misses;
    mem = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) throw std::runtime_error("Fiber: mmap failed");
    if (::mprotect(mem, ps, PROT_NONE) != 0) {
      ::munmap(mem, map_bytes_);
      throw std::runtime_error("Fiber: mprotect failed");
    }
  }
  stack_mem_ = mem;
  stack_bottom_ = static_cast<const char*>(mem) + ps;
  stack_size_ = usable;

  // Seed the initial frame at the top of the stack: six callee-saved slots
  // (r15 r14 r13 r12 rbx rbp, in pop order) then the thunk's address as the
  // return target of tcc_ctx_swap's final `ret`.
  auto top = reinterpret_cast<std::uintptr_t>(mem) + map_bytes_;
  top &= ~static_cast<std::uintptr_t>(15);  // 16-byte align
  auto* sp = reinterpret_cast<std::uintptr_t*>(top);
  *--sp = reinterpret_cast<std::uintptr_t>(&tcc_fiber_entry_thunk);  // ret target
  *--sp = 0;                                       // rbp
  *--sp = 0;                                       // rbx
  *--sp = reinterpret_cast<std::uintptr_t>(this);  // r12 -> Fiber*
  *--sp = 0;                                       // r13
  *--sp = 0;                                       // r14
  *--sp = 0;                                       // r15
  fiber_sp_ = sp;

  tsan_fiber_ = tsan_new_fiber();
}

Fiber::~Fiber() {
  if (started_ && !finished_) {
    // Destroying a suspended fiber would leak whatever RAII state its stack
    // holds; the simulator always runs fibers to completion, so treat this
    // as a usage error rather than trying to unwind a foreign stack.
    std::fprintf(stderr, "sim::Fiber destroyed while suspended; aborting\n");
    std::abort();
  }
  tsan_free_fiber(tsan_fiber_);
  if (stack_mem_ != nullptr) {
#if defined(TCC_ASAN)
    // Scrub the shadow before the stack leaves our hands, poolward or back
    // to the kernel: munmap does not clear shadow memory, so a still-
    // poisoned mapping handed back here would leak stale poison into
    // whatever mmap lands on the same address next — including a brand-new
    // stack on a different host thread.
    __asan_unpoison_memory_region(stack_bottom_, stack_size_);
#endif
    auto& pool = g_ctx.stack_pool;
    if (pool.size() < kStackPoolCap) {
      pool.push_back(FiberCtx::StackBlock{stack_mem_, map_bytes_});
    } else {
      ::munmap(stack_mem_, map_bytes_);
    }
  }
}

void Fiber::resume() {
  if (finished_) throw std::logic_error("Fiber::resume on finished fiber");
  if (g_ctx.current != nullptr)
    throw std::logic_error("Fiber::resume must be called from the main context");
  started_ = true;
  g_ctx.current = this;
  // Install the fiber's exception-handling globals, parking main's.
  auto* eh = reinterpret_cast<EhGlobals*>(eh_globals_addr());
  g_ctx.main_eh = *eh;
  *eh = eh_state_;
  if (g_ctx.main_tsan == nullptr) g_ctx.main_tsan = tsan_this_fiber();
  tsan_switch(tsan_fiber_);
  g_ctx.switch_from_main = true;
  asan_start_switch(&g_ctx.main_asan_fake, stack_bottom_, stack_size_);
  tcc_ctx_swap(&g_ctx.main_sp, fiber_sp_);
  // Back in main.  Whichever fiber yielded (or finished) last has already
  // restored main's EH globals and announced the TSan/ASan switch.
  asan_finish_switch(g_ctx.main_asan_fake, nullptr, nullptr);
  g_ctx.current = nullptr;
}

void Fiber::yield() {
  Fiber* self = g_ctx.current;
  if (self == nullptr) throw std::logic_error("Fiber::yield outside a fiber");
  auto* eh = reinterpret_cast<EhGlobals*>(eh_globals_addr());
  self->eh_state_ = *eh;
  *eh = g_ctx.main_eh;
  tsan_switch(g_ctx.main_tsan);
  g_ctx.switch_from_main = false;
  asan_start_switch(&self->asan_fake_stack_, g_ctx.main_asan_bottom,
                    g_ctx.main_asan_size);
  tcc_ctx_swap(&self->fiber_sp_, g_ctx.main_sp);
  // Re-entered (by resume() or a transfer_to() targeting us).
  finish_arrival_in_fiber(self, self->asan_fake_stack_);
}

void Fiber::transfer_to(Fiber& next) {
  Fiber* self = g_ctx.current;
  if (self == nullptr)
    throw std::logic_error("Fiber::transfer_to outside a fiber");
  if (&next == self || next.finished_)
    throw std::logic_error("Fiber::transfer_to: bad target fiber");
  next.started_ = true;
  g_ctx.current = &next;
  auto* eh = reinterpret_cast<EhGlobals*>(eh_globals_addr());
  self->eh_state_ = *eh;
  *eh = next.eh_state_;
  tsan_switch(next.tsan_fiber_);
  g_ctx.switch_from_main = false;
  asan_start_switch(&self->asan_fake_stack_, next.stack_bottom_,
                    next.stack_size_);
  tcc_ctx_swap(&self->fiber_sp_, next.fiber_sp_);
  // Re-entered (by resume() or a transfer_to() targeting us).
  finish_arrival_in_fiber(self, self->asan_fake_stack_);
}

void Fiber::run_body() noexcept {
  // First activation: complete the switch begun by resume()/transfer_to().
  // The seeded frame has no saved fake stack, so pass the field (still
  // nullptr) — later re-entries reinstall the one saved at suspension.
  finish_arrival_in_fiber(this, asan_fake_stack_);
  try {
    body_();
  } catch (const FiberKilled&) {
    // Forced termination requested by the scheduler: unwound cleanly.
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: exception escaped fiber body: %s\n", e.what());
    std::abort();
  } catch (...) {
    std::fprintf(stderr, "fatal: unknown exception escaped fiber body\n");
    std::abort();
  }
  finished_ = true;
  // Return to the main context for the last time (finishing fibers never
  // transfer directly: the scheduler's bookkeeping runs in main).
  auto* eh = reinterpret_cast<EhGlobals*>(eh_globals_addr());
  *eh = g_ctx.main_eh;  // our own EH state is dead; restore main's
  tsan_switch(g_ctx.main_tsan);
  // nullptr save: this fiber never runs again, so its fake stack can go.
  asan_start_switch(nullptr, g_ctx.main_asan_bottom, g_ctx.main_asan_size);
  tcc_ctx_swap(&fiber_sp_, g_ctx.main_sp);
  std::abort();  // unreachable: nobody may resume a finished fiber
}

}  // namespace sim

extern "C" void tcc_fiber_entry(sim::Fiber* f) { f->run_body(); }
