#include "sim/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <utility>

extern "C" {
// Defined in context.S.
void tcc_ctx_swap(void** save_sp, void* restore_sp);
void tcc_fiber_entry_thunk();

// Called (via the thunk) on the fiber's own stack at first activation.
void tcc_fiber_entry(sim::Fiber* f);
}

// Itanium C++ ABI exception-handling globals (one per host thread).  We swap
// their contents per fiber so exceptions thrown/caught on different fiber
// stacks never interleave.  Layout per the ABI; __cxa_get_globals is
// provided by libstdc++/libsupc++.
namespace __cxxabiv1 {
struct __cxa_eh_globals {
  void* caughtExceptions;
  unsigned int uncaughtExceptions;
};
extern "C" __cxa_eh_globals* __cxa_get_globals() noexcept;
}  // namespace __cxxabiv1

namespace sim {
namespace {

thread_local Fiber* g_current_fiber = nullptr;

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

}  // namespace

Fiber* Fiber::current() noexcept { return g_current_fiber; }

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)) {
  const std::size_t ps = page_size();
  const std::size_t usable = round_up(stack_bytes, ps);
  map_bytes_ = usable + ps;  // one guard page below the stack
  void* mem = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) throw std::runtime_error("Fiber: mmap failed");
  if (::mprotect(mem, ps, PROT_NONE) != 0) {
    ::munmap(mem, map_bytes_);
    throw std::runtime_error("Fiber: mprotect failed");
  }
  stack_mem_ = mem;

  // Seed the initial frame at the top of the stack: six callee-saved slots
  // (r15 r14 r13 r12 rbx rbp, in pop order) then the thunk's address as the
  // return target of tcc_ctx_swap's final `ret`.
  auto top = reinterpret_cast<std::uintptr_t>(mem) + map_bytes_;
  top &= ~static_cast<std::uintptr_t>(15);  // 16-byte align
  auto* sp = reinterpret_cast<std::uintptr_t*>(top);
  *--sp = reinterpret_cast<std::uintptr_t>(&tcc_fiber_entry_thunk);  // ret target
  *--sp = 0;                                       // rbp
  *--sp = 0;                                       // rbx
  *--sp = reinterpret_cast<std::uintptr_t>(this);  // r12 -> Fiber*
  *--sp = 0;                                       // r13
  *--sp = 0;                                       // r14
  *--sp = 0;                                       // r15
  fiber_sp_ = sp;
}

Fiber::~Fiber() {
  if (started_ && !finished_) {
    // Destroying a suspended fiber would leak whatever RAII state its stack
    // holds; the simulator always runs fibers to completion, so treat this
    // as a usage error rather than trying to unwind a foreign stack.
    std::fprintf(stderr, "sim::Fiber destroyed while suspended; aborting\n");
    std::abort();
  }
  if (stack_mem_ != nullptr) ::munmap(stack_mem_, map_bytes_);
}

void Fiber::resume() {
  if (finished_) throw std::logic_error("Fiber::resume on finished fiber");
  if (g_current_fiber != nullptr)
    throw std::logic_error("Fiber::resume must be called from the main context");
  started_ = true;
  running_ = true;
  g_current_fiber = this;
  // Install the fiber's exception-handling globals, parking the resumer's.
  auto* eh = reinterpret_cast<EhGlobals*>(__cxxabiv1::__cxa_get_globals());
  eh_return_state_ = *eh;
  *eh = eh_state_;
  tcc_ctx_swap(&return_sp_, fiber_sp_);
  // Back from the fiber (yield or finish): park its globals, restore ours.
  eh_state_ = *eh;
  *eh = eh_return_state_;
  g_current_fiber = nullptr;
  running_ = false;
}

void Fiber::yield() {
  Fiber* self = g_current_fiber;
  if (self == nullptr) throw std::logic_error("Fiber::yield outside a fiber");
  tcc_ctx_swap(&self->fiber_sp_, self->return_sp_);
}

void Fiber::run_body() noexcept {
  try {
    body_();
  } catch (const FiberKilled&) {
    // Forced termination requested by the scheduler: unwound cleanly.
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: exception escaped fiber body: %s\n", e.what());
    std::abort();
  } catch (...) {
    std::fprintf(stderr, "fatal: unknown exception escaped fiber body\n");
    std::abort();
  }
  finished_ = true;
  // Return to the resumer for the last time.  tcc_ctx_swap saves a resume
  // point we will never use.
  tcc_ctx_swap(&fiber_sp_, return_sp_);
  std::abort();  // unreachable: nobody may resume a finished fiber
}

}  // namespace sim

extern "C" void tcc_fiber_entry(sim::Fiber* f) { f->run_body(); }
