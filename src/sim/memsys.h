// Timed memory hierarchy for the CMP simulator.
//
// Models per-CPU L1 caches, a shared bus (occupancy + queuing), and an
// always-hitting shared L2.  Two access families are provided:
//
//  * plain_load / plain_store  - MESI snoopy coherence, used for the
//    lock-based ("Java") runs and for non-speculative accesses; contended
//    lines ping-pong between caches with realistic cost.
//  * tx_load / tx_store / tcc_commit - TCC-style lazy transactional timing:
//    speculative stores stay in the L1 (no bus traffic) and commits occupy
//    the bus proportionally to the write-set size, exactly the cost model of
//    the paper's simulated TCC CMP.
//
// Conflict *detection* for transactions is the TM layer's job (line-granular
// read/write sets); MemSys only provides timing plus copy invalidation.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/cpu_mask.h"
#include "sim/flat_map.h"
#include "sim/stats.h"
#include "sim/vaddr.h"

namespace trace {
class Tracer;
}

namespace sim {

using LineAddr = std::uint64_t;

/// Converts a byte address to its cache-line address.
constexpr LineAddr line_of(std::uintptr_t addr) {
  return static_cast<LineAddr>(addr) >> Config::kLineShift;
}

// The arena allocator's line-isolation arithmetic (sim/vaddr.h) must agree
// with the cost model's line granularity.
static_assert(kVaLineBytes == (std::uintptr_t{1} << Config::kLineShift),
              "sim::kVaLineBytes out of sync with Config::kLineShift");

/// Shared split-transaction bus: a single resource with queuing.
class Bus {
 public:
  /// Requests the bus at time `t` for `occupancy` cycles after `arb` cycles
  /// of arbitration; returns the completion time.
  std::uint64_t transact(std::uint64_t t, std::uint32_t arb, std::uint32_t occupancy) {
    std::uint64_t start = t + arb;
    if (start < free_at_) start = free_at_;
    free_at_ = start + occupancy;
    busy_cycles_ += occupancy;
    return free_at_;
  }

  std::uint64_t busy_cycles() const { return busy_cycles_; }

 private:
  std::uint64_t free_at_ = 0;
  std::uint64_t busy_cycles_ = 0;
};

/// Hit/miss counters for the per-thread L1 way-array pool (see MemSys ctor).
/// Cumulative for the calling thread; surfaced by bench/hotpath so the pool
/// stays observable in BENCH_hotpath.json.
struct L1PoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
L1PoolStats l1_pool_stats();

class MemSys {
 public:
  MemSys(const Config& cfg, Stats& stats);
  ~MemSys();
  MemSys(const MemSys&) = delete;
  MemSys& operator=(const MemSys&) = delete;

  // --- MESI (lock-mode / non-speculative) accesses ---
  std::uint64_t plain_load(int cpu, std::uintptr_t addr, std::uint64_t t);
  std::uint64_t plain_store(int cpu, std::uintptr_t addr, std::uint64_t t);

  // --- TCC (transactional-mode) accesses ---
  std::uint64_t tx_load(int cpu, std::uintptr_t addr, std::uint64_t t);
  std::uint64_t tx_store(int cpu, std::uintptr_t addr, std::uint64_t t);

  /// Times a TCC commit broadcasting `write_lines` lines; returns completion.
  std::uint64_t tcc_commit(int cpu, std::size_t write_lines, std::uint64_t t);

  /// Drops every other CPU's cached copy of `line` (commit broadcast).
  void invalidate_copies(int committer, LineAddr line);

  /// Drops the CPU's speculatively written lines (transaction abort).
  void abort_clear_speculative(int cpu);

  const Bus& bus() const { return bus_; }

  /// Attaches/detaches the event tracer (miss events).  Timing is entirely
  /// unaffected: the tracer is consulted behind `if (tracer_)` only after
  /// all cycle accounting for an access is done.
  void set_tracer(trace::Tracer* t) { tracer_ = t; }

 private:
  enum class St : std::uint8_t { I, S, E, M };

  struct Way {
    LineAddr line = 0;
    St state = St::I;
    bool spec_dirty = false;  // TCC: holds speculative (uncommitted) data
    std::uint64_t lru = 0;
  };

  struct Dir {
    CpuMask sharers;  // CPUs with a copy (multi-word: up to kMaxCpus)
    int owner = -1;   // CPU holding the line in E or M (MESI mode)
  };

  Way* find(int cpu, LineAddr line);
  Way& victim(int cpu, LineAddr line);
  void evict(int cpu, Way& w);
  void drop_from(int cpu, LineAddr line);  // cache+dir removal
  void dir_remove_cpu(LineAddr line, int cpu);

  Way* l1_of(int cpu) { return l1_.data() + static_cast<std::size_t>(cpu) * cpu_stride_; }

  static std::vector<std::vector<Way>>& l1_pool();  // per-thread recycled buffers

  const Config& cfg_;
  Stats& stats_;
  Bus bus_;
  // l1_sets is validated as a power of two so the per-access set lookup is
  // a mask, not a runtime integer division (find/victim run on every access).
  std::size_t set_mask_ = 0;
  // All CPUs' L1 ways in ONE flat array, [cpu * cpu_stride_ + set*assoc + way].
  // One array instead of per-CPU vectors removes a pointer chase from find()
  // (every simulated access) and — more importantly — keeps engine teardown
  // from free()ing num_cpus separate blocks: at 128 CPUs that churn crossed
  // glibc's trim threshold, returning ~1.5MB to the kernel per engine and
  // page-faulting it back in the next one (the fiber_spawn_128 cliff).  The
  // single buffer is recycled through a per-thread pool instead.
  std::vector<Way> l1_;
  std::size_t cpu_stride_ = 0;
  // Ways a CPU has speculatively written (spec_dirty set by tx_store), so
  // commit/abort clear exactly those instead of sweeping the whole L1.
  // May hold stale indices (eviction clears the flag without unlisting);
  // consumers re-check spec_dirty, which makes duplicates idempotent too.
  std::vector<std::vector<std::uint32_t>> spec_ways_;
  // Line directory as an open-addressing flat table.  NOTE: unlike
  // unordered_map, insert AND erase can move other entries, so no Dir
  // pointer/reference may be held across another dir_ mutation — the
  // accessors below copy out and write back instead.
  FlatMap<LineAddr, Dir> dir_;
  std::uint64_t lru_tick_ = 0;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace sim
