// Fixed-width bitmask over virtual CPU ids.
//
// Config::kMaxCpus is 128, so any "set of CPUs" (MESI sharer sets, reader
// directories) needs more than one machine word.  CpuMask packs the bits
// into kWords uint64 words and walks set members with countr_zero, so a
// sparse set costs O(set bits) plus one load per word — raising the CPU
// ceiling does not tax simulations that use 8 CPUs.
#pragma once

#include <bit>
#include <cstdint>

#include "sim/config.h"

namespace sim {

struct CpuMask {
  static constexpr int kWords = (Config::kMaxCpus + 63) / 64;

  std::uint64_t w[kWords] = {};

  static constexpr CpuMask one(int cpu) {
    CpuMask m;
    m.w[cpu >> 6] = std::uint64_t{1} << (cpu & 63);
    return m;
  }

  constexpr void set(int cpu) { w[cpu >> 6] |= std::uint64_t{1} << (cpu & 63); }
  constexpr void clear(int cpu) { w[cpu >> 6] &= ~(std::uint64_t{1} << (cpu & 63)); }
  constexpr bool test(int cpu) const {
    return ((w[cpu >> 6] >> (cpu & 63)) & 1u) != 0;
  }
  constexpr bool none() const {
    for (int i = 0; i < kWords; ++i)
      if (w[i] != 0) return false;
    return true;
  }
  constexpr bool any() const { return !none(); }
  constexpr void reset() {
    for (int i = 0; i < kWords; ++i) w[i] = 0;
  }

  /// Calls f(cpu) for every set bit, ascending; zero words are skipped and
  /// each set bit is found with countr_zero, never a per-CPU scan.
  template <class F>
  void for_each(F f) const {
    for (int wi = 0; wi < kWords; ++wi) {
      std::uint64_t m = w[wi];
      while (m != 0) {
        f(wi * 64 + std::countr_zero(m));
        m &= m - 1;
      }
    }
  }

  /// for_each with one CPU excluded — the shared kernel behind commit
  /// broadcast (invalidate all copies but the committer's) and MESI
  /// write-upgrade (drop all sharers but the writer).  The excluded bit is
  /// masked out of its word up front, so members are walked with the same
  /// branch-free countr_zero loop and callers drop their per-member
  /// `if (c != me)` test.
  template <class F>
  void for_each_except(int skip, F f) const {
    const int skip_word = skip >> 6;
    const std::uint64_t skip_bit = std::uint64_t{1} << (skip & 63);
    for (int wi = 0; wi < kWords; ++wi) {
      std::uint64_t m = w[wi];
      if (wi == skip_word) m &= ~skip_bit;
      while (m != 0) {
        f(wi * 64 + std::countr_zero(m));
        m &= m - 1;
      }
    }
  }
};

}  // namespace sim
