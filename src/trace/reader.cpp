#include "trace/reader.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace trace {
namespace {

struct Parser {
  const std::string& buf;
  std::size_t pos = 0;

  explicit Parser(const std::string& b) : buf(b) {}

  void need(std::size_t n) const {
    if (pos + n > buf.size())
      throw std::runtime_error("txtrace: truncated trace file");
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(buf[pos + i]))
           << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(buf[pos + i]))
           << (8 * i);
    pos += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s = buf.substr(pos, n);
    pos += n;
    return s;
  }
};

std::string hex(std::uint64_t v) {
  char b[32];
  std::snprintf(b, sizeof b, "0x%llx", static_cast<unsigned long long>(v));
  return b;
}

bool top_level(Kind k) {
  return k == Kind::kTxnBegin || k == Kind::kTxnCommit || k == Kind::kTxnAbort;
}

}  // namespace

TraceFile read_trace_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("txtrace: cannot open " + path);
  std::string buf((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  Parser p(buf);

  p.need(8);
  if (buf.compare(0, 8, "TXTRACE1") != 0)
    throw std::runtime_error("txtrace: bad magic in " + path);
  p.pos = 8;

  TraceFile tf;
  tf.num_cpus = static_cast<int>(p.u32());
  if (tf.num_cpus < 0 || tf.num_cpus > 4096)
    throw std::runtime_error("txtrace: implausible cpu count");

  const std::uint32_t nlabels = p.u32();
  for (std::uint32_t i = 0; i < nlabels; ++i) {
    const std::uint64_t line = p.u64();
    tf.labels[line] = p.str();
  }
  const std::uint32_t ntables = p.u32();
  for (std::uint32_t i = 0; i < ntables; ++i) tf.table_names.push_back(p.str());

  tf.events.resize(static_cast<std::size_t>(tf.num_cpus));
  for (int c = 0; c < tf.num_cpus; ++c) {
    const std::uint64_t n = p.u64();
    auto& v = tf.events[static_cast<std::size_t>(c)];
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      Event e{};
      e.cycle = p.u64();
      e.arg = p.u64();
      e.seq = p.u32();
      const std::uint32_t packed = p.u32();
      e.aux = static_cast<std::uint16_t>(packed & 0xFFFFu);
      e.kind = static_cast<std::uint8_t>((packed >> 16) & 0xFFu);
      e.cpu = static_cast<std::uint8_t>((packed >> 24) & 0xFFu);
      v.push_back(e);
    }
  }
  for (int c = 0; c < tf.num_cpus; ++c) tf.dropped.push_back(p.u64());
  return tf;
}

std::string label_of(const TraceFile& tf, std::uint64_t line) {
  auto it = tf.labels.find(line);
  return it != tf.labels.end() ? it->second : hex(line);
}

std::string table_of(const TraceFile& tf, std::uint64_t id) {
  if (id < tf.table_names.size() && !tf.table_names[id].empty())
    return tf.table_names[id];
  return "table#" + std::to_string(id);
}

// ---------------------------------------------------------------------------
// Conflict attribution
// ---------------------------------------------------------------------------

namespace {

struct Flag {
  std::uint64_t cycle;
  std::uint64_t key;   // line address or table id
  std::uint32_t order;  // global scan order (cpu asc, seq asc) for tie-breaks
  bool semantic;
};

}  // namespace

Attribution attribute(const TraceFile& tf) {
  Attribution a;
  a.chain_histogram.assign(Attribution::kMaxChain + 1, 0);
  for (std::uint64_t d : tf.dropped) a.dropped_events += d;

  // Collect violation flags per victim CPU, sorted by (cycle, scan order).
  std::vector<std::vector<Flag>> flags(
      static_cast<std::size_t>(tf.num_cpus));
  std::uint32_t order = 0;
  for (const auto& v : tf.events) {
    for (const Event& e : v) {
      const Kind k = static_cast<Kind>(e.kind);
      if (k != Kind::kViolationFlag && k != Kind::kSemViolationFlag) continue;
      const auto victim = static_cast<std::size_t>(e.aux);
      if (victim < flags.size())
        flags[victim].push_back(
            {e.cycle, e.arg, order, k == Kind::kSemViolationFlag});
      ++order;
    }
  }
  for (auto& v : flags)
    std::stable_sort(v.begin(), v.end(), [](const Flag& x, const Flag& y) {
      return x.cycle != y.cycle ? x.cycle < y.cycle : x.order < y.order;
    });

  // Site table keyed by (semantic, key).
  std::unordered_map<std::uint64_t, ConflictSite> mem_sites, sem_sites;
  auto site = [&](bool semantic, std::uint64_t key) -> ConflictSite& {
    auto& m = semantic ? sem_sites : mem_sites;
    ConflictSite& s = m[key];
    if (s.name.empty()) {
      s.key = key;
      s.semantic = semantic;
      s.name = semantic ? table_of(tf, key) : label_of(tf, key);
    }
    return s;
  };
  for (const auto& v : tf.events)
    for (const Event& e : v) {
      const Kind k = static_cast<Kind>(e.kind);
      if (k == Kind::kViolationFlag) site(false, e.arg).flags += 1;
      if (k == Kind::kSemViolationFlag) site(true, e.arg).flags += 1;
    }

  // Walk each CPU's stream: counters, chains, and per-abort attribution.
  for (int c = 0; c < tf.num_cpus; ++c) {
    const auto& v = tf.events[static_cast<std::size_t>(c)];
    const auto& fl = flags[static_cast<std::size_t>(c)];
    std::uint64_t begin_cycle = 0;
    std::size_t chain = 0;
    auto close_chain = [&] {
      if (chain == 0) return;
      a.chain_histogram[std::min(chain, Attribution::kMaxChain)] += 1;
      chain = 0;
    };
    for (const Event& e : v) {
      switch (static_cast<Kind>(e.kind)) {
        case Kind::kTxnBegin:
          begin_cycle = e.cycle;
          break;
        case Kind::kTxnCommit:
          a.commits += 1;
          close_chain();
          break;
        case Kind::kOpenCommit:
          a.open_commits += 1;
          break;
        case Kind::kOpenAbort:
          a.open_aborts += 1;
          break;
        case Kind::kTxnAbort: {
          a.aborts += 1;
          chain += 1;
          a.wasted_total += e.arg;
          const bool want_sem = (e.aux & kAuxSemanticBit) != 0;
          // Latest flag at or before the abort, preferring the current
          // incarnation's window [begin, abort] and the kill's kind.
          auto it = std::upper_bound(
              fl.begin(), fl.end(), e.cycle,
              [](std::uint64_t t, const Flag& f) { return t < f.cycle; });
          const Flag* best = nullptr;
          const Flag* fallback = nullptr;
          while (it != fl.begin()) {
            --it;
            if (it->semantic != want_sem) continue;
            if (it->cycle >= begin_cycle) {
              best = &*it;
              break;
            }
            if (fallback == nullptr) fallback = &*it;
            break;  // older flags are even further out of window
          }
          if (best == nullptr) best = fallback;
          if (best != nullptr) {
            ConflictSite& s = site(best->semantic, best->key);
            s.wasted_cycles += e.arg;
            if (best->semantic)
              a.wasted_semantic += e.arg;
            else
              a.wasted_memory += e.arg;
          } else {
            a.wasted_unattributed += e.arg;
          }
          break;
        }
        default:
          break;
      }
    }
    close_chain();
  }

  for (auto& [k, s] : mem_sites) a.sites.push_back(s);
  for (auto& [k, s] : sem_sites) a.sites.push_back(s);
  std::sort(a.sites.begin(), a.sites.end(),
            [](const ConflictSite& x, const ConflictSite& y) {
              if (x.wasted_cycles != y.wasted_cycles)
                return x.wasted_cycles > y.wasted_cycles;
              if (x.flags != y.flags) return x.flags > y.flags;
              return x.name < y.name;
            });
  return a;
}

std::string format_report(const TraceFile& tf, const Attribution& a,
                          std::size_t top_k) {
  std::string out;
  char b[256];
  auto pct = [&](std::uint64_t num) {
    return a.wasted_total == 0
               ? 0.0
               : 100.0 * static_cast<double>(num) /
                     static_cast<double>(a.wasted_total);
  };
  std::size_t total_events = 0;
  for (const auto& v : tf.events) total_events += v.size();

  std::snprintf(b, sizeof b,
                "txtrace conflict-attribution report\n"
                "  cpus: %d   events: %zu   dropped: %llu\n",
                tf.num_cpus, total_events,
                static_cast<unsigned long long>(a.dropped_events));
  out += b;
  std::snprintf(
      b, sizeof b,
      "  top-level:   %llu commits, %llu aborts (%.2f aborts/commit)\n",
      static_cast<unsigned long long>(a.commits),
      static_cast<unsigned long long>(a.aborts),
      a.commits == 0 ? 0.0
                     : static_cast<double>(a.aborts) /
                           static_cast<double>(a.commits));
  out += b;
  std::snprintf(b, sizeof b, "  open-nested: %llu commits, %llu aborts\n",
                static_cast<unsigned long long>(a.open_commits),
                static_cast<unsigned long long>(a.open_aborts));
  out += b;
  std::snprintf(b, sizeof b,
                "  wasted cycles: %llu  (memory %.1f%%, semantic %.1f%%, "
                "unattributed %.1f%%)\n\n",
                static_cast<unsigned long long>(a.wasted_total),
                pct(a.wasted_memory), pct(a.wasted_semantic),
                pct(a.wasted_unattributed));
  out += b;

  out += "top conflict sites (by attributed wasted cycles):\n";
  out += "  rank kind site                              flags      wasted "
         "  share\n";
  std::size_t rank = 0;
  for (const ConflictSite& s : a.sites) {
    if (rank >= top_k) break;
    ++rank;
    std::snprintf(b, sizeof b, "  %-4zu %-4s %-32s %7llu %12llu %6.1f%%\n",
                  rank, s.semantic ? "sem" : "mem", s.name.c_str(),
                  static_cast<unsigned long long>(s.flags),
                  static_cast<unsigned long long>(s.wasted_cycles),
                  pct(s.wasted_cycles));
    out += b;
  }
  if (a.sites.empty()) out += "  (no violation flags recorded)\n";

  out += "\nabort-chain depth histogram (consecutive top-level aborts per "
         "CPU):\n";
  bool any = false;
  for (std::size_t d = 1; d < a.chain_histogram.size(); ++d) {
    if (a.chain_histogram[d] == 0) continue;
    any = true;
    std::snprintf(b, sizeof b, "  depth %s%zu: %llu\n",
                  d == Attribution::kMaxChain ? ">=" : "", d,
                  static_cast<unsigned long long>(a.chain_histogram[d]));
    out += b;
  }
  if (!any) out += "  (no aborts)\n";
  return out;
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON
// ---------------------------------------------------------------------------

namespace {

void json_escape(std::string& out, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char b[8];
          std::snprintf(b, sizeof b, "\\u%04x", ch);
          out += b;
        } else {
          out += ch;
        }
    }
  }
}

class JsonWriter {
 public:
  explicit JsonWriter(std::string& out) : out_(out) {}

  void event(const std::string& name, const char* ph, int tid,
             std::uint64_t ts, const std::string& extra) {
    if (!first_) out_ += ",\n";
    first_ = false;
    out_ += R"({"name":")";
    json_escape(out_, name);
    out_ += R"(","ph":")";
    out_ += ph;
    out_ += R"(","pid":0,"tid":)";
    out_ += std::to_string(tid);
    out_ += R"(,"ts":)";
    out_ += std::to_string(ts);
    if (!extra.empty()) {
      out_ += ",";
      out_ += extra;
    }
    out_ += "}";
  }

 private:
  std::string& out_;
  bool first_ = true;
};

}  // namespace

std::string chrome_trace_json(const TraceFile& tf) {
  std::string out;
  out += "{\"traceEvents\":[\n";
  JsonWriter w(out);

  for (int c = 0; c < tf.num_cpus; ++c)
    w.event("thread_name", "M", c, 0,
            R"("args":{"name":"cpu )" + std::to_string(c) + R"("})");

  // Victim abort index for flow arrows: per cpu, the (cycle) of each
  // top-level abort in stream order.
  std::vector<std::vector<std::uint64_t>> abort_cycles(
      static_cast<std::size_t>(tf.num_cpus));
  for (const auto& v : tf.events)
    for (const Event& e : v)
      if (static_cast<Kind>(e.kind) == Kind::kTxnAbort)
        abort_cycles[e.cpu].push_back(e.cycle);

  std::uint64_t flow_id = 0;
  for (int c = 0; c < tf.num_cpus; ++c) {
    const auto& v = tf.events[static_cast<std::size_t>(c)];
    std::vector<Kind> open_slices;
    std::uint64_t last_cycle = 0;
    for (const Event& e : v) {
      last_cycle = e.cycle;
      const Kind k = static_cast<Kind>(e.kind);
      switch (k) {
        case Kind::kTxnBegin:
        case Kind::kOpenBegin: {
          const bool open = k == Kind::kOpenBegin;
          w.event(open ? "open" : "txn", "B", c, e.cycle,
                  R"("args":{"incarnation":)" + std::to_string(e.arg) +
                      R"(,"attempt":)" +
                      std::to_string(e.aux & ~kAuxSemanticBit) + "}");
          open_slices.push_back(k);
          break;
        }
        case Kind::kTxnCommit:
        case Kind::kOpenCommit:
          w.event(k == Kind::kOpenCommit ? "open" : "txn", "E", c, e.cycle,
                  R"("args":{"writes":)" + std::to_string(e.arg) + "}");
          if (!open_slices.empty()) open_slices.pop_back();
          break;
        case Kind::kTxnAbort:
        case Kind::kOpenAbort:
          w.event(k == Kind::kOpenAbort ? "open" : "txn", "E", c, e.cycle,
                  R"("args":{"aborted":true,"lost":)" + std::to_string(e.arg) +
                      R"(,"semantic":)" +
                      ((e.aux & kAuxSemanticBit) != 0 ? "true" : "false") +
                      "}");
          if (!open_slices.empty()) open_slices.pop_back();
          break;
        case Kind::kLockAcquire:
          w.event("lock:" + table_of(tf, e.arg), "i", c, e.cycle,
                  R"("s":"t")");
          break;
        case Kind::kLockRelease:
          w.event("unlock:" + table_of(tf, e.arg), "i", c, e.cycle,
                  R"("s":"t")");
          break;
        case Kind::kLockBlock:
          w.event("token-wait(owner=cpu" + std::to_string(e.arg) + ")", "i",
                  c, e.cycle, R"("s":"t")");
          break;
        case Kind::kViolationFlag:
        case Kind::kSemViolationFlag: {
          const bool sem = k == Kind::kSemViolationFlag;
          const std::string site =
              sem ? table_of(tf, e.arg) : label_of(tf, e.arg);
          const int victim = static_cast<int>(e.aux);
          w.event((sem ? "sem-violate:" : "violate:") + site, "i", c, e.cycle,
                  R"("s":"t","args":{"victim":)" + std::to_string(victim) +
                      "}");
          // Flow arrow to the victim's next top-level abort.
          if (victim >= 0 && victim < tf.num_cpus) {
            const auto& ac = abort_cycles[static_cast<std::size_t>(victim)];
            auto it = std::lower_bound(ac.begin(), ac.end(), e.cycle);
            if (it != ac.end()) {
              const std::uint64_t id = flow_id++;
              w.event("violation", "s", c, e.cycle,
                      R"("cat":"violation","id":)" + std::to_string(id));
              w.event("violation", "f", victim, *it,
                      R"("cat":"violation","bp":"e","id":)" +
                          std::to_string(id));
            }
          }
          break;
        }
        case Kind::kHandlerRun:
          w.event(e.aux != 0 ? "abort-handlers" : "commit-handlers", "i", c,
                  e.cycle,
                  R"("s":"t","args":{"count":)" + std::to_string(e.arg) + "}");
          break;
        case Kind::kMiss: {
          static const char* kNames[] = {"miss:load", "miss:store",
                                         "miss:tx-load", "miss:tx-store"};
          const std::size_t klass = std::min<std::size_t>(e.aux, 3);
          w.event(kNames[klass], "i", c, e.cycle,
                  R"("s":"t","args":{"line":")" + hex(e.arg) + R"("})");
          break;
        }
        default:
          break;
      }
    }
    // Close any slice left open by buffer overflow or a torn stream so the
    // JSON stays balanced.
    while (!open_slices.empty()) {
      w.event(open_slices.back() == Kind::kOpenBegin ? "open" : "txn", "E", c,
              last_cycle, R"("args":{"truncated":true})");
      open_slices.pop_back();
    }
  }

  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

}  // namespace trace
