// txtrace file reader + analyses shared by tools/txtrace and the tests:
// conflict attribution (top-K addresses / semantic locks, wasted cycles per
// abort cause, abort-chain depth histograms) and Chrome trace-event JSON.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/events.h"

namespace trace {

struct TraceFile {
  int num_cpus = 0;
  std::unordered_map<std::uint64_t, std::string> labels;  // line -> name
  std::vector<std::string> table_names;                   // dense id -> name
  std::vector<std::vector<Event>> events;                 // per cpu, seq order
  std::vector<std::uint64_t> dropped;                     // per cpu
};

// Parses a file produced by Tracer::write.  Throws std::runtime_error on a
// missing/short/garbled file.
TraceFile read_trace_file(const std::string& path);

// Resolve a cache-line address to its Profile label ("HashMap.size", ...) or
// a hex address when unlabeled.
std::string label_of(const TraceFile& tf, std::uint64_t line);
// Resolve a dense table id to its registered name or "table#<id>".
std::string table_of(const TraceFile& tf, std::uint64_t id);

struct ConflictSite {
  std::string name;             // label or table name
  std::uint64_t key = 0;        // line address or table id
  bool semantic = false;        // semantic lock vs memory line
  std::uint64_t flags = 0;      // violation flags raised at this site
  std::uint64_t wasted_cycles = 0;  // abort-lost cycles attributed here
};

struct Attribution {
  std::vector<ConflictSite> sites;  // sorted: wasted desc, flags desc, name
  std::uint64_t commits = 0;        // top-level commits
  std::uint64_t aborts = 0;         // top-level aborts
  std::uint64_t open_commits = 0;
  std::uint64_t open_aborts = 0;
  std::uint64_t wasted_total = 0;       // sum of abort lost-cycle args
  std::uint64_t wasted_memory = 0;      // attributed to a memory line
  std::uint64_t wasted_semantic = 0;    // attributed to a semantic lock
  std::uint64_t wasted_unattributed = 0;
  // chain_histogram[d] = number of maximal runs of d consecutive top-level
  // aborts on one CPU (d capped at kMaxChain).
  static constexpr std::size_t kMaxChain = 32;
  std::vector<std::uint64_t> chain_histogram;
  std::uint64_t dropped_events = 0;
};

// Attribute every top-level abort to the most recent violation flag that
// targeted its CPU at or before the abort's cycle (semantic flags win when
// the abort was semantically killed).  Deterministic: ties broken by
// (cpu, seq) of the flag.
Attribution attribute(const TraceFile& tf);

// Human-readable conflict-attribution report (top_k sites).
std::string format_report(const TraceFile& tf, const Attribution& a,
                          std::size_t top_k = 10);

// Chrome trace-event JSON (chrome://tracing / Perfetto): one track per CPU,
// nested transaction/open-nested slices, instants for flags/locks/misses,
// flow arrows from each writer's violation flag to the victim's next abort.
std::string chrome_trace_json(const TraceFile& tf);

}  // namespace trace
