// txtrace: deterministic per-virtual-CPU event buffers.
//
// A Tracer owns one fixed-capacity buffer per virtual CPU.  The emission
// hooks (`on_*`) are the ONLY code that runs on the simulated hot path; they
// are branch-predictable bounds-check-and-store bodies that never allocate,
// never touch Shared<T> and never tick the engine clock (enforced statically
// by txlint's `trace-hook` rule).  Everything else — table naming, label
// registration, serialization — is setup/teardown-time and may allocate.
//
// Overflow policy: drop-newest.  When a CPU's buffer is full, further events
// on that CPU bump a `dropped` counter (the seq counter still advances, so a
// reader can see the hole).  Dropping never perturbs simulated cycles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "trace/events.h"

namespace trace {

inline constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

class Tracer {
 public:
  explicit Tracer(int num_cpus, std::size_t capacity_per_cpu = kDefaultCapacity);

  // --- hot-path emission hooks (alloc-free; see txlint trace-hook) ---------

  void on_txn_begin(int cpu, std::uint64_t cycle, bool open,
                    std::uint64_t incarnation, int attempt) {
    on_event(cpu, cycle, open ? Kind::kOpenBegin : Kind::kTxnBegin,
             incarnation, pack_abort_aux(attempt, false));
  }
  void on_txn_commit(int cpu, std::uint64_t cycle, bool open,
                     std::uint64_t write_entries) {
    on_event(cpu, cycle, open ? Kind::kOpenCommit : Kind::kTxnCommit,
             write_entries, 0);
  }
  void on_txn_abort(int cpu, std::uint64_t cycle, bool open,
                    std::uint64_t lost_cycles, int attempt, bool semantic) {
    on_event(cpu, cycle, open ? Kind::kOpenAbort : Kind::kTxnAbort,
             lost_cycles, pack_abort_aux(attempt, semantic));
  }
  void on_lock_acquire(int cpu, std::uint64_t cycle, const void* table) {
    on_event(cpu, cycle, Kind::kLockAcquire,
             reinterpret_cast<std::uintptr_t>(table), 0);
  }
  void on_lock_release(int cpu, std::uint64_t cycle, const void* table) {
    on_event(cpu, cycle, Kind::kLockRelease,
             reinterpret_cast<std::uintptr_t>(table), 0);
  }
  void on_lock_block(int cpu, std::uint64_t cycle, int owner_cpu) {
    on_event(cpu, cycle, Kind::kLockBlock,
             static_cast<std::uint64_t>(owner_cpu), 0);
  }
  void on_violation_flag(int cpu, std::uint64_t cycle, std::uint64_t line,
                         int victim_cpu) {
    on_event(cpu, cycle, Kind::kViolationFlag, line,
             static_cast<std::uint16_t>(victim_cpu));
  }
  void on_sem_violation(int cpu, std::uint64_t cycle, const void* table,
                        int victim_cpu) {
    on_event(cpu, cycle, Kind::kSemViolationFlag,
             reinterpret_cast<std::uintptr_t>(table),
             static_cast<std::uint16_t>(victim_cpu));
  }
  void on_handler_run(int cpu, std::uint64_t cycle, bool abort_path,
                      std::uint64_t handler_count) {
    on_event(cpu, cycle, Kind::kHandlerRun, handler_count,
             abort_path ? 1 : 0);
  }
  void on_miss(int cpu, std::uint64_t cycle, std::uint64_t line,
               MissClass klass) {
    on_event(cpu, cycle, Kind::kMiss, line,
             static_cast<std::uint16_t>(klass));
  }

  // --- setup/teardown-time API (may allocate) ------------------------------

  // Associate a human name with a semantic lock table (the raw host pointer
  // recorded by on_lock_* / on_sem_violation).  Called by collection-class
  // constructors during setup.
  void name_table(const void* table, const std::string& name);

  // Record a Profile label for a cache-line address; dumped from the
  // Runtime's Profile at teardown so violation flags resolve to names.
  void set_label(std::uint64_t line, const std::string& name);

  // Serialize deterministically: events in canonical (cpu, seq) order with
  // pointer-valued args interned to dense first-appearance ids.  Throws
  // std::runtime_error on I/O failure.
  void write(const std::string& path) const;

  // --- introspection -------------------------------------------------------

  int num_cpus() const { return num_cpus_; }
  std::size_t capacity() const { return cap_; }
  std::size_t count(int cpu) const { return bufs_[idx(cpu)].n; }
  std::uint64_t dropped(int cpu) const { return bufs_[idx(cpu)].dropped; }
  const Event* events(int cpu) const { return bufs_[idx(cpu)].ev.get(); }
  const std::unordered_map<std::uint64_t, std::string>& labels() const {
    return labels_;
  }

 private:
  struct Buf {
    std::unique_ptr<Event[]> ev;
    std::uint32_t n = 0;
    std::uint32_t seq = 0;
    std::uint64_t dropped = 0;
  };

  static std::size_t idx(int cpu) { return static_cast<std::size_t>(cpu); }

  // The single raw-store body every hook funnels through.
  void on_event(int cpu, std::uint64_t cycle, Kind kind, std::uint64_t arg,
                std::uint16_t aux) {
    Buf& b = bufs_[idx(cpu)];
    if (b.n >= cap_) {
      b.dropped += 1;
      b.seq += 1;
      return;
    }
    Event& e = b.ev[b.n];
    e.cycle = cycle;
    e.arg = arg;
    e.seq = b.seq;
    e.aux = aux;
    e.kind = static_cast<std::uint8_t>(kind);
    e.cpu = static_cast<std::uint8_t>(cpu);
    b.n += 1;
    b.seq += 1;
  }

  int num_cpus_;
  std::uint32_t cap_;
  std::unique_ptr<Buf[]> bufs_;
  std::unordered_map<const void*, std::string> table_names_;
  std::unordered_map<std::uint64_t, std::string> labels_;
};

// ---------------------------------------------------------------------------
// Thread-local trace request: how `--trace` reaches a Runtime that is
// constructed deep inside a series body without changing any bench code.
// The harness driver sets a request before invoking the series; the next
// Runtime constructed on this host thread consumes it and attaches a tracer.
// An empty path attaches an in-memory tracer that is audited but never
// written (used by the hotpath overhead twins).
// ---------------------------------------------------------------------------

struct Request {
  std::string path;
  std::size_t capacity = kDefaultCapacity;
};

void set_request(const std::string& path,
                 std::size_t capacity = kDefaultCapacity);
// Returns true and fills `out` if a request was pending; consumes it.
bool take_request(Request& out);
void clear_request();

}  // namespace trace
