// txtrace event records (binary, per-virtual-CPU streams).
//
// One Event is 24 bytes of plain data.  Events are stamped with the emitting
// CPU's *simulated* clock and a per-CPU emission sequence number; the stream
// never records host time, host thread ids or host pointers (pointer-valued
// arguments are interned to dense ids at serialization), so a trace file is a
// pure function of (Config, seed) and byte-identical for any `--jobs N`.
//
// Per-CPU ordering invariant: every event is emitted by the fiber currently
// running on that CPU, at that CPU's own clock, so within one buffer `cycle`
// is non-decreasing and append order equals the canonical (cpu, cycle, seq)
// merge order.  Cross-CPU facts are therefore recorded on the track of the
// CPU that *performs* the action — a violation flag lives on the committing
// writer's track (with the victim CPU in `aux`), never on the victim's,
// whose clock may already be ahead of the committer's.
#pragma once

#include <cstdint>

namespace trace {

enum class Kind : std::uint8_t {
  kNone = 0,
  // Top-level (closed-nesting bottom) transactions.  arg = incarnation on
  // begin; arg = write-set entries on commit; arg = wasted cycles on abort.
  kTxnBegin,
  kTxnCommit,
  kTxnAbort,
  // Open-nested transactions (children and detached abort-compensation).
  kOpenBegin,
  kOpenCommit,
  kOpenAbort,
  // Semantic locks: arg = lock-table id (a host pointer in the in-memory
  // buffer, a dense id in the file).
  kLockAcquire,
  kLockRelease,
  // Commit-token arbitration wait: arg = the CPU holding the token.
  kLockBlock,
  // Memory-level conflict: emitted on the WRITER's track at broadcast time.
  // arg = conflicting cache-line address (virtual), aux = victim CPU.
  kViolationFlag,
  // Semantic (program-directed) conflict: arg = lock-table id, aux = victim.
  kSemViolationFlag,
  // Commit/abort handler batch: arg = handler count, aux = 1 for abort.
  kHandlerRun,
  // L1 miss: arg = line address, aux = class (see MissClass).
  kMiss,
};

enum class MissClass : std::uint16_t {
  kPlainLoad = 0,
  kPlainStore = 1,
  kTxLoad = 2,
  kTxStore = 3,
};

struct Event {
  std::uint64_t cycle;  // emitting CPU's simulated clock
  std::uint64_t arg;    // kind-specific payload (see Kind)
  std::uint32_t seq;    // per-CPU emission counter (ties within one cycle)
  std::uint16_t aux;    // kind-specific small payload
  std::uint8_t kind;    // a trace::Kind
  std::uint8_t cpu;     // emitting virtual CPU
};

static_assert(sizeof(Event) == 24, "Event must stay a packed 24-byte record");

// Abort events carry the attempt number and the semantic-violation bit in
// aux: low 15 bits = attempt (saturated), bit 15 = killed by a semantic
// (program-directed) violation rather than a memory conflict.
inline constexpr std::uint16_t kAuxSemanticBit = 0x8000u;

inline std::uint16_t pack_abort_aux(int attempt, bool semantic) {
  std::uint32_t a = attempt < 0 ? 0u : static_cast<std::uint32_t>(attempt);
  if (a > 0x7FFFu) a = 0x7FFFu;
  return static_cast<std::uint16_t>(a | (semantic ? kAuxSemanticBit : 0u));
}

}  // namespace trace
