#include "trace/tracer.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace trace {
namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

bool arg_is_table(Kind k) {
  return k == Kind::kLockAcquire || k == Kind::kLockRelease ||
         k == Kind::kSemViolationFlag;
}

}  // namespace

Tracer::Tracer(int num_cpus, std::size_t capacity_per_cpu)
    : num_cpus_(num_cpus),
      cap_(static_cast<std::uint32_t>(
          capacity_per_cpu == 0 ? 1 : capacity_per_cpu)),
      bufs_(new Buf[static_cast<std::size_t>(num_cpus > 0 ? num_cpus : 1)]) {
  for (int c = 0; c < num_cpus_; ++c)
    bufs_[idx(c)].ev = std::make_unique<Event[]>(cap_);
}

void Tracer::name_table(const void* table, const std::string& name) {
  table_names_[table] = name;
}

void Tracer::set_label(std::uint64_t line, const std::string& name) {
  labels_[line] = name;
}

// File layout (all integers little-endian):
//   "TXTRACE1"
//   u32 num_cpus
//   u32 num_labels, then per label: u64 line, u32 len, bytes   (line-sorted)
//   u32 num_tables, then per dense id: u32 len, bytes          (id order)
//   per cpu 0..N-1: u64 count, count * 24-byte events,
//                   with table-pointer args replaced by dense ids
//   per cpu 0..N-1: u64 dropped
//
// Table ids are assigned by first appearance in (cpu asc, seq asc) order, so
// they are a pure function of the simulated execution even though the
// in-memory args are host pointers.
void Tracer::write(const std::string& path) const {
  std::string out;
  out.append("TXTRACE1");
  put_u32(out, static_cast<std::uint32_t>(num_cpus_));

  std::vector<std::pair<std::uint64_t, std::string>> labels(labels_.begin(),
                                                            labels_.end());
  std::sort(labels.begin(), labels.end());
  put_u32(out, static_cast<std::uint32_t>(labels.size()));
  for (const auto& [line, name] : labels) {
    put_u64(out, line);
    put_str(out, name);
  }

  // Intern table pointers in canonical order.
  std::unordered_map<std::uint64_t, std::uint32_t> table_id;
  std::vector<std::uint64_t> table_ptrs;
  for (int c = 0; c < num_cpus_; ++c) {
    const Buf& b = bufs_[idx(c)];
    for (std::uint32_t i = 0; i < b.n; ++i) {
      const Event& e = b.ev[i];
      if (!arg_is_table(static_cast<Kind>(e.kind))) continue;
      if (table_id.emplace(e.arg, table_ptrs.size()).second)
        table_ptrs.push_back(e.arg);
    }
  }
  put_u32(out, static_cast<std::uint32_t>(table_ptrs.size()));
  for (std::uint64_t p : table_ptrs) {
    auto it = table_names_.find(reinterpret_cast<const void*>(
        static_cast<std::uintptr_t>(p)));
    put_str(out, it == table_names_.end() ? std::string() : it->second);
  }

  for (int c = 0; c < num_cpus_; ++c) {
    const Buf& b = bufs_[idx(c)];
    put_u64(out, b.n);
    for (std::uint32_t i = 0; i < b.n; ++i) {
      Event e = b.ev[i];
      if (arg_is_table(static_cast<Kind>(e.kind))) e.arg = table_id.at(e.arg);
      put_u64(out, e.cycle);
      put_u64(out, e.arg);
      put_u32(out, e.seq);
      put_u32(out, static_cast<std::uint32_t>(e.aux) |
                       (static_cast<std::uint32_t>(e.kind) << 16) |
                       (static_cast<std::uint32_t>(e.cpu) << 24));
    }
  }
  for (int c = 0; c < num_cpus_; ++c) put_u64(out, bufs_[idx(c)].dropped);

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("txtrace: cannot open " + path);
  f.write(out.data(), static_cast<std::streamsize>(out.size()));
  f.flush();
  if (!f) throw std::runtime_error("txtrace: short write to " + path);
}

// --- thread-local request plumbing -----------------------------------------

namespace {
thread_local Request tls_request;       // NOLINT
thread_local bool tls_request_pending = false;  // NOLINT
}  // namespace

void set_request(const std::string& path, std::size_t capacity) {
  tls_request.path = path;
  tls_request.capacity = capacity == 0 ? kDefaultCapacity : capacity;
  tls_request_pending = true;
}

bool take_request(Request& out) {
  if (!tls_request_pending) return false;
  out = tls_request;
  tls_request_pending = false;
  return true;
}

void clear_request() { tls_request_pending = false; }

}  // namespace trace
