#include "srv/workload.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/open_counter.h"
#include "core/txmap.h"
#include "core/txqueue.h"
#include "jstd/hashmap.h"
#include "jstd/linkedqueue.h"
#include "sim/engine.h"
#include "sim/stats.h"
#include "srv/exp_table.h"
#include "tm/chop.h"
#include "tm/mutex.h"
#include "tm/runtime.h"

namespace srv {
namespace {

// Simulated service demand per handler step.  A cache hit answers from the
// session table; a miss additionally pays the simulated backing-store fetch
// and refills the cache line.
constexpr std::uint64_t kThinkHit = 400;
constexpr std::uint64_t kThinkMiss = 2200;
constexpr std::uint64_t kThinkUpdate = 900;
constexpr std::uint64_t kThinkTransfer = 1200;

// Idle workers back off exponentially between queue probes so low-load
// points don't burn simulated cycles (and scheduler events) spinning.
constexpr std::uint64_t kBackoffMin = 64;
constexpr std::uint64_t kBackoffMax = 2048;

std::uint64_t rnd(std::uint64_t& s) {
  s = s * 6364136223846793005ULL + 1442695040888963407ULL;
  return s >> 33;
}

enum Stat { kStatHit, kStatMiss, kStatRevenue };

/// The flavor-independent handler logic.  `MapT` is any Map-shaped type
/// (plain jstd::HashMap or TransactionalMap); `bump` records a statistics
/// increment in whatever isolation the flavor uses.  Handlers draw no
/// randomness, so a violated transaction replays bit-identically.
template <class SessionsT, class CacheT, class BumpFn>
void handle_request(const Request& r, SessionsT& sessions, CacheT& cache,
                    long cache_slots, BumpFn&& bump) {
  switch (r.kind) {
    case 0: {  // session lookup through the cache
      const long slot = r.key % cache_slots;
      const auto tag = cache.get(slot);
      (void)sessions.get(r.key);
      if (tag.has_value() && *tag == r.key) {
        atomos::work(kThinkHit);
        bump(kStatHit, 1);
      } else {
        atomos::work(kThinkMiss);
        cache.put(slot, r.key);
        bump(kStatMiss, 1);
      }
      break;
    }
    case 1: {  // single-session read-modify-write
      const long v = sessions.get(r.key).value_or(0);
      atomos::work(kThinkUpdate);
      sessions.put(r.key, v + r.delta);
      bump(kStatRevenue, r.delta);
      break;
    }
    default: {  // cross-session transfer (multi-key, conserves the total)
      const long a = sessions.get(r.key).value_or(0);
      const long b = sessions.get(r.key2).value_or(0);
      atomos::work(kThinkTransfer);
      sessions.put(r.key, a - r.delta);
      sessions.put(r.key2, b + r.delta);
      break;
    }
  }
}

/// End-of-run values a flavor hands to the common audit.
struct Finals {
  long hits = 0;
  long misses = 0;
  long revenue = 0;
  long session_sum = 0;
  long queue_size = 0;
};

void audit(const SrvConfig& cfg, const SrvReport& rep, const Finals& fin) {
  std::ostringstream err;
  if (static_cast<long>(rep.completed) != cfg.requests)
    err << "completed " << rep.completed << " != " << cfg.requests << "; ";
  if (fin.hits + fin.misses != rep.lookups)
    err << "hits " << fin.hits << " + misses " << fin.misses << " != lookups "
        << rep.lookups << "; ";
  if (fin.revenue != rep.expected_revenue)
    err << "revenue " << fin.revenue << " != " << rep.expected_revenue << "; ";
  const long expect_sum = cfg.sessions * kInitialBalance + rep.expected_revenue;
  if (fin.session_sum != expect_sum)
    err << "session sum " << fin.session_sum << " != " << expect_sum << "; ";
  if (fin.queue_size != 0) err << fin.queue_size << " requests stranded; ";
  const std::string msg = err.str();
  if (!msg.empty()) throw std::runtime_error("srv consistency audit: " + msg);
}

}  // namespace

const char* flavor_name(Flavor f) {
  switch (f) {
    case Flavor::kLock: return "Lock";
    case Flavor::kFlatTm: return "Flat TM";
    case Flavor::kChoppedTm: return "Chopped";
    default: return "Semantic";
  }
}

std::vector<Request> make_schedule(const SrvConfig& cfg, int workers,
                                   std::uint64_t salt) {
  // One stream per (seed, salt, workers, load) — NOT per flavor, so every
  // series replays the identical arrival process and request mix.
  std::uint64_t s = cfg.seed ^ (salt * 0x9E3779B97F4A7C15ULL) ^
                    (static_cast<std::uint64_t>(workers) * 0xBF58476D1CE4E5B9ULL) ^
                    (static_cast<std::uint64_t>(cfg.load * 1e6) * 0x94D049BB133111EBULL);
  rnd(s);
  rnd(s);
  // Poisson arrivals at rate load * workers / service_cycles: the mean
  // inter-arrival gap in Q16, scaled by a table-drawn exponential quantile
  // (integer math only; see exp_table.h for why no std::log).
  const double mean_ia =
      static_cast<double>(cfg.service_cycles) / (cfg.load * workers);
  const auto mean_q16 = static_cast<std::uint64_t>(mean_ia * 65536.0 + 0.5);
  std::vector<Request> reqs(static_cast<std::size_t>(cfg.requests));
  std::uint64_t t = 0;
  for (Request& r : reqs) {
    t += (mean_q16 * kExpQuantileQ16[rnd(s) & 1023]) >> 32;
    r.arrival = t;
    const std::uint64_t roll = rnd(s) % 10;
    if (roll < 7) {
      r.kind = 0;  // lookup: half the traffic hammers the hot keys
      const bool hot = (rnd(s) & 1) != 0;
      r.key = static_cast<long>(
          rnd(s) % static_cast<std::uint64_t>(hot ? cfg.hot_keys : cfg.sessions));
    } else if (roll < 9) {
      r.kind = 1;  // update
      r.key = static_cast<long>(rnd(s) % static_cast<std::uint64_t>(cfg.sessions));
      r.delta = static_cast<long>(1 + rnd(s) % 9);
    } else {
      r.kind = 2;  // transfer between two distinct sessions
      r.key = static_cast<long>(rnd(s) % static_cast<std::uint64_t>(cfg.sessions));
      r.key2 = (r.key + 1 +
                static_cast<long>(rnd(s) % static_cast<std::uint64_t>(cfg.sessions - 1))) %
               cfg.sessions;
      r.delta = static_cast<long>(1 + rnd(s) % 5);
    }
  }
  return reqs;
}

void run_server(Flavor f, const SrvConfig& cfg, int cpus, std::uint64_t salt,
                SrvReport& rep, harness::RunResult* stats_out) {
  if (cpus < 2)
    throw std::runtime_error("srv: need >= 2 CPUs (accept CPU + workers)");
  const int workers = cpus - 1;
  const std::vector<Request> reqs = make_schedule(cfg, workers, salt);
  rep = SrvReport{};
  for (const Request& r : reqs) {
    if (r.kind == 0) ++rep.lookups;
    if (r.kind == 1) ++rep.updates, rep.expected_revenue += r.delta;
    if (r.kind == 2) ++rep.transfers;
  }
  const auto total = static_cast<std::uint64_t>(cfg.requests);

  sim::Config c;
  c.mode = f == Flavor::kLock ? sim::Mode::kLock : sim::Mode::kTcc;
  c.num_cpus = cpus;
  sim::Engine eng(c);
  atomos::Runtime rt(eng);

  // Completion bookkeeping lives OUTSIDE the transactional state: it is
  // only ever touched post-commit (TM flavors run it from an on_commit
  // hook), so it adds no read/write-set footprint and no conflicts.
  std::vector<harness::LatencyHistogram> hists(static_cast<std::size_t>(cpus));
  std::uint64_t completed = 0;
  std::uint64_t last_commit = 0;
  auto finish = [&](int cpu, std::uint64_t arrival) {
    const std::uint64_t t = eng.now();
    hists[static_cast<std::size_t>(cpu)].record(t > arrival ? t - arrival : 0);
    ++completed;
    if (t > last_commit) last_commit = t;
  };

  Finals fin;

  if (f == Flavor::kLock) {
    jstd::HashMap<long, long> sessions(1024, 0.75F, "srv.sessions.size",
                                       "srv.sessions.table");
    jstd::HashMap<long, long> cache(256, 0.75F, "srv.cache.size",
                                    "srv.cache.table");
    jstd::LinkedQueue<long> queue;
    for (long k = 0; k < cfg.sessions; ++k) sessions.put(k, kInitialBalance);
    for (long sl = 0; sl < cfg.cache_slots; ++sl) cache.put(sl, sl);
    long hits = 0, misses = 0, revenue = 0;
    atomos::Mutex queue_mu;
    atomos::Mutex state_mu;
    auto bump = [&](Stat st, long d) {
      if (st == kStatHit) hits += d;
      else if (st == kStatMiss) misses += d;
      else revenue += d;
    };
    eng.spawn([&] {  // CPU 0: the accept loop
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (eng.now() < reqs[i].arrival) eng.advance_to(reqs[i].arrival);
        atomos::LockGuard g(queue_mu);
        queue.put(static_cast<long>(i));
      }
    });
    for (int w = 0; w < workers; ++w) {
      eng.spawn([&] {
        const int cpu = eng.cpu_id();
        std::uint64_t backoff = kBackoffMin;
        while (completed < total) {
          std::optional<long> idx;
          {
            atomos::LockGuard g(queue_mu);
            idx = queue.poll();
          }
          if (!idx.has_value()) {
            atomos::work(backoff);
            backoff = std::min(backoff * 2, kBackoffMax);
            continue;
          }
          backoff = kBackoffMin;
          const Request& r = reqs[static_cast<std::size_t>(*idx)];
          {
            // The classic coarse-grained server: ONE mutex held across the
            // entire handler, think time included — the hot conflict site.
            atomos::LockGuard g(state_mu);
            handle_request(r, sessions, cache, cfg.cache_slots, bump);
          }
          finish(cpu, r.arrival);
        }
      });
    }
    eng.run();
    fin.hits = hits;
    fin.misses = misses;
    fin.revenue = revenue;
    for (long k = 0; k < cfg.sessions; ++k)
      fin.session_sum += sessions.get(k).value_or(0);
    fin.queue_size = queue.size();
  } else if (f == Flavor::kFlatTm) {
    jstd::HashMap<long, long> sessions(1024, 0.75F, "srv.sessions.size",
                                       "srv.sessions.table");
    jstd::HashMap<long, long> cache(256, 0.75F, "srv.cache.size",
                                    "srv.cache.table");
    jstd::LinkedQueue<long> queue;
    for (long k = 0; k < cfg.sessions; ++k) sessions.put(k, kInitialBalance);
    for (long sl = 0; sl < cfg.cache_slots; ++sl) cache.put(sl, sl);
    // Parent-level statistics cells: every handler's read-modify-write of
    // these lands in the flat transaction's read/write set, so any two
    // lookups conflict on hits/misses — the cost semantic counters remove.
    atomos::Shared<long> hits(0, "srv.hits", sim::kCounterCell);
    atomos::Shared<long> misses(0, "srv.misses", sim::kCounterCell);
    atomos::Shared<long> revenue(0, "srv.revenue", sim::kCounterCell);
    auto bump = [&](Stat st, long d) {
      auto& cell = st == kStatHit ? hits : st == kStatMiss ? misses : revenue;
      cell.set(cell.get() + d);
    };
    eng.spawn([&] {  // CPU 0: the accept loop
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (eng.now() < reqs[i].arrival) eng.advance_to(reqs[i].arrival);
        atomos::atomically([&] { queue.put(static_cast<long>(i)); });
      }
    });
    for (int w = 0; w < workers; ++w) {
      eng.spawn([&] {
        const int cpu = eng.cpu_id();
        std::uint64_t backoff = kBackoffMin;
        while (completed < total) {
          const bool got = atomos::atomically([&] {
            // A plain queue inside a flat transaction: the head/size cells
            // join the read/write set, so every dequeue conflicts with
            // every enqueue and every other dequeue.
            auto idx = queue.poll();
            if (!idx.has_value()) return false;
            const Request& r = reqs[static_cast<std::size_t>(*idx)];
            handle_request(r, sessions, cache, cfg.cache_slots, bump);
            // Completion is recorded only on commit; an abort replays
            // the whole handler, so there is nothing to compensate.
            // txlint: allow(unpaired-handler) - commit-only bookkeeping
            atomos::on_commit([&finish, cpu, arr = r.arrival] { finish(cpu, arr); });
            return true;
          });
          if (got) {
            backoff = kBackoffMin;
          } else {
            atomos::work(backoff);
            backoff = std::min(backoff * 2, kBackoffMax);
          }
        }
      });
    }
    eng.run();
    // txlint: begin-allow(raw-peek) - post-run audit: the engine has halted,
    // every transaction has committed, so committed values are the truth.
    fin.hits = hits.unsafe_peek();
    fin.misses = misses.unsafe_peek();
    fin.revenue = revenue.unsafe_peek();
    // txlint: end-allow(raw-peek)
    for (long k = 0; k < cfg.sessions; ++k)
      fin.session_sum += sessions.get(k).value_or(0);
    fin.queue_size = queue.size();
  } else {
    tcc::TransactionalMap<long, long> sessions(
        std::make_unique<jstd::HashMap<long, long>>(1024, 0.75F,
                                                    "srv.sessions.size",
                                                    "srv.sessions.table"),
        tcc::Detection::kOptimistic, "srv.sessions");
    tcc::TransactionalMap<long, long> cache(
        std::make_unique<jstd::HashMap<long, long>>(256, 0.75F,
                                                    "srv.cache.size",
                                                    "srv.cache.table"),
        tcc::Detection::kOptimistic, "srv.cache");
    tcc::TransactionalQueue<long> queue(
        std::make_unique<jstd::LinkedQueue<long>>(), "srv.queue");
    for (long k = 0; k < cfg.sessions; ++k) sessions.put(k, kInitialBalance);
    for (long sl = 0; sl < cfg.cache_slots; ++sl) cache.put(sl, sl);
    tcc::CompensatedCounter hits(0, "srv.hits");
    tcc::CompensatedCounter misses(0, "srv.misses");
    tcc::CompensatedCounter revenue(0, "srv.revenue");
    auto bump = [&](Stat st, long d) {
      (st == kStatHit ? hits : st == kStatMiss ? misses : revenue).add(d);
    };
    eng.spawn([&] {  // CPU 0: the accept loop
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (eng.now() < reqs[i].arrival) eng.advance_to(reqs[i].arrival);
        queue.put(static_cast<long>(i));  // buffered put, applied at commit
      }
    });
    for (int w = 0; w < workers; ++w) {
      eng.spawn([&] {
        const int cpu = eng.cpu_id();
        std::uint64_t backoff = kBackoffMin;
        while (completed < total) {
          bool got = false;
          if (f == Flavor::kChoppedTm) {
            // Chopped handler: the dequeue and the handler body commit as
            // separate rank-ordered pieces, so a session/cache conflict in
            // the body never forces the dequeue to replay, and the body's
            // conflict window excludes the queue traffic entirely.  The
            // take piece's compensation re-enqueues the request (the
            // abort-path mirror of TransactionalQueue's own put-back).
            std::optional<long> idx;
            atomos::chopped()
                .piece("take",
                       [&] {
                         // take() observes no emptiness/ordering (Table 7).
                         idx = queue.take();
                       },
                       /*compensate=*/
                       [&] {
                         if (idx.has_value()) queue.put(*idx);
                       })
                .piece("handle",
                       [&] {
                         if (!idx.has_value()) return;
                         const Request& r = reqs[static_cast<std::size_t>(*idx)];
                         handle_request(r, sessions, cache, cfg.cache_slots, bump);
                         atomos::on_commit(
                             [&finish, cpu, arr = r.arrival] { finish(cpu, arr); });
                       })
                .run();
            got = idx.has_value();
          } else {
            got = atomos::atomically([&] {
              // take() observes no emptiness and no ordering (Table 7), so
              // worker dequeues commute with puts and with each other.
              auto idx = queue.take();
              if (!idx.has_value()) return false;
              const Request& r = reqs[static_cast<std::size_t>(*idx)];
              handle_request(r, sessions, cache, cfg.cache_slots, bump);
              atomos::on_commit([&finish, cpu, arr = r.arrival] { finish(cpu, arr); });
              return true;
            });
          }
          if (got) {
            backoff = kBackoffMin;
          } else {
            atomos::work(backoff);
            backoff = std::min(backoff * 2, kBackoffMax);
          }
        }
      });
    }
    eng.run();
    rep.chop_pieces = rt.chop_stats().pieces;
    rep.chop_dep_breaks = rt.chop_stats().dep_breaks;
    // txlint: begin-allow(raw-peek) - post-run audit: the engine has halted,
    // every transaction has committed, so committed values are the truth.
    fin.hits = hits.unsafe_peek();
    fin.misses = misses.unsafe_peek();
    fin.revenue = revenue.unsafe_peek();
    // txlint: end-allow(raw-peek)
    for (long k = 0; k < cfg.sessions; ++k)
      fin.session_sum += sessions.get(k).value_or(0);
    fin.queue_size = queue.size();
  }

  rep.completed = completed;
  rep.last_commit = last_commit;
  for (const auto& h : hists) rep.sojourn += h;
  rep.hits = fin.hits;
  rep.misses = fin.misses;
  rep.revenue = fin.revenue;
  rep.session_sum = fin.session_sum;
  if (stats_out != nullptr) {
    const sim::CpuStats s = eng.stats().summed();
    stats_out->cycles = eng.elapsed_cycles();
    stats_out->violations = s.violations;
    stats_out->semantic = s.semantic_violations;
    stats_out->lost_cycles = s.lost_cycles;
    stats_out->commits = s.commits;
  }
  audit(cfg, rep, fin);
}

harness::Series series(Flavor f, double load, int requests) {
  SrvConfig cfg;
  cfg.load = load;
  cfg.requests = requests;
  std::ostringstream name;
  name << flavor_name(f) << " load=" << load;
  const sim::Mode mode = f == Flavor::kLock ? sim::Mode::kLock : sim::Mode::kTcc;
  return harness::Series{
      name.str(), mode,
      [f, cfg](int cpus, std::uint64_t salt, harness::RunResult& out) {
        SrvReport rep;
        run_server(f, cfg, cpus, salt, rep, &out);
        const int workers = cpus - 1;
        const double offered =
            1e6 * cfg.load * workers / static_cast<double>(cfg.service_cycles);
        const double tput =
            rep.last_commit == 0
                ? 0.0
                : 1e6 * static_cast<double>(rep.completed) /
                      static_cast<double>(rep.last_commit);
        out.extras = {
            {"load", cfg.load},
            {"offered_per_mcyc", offered},
            {"tput_per_mcyc", tput},
            {"p50", static_cast<double>(rep.sojourn.quantile(0.50))},
            {"p99", static_cast<double>(rep.sojourn.quantile(0.99))},
            {"p999", static_cast<double>(rep.sojourn.quantile(0.999))},
        };
      }};
}

}  // namespace srv
