// srv — an event-driven request-serving workload (open-system arrivals).
//
// The paper's benchmarks (TestMap, TestCompound, SPECjbb2000) are all
// CLOSED systems: a fixed set of worker threads loops as fast as it can, so
// the figures can only report throughput.  Real servers are OPEN systems —
// requests arrive on their own schedule whether or not the server keeps up —
// and there the cost of coarse synchronization shows up first not as lower
// throughput but as queueing delay: sojourn time (arrival -> completion)
// explodes at the load where the serialized section saturates.  This
// workload measures exactly that.
//
// Shape of a run on an N-CPU server:
//
//   CPU 0 (the "accept" CPU) replays a precomputed Poisson arrival
//   schedule in simulated cycles, enqueueing typed requests into a shared
//   work queue.  CPUs 1..N-1 run worker loops: dequeue a request, execute
//   its handler over shared state — a session table (key -> balance), a
//   direct-mapped cache (slot -> tag) and statistics counters — then pick
//   up the next one.  The request mix is read-mostly: 70% session lookups
//   (half against a small hot key set, cache hit/miss decides the
//   simulated service cost), 20% single-session updates, 10% cross-session
//   transfers (multi-key read-modify-write).
//
// The same schedule and handlers run under three synchronization flavors:
//
//   kLock       — a mutex-guarded plain queue plus ONE coarse state mutex
//                 held across each whole handler (the classic "giant lock
//                 around the business logic" server);
//   kFlatTm     — each handler is one flat closed-nested transaction over
//                 plain jstd collections; the queue head and the statistics
//                 counters live in every transaction's read/write set, so
//                 commits violate each other constantly;
//   kSemanticTm — the same transaction shape, but through the paper's
//                 semantic collections: TransactionalQueue::take() (no
//                 emptiness observation, Table 7), TransactionalMap
//                 sessions/cache, open-nested CompensatedCounter stats.
//
// Every flavor replays the BIT-IDENTICAL arrival schedule for a given
// (load, cpu count, seed): the schedule is derived from an integer LCG and
// the committed exponential quantile table in exp_table.h — no libm — so
// fig5_srv.csv is byte-identical across hosts and across `--jobs N`.
//
// Reported per sweep point (RunResult::extras): offered load, offered and
// completed requests per million cycles, and p50/p99/p999 sojourn time from
// a mergeable log-scale histogram (harness/latency.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/latency.h"
#include "harness/speedup.h"

namespace srv {

enum class Flavor {
  kLock,        ///< coarse lock-based handler loop
  kFlatTm,      ///< flat closed-nested transactions over plain collections
  kSemanticTm,  ///< open-nested / semantic transactional collections
  kChoppedTm,   ///< semantic collections + tm::chopped() handler pieces:
                ///< dequeue and handler body commit as separate rank-ordered
                ///< transactions, shrinking the conflict window per piece
};

const char* flavor_name(Flavor f);

/// One typed request, fully determined by the schedule (handlers draw no
/// randomness of their own, so retries replay identically).
struct Request {
  std::uint64_t arrival = 0;  ///< simulated cycle the request enters the system
  int kind = 0;               ///< 0 = lookup, 1 = update, 2 = transfer
  long key = 0;
  long key2 = 0;  ///< transfer destination (distinct from key)
  long delta = 0; ///< update/transfer amount
};

struct SrvConfig {
  int requests = 1200;
  double load = 0.6;  ///< offered load: arrival rate as a fraction of the
                      ///< workers' nominal aggregate service rate
  std::uint64_t seed = 90210;
  long sessions = 256;     ///< session table keys, prepopulated to kInitialBalance
  long cache_slots = 64;   ///< direct-mapped cache size (slot = key % slots)
  long hot_keys = 32;      ///< half of all lookups target keys [0, hot_keys)
  /// Calibrated mean service demand per request in simulated cycles; the
  /// arrival rate for `load` rho on W workers is rho * W / service_cycles.
  std::uint64_t service_cycles = 2000;
};

inline constexpr long kInitialBalance = 1000;

/// What a finished run reports (beyond the engine's own stats).
struct SrvReport {
  harness::LatencyHistogram sojourn;  ///< per-request arrival -> commit cycles
  std::uint64_t completed = 0;
  std::uint64_t last_commit = 0;  ///< cycle of the final request completion
  long hits = 0;
  long misses = 0;
  long revenue = 0;
  long session_sum = 0;
  // Expected values derived from the schedule (consistency checking).
  long lookups = 0;
  long updates = 0;
  long transfers = 0;
  long expected_revenue = 0;
  // Chopping attribution (kChoppedTm only; zero otherwise): committed
  // pieces and forward-dependency break events from Runtime::chop_stats().
  std::uint64_t chop_pieces = 0;
  std::uint64_t chop_dep_breaks = 0;
};

/// The deterministic request schedule for one sweep point.  Depends on
/// (cfg, workers, salt) only — NOT on the flavor — so all three series face
/// the identical arrival process and request mix.
std::vector<Request> make_schedule(const SrvConfig& cfg, int workers,
                                   std::uint64_t salt);

/// Runs the full server simulation for one flavor on `cpus` virtual CPUs
/// (CPU 0 injects, CPUs 1..cpus-1 serve; cpus >= 2).  Fills `rep` and
/// throws std::runtime_error if the end-of-run consistency audit fails
/// (conservation of session balances, exact-once completion, counter
/// reconciliation, drained queue).
void run_server(Flavor f, const SrvConfig& cfg, int cpus, std::uint64_t salt,
                SrvReport& rep, harness::RunResult* stats_out = nullptr);

/// A harness::Series named "<flavor> load=<rho>" for the fig5 sweep; the
/// extras columns are (load, offered_per_mcyc, tput_per_mcyc, p50, p99,
/// p999).  Shared by bench/fig5_srv.cpp and tests/srv.
harness::Series series(Flavor f, double load, int requests);

}  // namespace srv
