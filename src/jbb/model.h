// Entity model for the high-contention SPECjbb2000-style workload
// (paper Section 6.3).
//
// SPECjbb2000 is TPC-C-shaped: one company, warehouses with districts,
// customers placing orders for items held in stock.  The paper's variant
// forces every thread onto a SINGLE warehouse and replaces the original
// binary trees with java.util collections (as SPECjbb2005 did); the shared
// hot spots that Figure 4 turns on are:
//   * District.nextOrder  — a UID generator bumped by every NewOrder,
//   * Warehouse.historyTable (Map)  — appended by every Payment,
//   * District.orderTable / newOrderTable (SortedMap) — NewOrder/Delivery.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tm/mutex.h"
#include "tm/shared.h"

namespace jbb {

/// Immutable catalogue entry (read-only after setup: plain fields).
struct Item {
  long id = 0;
  long price = 0;  // cents
};

/// Per-(warehouse,item) stock record.  In the Java flavour each Stock is
/// its own synchronization object (Java's synchronized(stock) idiom).
struct Stock {
  explicit Stock(long q) : quantity(q), ytd(0) {}
  atomos::Shared<long> quantity;
  atomos::Shared<long> ytd;
  atomos::Mutex mu;
};

struct Customer {
  Customer(long id_, long district) : id(id_), district_id(district), balance(0),
                                      ytd_payment(0), last_order(0) {}
  const long id;
  const long district_id;
  atomos::Shared<long> balance;      // cents
  atomos::Shared<long> ytd_payment;  // cents
  atomos::Shared<long> last_order;   // most recent order id (0 = none)
};

struct OrderLine {
  long item_id = 0;
  long quantity = 0;
  long amount = 0;  // quantity * price, cents
};

struct Order {
  Order(long id_, long customer, std::vector<OrderLine> lines_)
      : id(id_), customer_id(customer), lines(std::move(lines_)), carrier_id(0) {}
  const long id;
  const long customer_id;
  const std::vector<OrderLine> lines;  // immutable after creation
  atomos::Shared<long> carrier_id;     // 0 until Delivery assigns one

  long total() const {
    long t = 0;
    for (const auto& l : lines) t += l.amount;
    return t;
  }
};

/// Payment audit record (immutable once inserted).
struct History {
  long customer_id = 0;
  long district_id = 0;
  long amount = 0;
};

}  // namespace jbb
