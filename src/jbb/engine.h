// The high-contention SPECjbb2000-style engine (paper Section 6.3).
//
// One shared warehouse, D districts, the five TPC-C-style operations, in
// four build flavours matching Figure 4's series:
//
//   kJava                — lock-mode run: each shared structure is guarded
//                          by its own mutex with SHORT critical sections
//                          (the original synchronized-Java parallelization);
//   kAtomosBaseline      — each operation is ONE coarse transaction over
//                          plain jstd collections ("novice" parallelization:
//                          trivially correct, conflict-prone);
//   kAtomosOpen          — + the District.nextOrder / history-id counters
//                          become open-nested UID generators;
//   kAtomosTransactional — + historyTable wrapped in TransactionalMap and
//                          orderTable/newOrderTable in
//                          TransactionalSortedMap;
//   kAtomosChopped       — + NewOrder and Payment run as tm::chopped()
//                          pieces (tm/chop.h): the district phase and the
//                          stock walk (NewOrder), the warehouse section and
//                          the district section (Payment) each commit as
//                          their own rank-ordered transaction, shrinking
//                          the conflict window below the open-nested
//                          flavour's whole-operation footprint (fig6).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/open_counter.h"
#include "core/txmap.h"
#include "core/txsortedmap.h"
#include "jbb/model.h"
#include "jstd/hashmap.h"
#include "jstd/treemap.h"
#include "tm/mutex.h"
#include "tm/runtime.h"

namespace jbb {

enum class Flavor {
  kJava,
  kAtomosBaseline,
  kAtomosOpen,
  kAtomosTransactional,
  kAtomosChopped,
};

/// The open-nested flavours share counter/collection plumbing; kAtomosChopped
/// is kAtomosTransactional plus chopping in the operation bodies.
inline bool uses_open_nesting(Flavor f) {
  return f == Flavor::kAtomosOpen || f == Flavor::kAtomosTransactional ||
         f == Flavor::kAtomosChopped;
}

struct JbbConfig {
  Flavor flavor = Flavor::kAtomosTransactional;
  int districts = 10;
  int items = 200;
  int customers_per_district = 20;
  int initial_orders_per_district = 5;
  std::uint64_t think_cycles = 300;  // computation inside each operation
};

/// A unique-id source whose implementation varies by flavour.
class Sequence {
 public:
  // plain_ shares the counter arena with uid_'s cell: the Baseline flavour's
  // pathology must be the *semantic* parent-level RMW on the counter, never
  // accidental co-residency with unrelated cells.
  explicit Sequence(long first, const char* name)
      : flavor_(Flavor::kJava), uid_(first, name), plain_(first, name, sim::kCounterCell) {}

  void set_flavor(Flavor f) { flavor_ = f; }

  long next() {
    switch (flavor_) {
      case Flavor::kJava: {
        // Short mutex hold around the increment (lock mode).
        atomos::LockGuard g(mu_);
        const long id = plain_.get();
        plain_.set(id + 1);
        return id;
      }
      case Flavor::kAtomosBaseline: {
        // Read-modify-write inside the enclosing coarse transaction: the
        // counter line joins the parent's read/write set (the Figure 4
        // "Baseline" pathology).
        const long id = plain_.get();
        plain_.set(id + 1);
        return id;
      }
      case Flavor::kAtomosOpen:
      case Flavor::kAtomosTransactional:
      case Flavor::kAtomosChopped:
        return uid_.next();  // open-nested: no parent dependency
    }
    throw std::logic_error("unreachable");
  }

  /// Reads the counter's current value without reserving an id.  In the
  /// open-nested flavours this takes NO semantic lock (callers accept a
  /// slightly stale bound); in the others it reads within the enclosing
  /// synchronization as usual.
  long current() {
    switch (flavor_) {
      case Flavor::kJava: {
        atomos::LockGuard g(mu_);
        return plain_.get();
      }
      case Flavor::kAtomosBaseline:
        return plain_.get();
      case Flavor::kAtomosOpen:
      case Flavor::kAtomosTransactional:
      case Flavor::kAtomosChopped:
        // Documented stale read: callers accept an unsynchronized bound, so
        // no semantic lock (and no read-set entry) is taken on purpose.
        // txlint: allow(raw-peek) - deliberate lock-free stale bound
        return atomos::open_atomically([&] { return uid_.unsafe_peek_next(); });
    }
    throw std::logic_error("unreachable");
  }

  /// Committed value of the counter (reporting only).
  long unsafe_peek() const {
    return uses_open_nesting(flavor_) ? uid_.unsafe_peek_next() : plain_.unsafe_peek();
  }

 private:
  Flavor flavor_;
  tcc::UidGenerator uid_;
  atomos::Shared<long> plain_;
  atomos::Mutex mu_;
};

/// A YTD-style accumulator whose implementation varies by flavour (the
/// paper's "several global counters" wrapped by the Atomos Open step).
class Accumulator {
 public:
  explicit Accumulator(const char* name)
      : flavor_(Flavor::kJava), cc_(0, name), plain_(0, name, sim::kCounterCell) {}

  void set_flavor(Flavor f) { flavor_ = f; }

  void add(long delta) {
    switch (flavor_) {
      case Flavor::kJava: {
        atomos::LockGuard g(mu_);
        plain_.set(plain_.get() + delta);
        return;
      }
      case Flavor::kAtomosBaseline:
        plain_.set(plain_.get() + delta);  // parent-level RMW: conflict-prone
        return;
      case Flavor::kAtomosOpen:
      case Flavor::kAtomosTransactional:
      case Flavor::kAtomosChopped:
        cc_.add(delta);  // open-nested, abort-compensated: exact totals
        return;
    }
  }

  long unsafe_peek() const {
    return uses_open_nesting(flavor_) ? cc_.unsafe_peek() : plain_.unsafe_peek();
  }

 private:
  Flavor flavor_;
  tcc::CompensatedCounter cc_;
  atomos::Shared<long> plain_;
  atomos::Mutex mu_;
};

struct District {
  District(long id_, Flavor flavor, std::unique_ptr<jstd::SortedMap<long, Order*>> orders,
           std::unique_ptr<jstd::SortedMap<long, long>> new_orders)
      : id(id_), next_order(1, "District.nextOrder"), ytd("District.ytd"),
        order_table(std::move(orders)), new_order_table(std::move(new_orders)) {
    next_order.set_flavor(flavor);
    ytd.set_flavor(flavor);
  }

  const long id;
  Sequence next_order;
  Accumulator ytd;
  std::unique_ptr<jstd::SortedMap<long, Order*>> order_table;
  std::unique_ptr<jstd::SortedMap<long, long>> new_order_table;  // oid -> oid
  std::vector<std::unique_ptr<Customer>> customers;
  atomos::Mutex mu;  // lock-mode guard for this district's state
};

struct Warehouse {
  explicit Warehouse(Flavor flavor, std::unique_ptr<jstd::Map<long, History*>> history)
      : ytd("Warehouse.ytd"), next_history(1, "Warehouse.nextHistory"),
        txn_count("Warehouse.txnCount"), history_table(std::move(history)) {
    next_history.set_flavor(flavor);
    ytd.set_flavor(flavor);
    txn_count.set_flavor(flavor);
  }

  Accumulator ytd;
  Sequence next_history;
  /// SPECjbb's per-warehouse transaction statistic: every operation bumps it
  /// inside its coarse transaction (the TransactionManager counts each
  /// processed transaction toward the warehouse's score).  With one shared
  /// warehouse this is the paper's canonical "global counter": under
  /// Baseline the parent-level RMW makes EVERY pair of concurrent
  /// operations conflict; the Atomos Open step moves it (with the UID and
  /// YTD counters) into open-nested children.
  Accumulator txn_count;
  std::unique_ptr<jstd::Map<long, History*>> history_table;
  std::vector<std::unique_ptr<Stock>> stock;  // indexed by item id
  atomos::Mutex mu;  // lock-mode guard for warehouse-wide state
};

/// Per-thread operation counters (validated by tests, reported by benches).
struct OpCounts {
  long new_order = 0;
  long payment = 0;
  long order_status = 0;
  long delivery = 0;
  long stock_level = 0;
  long total() const { return new_order + payment + order_status + delivery + stock_level; }
};

/// The single-warehouse TPC-C-style engine.
class Engine {
 public:
  explicit Engine(const JbbConfig& cfg);
  ~Engine();

  const JbbConfig& config() const { return cfg_; }
  Warehouse& warehouse() { return *wh_; }
  District& district(int d) { return *districts_[static_cast<std::size_t>(d)]; }

  // ---- the five TPC-C-style operations ----
  // Each takes the acting district and a deterministic RNG state; in Atomos
  // flavours the whole body runs as one transaction, in Java flavour the
  // body takes short per-structure locks.

  void new_order(int district, std::uint64_t& rng);
  void payment(int district, std::uint64_t& rng);
  void order_status(int district, std::uint64_t& rng);
  void delivery(int district, std::uint64_t& rng);
  void stock_level(int district, std::uint64_t& rng);

  /// Runs one operation drawn from the TPC-C mix; updates `counts`.
  void run_mixed_op(int district, std::uint64_t& rng, OpCounts& counts);

  // ---- consistency checks (tests; run after the simulation) ----
  long committed_order_count() const;
  long committed_new_order_count() const;
  bool check_consistency(std::string* why = nullptr) const;

 private:
  template <class F>
  void in_txn_or_plain(F&& body);
  static std::uint64_t rnd(std::uint64_t& s) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 33;
  }
  void think(std::uint64_t cycles);

  JbbConfig cfg_;
  std::vector<Item> items_;
  std::unique_ptr<Warehouse> wh_;
  std::vector<std::unique_ptr<District>> districts_;
};

}  // namespace jbb
