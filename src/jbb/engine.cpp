#include "jbb/engine.h"

#include <string>

#include "tm/chop.h"

namespace jbb {
namespace {

/// Locks in the Java flavour; no-op under transactional execution (the
/// enclosing transaction provides atomicity).
class Guard {
 public:
  Guard(atomos::Mutex& m, Flavor f) : m_(m), use_(f == Flavor::kJava) {
    if (use_) m_.lock();
  }
  ~Guard() {
    if (use_) m_.unlock();
  }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  atomos::Mutex& m_;
  bool use_;
};

// The table factories name each instance's contended fields and semantic
// lock tables so TAPE profiles and txtrace conflict reports attribute fig4
// conflicts to named SPECjbb internals rather than generic class labels.
std::unique_ptr<jstd::SortedMap<long, Order*>> make_order_table(Flavor f) {
  auto inner = std::make_unique<jstd::TreeMap<long, Order*>>(
      std::less<long>(), "orderTable.size", "orderTable.root");
  if (f == Flavor::kAtomosTransactional || f == Flavor::kAtomosChopped) {
    return std::make_unique<tcc::TransactionalSortedMap<long, Order*>>(
        std::move(inner), tcc::Detection::kOptimistic, std::less<long>(),
        "orderTable");
  }
  return inner;
}

std::unique_ptr<jstd::SortedMap<long, long>> make_new_order_table(Flavor f) {
  auto inner = std::make_unique<jstd::TreeMap<long, long>>(
      std::less<long>(), "newOrderTable.size", "newOrderTable.root");
  if (f == Flavor::kAtomosTransactional || f == Flavor::kAtomosChopped) {
    return std::make_unique<tcc::TransactionalSortedMap<long, long>>(
        std::move(inner), tcc::Detection::kOptimistic, std::less<long>(),
        "newOrderTable");
  }
  return inner;
}

std::unique_ptr<jstd::Map<long, History*>> make_history_table(Flavor f) {
  auto inner = std::make_unique<jstd::HashMap<long, History*>>(
      4096, 0.75F, "historyTable.size", "historyTable.table");
  if (f == Flavor::kAtomosTransactional || f == Flavor::kAtomosChopped) {
    return std::make_unique<tcc::TransactionalMap<long, History*>>(
        std::move(inner), tcc::Detection::kOptimistic, "historyTable");
  }
  return inner;
}

}  // namespace

Engine::Engine(const JbbConfig& cfg) : cfg_(cfg) {
  items_.reserve(static_cast<std::size_t>(cfg.items));
  std::uint64_t s = 42;
  for (int i = 0; i < cfg.items; ++i) {
    items_.push_back(Item{i, 100 + static_cast<long>(rnd(s) % 9900)});
  }
  wh_ = std::make_unique<Warehouse>(cfg.flavor, make_history_table(cfg.flavor));
  wh_->stock.reserve(static_cast<std::size_t>(cfg.items));
  for (int i = 0; i < cfg.items; ++i) {
    wh_->stock.push_back(std::make_unique<Stock>(10000));
  }
  for (int d = 0; d < cfg.districts; ++d) {
    auto dist = std::make_unique<District>(d, cfg.flavor, make_order_table(cfg.flavor),
                                           make_new_order_table(cfg.flavor));
    for (int c = 0; c < cfg.customers_per_district; ++c) {
      dist->customers.push_back(std::make_unique<Customer>(c, d));
    }
    districts_.push_back(std::move(dist));
  }
  // Seed each district with a few delivered-pending orders so Delivery and
  // StockLevel have work from the start (setup code: untimed, no locks).
  for (int d = 0; d < cfg.districts; ++d) {
    std::uint64_t rng = 1000 + static_cast<std::uint64_t>(d);
    for (int i = 0; i < cfg.initial_orders_per_district; ++i) new_order(d, rng);
  }
}

Engine::~Engine() {
  for (auto& d : districts_) {
    for (auto it = d->order_table->iterator(); it->has_next();) delete it->next().second;
  }
  for (auto it = wh_->history_table->iterator(); it->has_next();) delete it->next().second;
}

void Engine::think(std::uint64_t cycles) {
  if (!sim::Engine::in_worker()) return;
  if (atomos::Runtime::active()) {
    atomos::Runtime::current().work(cycles);  // also polls for violations
  } else {
    sim::Engine::get().tick(cycles);
  }
}

template <class F>
void Engine::in_txn_or_plain(F&& body) {
  if (cfg_.flavor == Flavor::kJava || !atomos::Runtime::active()) {
    body();
  } else {
    atomos::Runtime::current().atomically(body);
  }
}

void Engine::new_order(int dnum, std::uint64_t& rng) {
  District& d = district(dnum);
  const auto cidx = rnd(rng) % d.customers.size();
  const int nlines = 5 + static_cast<int>(rnd(rng) % 6);
  // Pre-draw the random choices so transaction retries replay identically.
  std::vector<std::pair<long, long>> picks;  // (item, qty)
  picks.reserve(static_cast<std::size_t>(nlines));
  for (int i = 0; i < nlines; ++i) {
    picks.emplace_back(static_cast<long>(rnd(rng) % items_.size()),
                       1 + static_cast<long>(rnd(rng) % 5));
  }
  if (cfg_.flavor == Flavor::kAtomosChopped && atomos::Runtime::active()) {
    // Chopped: the district phase and the stock walk commit as separate
    // rank-ordered pieces (tm/chop.h), so a concurrent operation that
    // conflicts only with the stock walk no longer violates the district
    // work (and vice versa).  The district piece registers a compensation
    // that removes the order again; kRanked never runs it, but the contract
    // (and the txlint chop-compensation rule) wants mutating non-final
    // pieces to be undoable.
    Customer* cust = d.customers[cidx].get();
    long oid = 0;
    long total = 0;
    long prev_last = 0;
    atomos::chopped()
        .piece("district",
               [&] {
                 wh_->txn_count.add(1);
                 std::vector<OrderLine> lines;
                 total = 0;
                 lines.reserve(picks.size());
                 for (const auto& [item, qty] : picks) {
                   const long amount = qty * items_[static_cast<std::size_t>(item)].price;
                   lines.push_back(OrderLine{item, qty, amount});
                   total += amount;
                 }
                 oid = d.next_order.next();
                 Order* o = atomos::tx_new<Order>(oid, cust->id, std::move(lines));
                 think(cfg_.think_cycles);
                 d.order_table->put(oid, o);
                 d.new_order_table->put(oid, oid);
                 prev_last = cust->last_order.get();
                 cust->last_order.set(oid);
                 d.ytd.add(total);
               },
               /*compensate=*/
               [&] {
                 d.new_order_table->remove(oid);
                 d.order_table->remove(oid);
                 cust->last_order.set(prev_last);
                 d.ytd.add(-total);
               })
        .piece("stock",
               [&] {
                 for (const auto& [item, qty] : picks) {
                   Stock& st = *wh_->stock[static_cast<std::size_t>(item)];
                   st.quantity.set(st.quantity.get() - qty);
                   st.ytd.set(st.ytd.get() + qty);
                 }
                 think(cfg_.think_cycles);
               })
        .run();
    return;
  }
  in_txn_or_plain([&] {
    wh_->txn_count.add(1);  // SPECjbb per-warehouse transaction statistic
    Customer* cust = d.customers[cidx].get();
    std::vector<OrderLine> lines;
    long total = 0;
    lines.reserve(picks.size());
    for (const auto& [item, qty] : picks) {
      const long amount = qty * items_[static_cast<std::size_t>(item)].price;
      lines.push_back(OrderLine{item, qty, amount});
      total += amount;
    }
    const long oid = d.next_order.next();
    Order* o = atomos::tx_new<Order>(oid, cust->id, std::move(lines));
    {
      // SPECjbb-style coarse synchronized region: the district-data phase,
      // business logic included, under one lock.
      Guard g(d.mu, cfg_.flavor);
      think(cfg_.think_cycles);
      d.order_table->put(oid, o);
      d.new_order_table->put(oid, oid);
      cust->last_order.set(oid);
      d.ytd.add(total);
    }
    for (const auto& [item, qty] : picks) {
      Stock& st = *wh_->stock[static_cast<std::size_t>(item)];
      Guard g(st.mu, cfg_.flavor);  // Java: synchronized(stock), per item
      st.quantity.set(st.quantity.get() - qty);
      st.ytd.set(st.ytd.get() + qty);
    }
    think(cfg_.think_cycles);
  });
}

void Engine::payment(int dnum, std::uint64_t& rng) {
  District& d = district(dnum);
  const auto cidx = rnd(rng) % d.customers.size();
  const long amount = 100 + static_cast<long>(rnd(rng) % 5000);
  if (cfg_.flavor == Flavor::kAtomosChopped && atomos::Runtime::active()) {
    // Chopped: the warehouse-wide section (audit record + warehouse YTD)
    // and the district section commit separately — Payments against
    // different districts only ever contend for one short warehouse piece.
    Customer* cust = d.customers[cidx].get();
    long hid = 0;
    atomos::chopped()
        .piece("warehouse",
               [&] {
                 wh_->txn_count.add(1);
                 wh_->ytd.add(amount);
                 hid = wh_->next_history.next();
                 History* h = atomos::tx_new<History>(History{cust->id, d.id, amount});
                 wh_->history_table->put(hid, h);
               },
               /*compensate=*/
               [&] {
                 wh_->history_table->remove(hid);
                 wh_->ytd.add(-amount);
               })
        .piece("district",
               [&] {
                 think(cfg_.think_cycles);
                 d.ytd.add(amount);
                 cust->balance.set(cust->balance.get() - amount);
                 cust->ytd_payment.set(cust->ytd_payment.get() + amount);
                 think(cfg_.think_cycles);
               })
        .run();
    return;
  }
  in_txn_or_plain([&] {
    wh_->txn_count.add(1);
    Customer* cust = d.customers[cidx].get();
    long hid;
    {
      // Warehouse-wide section: kept short (id + audit record + YTD).
      Guard g(wh_->mu, cfg_.flavor);
      wh_->ytd.add(amount);
      hid = wh_->next_history.next();
      History* h = atomos::tx_new<History>(History{cust->id, d.id, amount});
      wh_->history_table->put(hid, h);
    }
    {
      Guard g(d.mu, cfg_.flavor);
      think(cfg_.think_cycles);
      d.ytd.add(amount);
      cust->balance.set(cust->balance.get() - amount);
      cust->ytd_payment.set(cust->ytd_payment.get() + amount);
    }
    think(cfg_.think_cycles);
  });
}

void Engine::order_status(int dnum, std::uint64_t& rng) {
  District& d = district(dnum);
  const auto cidx = rnd(rng) % d.customers.size();
  in_txn_or_plain([&] {
    wh_->txn_count.add(1);
    Customer* cust = d.customers[cidx].get();
    Guard g(d.mu, cfg_.flavor);
    think(cfg_.think_cycles);
    const long oid = cust->last_order.get();
    if (oid != 0) {
      if (auto o = d.order_table->get(oid); o.has_value()) {
        long total = (*o)->total();
        (void)total;
        (void)(*o)->carrier_id.get();
      }
    }
  });
}

void Engine::delivery(int dnum, std::uint64_t& rng) {
  District& d = district(dnum);
  const long carrier = 1 + static_cast<long>(rnd(rng) % 10);
  in_txn_or_plain([&] {
    wh_->txn_count.add(1);
    Guard g(d.mu, cfg_.flavor);
    think(cfg_.think_cycles);
    const auto first = d.new_order_table->first_key();
    if (!first.has_value()) return;
    d.new_order_table->remove(*first);
    if (auto o = d.order_table->get(*first); o.has_value()) {
      (*o)->carrier_id.set(carrier);
      Customer* cust = d.customers[static_cast<std::size_t>((*o)->customer_id)].get();
      cust->balance.set(cust->balance.get() + (*o)->total());
    }
  });
}

void Engine::stock_level(int dnum, std::uint64_t& rng) {
  District& d = district(dnum);
  const long threshold = 9000 + static_cast<long>(rnd(rng) % 1000);
  in_txn_or_plain([&] {
    wh_->txn_count.add(1);
    std::vector<long> item_ids;
    {
      Guard g(d.mu, cfg_.flavor);
      think(cfg_.think_cycles);
      // Window of the ~10 most recent orders.  Derive the bound from the
      // order-id counter rather than lastKey(): observing the last key
      // would conflict with EVERY concurrent NewOrder (Section 5.1's
      // "reveal no more than necessary" guideline).
      const long next = d.next_order.current();
      if (next <= 1) return;
      const long lo = next > 11 ? next - 11 : 1;
      for (auto it = d.order_table->range_iterator(lo, next); it->has_next();) {
        Order* o = it->next().second;
        for (const auto& line : o->lines) item_ids.push_back(line.item_id);
      }
    }
    long low = 0;
    for (long item : item_ids) {
      Stock& st = *wh_->stock[static_cast<std::size_t>(item)];
      Guard g(st.mu, cfg_.flavor);
      if (st.quantity.get() < threshold) ++low;
    }
    (void)low;
  });
}

void Engine::run_mixed_op(int district, std::uint64_t& rng, OpCounts& counts) {
  const std::uint64_t roll = rnd(rng) % 100;
  if (roll < 45) {
    new_order(district, rng);
    counts.new_order++;
  } else if (roll < 88) {
    payment(district, rng);
    counts.payment++;
  } else if (roll < 92) {
    order_status(district, rng);
    counts.order_status++;
  } else if (roll < 96) {
    delivery(district, rng);
    counts.delivery++;
  } else {
    stock_level(district, rng);
    counts.stock_level++;
  }
}

long Engine::committed_order_count() const {
  long total = 0;
  for (const auto& d : districts_) total += d->order_table->size();
  return total;
}

long Engine::committed_new_order_count() const {
  long total = 0;
  for (const auto& d : districts_) total += d->new_order_table->size();
  return total;
}

// Offline consistency oracle: runs between simulations on quiesced state, so
// raw committed-value reads are exactly what it wants.
// txlint: begin-allow(raw-peek)
bool Engine::check_consistency(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  // 1. Every pending new-order refers to an existing order; order ids are
  //    below the district's next-order counter; id -> order.id agrees.
  for (const auto& d : districts_) {
    const long next = d->next_order.unsafe_peek();
    if (d->order_table->size() > next - 1) return fail("more orders than ids issued");
    for (auto it = d->new_order_table->iterator(); it->has_next();) {
      const long oid = it->next().first;
      if (!d->order_table->contains_key(oid)) return fail("dangling new-order " + std::to_string(oid));
    }
    for (auto it = d->order_table->iterator(); it->has_next();) {
      auto [oid, o] = it->next();
      if (o->id != oid) return fail("order id mismatch");
      if (oid >= next) return fail("order id beyond counter");
      // Delivered orders must no longer be pending.
      if (o->carrier_id.unsafe_peek() != 0 && d->new_order_table->contains_key(oid))
        return fail("delivered order still pending");
    }
  }
  // 2. Warehouse YTD equals the sum of customer YTD payments (every payment
  //    updates both atomically).
  long cust_ytd = 0;
  for (const auto& d : districts_) {
    for (const auto& c : d->customers) cust_ytd += c->ytd_payment.unsafe_peek();
  }
  if (wh_->ytd.unsafe_peek() != cust_ytd) return fail("warehouse YTD != sum of customer YTD");
  // 3. History ids: at most next_history - 1 records (holes allowed only in
  //    the open-nested flavours).
  const long hist = wh_->history_table->size();
  const long hnext = wh_->next_history.unsafe_peek();
  if (hist > hnext - 1) return fail("more history records than ids issued");
  if ((cfg_.flavor == Flavor::kJava || cfg_.flavor == Flavor::kAtomosBaseline) &&
      hist != hnext - 1)
    return fail("history id holes in a fully-isolated flavour");
  return true;
}
// txlint: end-allow(raw-peek)

}  // namespace jbb
