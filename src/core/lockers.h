// Semantic lock tables for transactional collection classes.
//
// These are the "shared transaction state" rows of the paper's Tables 3/6/9
// (key2lockers, sizeLockers, rangeLockers, first/lastLockers, emptyLockers).
// A lock is a *read intent*: owner = the TxnId of the top-level transaction
// that observed the abstract state.  Writers do commit-time conflict
// detection by violating every owner whose observation their update
// invalidates (optimistic semantic concurrency control); they never block.
//
// In the paper these tables live in transactional memory and are updated by
// open-nested transactions; here they are host-side structures whose
// operations are virtually atomic (the simulator interleaves only at timed
// events) and charged sim::Config::sem_op_cycles each — the documented
// DESIGN.md idealization.  Their *semantics* — survive parent rollback, be
// compensated by abort handlers, be checked at commit — are exact.
#pragma once

#include <algorithm>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "tm/audit.h"
#include "tm/runtime.h"
#include "tm/sem_events.h"

namespace tcc {

/// Charges the configured cost of one semantic-lock / store-buffer op.
inline void charge_sem_op(std::size_t n = 1) {
  if (atomos::Runtime::active() && sim::Engine::in_worker()) {
    auto& rt = atomos::Runtime::current();
    rt.work(n * rt.engine().config().sem_op_cycles);
  }
}

/// A set of top-level transactions holding one semantic read lock.
class LockerSet {
 public:
  /// Adds `owner` (idempotent).
  void add(const atomos::TxnId& owner) {
    if (!contains(owner)) {
      owners_.push_back(owner);
      atomos::audit::lock_acquired(owner, this);
      atomos::sem::lock_acquired(owner, this);
      if (auto* rt = atomos::Runtime::current_or_null()) rt->trace_sem_acquire(trace_id());
    }
  }

  /// Removes `owner` if present.
  void remove(const atomos::TxnId& owner) {
    auto tail = std::remove(owners_.begin(), owners_.end(), owner);
    if (tail != owners_.end()) {
      owners_.erase(tail, owners_.end());
      atomos::audit::lock_released(owner, this);
      atomos::sem::lock_released(owner, this);
      if (auto* rt = atomos::Runtime::current_or_null()) rt->trace_sem_release(trace_id());
    } else {
      // Nothing to release: a stale prune already dropped it (benign) or
      // the caller is double-releasing (the auditor / txmc oracle decides
      // by owner liveness).
      atomos::audit::lock_release_noop(owner, this);
      atomos::sem::lock_release_noop(owner, this);
    }
  }

  /// Trace identity.  Per-key LockerSets inside a KeyLockTable report the
  /// enclosing table's address so all keys aggregate under one named trace
  /// site; the audit ledger keeps per-set identity regardless.
  void set_trace_id(const void* id) { trace_id_ = id; }
  const void* trace_id() const { return trace_id_ != nullptr ? trace_id_ : this; }

  bool contains(const atomos::TxnId& owner) const {
    return std::find(owners_.begin(), owners_.end(), owner) != owners_.end();
  }

  bool empty() const { return owners_.empty(); }
  std::size_t size() const { return owners_.size(); }

  /// Violates every owner other than `self`; stale owners (already finished
  /// incarnations) are pruned.  Returns the number of transactions doomed.
  int violate_all_except(const atomos::TxnId& self) {
    int doomed = 0;
    auto it = owners_.begin();
    while (it != owners_.end()) {
      if (*it == self) {
        ++it;
        continue;
      }
      if (atomos::Runtime::current().violate(*it)) {
        if (auto* rt = atomos::Runtime::current_or_null()) rt->trace_sem_violation(trace_id(), it->cpu);
        ++doomed;
        ++it;
      } else {
        atomos::audit::lock_released(*it, this);  // settled owner: no-op audit
        atomos::sem::lock_pruned(*it, this);
        it = owners_.erase(it);  // stale lock: owner already gone
      }
    }
    return doomed;
  }

 private:
  std::vector<atomos::TxnId> owners_;  // small in practice; linear ops
  const void* trace_id_ = nullptr;     // null => this set is its own site
};

/// key -> LockerSet table (the paper's key2lockers).
template <class K, class Hash = std::hash<K>, class Eq = std::equal_to<K>>
class KeyLockTable {
 public:
  void lock(const K& key, const atomos::TxnId& owner) {
    LockerSet& s = table_[key];
    s.set_trace_id(this);  // aggregate all keys under the table's trace site
    s.add(owner);
  }

  void unlock(const K& key, const atomos::TxnId& owner) {
    auto it = table_.find(key);
    if (it == table_.end()) {
      // No locker set for the key at all: same double-release /
      // release-without-acquire situation as LockerSet::remove's miss.
      atomos::audit::lock_release_noop(owner, this);
      atomos::sem::lock_release_noop(owner, this);
      return;
    }
    it->second.remove(owner);
    if (it->second.empty()) table_.erase(it);
  }

  /// Commit-time write conflict on `key`: dooms every other reader of it.
  int violate_holders(const K& key, const atomos::TxnId& self) {
    auto it = table_.find(key);
    if (it == table_.end()) return 0;
    const int doomed = it->second.violate_all_except(self);
    if (it->second.empty()) table_.erase(it);
    return doomed;
  }

  bool is_locked_by(const K& key, const atomos::TxnId& owner) const {
    auto it = table_.find(key);
    return it != table_.end() && it->second.contains(owner);
  }

  std::size_t locked_key_count() const { return table_.size(); }

 private:
  std::unordered_map<K, LockerSet, Hash, Eq> table_;
};

/// Key-range lock table (the paper's rangeLockers): a plain scanned set —
/// Section 3.2 explicitly prefers this over an interval tree for the
/// expected small population.  Bounds are [from, to) by default; a range
/// may instead be closed on the right (`to_closed`), which is how iterators
/// grow their lock to cover exactly the keys returned so far.  nullopt is
/// an open end.
template <class K, class Compare = std::less<K>>
class RangeLockTable {
 public:
  explicit RangeLockTable(Compare cmp = Compare()) : cmp_(cmp) {}

  struct Range {
    std::optional<K> from;  // inclusive
    std::optional<K> to;    // exclusive unless to_closed
    bool to_closed = false;
    atomos::TxnId owner;
  };

  using Handle = typename std::list<Range>::iterator;

  /// Adds a range lock; adjacent/duplicate ranges are not coalesced.  The
  /// returned handle stays valid for the owner's lifetime (it may be used
  /// to extend the range as an iterator advances).
  Handle lock(const std::optional<K>& from, const std::optional<K>& to,
              const atomos::TxnId& owner, bool to_closed = false) {
    ranges_.push_back(Range{from, to, to_closed, owner});
    atomos::audit::lock_acquired(owner, this);
    atomos::sem::lock_acquired(owner, this);
    if (auto* rt = atomos::Runtime::current_or_null()) rt->trace_sem_acquire(this);
    return std::prev(ranges_.end());
  }

  /// Grows a locked range's right end (iterator progress).
  void extend(Handle h, const std::optional<K>& to, bool to_closed) {
    h->to = to;
    h->to_closed = to_closed;
  }

  /// Removes every range owned by `owner` (commit/abort cleanup).
  void unlock_all(const atomos::TxnId& owner) {
    if (ranges_.remove_if([&](const Range& r) { return r.owner == owner; }) > 0) {
      atomos::audit::locks_released_all(owner, this);
      atomos::sem::locks_released_all(owner, this);
      if (auto* rt = atomos::Runtime::current_or_null()) rt->trace_sem_release(this);
    }
  }

  /// Commit-time conflict: `key` is being added/removed — every other owner
  /// whose locked range contains `key` is doomed.
  int violate_containing(const K& key, const atomos::TxnId& self) {
    int doomed = 0;
    auto it = ranges_.begin();
    while (it != ranges_.end()) {
      if (it->owner == self || !contains(*it, key)) {
        ++it;
        continue;
      }
      if (atomos::Runtime::current().violate(it->owner)) {
        if (auto* rt = atomos::Runtime::current_or_null()) rt->trace_sem_violation(this, it->owner.cpu);
        ++doomed;
        ++it;
      } else {
        atomos::audit::lock_released(it->owner, this);  // settled owner: no-op
        atomos::sem::lock_pruned(it->owner, this);
        it = ranges_.erase(it);  // stale
      }
    }
    return doomed;
  }

  std::size_t size() const { return ranges_.size(); }

 private:
  bool contains(const Range& r, const K& key) const {
    if (r.from.has_value() && cmp_(key, *r.from)) return false;  // key < from
    if (r.to.has_value()) {
      if (r.to_closed) {
        if (cmp_(*r.to, key)) return false;  // key > to
      } else {
        if (!cmp_(key, *r.to)) return false;  // key >= to
      }
    }
    return true;
  }

  Compare cmp_;
  std::list<Range> ranges_;
};

}  // namespace tcc
