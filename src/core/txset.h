// tcc::TransactionalSet / TransactionalSortedSet — thin wrappers over the
// transactional maps, exactly as Section 5.1 prescribes ("they can be built
// as simple wrappers around TransactionalMap / TransactionalSortedMap, as
// has been done for ConcurrentHashSet on ConcurrentHashMap").
#pragma once

#include <memory>
#include <optional>

#include "core/txmap.h"
#include "core/txsortedmap.h"

namespace tcc {

template <class K, class Hash = std::hash<K>, class Eq = std::equal_to<K>>
class TransactionalSet {
 public:
  explicit TransactionalSet(std::unique_ptr<jstd::Map<K, char>> inner,
                            Detection detection = Detection::kOptimistic)
      : map_(std::move(inner), detection) {}

  /// Adds `key`; returns true if it was not already present.
  bool add(const K& key) { return !map_.put(key, 1).has_value(); }
  /// Removes `key`; returns true if it was present.
  bool remove(const K& key) { return map_.remove(key).has_value(); }
  bool contains(const K& key) const { return map_.contains_key(key); }
  long size() const { return map_.size(); }
  bool is_empty() const { return map_.is_empty(); }

  /// Blind add: no membership read, so blind adders of one key commute.
  void add_blind(const K& key) { map_.put_blind(key, 1); }
  void remove_blind(const K& key) { map_.remove_blind(key); }

  /// Enumerates members (wraps the map's entry iterator).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (auto it = map_.iterator(); it->has_next();) fn(it->next().first);
  }

 private:
  TransactionalMap<K, char, Hash, Eq> map_;
};

template <class K, class Compare = std::less<K>, class Hash = std::hash<K>,
          class Eq = std::equal_to<K>>
class TransactionalSortedSet {
 public:
  explicit TransactionalSortedSet(std::unique_ptr<jstd::SortedMap<K, char>> inner,
                                  Detection detection = Detection::kOptimistic,
                                  Compare cmp = Compare())
      : map_(std::move(inner), detection, cmp) {}

  bool add(const K& key) { return !map_.put(key, 1).has_value(); }
  bool remove(const K& key) { return map_.remove(key).has_value(); }
  bool contains(const K& key) const { return map_.contains_key(key); }
  long size() const { return map_.size(); }
  bool is_empty() const { return map_.is_empty(); }
  std::optional<K> first() const { return map_.first_key(); }
  std::optional<K> last() const { return map_.last_key(); }

  /// Enumerates members of [from, to) in order.
  template <class Fn>
  void for_each_range(const std::optional<K>& from, const std::optional<K>& to,
                      Fn&& fn) const {
    for (auto it = map_.range_iterator(from, to); it->has_next();) fn(it->next().first);
  }

 private:
  TransactionalSortedMap<K, char, Compare, Hash, Eq> map_;
};

}  // namespace tcc
