// Open-nested counters and UID generation (paper Sections 1 and 6.3).
//
// Global counters (statistics) and unique-id generators (SPECjbb's
// District.nextOrder) are the canonical cases where *selectively reducing
// isolation* pays: wrapping the read-modify-write in an open-nested
// transaction removes the counter's cache line from the parent's read/write
// set, so long transactions no longer serialize on it.
//
// Three flavours with increasing guarantees:
//  * OpenCounter        — pure open nesting, no compensation: totals reflect
//                         every ATTEMPT (aborted transactions included) —
//                         fine for profiling counters.
//  * CompensatedCounter — registers an abort handler that subtracts the
//                         contribution back out, so committed totals are
//                         exact while still avoiding parent conflicts.
//  * UidGenerator       — monotonically increasing ids; aborted parents
//                         leave holes, which is precisely the database
//                         community's serializability-vs-isolation example
//                         the paper cites (Gray & Reuter).
//
// Every counter cell lives line-isolated in the counter arena
// (sim::kCounterCell): open nesting removes the counter from the parent's
// read/write set only if no *parent-level* cell is co-resident on the
// counter's line — the fig4 feedback storm came from exactly that layout
// accident (see sim/vaddr.h and EXPERIMENTS.md).
#pragma once

#include "tm/runtime.h"
#include "tm/shared.h"

namespace tcc {

/// A counter updated in open-nested transactions; not compensated on abort.
class OpenCounter {
 public:
  explicit OpenCounter(long initial = 0, const char* name = nullptr)
      : v_(initial, name, sim::kCounterCell) {}

  long get() const {
    return atomos::open_atomically([&] { return v_.get(); });
  }

  void add(long delta) {
    atomos::open_atomically([&] { v_.set(v_.get() + delta); });
  }

  /// Raw committed value (tests/reporting).
  long unsafe_peek() const { return v_.unsafe_peek(); }

 private:
  atomos::Shared<long> v_;
};

/// An open-nested counter whose updates are compensated if the enclosing
/// transaction aborts: committed totals are exact, yet the parent carries
/// no memory dependency on the counter line.
class CompensatedCounter {
 public:
  explicit CompensatedCounter(long initial = 0, const char* name = nullptr)
      : v_(initial, name, sim::kCounterCell) {}

  long get() const {
    return atomos::open_atomically([&] { return v_.get(); });
  }

  void add(long delta) {
    atomos::open_atomically([&] { v_.set(v_.get() + delta); });
    // Pinned to the top-level transaction: the open-nested update above is
    // immune to frame rollback, so its compensation must be too.
    atomos::Runtime::current().on_top_abort([this, delta] {
      atomos::open_atomically([&] { v_.set(v_.get() - delta); });
    });
  }

  long unsafe_peek() const { return v_.unsafe_peek(); }

 private:
  atomos::Shared<long> v_;
};

/// Monotonically increasing unique-id source.  Aborted transactions burn
/// ids (holes) — serializable histories are traded for concurrency, exactly
/// the UID discussion in Section 1.
class UidGenerator {
 public:
  explicit UidGenerator(long first = 1, const char* name = nullptr)
      : next_(first, name, sim::kCounterCell) {}

  long next() {
    return atomos::open_atomically([&] {
      const long id = next_.get();
      next_.set(id + 1);
      return id;
    });
  }

  long unsafe_peek_next() const { return next_.unsafe_peek(); }

 private:
  atomos::Shared<long> next_;
};

}  // namespace tcc
