// tcc::TransactionalMap — the paper's Section 3.1 contribution.
//
// Wraps any jstd::Map so that long-running transactions can use it without
// memory-level conflicts on its internals (size field, bucket chains):
//
//  * read operations (get/containsKey/size/iteration) run in OPEN-NESTED
//    transactions that take semantic locks (Table 2) and then discard their
//    memory dependencies;
//  * write operations (put/remove) buffer their effect in a thread-local
//    store buffer (Table 3) plus a size delta, taking a key read-lock
//    because they return the old value;
//  * ONE commit handler per top-level transaction — registered on first use
//    — performs commit-time semantic conflict detection (violating readers
//    whose locks cover the written keys / the size, Table 2's "Write
//    Conflict" column), applies the buffered writes to the underlying map,
//    releases the transaction's locks and clears the buffers;
//  * ONE abort handler compensates: releases locks, clears buffers.
//
// Section 5.1 extensions included: isEmpty as a primitive with its own
// zero-crossing lock; put_blind/remove_blind variants that take no key
// *read* lock (so blind writers of one key commute); and an opt-in
// pessimistic detection mode that additionally dooms conflicting readers at
// operation time.
//
// Scope note (matches the paper): the collection's buffered semantic state
// is scoped to the *top-level* transaction.  Rolling back a closed-nested
// user frame does not undo collection operations performed inside it — the
// paper's store buffers are updated by open-nested transactions and have
// the same property.
#pragma once

#include <cassert>
#include <string>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/lockers.h"
#include "jstd/interfaces.h"
#include "tm/runtime.h"

namespace tcc {

/// When write/read semantic conflicts are detected (paper Section 5.1).
enum class Detection {
  kOptimistic,   ///< commit-time only (the paper's choice)
  kPessimistic,  ///< additionally doom conflicting readers at operation time
};

/// `Iface` is the jstd interface this wrapper presents (jstd::Map by
/// default; TransactionalSortedMap instantiates with jstd::SortedMap so the
/// sorted wrapper is itself a drop-in SortedMap).
template <class K, class V, class Hash = std::hash<K>, class Eq = std::equal_to<K>,
          class Iface = jstd::Map<K, V>>
class TransactionalMap : public Iface {
 public:
  /// Takes ownership of the wrapped implementation.  The wrapper offers the
  /// same interface, so it is a drop-in replacement for `inner`.
  /// `trace_name` names this instance's semantic lock tables in txtrace
  /// output (e.g. "historyTable"); defaults to the class name.
  explicit TransactionalMap(std::unique_ptr<jstd::Map<K, V>> inner,
                            Detection detection = Detection::kOptimistic,
                            const char* trace_name = nullptr)
      : inner_(std::move(inner)), detection_(detection) {
    register_trace_names(trace_name != nullptr ? trace_name : "TransactionalMap");
  }

  // ---- jstd::Map interface (Table 1/2 semantics) ----

  std::optional<V> get(const K& key) const override {
    if (!transactional()) return inner_->get(key);
    if (!in_txn()) return wrap([&] { return get(key); });
    LocalState& ls = local();
    ensure_registered(ls);
    if (auto hit = buffered_lookup(ls, key)) return *hit;
    return atomos::open_atomically([&] {
      charge_sem_op();
      lock_key(ls, key);
      return inner_->get(key);
    });
  }

  bool contains_key(const K& key) const override {
    if (!transactional()) return inner_->contains_key(key);
    return get(key).has_value();
  }

  std::optional<V> put(const K& key, const V& value) override {
    if (!transactional()) return inner_->put(key, value);
    if (!in_txn()) return wrap([&] { return put(key, value); });
    LocalState& ls = local();
    ensure_registered(ls);
    std::optional<V> old = observed_value(ls, key);  // takes the key read-lock
    Entry& e = ls.store[key];
    if (!e.touched) e.present_before = old.has_value();  // committed-map fact
    e.touched = true;
    e.kind = Entry::kPut;
    e.value = value;
    if (detection_ == Detection::kPessimistic) eager_detect(ls, key);
    return old;
  }

  std::optional<V> remove(const K& key) override {
    if (!transactional()) return inner_->remove(key);
    if (!in_txn()) return wrap([&] { return remove(key); });
    LocalState& ls = local();
    ensure_registered(ls);
    std::optional<V> old = observed_value(ls, key);
    Entry& e = ls.store[key];
    if (!e.touched) e.present_before = old.has_value();
    e.touched = true;
    e.kind = Entry::kRemove;
    if (detection_ == Detection::kPessimistic) eager_detect(ls, key);
    return old;
  }

  long size() const override {
    if (!transactional()) return inner_->size();
    if (!in_txn()) return wrap([&] { return size(); });
    LocalState& ls = local();
    ensure_registered(ls);
    resolve_all_blind(ls);
    return atomos::open_atomically([&] {
      charge_sem_op();
      size_lockers_.add(ls.id);
      ls.size_locked = true;
      return inner_->size() + delta(ls);
    });
  }

  /// Section 5.1: isEmpty as a PRIMITIVE with a dedicated lock that is only
  /// violated when the size crosses zero — so `if (!m.isEmpty()) m.put(..)`
  /// transactions commute, unlike the size()-derived version.
  bool is_empty() const override {
    if (!transactional()) return inner_->is_empty();
    if (!in_txn()) return wrap([&] { return is_empty(); });
    LocalState& ls = local();
    ensure_registered(ls);
    resolve_all_blind(ls);
    return atomos::open_atomically([&] {
      charge_sem_op();
      empty_lockers_.add(ls.id);
      ls.empty_locked = true;
      return inner_->size() + delta(ls) == 0;
    });
  }

  std::unique_ptr<jstd::MapIterator<K, V>> iterator() const override {
    if (!transactional()) return inner_->iterator();
    LocalState& ls = local();
    ensure_registered(ls);
    return std::make_unique<Iter>(this, &ls);
  }

  // ---- Section 5.1 blind variants ----

  /// put that does NOT return (or read) the old value: takes no key
  /// read-lock, so blind writers of the same key never conflict with each
  /// other — the paper's map.put("LastModified", now) example.
  void put_blind(const K& key, const V& value) {
    if (!transactional()) {
      inner_->put(key, value);
      return;
    }
    if (!in_txn()) {
      wrap([&] {
        put_blind(key, value);
        return 0;
      });
      return;
    }
    LocalState& ls = local();
    ensure_registered(ls);
    Entry& e = ls.store[key];
    e.touched = true;
    e.kind = Entry::kPut;
    e.value = value;
    charge_sem_op();
    if (detection_ == Detection::kPessimistic) eager_detect(ls, key);
  }

  /// remove that does not read/return the old value (no key read-lock).
  void remove_blind(const K& key) {
    if (!transactional()) {
      inner_->remove(key);
      return;
    }
    if (!in_txn()) {
      wrap([&] {
        remove_blind(key);
        return 0;
      });
      return;
    }
    LocalState& ls = local();
    ensure_registered(ls);
    Entry& e = ls.store[key];
    e.touched = true;
    e.kind = Entry::kRemove;
    charge_sem_op();
    if (detection_ == Detection::kPessimistic) eager_detect(ls, key);
  }

  // ---- introspection (tests / TAPE-style analysis) ----

  const jstd::Map<K, V>& inner() const { return *inner_; }
  std::size_t locked_key_count() const { return key_lockers_.locked_key_count(); }
  std::size_t size_locker_count() const { return size_lockers_.size(); }
  std::size_t empty_locker_count() const { return empty_lockers_.size(); }

 protected:
  // One buffered effect per key (later operations overwrite the kind/value;
  // present_before is the committed-map fact observed under the key lock).
  struct Entry {
    enum Kind { kPut, kRemove } kind = kPut;
    V value{};
    std::optional<bool> present_before;  // nullopt until observed (blind ops)
    bool touched = false;
  };

  struct LocalState {
    atomos::TxnId id{};
    bool registered = false;
    bool size_locked = false;
    bool empty_locked = false;
    std::unordered_map<K, Entry, Hash, Eq> store;
    std::vector<K> key_locks;

    void clear() {
      store.clear();
      key_locks.clear();
      registered = false;
      size_locked = false;
      empty_locked = false;
      id = atomos::TxnId{};
    }
  };

  static bool transactional() {
    return atomos::Runtime::active() && sim::Engine::in_worker() &&
           atomos::Runtime::current().mode() == sim::Mode::kTcc;
  }

  static bool in_txn() { return atomos::Runtime::current().in_txn(); }

  /// Runs a single collection op outside any transaction as its own
  /// top-level transaction.
  template <class F>
  auto wrap(F&& fn) const {
    return atomos::Runtime::current().atomically(std::forward<F>(fn));
  }

  LocalState& local() const {
    auto& rt = atomos::Runtime::current();
    const auto cpu = static_cast<std::size_t>(rt.engine().cpu_id());
    if (locals_.size() <= cpu) locals_.resize(static_cast<std::size_t>(rt.engine().config().num_cpus));
    LocalState& ls = locals_[cpu];
    const atomos::TxnId cur = rt.self_id();
    if (!(ls.id == cur)) {
      assert(ls.store.empty() && ls.key_locks.empty() && "stale uncompensated state");
      ls.clear();
      ls.id = cur;
    }
    return ls;
  }

  void ensure_registered(LocalState& ls) const {
    if (ls.registered) return;
    ls.registered = true;
    auto& rt = atomos::Runtime::current();
    const int cpu = rt.engine().cpu_id();
    auto* self = const_cast<TransactionalMap*>(this);
    // Read-only transactions (empty store buffer) only release locks at
    // commit: pure cleanup, no token needed.
    rt.on_top_commit([self, cpu] { self->commit_handler(cpu); },
                     [self, cpu] {
                       return !self->locals_[static_cast<std::size_t>(cpu)].store.empty();
                     });
    rt.on_top_abort([self, cpu] { self->abort_handler(cpu); });
  }

  void lock_key(LocalState& ls, const K& key) const {
    if (key_lockers_.is_locked_by(key, ls.id)) return;
    key_lockers_.lock(key, ls.id);
    ls.key_locks.push_back(key);
  }

  /// Buffered value for `key`, if this transaction already wrote it.
  std::optional<std::optional<V>> buffered_lookup(LocalState& ls, const K& key) const {
    auto it = ls.store.find(key);
    if (it == ls.store.end() || !it->second.touched) return std::nullopt;
    if (it->second.kind == Entry::kPut) return std::optional<V>(it->second.value);
    return std::optional<V>(std::nullopt);  // buffered remove
  }

  /// The value this transaction observes for `key` (buffer, else locked
  /// read of the committed map).
  std::optional<V> observed_value(LocalState& ls, const K& key) const {
    if (auto hit = buffered_lookup(ls, key)) return *hit;
    return atomos::open_atomically([&] {
      charge_sem_op();
      lock_key(ls, key);
      return inner_->get(key);
    });
  }

  /// Committed-map presence of `key`, observed under the key lock (stable
  /// until our commit: any writer of the key would violate us first).
  bool resolve_presence(LocalState& ls, const K& key) const {
    return atomos::open_atomically([&] {
      charge_sem_op();
      lock_key(ls, key);
      return inner_->contains_key(key);
    });
  }

  /// Fills in present_before for blind entries (needed before size()).
  void resolve_all_blind(LocalState& ls) const {
    for (auto& [key, e] : ls.store) {
      if (!e.present_before.has_value()) e.present_before = resolve_presence(ls, key);
    }
  }

  /// Net size change of the buffered operations (all presences resolved).
  long delta(const LocalState& ls) const {
    long d = 0;
    for (const auto& [key, e] : ls.store) {
      const bool before = e.present_before.value();
      if (e.kind == Entry::kPut && !before) ++d;
      if (e.kind == Entry::kRemove && before) --d;
    }
    return d;
  }

  /// Pessimistic mode: doom conflicting readers at operation time.
  void eager_detect(LocalState& ls, const K& key) const {
    key_lockers_.violate_holders(key, ls.id);
  }

  /// THE commit handler (Table 2 "Write Conflict" column): runs inside the
  /// commit token as a closed-nested frame of the committing transaction.
  virtual void commit_handler(int cpu) {
    LocalState& ls = locals_[static_cast<std::size_t>(cpu)];
    charge_sem_op(1 + ls.store.size());
    long applied_delta = 0;
    for (auto& [key, e] : ls.store) {
      if (!e.touched) continue;
      // Semantic conflict: every other reader of this key is doomed.
      key_lockers_.violate_holders(key, ls.id);
      if (e.kind == Entry::kPut) {
        if (!inner_->put(key, e.value).has_value()) ++applied_delta;
      } else {
        if (inner_->remove(key).has_value()) --applied_delta;
      }
    }
    if (applied_delta != 0) {
      size_lockers_.violate_all_except(ls.id);
      const long new_size = inner_->size();
      const bool was_empty = (new_size - applied_delta) == 0;
      const bool now_empty = new_size == 0;
      if (was_empty != now_empty) empty_lockers_.violate_all_except(ls.id);
    }
    release_and_clear(ls);
  }

  /// THE abort handler: pure compensation (paper Section 5 rules).
  virtual void abort_handler(int cpu) {
    // Report the compensation body to the auditor / txmc oracle before the
    // local state is cleared (a second run for the same abort is invisible
    // afterwards — detection is scoped by the runtime's abort bracket).
    atomos::audit::compensation_run(cpu, this);
    atomos::sem::compensation_run(this);
    LocalState& ls = locals_[static_cast<std::size_t>(cpu)];
    charge_sem_op(ls.key_locks.size() + 1);
    release_and_clear(ls);
  }

  void release_and_clear(LocalState& ls) {
    for (const K& k : ls.key_locks) key_lockers_.unlock(k, ls.id);
    if (ls.size_locked) size_lockers_.remove(ls.id);
    if (ls.empty_locked) empty_lockers_.remove(ls.id);
    ls.clear();
  }

  // ---- iterator: snapshot + merge with the store buffer (Section 3.1) ----

  class Iter final : public jstd::MapIterator<K, V> {
   public:
    Iter(const TransactionalMap* m, LocalState* ls) : m_(m), ls_(ls) {
      // Snapshot the underlying enumeration in ONE open-nested transaction
      // (idempotent under retry), then merge with the store buffer.
      atomos::open_atomically([&] {
        charge_sem_op();
        snapshot_.clear();
        for (auto it = m_->inner_->iterator(); it->has_next();) snapshot_.push_back(it->next());
      });
      for (const auto& [key, e] : ls_->store) {
        if (!e.touched || e.kind != Entry::kPut) continue;
        bool in_snapshot = false;
        for (const auto& [sk, sv] : snapshot_) {
          if (Eq{}(sk, key)) {
            in_snapshot = true;
            break;
          }
        }
        if (!in_snapshot) added_.emplace_back(key, e.value);
      }
      advance();
    }

    bool has_next() override {
      if (next_.has_value()) return true;
      // Observing exhaustion reveals the size: take the size lock (Table 2).
      if (!exhaust_locked_) {
        exhaust_locked_ = true;
        atomos::open_atomically([&] {
          charge_sem_op();
          m_->size_lockers_.add(ls_->id);
          ls_->size_locked = true;
        });
      }
      return false;
    }

    std::pair<K, V> next() override {
      auto out = *next_;
      advance();
      return out;
    }

   private:
    void advance() {
      next_.reset();
      while (pos_ < snapshot_.size()) {
        const K key = snapshot_[pos_].first;
        ++pos_;
        if (auto hit = m_->buffered_lookup(*ls_, key)) {
          if (hit->has_value()) {
            next_ = {key, **hit};
            return;
          }
          continue;  // buffered remove: skip
        }
        // Lock the key and re-read under the lock (the snapshot may predate
        // a concurrent commit; the lock makes the observation stable).
        auto cur = atomos::open_atomically([&] {
          charge_sem_op();
          m_->lock_key(*ls_, key);
          return m_->inner_->get(key);
        });
        if (cur.has_value()) {
          next_ = {key, *cur};
          return;
        }
        // Key vanished between snapshot and visit: consistent with
        // serializing after the remover; skip it.
      }
      if (apos_ < added_.size()) {
        next_ = added_[apos_++];
        return;
      }
    }

    const TransactionalMap* m_;
    LocalState* ls_;
    std::vector<std::pair<K, V>> snapshot_;
    std::vector<std::pair<K, V>> added_;
    std::size_t pos_ = 0;
    std::size_t apos_ = 0;
    std::optional<std::pair<K, V>> next_;
    bool exhaust_locked_ = false;
  };

  /// Names this instance's lock tables for txtrace (setup-time; no-op when
  /// no tracer is attached).  Table names follow the paper's Table 3 fields.
  void register_trace_names(const std::string& n) {
    if (auto* rt = atomos::Runtime::current_or_null()) {
      rt->trace_name_table(&key_lockers_, (n + ".key2lockers").c_str());
      rt->trace_name_table(&size_lockers_, (n + ".sizeLockers").c_str());
      rt->trace_name_table(&empty_lockers_, (n + ".emptyLockers").c_str());
    }
  }

  std::unique_ptr<jstd::Map<K, V>> inner_;
  Detection detection_;
  mutable KeyLockTable<K, Hash, Eq> key_lockers_;
  mutable LockerSet size_lockers_;
  mutable LockerSet empty_lockers_;
  mutable std::vector<LocalState> locals_;
};

}  // namespace tcc
