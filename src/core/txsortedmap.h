// tcc::TransactionalSortedMap — the paper's Section 3.2 contribution.
//
// Extends TransactionalMap for SortedMap implementations (e.g. a red-black
// TreeMap) with the Table 4/5 semantics:
//
//  * key-RANGE locks taken by ordered iteration (and grown as the iterator
//    advances, so they cover exactly the keys observed);
//  * FIRST/LAST endpoint locks taken by firstKey/lastKey and by iterators
//    that observe an endpoint (full iteration exhaustion = last-key
//    observation);
//  * commit-time detection extended accordingly: a put/remove violates key
//    lockers AND range lockers containing the key, and endpoint lockers
//    whenever the first/last key changes; size/empty handling is inherited.
//
// subMap/headMap/tailMap views collapse onto the range_iterator primitive
// (see jstd::SortedMap).  The sortedStoreBuffer of Table 6 is realized by
// sorting the store buffer on demand during merged iteration.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/txmap.h"

namespace tcc {

template <class K, class V, class Compare = std::less<K>,
          class Hash = std::hash<K>, class Eq = std::equal_to<K>>
class TransactionalSortedMap final
    : public TransactionalMap<K, V, Hash, Eq, jstd::SortedMap<K, V>> {
  using Base = TransactionalMap<K, V, Hash, Eq, jstd::SortedMap<K, V>>;
  using typename Base::Entry;
  using typename Base::LocalState;

 public:
  explicit TransactionalSortedMap(std::unique_ptr<jstd::SortedMap<K, V>> inner,
                                  Detection detection = Detection::kOptimistic,
                                  Compare cmp = Compare(),
                                  const char* trace_name = nullptr)
      : Base(std::move(inner), detection,
             trace_name != nullptr ? trace_name : "TransactionalSortedMap"),
        cmp_(cmp),
        range_lockers_(cmp) {
    // inner_ was constructed from a SortedMap, so the downcast is exact.
    sorted_ = static_cast<jstd::SortedMap<K, V>*>(this->inner_.get());
    const std::string n =
        trace_name != nullptr ? trace_name : "TransactionalSortedMap";
    if (auto* rt = atomos::Runtime::current_or_null()) {
      rt->trace_name_table(&range_lockers_, (n + ".rangeLockers").c_str());
      rt->trace_name_table(&first_lockers_, (n + ".firstLockers").c_str());
      rt->trace_name_table(&last_lockers_, (n + ".lastLockers").c_str());
    }
  }

  // ---- SortedMap interface (Table 5 read locks) ----

  std::optional<K> first_key() const override {
    if (!Base::transactional()) return sorted_inner().first_key();
    if (!Base::in_txn()) return Base::wrap([&] { return first_key(); });
    LocalState& ls = Base::local();
    Base::ensure_registered(ls);
    return atomos::open_atomically([&] {
      charge_sem_op();
      first_lockers_.add(ls.id);
      eflags(ls).first = true;
      return merged_first(ls);
    });
  }

  std::optional<K> last_key() const override {
    if (!Base::transactional()) return sorted_inner().last_key();
    if (!Base::in_txn()) return Base::wrap([&] { return last_key(); });
    LocalState& ls = Base::local();
    Base::ensure_registered(ls);
    return atomos::open_atomically([&] {
      charge_sem_op();
      last_lockers_.add(ls.id);
      eflags(ls).last = true;
      return merged_last(ls);
    });
  }

  std::optional<K> last_key_before(const K& key) const override {
    // Derivative of a (tiny) range observation: lock (-inf, key) up to the
    // answer... conservatively lock the probe point via a closed range.
    if (!Base::transactional()) return sorted_inner().last_key_before(key);
    if (!Base::in_txn()) return Base::wrap([&] { return last_key_before(key); });
    LocalState& ls = Base::local();
    Base::ensure_registered(ls);
    return atomos::open_atomically([&] {
      charge_sem_op();
      std::optional<K> committed = sorted_inner().last_key_before(key);
      // Merge with buffer: largest buffered put < key; skip buffered removes.
      while (committed.has_value() && buffered_removed(ls, *committed)) {
        committed = sorted_inner().last_key_before(*committed);
      }
      std::optional<K> best = committed;
      for (const auto& [k, e] : ls.store) {
        if (!e.touched || e.kind != Entry::kPut) continue;
        if (cmp_(k, key) && (!best.has_value() || cmp_(*best, k))) best = k;
      }
      // The observation depends on the gap (best, key): range-lock it.
      range_lockers_.lock(best, key, ls.id, /*to_closed=*/false);
      return best;
    });
  }

  std::unique_ptr<jstd::MapIterator<K, V>> range_iterator(
      const std::optional<K>& from, const std::optional<K>& to) const override {
    if (!Base::transactional()) return sorted_inner().range_iterator(from, to);
    LocalState& ls = Base::local();
    Base::ensure_registered(ls);
    return std::make_unique<SortedIter>(this, &ls, from, to);
  }

  std::unique_ptr<jstd::MapIterator<K, V>> iterator() const override {
    return range_iterator(std::nullopt, std::nullopt);
  }

  // ---- introspection ----
  std::size_t range_lock_count() const { return range_lockers_.size(); }
  std::size_t first_locker_count() const { return first_lockers_.size(); }
  std::size_t last_locker_count() const { return last_lockers_.size(); }

 protected:
  /// Table 5 "Write Conflict" column, extending the Map handler: range and
  /// endpoint conflicts in addition to key/size/empty conflicts.
  void commit_handler(int cpu) override {
    LocalState& ls = this->locals_[static_cast<std::size_t>(cpu)];
    charge_sem_op(2 + ls.store.size());
    const std::optional<K> old_first = sorted_inner().first_key();
    const std::optional<K> old_last = sorted_inner().last_key();
    long applied_delta = 0;
    for (auto& [key, e] : ls.store) {
      if (!e.touched) continue;
      this->key_lockers_.violate_holders(key, ls.id);
      range_lockers_.violate_containing(key, ls.id);
      if (e.kind == Entry::kPut) {
        if (!this->inner_->put(key, e.value).has_value()) ++applied_delta;
      } else {
        if (this->inner_->remove(key).has_value()) --applied_delta;
      }
    }
    const std::optional<K> new_first = sorted_inner().first_key();
    const std::optional<K> new_last = sorted_inner().last_key();
    if (!same_key(old_first, new_first)) first_lockers_.violate_all_except(ls.id);
    if (!same_key(old_last, new_last)) last_lockers_.violate_all_except(ls.id);
    if (applied_delta != 0) {
      this->size_lockers_.violate_all_except(ls.id);
      const long new_size = this->inner_->size();
      if (((new_size - applied_delta) == 0) != (new_size == 0))
        this->empty_lockers_.violate_all_except(ls.id);
    }
    release_sorted(ls);
    this->release_and_clear(ls);
  }

  void abort_handler(int cpu) override {
    // Does not chain to the Map handler, so report the compensation here.
    atomos::audit::compensation_run(cpu, this);
    atomos::sem::compensation_run(this);
    LocalState& ls = this->locals_[static_cast<std::size_t>(cpu)];
    charge_sem_op(ls.key_locks.size() + 2);
    release_sorted(ls);
    this->release_and_clear(ls);
  }

 private:
  jstd::SortedMap<K, V>& sorted_inner() const { return *sorted_; }

  bool same_key(const std::optional<K>& a, const std::optional<K>& b) const {
    if (a.has_value() != b.has_value()) return false;
    if (!a.has_value()) return true;
    return !cmp_(*a, *b) && !cmp_(*b, *a);
  }

  bool buffered_removed(LocalState& ls, const K& key) const {
    auto it = ls.store.find(key);
    return it != ls.store.end() && it->second.touched && it->second.kind == Entry::kRemove;
  }

  std::optional<K> merged_first(LocalState& ls) const {
    // Committed first, skipping keys this transaction buffered as removed.
    std::optional<K> committed = sorted_inner().first_key();
    while (committed.has_value() && buffered_removed(ls, *committed)) {
      auto it = sorted_inner().range_iterator(*committed, std::nullopt);
      // skip the key itself, then take the next committed key
      std::optional<K> next;
      if (it->has_next()) {
        it->next();
        if (it->has_next()) next = it->next().first;
      }
      committed = next;
    }
    std::optional<K> best = committed;
    for (const auto& [k, e] : ls.store) {
      if (!e.touched || e.kind != Entry::kPut) continue;
      if (!best.has_value() || cmp_(k, *best)) best = k;
    }
    return best;
  }

  std::optional<K> merged_last(LocalState& ls) const {
    std::optional<K> committed = sorted_inner().last_key();
    while (committed.has_value() && buffered_removed(ls, *committed)) {
      committed = sorted_inner().last_key_before(*committed);
    }
    std::optional<K> best = committed;
    for (const auto& [k, e] : ls.store) {
      if (!e.touched || e.kind != Entry::kPut) continue;
      if (!best.has_value() || cmp_(*best, k)) best = k;
    }
    return best;
  }

  /// Endpoint-lock ownership flags per cpu, mirroring the base class's
  /// size_locked/empty_locked guards: releases must be exact (a release
  /// that finds nothing to release is a protocol violation the checked
  /// build and txmc flag), so removal is guarded by these.
  struct EndpointFlags {
    bool first = false;
    bool last = false;
  };

  EndpointFlags& eflags(const LocalState& ls) const {
    const auto cpu = static_cast<std::size_t>(ls.id.cpu);
    if (endpoint_flags_.size() <= cpu) endpoint_flags_.resize(cpu + 1);
    return endpoint_flags_[cpu];
  }

  void release_sorted(LocalState& ls) {
    range_lockers_.unlock_all(ls.id);
    EndpointFlags& f = eflags(ls);
    if (f.first) first_lockers_.remove(ls.id);
    if (f.last) last_lockers_.remove(ls.id);
    f.first = false;
    f.last = false;
  }

  /// Ordered merged iterator over committed range ∩ buffer, growing a range
  /// lock to cover exactly the keys observed (Table 5).
  class SortedIter final : public jstd::MapIterator<K, V> {
   public:
    SortedIter(const TransactionalSortedMap* m, LocalState* ls,
               std::optional<K> from, std::optional<K> to)
        : m_(m), ls_(ls), from_(std::move(from)), to_(std::move(to)) {
      // Snapshot the committed range in one open-nested transaction.
      atomos::open_atomically([&] {
        charge_sem_op();
        snapshot_.clear();
        for (auto it = m_->sorted_inner().range_iterator(from_, to_); it->has_next();)
          snapshot_.push_back(it->next());
      });
      // Sorted view of buffered puts within the range (Table 6's
      // sortedStoreBuffer).
      for (const auto& [k, e] : ls_->store) {
        if (!e.touched || e.kind != Entry::kPut) continue;
        if (from_.has_value() && m_->cmp_(k, *from_)) continue;
        if (to_.has_value() && !m_->cmp_(k, *to_)) continue;
        buffered_.emplace_back(k, e.value);
      }
      std::sort(buffered_.begin(), buffered_.end(),
                [&](const auto& a, const auto& b) { return m_->cmp_(a.first, b.first); });
      // Start an (initially empty) growing range lock at `from`.
      atomos::open_atomically([&] {
        charge_sem_op();
        handle_ = m_->range_lockers_.lock(from_, from_, ls_->id, /*to_closed=*/false);
      });
      advance();
    }

    bool has_next() override {
      if (next_.has_value()) return true;
      if (!end_locked_) {
        end_locked_ = true;
        atomos::open_atomically([&] {
          charge_sem_op();
          if (to_.has_value()) {
            // Bounded view: exhaustion is covered by the range lock [from, to).
            m_->range_lockers_.extend(handle_, to_, /*to_closed=*/false);
          } else {
            // Unbounded: exhaustion observes the LAST key (Table 4/5).
            m_->range_lockers_.extend(handle_, std::nullopt, false);
            m_->last_lockers_.add(ls_->id);
            m_->eflags(*ls_).last = true;
          }
        });
      }
      return false;
    }

    std::pair<K, V> next() override {
      auto out = *next_;
      advance();
      return out;
    }

   private:
    void advance() {
      next_.reset();
      for (;;) {
        const bool have_s = pos_ < snapshot_.size();
        const bool have_b = bpos_ < buffered_.size();
        if (!have_s && !have_b) return;
        bool take_buffered;
        if (have_s && have_b) {
          if (m_->cmp_(buffered_[bpos_].first, snapshot_[pos_].first)) {
            take_buffered = true;
          } else if (m_->cmp_(snapshot_[pos_].first, buffered_[bpos_].first)) {
            take_buffered = false;
          } else {  // same key: buffer overrides the committed value
            ++pos_;
            take_buffered = true;
          }
        } else {
          take_buffered = have_b;
        }
        if (take_buffered) {
          const auto& [k, v] = buffered_[bpos_++];
          grow_lock(k);
          next_ = {k, v};
          return;
        }
        const K k = snapshot_[pos_].first;
        ++pos_;
        if (m_->buffered_removed(*ls_, k)) continue;
        if (auto hit = m_->buffered_lookup(*ls_, k)) {  // buffered overwrite
          grow_lock(k);
          next_ = {k, **hit};
          return;
        }
        // Extend the lock through k, then re-read under it (the snapshot may
        // predate a concurrent commit).
        auto cur = atomos::open_atomically([&] {
          charge_sem_op();
          m_->range_lockers_.extend(handle_, k, /*to_closed=*/true);
          return m_->inner_->get(k);
        });
        if (!cur.has_value()) continue;  // vanished: serialize after remover
        next_ = {k, *cur};
        return;
      }
    }

    void grow_lock(const K& through) {
      atomos::open_atomically([&] {
        charge_sem_op();
        m_->range_lockers_.extend(handle_, through, /*to_closed=*/true);
      });
    }

    const TransactionalSortedMap* m_;
    LocalState* ls_;
    std::optional<K> from_, to_;
    std::vector<std::pair<K, V>> snapshot_;
    std::vector<std::pair<K, V>> buffered_;
    std::size_t pos_ = 0, bpos_ = 0;
    typename RangeLockTable<K, Compare>::Handle handle_;
    std::optional<std::pair<K, V>> next_;
    bool end_locked_ = false;
  };

  Compare cmp_;
  jstd::SortedMap<K, V>* sorted_ = nullptr;
  mutable RangeLockTable<K, Compare> range_lockers_;
  mutable LockerSet first_lockers_;
  mutable LockerSet last_lockers_;
  mutable std::vector<EndpointFlags> endpoint_flags_;
};

}  // namespace tcc
