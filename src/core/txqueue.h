// tcc::TransactionalQueue — the paper's Section 3.3 reduced-isolation
// transactional work queue (Tables 7-9).
//
// Wraps a jstd::Queue behind the narrow Channel interface.  Isolation is
// deliberately relaxed to maximize concurrency:
//
//  * take()/poll() remove an element from the underlying queue EAGERLY, in
//    an open-nested transaction (other transactions can immediately see it
//    gone — the Delaunay work-queue pattern); the element is recorded in a
//    removeBuffer and COMPENSATED (pushed back) if the parent aborts;
//  * put() buffers the element in an addBuffer, applied at commit, so
//    speculative work items never become visible (the failure mode open
//    nesting alone suffers from, per Kulkarni et al.);
//  * the only semantic conflict (Table 7): observing EMPTINESS via
//    peek()/poll() returning nothing takes an empty lock, and a committing
//    put() that makes the queue non-empty violates those observers;
//  * size() observes the exact element count and takes a size lock (the
//    sizeLockers pattern of Table 3 applied to the queue): any committed
//    put, any eager take/poll removal, and any abort-time put-back changes
//    the count and violates every other size observer.  Workers that only
//    need "is there work?" should use take()/try_dequeue(), which observe
//    nothing and therefore conflict with nothing.
//
// Because strict FIFO order is not maintained across transactions, put/take
// pairs never conflict with each other (Table 7's blank cells).
#pragma once

#include <cassert>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/lockers.h"
#include "jstd/interfaces.h"
#include "tm/runtime.h"

namespace tcc {

template <class T>
class TransactionalQueue : public jstd::Channel<T> {
 public:
  explicit TransactionalQueue(std::unique_ptr<jstd::Queue<T>> inner,
                              const char* trace_name = nullptr)
      : inner_(std::move(inner)) {
    if (auto* rt = atomos::Runtime::current_or_null()) {
      const std::string n =
          trace_name != nullptr ? trace_name : "TransactionalQueue";
      rt->trace_name_table(&empty_lockers_, (n + ".emptyLockers").c_str());
      rt->trace_name_table(&size_lockers_, (n + ".sizeLockers").c_str());
    }
  }

  /// Enqueues `item` when the surrounding transaction commits (buffered in
  /// the addBuffer until then; visible to this transaction's own polls).
  void put(const T& item) override {
    if (!transactional()) {
      inner_->put(item);
      return;
    }
    if (!in_txn()) {
      atomos::Runtime::current().atomically([&] { put(item); });
      return;
    }
    LocalState& ls = local();
    ensure_registered(ls);
    charge_sem_op();
    ls.add_buffer.push_back(item);
  }

  /// Dequeues an element if one is available.  The removal is applied to
  /// the shared queue IMMEDIATELY (reduced isolation); it is returned to
  /// the queue if this transaction aborts.  An empty answer takes the empty
  /// lock (Table 8), so a committing producer will violate us.
  std::optional<T> poll() override {
    if (!transactional()) return inner_->poll();
    if (!in_txn())
      return atomos::Runtime::current().atomically([&] { return poll(); });
    LocalState& ls = local();
    ensure_registered(ls);
    charge_sem_op();
    auto got = atomos::open_atomically([&] { return eager_remove(ls); });
    if (got.has_value()) {
      ls.remove_buffer.push_back(*got);
      return got;
    }
    if (!ls.add_buffer.empty()) {  // read-your-writes: consume own pending put
      T item = ls.add_buffer.front();
      ls.add_buffer.pop_front();
      return item;
    }
    atomos::open_atomically([&] {
      charge_sem_op();
      empty_lockers_.add(ls.id);
      ls.empty_locked = true;
    });
    return std::nullopt;
  }

  /// Dequeues like poll() but does NOT register an emptiness observation —
  /// the Table 7 put/take row: transactions confined to put and take can
  /// never conflict.  Callers must treat "no element" as retry-later, not
  /// as a serializable fact.
  std::optional<T> take() {
    if (!transactional()) return inner_->poll();
    if (!in_txn())
      return atomos::Runtime::current().atomically([&] { return take(); });
    LocalState& ls = local();
    ensure_registered(ls);
    charge_sem_op();
    auto got = atomos::open_atomically([&] { return eager_remove(ls); });
    if (got.has_value()) {
      ls.remove_buffer.push_back(*got);
      return got;
    }
    if (!ls.add_buffer.empty()) {
      T item = ls.add_buffer.front();
      ls.add_buffer.pop_front();
      return item;
    }
    return std::nullopt;
  }

  /// Worker-loop alias for take(): the non-blocking dequeue a request-serving
  /// loop wants.  A nullopt means "nothing right now, retry later" and is
  /// NOT a serializable emptiness observation (Table 7: put/take commute).
  std::optional<T> try_dequeue() { return take(); }

  /// Observes the exact element count (own pending puts included, eagerly
  /// taken elements excluded — they are already gone from the shared queue).
  /// The observation takes a size lock: committed puts, other transactions'
  /// eager removals and abort-time put-backs all change the count and
  /// violate us.  This is the paper's sizeLockers rule (Table 3) applied to
  /// the queue; prefer take()/try_dequeue() when emptiness-for-retry is all
  /// the caller needs.
  long size() const {
    if (!transactional()) return inner_->size();
    if (!in_txn())
      return atomos::Runtime::current().atomically([&] { return size(); });
    LocalState& ls = local();
    ensure_registered(ls);
    charge_sem_op();
    const long shared = atomos::open_atomically([&] {
      charge_sem_op();
      size_lockers_.add(ls.id);
      ls.size_locked = true;
      return inner_->size();
    });
    return shared + static_cast<long>(ls.add_buffer.size());
  }

  /// Observes the head without removing it; observing emptiness takes the
  /// empty lock (Table 8's only peek rule).
  std::optional<T> peek() const override {
    if (!transactional()) return inner_->peek();
    if (!in_txn())
      return atomos::Runtime::current().atomically([&] { return peek(); });
    LocalState& ls = local();
    ensure_registered(ls);
    charge_sem_op();
    auto got = atomos::open_atomically([&] { return inner_->peek(); });
    if (got.has_value()) return got;
    if (!ls.add_buffer.empty()) return ls.add_buffer.front();
    atomos::open_atomically([&] {
      charge_sem_op();
      empty_lockers_.add(ls.id);
      ls.empty_locked = true;
    });
    return std::nullopt;
  }

  // ---- introspection (tests) ----
  const jstd::Queue<T>& inner() const { return *inner_; }
  std::size_t empty_locker_count() const { return empty_lockers_.size(); }
  std::size_t size_locker_count() const { return size_lockers_.size(); }

 protected:
  // Subclassable (protected state, virtual handlers) so litmus mutants —
  // e.g. a queue whose compensation drops elements — can override exactly
  // one behavior; production code has no reason to subclass.
  struct LocalState {
    atomos::TxnId id{};
    bool registered = false;
    bool empty_locked = false;
    bool size_locked = false;
    std::deque<T> add_buffer;     // Table 9: addBuffer
    std::vector<T> remove_buffer; // Table 9: removeBuffer

    void clear() {
      add_buffer.clear();
      remove_buffer.clear();
      registered = false;
      empty_locked = false;
      size_locked = false;
      id = atomos::TxnId{};
    }
  };

  static bool transactional() {
    return atomos::Runtime::active() && sim::Engine::in_worker() &&
           atomos::Runtime::current().mode() == sim::Mode::kTcc;
  }

  static bool in_txn() { return atomos::Runtime::current().in_txn(); }

  LocalState& local() const {
    auto& rt = atomos::Runtime::current();
    const auto cpu = static_cast<std::size_t>(rt.engine().cpu_id());
    if (locals_.size() <= cpu)
      locals_.resize(static_cast<std::size_t>(rt.engine().config().num_cpus));
    LocalState& ls = locals_[cpu];
    const atomos::TxnId cur = rt.self_id();
    if (!(ls.id == cur)) {
      assert(ls.add_buffer.empty() && ls.remove_buffer.empty());
      ls.clear();
      ls.id = cur;
    }
    return ls;
  }

  /// Inner-queue removal, run inside an open-nested child.  A successful
  /// removal changes the observable element count immediately (reduced
  /// isolation), so every OTHER size observer is violated on the spot —
  /// unlike puts, whose size effect only exists at commit.
  std::optional<T> eager_remove(LocalState& ls) const {
    auto got = inner_->poll();
    if (got.has_value() && !size_lockers_.empty()) {
      charge_sem_op();
      size_lockers_.violate_all_except(ls.id);
    }
    return got;
  }

  void ensure_registered(LocalState& ls) const {
    if (ls.registered) return;
    ls.registered = true;
    auto& rt = atomos::Runtime::current();
    const int cpu = rt.engine().cpu_id();
    auto* self = const_cast<TransactionalQueue*>(this);
    // Only transactions with pending puts need the token at commit.
    rt.on_top_commit([self, cpu] { self->commit_handler(cpu); },
                     [self, cpu] {
                       return !self->locals_[static_cast<std::size_t>(cpu)].add_buffer.empty();
                     });
    rt.on_top_abort([self, cpu] { self->abort_handler(cpu); });
  }

  /// Applies the addBuffer; a producer making an empty queue non-empty
  /// violates every emptiness observer (Table 8: put "if now non-empty"),
  /// and any applied put changes the count, violating size observers.
  virtual void commit_handler(int cpu) {
    LocalState& ls = locals_[static_cast<std::size_t>(cpu)];
    charge_sem_op(ls.add_buffer.size() + 1);
    if (!ls.add_buffer.empty()) {
      if (inner_->is_empty()) empty_lockers_.violate_all_except(ls.id);
      size_lockers_.violate_all_except(ls.id);
      for (const T& item : ls.add_buffer) inner_->put(item);
    }
    release_and_clear(ls);
  }

  /// Compensation: eagerly removed elements go back (order not preserved —
  /// the queue deliberately keeps no strict ordering across transactions).
  virtual void abort_handler(int cpu) {
    atomos::audit::compensation_run(cpu, this);
    atomos::sem::compensation_run(this);
    LocalState& ls = locals_[static_cast<std::size_t>(cpu)];
    charge_sem_op(ls.remove_buffer.size() + 1);
    if (!ls.remove_buffer.empty()) {
      atomos::open_atomically([&] {
        const bool was_empty = inner_->is_empty();
        for (const T& item : ls.remove_buffer) inner_->put(item);
        if (was_empty) empty_lockers_.violate_all_except(ls.id);
        size_lockers_.violate_all_except(ls.id);  // the count changed back
      });
    }
    release_and_clear(ls);
  }

  void release_and_clear(LocalState& ls) {
    if (ls.empty_locked) empty_lockers_.remove(ls.id);
    if (ls.size_locked) size_lockers_.remove(ls.id);
    ls.clear();
  }

  std::unique_ptr<jstd::Queue<T>> inner_;
  mutable LockerSet empty_lockers_;
  mutable LockerSet size_lockers_;
  mutable std::vector<LocalState> locals_;
};

}  // namespace tcc
