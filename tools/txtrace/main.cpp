// txtrace — analyze a binary transaction trace written by `--trace`.
//
// Default output is the conflict-attribution report: commit/abort totals,
// wasted cycles split by abort cause, the top-K conflict sites (profile
// labels for memory-level violations, named lock tables for semantic ones)
// and the abort-chain depth histogram.  `--json` additionally converts the
// trace to Chrome tracing JSON (load in chrome://tracing or Perfetto): one
// track per simulated CPU, nested txn/open slices, instants for semantic
// lock traffic and misses, and flow arrows from a committer's violation
// flag to the victim's eventual abort.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>

#include "trace/reader.h"

namespace {

int usage(const char* argv0, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out,
               "usage: %s <file.trace> [--json OUT.json] [--top K]\n"
               "  --json OUT.json  also write a Chrome tracing JSON view\n"
               "                   (open in chrome://tracing or Perfetto)\n"
               "  --top K          conflict sites to list in the report "
               "(default 10)\n"
               "  --help, -h       this message\n",
               argv0);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path;
  std::string json_path;
  std::size_t top_k = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") return usage(argv[0], 0);
    if (a == "--json" || a == "--top") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "txtrace: %s needs a value\n", a.c_str());
        return usage(argv[0], 2);
      }
      const std::string v = argv[++i];
      if (a == "--json") {
        json_path = v;
      } else {
        char* end = nullptr;
        const long k = std::strtol(v.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || k < 1) {
          std::fprintf(stderr, "txtrace: bad value '%s' for --top\n", v.c_str());
          return usage(argv[0], 2);
        }
        top_k = static_cast<std::size_t>(k);
      }
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "txtrace: unknown flag '%s'\n", a.c_str());
      return usage(argv[0], 2);
    } else if (in_path.empty()) {
      in_path = a;
    } else {
      std::fprintf(stderr, "txtrace: more than one input file\n");
      return usage(argv[0], 2);
    }
  }
  if (in_path.empty()) return usage(argv[0], 2);

  try {
    const trace::TraceFile tf = trace::read_trace_file(in_path);
    const trace::Attribution a = trace::attribute(tf);
    std::fputs(trace::format_report(tf, a, top_k).c_str(), stdout);
    if (!json_path.empty()) {
      std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
      if (!out) throw std::runtime_error("cannot open " + json_path);
      out << trace::chrome_trace_json(tf);
      if (!out) throw std::runtime_error("short write to " + json_path);
      std::fprintf(stderr, "txtrace: wrote %s\n", json_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "txtrace: %s\n", e.what());
    return 1;
  }
  return 0;
}
