#!/usr/bin/env python3
"""Regression tests for tools/check_hotpath.py's failure modes.

The gate must fail *loudly* — a clear message and a nonzero exit — on a
malformed document, a POISONED point, or a scenario whose baseline key is
missing, instead of dying with a KeyError or silently skipping the point.
Before the fix, a poisoned/malformed record raised KeyError and a
current-only scenario sailed through the main comparison untested.

Run from anywhere: python3 tools/test_check_hotpath.py
"""
import json
import os
import subprocess
import sys
import tempfile

CHECK = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "check_hotpath.py")


def result(name, sim_cycles=1000, normalized=2.0, **extra):
    r = {"name": name, "sim_cycles": sim_cycles, "normalized": normalized,
         "wall_seconds": 0.5, "ops_per_sec": 1e6}
    r.update(extra)
    return r


def write_doc(path, results):
    with open(path, "w") as f:
        json.dump({"bench": "hotpath", "results": results}, f)


def run(*argv):
    p = subprocess.run([sys.executable, CHECK, *argv],
                       capture_output=True, text=True)
    return p.returncode, p.stdout + p.stderr


def main():
    failures = []

    def check(label, cond, output=""):
        status = "ok" if cond else "FAIL"
        print(f"{label}: {status}")
        if not cond:
            failures.append(label)
            if output:
                print(output)

    with tempfile.TemporaryDirectory() as d:
        base = os.path.join(d, "base.json")
        cur = os.path.join(d, "cur.json")

        # Identical healthy docs pass.
        write_doc(base, [result("alpha"), result("beta", 2000)])
        write_doc(cur, [result("alpha"), result("beta", 2000)])
        rc, out = run(base, cur)
        check("healthy docs pass", rc == 0, out)
        rc, out = run(base, cur, "--cycles-only")
        check("healthy docs pass (--cycles-only)", rc == 0, out)

        # A POISONED point (explicit flag) fails loudly, not via KeyError.
        write_doc(cur, [result("alpha"), result("beta", 2000, poisoned=True)])
        rc, out = run(base, cur)
        check("poisoned flag fails loudly",
              rc != 0 and "POISONED" in out and "beta" in out
              and "Traceback" not in out, out)

        # A record with no sim_cycles (the sweep never completed the point)
        # is poisoned too.
        write_doc(cur, [result("alpha"),
                        {"name": "beta", "normalized": 2.0,
                         "wall_seconds": 0.5}])
        rc, out = run(base, cur)
        check("missing sim_cycles fails loudly",
              rc != 0 and "POISONED" in out and "Traceback" not in out, out)

        # A scenario missing its baseline key must fail the gate (it used to
        # be silently skipped by the baseline-driven comparison loop).
        write_doc(cur, [result("alpha"), result("beta", 2000),
                        result("gamma", 3000)])
        rc, out = run(base, cur)
        check("missing baseline key fails",
              rc != 0 and "gamma" in out and "baseline scenario key" in out,
              out)
        rc, out = run(base, cur, "--cycles-only")
        check("missing baseline key fails (--cycles-only)",
              rc != 0 and "gamma" in out, out)

        # Malformed documents: no results array / nameless record.
        with open(cur, "w") as f:
            json.dump({"bench": "hotpath"}, f)
        rc, out = run(base, cur)
        check("missing results array fails loudly",
              rc != 0 and "results" in out and "Traceback" not in out, out)
        write_doc(cur, [{"sim_cycles": 5}])
        rc, out = run(base, cur)
        check("nameless record fails loudly",
              rc != 0 and "name" in out and "Traceback" not in out, out)

        # Sanity: the original gates still work after the hardening.
        write_doc(cur, [result("alpha", sim_cycles=1001),
                        result("beta", 2000)])
        rc, out = run(base, cur)
        check("sim_cycles drift still fails", rc != 0 and "alpha" in out, out)
        write_doc(cur, [result("alpha", normalized=0.5),
                        result("beta", 2000)])
        rc, out = run(base, cur)
        check("throughput regression still fails", rc != 0, out)

    if failures:
        print(f"test_check_hotpath: {len(failures)} FAILED")
        return 1
    print("test_check_hotpath: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
