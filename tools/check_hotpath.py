#!/usr/bin/env python3
"""CI gate for the TM hot-path benchmark (bench/hotpath.cpp).

Compares a fresh BENCH_hotpath.json against the committed baseline and fails
when any of the following hold:

  * normalized throughput (ops_per_sec / host calibration) of any scenario
    regressed by more than --tolerance (default 25%),
  * the geometric mean of the normalized-throughput ratios across the
    trace-OFF scenarios regressed by more than --geomean-tolerance
    (default 2%) — this is the txtrace transparency budget: with no tracer
    attached the hot path must not pay for the hooks,
  * a scenario's simulated cycle total changed at all — the hot-path work is
    host-side only; simulated timing is part of the cost model and must be
    bit-stable across builds, or
  * a "<name>_traced" twin's sim_cycles differ from its plain "<name>" run
    within the CURRENT file — attaching a tracer must be invisible to the
    simulated clock.

With --cycles-only, the throughput comparisons are skipped and ONLY the
sim_cycles equality is enforced.  That is the CI check between the SSE2 and
TXCC_NO_SIMD builds: two differently-vectorized binaries must simulate the
exact same cycle counts (and, for the engine-free kernel scenarios, compute
the exact same result checksums), while their wall-clock speeds are allowed
to differ.

Usage: tools/check_hotpath.py BASELINE.json CURRENT.json
           [--tolerance 0.25] [--geomean-tolerance 0.02] [--cycles-only]
"""
import argparse
import json
import math
import sys


def die(msg):
    print(f"check_hotpath: ERROR: {msg}")
    sys.exit(2)


def load(path):
    """Parse a BENCH_hotpath.json document, failing loudly (clear message,
    nonzero exit) on a malformed or poisoned file instead of a KeyError.

    A record is *poisoned* when the bench marked it so explicitly
    ("poisoned": true) or when its sim_cycles is absent/null — a point the
    sweep could not complete.  A poisoned point can never pass the gate, so
    it is rejected here, before any comparison silently skips it.
    """
    with open(path) as f:
        doc = json.load(f)
    results = doc.get("results")
    if not isinstance(results, list):
        die(f"{path}: no 'results' array (malformed bench JSON)")
    out = {}
    for i, r in enumerate(results):
        name = r.get("name") if isinstance(r, dict) else None
        if not name:
            die(f"{path}: results[{i}] has no 'name' (malformed bench JSON)")
        if r.get("poisoned") or r.get("sim_cycles") is None:
            die(f"{path}: scenario '{name}' is POISONED "
                "(no completed run / no sim_cycles) — the gate cannot pass "
                "a poisoned point; re-run the bench")
        if name in out:
            die(f"{path}: duplicate scenario '{name}'")
        out[name] = r
    return out


def delta_table(base, cur):
    """Side-by-side per-scenario summary, printed when the gate fails so the
    log shows the whole landscape, not just the first tripwire."""
    print()
    print(f"{'scenario':<20} {'base norm':>11} {'cur norm':>11} {'ratio':>7}  "
          f"{'sim_cycles':>10}")
    for name in sorted(set(base) | set(cur)):
        b, c = base.get(name), cur.get(name)
        if b is None or c is None:
            print(f"{name:<20} {'--- missing from ' + ('baseline' if b is None else 'current'):>40}")
            continue
        bn, cn = b.get("normalized"), c.get("normalized")
        ratio = f"{cn / bn:.2f}x" if bn and cn else "n/a"
        cyc = "match" if b["sim_cycles"] == c["sim_cycles"] else "DIFFER"
        print(f"{name:<20} {bn or 0:>11.4g} {cn or 0:>11.4g} {ratio:>7}  {cyc:>10}")
    print()


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional normalized-throughput regression "
                         "per scenario")
    ap.add_argument("--geomean-tolerance", type=float, default=0.02,
                    help="allowed fractional regression of the geomean "
                         "normalized-throughput ratio over trace-off scenarios")
    ap.add_argument("--cycles-only", action="store_true",
                    help="enforce only sim_cycles equality (cross-build "
                         "determinism check, e.g. SIMD vs SWAR binaries)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    failed = False
    off_ratios = []

    # A scenario present in the current run but absent from the baseline is
    # an un-gated point: the committed baseline key is missing and nothing
    # below would compare it.  That must fail loudly, not be silently
    # skipped — the fix is to regenerate/commit the baseline JSON.
    for name in sorted(set(cur) - set(base)):
        print(f"FAIL {name}: baseline scenario key missing from "
              f"{args.baseline} (commit an updated baseline)")
        failed = True

    if args.cycles_only:
        for name, b in sorted(base.items()):
            c = cur.get(name)
            if c is None:
                print(f"FAIL {name}: scenario missing from current run")
                failed = True
            elif b["sim_cycles"] != c["sim_cycles"]:
                print(f"FAIL {name}: sim_cycles {b['sim_cycles']} -> "
                      f"{c['sim_cycles']} (builds must simulate identically)")
                failed = True
            else:
                print(f"{name}: sim_cycles {b['sim_cycles']} match")
        if failed:
            print("check_hotpath (--cycles-only): FAILED")
            return 1
        print("check_hotpath (--cycles-only): ok")
        return 0

    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            print(f"FAIL {name}: scenario missing from current run")
            failed = True
            continue
        if b["sim_cycles"] != c["sim_cycles"]:
            print(f"FAIL {name}: simulated cycles changed "
                  f"{b['sim_cycles']} -> {c['sim_cycles']} "
                  f"(host-side optimisation must not touch the cost model)")
            failed = True
        bn, cn = b.get("normalized"), c.get("normalized")
        if not bn or not cn:
            print(f"SKIP {name}: no normalized throughput recorded")
            continue
        ratio = cn / bn
        if not name.endswith("_traced"):
            off_ratios.append(ratio)
        verdict = "ok"
        if ratio < 1.0 - args.tolerance:
            verdict = f"FAIL (regressed beyond {args.tolerance:.0%})"
            failed = True
        print(f"{name}: normalized {bn:.4g} -> {cn:.4g}  ({ratio:.2f}x)  {verdict}")

    if off_ratios:
        geomean = math.exp(sum(math.log(r) for r in off_ratios) / len(off_ratios))
        verdict = "ok"
        if geomean < 1.0 - args.geomean_tolerance:
            verdict = f"FAIL (trace-off geomean beyond {args.geomean_tolerance:.0%})"
            failed = True
        print(f"trace-off geomean over {len(off_ratios)} scenarios: "
              f"{geomean:.3f}x  {verdict}")

    # Transparency witness inside the current run: a traced twin replays the
    # exact same simulated execution as its plain scenario.
    for name, c in sorted(cur.items()):
        if not name.endswith("_traced"):
            continue
        plain = cur.get(name[:-len("_traced")])
        if plain is None:
            print(f"FAIL {name}: no matching plain scenario in current run")
            failed = True
            continue
        if c["sim_cycles"] != plain["sim_cycles"]:
            print(f"FAIL {name}: tracing changed simulated cycles "
                  f"{plain['sim_cycles']} -> {c['sim_cycles']}")
            failed = True
        else:
            overhead = (c["wall_seconds"] / plain["wall_seconds"] - 1.0
                        if plain["wall_seconds"] else 0.0)
            print(f"{name}: sim_cycles match plain run; "
                  f"trace-on wall overhead {overhead:+.1%}")

    if failed:
        delta_table(base, cur)
        print("check_hotpath: FAILED")
        return 1
    print("check_hotpath: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
