#!/usr/bin/env python3
"""CI gate for the TM hot-path benchmark (bench/hotpath.cpp).

Compares a fresh BENCH_hotpath.json against the committed baseline and fails
when either

  * normalized throughput (ops_per_sec / host calibration) of any scenario
    regressed by more than --tolerance (default 25%), or
  * a scenario's simulated cycle total changed at all — the hot-path work is
    host-side only; simulated timing is part of the cost model and must be
    bit-stable across builds.

Usage: tools/check_hotpath.py BASELINE.json CURRENT.json [--tolerance 0.25]
"""
import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {r["name"]: r for r in doc["results"]}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional normalized-throughput regression")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    failed = False

    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            print(f"FAIL {name}: scenario missing from current run")
            failed = True
            continue
        if b["sim_cycles"] != c["sim_cycles"]:
            print(f"FAIL {name}: simulated cycles changed "
                  f"{b['sim_cycles']} -> {c['sim_cycles']} "
                  f"(host-side optimisation must not touch the cost model)")
            failed = True
        bn, cn = b.get("normalized"), c.get("normalized")
        if not bn or not cn:
            print(f"SKIP {name}: no normalized throughput recorded")
            continue
        ratio = cn / bn
        verdict = "ok"
        if ratio < 1.0 - args.tolerance:
            verdict = f"FAIL (regressed beyond {args.tolerance:.0%})"
            failed = True
        print(f"{name}: normalized {bn:.4g} -> {cn:.4g}  ({ratio:.2f}x)  {verdict}")

    if failed:
        print("check_hotpath: FAILED")
        return 1
    print("check_hotpath: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
