#!/usr/bin/env python3
"""CI validator for txtrace's Chrome tracing JSON export.

Parses the JSON with a real parser (the C++ emitter is hand-rolled) and
checks the structural invariants chrome://tracing and Perfetto rely on:

  * top-level object with a "traceEvents" list,
  * every event has the required fields for its phase
    (ph/ts/pid/tid, plus name for B/i/M and id for s/f),
  * per-(pid, tid) B/E slice events are balanced and properly nested,
  * timestamps are non-negative, and monotone non-decreasing per tid for
    slice/instant events (flow "s"/"f" arrows are exempt: the emitter
    writes the "f" end onto the victim's tid while scanning the writer's
    cpu block, and Chrome orders by ts itself),
  * at least one non-metadata event exists (an empty trace means the
    --trace plumbing silently broke), and — with --require-slices — at
    least one transaction slice (lock-based series legitimately record
    only miss/lock instants, so that check is opt-in).

Usage: tools/check_trace.py TRACE.json [--require-slices]
"""
import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}")
    return 1


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace_json")
    ap.add_argument("--require-slices", action="store_true",
                    help="fail unless at least one B/E transaction slice "
                         "exists (use for transactional series)")
    args = ap.parse_args()
    with open(args.trace_json) as f:
        doc = json.load(f)

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail("top level is not an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail("'traceEvents' is not a list")

    stacks = {}     # (pid, tid) -> list of open B names
    last_ts = {}    # tid -> last slice/instant timestamp seen
    slices = 0
    payload = 0     # non-metadata events
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph is None:
            return fail(f"event {i} has no 'ph'")
        for field in ("pid", "tid"):
            if field not in ev:
                return fail(f"event {i} (ph={ph}) missing '{field}'")
        if ph == "M":
            if "name" not in ev:
                return fail(f"metadata event {i} missing 'name'")
            continue
        payload += 1
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(f"event {i} (ph={ph}) has bad ts {ts!r}")
        tid = ev["tid"]
        if ph in ("B", "E", "i"):
            if ts < last_ts.get(tid, 0):
                return fail(f"event {i} ts {ts} goes backwards on tid {tid}")
            last_ts[tid] = ts
        key = (ev["pid"], tid)
        if ph == "B":
            if "name" not in ev:
                return fail(f"B event {i} missing 'name'")
            stacks.setdefault(key, []).append(ev["name"])
            slices += 1
        elif ph == "E":
            if not stacks.get(key):
                return fail(f"E event {i} on tid {tid} with no open slice")
            stacks[key].pop()
        elif ph == "i":
            if "name" not in ev:
                return fail(f"instant event {i} missing 'name'")
        elif ph in ("s", "f"):
            if "id" not in ev:
                return fail(f"flow event {i} (ph={ph}) missing 'id'")
        else:
            return fail(f"event {i} has unknown phase {ph!r}")

    open_slices = {k: v for k, v in stacks.items() if v}
    if open_slices:
        return fail(f"unbalanced B/E slices: {open_slices}")
    if payload == 0:
        return fail("no events at all — tracing plumbing broken?")
    if args.require_slices and slices == 0:
        return fail("no transaction slices in a transactional series trace")

    print(f"check_trace: ok ({len(events)} events, {slices} slices, "
          f"{len(last_ts)} threads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
