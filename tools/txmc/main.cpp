// txmc — schedule-exploration serializability checker for the
// transactional collection classes.
//
// Explores thread interleavings of the litmus corpus (src/mc/litmus.cpp)
// under the simulator's scheduling hook, checks every run's committed
// history against the collections' sequential specifications, and prints a
// compact replay string for every violating schedule.  A replay string
// re-executes the exact same interleaving:
//
//   txmc --all                          # explore the whole corpus
//   txmc --program mut_lost_update      # one program
//   txmc --program mut_lost_update --replay v1:010
//   txmc --all --artifacts out/         # write <program>.replay files
//
// Exit codes: 0 = corpus behaves as expected (clean programs violation-free
// within budget, every mutant caught with its expected anomaly class);
// 1 = unexpected violation or missed mutant; 2 = usage error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mc/explorer.h"
#include "mc/litmus.h"
#include "mc/schedule.h"

namespace {

struct Options {
  bool list = false;
  bool all = false;
  bool exhaustive = false;
  bool verbose = false;
  std::string program;
  std::string replay;
  std::string artifacts;
  int max_runs = 500;
  int max_depth = 64;
};

void usage() {
  std::fprintf(stderr,
               "usage: txmc (--list | --all | --program NAME) [options]\n"
               "  --list             list the litmus corpus\n"
               "  --all              explore every program\n"
               "  --program NAME     explore one program\n"
               "  --replay SCHED     run NAME once under a v1: replay string\n"
               "  --max-runs N       schedule budget per program (default 500)\n"
               "  --depth N          max branching depth expanded (default 64)\n"
               "  --exhaustive       disable dependence-based reduction\n"
               "  --artifacts DIR    write <program>.replay counterexample files\n"
               "  --verbose          print every counterexample\n");
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "txmc: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--list") {
      o.list = true;
    } else if (a == "--all") {
      o.all = true;
    } else if (a == "--exhaustive") {
      o.exhaustive = true;
    } else if (a == "--verbose") {
      o.verbose = true;
    } else if (a == "--program") {
      const char* v = value("--program");
      if (v == nullptr) return false;
      o.program = v;
    } else if (a == "--replay") {
      const char* v = value("--replay");
      if (v == nullptr) return false;
      o.replay = v;
    } else if (a == "--artifacts") {
      const char* v = value("--artifacts");
      if (v == nullptr) return false;
      o.artifacts = v;
    } else if (a == "--max-runs") {
      const char* v = value("--max-runs");
      if (v == nullptr) return false;
      o.max_runs = std::atoi(v);
    } else if (a == "--depth") {
      const char* v = value("--depth");
      if (v == nullptr) return false;
      o.max_depth = std::atoi(v);
    } else {
      std::fprintf(stderr, "txmc: unknown flag %s\n", a.c_str());
      return false;
    }
  }
  if (!o.list && !o.all && o.program.empty()) return false;
  if (o.max_runs <= 0 || o.max_depth <= 0) return false;
  return true;
}

void print_violations(const std::vector<mc::Violation>& vs, const char* indent) {
  for (const mc::Violation& v : vs) {
    std::printf("%s[%s] %s\n", indent, mc::anomaly_name(v.kind), v.detail.c_str());
  }
}

/// Explores one program; returns true if it behaved as expected.
bool check_program(const mc::Program& prog, const Options& o) {
  mc::ExploreOptions eopt;
  eopt.max_runs = o.max_runs;
  eopt.max_depth = o.max_depth;
  eopt.reduce = !o.exhaustive;
  const mc::ExploreResult res = mc::explore(prog, eopt);

  bool ok;
  if (prog.mutant) {
    ok = prog.expected.has_value() && res.found(*prog.expected);
    std::printf("%-20s %4d runs%s  %s", prog.name.c_str(), res.runs,
                res.budget_exhausted ? " (budget)" : "",
                ok ? "CAUGHT" : "MISSED");
    if (ok) {
      std::printf(" [%s]", mc::anomaly_name(*prog.expected));
    } else if (prog.expected.has_value()) {
      std::printf(" [wanted %s]", mc::anomaly_name(*prog.expected));
    }
    std::printf("\n");
  } else {
    ok = res.counterexamples.empty();
    std::printf("%-20s %4d runs%s  %s\n", prog.name.c_str(), res.runs,
                res.budget_exhausted ? " (budget)" : "",
                ok ? "CLEAN" : "VIOLATION");
  }

  if (!res.counterexamples.empty() && (o.verbose || !ok || prog.mutant)) {
    const std::size_t shown = o.verbose ? res.counterexamples.size() : 1;
    for (std::size_t i = 0; i < shown && i < res.counterexamples.size(); ++i) {
      const mc::Counterexample& c = res.counterexamples[i];
      std::printf("  replay %s\n", mc::encode(c.schedule).c_str());
      print_violations(c.violations, "    ");
    }
  }

  if (!o.artifacts.empty() && !res.counterexamples.empty()) {
    std::filesystem::create_directories(o.artifacts);
    std::ofstream out(std::filesystem::path(o.artifacts) / (prog.name + ".replay"));
    for (const mc::Counterexample& c : res.counterexamples) {
      out << mc::encode(c.schedule) << "\n";
      for (const mc::Violation& v : c.violations) {
        out << "  [" << mc::anomaly_name(v.kind) << "] " << v.detail << "\n";
      }
    }
  }
  return ok;
}

int replay_program(const mc::Program& prog, const Options& o) {
  mc::Schedule forced;
  if (!mc::decode(o.replay, forced)) {
    std::fprintf(stderr, "txmc: bad replay string %s\n", o.replay.c_str());
    return 2;
  }
  const mc::RunResult run = mc::run_program(prog, forced);
  std::printf("%s: executed %s%s\n", prog.name.c_str(),
              mc::encode(run.executed).c_str(),
              run.diverged ? " (DIVERGED from the forced prefix)" : "");
  print_violations(run.violations, "  ");
  if (prog.mutant) {
    const bool caught = prog.expected.has_value() &&
                        [&] {
                          for (const mc::Violation& v : run.violations) {
                            if (v.kind == *prog.expected) return true;
                          }
                          return false;
                        }();
    return caught ? 0 : 1;
  }
  return run.violations.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) {
    usage();
    return 2;
  }

  if (o.list) {
    for (const mc::Program& p : mc::programs()) {
      std::printf("%-20s %-7s %s%s%s\n", p.name.c_str(),
                  p.mutant ? "mutant" : "clean", p.description.c_str(),
                  p.mutant ? " -> " : "",
                  p.mutant && p.expected ? mc::anomaly_name(*p.expected) : "");
    }
    return 0;
  }

  if (!o.replay.empty()) {
    if (o.program.empty()) {
      std::fprintf(stderr, "txmc: --replay needs --program\n");
      return 2;
    }
    const mc::Program* p = mc::find_program(o.program);
    if (p == nullptr) {
      std::fprintf(stderr, "txmc: unknown program %s\n", o.program.c_str());
      return 2;
    }
    return replay_program(*p, o);
  }

  std::vector<const mc::Program*> targets;
  if (o.all) {
    for (const mc::Program& p : mc::programs()) targets.push_back(&p);
  } else {
    const mc::Program* p = mc::find_program(o.program);
    if (p == nullptr) {
      std::fprintf(stderr, "txmc: unknown program %s\n", o.program.c_str());
      return 2;
    }
    targets.push_back(p);
  }

  bool all_ok = true;
  for (const mc::Program* p : targets) {
    if (!check_program(*p, o)) all_ok = false;
  }
  return all_ok ? 0 : 1;
}
