// txlint CLI: walks the given files/directories and reports discipline
// violations.  Exit status: 0 = clean, 1 = findings, 2 = usage/IO error.
//
//   txlint [--rule=a,b] [--list-rules] <path>...
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "scanner.h"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" || ext == ".cxx";
}

int lint_file(const fs::path& p, const txlint::Options& opts,
              std::vector<txlint::Finding>& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    std::cerr << "txlint: cannot read " << p << "\n";
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  auto findings = txlint::scan_source(p.generic_string(), content, opts);
  out.insert(out.end(), findings.begin(), findings.end());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  txlint::Options opts;
  std::vector<fs::path> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : txlint::rules()) {
        std::cout << r.name << "\n    " << r.summary << "\n";
      }
      return 0;
    }
    if (arg.rfind("--rule=", 0) == 0) {
      std::string list = arg.substr(7);
      std::string cur;
      for (char c : list + ",") {
        if (c == ',') {
          if (!cur.empty()) opts.only_rules.push_back(cur);
          cur.clear();
        } else {
          cur += c;
        }
      }
      // A typo'd rule name would silently lint nothing and exit clean.
      const auto& known = txlint::rules();
      for (const auto& name : opts.only_rules) {
        const bool ok = std::any_of(known.begin(), known.end(),
                                    [&](const auto& r) { return r.name == name; });
        if (!ok) {
          std::cerr << "txlint: unknown rule '" << name
                    << "' (see --list-rules)\n";
          return 2;
        }
      }
      if (opts.only_rules.empty()) {
        std::cerr << "txlint: --rule= requires at least one rule name\n";
        return 2;
      }
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: txlint [--rule=a,b] [--list-rules] <path>...\n";
      return 0;
    }
    paths.emplace_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "usage: txlint [--rule=a,b] [--list-rules] <path>...\n";
    return 2;
  }

  std::vector<txlint::Finding> findings;
  int files = 0;
  for (const auto& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      std::vector<fs::path> in_dir;
      for (const auto& e : fs::recursive_directory_iterator(p, ec)) {
        if (e.is_regular_file() && lintable(e.path())) in_dir.push_back(e.path());
      }
      std::sort(in_dir.begin(), in_dir.end());
      for (const auto& f : in_dir) {
        ++files;
        if (int rc = lint_file(f, opts, findings); rc != 0) return rc;
      }
    } else if (fs::is_regular_file(p, ec)) {
      ++files;
      if (int rc = lint_file(p, opts, findings); rc != 0) return rc;
    } else {
      std::cerr << "txlint: no such file or directory: " << p << "\n";
      return 2;
    }
  }

  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  std::cout << "txlint: " << files << " file(s), " << findings.size() << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
