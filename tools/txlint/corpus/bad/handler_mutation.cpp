// BAD: handler bodies that mutate a collection directly with no
// compensation_run site registration.  The TXCC_CHECKED auditor and the
// txmc serializability oracle attribute compensations by site; an
// unregistered mutation is invisible to both, so a doubled handler run
// (the runtime legally retries a doomed handler transaction) or a lost one
// corrupts the committed collection without a report.
#include "tm/runtime.h"

namespace demo {

struct Bag {
  void put(long k, long v);
  void remove(long k);
};

void uncompensated_abort(Bag* bag, long k, long v) {
  atomos::Runtime::current().on_top_abort([bag, k, v] {
    bag->put(k, v);  // BAD: restores state with no compensation_run(site)
  });
}

void uncompensated_commit(Bag* bag, long k) {
  atomos::Runtime::current().on_top_commit([bag, k] {
    bag->remove(k);  // BAD: commit-side mutation, also unattributed
  });
  atomos::Runtime::current().on_top_abort([] {});
}

}  // namespace demo
