// BAD: open-nested bodies that register a commit handler without the paired
// abort handler.  On abort the semantic locks taken by the open-nested
// operation leak forever (every later writer of the key is serialized).
#include "tm/runtime.h"

namespace demo {

struct Table {
  void apply();
  void release();
};

void forgetful_registration(Table* t) {
  atomos::open_atomically([&] {
    // ... take semantic locks, buffer the write ...
  });
  atomos::Runtime::current().on_top_commit([t] {
    t->apply();
    t->release();
  });
  // BAD: no on_top_abort — an aborting parent never calls t->release().
}

void forgetful_frame_registration(Table* t) {
  atomos::on_commit([t] { t->apply(); });
  // BAD: no on_abort in the same function.
}

}  // namespace demo
