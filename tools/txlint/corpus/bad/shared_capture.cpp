// BAD: Shared<T> objects captured by value in lambdas.  The capture would
// copy the cell (its address IS its identity for conflict detection), so the
// lambda operates on a private clone no other CPU can conflict with.
#include "tm/shared.h"

namespace demo {

void by_name_capture() {
  atomos::Shared<long> counter(0);
  auto bump = [counter] { (void)counter; };  // BAD: by-value capture
  bump();
}

void default_copy_capture() {
  atomos::Shared<int> flag(0);
  auto probe = [=] { return flag.get(); };  // BAD: [=] copies `flag`
  (void)probe;
}

void reference_is_fine() {
  atomos::Shared<long> ok(1);
  auto good = [&ok] { ok.set(2); };  // ok: by reference
  good();
}

}  // namespace demo
