// BAD: collection metadata and open-nested counters constructed without an
// explicit sim:: memory class.  Default construction draws from the packed
// data arena, where construction adjacency decides line sharing — the exact
// accident behind the fig4 Atomos Open violation storm (see EXPERIMENTS.md).
#pragma once

#include "tm/shared.h"

namespace jstd {

template <class K, class V>
class PackedMap {
 public:
  PackedMap() : size_(0), root_(nullptr) {}  // no memory class anywhere

  long size() const { return size_.get(); }

 private:
  struct Node {
    atomos::Shared<K> key;      // ok: node cells are bulk data, packed default
    atomos::Shared<Node*> next;
  };

  atomos::Shared<long> size_;   // BAD: hot metadata left in the data arena
  atomos::Shared<Node*> root_;  // BAD: dispatch pointer left in the data arena
};

}  // namespace jstd

namespace tcc {

class PlainStatCounter {
 public:
  explicit PlainStatCounter(long first) : v_(first) {}  // no kCounterCell

  void add(long d) { v_.set(v_.get() + d); }

 private:
  atomos::Shared<long> v_;  // BAD: open-nested counter outside kCounter arena
};

}  // namespace tcc
