// BAD: a non-final chop piece mutates a collection with no compensation.
// Each piece of a tm::chopped() chain commits as its own top-level
// transaction, so its effects are durable before the chop finishes.  If a
// later piece throws (or a kValidated chop restarts), the runtime unwinds
// by running the registered compensations of the committed prefix — a
// piece without one leaves its mutation stranded.
#include "tm/chop.h"

namespace demo {

struct Bag {
  void put(long k, long v);
  void remove(long k);
};

void uncompensated_piece(Bag* bag, long k, long v) {
  atomos::chopped()
      .piece("insert",
             [bag, k, v] {
               bag->put(k, v);  // BAD: durable after piece commit, no undo
             })
      .piece("settle", [bag, k] { bag->remove(k); })
      .run();
}

}  // namespace demo
