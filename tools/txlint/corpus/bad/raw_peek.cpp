// BAD: workload code reading the committed value behind a Shared cell.
#include "tm/shared.h"

namespace demo {

long racy_sum(const atomos::Shared<long>& a, const atomos::Shared<long>& b) {
  // BAD: bypasses the read set — the transaction cannot be violated on `a`.
  return a.unsafe_peek() + b.get();
}

struct Holder {
  atomos::Shared<long> cell;
};

long reach_through(Holder* h) {
  return h->cell.unsafe_peek();  // BAD: same bypass via a pointer
}

}  // namespace demo
