// BAD: jstd node/collection types holding mutable shared state outside
// Shared<T>.  Each flagged line is a memory-level race under the simulator.
#pragma once

#include "tm/shared.h"

namespace jstd {

template <class K, class V>
class LeakyMap {
 public:
  long size() const { return size_; }

 private:
  struct Node {
    atomos::Shared<K> key;
    V val;          // NOT flagged: V is an opaque template type
    Node* next;     // BAD: raw-pointer link traversed by other CPUs
  };

  long size_;       // BAD: the paper's classic contended size field, unwrapped
  float load_;      // BAD: mutable primitive
  const int cap_ = 8;          // ok: immutable
  static constexpr int kA = 1; // ok: static
  atomos::Shared<Node*> head_; // ok: wrapped
};

}  // namespace jstd
