// BAD: trace-hook bodies that allocate or touch transactional state.  Event
// hooks run on the simulated hot path under `if (tracer)`; anything beyond a
// raw store into the preallocated per-CPU buffer perturbs wall-clock (and a
// Shared access would recurse into the very runtime being traced).
#include <cstdint>
#include <vector>

namespace trace {

struct LeakyTracer {
  std::vector<std::uint64_t> events;

  void on_txn_begin(int cpu, std::uint64_t cycle) {
    (void)cpu;
    events.push_back(cycle);  // BAD: may reallocate mid-simulation
  }

  void on_txn_commit(int cpu, std::uint64_t cycle) {
    (void)cpu;
    auto* boxed = new std::uint64_t(cycle);  // BAD: heap allocation per event
    events.push_back(*boxed);                // BAD again
    delete boxed;                            // BAD: and the matching free
  }

  void on_violation_flag(int cpu, std::uint64_t cycle) {
    (void)cpu;
    (void)cycle;
    // BAD: touching a Shared cell from a hook re-enters the TM runtime.
    extern atomos::Shared<long>* g_counter;
    (void)g_counter;
    events.reserve(events.size() + 1);  // BAD: still an allocation path
  }
};

}  // namespace trace
