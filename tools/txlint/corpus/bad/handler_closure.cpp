// BAD: server-handler lambdas that capture a collection snapshot by value
// into a transaction body.  The snapshot was read OUTSIDE the transaction,
// so it is not in the read set: when the transaction is violated and
// replayed, the body re-runs with the stale value instead of re-reading.
#include "core/txmap.h"
#include "core/txqueue.h"

namespace demo {

void stale_session_balance(tcc::TransactionalMap<long, long>& sessions) {
  auto bal = sessions.get(7);  // snapshot read outside any transaction
  atomos::atomically([bal] {   // BAD: replay reuses the stale balance
    sessions_put(7, bal.value_or(0) + 1);
  });
}

void stale_init_capture(tcc::TransactionalQueue<long>& q) {
  auto req = q.try_dequeue();
  atomos::atomically([r = req] {  // BAD: init-capture copies the snapshot
    if (r.has_value()) handle(*r);
  });
}

void stale_default_copy(tcc::TransactionalMap<long, long>& cache) {
  auto hit = cache.get(3);
  atomos::open_atomically([=] {  // BAD: [=] copies `hit` into the body
    return hit.value_or(0);
  });
}

void reread_inside_is_fine(tcc::TransactionalMap<long, long>& sessions) {
  atomos::atomically([&] {  // ok: the get() happens inside the transaction
    auto bal = sessions.get(7);
    sessions_put(7, bal.value_or(0) + 1);
  });
}

}  // namespace demo
