// BAD: a hot-path header (matched by basename) backing its table with
// node-based standard containers.  Every tm_read/tm_write goes through
// these headers; pointer-chasing layouts here are a discipline violation
// (hot-path-container), not a style choice.
#pragma once

#include <set>
#include <unordered_map>

namespace sim {

class FlatMap {
 public:
  long* find(long key);

 private:
  std::unordered_map<long, long> slots_;  // node-based: fires
  std::set<long> erased_;                 // node-based: fires
};

}  // namespace sim
