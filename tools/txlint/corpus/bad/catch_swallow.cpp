// BAD: catch blocks that can swallow the internal Violated unwind.  A doomed
// transaction that is "caught" keeps running with a poisoned read set.
#include "tm/runtime.h"

namespace demo {

int swallow_everything(int x) {
  try {
    atomos::work(10);
    return x + 1;
  } catch (...) {
    // BAD: no rethrow — a Violated unwind dies here and the doomed
    // transaction continues as if nothing happened.
    return -1;
  }
}

int swallow_violated() {
  try {
    atomos::work(10);
  } catch (const atomos::Violated& v) {
    return 0;  // BAD: user code must never handle Violated itself
  }
  return 1;
}

}  // namespace demo
