// GOOD: a jstd-style node type following every rule — nothing in this file
// may be flagged.
#pragma once

#include "tm/runtime.h"
#include "tm/shared.h"

namespace jstd {

template <class K, class V>
class CleanList {
 public:
  /// Collection metadata declares its memory class (isolation-class rule):
  /// hot single-cell state goes to the line-isolated meta arena.
  CleanList()
      : size_(0, "CleanList.size", sim::kMetaCell),
        head_(nullptr, "CleanList.head", sim::kMetaCell) {}

  long size() const { return size_.get(); }

  /// Oracle accessors named unsafe_* may peek at committed state.
  long unsafe_size() const {
    return size_.unsafe_peek();  // txlint: allow(raw-peek) - oracle accessor
  }

  ~CleanList() {
    Node* n = head_.unsafe_peek();  // destructors are teardown: exempt
    (void)n;
  }

 private:
  struct Node {
    atomos::Shared<K> key;
    atomos::Shared<V> val;
    atomos::Shared<Node*> next;
    const int height = 1;
  };

  class Iter {
    Node* n_ = nullptr;  // iterator state is transaction-local: exempt
    int pos_ = 0;
  };

  Hash hash_;  // stateless functor: exempt (not a primitive, not a pointer)
  atomos::Shared<long> size_;
  atomos::Shared<Node*> head_;
};

}  // namespace jstd
