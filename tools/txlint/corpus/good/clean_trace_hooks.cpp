// GOOD: trace hooks that only store raw fields into a preallocated
// fixed-capacity buffer — nothing in this file may be flagged.  This is the
// discipline src/trace/tracer.h follows: overflow drops the event (the
// sequence number still advances so the hole is detectable), and no code
// path allocates or touches transactional state.
#include <cstdint>
#include <memory>

namespace trace {

struct FixedBufTracer {
  struct Event {
    std::uint64_t cycle;
    std::uint64_t arg;
    std::uint32_t seq;
    std::uint8_t kind;
  };

  std::unique_ptr<Event[]> buf;  // sized once, at construction (not a hook)
  std::uint32_t n = 0;
  std::uint32_t seq = 0;
  std::uint32_t cap = 0;
  std::uint64_t dropped = 0;

  void on_txn_begin(std::uint64_t cycle, std::uint64_t arg) {
    if (n >= cap) {
      ++dropped;
      ++seq;  // holes stay detectable
      return;
    }
    Event& e = buf[n];
    e.cycle = cycle;
    e.arg = arg;
    e.seq = seq;
    e.kind = 1;
    ++n;
    ++seq;
  }

  void on_txn_commit(std::uint64_t cycle) { on_txn_begin(cycle, 0); }
};

}  // namespace trace
