// GOOD: the three disciplined chop-piece shapes.  A mutating non-final
// piece carries an undo lambda as its compensation argument (or registers a
// compensation_run site in its body); the FINAL piece — the one `.run()` is
// invoked on — is covered by the enclosing abort path and needs neither.
// Nothing in this file may be flagged.
#include "tm/audit.h"
#include "tm/chop.h"

namespace demo {

struct Bag {
  void put(long k, long v);
  void remove(long k);
  long get(long k);
};

void compensated_pieces(Bag* bag, long k, long v) {
  atomos::chopped()
      .piece("insert", [bag, k, v] { bag->put(k, v); },
             /*compensate=*/[bag, k] { bag->remove(k); })
      .piece("settle", [bag, k] { bag->remove(k); })  // final piece: exempt
      .run();
}

void registered_site_piece(Bag* bag, long k, long v) {
  atomos::chopped()
      .piece("insert",
             [bag, k, v] {
               atomos::audit::compensation_run(0, bag);
               bag->put(k, v);  // attributed: site registered in the body
             })
      .piece("read", [bag, k] { (void)bag->get(k); })
      .run();
}

void read_only_pieces(Bag* bag, long k) {
  atomos::chopped()
      .piece("probe", [bag, k] { (void)bag->get(k); })
      .piece("audit", [bag, k] { (void)bag->get(k + 1); })
      .run();
}

}  // namespace demo
