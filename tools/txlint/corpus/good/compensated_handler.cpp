// GOOD: handler bodies that mutate collections register their compensation
// site first (the transactional-collection idiom), and handlers that only
// dispatch or release locks are not mutations at all.  Nothing in this file
// may be flagged.
#include "tm/audit.h"
#include "tm/runtime.h"

namespace demo {

struct Bag {
  void put(long k, long v);
  void remove(long k);
};

struct Locks {
  void unlock(long k);
};

void compensated_abort(Bag* bag, long k, long v) {
  atomos::Runtime::current().on_top_commit([bag, k] {
    atomos::audit::compensation_run(0, bag);
    bag->remove(k);
  });
  atomos::Runtime::current().on_top_abort([bag, k, v] {
    atomos::audit::compensation_run(0, bag);
    bag->put(k, v);  // registered first: the auditor can attribute this
  });
}

void dispatching_handler(Bag* bag, Locks* locks, long k) {
  // Dispatch-only and lock-release-only handlers are the other disciplined
  // shapes: no direct collection mutation in the lambda body.
  atomos::Runtime::current().on_top_commit([locks, k] { locks->unlock(k); });
  atomos::Runtime::current().on_top_abort([locks, k] { locks->unlock(k); });
}

}  // namespace demo
