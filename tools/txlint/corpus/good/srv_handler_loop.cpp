// GOOD: the srv handler-loop discipline.  Transaction bodies capture by
// reference and re-read every collection inside the body, so a violated
// transaction replays against fresh state; snapshots copied into plain
// (non-transactional) lambdas are fine — nothing replays them.
#include "core/txmap.h"
#include "core/txqueue.h"

namespace demo {

void handler_loop(tcc::TransactionalQueue<long>& work,
                  tcc::TransactionalMap<long, long>& sessions) {
  for (;;) {
    bool idle = false;
    atomos::atomically([&] {
      auto req = work.try_dequeue();  // read inside: part of the replay
      if (!req.has_value()) {
        idle = true;
        return;
      }
      auto bal = sessions.get(*req);
      sessions.put(*req, bal.value_or(0) + 1);
    });
    if (idle) break;
  }
}

void explicit_by_ref_capture(tcc::TransactionalMap<long, long>& sessions) {
  auto bal = sessions.get(7);  // pre-read is fine if the body re-reads
  atomos::atomically([&sessions] {
    auto fresh = sessions.get(7);
    sessions.put(7, fresh.value_or(0) + 1);
  });
  report(bal);  // the snapshot only feeds non-transactional logging
}

void plain_lambda_snapshot(tcc::TransactionalMap<long, long>& cache) {
  auto hit = cache.get(3);
  auto log_it = [hit] { print_metric(hit.value_or(0)); };  // no replay: ok
  log_it();
}

}  // namespace demo
