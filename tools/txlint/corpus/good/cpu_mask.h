// GOOD: a hot-path header (matched by basename) on flat, word-parallel
// structures only — raw uint64 words walked with countr_zero, a flat
// vector for storage.  No node-based std:: container, so the
// hot-path-container rule stays silent.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace sim {

class CpuMask {
 public:
  void set(int cpu) { words_[cpu >> 6] |= std::uint64_t{1} << (cpu & 63); }
  bool test(int cpu) const {
    return ((words_[cpu >> 6] >> (cpu & 63)) & 1u) != 0;
  }

  template <class F>
  void for_each(F f) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t m = words_[wi];
      while (m != 0) {
        f(static_cast<int>(wi * 64) + std::countr_zero(m));
        m &= m - 1;
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace sim
