// GOOD: paired handlers, rethrowing catch blocks, by-reference captures and
// a region suppression — nothing in this file may be flagged.
#include "tm/runtime.h"
#include "tm/shared.h"

namespace demo {

struct Table {
  void apply();
  void release();
};

void paired_registration(Table* t) {
  atomos::Runtime::current().on_top_commit([t] {
    t->apply();
    t->release();
  });
  atomos::Runtime::current().on_top_abort([t] { t->release(); });
}

void abort_only_compensation(Table* t) {
  // Abort-only registration is legal: it compensates an open-nested action
  // that already committed (cf. CompensatedCounter).
  atomos::Runtime::current().on_top_abort([t] { t->release(); });
}

int rethrowing_catch(int x) {
  try {
    atomos::work(5);
    return x;
  } catch (...) {
    throw;  // pass the unwind on
  }
}

int aborting_catch() {
  try {
    atomos::work(5);
  } catch (...) {
    std::abort();  // not swallowed: the process dies loudly
  }
  return 0;
}

void capture_by_reference() {
  atomos::Shared<long> cell(0);
  atomos::atomically([&cell] { cell.set(1); });
  atomos::atomically([&] { cell.set(2); });
}

// txlint: begin-allow(raw-peek)
long oracle_block(const atomos::Shared<long>& a) {
  // Verification-only code may peek freely inside an allow region.
  return a.unsafe_peek();
}
// txlint: end-allow(raw-peek)

}  // namespace demo
